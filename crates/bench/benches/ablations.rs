//! Criterion ablations over YOUTIAO's design choices (runtime side):
//! whole-chip vs partitioned planning, frequency swap passes, and the
//! weight-grid resolution of the crosstalk fit. Quality-side ablations
//! live in the `ablation` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use youtiao_chip::topology;
use youtiao_core::partition::PartitionConfig;
use youtiao_core::{FreqConfig, PlannerConfig, YoutiaoPlanner};
use youtiao_noise::data::{synthesize, CrosstalkKind, SynthConfig};
use youtiao_noise::fit::{fit_crosstalk_model, FitConfig};

fn bench_partitioned_vs_whole(c: &mut Criterion) {
    let chip = topology::square_grid(10, 10);
    let mut group = c.benchmark_group("planner/100q");
    group.sample_size(10);
    group.bench_function("whole-chip", |b| {
        b.iter(|| YoutiaoPlanner::new(&chip).plan().unwrap())
    });
    group.bench_function("partitioned", |b| {
        let config = PlannerConfig {
            partition: Some(PartitionConfig::for_target_size(&chip, 25)),
            ..Default::default()
        };
        b.iter(|| {
            YoutiaoPlanner::new(&chip)
                .with_config(config.clone())
                .plan()
                .unwrap()
        })
    });
    group.finish();
}

fn bench_swap_passes(c: &mut Criterion) {
    let chip = topology::square_grid(6, 6);
    let mut group = c.benchmark_group("freq-swap-passes/6x6");
    for passes in [0usize, 2, 4] {
        group.bench_function(format!("passes-{passes}"), |b| {
            let config = PlannerConfig {
                freq: FreqConfig {
                    swap_passes: passes,
                    ..Default::default()
                },
                ..Default::default()
            };
            b.iter(|| {
                YoutiaoPlanner::new(&chip)
                    .with_config(config.clone())
                    .plan()
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_fit_grid(c: &mut Criterion) {
    let chip = topology::square_grid(5, 5);
    let samples = synthesize(&chip, CrosstalkKind::Xy, &SynthConfig::xy(), 3);
    let mut group = c.benchmark_group("fit-weight-grid/5x5");
    group.sample_size(10);
    for steps in [2usize, 4, 10] {
        group.bench_function(format!("steps-{steps}"), |b| {
            let config = FitConfig {
                weight_steps: steps,
                ..FitConfig::fast()
            };
            b.iter(|| fit_crosstalk_model(&samples, &config).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    ablations,
    bench_partitioned_vs_whole,
    bench_swap_passes,
    bench_fit_grid
);
criterion_main!(ablations);
