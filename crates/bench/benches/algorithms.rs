//! Criterion benchmarks over YOUTIAO's core algorithms.
//!
//! Run with `cargo bench -p youtiao-bench`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use youtiao_chip::distance::{equivalent_matrix, EquivalentWeights};
use youtiao_chip::surface::SurfaceCode;
use youtiao_chip::topology;
use youtiao_circuit::benchmarks::Benchmark;
use youtiao_circuit::schedule::{schedule_asap, schedule_with_tdm};
use youtiao_circuit::surface_cycle::cycles_circuit;
use youtiao_circuit::transpile::transpile_snake;
use youtiao_core::fdm::group_fdm;
use youtiao_core::freq::{allocate_frequencies, FreqConfig};
use youtiao_core::partition::{partition_chip, PartitionConfig};
use youtiao_core::plan::crosstalk_matrix;
use youtiao_core::tdm::{group_tdm, TdmConfig};
use youtiao_core::YoutiaoPlanner;
use youtiao_noise::data::{synthesize, CrosstalkKind, SynthConfig};
use youtiao_noise::fit::{fit_crosstalk_model, FitConfig};
use youtiao_route::channel::{channel_route, ChannelConfig};
use youtiao_route::router::{route_chip, NetSpec, RouteConfig};

fn bench_crosstalk_fit(c: &mut Criterion) {
    let chip = topology::square_grid(6, 6);
    let samples = synthesize(&chip, CrosstalkKind::Xy, &SynthConfig::xy(), 1);
    let mut group = c.benchmark_group("fit");
    group.sample_size(10);
    group.bench_function("fit_crosstalk_model/6x6/fast", |b| {
        b.iter(|| fit_crosstalk_model(&samples, &FitConfig::fast()).unwrap())
    });
    group.finish();
}

fn bench_grouping(c: &mut Criterion) {
    let chip = topology::square_grid(8, 8);
    let eq = equivalent_matrix(&chip, EquivalentWeights::balanced());
    let xtalk = crosstalk_matrix(&chip, &eq, None);
    c.bench_function("group_fdm/8x8/cap5", |b| {
        b.iter(|| group_fdm(&chip, &eq, 5))
    });
    c.bench_function("group_tdm/8x8", |b| {
        b.iter(|| group_tdm(&chip, &xtalk, &TdmConfig::default()))
    });
    c.bench_function("allocate_frequencies/8x8", |b| {
        let lines = group_fdm(&chip, &eq, 5);
        b.iter(|| allocate_frequencies(&chip, &lines, &xtalk, &FreqConfig::default()).unwrap())
    });
    c.bench_function("partition_chip/8x8/4regions", |b| {
        b.iter(|| partition_chip(&chip, &eq, &PartitionConfig::default()))
    });
}

fn bench_planner(c: &mut Criterion) {
    let chip36 = topology::square_grid(6, 6);
    let mut group = c.benchmark_group("planner");
    group.sample_size(10);
    group.bench_function("6x6", |b| {
        b.iter(|| YoutiaoPlanner::new(&chip36).plan().unwrap())
    });
    let code = SurfaceCode::rotated(5);
    group.bench_function("surface-d5", |b| {
        b.iter(|| YoutiaoPlanner::new(code.chip()).plan().unwrap())
    });
    group.finish();
}

fn bench_scheduling(c: &mut Criterion) {
    let chip = topology::square_grid(6, 6);
    let plan = YoutiaoPlanner::new(&chip).plan().unwrap();
    let physical = transpile_snake(&Benchmark::Vqc.generate(36), &chip)
        .unwrap()
        .circuit;
    c.bench_function("schedule_asap/vqc36", |b| {
        b.iter(|| schedule_asap(&physical, &chip).unwrap())
    });
    c.bench_function("schedule_with_tdm/vqc36", |b| {
        b.iter(|| schedule_with_tdm(&physical, &chip, &plan).unwrap())
    });
    let code = SurfaceCode::rotated(5);
    let cycle = cycles_circuit(&code, 25).unwrap();
    c.bench_function("schedule_asap/surface-d5-25cycles", |b| {
        b.iter(|| schedule_asap(&cycle, code.chip()).unwrap())
    });
}

fn bench_transpile(c: &mut Criterion) {
    let chip = topology::square_grid(6, 6);
    let qft = Benchmark::Qft.generate(36);
    let mut group = c.benchmark_group("transpile");
    group.sample_size(10);
    group.bench_function("snake/qft36", |b| {
        b.iter_batched(
            || qft.clone(),
            |logical| transpile_snake(&logical, &chip).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    let chip = topology::square_grid(3, 3);
    let nets: Vec<NetSpec> = chip
        .qubits()
        .map(|q| NetSpec::chain(format!("n{}", q.id()), vec![q.position()]))
        .collect();
    c.bench_function("maze_route/3x3/9nets", |b| {
        b.iter(|| route_chip(&chip, &nets, &RouteConfig::coarse()).unwrap())
    });
    let big = topology::square_grid(6, 6);
    let mut dense = Vec::new();
    for q in big.qubits() {
        dense.push(NetSpec::chain(format!("xy{}", q.id()), vec![q.position()]));
        dense.push(NetSpec::chain(format!("z{}", q.id()), vec![q.position()]));
    }
    for cp in big.couplers() {
        dense.push(NetSpec::chain(
            format!("zc{}", cp.id()),
            vec![cp.position()],
        ));
    }
    let cfg = ChannelConfig {
        margin_mm: 9.0,
        ..Default::default()
    };
    c.bench_function("channel_route/6x6/132nets", |b| {
        b.iter(|| channel_route(&big, &dense, &cfg).unwrap())
    });
}

fn bench_simulation(c: &mut Criterion) {
    use youtiao_sim::{simulate_fidelity_mc, NoiseParams, StateVector};
    let chip = topology::linear(12);
    let circuit = Benchmark::Vqc.generate(12);
    let schedule = schedule_asap(&circuit, &chip).unwrap();
    c.bench_function("statevector/vqc12", |b| {
        b.iter(|| StateVector::run(&circuit).unwrap())
    });
    let mut group = c.benchmark_group("mc");
    group.sample_size(10);
    group.bench_function("fidelity/vqc12/20trials", |b| {
        b.iter(|| simulate_fidelity_mc(&schedule, 12, &NoiseParams::paper(), 20, 1))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_crosstalk_fit,
    bench_grouping,
    bench_planner,
    bench_scheduling,
    bench_transpile,
    bench_routing,
    bench_simulation
);
criterion_main!(benches);
