//! Quality-side ablations of YOUTIAO's design choices (DESIGN.md §5):
//!
//! 1. equivalent distance: multi-shortest-path `n·l` vs plain hop count;
//! 2. FDM grouping: equivalent-graph greedy vs local clustering;
//! 3. frequency allocation: two-level (zones + cells + swaps) vs
//!    in-line-only;
//! 4. TDM grouping: non-parallelism-aware vs legal-only clustering;
//! 5. two-level DEMUX split (θ) vs all-1:4 / all-1:2;
//! 6. activity budget: perfectly disjoint vs one shared window.
//!
//! Run with `cargo run --release -p youtiao-bench --bin ablation`.

use youtiao_bench::fdm_eval::{default_simulator, mean_gate_fidelity, FdmScenario};
use youtiao_bench::report::Table;
use youtiao_bench::tdm_eval::evaluate_benchmark;
use youtiao_bench::{fitted_xy_model, target_chip_36, DEFAULT_SEED};
use youtiao_chip::distance::{equivalent_matrix, topological_distance, DistanceMatrix};
use youtiao_chip::surface::SurfaceCode;
use youtiao_circuit::benchmarks::Benchmark;
use youtiao_circuit::schedule::{schedule_asap, schedule_with_tdm_strict};
use youtiao_circuit::surface_cycle::{cycle_activity, cycles_circuit};
use youtiao_circuit::FidelityEstimator;
use youtiao_core::baselines::NaiveFdm;
use youtiao_core::fdm::{group_fdm, group_fdm_local};
use youtiao_core::freq::{allocate_frequencies, allocate_in_line_only, FreqConfig};
use youtiao_core::plan::crosstalk_matrix;
use youtiao_core::{AcharyaTdm, PlannerConfig, TdmConfig, YoutiaoPlanner};
use youtiao_cost::WiringTally;

fn main() {
    let chip = target_chip_36();
    let model = fitted_xy_model(&chip, DEFAULT_SEED);
    let eq = equivalent_matrix(&chip, model.weights());
    let xtalk = crosstalk_matrix(&chip, &eq, Some(&model));
    let sim = default_simulator();

    println!("== Ablation 1: multi-path topological distance vs plain hops ==\n");
    // Replace d_top = n*l with plain l in the equivalent matrix and
    // compare the frequency-allocation objective.
    let mut plain = DistanceMatrix::zeros(chip.num_qubits());
    for a in chip.qubit_ids() {
        for b in chip.qubit_ids() {
            if a < b {
                let hops = topological_distance(&chip, a, b)
                    .map(|d| d.hops() as f64)
                    .unwrap_or(f64::INFINITY);
                let w = model.weights();
                plain.set(a, b, w.combine(chip.physical_distance(a, b), hops));
            }
        }
    }
    let objective = |lines: &[youtiao_core::fdm::FdmLine]| -> f64 {
        allocate_frequencies(&chip, lines, &xtalk, &FreqConfig::default())
            .expect("allocation succeeds")
            .objective(&xtalk)
    };
    let multi = objective(&group_fdm(&chip, &eq, 4));
    let single = objective(&group_fdm(&chip, &plain, 4));
    println!("crosstalk objective with n*l metric: {multi:.3e}");
    println!("crosstalk objective with plain hops: {single:.3e}");
    println!(
        "multi-path metric is {}\n",
        if multi <= single {
            "better or equal"
        } else {
            "worse here"
        }
    );

    println!("== Ablation 2+3: FDM grouping and allocation variants ==\n");
    let mut t = Table::new(vec!["grouping", "allocation", "mean gate fidelity"]);
    let variants: Vec<(&str, &str, f64)> = {
        let yt_lines = group_fdm(&chip, &eq, 4);
        let yt_freqs =
            allocate_frequencies(&chip, &yt_lines, &xtalk, &FreqConfig::default()).unwrap();
        let local_lines = group_fdm_local(&chip, 4);
        let local_two =
            allocate_frequencies(&chip, &local_lines, &xtalk, &FreqConfig::default()).unwrap();
        let naive = NaiveFdm::for_chip(&chip, 4, &FreqConfig::default());
        let f = |lines: &[youtiao_core::fdm::FdmLine],
                 freqs: &youtiao_core::freq::FrequencyPlan| {
            mean_gate_fidelity(
                &FdmScenario {
                    chip: &chip,
                    lines,
                    freqs,
                    model: &model,
                },
                &sim,
            )
        };
        vec![
            ("equivalent-graph", "two-level", f(&yt_lines, &yt_freqs)),
            ("local clusters", "two-level", f(&local_lines, &local_two)),
            (
                "local clusters",
                "in-line only",
                f(naive.fdm_lines(), naive.frequency_plan()),
            ),
            (
                "equivalent-graph",
                "in-line only",
                f(
                    &yt_lines,
                    &allocate_in_line_only(&chip, &yt_lines, &FreqConfig::default()),
                ),
            ),
        ]
    };
    for (g, a, fid) in variants {
        t.row(vec![g.into(), a.into(), format!("{:.4}%", fid * 100.0)]);
    }
    t.print();

    println!("\n== Ablation 4: TDM grouping awareness (VQC depth) ==\n");
    let est = FidelityEstimator::paper();
    let aware = YoutiaoPlanner::new(&chip).plan().unwrap();
    let legal_only = AcharyaTdm::for_chip(&chip);
    let d_aware = evaluate_benchmark(Benchmark::Vqc, &chip, &aware, &est, None).two_qubit_depth;
    let d_legal =
        evaluate_benchmark(Benchmark::Vqc, &chip, &legal_only, &est, None).two_qubit_depth;
    println!("non-parallelism-aware: {d_aware} CZ layers");
    println!(
        "legal-only clustering: {d_legal} CZ layers ({:.2}x)\n",
        d_legal as f64 / d_aware as f64
    );

    println!("== Ablation 5: DEMUX level policy (theta) on the 36-qubit chip ==\n");
    let mut t = Table::new(vec!["policy", "Z lines", "select lines", "wiring cost"]);
    for (name, theta) in [
        ("all 1:2 (theta=0)", 0.0),
        ("two-level (theta=4)", 4.0),
        ("all 1:4 (theta=inf)", f64::INFINITY),
    ] {
        let config = PlannerConfig {
            tdm: TdmConfig {
                theta,
                ..Default::default()
            },
            ..Default::default()
        };
        let plan = YoutiaoPlanner::new(&chip)
            .with_config(config)
            .plan()
            .unwrap();
        let tally = WiringTally::youtiao(&plan);
        t.row(vec![
            name.into(),
            tally.z_lines.to_string(),
            tally.demux_select_lines.to_string(),
            format!("${:.0}K", tally.cost_kusd()),
        ]);
    }
    t.print();

    println!("\n== Ablation 6: greedy vs refined TDM grouping ==\n");
    {
        let mut t = Table::new(vec!["chip", "greedy Z lines", "refined Z lines"]);
        for n in [4usize, 6, 8] {
            // theta = inf: everything on 1:4 DEMUXes, where the greedy
            // leaves singletons that refinement can absorb.
            let grid = youtiao_chip::topology::square_grid(n, n);
            let tdm = TdmConfig {
                theta: f64::INFINITY,
                ..Default::default()
            };
            let greedy = YoutiaoPlanner::new(&grid)
                .with_config(PlannerConfig {
                    tdm,
                    ..Default::default()
                })
                .plan()
                .unwrap();
            let refined = YoutiaoPlanner::new(&grid)
                .with_config(PlannerConfig {
                    tdm,
                    refine: Some(youtiao_core::refine::RefineConfig::default()),
                    ..Default::default()
                })
                .plan()
                .unwrap();
            t.row(vec![
                format!("{n}x{n}"),
                greedy.num_z_lines().to_string(),
                refined.num_z_lines().to_string(),
            ]);
        }
        t.print();
        println!(
            "\n(the greedy grouping is already within a line or two of a local\n\
             optimum on uniform grids; refinement matters for irregular chips)"
        );
    }

    println!("\n== Ablation 7: activity budget on the surface code (d=5) ==\n");
    let code = SurfaceCode::rotated(5);
    let activity = cycle_activity(&code);
    let circuit = cycles_circuit(&code, 25).unwrap();
    let base = schedule_asap(&circuit, code.chip())
        .unwrap()
        .two_qubit_depth();
    let mut t = Table::new(vec![
        "max shared windows",
        "Z lines",
        "2q depth (25 cycles)",
    ]);
    for budget in [0u32, 1, 2, 4] {
        let config = PlannerConfig {
            tdm: TdmConfig {
                max_shared_slots: budget,
                ..Default::default()
            },
            ..Default::default()
        };
        let plan = YoutiaoPlanner::new(code.chip())
            .with_config(config)
            .with_activity(&activity)
            .plan()
            .unwrap();
        let depth = schedule_with_tdm_strict(&circuit, code.chip(), &plan)
            .unwrap()
            .two_qubit_depth();
        t.row(vec![
            budget.to_string(),
            plan.num_z_lines().to_string(),
            format!("{depth} ({:.2}x)", depth as f64 / base as f64),
        ]);
    }
    t.print();
}
