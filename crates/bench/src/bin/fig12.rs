//! Reproduces **Figure 12**: crosstalk-model generality across chips of
//! the same qubit type, topology and process.
//!
//! (a) Models trained independently on the 6×6 and 8×8 chips produce
//! predicted-noise distributions whose Jensen–Shannon divergence reaches
//! a minimum of 0.06 in the paper.
//!
//! (b) Applying the 6×6-trained model to group the 8×8 chip costs only
//! a little fidelity (99.94% vs 99.96% native) across tested scales.
//!
//! Run with `cargo run --release -p youtiao-bench --bin fig12`.

use youtiao_bench::fdm_eval::{default_simulator, mean_gate_fidelity, FdmScenario};
use youtiao_bench::report::Table;
use youtiao_bench::{fitted_xy_model, DEFAULT_SEED};
use youtiao_chip::distance::{equivalent_matrix, topological_distance};
use youtiao_chip::topology;
use youtiao_core::fdm::group_fdm;
use youtiao_core::freq::{allocate_frequencies, FreqConfig};
use youtiao_core::plan::crosstalk_matrix;
use youtiao_noise::stats::js_divergence_of_samples;
use youtiao_noise::CrosstalkModel;

const LINE_CAPACITY: usize = 4;

/// Predicted crosstalk of `model` over every qubit pair of `chip`.
fn predicted_distribution(model: &CrosstalkModel, chip: &youtiao_chip::Chip) -> Vec<f64> {
    let mut out = Vec::new();
    for a in chip.qubit_ids() {
        for b in chip.qubit_ids() {
            if a < b {
                if let Some(d) = topological_distance(chip, a, b) {
                    out.push(model.predict(chip.physical_distance(a, b), d.value()));
                }
            }
        }
    }
    out
}

fn main() {
    let chip6 = topology::square_grid(6, 6);
    let chip8 = topology::square_grid(8, 8);

    println!("== Figure 12 (a): JS divergence between 6x6- and 8x8-trained models ==\n");
    let mut t = Table::new(vec!["seed pair", "JS divergence (bits)"]);
    let mut best = f64::INFINITY;
    for (i, seed) in [DEFAULT_SEED, DEFAULT_SEED + 1, DEFAULT_SEED + 2]
        .iter()
        .enumerate()
    {
        let m6 = fitted_xy_model(&chip6, *seed);
        let m8 = fitted_xy_model(&chip8, seed + 100);
        // Compare the two models' predicted-noise distributions on the
        // common evaluation chip (the 8x8 device).
        // Histogram in log-space: predicted crosstalk spans two decades,
        // and the distribution's shape (not its absolute scale) is what
        // generality is about.
        let log10 =
            |v: Vec<f64>| -> Vec<f64> { v.into_iter().map(|x| x.max(1e-12).log10()).collect() };
        let p6 = log10(predicted_distribution(&m6, &chip8));
        let p8 = log10(predicted_distribution(&m8, &chip8));
        let js = js_divergence_of_samples(&p6, &p8, 16);
        best = best.min(js);
        t.row(vec![format!("#{i}"), format!("{js:.3}")]);
    }
    t.print();
    println!("\nminimum JS divergence: {best:.3} (paper: 0.06)\n");

    println!("== Figure 12 (b): transferred vs native model for 8x8 FDM grouping ==\n");
    let m6 = fitted_xy_model(&chip6, DEFAULT_SEED);
    let m8 = fitted_xy_model(&chip8, DEFAULT_SEED + 100);
    let sim = default_simulator();
    let mut t = Table::new(vec![
        "scale",
        "transferred (6x6 model)",
        "native (8x8 model)",
    ]);
    for n in [4usize, 5, 6, 7, 8] {
        let chip = topology::square_grid(n, n);
        let fidelity = |model: &CrosstalkModel| -> f64 {
            let eq = equivalent_matrix(&chip, model.weights());
            let xt = crosstalk_matrix(&chip, &eq, Some(model));
            let lines = group_fdm(&chip, &eq, LINE_CAPACITY);
            let freqs = allocate_frequencies(&chip, &lines, &xt, &FreqConfig::default())
                .expect("allocation succeeds");
            // Evaluate against the native model (ground truth proxy).
            let scenario = FdmScenario {
                chip: &chip,
                lines: &lines,
                freqs: &freqs,
                model: &m8,
            };
            mean_gate_fidelity(&scenario, &sim)
        };
        let pct4 = |f: f64| format!("{:.4}%", f * 100.0);
        t.row(vec![
            format!("{n}x{n}"),
            pct4(fidelity(&m6)),
            pct4(fidelity(&m8)),
        ]);
    }
    t.print();
    println!(
        "\npaper: transferred 99.94%, native 99.96% across scales.\n\
         Our transfer gap is smaller (<1e-5): grouping decisions depend on the\n\
         *ordering* the model induces over pairs, which the chip-to-chip\n\
         fabrication drift we synthesize barely perturbs; the direction\n\
         (transferred <= native, worsening with scale) matches the paper."
    );
}
