//! Reproduces **Figure 13**: FDM grouping fidelity on the 36-qubit chip.
//!
//! (a) Random single-qubit gates on 4-qubit FDM lines: YOUTIAO reaches
//! 99.98% average gate fidelity vs 99.96% for George et al. (1.37× less
//! infidelity) and 2.25× less infidelity than the naive local-clustering
//! baseline.
//!
//! (b) Whole-processor fidelity vs gate layers (9 FDM lines): after 100
//! layers the baseline decays to 22.9% while YOUTIAO holds 55.1%.
//!
//! Run with `cargo run --release -p youtiao-bench --bin fig13`.

use youtiao_bench::fdm_eval::{
    default_simulator, mean_gate_fidelity, per_qubit_gate_error, processor_fidelity_after_layers,
    FdmScenario,
};
use youtiao_bench::report::{pct, Table};
use youtiao_bench::{fitted_xy_model, target_chip_36, DEFAULT_SEED};
use youtiao_chip::distance::equivalent_matrix;
use youtiao_core::baselines::{GeorgeFdm, NaiveFdm};
use youtiao_core::fdm::group_fdm;
use youtiao_core::freq::{allocate_frequencies, FreqConfig};
use youtiao_core::plan::crosstalk_matrix;

/// The paper's Figure 13 uses 4-qubit FDM lines (9 lines on 36 qubits).
const LINE_CAPACITY: usize = 4;

fn main() {
    let chip = target_chip_36();
    let model = fitted_xy_model(&chip, DEFAULT_SEED);
    let sim = default_simulator();

    // YOUTIAO: equivalent-distance grouping + two-level allocation.
    let eq = equivalent_matrix(&chip, model.weights());
    let xtalk = crosstalk_matrix(&chip, &eq, Some(&model));
    let yt_lines = group_fdm(&chip, &eq, LINE_CAPACITY);
    let yt_freqs = allocate_frequencies(&chip, &yt_lines, &xtalk, &FreqConfig::default())
        .expect("36-qubit allocation succeeds");
    let youtiao = FdmScenario {
        chip: &chip,
        lines: &yt_lines,
        freqs: &yt_freqs,
        model: &model,
    };

    // George et al.: local clustering + staggered in-line allocation.
    let george_sys = GeorgeFdm::for_chip(&chip, LINE_CAPACITY, &FreqConfig::default());
    let george = FdmScenario {
        chip: &chip,
        lines: george_sys.fdm_lines(),
        freqs: george_sys.frequency_plan(),
        model: &model,
    };

    // Naive baseline: local clustering + identical pattern on all lines.
    let naive_sys = NaiveFdm::for_chip(&chip, LINE_CAPACITY, &FreqConfig::default());
    let naive = FdmScenario {
        chip: &chip,
        lines: naive_sys.fdm_lines(),
        freqs: naive_sys.frequency_plan(),
        model: &model,
    };

    println!("== Figure 13 (a): single-qubit gate fidelity on 4-qubit FDM lines ==\n");
    let mut t = Table::new(vec!["scheme", "gate fidelity", "infidelity", "vs YOUTIAO"]);
    let f_y = mean_gate_fidelity(&youtiao, &sim);
    let f_g = mean_gate_fidelity(&george, &sim);
    let f_n = mean_gate_fidelity(&naive, &sim);
    for (name, f) in [("YOUTIAO", f_y), ("George et al.", f_g), ("naive FDM", f_n)] {
        t.row(vec![
            name.into(),
            pct(f),
            format!("{:.2e}", 1.0 - f),
            format!("{:.2}x", (1.0 - f) / (1.0 - f_y)),
        ]);
    }
    t.print();
    println!("\npaper: YOUTIAO 99.98%, George 99.96% (1.37x), naive 2.25x\n");

    println!("== Figure 13 (b): processor fidelity vs random-XY gate layers ==\n");
    let mut t = Table::new(vec!["layers", "YOUTIAO", "George et al.", "naive FDM"]);
    for layers in [1usize, 10, 20, 40, 60, 80, 100] {
        t.row(vec![
            layers.to_string(),
            pct(processor_fidelity_after_layers(&youtiao, &sim, layers)),
            pct(processor_fidelity_after_layers(&george, &sim, layers)),
            pct(processor_fidelity_after_layers(&naive, &sim, layers)),
        ]);
    }
    t.print();
    println!("\npaper at 100 layers: YOUTIAO 55.1%, baseline 22.9%");

    // Per-qubit error summary for context.
    let errs = per_qubit_gate_error(&youtiao, &sim);
    let avg = errs.iter().sum::<f64>() / errs.len() as f64;
    println!("\nYOUTIAO mean per-qubit gate error: {avg:.2e} (paper-implied: ~2e-4)");
}
