//! Reproduces **Figure 14**: two-qubit gate depth across the five
//! benchmarks under three wiring schemes.
//!
//! Paper: YOUTIAO incurs only 1.05× depth over Google's dedicated wiring
//! and achieves a 1.23× depth reduction vs Acharya et al.'s local-cluster
//! TDM (up to 1.36× on VQC).
//!
//! Run with `cargo run --release -p youtiao-bench --bin fig14`.

use youtiao_bench::report::{ratio, Table};
use youtiao_bench::target_chip_36;
use youtiao_bench::tdm_eval::{evaluate_benchmark, geomean};
use youtiao_circuit::benchmarks::Benchmark;
use youtiao_circuit::schedule::DedicatedLines;
use youtiao_circuit::FidelityEstimator;
use youtiao_core::{AcharyaTdm, YoutiaoPlanner};

fn main() {
    let chip = target_chip_36();
    let plan = YoutiaoPlanner::new(&chip)
        .plan()
        .expect("36-qubit plan succeeds");
    let acharya = AcharyaTdm::for_chip(&chip);
    let est = FidelityEstimator::paper();

    println!("== Figure 14: two-qubit gate depth across benchmarks (36-qubit chip) ==\n");
    let mut t = Table::new(vec![
        "benchmark",
        "Google",
        "YOUTIAO",
        "Acharya",
        "YOUTIAO/Google",
        "Acharya/YOUTIAO",
    ]);
    let mut vs_google = Vec::new();
    let mut vs_acharya = Vec::new();
    for b in Benchmark::ALL {
        let g = evaluate_benchmark(b, &chip, &DedicatedLines, &est, None);
        let y = evaluate_benchmark(b, &chip, &plan, &est, None);
        let a = evaluate_benchmark(b, &chip, &acharya, &est, None);
        t.row(vec![
            b.name().into(),
            g.two_qubit_depth.to_string(),
            y.two_qubit_depth.to_string(),
            a.two_qubit_depth.to_string(),
            ratio(y.two_qubit_depth as f64, g.two_qubit_depth as f64),
            ratio(a.two_qubit_depth as f64, y.two_qubit_depth as f64),
        ]);
        vs_google.push(y.two_qubit_depth as f64 / g.two_qubit_depth as f64);
        vs_acharya.push(a.two_qubit_depth as f64 / y.two_qubit_depth as f64);
    }
    t.print();
    println!(
        "\ngeomean YOUTIAO/Google depth:  {:.2}x (paper: 1.05x)",
        geomean(&vs_google)
    );
    println!(
        "geomean Acharya/YOUTIAO depth: {:.2}x (paper: 1.23x, up to 1.36x on VQC)",
        geomean(&vs_acharya)
    );
}
