//! Reproduces **Figure 15**: circuit fidelity across the five benchmarks
//! under three wiring schemes.
//!
//! Paper: YOUTIAO achieves 1.23× better fidelity than Acharya et al.'s
//! local-cluster TDM while staying within 1.06× of Google's dedicated
//! wiring.
//!
//! Run with `cargo run --release -p youtiao-bench --bin fig15`.

use youtiao_bench::report::{pct, Table};
use youtiao_bench::tdm_eval::{evaluate_benchmark_width, geomean};
use youtiao_bench::{fitted_xy_model, target_chip_36, DEFAULT_SEED};
use youtiao_circuit::benchmarks::Benchmark;
use youtiao_circuit::schedule::DedicatedLines;
use youtiao_circuit::FidelityEstimator;
use youtiao_core::{AcharyaTdm, YoutiaoPlanner};

fn main() {
    let chip = target_chip_36();
    let model = fitted_xy_model(&chip, DEFAULT_SEED);
    let plan = YoutiaoPlanner::new(&chip)
        .with_crosstalk_model(&model)
        .plan()
        .expect("36-qubit plan succeeds");
    let acharya = AcharyaTdm::for_chip(&chip);
    let est = FidelityEstimator::paper();

    println!("== Figure 15: circuit fidelity across benchmarks (36-qubit chip) ==\n");
    let mut t = Table::new(vec![
        "benchmark",
        "Google",
        "YOUTIAO",
        "Acharya",
        "Google/YOUTIAO",
        "YOUTIAO/Acharya",
    ]);
    let mut vs_google = Vec::new();
    let mut vs_acharya = Vec::new();
    for b in Benchmark::ALL {
        // Fidelity runs use 24-qubit benchmark instances mapped onto the
        // 36-qubit chip; full-width QFT/QKNN decohere to ~0 under every
        // scheme and carry no signal.
        let g = evaluate_benchmark_width(b, 24, &chip, &DedicatedLines, &est, Some(&model));
        let y = evaluate_benchmark_width(b, 24, &chip, &plan, &est, Some(&model));
        let a = evaluate_benchmark_width(b, 24, &chip, &acharya, &est, Some(&model));
        t.row(vec![
            b.name().into(),
            pct(g.fidelity),
            pct(y.fidelity),
            pct(a.fidelity),
            format!("{:.2}x", g.fidelity / y.fidelity),
            format!("{:.2}x", y.fidelity / a.fidelity),
        ]);
        vs_google.push(g.fidelity / y.fidelity);
        vs_acharya.push(y.fidelity / a.fidelity);
    }
    t.print();
    println!(
        "\ngeomean Google/YOUTIAO fidelity:  {:.2}x (paper: 1.06x)",
        geomean(&vs_google)
    );
    println!(
        "geomean YOUTIAO/Acharya fidelity: {:.2}x (paper: 1.23x)",
        geomean(&vs_acharya)
    );
}
