//! Reproduces **Figure 16**: the proportion of 1:2 vs 1:4 cryo-DEMUXes
//! chosen by the TDM grouping across topologies as the parallelism
//! threshold θ sweeps.
//!
//! Paper: the square topology, having the highest qubit parallelism,
//! consistently uses the largest share of 1:2 DEMUXes; raising θ shifts
//! devices toward denser 1:4 multiplexing.
//!
//! The sweep itself (`youtiao_bench::figs::fig16_spec`) runs on the
//! `youtiao-xplore` engine; this binary just prints the report.
//!
//! Run with `cargo run --release -p youtiao-bench --bin fig16`.

fn main() {
    print!("{}", youtiao_bench::figs::fig16_report());
}
