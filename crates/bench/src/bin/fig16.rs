//! Reproduces **Figure 16**: the proportion of 1:2 vs 1:4 cryo-DEMUXes
//! chosen by the TDM grouping across topologies as the parallelism
//! threshold θ sweeps.
//!
//! Paper: the square topology, having the highest qubit parallelism,
//! consistently uses the largest share of 1:2 DEMUXes; raising θ shifts
//! devices toward denser 1:4 multiplexing.
//!
//! Run with `cargo run --release -p youtiao-bench --bin fig16`.

use youtiao_bench::report::Table;
use youtiao_chip::topology;
use youtiao_core::tdm::DemuxLevel;
use youtiao_core::{PlannerConfig, TdmConfig, YoutiaoPlanner};

fn main() {
    println!("== Figure 16: cryo-DEMUX level proportions vs threshold theta ==\n");
    let thetas = [2.0f64, 3.0, 4.0, 5.0, 6.0, 8.0];
    let mut header: Vec<String> = vec!["topology".into()];
    header.extend(thetas.iter().map(|t| format!("theta={t}")));
    let mut t = Table::new(header);

    for chip in topology::paper_suite() {
        let mut cells = vec![chip.name().to_string()];
        for &theta in &thetas {
            let config = PlannerConfig {
                tdm: TdmConfig {
                    theta,
                    ..Default::default()
                },
                ..Default::default()
            };
            let plan = YoutiaoPlanner::new(&chip)
                .with_config(config)
                .plan()
                .expect("paper-suite chips plan cleanly");
            let mut counts = [0usize; 3]; // 1:4, 1:2, direct
            for g in plan.tdm_groups() {
                match g.level() {
                    DemuxLevel::OneToEight | DemuxLevel::OneToFour => counts[0] += g.len(),
                    DemuxLevel::OneToTwo => counts[1] += g.len(),
                    _ => counts[2] += g.len(),
                }
            }
            let total = (counts[0] + counts[1] + counts[2]) as f64;
            cells.push(format!(
                "{:>3.0}%/{:>3.0}%",
                100.0 * counts[0] as f64 / total,
                100.0 * counts[1] as f64 / total,
            ));
        }
        t.row(cells);
    }
    t.print();
    println!("\ncells show the share of Z devices on 1:4 / 1:2 DEMUXes (rest: direct lines).");
    println!("paper: square keeps the largest 1:2 share; larger theta favours 1:4.");
}
