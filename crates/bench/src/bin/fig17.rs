//! Reproduces **Figure 17**: wiring estimation for large-scale quantum
//! systems.
//!
//! (a) 10–1k qubits, square topology: >2.3× coax reduction.
//! (b) 150-qubit system: 613 → 267 coax cables; XY fidelity 94.3% with
//!     every qubit driven.
//! (c) vs IBM's chiplet scale-out (25 × 133-qubit chips): 3.4–3.5×.
//! (d) 1k–100k qubits: 3.1× reduction (to 32% of the original count),
//!     saving over $2.3B.
//!
//! Run with `cargo run --release -p youtiao-bench --bin fig17`.

use youtiao_bench::fdm_eval::{default_simulator, per_qubit_gate_error, FdmScenario};
use youtiao_bench::report::{pct, ratio, Table};
use youtiao_bench::{fitted_xy_model, DEFAULT_SEED};
use youtiao_chip::topology;
use youtiao_core::{PartitionConfig, PlannerConfig, YoutiaoPlanner};
use youtiao_cost::scale::{ibm_chiplet, square_system, ScalingModel};
use youtiao_cost::{COAX_COST_KUSD, RF_DAC_COST_KUSD, TWISTED_PAIR_COST_KUSD};

fn main() {
    // Calibrate YOUTIAO per-line occupancies from real planner runs.
    let model = ScalingModel::calibrate(&[6, 8, 10]);

    println!("== Figure 17 (a): coax cables, 10-1k qubits (square topology) ==\n");
    let mut t = Table::new(vec!["#qubits", "Google coax", "YOUTIAO coax", "reduction"]);
    for n in [10usize, 30, 100, 300, 1000] {
        let g = model.google_tally(n).coax_lines();
        let y = model.youtiao_tally(n).coax_lines();
        t.row(vec![
            n.to_string(),
            g.to_string(),
            y.to_string(),
            ratio(g as f64, y as f64),
        ]);
    }
    t.print();
    println!("\npaper: >2.3x reduction across this range\n");

    println!("== Figure 17 (b): the 150-qubit system ==\n");
    let g150 = square_system(150).google_coax(4);
    let y150 = model.youtiao_tally(150).coax_lines();
    println!("Google coax:  {g150} (paper: 613)");
    println!("YOUTIAO coax: {y150} (paper: 267)");
    // All-qubit parallel XY fidelity on the actual 150-qubit plan.
    let chip = topology::square_grid(10, 15);
    let xy_model = fitted_xy_model(&chip, DEFAULT_SEED);
    let config = PlannerConfig {
        partition: Some(PartitionConfig::for_target_size(&chip, 40)),
        ..Default::default()
    };
    let plan = YoutiaoPlanner::new(&chip)
        .with_crosstalk_model(&xy_model)
        .with_config(config)
        .plan()
        .expect("150-qubit plan succeeds");
    let scenario = FdmScenario {
        chip: &chip,
        lines: plan.fdm_lines(),
        freqs: plan.frequency_plan(),
        model: &xy_model,
    };
    let errs = per_qubit_gate_error(&scenario, &default_simulator());
    let all_qubit_fidelity: f64 = errs.iter().map(|e| 1.0 - e).product();
    println!(
        "XY fidelity with all 150 qubits driven: {} (paper: 94.3%)\n",
        pct(all_qubit_fidelity)
    );

    println!("== Figure 17 (c): vs IBM chiplet scale-out ==\n");
    // Wire the very same heavy-hex chiplets with YOUTIAO (one plan per
    // chip, replicated), rather than a different topology.
    let chiplet = youtiao_cost::scale::ibm_chiplet_chip();
    let mut chiplet_cfg = PlannerConfig::default();
    chiplet_cfg.tdm.theta = 8.0;
    let chiplet_plan = YoutiaoPlanner::new(&chiplet)
        .with_config(chiplet_cfg)
        .plan()
        .expect("chiplet plan succeeds");
    let y_per_chip = youtiao_cost::WiringTally::youtiao(&chiplet_plan).coax_lines();
    let mut t = Table::new(vec![
        "chiplets",
        "#qubits",
        "IBM coax",
        "YOUTIAO coax",
        "reduction",
    ]);
    for copies in [5usize, 10, 25] {
        let (q, ibm) = ibm_chiplet(copies);
        let y = y_per_chip * copies;
        t.row(vec![
            copies.to_string(),
            q.to_string(),
            ibm.to_string(),
            y.to_string(),
            ratio(ibm as f64, y as f64),
        ]);
    }
    t.print();
    println!("\npaper: 3.4x overall, 3.5x at 25 chiplets\n");

    println!("== Figure 17 (d): 1k-100k qubits ==\n");
    let mut t = Table::new(vec![
        "#qubits",
        "Google coax",
        "YOUTIAO coax",
        "remaining",
        "savings ($B)",
    ]);
    for n in [1_000usize, 3_000, 10_000, 30_000, 100_000] {
        let g = model.google_tally(n);
        let y = model.youtiao_tally(n);
        let cost = |t: &youtiao_cost::WiringTally| -> f64 {
            t.coax_lines() as f64 * COAX_COST_KUSD
                + t.rf_dacs() as f64 * RF_DAC_COST_KUSD
                + t.demux_select_lines as f64 * TWISTED_PAIR_COST_KUSD
        };
        let savings_busd = (cost(&g) - cost(&y)) / 1e6;
        t.row(vec![
            n.to_string(),
            g.coax_lines().to_string(),
            y.coax_lines().to_string(),
            format!(
                "{:.0}%",
                100.0 * y.coax_lines() as f64 / g.coax_lines() as f64
            ),
            format!("{savings_busd:.2}"),
        ]);
    }
    t.print();
    println!("\npaper at 100k qubits: 4.4e5 cables cut to 32%, saving over $2.3B");
}
