//! Reproduces **Figure 17**: wiring estimation for large-scale quantum
//! systems.
//!
//! (a) 10–1k qubits, square topology: >2.3× coax reduction.
//! (b) 150-qubit system: 613 → 267 coax cables; XY fidelity 94.3% with
//!     every qubit driven.
//! (c) vs IBM's chiplet scale-out (25 × 133-qubit chips): 3.4–3.5×.
//! (d) 1k–100k qubits: 3.1× reduction (to 32% of the original count),
//!     saving over $2.3B.
//!
//! The plans behind parts (b) and (c) come from one-point sweeps on the
//! `youtiao-xplore` engine (`youtiao_bench::figs`); this binary just
//! prints the report.
//!
//! Run with `cargo run --release -p youtiao-bench --bin fig17`.

fn main() {
    print!("{}", youtiao_bench::figs::fig17_report());
}
