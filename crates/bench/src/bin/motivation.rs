//! Reproduces the paper's **motivating measurements** (§1, §3.2):
//!
//! * an 8-qubit Deutsch–Jozsa circuit under unoptimized 1:4-DEMUX TDM
//!   control (XY, Z and readout all behind the DEMUX) suffers 2.1×
//!   latency, dropping fidelity from 87.6% to 77.3%;
//! * parallel X gates on qubit groups sharing the same frequency pattern
//!   drop to 98.9% fidelity.
//!
//! Run with `cargo run --release -p youtiao-bench --bin motivation`.

use youtiao_bench::fdm_eval::{default_simulator, per_qubit_gate_error, FdmScenario};
use youtiao_bench::report::pct;
use youtiao_bench::{fitted_xy_model, target_chip_36, DEFAULT_SEED};
use youtiao_chip::topology;
use youtiao_circuit::schedule::{schedule_asap, schedule_with_tdm_pulse, CzPulseModel};
use youtiao_circuit::{Circuit, FidelityEstimator, Gate};
use youtiao_core::baselines::NaiveFdm;
use youtiao_core::freq::FreqConfig;
use youtiao_core::AcharyaTdm;

/// A hardware-matched 8-qubit Deutsch–Jozsa on the 3×3 chip: the ancilla
/// sits at the grid centre (q4) and the balanced oracle touches two of
/// its direct neighbours, so no routing SWAPs are needed.
fn dj8_on_grid() -> Circuit {
    let mut c = Circuit::new(9);
    let ancilla = 4u32.into();
    let inputs: Vec<youtiao_chip::QubitId> =
        [0u32, 1, 2, 3, 5, 6, 7].iter().map(|&i| i.into()).collect();
    c.push1(Gate::X, ancilla).expect("in range");
    c.push1(Gate::H, ancilla).expect("in range");
    for &q in &inputs {
        c.push1(Gate::H, q).expect("in range");
    }
    // Balanced oracle f(x) = x_1 xor x_3 (both adjacent to the centre).
    for control in [1u32.into(), 3u32.into()] {
        c.push1(Gate::H, ancilla).expect("in range");
        c.push2(Gate::Cz, control, ancilla).expect("in range");
        c.push1(Gate::H, ancilla).expect("in range");
    }
    for &q in &inputs {
        c.push1(Gate::H, q).expect("in range");
        c.push1(Gate::Measure, q).expect("in range");
    }
    c
}

fn main() {
    println!("== Motivation 1: 8-qubit Deutsch-Jozsa under unoptimized 1:4 TDM ==\n");
    let chip = topology::square_grid(3, 3);
    let physical = dj8_on_grid();

    let dedicated = schedule_asap(&physical, &chip).expect("dedicated schedules");
    // Unoptimized clustering onto 1:4 DEMUXes with *all* control lines
    // (XY, Z, readout) behind the DEMUX — the paper's §1 scenario.
    let naive_tdm = AcharyaTdm::for_chip(&chip);
    let tdm = schedule_with_tdm_pulse(&physical, &chip, &naive_tdm, CzPulseModel::AllControl)
        .expect("legal clustering schedules");

    let est = FidelityEstimator::paper();
    let f_ded = est.estimate(&dedicated, &chip).total();
    let f_tdm = est.estimate(&tdm, &chip).total();
    println!(
        "latency:  {:.0} ns -> {:.0} ns ({:.1}x; paper: 2.1x)",
        dedicated.makespan_ns(),
        tdm.makespan_ns(),
        tdm.makespan_ns() / dedicated.makespan_ns()
    );
    println!(
        "fidelity: {} -> {} (paper: 87.6% -> 77.3%)\n",
        pct(f_ded),
        pct(f_tdm)
    );

    println!("== Motivation 2: parallel X gates with colliding frequency groups ==\n");
    let big = target_chip_36();
    let model = fitted_xy_model(&big, DEFAULT_SEED);
    let naive = NaiveFdm::for_chip(&big, 4, &FreqConfig::default());
    let scenario = FdmScenario {
        chip: &big,
        lines: naive.fdm_lines(),
        freqs: naive.frequency_plan(),
        model: &model,
    };
    let errs = per_qubit_gate_error(&scenario, &default_simulator());
    let layer_fidelity: f64 = errs.iter().map(|e| 1.0 - e).product();
    println!(
        "parallel X-gate layer fidelity: {} (paper: 98.9%)",
        pct(layer_fidelity)
    );
}
