//! Developer utility: routes the Table-2 net lists one net at a time and
//! reports where routing fails. Not part of the paper reproduction.

use youtiao_bench::nets::{google_nets, scaled_for_routing, sort_inside_out};
use youtiao_chip::topology;
use youtiao_route::router::{route_chip, route_chip_with_retries, RouteConfig};

fn main() {
    let chip = topology::square_grid(3, 3);
    let rchip = scaled_for_routing(&chip, 2.0);
    let mut nets = google_nets(&rchip, 8);
    sort_inside_out(&rchip, &mut nets);
    let cfg = RouteConfig::default();
    let t0 = std::time::Instant::now();
    match route_chip_with_retries(&rchip, &nets, &cfg, 300) {
        Ok(r) => println!(
            "retry router: OK in {:?}, area {:.2} mm^2, drc clean: {}",
            t0.elapsed(),
            r.routing_area_mm2,
            r.drc.is_clean()
        ),
        Err(e) => println!("retry router: FAILED after {:?}: {e}", t0.elapsed()),
    }
    println!(
        "order: {:?}",
        nets.iter().map(|n| n.name.clone()).collect::<Vec<_>>()
    );
    for k in 1..=nets.len() {
        match route_chip(&rchip, &nets[..k], &cfg) {
            Ok(r) => println!(
                "{k:2} nets ok, last={} len={:.2}mm",
                nets[k - 1].name,
                r.nets.last().unwrap().length_mm
            ),
            Err(e) => {
                println!("{k:2} nets FAILED: {e}");
                // Probe: route ONLY the failing net on an otherwise
                // stub-reserved grid to separate congestion from setup.
                let solo = vec![nets[k - 1].clone()];
                match route_chip(&rchip, &solo, &cfg) {
                    Ok(_) => println!("   (net routes fine alone)"),
                    Err(e2) => println!("   (net fails even alone: {e2})"),
                }
                // And with all nets' reservations but only this net routed:
                let mut reordered = nets[..k].to_vec();
                let failed = reordered.remove(k - 1);
                reordered.insert(0, failed);
                match route_chip(&rchip, &reordered, &cfg) {
                    Ok(_) => println!("   (routes when promoted to front)"),
                    Err(e2) => println!("   (still fails promoted: {e2})"),
                }
                break;
            }
        }
    }
}
