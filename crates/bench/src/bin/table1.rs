//! Reproduces **Table 1**: fault-tolerant (surface-code) chip wiring for
//! code distances 3–11, Google dedicated wiring vs YOUTIAO.
//!
//! Paper reference points: d = 11: Google #XY 241, #Z 681, $6.43M,
//! depth 600; YOUTIAO #XY 49, #Z 324, $2.84M, depth 750 — a 2.35×
//! wiring-cost reduction at a 1.18× average two-qubit-depth increase
//! over a 25-cycle error-correction circuit.
//!
//! Run with `cargo run --release -p youtiao-bench --bin table1`.

use youtiao_bench::report::{kusd, ratio, Table};
use youtiao_chip::surface::SurfaceCode;
use youtiao_circuit::schedule::{schedule_asap, schedule_with_tdm_strict};
use youtiao_circuit::surface_cycle::{cycle_activity, cycles_circuit};
use youtiao_core::{PlannerConfig, YoutiaoPlanner};
use youtiao_cost::WiringTally;

const CYCLES: usize = 25;

fn main() {
    println!("== Table 1: fault-tolerant quantum chip wiring ({CYCLES} QEC cycles) ==\n");
    let mut t = Table::new(vec![
        "distance",
        "scheme",
        "#XY line",
        "#Z line",
        "wiring cost",
        "2q depth",
    ]);
    let mut cost_ratios = Vec::new();
    let mut depth_ratios = Vec::new();

    for d in [3usize, 5, 7, 9, 11] {
        let code = SurfaceCode::rotated(d);
        let chip = code.chip();
        let activity = cycle_activity(&code);
        // Allow at most one extra serialized window per DEMUX group and
        // cycle: the paper's ~1.18x depth/wiring trade-off point.
        let mut config = PlannerConfig::default();
        config.tdm.max_shared_slots = 1;
        let plan = YoutiaoPlanner::new(chip)
            .with_config(config)
            .with_activity(&activity)
            .plan()
            .expect("surface layouts plan cleanly");

        let g = WiringTally::google(chip);
        let y = WiringTally::youtiao(&plan);

        let circuit = cycles_circuit(&code, CYCLES).expect("cycle circuit builds");
        let g_sched = schedule_asap(&circuit, chip).expect("dedicated wiring schedules");
        let y_sched = schedule_with_tdm_strict(&circuit, chip, &plan)
            .expect("plan has no unrealizable gates");
        let (gd, yd) = (g_sched.two_qubit_depth(), y_sched.two_qubit_depth());

        t.row(vec![
            d.to_string(),
            "Google".into(),
            g.xy_lines.to_string(),
            g.z_lines.to_string(),
            kusd(g.cost_kusd()),
            gd.to_string(),
        ]);
        t.row(vec![
            String::new(),
            "YOUTIAO".into(),
            y.xy_lines.to_string(),
            y.z_lines.to_string(),
            format!(
                "{} ({})",
                kusd(y.cost_kusd()),
                ratio(g.cost_kusd(), y.cost_kusd())
            ),
            format!("{} ({})", yd, ratio(yd as f64, gd as f64)),
        ]);
        cost_ratios.push(g.cost_kusd() / y.cost_kusd());
        depth_ratios.push(yd as f64 / gd as f64);
    }
    t.print();

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\naverage wiring-cost reduction: {:.2}x (paper: 2.35x at d=11)",
        avg(&cost_ratios)
    );
    println!(
        "average 2q-depth increase:     {:.2}x on the ideal 4-CZ-layer cycle",
        avg(&depth_ratios)
    );
    // The paper's dedicated-wiring baseline is 24-27 CZ layers per cycle
    // (600-675 over 25 cycles); expressed on that baseline, our measured
    // extra layers per cycle reproduce its 1.18x.
    let extra_per_cycle: Vec<f64> = depth_ratios.iter().map(|r| (r - 1.0) * 4.0).collect();
    let paper_equiv: f64 = extra_per_cycle
        .iter()
        .map(|e| (24.0 + e) / 24.0)
        .sum::<f64>()
        / extra_per_cycle.len() as f64;
    println!(
        "extra CZ layers per cycle:     {:.1} on average (paper: +1..+5 per cycle)",
        avg(&extra_per_cycle)
    );
    println!(
        "paper-equivalent depth ratio:  {paper_equiv:.2}x on the paper's 24-layer cycle (paper: 1.18x)"
    );
    println!(
        "\nnote: the paper reports 600-675 two-qubit layers per 25 cycles for\n\
         dedicated wiring (24-27 per cycle); an ideal surface-code cycle has 4\n\
         CZ layers, which is what our dedicated-wiring schedule achieves. The\n\
         reproducible claims are the cost reduction and the *absolute* TDM\n\
         serialization overhead. See EXPERIMENTS.md."
    );
}
