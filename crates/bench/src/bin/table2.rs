//! Reproduces **Table 2**: cryostat-level and chip-level wiring
//! evaluation across the five qubit topologies.
//!
//! Paper reference points (Google → YOUTIAO): heavy square 21q:
//! #XY 21→5, #Z 45→12, #DAC 72→47, cost $470K→$151K, interfaces 69→44,
//! routing area 10.15→7.97 mm².
//!
//! Run with `cargo run --release -p youtiao-bench --bin table2`.

use youtiao_bench::nets::{google_nets, scaled_for_routing, sort_inside_out, youtiao_nets};
use youtiao_bench::report::{kusd, ratio, Table};
use youtiao_bench::{fitted_xy_model, DEFAULT_SEED};
use youtiao_chip::topology;
use youtiao_core::YoutiaoPlanner;
use youtiao_cost::WiringTally;
use youtiao_route::channel::{channel_route, ChannelConfig};

fn main() {
    let chips = topology::paper_suite();

    println!("== Table 2: quantum wiring system evaluation ==\n");
    println!("-- cryostat level --");
    let mut t = Table::new(vec![
        "topology",
        "#qubit",
        "scheme",
        "#XY",
        "#Z",
        "DEMUX ctl",
        "#DAC",
        "wiring cost",
    ]);
    let mut summaries = Vec::new();
    for chip in &chips {
        let model = fitted_xy_model(chip, DEFAULT_SEED);
        let plan = YoutiaoPlanner::new(chip)
            .with_crosstalk_model(&model)
            .plan()
            .expect("paper-suite chips plan cleanly");
        let g = WiringTally::google(chip);
        let y = WiringTally::youtiao(&plan);
        t.row(vec![
            chip.name().to_string(),
            chip.num_qubits().to_string(),
            "Google".into(),
            g.xy_lines.to_string(),
            g.z_lines.to_string(),
            "-".into(),
            g.dac_channels().to_string(),
            kusd(g.cost_kusd()),
        ]);
        t.row(vec![
            String::new(),
            String::new(),
            "YOUTIAO".into(),
            format!(
                "{} ({})",
                y.xy_lines,
                ratio(g.xy_lines as f64, y.xy_lines as f64)
            ),
            format!(
                "{} ({})",
                y.z_lines,
                ratio(g.z_lines as f64, y.z_lines as f64)
            ),
            y.demux_select_lines.to_string(),
            format!(
                "{} ({})",
                y.dac_channels(),
                ratio(g.dac_channels() as f64, y.dac_channels() as f64)
            ),
            format!(
                "{} ({})",
                kusd(y.cost_kusd()),
                ratio(g.cost_kusd(), y.cost_kusd())
            ),
        ]);
        summaries.push((chip.clone(), plan, g, y));
    }
    t.print();

    println!("\n-- chip level (Manhattan channel routing, 20 um width / 30 um pitch) --");
    let mut t = Table::new(vec![
        "topology",
        "scheme",
        "#interface",
        "routing area (mm^2)",
        "drc",
    ]);
    let mut area_ratios: Vec<f64> = Vec::new();
    for (chip, plan, g, y) in &summaries {
        // Route on 2x-scaled geometry: the logical 1 mm qubit pitch
        // excludes the ~4.3 mm readout resonators that set the real
        // routing pitch.
        let rchip = scaled_for_routing(chip, 2.0);
        let mut gn = google_nets(&rchip, 8);
        let mut yn = youtiao_nets(&rchip, plan);
        sort_inside_out(&rchip, &mut gn);
        sort_inside_out(&rchip, &mut yn);
        // Both schemes share one die, sized so the denser (Google)
        // netlist fits the 0.5 mm interface pitch on the perimeter.
        let mut cfg = ChannelConfig::default();
        let bb = rchip.bounding_box();
        let need = gn.len().max(yn.len()) as f64 * cfg.interface_pitch_mm * 1.2;
        let margin = ((need / 2.0 - (bb.width() + bb.height())) / 4.0).max(1.0);
        cfg.margin_mm = margin;
        let gr = channel_route(&rchip, &gn, &cfg)
            .expect("google nets route")
            .routing;
        let yr = channel_route(&rchip, &yn, &cfg)
            .expect("youtiao nets route")
            .routing;
        // RF coplanar lines occupy the 30 um pitch; DEMUX select lines
        // are narrow DC traces (~10 um pitch).
        let area = |r: &youtiao_route::RoutingResult| -> f64 {
            r.nets
                .iter()
                .map(|n| {
                    let pitch = if n.name.starts_with("sel-") {
                        0.01
                    } else {
                        cfg.pitch_mm
                    };
                    n.length_mm * pitch
                })
                .sum()
        };
        let g_area = area(&gr);
        let y_area = area(&yr);
        area_ratios.push(g_area / y_area);
        t.row(vec![
            chip.name().to_string(),
            "Google".into(),
            g.interfaces().to_string(),
            format!("{g_area:.2}"),
            if gr.drc.is_clean() {
                "clean".into()
            } else {
                format!("{} viol", gr.drc.violations().len())
            },
        ]);
        t.row(vec![
            String::new(),
            "YOUTIAO".into(),
            format!(
                "{} ({})",
                y.interfaces(),
                ratio(g.interfaces() as f64, y.interfaces() as f64)
            ),
            format!("{y_area:.2} ({})", ratio(g_area, y_area)),
            if yr.drc.is_clean() {
                "clean".into()
            } else {
                format!("{} viol", yr.drc.violations().len())
            },
        ]);
    }
    t.print();

    // Aggregates the paper quotes in the text.
    let avg = |f: &dyn Fn(&WiringTally, &WiringTally) -> f64| -> f64 {
        summaries.iter().map(|(_, _, g, y)| f(g, y)).sum::<f64>() / summaries.len() as f64
    };
    let area_avg = area_ratios.iter().sum::<f64>() / area_ratios.len() as f64;
    println!("\naverage routing-area reduction: {area_avg:.2}x (paper: ~1.3x)");
    println!(
        "average XY-line reduction:   {:.1}x (paper: 4.2x)",
        avg(&|g, y| g.xy_lines as f64 / y.xy_lines as f64)
    );
    println!(
        "average Z-line reduction:    {:.1}x (paper: 3.7x)",
        avg(&|g, y| g.z_lines as f64 / y.z_lines as f64)
    );
    println!(
        "average cost reduction:      {:.1}x (paper: ~3.1x)",
        avg(&|g, y| g.cost_kusd() / y.cost_kusd())
    );
    println!(
        "average interface reduction: {:.1}x (paper: 1.6x)",
        avg(&|g, y| g.interfaces() as f64 / y.interfaces() as f64)
    );
    println!(
        "\nnote: the paper's square-topology #Z(Google)=37 contradicts its own #DAC=33\n\
         column (33 = 9 XY + 21 Z + 3 readout implies #Z = 21); we report the\n\
         self-consistent value. See EXPERIMENTS.md."
    );
}
