//! Cross-validates the analytic fidelity estimator against Monte-Carlo
//! state-vector trajectories, and confirms that the scheme ordering of
//! Figures 14–15 (Google ≥ YOUTIAO ≥ Acharya) survives full trajectory
//! simulation rather than first-order estimation.
//!
//! Run with `cargo run --release -p youtiao-bench --bin validate`.

use youtiao_bench::report::{pct, Table};
use youtiao_bench::DEFAULT_SEED;
use youtiao_chip::topology;
use youtiao_circuit::benchmarks::Benchmark;
use youtiao_circuit::schedule::{schedule_with_tdm, DedicatedLines, SharedLineConstraint};
use youtiao_circuit::transpile::transpile_snake;
use youtiao_circuit::FidelityEstimator;
use youtiao_core::{AcharyaTdm, YoutiaoPlanner};
use youtiao_sim::{simulate_fidelity_mc, NoiseParams};

const TRIALS: usize = 300;

fn main() {
    let chip = topology::square_grid(4, 4);
    let plan = YoutiaoPlanner::new(&chip)
        .plan()
        .expect("16-qubit plan succeeds");
    let acharya = AcharyaTdm::for_chip(&chip);
    let est = FidelityEstimator::paper();
    let noise = NoiseParams::from_estimator(&est);

    println!("== Estimator validation: analytic vs {TRIALS}-trajectory Monte Carlo ==");
    println!("(16-qubit chip, 12-qubit benchmark instances)\n");
    let mut t = Table::new(vec![
        "benchmark",
        "scheme",
        "analytic",
        "monte carlo",
        "gap",
    ]);
    let mut max_gap = 0.0f64;
    for b in [Benchmark::Vqc, Benchmark::Ising, Benchmark::Dj] {
        let logical = b.generate(12);
        let physical = transpile_snake(&logical, &chip)
            .expect("benchmarks fit")
            .circuit;
        let schemes: [(&str, &dyn SharedLineConstraint); 3] = [
            ("Google", &DedicatedLines),
            ("YOUTIAO", &plan),
            ("Acharya", &acharya),
        ];
        let mut last = f64::INFINITY;
        for (name, constraint) in schemes {
            let schedule = schedule_with_tdm(&physical, &chip, constraint).expect("plans schedule");
            let analytic = est.estimate(&schedule, &chip).total();
            let mc =
                simulate_fidelity_mc(&schedule, chip.num_qubits(), &noise, TRIALS, DEFAULT_SEED);
            let gap = (mc - analytic).abs();
            max_gap = max_gap.max(gap);
            t.row(vec![
                b.name().into(),
                name.into(),
                pct(analytic),
                pct(mc),
                format!("{gap:.3}"),
            ]);
            // Ordering check: each scheme should not beat the previous
            // (Google >= YOUTIAO >= Acharya) under MC as well — small MC
            // noise tolerated.
            assert!(
                mc <= last + 0.03,
                "{}: ordering violated ({mc} > {last})",
                b.name()
            );
            last = mc;
        }
    }
    t.print();
    println!(
        "\nlargest analytic-vs-MC gap: {max_gap:.3} (expect < ~0.1: the product model\n\
         slightly underestimates deep circuits, where some Pauli errors cancel)"
    );
    println!("scheme ordering Google >= YOUTIAO >= Acharya holds under trajectory simulation.");
}
