//! Per-qubit gate-error evaluation for FDM wiring schemes.
//!
//! The implementation moved to [`youtiao_xplore::eval`] so the sweep
//! engine can evaluate per-point fidelity objectives with the exact
//! physics the figure binaries report; this module re-exports it under
//! the historical `youtiao_bench::fdm_eval` path.

pub use youtiao_xplore::eval::{
    default_simulator, mean_gate_fidelity, per_qubit_gate_error, processor_fidelity,
    processor_fidelity_after_layers, FdmScenario,
};
