//! Figure 16/17 reports, built on the `youtiao-xplore` sweep engine.
//!
//! The figure binaries used to drive the planner loop themselves; they
//! are now thin wrappers around these report builders, which declare
//! the corresponding [`SweepSpec`] and read the numbers back out of the
//! engine's records. The rendered text is byte-identical to the
//! pre-engine output (`results/fig16.txt` / `results/fig17.txt`), which
//! `tests/fig_ports.rs` locks in.

use youtiao_chip::ChipSpec;
use youtiao_xplore::{run_sweep, ChipRequest, SweepOptions, SweepRecord, SweepSpec};

use crate::report::{pct, ratio, Table};
use crate::DEFAULT_SEED;

/// Runs `spec` with default options, discarding the JSONL stream and
/// asserting every point planned.
fn sweep_records(spec: &SweepSpec) -> Vec<SweepRecord> {
    let outcome = run_sweep(spec, &SweepOptions::default(), &mut std::io::sink())
        .expect("figure sweeps are valid");
    assert!(
        outcome.records.iter().all(SweepRecord::is_ok),
        "figure sweeps plan cleanly"
    );
    outcome.records
}

/// The θ axis of Figure 16.
pub const FIG16_THETAS: [f64; 6] = [2.0, 3.0, 4.0, 5.0, 6.0, 8.0];

/// The Figure 16 sweep: the paper topology suite × the θ axis,
/// structure-only planning (no noise model).
pub fn fig16_spec() -> SweepSpec {
    let mut spec = SweepSpec::new(vec![
        ChipRequest::grid("square", 3, 3),
        ChipRequest::grid("hexagon", 2, 2),
        ChipRequest::grid("heavy-square", 3, 3),
        ChipRequest::grid("heavy-hexagon", 1, 2),
        ChipRequest::grid("low-density", 3, 6),
    ]);
    spec.name = Some("fig16".into());
    spec.thetas = Some(FIG16_THETAS.to_vec());
    spec.use_model = Some(false);
    spec
}

/// Reproduces **Figure 16**: the proportion of 1:2 vs 1:4 cryo-DEMUXes
/// chosen by the TDM grouping across topologies as θ sweeps.
pub fn fig16_report() -> String {
    let records = sweep_records(&fig16_spec());
    let thetas = FIG16_THETAS.len();

    let mut header: Vec<String> = vec!["topology".into()];
    header.extend(FIG16_THETAS.iter().map(|t| format!("theta={t}")));
    let mut t = Table::new(header);
    for chip_rows in records.chunks(thetas) {
        let mut cells = vec![chip_rows[0].chip.clone()];
        for record in chip_rows {
            let deep = record.demux_deep.unwrap();
            let one_to_two = record.demux_one_to_two.unwrap();
            let total = (deep + one_to_two + record.demux_direct.unwrap()) as f64;
            cells.push(format!(
                "{:>3.0}%/{:>3.0}%",
                100.0 * deep as f64 / total,
                100.0 * one_to_two as f64 / total,
            ));
        }
        t.row(cells);
    }

    let mut out = String::new();
    out.push_str("== Figure 16: cryo-DEMUX level proportions vs threshold theta ==\n\n");
    out.push_str(&t.render());
    out.push_str(
        "\ncells show the share of Z devices on 1:4 / 1:2 DEMUXes (rest: direct lines).\n",
    );
    out.push_str("paper: square keeps the largest 1:2 share; larger theta favours 1:4.\n");
    out
}

/// The Figure 17 (b) sweep: one point — the 150-qubit (10×15 square)
/// system, noise-aware with the paper seed, partitioned toward
/// 40-qubit regions, with the all-driven fidelity evaluated.
pub fn fig17b_spec() -> SweepSpec {
    let mut spec = SweepSpec::new(vec![ChipRequest::grid("square", 10, 15)]);
    spec.name = Some("fig17b".into());
    spec.seeds = Some(vec![DEFAULT_SEED]);
    spec.fidelity = Some(true);
    spec.partition_target = Some(40);
    spec
}

/// The chiplet-count axis of Figure 17 (c).
pub const FIG17C_CHIPLETS: [usize; 3] = [5, 10, 25];

/// The Figure 17 (c) sweep: the IBM heavy-hex chiplet tiled into true
/// multi-die arrays of 5/10/25 dies (grid-linked, per-die plans plus
/// cross-die link reconciliation), wired with YOUTIAO at θ=8,
/// structure-only.
pub fn fig17c_spec() -> SweepSpec {
    let chiplet = youtiao_cost::scale::ibm_chiplet_chip();
    let mut spec = SweepSpec::new(vec![ChipRequest {
        topology: None,
        rows: None,
        cols: None,
        size: None,
        distance: None,
        spec: Some(ChipSpec::from_chip(&chiplet)),
        chiplets: None,
        link_topology: None,
    }]);
    spec.name = Some("fig17c".into());
    spec.thetas = Some(vec![8.0]);
    spec.use_model = Some(false);
    spec.chiplets = Some(FIG17C_CHIPLETS.to_vec());
    spec
}

/// Reproduces **Figure 17**: wiring estimation for large-scale quantum
/// systems. The scaling-model arithmetic (parts a/d and the IBM
/// baseline of part c) stays here; the actual plans behind parts (b)
/// and (c) come from one-point sweeps.
pub fn fig17_report() -> String {
    use youtiao_cost::scale::{ibm_chiplet, square_system, ScalingModel};
    use youtiao_cost::{COAX_COST_KUSD, RF_DAC_COST_KUSD, TWISTED_PAIR_COST_KUSD};

    // Calibrate YOUTIAO per-line occupancies from real planner runs.
    let model = ScalingModel::calibrate(&[6, 8, 10]);
    let mut out = String::new();

    out.push_str("== Figure 17 (a): coax cables, 10-1k qubits (square topology) ==\n\n");
    let mut t = Table::new(vec!["#qubits", "Google coax", "YOUTIAO coax", "reduction"]);
    for n in [10usize, 30, 100, 300, 1000] {
        let g = model.google_tally(n).coax_lines();
        let y = model.youtiao_tally(n).coax_lines();
        t.row(vec![
            n.to_string(),
            g.to_string(),
            y.to_string(),
            ratio(g as f64, y as f64),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\npaper: >2.3x reduction across this range\n\n");

    out.push_str("== Figure 17 (b): the 150-qubit system ==\n\n");
    let g150 = square_system(150).google_coax(4);
    let y150 = model.youtiao_tally(150).coax_lines();
    out.push_str(&format!("Google coax:  {g150} (paper: 613)\n"));
    out.push_str(&format!("YOUTIAO coax: {y150} (paper: 267)\n"));
    // All-qubit parallel XY fidelity on the actual 150-qubit plan.
    let record = &sweep_records(&fig17b_spec())[0];
    out.push_str(&format!(
        "XY fidelity with all 150 qubits driven: {} (paper: 94.3%)\n\n",
        pct(record.fidelity.unwrap())
    ));

    out.push_str("== Figure 17 (c): vs IBM chiplet scale-out ==\n\n");
    // Wire the very same heavy-hex chiplets with YOUTIAO as true
    // multi-die arrays: one plan per die, cross-die links reconciled,
    // cryostat totals summed by the multi-die flow.
    let fig17c = sweep_records(&fig17c_spec());
    let mut t = Table::new(vec![
        "chiplets",
        "#qubits",
        "IBM coax",
        "YOUTIAO coax",
        "reduction",
    ]);
    for record in &fig17c {
        let copies = record.chiplets;
        let (q, ibm) = ibm_chiplet(copies);
        assert_eq!(
            record.qubits, q,
            "multi-die array disagrees with the IBM baseline"
        );
        let y = record.coax_lines.unwrap();
        t.row(vec![
            copies.to_string(),
            q.to_string(),
            ibm.to_string(),
            y.to_string(),
            ratio(ibm as f64, y as f64),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\npaper: 3.4x overall, 3.5x at 25 chiplets\n\n");

    out.push_str("== Figure 17 (d): 1k-100k qubits ==\n\n");
    let mut t = Table::new(vec![
        "#qubits",
        "Google coax",
        "YOUTIAO coax",
        "remaining",
        "savings ($B)",
    ]);
    for n in [1_000usize, 3_000, 10_000, 30_000, 100_000] {
        let g = model.google_tally(n);
        let y = model.youtiao_tally(n);
        let cost = |t: &youtiao_cost::WiringTally| -> f64 {
            t.coax_lines() as f64 * COAX_COST_KUSD
                + t.rf_dacs() as f64 * RF_DAC_COST_KUSD
                + t.demux_select_lines as f64 * TWISTED_PAIR_COST_KUSD
        };
        let savings_busd = (cost(&g) - cost(&y)) / 1e6;
        t.row(vec![
            n.to_string(),
            g.coax_lines().to_string(),
            y.coax_lines().to_string(),
            format!(
                "{:.0}%",
                100.0 * y.coax_lines() as f64 / g.coax_lines() as f64
            ),
            format!("{savings_busd:.2}"),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\npaper at 100k qubits: 4.4e5 cables cut to 32%, saving over $2.3B\n");
    out
}
