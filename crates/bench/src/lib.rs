//! Shared experiment harness for the paper-reproduction binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see EXPERIMENTS.md at the workspace root). The modules here
//! hold the evaluation logic they share:
//!
//! * [`fdm_eval`] — per-qubit gate-error evaluation for FDM wiring
//!   schemes (pulse-level in-line leakage + model-predicted cross-line
//!   crosstalk), used by Figures 12–13 and 17 (b); the physics now
//!   lives in `youtiao_xplore::eval` and is re-exported here;
//! * [`tdm_eval`] — benchmark depth/fidelity evaluation across wiring
//!   schemes, used by Figures 14–15, Table 1 and the motivation demo;
//! * [`figs`] — Figure 16/17 report builders on the sweep engine;
//! * [`nets`] — chip-level net lists for the router, used by Table 2;
//! * [`perf`] — the `youtiao bench-plan` planner micro-benchmark
//!   harness behind the tracked `BENCH_plan.json` trajectory;
//! * [`repair_perf`] — the `youtiao bench-plan --repair` repair-vs-
//!   replan harness behind the tracked `BENCH_repair.json` trajectory;
//! * [`report`] — plain-text table formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fdm_eval;
pub mod figs;
pub mod nets;
pub mod perf;
pub mod repair_perf;
pub mod report;
pub mod tdm_eval;

/// The default random seed used across experiment binaries.
pub const DEFAULT_SEED: u64 = 20250705;

/// Builds the 36-qubit (6×6) evaluation chip of §5.1.
pub fn target_chip_36() -> youtiao_chip::Chip {
    youtiao_chip::topology::square_grid(6, 6)
}

/// Builds the 64-qubit (8×8) generality chip of §5.4.
pub fn target_chip_64() -> youtiao_chip::Chip {
    youtiao_chip::topology::square_grid(8, 8)
}

/// Fits the XY crosstalk model for a chip from synthesized measurements,
/// using the paper's 5-fold CV procedure. Delegates to the sweep
/// engine's characterization step so binaries and sweeps agree.
pub fn fitted_xy_model(chip: &youtiao_chip::Chip, seed: u64) -> youtiao_noise::CrosstalkModel {
    youtiao_xplore::eval::characterize_xy(chip, seed)
}
