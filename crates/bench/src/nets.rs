//! Chip-level net lists for the on-chip router (Table 2, chip level).

use youtiao_chip::chip::QUBIT_DIAMETER_MM;
use youtiao_chip::{Chip, Position, QubitId};
use youtiao_core::WiringPlan;
use youtiao_route::router::NetSpec;

/// Pad offset from the qubit centre: each control line lands on its own
/// pad on the transmon perimeter (XY west, Z east, readout north).
const PAD_OFFSET_MM: f64 = QUBIT_DIAMETER_MM / 2.0 + 0.02;

/// Rebuilds `chip` with all device positions scaled by `factor`,
/// preserving ids and couplers. Used for chip-level routing: the paper's
/// devices include ~4.3 mm readout resonators, so the effective routing
/// pitch is about twice the logical qubit pitch.
pub fn scaled_for_routing(chip: &Chip, factor: f64) -> Chip {
    let mut b = youtiao_chip::ChipBuilder::new(format!("{}-routing", chip.name()), chip.kind());
    for q in chip.qubits() {
        let p = q.position();
        b = b.qubit(Position::new(p.x * factor, p.y * factor));
    }
    for c in chip.couplers() {
        let (a, z) = c.endpoints();
        b = b.coupler(a, z);
    }
    b.build().expect("scaling preserves validity")
}

/// Sorts nets into a congestion-friendly routing order: heavily
/// constrained multi-terminal chains first, then singles innermost-first
/// (deep terminals claim scarce inner corridors before the flexible
/// perimeter nets).
pub fn sort_inside_out(chip: &Chip, nets: &mut [NetSpec]) {
    let bb = chip.bounding_box();
    let center = Position::new((bb.min.x + bb.max.x) / 2.0, (bb.min.y + bb.max.y) / 2.0);
    nets.sort_by(|a, b| {
        let depth = |n: &NetSpec| {
            n.terminals
                .iter()
                .map(|t| t.distance_to(center))
                .fold(f64::INFINITY, f64::min)
        };
        // Singles route innermost-first; long chains go last so their
        // snaking paths never enclose an unrouted inner pad.
        a.terminals
            .len()
            .cmp(&b.terminals.len())
            .then(depth(a).total_cmp(&depth(b)))
    });
}

/// Reorders a terminal list into a greedy nearest-neighbour chain so
/// chained nets do not zig-zag across the die.
fn chain_order(mut terminals: Vec<Position>) -> Vec<Position> {
    if terminals.len() <= 2 {
        return terminals;
    }
    let mut ordered = vec![terminals.remove(0)];
    while !terminals.is_empty() {
        let last = *ordered.last().expect("ordered is non-empty");
        let (i, _) = terminals
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| last.distance_to(**a).total_cmp(&last.distance_to(**b)))
            .expect("terminals is non-empty");
        ordered.push(terminals.remove(i));
    }
    ordered
}

fn xy_pad(chip: &Chip, q: QubitId) -> Position {
    let p = chip.qubit(q).expect("qubit id in range").position();
    Position::new(p.x - PAD_OFFSET_MM, p.y)
}

fn z_pad(chip: &Chip, q: QubitId) -> Position {
    let p = chip.qubit(q).expect("qubit id in range").position();
    Position::new(p.x + PAD_OFFSET_MM, p.y)
}

fn readout_pad(chip: &Chip, q: QubitId) -> Position {
    let p = chip.qubit(q).expect("qubit id in range").position();
    Position::new(p.x, p.y + PAD_OFFSET_MM)
}

/// Nets for the Google baseline: a dedicated XY and Z net per qubit, a
/// dedicated Z net per coupler, and readout feedlines chaining groups of
/// `readout_capacity` qubits.
pub fn google_nets(chip: &Chip, readout_capacity: usize) -> Vec<NetSpec> {
    let mut nets = Vec::new();
    for q in chip.qubit_ids() {
        nets.push(NetSpec::chain(format!("xy-{q}"), vec![xy_pad(chip, q)]));
    }
    for q in chip.qubit_ids() {
        nets.push(NetSpec::chain(format!("z-{q}"), vec![z_pad(chip, q)]));
    }
    for c in chip.couplers() {
        nets.push(NetSpec::chain(format!("z-{}", c.id()), vec![c.position()]));
    }
    let qubits: Vec<QubitId> = chip.qubit_ids().collect();
    for (i, group) in qubits.chunks(readout_capacity).enumerate() {
        let terminals = chain_order(group.iter().map(|&q| readout_pad(chip, q)).collect());
        nets.push(NetSpec::chain(format!("ro-{i}"), terminals));
    }
    nets
}

/// Nets for a YOUTIAO plan: one chained net per FDM line, one chained
/// net per TDM group (interface → DEMUX → devices), per-group DEMUX
/// select nets, and the readout feedlines.
pub fn youtiao_nets(chip: &Chip, plan: &WiringPlan) -> Vec<NetSpec> {
    let mut nets = Vec::new();
    for (i, line) in plan.fdm_lines().iter().enumerate() {
        let terminals = chain_order(line.qubits().iter().map(|&q| xy_pad(chip, q)).collect());
        nets.push(NetSpec::chain(format!("xy-{i}"), terminals));
    }
    for (i, group) in plan.tdm_groups().iter().enumerate() {
        let terminals: Vec<Position> = group
            .devices()
            .iter()
            .map(|&d| match d {
                youtiao_chip::DeviceId::Qubit(q) => z_pad(chip, q),
                youtiao_chip::DeviceId::Coupler(_) => chip.device_position(d),
            })
            .collect();
        let terminals = chain_order(terminals);
        // Select lines terminate at the DEMUX, placed just south of the
        // group's first device (each select pin on its own pad).
        let demux_at = terminals[0];
        nets.push(NetSpec::chain(format!("z-{i}"), terminals));
        for s in 0..group.level().select_lines() {
            let pad = Position::new(demux_at.x + 0.08 + 0.08 * s as f64, demux_at.y - 0.15);
            nets.push(NetSpec::chain(format!("sel-{i}-{s}"), vec![pad]));
        }
    }
    for (i, line) in plan.readout_lines().iter().enumerate() {
        let terminals = chain_order(line.iter().map(|&q| readout_pad(chip, q)).collect());
        nets.push(NetSpec::chain(format!("ro-{i}"), terminals));
    }
    nets
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtiao_chip::topology;
    use youtiao_core::YoutiaoPlanner;
    use youtiao_cost::WiringTally;

    #[test]
    fn google_net_count_matches_interfaces() {
        let chip = topology::square_grid(3, 3);
        let nets = google_nets(&chip, 8);
        let tally = WiringTally::google(&chip);
        assert_eq!(nets.len(), tally.interfaces());
    }

    #[test]
    fn youtiao_net_count_matches_interfaces() {
        let chip = topology::square_grid(3, 3);
        let plan = YoutiaoPlanner::new(&chip).plan().unwrap();
        let nets = youtiao_nets(&chip, &plan);
        let tally = WiringTally::youtiao(&plan);
        assert_eq!(nets.len(), tally.interfaces());
        assert!(nets.len() < google_nets(&chip, 8).len());
    }

    #[test]
    fn nets_have_terminals() {
        let chip = topology::heavy_square(3, 3);
        let plan = YoutiaoPlanner::new(&chip).plan().unwrap();
        for net in youtiao_nets(&chip, &plan)
            .iter()
            .chain(&google_nets(&chip, 8))
        {
            assert!(!net.terminals.is_empty(), "{} empty", net.name);
        }
    }
}
