//! Planner micro-benchmark harness (`youtiao bench-plan`).
//!
//! Times the planner's hot loops — kernels build, TDM grouping and
//! refinement, frequency allocation on both bands, kernelized vs the
//! retained naive references — plus the full context-backed plan,
//! across square-grid chip sizes and any extra [`Layout`]s (rotated
//! surface codes, heavy-hex patches), and summarizes each stage as
//! median / p10 / p90 over repeated iterations. The result serializes
//! to `BENCH_plan.json` so the repo carries a perf trajectory: every
//! PR can re-run the harness and compare against the committed
//! baseline.
//!
//! The harness doubles as a coarse differential check: for every size
//! it asserts the kernelized grouping/refinement/allocation output
//! equals the naive reference before trusting the timings, that the
//! parallel partitioned plan is byte-identical to its serial twin, and
//! that a warmed-up plan loop performs zero fresh scratch allocations.
//! At 12×12 it asserts the ≥5× freq/readout speedup floor, and at
//! 16×16 (with ≥8 plan threads on a host that has the cores) the ≥3×
//! parallel-planning floor.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use serde::Serialize;
use youtiao_chip::distance::equivalent_matrix;
use youtiao_chip::surface::SurfaceCode;
use youtiao_chip::{topology, Chip, DeviceId, QubitId};
use youtiao_core::freq::naive::allocate_frequencies_naive;
use youtiao_core::kernels::PairKernels;
use youtiao_core::plan::crosstalk_matrix;
use youtiao_core::refine::naive::refine_tdm_groups_naive;
use youtiao_core::refine::{refine_tdm_groups_kernels, RefineConfig};
use youtiao_core::scratch;
use youtiao_core::tdm::naive::group_tdm_with_activity_naive;
use youtiao_core::tdm::{brickwork_activity, group_tdm_kernels, TdmConfig};
use youtiao_core::{
    allocate_frequencies_kernels, group_fdm, FdmLine, FreqKernels, PartitionConfig, PlanContext,
    PlannerConfig, YoutiaoPlanner,
};

/// Schema tag written into the report so downstream tooling can detect
/// format changes. v2 added the frequency-allocation stages
/// (`freq_kernels_build`, `freq_alloc_*`, `readout_*`), the
/// `speedup_freq` / `speedup_readout` ratios, and the
/// `freq_kernel_builds_during_plans` probe. v3 adds the planner's own
/// `plan.total` hook stage, the partitioned serial-vs-parallel plan
/// rows (`plan_partitioned_serial`, `plan_partitioned_parallel`), the
/// per-size `threads` / `speedup_parallel` fields, the scratch-arena
/// reuse probes (`scratch_fresh`, `scratch_reused`), and a 24×24 grid
/// in the default size list.
pub const SCHEMA: &str = "youtiao-bench-plan/v3";

/// Minimum acceptable naive/kernelized median ratio for frequency
/// allocation (both bands) at 12×12 — asserted whenever a `grid:12`
/// layout is benchmarked.
pub const FREQ_SPEEDUP_FLOOR: f64 = 5.0;

/// Minimum acceptable serial/parallel `plan.total` median ratio for the
/// partitioned plan at 16×16 — asserted whenever a `grid:16` layout is
/// benchmarked with ≥8 plan threads *and* the host actually has that
/// many cores (a 1-core container can execute the parallel levers but
/// cannot express a speedup, so the floor is skipped there rather than
/// reporting a meaningless failure).
pub const PARALLEL_SPEEDUP_FLOOR: f64 = 3.0;

/// `run` mutates process-global probes (kernel build counts, scratch
/// fresh/reuse counters) and asserts on their deltas, so concurrent
/// harness runs in one process (parallel `cargo test` threads) would
/// read each other's allocations. One run at a time keeps every probe
/// delta attributable.
static RUN_LOCK: Mutex<()> = Mutex::new(());

/// A benchmark chip layout: the square grids the harness has always
/// timed, plus the paper's error-corrected fabrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Layout {
    /// An n×n square grid (`grid:N`).
    Grid(usize),
    /// A rotated surface code of odd distance d ≥ 3 (`surface:D`).
    Surface(usize),
    /// A heavy-hexagon patch of R×C hex cells (`heavy-hex:RxC`).
    HeavyHex(usize, usize),
}

impl Layout {
    /// The report label — square grids keep their historical `"NxN"`
    /// form so BENCH_plan.json trajectories stay comparable.
    pub fn label(&self) -> String {
        match self {
            Layout::Grid(n) => format!("{n}x{n}"),
            Layout::Surface(d) => format!("surface-d{d}"),
            Layout::HeavyHex(r, c) => format!("heavy-hex-{r}x{c}"),
        }
    }

    /// Builds the chip.
    pub fn build(&self) -> Chip {
        match self {
            Layout::Grid(n) => topology::square_grid(*n, *n),
            Layout::Surface(d) => SurfaceCode::rotated(*d).into_chip(),
            Layout::HeavyHex(r, c) => topology::heavy_hexagon(*r, *c),
        }
    }

    /// Parses one CLI layout spec: `grid:N`, `surface:D` (odd, ≥ 3),
    /// or `heavy-hex:RxC`.
    ///
    /// # Errors
    ///
    /// A description of the malformed spec.
    pub fn parse(spec: &str) -> Result<Layout, String> {
        let spec = spec.trim();
        let (kind, arg) = spec
            .split_once(':')
            .ok_or_else(|| format!("`{spec}`: expected kind:arg (e.g. grid:12)"))?;
        let num = |s: &str, what: &str| {
            s.parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("`{spec}`: {what} must be a positive integer"))
        };
        match kind {
            "grid" => {
                let n = num(arg, "grid side")?;
                if n < 2 {
                    return Err(format!("`{spec}`: grid side must be >= 2"));
                }
                Ok(Layout::Grid(n))
            }
            "surface" => {
                let d = num(arg, "code distance")?;
                if d < 3 || d % 2 == 0 {
                    return Err(format!("`{spec}`: code distance must be odd and >= 3"));
                }
                Ok(Layout::Surface(d))
            }
            "heavy-hex" => {
                let (r, c) = arg
                    .split_once('x')
                    .ok_or_else(|| format!("`{spec}`: expected heavy-hex:RxC"))?;
                Ok(Layout::HeavyHex(num(r, "rows")?, num(c, "cols")?))
            }
            other => Err(format!("`{spec}`: unknown layout kind `{other}`")),
        }
    }
}

/// Harness configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfConfig {
    /// Square-grid side lengths to benchmark (`n` → an n×n chip).
    pub sizes: Vec<usize>,
    /// Extra layouts timed after the square grids (surface codes,
    /// heavy-hex patches).
    pub layouts: Vec<Layout>,
    /// Timed iterations per stage per size.
    pub iterations: usize,
    /// Intra-plan threads for the partitioned parallel plan row
    /// (`plan_partitioned_parallel`); the serial row always runs with 1.
    pub plan_threads: usize,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig {
            sizes: vec![6, 8, 10, 12, 16, 24],
            layouts: Vec::new(),
            iterations: 9,
            plan_threads: 8,
        }
    }
}

/// Order statistics of one timed stage, in microseconds.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StageStats {
    /// Median wall time (µs).
    pub median_us: f64,
    /// 10th-percentile wall time (µs).
    pub p10_us: f64,
    /// 90th-percentile wall time (µs).
    pub p90_us: f64,
}

impl StageStats {
    fn from_samples(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "stage needs at least one sample");
        samples.sort_by(f64::total_cmp);
        let at = |q: f64| {
            let i = (q * (samples.len() - 1) as f64).round() as usize;
            samples[i]
        };
        StageStats {
            median_us: at(0.5),
            p10_us: at(0.1),
            p90_us: at(0.9),
        }
    }
}

/// Per-chip-size benchmark results.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SizeReport {
    /// Chip label, e.g. `"12x12"`.
    pub label: String,
    /// Qubit count.
    pub qubits: usize,
    /// Z-controlled device count (qubits + couplers).
    pub devices: usize,
    /// Timed iterations behind each stat.
    pub iterations: usize,
    /// Per-stage order statistics, keyed by stage name
    /// (`kernels_build`, `grouping_kernels`, `grouping_naive`,
    /// `refine_kernels`, `refine_naive`, `freq_kernels_build`,
    /// `freq_alloc_kernels`, `freq_alloc_naive`, `readout_kernels`,
    /// `readout_naive`, `plan_total`, and the planner's hook sub-stages
    /// prefixed `plan.`).
    pub stages: BTreeMap<String, StageStats>,
    /// `PairKernels` builds observed while the timed plans ran; must be
    /// 0 — every plan reuses the shared context's kernels.
    pub kernel_builds_during_plans: u64,
    /// `FreqKernels` builds observed while the timed plans ran; must be
    /// 0 — every plan reuses the shared context's freq kernels.
    pub freq_kernel_builds_during_plans: u64,
    /// Fresh scratch-buffer allocations observed during the timed plan
    /// loop (after one warmup plan); must be 0 — every hot-loop buffer
    /// comes back out of the context's arenas.
    pub scratch_fresh: u64,
    /// Scratch buffers recycled from the arenas during the timed plan
    /// loop — the positive counterpart of [`scratch_fresh`], proving
    /// the arenas are actually in the loop.
    ///
    /// [`scratch_fresh`]: SizeReport::scratch_fresh
    pub scratch_reused: u64,
    /// Intra-plan threads behind `plan_partitioned_parallel`.
    pub threads: usize,
    /// Serial / parallel median ratio for the partitioned plan
    /// (≥ [`PARALLEL_SPEEDUP_FLOOR`] at 16×16 when the host has the
    /// cores; ≈1.0 on a 1-core host).
    pub speedup_parallel: f64,
    /// Naive / kernelized median ratio for TDM grouping.
    pub speedup_grouping: f64,
    /// Naive / kernelized median ratio for refinement.
    pub speedup_refine: f64,
    /// Naive / kernelized median ratio for grouping + refinement
    /// combined (a PR 4 acceptance metric).
    pub speedup_grouping_refine: f64,
    /// Naive / kernelized median ratio for qubit-band frequency
    /// allocation (≥ [`FREQ_SPEEDUP_FLOOR`] at 12×12).
    pub speedup_freq: f64,
    /// Naive / kernelized median ratio for readout-band frequency
    /// allocation (≥ [`FREQ_SPEEDUP_FLOOR`] at 12×12).
    pub speedup_readout: f64,
}

/// The full harness report (`BENCH_plan.json`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PerfReport {
    /// Format tag ([`SCHEMA`]).
    pub schema: String,
    /// Timed iterations per stage per size.
    pub iterations: usize,
    /// `PlanContext` builds during the run (probe delta): one per size.
    pub contexts_built: u64,
    /// `PairKernels` builds during the run (probe delta): the timed
    /// kernels-build loop plus one per context, never per plan point.
    pub kernels_built: u64,
    /// Per-size results, in the order requested.
    pub sizes: Vec<SizeReport>,
}

impl PerfReport {
    /// Renders a compact, human-readable table of the report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "bench-plan: {} iterations per stage; {} contexts / {} kernel builds\n",
            self.iterations, self.contexts_built, self.kernels_built
        ));
        s.push_str(&format!(
            "{:<8} {:>8} {:>12} {:>12} {:>9} {:>11} {:>11} {:>9} {:>9} {:>9} {:>9}\n",
            "chip",
            "devices",
            "group-k µs",
            "refine-k µs",
            "speedup",
            "freq-k µs",
            "freq-n µs",
            "spd-f",
            "spd-ro",
            "plan µs",
            "spd-par"
        ));
        for size in &self.sizes {
            let med = |k: &str| size.stages.get(k).map_or(f64::NAN, |s| s.median_us);
            s.push_str(&format!(
                "{:<8} {:>8} {:>12.1} {:>12.1} {:>8.2}x {:>11.1} {:>11.1} {:>8.2}x {:>8.2}x {:>9.1} {:>8.2}x\n",
                size.label,
                size.devices,
                med("grouping_kernels"),
                med("refine_kernels"),
                size.speedup_grouping_refine,
                med("freq_alloc_kernels"),
                med("freq_alloc_naive"),
                size.speedup_freq,
                size.speedup_readout,
                med("plan_total"),
                size.speedup_parallel,
            ));
        }
        s
    }
}

/// Times one closure `iterations` times, returning the stats and the
/// last iteration's output.
pub(crate) fn timed<T>(iterations: usize, mut f: impl FnMut() -> T) -> (StageStats, T) {
    assert!(iterations > 0, "iterations must be positive");
    let mut samples = Vec::with_capacity(iterations);
    let mut last = None;
    for _ in 0..iterations {
        let started = Instant::now();
        let out = f();
        samples.push(started.elapsed().as_secs_f64() * 1e6);
        last = Some(out);
    }
    (
        StageStats::from_samples(samples),
        last.expect("ran at least once"),
    )
}

/// Runs the harness.
///
/// # Panics
///
/// Panics if `config.sizes` and `config.layouts` are both empty,
/// `config.iterations` is 0, the kernelized grouping/refinement/
/// frequency-allocation output diverges from the naive reference
/// (which would make the timings meaningless), a parallel partitioned
/// plan differs from its serial twin, a context-backed plan allocates
/// a fresh scratch buffer after warmup, a `grid:12` layout misses the
/// [`FREQ_SPEEDUP_FLOOR`], or a `grid:16` layout misses the
/// [`PARALLEL_SPEEDUP_FLOOR`] on a host with the cores for it.
pub fn run(config: &PerfConfig) -> PerfReport {
    let _probes = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let layouts: Vec<Layout> = config
        .sizes
        .iter()
        .map(|&n| Layout::Grid(n))
        .chain(config.layouts.iter().cloned())
        .collect();
    assert!(!layouts.is_empty(), "need at least one chip size or layout");
    let iters = config.iterations;
    let contexts_before = PlanContext::build_count();
    let kernels_before = PairKernels::build_count();

    let mut sizes = Vec::with_capacity(layouts.len());
    for layout in &layouts {
        let label = layout.label();
        let chip = layout.build();
        let weights = PlannerConfig::default().weights;
        let eq = equivalent_matrix(&chip, weights);
        let xtalk = crosstalk_matrix(&chip, &eq, None);
        let activity = brickwork_activity(&chip);
        let devices: Vec<DeviceId> = chip.device_ids().collect();
        let tdm = TdmConfig::default();
        let refine = RefineConfig::default();
        let mut stages = BTreeMap::new();

        let (stats, kernels) = timed(iters, || PairKernels::build(&chip, &xtalk));
        stages.insert("kernels_build".to_string(), stats);

        let (stats, groups) = timed(iters, || {
            group_tdm_kernels(&kernels, &tdm, &devices, &activity)
        });
        stages.insert("grouping_kernels".to_string(), stats);
        let (stats, naive_groups) = timed(iters, || {
            group_tdm_with_activity_naive(&chip, &xtalk, &tdm, &devices, &activity)
        });
        stages.insert("grouping_naive".to_string(), stats);
        assert_eq!(groups, naive_groups, "{label}: grouping diverged");

        let (stats, refined) = timed(iters, || {
            refine_tdm_groups_kernels(&kernels, &activity, &tdm, groups.clone(), &refine)
        });
        stages.insert("refine_kernels".to_string(), stats);
        let (stats, naive_refined) = timed(iters, || {
            refine_tdm_groups_naive(&chip, &xtalk, &activity, &tdm, groups.clone(), &refine)
        });
        stages.insert("refine_naive".to_string(), stats);
        assert_eq!(refined, naive_refined, "{label}: refinement diverged");

        // Frequency allocation, kernelized vs naive, on the same lines
        // and bands the planner allocates: FDM lines in the qubit band,
        // capacity-chunked feedlines in the readout band.
        let plan_defaults = PlannerConfig::default();
        let fdm_lines = group_fdm(&chip, &eq, plan_defaults.fdm_capacity);
        let qubits: Vec<QubitId> = chip.qubit_ids().collect();
        let ro_lines: Vec<FdmLine> = qubits
            .chunks(plan_defaults.readout_capacity)
            .map(|c| FdmLine::new(c.to_vec()))
            .collect();

        let (stats, freq_kernels) = timed(iters, || FreqKernels::build(&xtalk));
        stages.insert("freq_kernels_build".to_string(), stats);

        let (stats, freq_fast) = timed(iters, || {
            allocate_frequencies_kernels(
                &chip,
                &fdm_lines,
                &freq_kernels,
                &xtalk,
                &plan_defaults.freq,
                &mut |_, _| {},
            )
            .expect("benchmark freq alloc must succeed")
        });
        stages.insert("freq_alloc_kernels".to_string(), stats);
        let (stats, freq_slow) = timed(iters, || {
            allocate_frequencies_naive(&chip, &fdm_lines, &xtalk, &plan_defaults.freq)
                .expect("benchmark freq alloc must succeed")
        });
        stages.insert("freq_alloc_naive".to_string(), stats);
        assert_eq!(
            freq_fast, freq_slow,
            "{label}: frequency allocation diverged"
        );

        let (stats, ro_fast) = timed(iters, || {
            allocate_frequencies_kernels(
                &chip,
                &ro_lines,
                &freq_kernels,
                &xtalk,
                &plan_defaults.readout_freq,
                &mut |_, _| {},
            )
            .expect("benchmark readout alloc must succeed")
        });
        stages.insert("readout_kernels".to_string(), stats);
        let (stats, ro_slow) = timed(iters, || {
            allocate_frequencies_naive(&chip, &ro_lines, &xtalk, &plan_defaults.readout_freq)
                .expect("benchmark readout alloc must succeed")
        });
        stages.insert("readout_naive".to_string(), stats);
        assert_eq!(ro_fast, ro_slow, "{label}: readout allocation diverged");

        // Full plan against a shared context, collecting the planner's
        // own sub-stage timings. The kernels probe must not move: every
        // plan reuses the context's tables.
        let ctx = PlanContext::build(&chip, None, weights);
        let plan_cfg = PlannerConfig {
            refine: Some(refine),
            ..Default::default()
        };
        let plan_kernels_before = PairKernels::build_count();
        let plan_freq_kernels_before = FreqKernels::build_count();
        // One warmup plan populates the context's scratch arenas; the
        // timed loop after it must then run allocation-free (the
        // build-probe pattern, applied to buffers instead of matrices).
        YoutiaoPlanner::new(&chip)
            .with_config(plan_cfg.clone())
            .with_context(&ctx)
            .plan()
            .expect("benchmark warmup plan must succeed");
        let scratch_fresh_before = scratch::fresh_count();
        let scratch_reused_before = scratch::reuse_count();
        let mut sub: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
        let (stats, _) = timed(iters, || {
            YoutiaoPlanner::new(&chip)
                .with_config(plan_cfg.clone())
                .with_context(&ctx)
                .plan_with_hook(&mut |name, elapsed| {
                    sub.entry(name)
                        .or_default()
                        .push(elapsed.as_secs_f64() * 1e6);
                })
                .expect("benchmark plan must succeed")
        });
        stages.insert("plan_total".to_string(), stats);
        for (name, samples) in sub {
            stages.insert(format!("plan.{name}"), StageStats::from_samples(samples));
        }
        let scratch_fresh = scratch::fresh_count() - scratch_fresh_before;
        let scratch_reused = scratch::reuse_count() - scratch_reused_before;
        assert_eq!(
            scratch_fresh, 0,
            "{label}: the warmed plan loop allocated fresh scratch buffers"
        );
        assert!(
            scratch_reused > 0,
            "{label}: the plan loop never drew from the scratch arenas"
        );
        let kernel_builds_during_plans = PairKernels::build_count() - plan_kernels_before;
        let freq_kernel_builds_during_plans = FreqKernels::build_count() - plan_freq_kernels_before;

        // Partitioned plan, serial vs parallel: same context, same
        // config apart from `plan_threads`, so the differential check
        // doubles as the in-bench byte-identity proof for the region/
        // band parallel merge paths.
        let par_cfg = PlannerConfig {
            refine: Some(refine),
            partition: Some(PartitionConfig::for_target_size(&chip, 64)),
            plan_threads: 1,
            ..Default::default()
        };
        let (stats, serial_plan) = timed(iters, || {
            YoutiaoPlanner::new(&chip)
                .with_config(par_cfg.clone())
                .with_context(&ctx)
                .plan()
                .expect("benchmark partitioned plan must succeed")
        });
        stages.insert("plan_partitioned_serial".to_string(), stats);
        let threads = config.plan_threads.max(1);
        let (stats, parallel_plan) = timed(iters, || {
            YoutiaoPlanner::new(&chip)
                .with_config(PlannerConfig {
                    plan_threads: threads,
                    ..par_cfg.clone()
                })
                .with_context(&ctx)
                .plan()
                .expect("benchmark parallel plan must succeed")
        });
        stages.insert("plan_partitioned_parallel".to_string(), stats);
        assert_eq!(
            parallel_plan, serial_plan,
            "{label}: parallel plan diverged from its serial twin"
        );

        let med = |k: &str| stages.get(k).map_or(f64::NAN, |s| s.median_us);
        let speedup = |naive: &str, fast: &str| med(naive) / med(fast);
        let speedup_freq = speedup("freq_alloc_naive", "freq_alloc_kernels");
        let speedup_readout = speedup("readout_naive", "readout_kernels");
        let speedup_parallel = speedup("plan_partitioned_serial", "plan_partitioned_parallel");
        // The roadmap's acceptance floor: at 12×12 the kernelized
        // allocator must hold a ≥5× median speedup on both bands.
        if *layout == Layout::Grid(12) {
            assert!(
                speedup_freq >= FREQ_SPEEDUP_FLOOR,
                "{label}: freq_alloc speedup {speedup_freq:.2}x below the {FREQ_SPEEDUP_FLOOR}x floor"
            );
            assert!(
                speedup_readout >= FREQ_SPEEDUP_FLOOR,
                "{label}: readout speedup {speedup_readout:.2}x below the {FREQ_SPEEDUP_FLOOR}x floor"
            );
        }
        // The parallel-planning floor: at 16×16 with ≥8 plan threads,
        // the partitioned plan must hold a ≥3× median speedup — but
        // only on a host that can actually run those threads at once.
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        if *layout == Layout::Grid(16) && threads >= 8 && cores >= threads {
            assert!(
                speedup_parallel >= PARALLEL_SPEEDUP_FLOOR,
                "{label}: parallel plan speedup {speedup_parallel:.2}x below the \
                 {PARALLEL_SPEEDUP_FLOOR}x floor on a {cores}-core host"
            );
        }
        sizes.push(SizeReport {
            label,
            qubits: chip.num_qubits(),
            devices: devices.len(),
            iterations: iters,
            kernel_builds_during_plans,
            freq_kernel_builds_during_plans,
            scratch_fresh,
            scratch_reused,
            threads,
            speedup_parallel,
            speedup_grouping: speedup("grouping_naive", "grouping_kernels"),
            speedup_refine: speedup("refine_naive", "refine_kernels"),
            speedup_grouping_refine: (med("grouping_naive") + med("refine_naive"))
                / (med("grouping_kernels") + med("refine_kernels")),
            speedup_freq,
            speedup_readout,
            stages,
        });
    }

    PerfReport {
        schema: SCHEMA.to_string(),
        iterations: iters,
        contexts_built: PlanContext::build_count() - contexts_before,
        kernels_built: PairKernels::build_count() - kernels_before,
        sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_produces_complete_report() {
        let report = run(&PerfConfig {
            sizes: vec![3, 4],
            layouts: Vec::new(),
            iterations: 2,
            plan_threads: 2,
        });
        assert_eq!(report.schema, SCHEMA);
        assert_eq!(report.sizes.len(), 2);
        for size in &report.sizes {
            for stage in [
                "kernels_build",
                "grouping_kernels",
                "grouping_naive",
                "refine_kernels",
                "refine_naive",
                "freq_kernels_build",
                "freq_alloc_kernels",
                "freq_alloc_naive",
                "readout_kernels",
                "readout_naive",
                "plan_total",
                "plan_partitioned_serial",
                "plan_partitioned_parallel",
                "plan.total",
                "plan.tdm_grouping",
                "plan.refine",
                "plan.freq.place",
                "plan.freq.swap",
                "plan.freq_alloc",
                "plan.readout.place",
                "plan.readout.swap",
                "plan.readout",
            ] {
                let s = &size.stages[stage];
                assert!(s.median_us >= 0.0);
                assert!(s.p10_us <= s.p90_us, "{stage}: {s:?}");
            }
            assert_eq!(size.kernel_builds_during_plans, 0);
            assert_eq!(size.freq_kernel_builds_during_plans, 0);
            // The arena probes: nothing fresh after warmup, reuse live.
            assert_eq!(size.scratch_fresh, 0);
            assert!(size.scratch_reused > 0);
            assert_eq!(size.threads, 2);
            assert!(size.speedup_parallel.is_finite());
            assert!(size.speedup_grouping.is_finite());
            assert!(size.speedup_freq.is_finite());
            assert!(size.speedup_readout.is_finite());
            // Context-backed plans reuse the context's freq kernels.
            assert!(!size.stages.contains_key("plan.freq.kernels"));
        }
        // One context per size; no kernels built inside the plan loops
        // (the probe deltas include the timed standalone builds).
        assert!(report.contexts_built >= 2);
        let rendered = report.render();
        assert!(rendered.contains("3x3"));
        assert!(rendered.contains("4x4"));
    }

    #[test]
    fn stage_stats_order_statistics() {
        let s = StageStats::from_samples(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.median_us, 3.0);
        assert_eq!(s.p10_us, 1.0);
        assert_eq!(s.p90_us, 5.0);
    }

    #[test]
    fn layout_specs_parse_build_and_label() {
        assert_eq!(Layout::parse("grid:12").unwrap(), Layout::Grid(12));
        assert_eq!(Layout::parse(" surface:5 ").unwrap(), Layout::Surface(5));
        assert_eq!(
            Layout::parse("heavy-hex:2x3").unwrap(),
            Layout::HeavyHex(2, 3)
        );
        for bad in [
            "grid",
            "grid:1",
            "surface:4",
            "surface:1",
            "heavy-hex:3",
            "mesh:4",
            "grid:x",
        ] {
            assert!(Layout::parse(bad).is_err(), "`{bad}` should not parse");
        }
        let surface = Layout::Surface(3);
        assert_eq!(surface.label(), "surface-d3");
        assert_eq!(surface.build().num_qubits(), 17);
        assert_eq!(Layout::Grid(4).label(), "4x4");
        assert!(Layout::HeavyHex(1, 2).build().num_qubits() > 0);
    }

    #[test]
    fn extra_layouts_are_timed_after_the_grids() {
        let report = run(&PerfConfig {
            sizes: vec![3],
            layouts: vec![Layout::Surface(3), Layout::HeavyHex(1, 2)],
            iterations: 1,
            plan_threads: 2,
        });
        let labels: Vec<&str> = report.sizes.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, ["3x3", "surface-d3", "heavy-hex-1x2"]);
        for size in &report.sizes {
            assert!(size.stages.contains_key("plan_total"), "{}", size.label);
            assert_eq!(size.kernel_builds_during_plans, 0, "{}", size.label);
        }
    }

    #[test]
    fn report_serializes() {
        let report = run(&PerfConfig {
            sizes: vec![3],
            layouts: Vec::new(),
            iterations: 1,
            plan_threads: 1,
        });
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"schema\""));
        assert!(json.contains("grouping_kernels"));
        assert!(json.contains("\"speedup_parallel\""));
        assert!(json.contains("\"scratch_reused\""));
    }
}
