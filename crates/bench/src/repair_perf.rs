//! Repair-vs-replan micro-benchmark harness (`youtiao bench-plan
//! --repair`).
//!
//! For each square-grid size the harness plans a base snapshot, then
//! times two scenarios against it:
//!
//! * `drift-single` — one crosstalk entry drifts; the repair pass must
//!   resolve it locally (`repaired`), quality-equal to a full replan
//!   under the DESIGN.md §4g tie-break contract, and the recorded
//!   speedup (replan median / repair median) is the acceptance metric;
//! * `dead-coupler` — a structural change; the repair pass must fall
//!   back (`full_replan`) byte-identical to planning the new snapshot
//!   from scratch, pinning the fallback path's cost (speedup ≈ 1×).
//!
//! The result serializes to `BENCH_repair.json` so the repo carries a
//! repair-latency trajectory next to `BENCH_plan.json`.

use serde::Serialize;
use youtiao_chip::spec::ChipSpec;
use youtiao_chip::{topology, QubitId};
use youtiao_core::tdm::brickwork_activity;
use youtiao_core::{FdmLine, PlanContext, PlannerConfig, RefineConfig, YoutiaoPlanner};
use youtiao_repair::{
    diff_inputs, patch_frequencies, repair_plan, replan_from_snapshot, PlanInputs, QualityReport,
    RepairConfig, RepairOutcome,
};

use crate::perf::{timed, StageStats};

/// Schema tag written into the report so downstream tooling can detect
/// format changes. v2 adds `freq_patch_share` — the fraction of the
/// repair median the two `patch_frequencies` calls account for.
pub const SCHEMA: &str = "youtiao-bench-repair/v2";

/// Relative tolerance for the quality-equal tie-break check.
pub const QUALITY_TOLERANCE: f64 = 0.05;

/// Harness configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairBenchConfig {
    /// Square-grid side lengths to benchmark (`n` → an n×n chip).
    pub sizes: Vec<usize>,
    /// Timed iterations per path per scenario.
    pub iterations: usize,
}

impl Default for RepairBenchConfig {
    fn default() -> Self {
        RepairBenchConfig {
            sizes: vec![8, 12],
            iterations: 15,
        }
    }
}

/// One timed scenario: the repair path against the full-replan path.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScenarioReport {
    /// Scenario name (`drift-single` / `dead-coupler`).
    pub scenario: String,
    /// The repair pass's resolution ([`RepairOutcome::as_str`]).
    pub outcome: String,
    /// Repaired plan quality-equal to the replanned plan (byte-identity
    /// on the fallback scenario).
    pub quality_equal: bool,
    /// Qubits marked dirty by the differ.
    pub dirty_qubits: usize,
    /// Kernel rows the delta recomputed.
    pub invalidated_rows: usize,
    /// TDM groups dissolved and regrouped.
    pub dirty_groups: usize,
    /// Repair-path wall time (µs).
    pub repair: StageStats,
    /// Full-replan wall time (µs).
    pub replan: StageStats,
    /// Replan median / repair median — the acceptance metric on the
    /// drift scenario, ≈ 1 on the fallback scenario.
    pub speedup: f64,
    /// Fraction of the repair median the two `patch_frequencies` calls
    /// (XY + readout bands) account for, timed standalone against a
    /// delta-patched context. `0.0` on the fallback scenario, which
    /// replans instead of patching.
    pub freq_patch_share: f64,
}

/// Per-chip-size results.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RepairSizeReport {
    /// Chip label, e.g. `"12x12"`.
    pub label: String,
    /// Qubit count.
    pub qubits: usize,
    /// Z-controlled device count (qubits + couplers).
    pub devices: usize,
    /// Timed iterations behind each stat.
    pub iterations: usize,
    /// The timed scenarios.
    pub scenarios: Vec<ScenarioReport>,
}

/// The full harness report (`BENCH_repair.json`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RepairPerfReport {
    /// Format tag ([`SCHEMA`]).
    pub schema: String,
    /// Timed iterations per path per scenario.
    pub iterations: usize,
    /// Per-size results, in the order requested.
    pub sizes: Vec<RepairSizeReport>,
}

impl RepairPerfReport {
    /// Renders a compact, human-readable table of the report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "bench-repair: {} iterations per path per scenario\n",
            self.iterations
        ));
        s.push_str(&format!(
            "{:<8} {:<14} {:<12} {:>12} {:>12} {:>9} {:>9} {:>8}\n",
            "chip",
            "scenario",
            "outcome",
            "repair µs",
            "replan µs",
            "speedup",
            "freq-pct",
            "quality"
        ));
        for size in &self.sizes {
            for sc in &size.scenarios {
                s.push_str(&format!(
                    "{:<8} {:<14} {:<12} {:>12.1} {:>12.1} {:>8.2}x {:>8.1}% {:>8}\n",
                    size.label,
                    sc.scenario,
                    sc.outcome,
                    sc.repair.median_us,
                    sc.replan.median_us,
                    sc.speedup,
                    sc.freq_patch_share * 100.0,
                    if sc.quality_equal { "equal" } else { "WORSE" },
                ));
            }
        }
        s
    }

    /// The drift-scenario speedup at the largest benchmarked size — the
    /// headline acceptance number.
    pub fn headline_speedup(&self) -> Option<f64> {
        self.sizes
            .last()?
            .scenarios
            .iter()
            .find(|sc| sc.scenario == "drift-single")
            .map(|sc| sc.speedup)
    }
}

/// Runs the harness.
///
/// # Panics
///
/// Panics if the configuration is empty, the drift scenario fails to
/// repair locally or misses the quality-equal contract, or the fallback
/// scenario's plan diverges from the from-scratch replan (any of which
/// would make the timings meaningless).
pub fn run(config: &RepairBenchConfig) -> RepairPerfReport {
    assert!(!config.sizes.is_empty(), "need at least one chip size");
    assert!(config.iterations > 0, "iterations must be positive");
    let iters = config.iterations;

    let mut sizes = Vec::with_capacity(config.sizes.len());
    for &n in &config.sizes {
        let label = format!("{n}x{n}");
        let chip = topology::square_grid(n, n);
        let planner = PlannerConfig {
            refine: Some(RefineConfig::default()),
            ..Default::default()
        };
        let ctx = PlanContext::build(&chip, None, planner.weights);
        let activity = brickwork_activity(&chip);
        let base = YoutiaoPlanner::new(&chip)
            .with_activity(&activity)
            .with_config(planner.clone())
            .with_context(&ctx)
            .plan()
            .expect("base plan must succeed");
        let old = PlanInputs {
            chip: &chip,
            xtalk: ctx.crosstalk(),
            activity: &activity,
        };
        let mut scenarios = Vec::with_capacity(2);

        // drift-single: one mid-grid coupler pair drifts.
        let a = QubitId::new((n * n / 2) as u32);
        let b = QubitId::new((n * n / 2 + 1) as u32);
        let mut drifted = ctx.crosstalk().clone();
        drifted.set(a, b, drifted.get(a, b) * 5.0 + 2e-3);
        let new = PlanInputs {
            chip: &chip,
            xtalk: &drifted,
            activity: &activity,
        };
        let changes = diff_inputs(&old, &new);
        let cfg = RepairConfig::default();
        let (repair_stats, report) = timed(iters, || {
            repair_plan(&base, &ctx, &new, &changes, &planner, &cfg)
                .expect("drift repair must succeed")
        });
        assert_eq!(
            report.outcome,
            RepairOutcome::Repaired,
            "{label}: single-entry drift must repair locally"
        );
        let (replan_stats, (replanned, _)) = timed(iters, || {
            replan_from_snapshot(&new, &planner).expect("replan must succeed")
        });
        let quality = QualityReport::compare(&report.plan, &replanned, &drifted, &activity);
        assert!(
            quality.quality_equal(QUALITY_TOLERANCE),
            "{label}: drift repair missed the tie-break contract\n{}",
            quality.render()
        );
        // Freq-patch share: time the two band patches standalone against
        // a context that already took the crosstalk delta, so the share
        // isolates the `patch_frequencies` cost inside the repair median.
        let dirty = changes.dirty_qubits();
        let mut patched_ctx = ctx.clone();
        patched_ctx
            .apply_crosstalk_delta(&chip, drifted.clone(), &dirty)
            .expect("drift delta must apply");
        let xy_lines: Vec<&[QubitId]> = base.fdm_lines().iter().map(FdmLine::qubits).collect();
        let ro_lines: Vec<&[QubitId]> = base.readout_lines().iter().map(Vec::as_slice).collect();
        let (patch_stats, _) = timed(iters, || {
            let xy = patch_frequencies(
                &chip,
                &xy_lines,
                base.frequency_plan(),
                patched_ctx.freq_kernels(),
                &drifted,
                &planner.freq,
                &dirty,
            )
            .expect("xy freq patch must succeed");
            let ro = patch_frequencies(
                &chip,
                &ro_lines,
                base.readout_frequency_plan(),
                patched_ctx.freq_kernels(),
                &drifted,
                &planner.readout_freq,
                &dirty,
            )
            .expect("readout freq patch must succeed");
            (xy, ro)
        });
        scenarios.push(ScenarioReport {
            scenario: "drift-single".to_string(),
            outcome: report.outcome.as_str().to_string(),
            quality_equal: true,
            dirty_qubits: report.dirty_qubits,
            invalidated_rows: report.invalidated_rows,
            dirty_groups: report.dirty_groups,
            speedup: replan_stats.median_us / repair_stats.median_us,
            freq_patch_share: patch_stats.median_us / repair_stats.median_us,
            repair: repair_stats,
            replan: replan_stats,
        });

        // dead-coupler: structural, pins the fallback path.
        let mut spec = ChipSpec::from_chip(&chip);
        spec.couplers.pop();
        let mutated = spec.to_chip().expect("mutated chip must build");
        let mut_ctx = PlanContext::build(&mutated, None, planner.weights);
        let new = PlanInputs {
            chip: &mutated,
            xtalk: mut_ctx.crosstalk(),
            activity: &activity,
        };
        let changes = diff_inputs(&old, &new);
        assert!(changes.structural(), "{label}: coupler loss is structural");
        let (repair_stats, report) = timed(iters, || {
            repair_plan(&base, &ctx, &new, &changes, &planner, &cfg)
                .expect("fallback repair must succeed")
        });
        assert!(
            matches!(report.outcome, RepairOutcome::FullReplan { .. }),
            "{label}: a dead coupler must fall back"
        );
        let (replan_stats, (replanned, _)) = timed(iters, || {
            replan_from_snapshot(&new, &planner).expect("replan must succeed")
        });
        assert_eq!(
            report.plan, replanned,
            "{label}: the fallback plan must be byte-identical to a replan"
        );
        scenarios.push(ScenarioReport {
            scenario: "dead-coupler".to_string(),
            outcome: report.outcome.as_str().to_string(),
            quality_equal: true,
            dirty_qubits: report.dirty_qubits,
            invalidated_rows: report.invalidated_rows,
            dirty_groups: report.dirty_groups,
            speedup: replan_stats.median_us / repair_stats.median_us,
            freq_patch_share: 0.0,
            repair: repair_stats,
            replan: replan_stats,
        });

        sizes.push(RepairSizeReport {
            label,
            qubits: chip.num_qubits(),
            devices: chip.num_qubits() + chip.num_couplers(),
            iterations: iters,
            scenarios,
        });
    }

    RepairPerfReport {
        schema: SCHEMA.to_string(),
        iterations: iters,
        sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_produces_complete_report() {
        let report = run(&RepairBenchConfig {
            sizes: vec![4, 5],
            iterations: 2,
        });
        assert_eq!(report.schema, SCHEMA);
        assert_eq!(report.sizes.len(), 2);
        for size in &report.sizes {
            assert_eq!(size.scenarios.len(), 2);
            let drift = &size.scenarios[0];
            assert_eq!(drift.scenario, "drift-single");
            assert_eq!(drift.outcome, "repaired");
            assert!(drift.quality_equal);
            assert!(drift.dirty_qubits >= 2);
            assert!(drift.invalidated_rows >= 2);
            assert!(drift.speedup.is_finite() && drift.speedup > 0.0);
            assert!(
                drift.freq_patch_share.is_finite() && drift.freq_patch_share > 0.0,
                "drift scenario must measure a positive freq-patch share"
            );
            let dead = &size.scenarios[1];
            assert_eq!(dead.scenario, "dead-coupler");
            assert_eq!(dead.outcome, "full_replan");
            assert!(dead.quality_equal);
            assert_eq!(dead.invalidated_rows, 0);
            assert_eq!(dead.freq_patch_share, 0.0);
        }
        assert!(report.headline_speedup().unwrap() > 0.0);
        let rendered = report.render();
        assert!(rendered.contains("4x4"));
        assert!(rendered.contains("drift-single"));
        assert!(rendered.contains("dead-coupler"));
    }

    #[test]
    fn report_serializes() {
        let report = run(&RepairBenchConfig {
            sizes: vec![4],
            iterations: 1,
        });
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"schema\""));
        assert!(json.contains("drift-single"));
        assert!(json.contains("speedup"));
        assert!(json.contains("freq_patch_share"));
    }
}
