//! Plain-text table formatting for the experiment binaries.

/// A simple aligned-column table printer.
///
/// # Example
///
/// ```
/// use youtiao_bench::report::Table;
/// let mut t = Table::new(vec!["topology", "#XY", "#Z"]);
/// t.row(vec!["square".into(), "9".into(), "21".into()]);
/// let s = t.render();
/// assert!(s.contains("square"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}", width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a fidelity as a percentage with two decimals.
pub fn pct(f: f64) -> String {
    format!("{:.2}%", f * 100.0)
}

/// Formats a ratio as `N.NNx`.
pub fn ratio(a: f64, b: f64) -> String {
    format!("{:.2}x", a / b)
}

/// Formats thousands of USD as `$NK` / `$N.NNM`.
pub fn kusd(v: f64) -> String {
    if v >= 1000.0 {
        format!("${:.2}M", v / 1000.0)
    } else {
        format!("${v:.0}K")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["yyyy".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("x"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1".into()]);
        assert!(t.render().contains('1'));
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.9998), "99.98%");
        assert_eq!(ratio(3.0, 2.0), "1.50x");
        assert_eq!(kusd(470.0), "$470K");
        assert_eq!(kusd(6430.0), "$6.43M");
    }
}
