//! Benchmark depth/fidelity evaluation across wiring schemes.

use youtiao_chip::Chip;
use youtiao_circuit::benchmarks::Benchmark;
use youtiao_circuit::schedule::{schedule_with_tdm, Schedule, SharedLineConstraint};
use youtiao_circuit::transpile::transpile_snake;
use youtiao_circuit::{Circuit, FidelityEstimator};
use youtiao_noise::CrosstalkModel;

/// Depth and fidelity of one circuit under one wiring scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemeOutcome {
    /// Layers containing at least one CZ (the paper's depth metric).
    pub two_qubit_depth: usize,
    /// Total depth in layers.
    pub depth: usize,
    /// Wall-clock makespan in nanoseconds.
    pub makespan_ns: f64,
    /// Estimated circuit fidelity.
    pub fidelity: f64,
}

/// Schedules a physical circuit under `constraint` and scores it.
///
/// # Panics
///
/// Panics if scheduling fails (unrealizable gates indicate a broken
/// grouping, which the planner is supposed to prevent).
pub fn evaluate_physical<C: SharedLineConstraint + ?Sized>(
    physical: &Circuit,
    chip: &Chip,
    constraint: &C,
    estimator: &FidelityEstimator,
    model: Option<&CrosstalkModel>,
) -> SchemeOutcome {
    let schedule = schedule_with_tdm(physical, chip, constraint)
        .expect("plans produced by the planners contain no unrealizable gates");
    score(&schedule, chip, estimator, model)
}

/// Transpiles `benchmark` at the chip's full width, then evaluates it.
///
/// # Panics
///
/// Panics if transpilation or scheduling fails.
pub fn evaluate_benchmark<C: SharedLineConstraint + ?Sized>(
    benchmark: Benchmark,
    chip: &Chip,
    constraint: &C,
    estimator: &FidelityEstimator,
    model: Option<&CrosstalkModel>,
) -> SchemeOutcome {
    evaluate_benchmark_width(
        benchmark,
        chip.num_qubits(),
        chip,
        constraint,
        estimator,
        model,
    )
}

/// Like [`evaluate_benchmark`] at an explicit logical width (placed on
/// the chip's snake path).
///
/// # Panics
///
/// Panics if transpilation or scheduling fails.
pub fn evaluate_benchmark_width<C: SharedLineConstraint + ?Sized>(
    benchmark: Benchmark,
    width: usize,
    chip: &Chip,
    constraint: &C,
    estimator: &FidelityEstimator,
    model: Option<&CrosstalkModel>,
) -> SchemeOutcome {
    let logical = benchmark.generate(width);
    let physical = transpile_snake(&logical, chip)
        .map(|t| t.circuit)
        .expect("benchmarks fit the chip");
    evaluate_physical(&physical, chip, constraint, estimator, model)
}

fn score(
    schedule: &Schedule,
    chip: &Chip,
    estimator: &FidelityEstimator,
    model: Option<&CrosstalkModel>,
) -> SchemeOutcome {
    let report = match model {
        Some(m) => estimator.estimate_with_crosstalk(schedule, chip, m),
        None => estimator.estimate(schedule, chip),
    };
    SchemeOutcome {
        two_qubit_depth: schedule.two_qubit_depth(),
        depth: schedule.depth(),
        makespan_ns: schedule.makespan_ns(),
        fidelity: report.total(),
    }
}

/// Geometric mean of a slice of positive ratios.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of zero values");
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtiao_chip::topology;
    use youtiao_circuit::schedule::DedicatedLines;
    use youtiao_core::{AcharyaTdm, YoutiaoPlanner};

    #[test]
    fn depth_ordering_google_youtiao_acharya() {
        let chip = topology::square_grid(4, 4);
        let plan = YoutiaoPlanner::new(&chip).plan().unwrap();
        let acharya = AcharyaTdm::for_chip(&chip);
        let est = FidelityEstimator::paper();
        let mut wins = 0usize;
        for b in Benchmark::ALL {
            let g = evaluate_benchmark(b, &chip, &DedicatedLines, &est, None);
            let y = evaluate_benchmark(b, &chip, &plan, &est, None);
            let a = evaluate_benchmark(b, &chip, &acharya, &est, None);
            assert!(g.two_qubit_depth <= y.two_qubit_depth, "{}", b.name());
            if y.two_qubit_depth <= a.two_qubit_depth {
                wins += 1;
            }
        }
        assert!(
            wins >= 4,
            "youtiao should beat acharya on most benchmarks: {wins}/5"
        );
    }

    #[test]
    fn fidelity_tracks_depth() {
        let chip = topology::square_grid(3, 3);
        let plan = YoutiaoPlanner::new(&chip).plan().unwrap();
        let est = FidelityEstimator::paper();
        let g = evaluate_benchmark(Benchmark::Vqc, &chip, &DedicatedLines, &est, None);
        let y = evaluate_benchmark(Benchmark::Vqc, &chip, &plan, &est, None);
        assert!(g.fidelity >= y.fidelity);
        assert!(y.fidelity > 0.0);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }
}
