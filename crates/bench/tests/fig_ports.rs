//! The Figure 16/17 binaries are thin wrappers over the xplore sweep
//! engine; these tests lock their reports byte-for-byte to the golden
//! outputs under `results/` that the pre-engine implementations wrote.

use std::path::Path;

fn golden(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn fig16_report_matches_golden_output() {
    assert_eq!(youtiao_bench::figs::fig16_report(), golden("fig16.txt"));
}

// The 150-qubit paper-procedure model fit behind Figure 17 (b) takes
// minutes without optimization; scripts/verify.sh runs this in release.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "fig17's 150-qubit model fit is too slow in debug builds; run with --release"
)]
fn fig17_report_matches_golden_output() {
    assert_eq!(youtiao_bench::figs::fig17_report(), golden("fig17.txt"));
}
