//! The [`Chip`] device description and its builder.

use std::collections::HashMap;
use std::fmt;

use crate::error::ChipError;
use crate::geometry::{BoundingBox, Position};
use crate::id::{CouplerId, DeviceId, QubitId};
use crate::topology::TopologyKind;

/// Default transmon (Xmon) footprint diameter in millimetres (§2.1).
pub const QUBIT_DIAMETER_MM: f64 = 0.65;

/// Role a qubit plays in an error-correction layout.
///
/// Generic chips use [`QubitRole::Generic`]; surface-code layouts
/// distinguish data qubits from X/Z parity-check (ancilla) qubits, which
/// YOUTIAO wires differently (FDM on the parity XY lines, TDM on the data
/// Z lines — §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QubitRole {
    /// An ordinary computational qubit.
    #[default]
    Generic,
    /// A surface-code data qubit.
    Data,
    /// A surface-code X-type parity-check qubit.
    AncillaX,
    /// A surface-code Z-type parity-check qubit.
    AncillaZ,
}

impl QubitRole {
    /// Returns `true` for either ancilla role.
    pub fn is_ancilla(self) -> bool {
        matches!(self, QubitRole::AncillaX | QubitRole::AncillaZ)
    }
}

/// A single transmon qubit placed on the chip.
#[derive(Debug, Clone, PartialEq)]
pub struct Qubit {
    id: QubitId,
    position: Position,
    base_frequency_ghz: f64,
    role: QubitRole,
}

impl Qubit {
    /// The qubit's id.
    pub fn id(&self) -> QubitId {
        self.id
    }

    /// The qubit's placement on the die, in millimetres.
    pub fn position(&self) -> Position {
        self.position
    }

    /// Fabrication-time base frequency in GHz (typically 4–7 GHz).
    ///
    /// The FDM frequency-allocation stage retunes qubits within ±50 MHz of
    /// this value; the base value itself is fixed at fabrication (§4.2).
    pub fn base_frequency_ghz(&self) -> f64 {
        self.base_frequency_ghz
    }

    /// The qubit's error-correction role.
    pub fn role(&self) -> QubitRole {
        self.role
    }
}

/// A tunable coupler joining two neighbouring qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct Coupler {
    id: CouplerId,
    endpoints: (QubitId, QubitId),
    position: Position,
}

impl Coupler {
    /// The coupler's id.
    pub fn id(&self) -> CouplerId {
        self.id
    }

    /// The two qubits this coupler joins, in ascending id order.
    pub fn endpoints(&self) -> (QubitId, QubitId) {
        self.endpoints
    }

    /// The coupler's placement (midpoint of its endpoints), in millimetres.
    pub fn position(&self) -> Position {
        self.position
    }

    /// Returns the other endpoint given one endpoint, or `None` if the
    /// given qubit is not an endpoint of this coupler.
    pub fn other_endpoint(&self, q: QubitId) -> Option<QubitId> {
        if self.endpoints.0 == q {
            Some(self.endpoints.1)
        } else if self.endpoints.1 == q {
            Some(self.endpoints.0)
        } else {
            None
        }
    }
}

/// An immutable, validated superconducting chip description.
///
/// A `Chip` owns its qubits and couplers and precomputes adjacency so that
/// the grouping and routing algorithms can make O(1) neighbourhood queries.
/// Construct one with [`ChipBuilder`] or the generators in
/// [`topology`](crate::topology) / [`surface`](crate::surface).
///
/// # Example
///
/// ```
/// use youtiao_chip::{ChipBuilder, Position, TopologyKind};
///
/// let chip = ChipBuilder::new("pair", TopologyKind::Custom)
///     .qubit(Position::new(0.0, 0.0))
///     .qubit(Position::new(1.0, 0.0))
///     .coupler(0u32.into(), 1u32.into())
///     .build()?;
/// assert_eq!(chip.num_qubits(), 2);
/// assert_eq!(chip.num_couplers(), 1);
/// assert!(chip.are_adjacent(0u32.into(), 1u32.into()));
/// # Ok::<(), youtiao_chip::ChipError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Chip {
    name: String,
    kind: TopologyKind,
    qubits: Vec<Qubit>,
    couplers: Vec<Coupler>,
    /// adjacency[q] = sorted neighbour qubit indices of q
    adjacency: Vec<Vec<QubitId>>,
    /// couplers_of[q] = coupler ids incident to q
    couplers_of: Vec<Vec<CouplerId>>,
    /// coupler id keyed by (min qubit, max qubit)
    coupler_lookup: HashMap<(QubitId, QubitId), CouplerId>,
}

impl Chip {
    /// Human-readable chip name (e.g. `"xmon-6x6"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The topology family this chip was generated from.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of qubits on the chip.
    pub fn num_qubits(&self) -> usize {
        self.qubits.len()
    }

    /// Number of tunable couplers on the chip.
    pub fn num_couplers(&self) -> usize {
        self.couplers.len()
    }

    /// Number of Z-controlled devices (qubits + couplers).
    ///
    /// This is the paper's `#Z line` count for a non-multiplexed
    /// (Google-style) wiring scheme.
    pub fn num_z_devices(&self) -> usize {
        self.num_qubits() + self.num_couplers()
    }

    /// Looks up a qubit by id.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::UnknownQubit`] if the id is out of range.
    pub fn qubit(&self, id: QubitId) -> Result<&Qubit, ChipError> {
        self.qubits
            .get(id.index())
            .ok_or(ChipError::UnknownQubit(id))
    }

    /// Looks up a coupler by id.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::UnknownCoupler`] if the id is out of range.
    pub fn coupler(&self, id: CouplerId) -> Result<&Coupler, ChipError> {
        self.couplers
            .get(id.index())
            .ok_or(ChipError::UnknownCoupler(id))
    }

    /// Iterates over all qubits in id order.
    pub fn qubits(&self) -> impl ExactSizeIterator<Item = &Qubit> {
        self.qubits.iter()
    }

    /// Iterates over all couplers in id order.
    pub fn couplers(&self) -> impl ExactSizeIterator<Item = &Coupler> {
        self.couplers.iter()
    }

    /// Iterates over all qubit ids in order.
    pub fn qubit_ids(&self) -> impl ExactSizeIterator<Item = QubitId> {
        (0..self.qubits.len() as u32).map(QubitId::new)
    }

    /// Iterates over all coupler ids in order.
    pub fn coupler_ids(&self) -> impl ExactSizeIterator<Item = CouplerId> {
        (0..self.couplers.len() as u32).map(CouplerId::new)
    }

    /// Iterates over all Z-controlled device ids: qubits first, then couplers.
    pub fn device_ids(&self) -> impl Iterator<Item = DeviceId> + '_ {
        self.qubit_ids()
            .map(DeviceId::Qubit)
            .chain(self.coupler_ids().map(DeviceId::Coupler))
    }

    /// Neighbouring qubits of `q` (qubits joined to it by a coupler).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn neighbors(&self, q: QubitId) -> &[QubitId] {
        &self.adjacency[q.index()]
    }

    /// Couplers incident to qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn couplers_of(&self, q: QubitId) -> &[CouplerId] {
        &self.couplers_of[q.index()]
    }

    /// Connectivity (coupler degree) of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn connectivity(&self, q: QubitId) -> usize {
        self.adjacency[q.index()].len()
    }

    /// Returns the coupler joining `a` and `b`, if any.
    pub fn coupler_between(&self, a: QubitId, b: QubitId) -> Option<CouplerId> {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.coupler_lookup.get(&key).copied()
    }

    /// Returns `true` when `a` and `b` share a coupler.
    pub fn are_adjacent(&self, a: QubitId, b: QubitId) -> bool {
        self.coupler_between(a, b).is_some()
    }

    /// Euclidean (physical) distance between two qubits, in millimetres.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn physical_distance(&self, a: QubitId, b: QubitId) -> f64 {
        self.qubits[a.index()]
            .position
            .distance_to(self.qubits[b.index()].position)
    }

    /// Position of an arbitrary device (qubit or coupler).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn device_position(&self, d: DeviceId) -> Position {
        match d {
            DeviceId::Qubit(q) => self.qubits[q.index()].position,
            DeviceId::Coupler(c) => self.couplers[c.index()].position,
        }
    }

    /// Bounding box of all qubit positions.
    pub fn bounding_box(&self) -> BoundingBox {
        BoundingBox::of(self.qubits.iter().map(|q| q.position))
            .expect("chip is validated non-empty")
    }

    /// Qubit ids having the given role.
    pub fn qubits_with_role(&self, role: QubitRole) -> Vec<QubitId> {
        self.qubits
            .iter()
            .filter(|q| q.role == role)
            .map(|q| q.id)
            .collect()
    }

    /// Returns `true` when the coupling graph is connected.
    pub fn is_connected(&self) -> bool {
        if self.qubits.is_empty() {
            return false;
        }
        let mut seen = vec![false; self.qubits.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(i) = stack.pop() {
            for &n in &self.adjacency[i] {
                if !seen[n.index()] {
                    seen[n.index()] = true;
                    count += 1;
                    stack.push(n.index());
                }
            }
        }
        count == self.qubits.len()
    }
}

impl fmt::Display for Chip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:?}, {} qubits, {} couplers)",
            self.name,
            self.kind,
            self.num_qubits(),
            self.num_couplers()
        )
    }
}

/// Incremental builder for [`Chip`].
///
/// Qubits receive dense ids in insertion order; couplers likewise. The
/// terminal [`build`](ChipBuilder::build) validates endpoint existence,
/// rejects self-couplings and duplicate couplers, and precomputes adjacency.
#[derive(Debug, Clone)]
pub struct ChipBuilder {
    name: String,
    kind: TopologyKind,
    qubits: Vec<Qubit>,
    pending_couplers: Vec<(QubitId, QubitId)>,
}

impl ChipBuilder {
    /// Starts a new chip with the given name and topology family.
    pub fn new(name: impl Into<String>, kind: TopologyKind) -> Self {
        ChipBuilder {
            name: name.into(),
            kind,
            qubits: Vec::new(),
            pending_couplers: Vec::new(),
        }
    }

    /// Adds a qubit at `position` with a default base frequency, returning
    /// the builder for chaining. Ids are assigned densely in call order.
    pub fn qubit(mut self, position: Position) -> Self {
        self.push_qubit(position, QubitRole::Generic, None);
        self
    }

    /// Adds a qubit with an explicit role (used by surface-code layouts).
    pub fn qubit_with_role(mut self, position: Position, role: QubitRole) -> Self {
        self.push_qubit(position, role, None);
        self
    }

    /// Adds a qubit with an explicit base frequency in GHz.
    pub fn qubit_with_frequency(mut self, position: Position, freq_ghz: f64) -> Self {
        self.push_qubit(position, QubitRole::Generic, Some(freq_ghz));
        self
    }

    /// Declares a coupler between two qubits (order irrelevant).
    pub fn coupler(mut self, a: QubitId, b: QubitId) -> Self {
        self.pending_couplers.push((a, b));
        self
    }

    /// Number of qubits added so far.
    pub fn num_qubits(&self) -> usize {
        self.qubits.len()
    }

    fn push_qubit(&mut self, position: Position, role: QubitRole, freq: Option<f64>) {
        let id = QubitId::new(self.qubits.len() as u32);
        // Default base frequencies interleave across 4–7 GHz so that
        // neighbouring ids rarely collide before allocation runs.
        let base = freq.unwrap_or_else(|| {
            let i = id.index() as f64;
            4.0 + (i * 0.618_033_988_75).fract() * 3.0
        });
        self.qubits.push(Qubit {
            id,
            position,
            base_frequency_ghz: base,
            role,
        });
    }

    /// Validates and finalizes the chip.
    ///
    /// # Errors
    ///
    /// * [`ChipError::Empty`] — no qubits were added.
    /// * [`ChipError::UnknownQubit`] — a coupler references a missing qubit.
    /// * [`ChipError::SelfCoupling`] — a coupler joins a qubit to itself.
    /// * [`ChipError::DuplicateCoupler`] — two couplers join the same pair.
    pub fn build(self) -> Result<Chip, ChipError> {
        if self.qubits.is_empty() {
            return Err(ChipError::Empty);
        }
        let n = self.qubits.len();
        let mut couplers = Vec::with_capacity(self.pending_couplers.len());
        let mut adjacency: Vec<Vec<QubitId>> = vec![Vec::new(); n];
        let mut couplers_of: Vec<Vec<CouplerId>> = vec![Vec::new(); n];
        let mut coupler_lookup = HashMap::new();

        for (raw_a, raw_b) in self.pending_couplers {
            if raw_a == raw_b {
                return Err(ChipError::SelfCoupling(raw_a));
            }
            for q in [raw_a, raw_b] {
                if q.index() >= n {
                    return Err(ChipError::UnknownQubit(q));
                }
            }
            let (a, b) = if raw_a <= raw_b {
                (raw_a, raw_b)
            } else {
                (raw_b, raw_a)
            };
            let id = CouplerId::new(couplers.len() as u32);
            if coupler_lookup.insert((a, b), id).is_some() {
                return Err(ChipError::DuplicateCoupler(a, b));
            }
            let position = self.qubits[a.index()]
                .position
                .midpoint(self.qubits[b.index()].position);
            couplers.push(Coupler {
                id,
                endpoints: (a, b),
                position,
            });
            adjacency[a.index()].push(b);
            adjacency[b.index()].push(a);
            couplers_of[a.index()].push(id);
            couplers_of[b.index()].push(id);
        }
        for list in &mut adjacency {
            list.sort_unstable();
        }

        Ok(Chip {
            name: self.name,
            kind: self.kind,
            qubits: self.qubits,
            couplers,
            adjacency,
            couplers_of,
            coupler_lookup,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Chip {
        ChipBuilder::new("tri", TopologyKind::Custom)
            .qubit(Position::new(0.0, 0.0))
            .qubit(Position::new(1.0, 0.0))
            .qubit(Position::new(0.0, 1.0))
            .coupler(0u32.into(), 1u32.into())
            .coupler(1u32.into(), 2u32.into())
            .coupler(2u32.into(), 0u32.into())
            .build()
            .unwrap()
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let chip = triangle();
        assert_eq!(chip.num_qubits(), 3);
        assert_eq!(chip.num_couplers(), 3);
        assert_eq!(chip.num_z_devices(), 6);
        for (i, q) in chip.qubits().enumerate() {
            assert_eq!(q.id().index(), i);
        }
    }

    #[test]
    fn adjacency_is_symmetric_and_sorted() {
        let chip = triangle();
        for q in chip.qubit_ids() {
            let ns = chip.neighbors(q);
            assert!(ns.windows(2).all(|w| w[0] < w[1]));
            for &n in ns {
                assert!(chip.neighbors(n).contains(&q));
            }
        }
    }

    #[test]
    fn coupler_lookup_is_order_insensitive() {
        let chip = triangle();
        assert_eq!(
            chip.coupler_between(0u32.into(), 1u32.into()),
            chip.coupler_between(1u32.into(), 0u32.into())
        );
        assert!(chip.are_adjacent(2u32.into(), 0u32.into()));
    }

    #[test]
    fn coupler_position_is_midpoint() {
        let chip = triangle();
        let c = chip.coupler_between(0u32.into(), 1u32.into()).unwrap();
        let coupler = chip.coupler(c).unwrap();
        assert_eq!(coupler.position(), Position::new(0.5, 0.0));
        assert_eq!(coupler.other_endpoint(0u32.into()), Some(1u32.into()));
        assert_eq!(coupler.other_endpoint(1u32.into()), Some(0u32.into()));
        assert_eq!(coupler.other_endpoint(2u32.into()), None);
    }

    #[test]
    fn empty_chip_rejected() {
        let err = ChipBuilder::new("e", TopologyKind::Custom)
            .build()
            .unwrap_err();
        assert_eq!(err, ChipError::Empty);
    }

    #[test]
    fn self_coupling_rejected() {
        let err = ChipBuilder::new("s", TopologyKind::Custom)
            .qubit(Position::new(0.0, 0.0))
            .coupler(0u32.into(), 0u32.into())
            .build()
            .unwrap_err();
        assert_eq!(err, ChipError::SelfCoupling(QubitId::new(0)));
    }

    #[test]
    fn duplicate_coupler_rejected() {
        let err = ChipBuilder::new("d", TopologyKind::Custom)
            .qubit(Position::new(0.0, 0.0))
            .qubit(Position::new(1.0, 0.0))
            .coupler(0u32.into(), 1u32.into())
            .coupler(1u32.into(), 0u32.into())
            .build()
            .unwrap_err();
        assert_eq!(err, ChipError::DuplicateCoupler(0u32.into(), 1u32.into()));
    }

    #[test]
    fn unknown_qubit_rejected() {
        let err = ChipBuilder::new("u", TopologyKind::Custom)
            .qubit(Position::new(0.0, 0.0))
            .coupler(0u32.into(), 7u32.into())
            .build()
            .unwrap_err();
        assert_eq!(err, ChipError::UnknownQubit(QubitId::new(7)));
    }

    #[test]
    fn physical_distance_matches_geometry() {
        let chip = triangle();
        assert!((chip.physical_distance(0u32.into(), 1u32.into()) - 1.0).abs() < 1e-12);
        assert!((chip.physical_distance(1u32.into(), 2u32.into()) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn connectivity_counts_neighbors() {
        let chip = triangle();
        for q in chip.qubit_ids() {
            assert_eq!(chip.connectivity(q), 2);
        }
    }

    #[test]
    fn connectedness() {
        let chip = triangle();
        assert!(chip.is_connected());
        let disconnected = ChipBuilder::new("x", TopologyKind::Custom)
            .qubit(Position::new(0.0, 0.0))
            .qubit(Position::new(1.0, 0.0))
            .build()
            .unwrap();
        assert!(!disconnected.is_connected());
    }

    #[test]
    fn base_frequencies_in_band() {
        let chip = triangle();
        for q in chip.qubits() {
            assert!(q.base_frequency_ghz() >= 4.0 && q.base_frequency_ghz() <= 7.0);
        }
    }

    #[test]
    fn device_ids_cover_qubits_then_couplers() {
        let chip = triangle();
        let devices: Vec<_> = chip.device_ids().collect();
        assert_eq!(devices.len(), 6);
        assert!(devices[..3].iter().all(|d| d.is_qubit()));
        assert!(devices[3..].iter().all(|d| d.is_coupler()));
    }

    #[test]
    fn roles_filter() {
        let chip = ChipBuilder::new("r", TopologyKind::Custom)
            .qubit_with_role(Position::new(0.0, 0.0), QubitRole::Data)
            .qubit_with_role(Position::new(1.0, 0.0), QubitRole::AncillaX)
            .build()
            .unwrap();
        assert_eq!(
            chip.qubits_with_role(QubitRole::Data),
            vec![QubitId::new(0)]
        );
        assert!(QubitRole::AncillaX.is_ancilla());
        assert!(!QubitRole::Data.is_ancilla());
    }
}
