//! Physical, topological, and *equivalent* distances (§4.1 of the paper).
//!
//! The crosstalk characterization model combines two notions of distance
//! between qubits:
//!
//! * **physical distance** `d_phy` — Euclidean distance between placements;
//! * **topological distance** `d_top` — the paper's multi-shortest-path
//!   metric: if the coupling graph has `n` distinct shortest paths of hop
//!   length `l` between two qubits, then `d_top = n · l` (multi-path
//!   metrics are more robust on square lattices, per §4.1);
//! * **equivalent distance** `d_equiv = w_phy · d_phy + w_top · d_top`.
//!
//! [`equivalent_matrix`] produces the full pairwise matrix used as the
//! adjacency representation of the paper's *equivalent graph*.

use std::collections::VecDeque;

use crate::chip::Chip;
use crate::id::QubitId;

/// Multi-shortest-path topological distance between two qubits.
///
/// # Example
///
/// ```
/// use youtiao_chip::topology;
/// use youtiao_chip::distance::topological_distance;
///
/// // On a 2x2 grid the two opposite corners are joined by two 2-hop paths.
/// let chip = topology::square_grid(2, 2);
/// let d = topological_distance(&chip, 0u32.into(), 3u32.into()).unwrap();
/// assert_eq!(d.hops(), 2);
/// assert_eq!(d.path_count(), 2);
/// assert_eq!(d.value(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologicalDistance {
    hops: u32,
    path_count: u64,
}

impl TopologicalDistance {
    /// Shortest-path hop count `l`.
    pub fn hops(self) -> u32 {
        self.hops
    }

    /// Number of distinct shortest paths `n`.
    pub fn path_count(self) -> u64 {
        self.path_count
    }

    /// The paper's metric value `d_top = n · l`.
    pub fn value(self) -> f64 {
        self.path_count as f64 * self.hops as f64
    }
}

/// Computes the multi-shortest-path topological distance between `a` and
/// `b` on the chip's coupling graph.
///
/// Returns `None` when `b` is unreachable from `a`. The distance between a
/// qubit and itself has zero hops and one path (value 0).
///
/// # Panics
///
/// Panics if either id is out of range for the chip.
pub fn topological_distance(chip: &Chip, a: QubitId, b: QubitId) -> Option<TopologicalDistance> {
    let dists = bfs_with_counts(chip, a);
    dists[b.index()].map(|(hops, path_count)| TopologicalDistance { hops, path_count })
}

/// Single-source BFS returning `(hops, shortest_path_count)` per qubit.
fn bfs_with_counts(chip: &Chip, source: QubitId) -> Vec<Option<(u32, u64)>> {
    let n = chip.num_qubits();
    let mut out: Vec<Option<(u32, u64)>> = vec![None; n];
    out[source.index()] = Some((0, 1));
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let (du, cu) = out[u.index()].expect("queued nodes are labelled");
        for &v in chip.neighbors(u) {
            match out[v.index()] {
                None => {
                    out[v.index()] = Some((du + 1, cu));
                    queue.push_back(v);
                }
                Some((dv, cv)) if dv == du + 1 => {
                    out[v.index()] = Some((dv, cv.saturating_add(cu)));
                }
                Some(_) => {}
            }
        }
    }
    out
}

/// Symmetric pairwise distance matrix over a chip's qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    values: Vec<f64>,
}

impl DistanceMatrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        DistanceMatrix {
            n,
            values: vec![0.0; n * n],
        }
    }

    /// Matrix dimension (number of qubits).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for a 0×0 matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Reads the distance between two qubits.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn get(&self, a: QubitId, b: QubitId) -> f64 {
        assert!(
            a.index() < self.n && b.index() < self.n,
            "index out of range"
        );
        self.values[a.index() * self.n + b.index()]
    }

    /// Writes the distance between two qubits symmetrically.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set(&mut self, a: QubitId, b: QubitId, value: f64) {
        assert!(
            a.index() < self.n && b.index() < self.n,
            "index out of range"
        );
        self.values[a.index() * self.n + b.index()] = value;
        self.values[b.index() * self.n + a.index()] = value;
    }

    /// Iterates over the strictly-upper-triangle entries as `(a, b, value)`.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (QubitId, QubitId, f64)> + '_ {
        (0..self.n).flat_map(move |i| {
            ((i + 1)..self.n).map(move |j| {
                (
                    QubitId::from(i),
                    QubitId::from(j),
                    self.values[i * self.n + j],
                )
            })
        })
    }

    /// The qubit (other than `q` itself and not in `exclude`) with the
    /// smallest distance to `q`, if any.
    pub fn nearest(&self, q: QubitId, exclude: &[QubitId]) -> Option<(QubitId, f64)> {
        let mut best: Option<(QubitId, f64)> = None;
        for j in 0..self.n {
            let cand = QubitId::from(j);
            if cand == q || exclude.contains(&cand) {
                continue;
            }
            let d = self.get(q, cand);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((cand, d));
            }
        }
        best
    }
}

/// Weights blending physical and topological distance into the paper's
/// equivalent distance `d_equiv = w_phy · d_phy + w_top · d_top`.
///
/// # Example
///
/// ```
/// use youtiao_chip::distance::EquivalentWeights;
/// let w = EquivalentWeights::new(0.3, 0.7)?;
/// assert_eq!(w.combine(2.0, 4.0), 0.3 * 2.0 + 0.7 * 4.0);
/// # Ok::<(), youtiao_chip::distance::InvalidWeights>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EquivalentWeights {
    w_phy: f64,
    w_top: f64,
}

/// Error returned by [`EquivalentWeights::new`] for non-finite or negative
/// weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidWeights;

impl std::fmt::Display for InvalidWeights {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "equivalent-distance weights must be finite and non-negative"
        )
    }
}

impl std::error::Error for InvalidWeights {}

impl EquivalentWeights {
    /// Creates a weight pair.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidWeights`] when either weight is negative, NaN, or
    /// infinite, or when both are zero.
    pub fn new(w_phy: f64, w_top: f64) -> Result<Self, InvalidWeights> {
        let ok = w_phy.is_finite() && w_top.is_finite() && w_phy >= 0.0 && w_top >= 0.0;
        if !ok || (w_phy == 0.0 && w_top == 0.0) {
            return Err(InvalidWeights);
        }
        Ok(EquivalentWeights { w_phy, w_top })
    }

    /// Equal 0.5/0.5 blend, a sensible pre-fit default.
    pub fn balanced() -> Self {
        EquivalentWeights {
            w_phy: 0.5,
            w_top: 0.5,
        }
    }

    /// The physical-distance weight.
    pub fn w_phy(self) -> f64 {
        self.w_phy
    }

    /// The topological-distance weight.
    pub fn w_top(self) -> f64 {
        self.w_top
    }

    /// Blends the two distance components.
    pub fn combine(self, d_phy: f64, d_top: f64) -> f64 {
        self.w_phy * d_phy + self.w_top * d_top
    }
}

impl Default for EquivalentWeights {
    fn default() -> Self {
        EquivalentWeights::balanced()
    }
}

/// Computes the full pairwise equivalent-distance matrix for a chip.
///
/// Unreachable pairs receive `f64::INFINITY` so that grouping never
/// prefers a disconnected qubit.
///
/// # Example
///
/// ```
/// use youtiao_chip::distance::{equivalent_matrix, EquivalentWeights};
/// use youtiao_chip::topology;
///
/// let chip = topology::square_grid(3, 3);
/// let m = equivalent_matrix(&chip, EquivalentWeights::balanced());
/// // Adjacent qubits are nearer than opposite corners.
/// assert!(m.get(0u32.into(), 1u32.into()) < m.get(0u32.into(), 8u32.into()));
/// ```
pub fn equivalent_matrix(chip: &Chip, weights: EquivalentWeights) -> DistanceMatrix {
    let n = chip.num_qubits();
    let mut m = DistanceMatrix::zeros(n);
    for a in chip.qubit_ids() {
        let row = bfs_with_counts(chip, a);
        for b in chip.qubit_ids() {
            if b <= a {
                continue;
            }
            let d = match row[b.index()] {
                Some((hops, count)) => {
                    let d_top = count as f64 * hops as f64;
                    weights.combine(chip.physical_distance(a, b), d_top)
                }
                None => f64::INFINITY,
            };
            m.set(a, b, d);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    #[test]
    fn self_distance_is_zero() {
        let chip = topology::square_grid(3, 3);
        let d = topological_distance(&chip, 4u32.into(), 4u32.into()).unwrap();
        assert_eq!(d.hops(), 0);
        assert_eq!(d.path_count(), 1);
        assert_eq!(d.value(), 0.0);
    }

    #[test]
    fn adjacent_distance_is_one() {
        let chip = topology::square_grid(3, 3);
        let d = topological_distance(&chip, 0u32.into(), 1u32.into()).unwrap();
        assert_eq!(d.hops(), 1);
        assert_eq!(d.path_count(), 1);
        assert_eq!(d.value(), 1.0);
    }

    #[test]
    fn multipath_counting_on_grid() {
        // 3x3 grid: q0 -> q8 (opposite corners) has 4 hops and C(4,2)=6
        // monotone lattice paths.
        let chip = topology::square_grid(3, 3);
        let d = topological_distance(&chip, 0u32.into(), 8u32.into()).unwrap();
        assert_eq!(d.hops(), 4);
        assert_eq!(d.path_count(), 6);
        assert_eq!(d.value(), 24.0);
    }

    #[test]
    fn unreachable_is_none() {
        let chip = crate::ChipBuilder::new("disc", topology::TopologyKind::Custom)
            .qubit(crate::Position::new(0.0, 0.0))
            .qubit(crate::Position::new(5.0, 0.0))
            .build()
            .unwrap();
        assert!(topological_distance(&chip, 0u32.into(), 1u32.into()).is_none());
    }

    #[test]
    fn matrix_symmetry() {
        let chip = topology::hexagon_patch(2, 2);
        let m = equivalent_matrix(&chip, EquivalentWeights::balanced());
        for a in chip.qubit_ids() {
            for b in chip.qubit_ids() {
                assert_eq!(m.get(a, b), m.get(b, a));
            }
        }
    }

    #[test]
    fn matrix_diagonal_zero() {
        let chip = topology::square_grid(2, 3);
        let m = equivalent_matrix(&chip, EquivalentWeights::balanced());
        for q in chip.qubit_ids() {
            assert_eq!(m.get(q, q), 0.0);
        }
    }

    #[test]
    fn unreachable_pairs_are_infinite() {
        let chip = crate::ChipBuilder::new("disc", topology::TopologyKind::Custom)
            .qubit(crate::Position::new(0.0, 0.0))
            .qubit(crate::Position::new(5.0, 0.0))
            .build()
            .unwrap();
        let m = equivalent_matrix(&chip, EquivalentWeights::balanced());
        assert!(m.get(0u32.into(), 1u32.into()).is_infinite());
    }

    #[test]
    fn nearest_respects_exclusion() {
        let chip = topology::linear(4);
        let m = equivalent_matrix(&chip, EquivalentWeights::balanced());
        let (first, _) = m.nearest(0u32.into(), &[]).unwrap();
        assert_eq!(first, QubitId::from(1usize));
        let (second, _) = m.nearest(0u32.into(), &[1usize.into()]).unwrap();
        assert_eq!(second, QubitId::from(2usize));
    }

    #[test]
    fn nearest_on_singleton_is_none() {
        let m = DistanceMatrix::zeros(1);
        assert!(m.nearest(0u32.into(), &[]).is_none());
    }

    #[test]
    fn weights_validation() {
        assert!(EquivalentWeights::new(-0.1, 0.5).is_err());
        assert!(EquivalentWeights::new(f64::NAN, 0.5).is_err());
        assert!(EquivalentWeights::new(0.0, 0.0).is_err());
        assert!(EquivalentWeights::new(1.0, 0.0).is_ok());
        let w = EquivalentWeights::default();
        assert_eq!(w.w_phy(), 0.5);
        assert_eq!(w.w_top(), 0.5);
    }

    #[test]
    fn iter_pairs_covers_upper_triangle() {
        let chip = topology::square_grid(2, 2);
        let m = equivalent_matrix(&chip, EquivalentWeights::balanced());
        let pairs: Vec<_> = m.iter_pairs().collect();
        assert_eq!(pairs.len(), 6); // C(4,2)
        assert!(pairs.iter().all(|&(a, b, _)| a < b));
    }

    #[test]
    fn equivalent_distance_orders_by_locality() {
        let chip = topology::square_grid(4, 4);
        let m = equivalent_matrix(&chip, EquivalentWeights::balanced());
        // neighbour closer than diagonal, diagonal closer than far corner
        let near = m.get(0u32.into(), 1u32.into());
        let diag = m.get(0u32.into(), 5u32.into());
        let far = m.get(0u32.into(), 15u32.into());
        assert!(near < diag && diag < far);
    }
}
