//! Error type for chip construction and queries.

use std::error::Error;
use std::fmt;

use crate::id::{CouplerId, QubitId};
use crate::multi::DieId;

/// Errors produced while building or querying a [`Chip`](crate::Chip).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChipError {
    /// A coupler referenced a qubit id that does not exist on the chip.
    UnknownQubit(QubitId),
    /// A coupler id was referenced that does not exist on the chip.
    UnknownCoupler(CouplerId),
    /// Two couplers were declared between the same pair of qubits.
    DuplicateCoupler(QubitId, QubitId),
    /// A coupler connected a qubit to itself.
    SelfCoupling(QubitId),
    /// The chip has no qubits.
    Empty,
    /// A spec used a role string that is not a known qubit role.
    UnknownRole(String),
    /// An inter-die link referenced a die that does not exist.
    UnknownDie(DieId),
    /// An inter-die link connected a die to itself.
    IntraDieLink(DieId),
}

impl fmt::Display for ChipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChipError::UnknownQubit(q) => write!(f, "unknown qubit {q}"),
            ChipError::UnknownCoupler(c) => write!(f, "unknown coupler {c}"),
            ChipError::DuplicateCoupler(a, b) => {
                write!(f, "duplicate coupler between {a} and {b}")
            }
            ChipError::SelfCoupling(q) => write!(f, "coupler connects {q} to itself"),
            ChipError::Empty => write!(f, "chip has no qubits"),
            ChipError::UnknownRole(role) => write!(
                f,
                "unknown qubit role `{role}` (expected generic, data, ancilla_x or ancilla_z)"
            ),
            ChipError::UnknownDie(d) => write!(f, "unknown die {d}"),
            ChipError::IntraDieLink(d) => write!(f, "inter-die link connects die {d} to itself"),
        }
    }
}

impl Error for ChipError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let msgs = [
            ChipError::UnknownQubit(QubitId::new(3)).to_string(),
            ChipError::UnknownCoupler(CouplerId::new(1)).to_string(),
            ChipError::DuplicateCoupler(QubitId::new(0), QubitId::new(1)).to_string(),
            ChipError::SelfCoupling(QubitId::new(2)).to_string(),
            ChipError::Empty.to_string(),
            ChipError::UnknownRole("mystery".into()).to_string(),
            ChipError::UnknownDie(DieId::new(3)).to_string(),
            ChipError::IntraDieLink(DieId::new(0)).to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'));
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ChipError>();
    }
}
