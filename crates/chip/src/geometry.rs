//! Planar geometry for on-chip device placement.
//!
//! All coordinates are in **millimetres** on the sapphire die, matching the
//! scales quoted in the paper (transmon diameter ≈ 0.65 mm, wafer ≤ 300 mm).

use std::fmt;
use std::ops::{Add, Sub};

/// A point on the chip plane, in millimetres.
///
/// # Example
///
/// ```
/// use youtiao_chip::Position;
/// let a = Position::new(0.0, 0.0);
/// let b = Position::new(3.0, 4.0);
/// assert_eq!(a.distance_to(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// Horizontal coordinate in millimetres.
    pub x: f64,
    /// Vertical coordinate in millimetres.
    pub y: f64,
}

impl Position {
    /// Creates a position from `x`/`y` coordinates in millimetres.
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to another position, in millimetres.
    ///
    /// This is the physical distance `d_phy` of §4.1 of the paper.
    pub fn distance_to(self, other: Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Midpoint between this position and another.
    pub fn midpoint(self, other: Position) -> Position {
        Position::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl Add for Position {
    type Output = Position;

    fn add(self, rhs: Position) -> Position {
        Position::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Position {
    type Output = Position;

    fn sub(self, rhs: Position) -> Position {
        Position::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl From<(f64, f64)> for Position {
    fn from((x, y): (f64, f64)) -> Self {
        Position::new(x, y)
    }
}

/// Axis-aligned bounding box of a set of positions, in millimetres.
///
/// Used by the router to size the routing grid and by the partitioner to
/// seed regions.
///
/// # Example
///
/// ```
/// use youtiao_chip::geometry::BoundingBox;
/// use youtiao_chip::Position;
///
/// let bb = BoundingBox::of([Position::new(0.0, 1.0), Position::new(2.0, 5.0)]).unwrap();
/// assert_eq!(bb.width(), 2.0);
/// assert_eq!(bb.height(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    /// Lower-left corner.
    pub min: Position,
    /// Upper-right corner.
    pub max: Position,
}

impl BoundingBox {
    /// Computes the bounding box of an iterator of positions.
    ///
    /// Returns `None` for an empty iterator.
    pub fn of<I>(positions: I) -> Option<Self>
    where
        I: IntoIterator<Item = Position>,
    {
        let mut iter = positions.into_iter();
        let first = iter.next()?;
        let mut bb = BoundingBox {
            min: first,
            max: first,
        };
        for p in iter {
            bb.min.x = bb.min.x.min(p.x);
            bb.min.y = bb.min.y.min(p.y);
            bb.max.x = bb.max.x.max(p.x);
            bb.max.y = bb.max.y.max(p.y);
        }
        Some(bb)
    }

    /// Width of the box in millimetres.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height of the box in millimetres.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Grows the box outward by `margin` millimetres on each side.
    pub fn expanded(&self, margin: f64) -> BoundingBox {
        BoundingBox {
            min: Position::new(self.min.x - margin, self.min.y - margin),
            max: Position::new(self.max.x + margin, self.max.y + margin),
        }
    }

    /// Returns `true` when the position lies inside (or on the edge of) the box.
    pub fn contains(&self, p: Position) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Position::new(1.0, 2.0);
        let b = Position::new(4.0, 6.0);
        assert!((a.distance_to(b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance_to(a), 0.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Position::new(-1.0, 0.5);
        let b = Position::new(2.5, -3.0);
        assert_eq!(a.distance_to(b), b.distance_to(a));
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(2.0, 6.0);
        assert_eq!(a.midpoint(b), Position::new(1.0, 3.0));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Position::new(1.5, -2.0);
        let b = Position::new(0.25, 4.0);
        assert_eq!((a + b) - b, a);
    }

    #[test]
    fn bounding_box_of_points() {
        let bb = BoundingBox::of([
            Position::new(1.0, 5.0),
            Position::new(-2.0, 3.0),
            Position::new(4.0, -1.0),
        ])
        .unwrap();
        assert_eq!(bb.min, Position::new(-2.0, -1.0));
        assert_eq!(bb.max, Position::new(4.0, 5.0));
        assert_eq!(bb.width(), 6.0);
        assert_eq!(bb.height(), 6.0);
    }

    #[test]
    fn bounding_box_empty_is_none() {
        assert!(BoundingBox::of(std::iter::empty()).is_none());
    }

    #[test]
    fn bounding_box_expand_and_contains() {
        let bb = BoundingBox::of([Position::new(0.0, 0.0), Position::new(1.0, 1.0)])
            .unwrap()
            .expanded(0.5);
        assert!(bb.contains(Position::new(-0.5, -0.5)));
        assert!(bb.contains(Position::new(1.5, 1.5)));
        assert!(!bb.contains(Position::new(2.0, 0.0)));
    }
}
