//! Strongly-typed identifiers for on-chip devices.
//!
//! Qubits and couplers are both Z-controlled devices from the wiring
//! system's point of view, so a unifying [`DeviceId`] is provided for code
//! (TDM grouping, DEMUX assignment) that treats them uniformly, while
//! [`QubitId`] / [`CouplerId`] keep the two namespaces statically distinct
//! everywhere else.

use std::fmt;

/// Index of a qubit on a chip.
///
/// Identifiers are dense: a chip with `n` qubits uses ids `0..n`.
///
/// # Example
///
/// ```
/// use youtiao_chip::QubitId;
/// let q = QubitId::new(3);
/// assert_eq!(q.index(), 3);
/// assert_eq!(q.to_string(), "q3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct QubitId(u32);

impl QubitId {
    /// Creates a qubit id from a raw index.
    pub const fn new(index: u32) -> Self {
        QubitId(index)
    }

    /// Returns the raw index as a `usize`, suitable for slice indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for QubitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<u32> for QubitId {
    fn from(v: u32) -> Self {
        QubitId(v)
    }
}

impl From<usize> for QubitId {
    fn from(v: usize) -> Self {
        QubitId(v as u32)
    }
}

/// Index of a tunable coupler on a chip.
///
/// Identifiers are dense: a chip with `m` couplers uses ids `0..m`.
///
/// # Example
///
/// ```
/// use youtiao_chip::CouplerId;
/// let c = CouplerId::new(1);
/// assert_eq!(c.to_string(), "c1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CouplerId(u32);

impl CouplerId {
    /// Creates a coupler id from a raw index.
    pub const fn new(index: u32) -> Self {
        CouplerId(index)
    }

    /// Returns the raw index as a `usize`, suitable for slice indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for CouplerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<u32> for CouplerId {
    fn from(v: u32) -> Self {
        CouplerId(v)
    }
}

impl From<usize> for CouplerId {
    fn from(v: usize) -> Self {
        CouplerId(v as u32)
    }
}

/// A Z-controlled device: either a qubit or a coupler.
///
/// The TDM grouping stage of YOUTIAO assigns *both* qubits and couplers to
/// cryo-DEMUX channels, so it operates on `DeviceId`s.
///
/// # Example
///
/// ```
/// use youtiao_chip::{DeviceId, QubitId};
/// let d = DeviceId::from(QubitId::new(0));
/// assert!(d.as_qubit().is_some());
/// assert!(d.as_coupler().is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeviceId {
    /// A qubit device.
    Qubit(QubitId),
    /// A coupler device.
    Coupler(CouplerId),
}

impl DeviceId {
    /// Returns the qubit id if this device is a qubit.
    pub fn as_qubit(self) -> Option<QubitId> {
        match self {
            DeviceId::Qubit(q) => Some(q),
            DeviceId::Coupler(_) => None,
        }
    }

    /// Returns the coupler id if this device is a coupler.
    pub fn as_coupler(self) -> Option<CouplerId> {
        match self {
            DeviceId::Coupler(c) => Some(c),
            DeviceId::Qubit(_) => None,
        }
    }

    /// Returns `true` when the device is a qubit.
    pub fn is_qubit(self) -> bool {
        matches!(self, DeviceId::Qubit(_))
    }

    /// Returns `true` when the device is a coupler.
    pub fn is_coupler(self) -> bool {
        matches!(self, DeviceId::Coupler(_))
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceId::Qubit(q) => write!(f, "{q}"),
            DeviceId::Coupler(c) => write!(f, "{c}"),
        }
    }
}

impl From<QubitId> for DeviceId {
    fn from(q: QubitId) -> Self {
        DeviceId::Qubit(q)
    }
}

impl From<CouplerId> for DeviceId {
    fn from(c: CouplerId) -> Self {
        DeviceId::Coupler(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_id_roundtrip() {
        let q = QubitId::new(17);
        assert_eq!(q.index(), 17);
        assert_eq!(q.value(), 17);
        assert_eq!(QubitId::from(17u32), q);
        assert_eq!(QubitId::from(17usize), q);
    }

    #[test]
    fn coupler_id_roundtrip() {
        let c = CouplerId::new(5);
        assert_eq!(c.index(), 5);
        assert_eq!(c.value(), 5);
        assert_eq!(CouplerId::from(5u32), c);
    }

    #[test]
    fn display_forms() {
        assert_eq!(QubitId::new(2).to_string(), "q2");
        assert_eq!(CouplerId::new(9).to_string(), "c9");
        assert_eq!(DeviceId::from(QubitId::new(2)).to_string(), "q2");
        assert_eq!(DeviceId::from(CouplerId::new(9)).to_string(), "c9");
    }

    #[test]
    fn device_id_projection() {
        let dq = DeviceId::from(QubitId::new(1));
        let dc = DeviceId::from(CouplerId::new(2));
        assert_eq!(dq.as_qubit(), Some(QubitId::new(1)));
        assert_eq!(dq.as_coupler(), None);
        assert_eq!(dc.as_coupler(), Some(CouplerId::new(2)));
        assert_eq!(dc.as_qubit(), None);
        assert!(dq.is_qubit() && !dq.is_coupler());
        assert!(dc.is_coupler() && !dc.is_qubit());
    }

    #[test]
    fn ordering_is_by_index_within_kind() {
        assert!(QubitId::new(1) < QubitId::new(2));
        assert!(CouplerId::new(0) < CouplerId::new(10));
    }
}
