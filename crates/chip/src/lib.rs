//! Superconducting quantum chip model for YOUTIAO.
//!
//! This crate is the hardware substrate of the YOUTIAO reproduction: it
//! models a superconducting quantum processor as a set of [`Qubit`]s placed
//! on a 2-D sapphire die, pairwise connected through tunable [`Coupler`]s.
//! Every higher-level YOUTIAO stage (crosstalk fitting, FDM/TDM grouping,
//! chip partitioning, on-chip routing, cost accounting) consumes the types
//! defined here.
//!
//! # Highlights
//!
//! * [`Chip`] — validated, immutable device description with adjacency
//!   queries, built through [`ChipBuilder`].
//! * [`topology`] — generators for the five qubit arrangements evaluated in
//!   the paper (square, hexagon, heavy square, heavy hexagon, low density)
//!   plus the 6×6 / 8×8 Xmon grids used for crosstalk fitting.
//! * [`distance`] — physical, multi-shortest-path topological, and
//!   *equivalent* distances (§4.1 of the paper).
//! * [`surface`] — rotated surface-code layouts for the fault-tolerant chip
//!   case study (§5.2, Table 1).
//! * [`multi`] — multi-die chiplet arrays: per-die layouts plus typed
//!   inter-chiplet links, tiled from any single-die topology (the
//!   Figure 17 (c) scale-out scenario).
//!
//! # Example
//!
//! ```
//! use youtiao_chip::topology;
//! use youtiao_chip::distance::{equivalent_matrix, EquivalentWeights};
//!
//! let chip = topology::square_grid(6, 6);
//! assert_eq!(chip.num_qubits(), 36);
//! let weights = EquivalentWeights::new(0.5, 0.5).unwrap();
//! let matrix = equivalent_matrix(&chip, weights);
//! assert!(matrix.get(0u32.into(), 35u32.into()) > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chip;
pub mod distance;
pub mod error;
pub mod geometry;
pub mod id;
pub mod multi;
pub mod spec;
pub mod surface;
pub mod topology;

pub use crate::chip::{Chip, ChipBuilder, Coupler, Qubit, QubitRole};
pub use crate::distance::{DistanceMatrix, EquivalentWeights, TopologicalDistance};
pub use crate::error::ChipError;
pub use crate::geometry::Position;
pub use crate::id::{CouplerId, DeviceId, QubitId};
pub use crate::multi::{DieId, InterDieLink, LinkTopology, MultiDieChip};
pub use crate::spec::ChipSpec;
pub use crate::topology::TopologyKind;
