//! Multi-die chiplet chips (§6 scale-out scenario, Figure 17 (c)).
//!
//! A [`MultiDieChip`] models a cryostat holding several chiplet dies: a
//! [`DieId`]-indexed vector of per-die [`Chip`] layouts plus typed
//! [`InterDieLink`]s with their own crosstalk and latency parameters
//! (inter-chiplet couplers are bump-bonded or cable-connected, so their
//! physics differs from on-die couplers). [`MultiDieChip::tile`] turns
//! any single-die layout into an R×C chiplet array, deriving links from
//! facing die edges under a [`LinkTopology`].
//!
//! Dies are stored in **template-local coordinates** — tiling clones the
//! template verbatim and records a per-die origin offset separately
//! ([`MultiDieChip::origin`]). This keeps every per-die planning input
//! bit-identical to the monolithic chip's, which is what makes a 1×1
//! array plan byte-identical to the single-chip plan (the multi-die
//! determinism contract pinned by `tests/multi_die.rs`).

use std::fmt;

use crate::chip::Chip;
use crate::error::ChipError;
use crate::geometry::Position;
use crate::id::QubitId;

/// Geometry tolerance when classifying boundary qubits, millimetres.
const EDGE_EPS_MM: f64 = 1e-9;

/// Spacing between neighbouring dies in cryostat coordinates, mm.
pub const DIE_GAP_MM: f64 = 2.0;

/// Default inter-chiplet link crosstalk coefficient (dimensionless,
/// same scale as the fitted on-die XY crosstalk).
pub const DEFAULT_LINK_XTALK: f64 = 0.05;

/// Default inter-chiplet link latency in nanoseconds (bump-bond plus
/// interposer trace; an order of magnitude above on-die couplers).
pub const DEFAULT_LINK_LATENCY_NS: f64 = 8.0;

/// Default number of inter-chiplet links per facing die edge.
pub const DEFAULT_LINKS_PER_EDGE: usize = 2;

/// Index of one die within a [`MultiDieChip`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DieId(u32);

impl DieId {
    /// Creates a die id from its raw index.
    pub const fn new(value: u32) -> Self {
        DieId(value)
    }

    /// The raw index value.
    pub const fn value(self) -> u32 {
        self.0
    }

    /// The index as a `usize`, for vector indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for DieId {
    fn from(value: u32) -> Self {
        DieId(value)
    }
}

impl fmt::Display for DieId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// How the dies of a chiplet array are interconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LinkTopology {
    /// Links between dies adjacent in the R×C array (the IBM chiplet
    /// scale-out shape).
    #[default]
    Grid,
    /// [`Grid`](Self::Grid) plus wrap-around links along any dimension
    /// longer than two dies.
    Torus,
    /// No inter-die links: dies share only the cryostat I/O budget.
    Isolated,
}

impl LinkTopology {
    /// The topology's canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            LinkTopology::Grid => "grid",
            LinkTopology::Torus => "torus",
            LinkTopology::Isolated => "isolated",
        }
    }

    /// Parses a canonical name (`"grid"`, `"torus"`, `"isolated"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "grid" => Some(LinkTopology::Grid),
            "torus" => Some(LinkTopology::Torus),
            "isolated" => Some(LinkTopology::Isolated),
            _ => None,
        }
    }
}

impl fmt::Display for LinkTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed inter-chiplet link between two qubits on different dies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterDieLink {
    /// One endpoint: `(die, qubit-on-that-die)`.
    pub a: (DieId, QubitId),
    /// The other endpoint, on a different die.
    pub b: (DieId, QubitId),
    /// Link crosstalk coefficient (same scale as on-die XY crosstalk).
    pub xtalk: f64,
    /// Signal latency across the link, nanoseconds.
    pub latency_ns: f64,
}

impl InterDieLink {
    /// A link with the default crosstalk/latency parameters.
    pub fn new(a: (DieId, QubitId), b: (DieId, QubitId)) -> Self {
        InterDieLink {
            a,
            b,
            xtalk: DEFAULT_LINK_XTALK,
            latency_ns: DEFAULT_LINK_LATENCY_NS,
        }
    }

    /// Returns `true` when either endpoint lies on `die`.
    pub fn touches(&self, die: DieId) -> bool {
        self.a.0 == die || self.b.0 == die
    }
}

/// A multi-die chiplet chip: per-die layouts plus inter-chiplet links.
///
/// # Example
///
/// ```
/// use youtiao_chip::multi::{LinkTopology, MultiDieChip};
/// use youtiao_chip::topology;
///
/// let die = topology::square_grid(3, 3);
/// let array = MultiDieChip::tile(&die, 2, 2, LinkTopology::Grid).unwrap();
/// assert_eq!(array.num_dies(), 4);
/// assert_eq!(array.total_qubits(), 36);
/// assert!(!array.links().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultiDieChip {
    name: String,
    dies: Vec<Chip>,
    origins: Vec<Position>,
    rows: usize,
    cols: usize,
    links: Vec<InterDieLink>,
    link_topology: LinkTopology,
}

impl MultiDieChip {
    /// Assembles a multi-die chip from explicit dies and links (a 1×N
    /// row arrangement; use [`tile`](Self::tile) for arrays).
    ///
    /// # Errors
    ///
    /// * [`ChipError::Empty`] — no dies.
    /// * [`ChipError::UnknownDie`] — a link references a missing die.
    /// * [`ChipError::UnknownQubit`] — a link endpoint is out of range
    ///   on its die.
    /// * [`ChipError::IntraDieLink`] — both link endpoints share a die.
    pub fn from_dies(
        name: impl Into<String>,
        dies: Vec<Chip>,
        links: Vec<InterDieLink>,
    ) -> Result<Self, ChipError> {
        if dies.is_empty() {
            return Err(ChipError::Empty);
        }
        let cols = dies.len();
        let mut origins = Vec::with_capacity(cols);
        let mut x = 0.0;
        for die in &dies {
            let bb = die.bounding_box();
            origins.push(Position::new(x, 0.0));
            x += bb.width() + DIE_GAP_MM;
        }
        let mdc = MultiDieChip {
            name: name.into(),
            dies,
            origins,
            rows: 1,
            cols,
            links,
            link_topology: LinkTopology::Grid,
        };
        mdc.validate_links()?;
        Ok(mdc)
    }

    /// Tiles `template` into an R×C chiplet array with the default link
    /// parameters ([`DEFAULT_LINKS_PER_EDGE`] links per facing edge).
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::Empty`] for a zero-die array.
    pub fn tile(
        template: &Chip,
        rows: usize,
        cols: usize,
        link_topology: LinkTopology,
    ) -> Result<Self, ChipError> {
        Self::tile_with(template, rows, cols, link_topology, DEFAULT_LINKS_PER_EDGE)
    }

    /// [`tile`](Self::tile) with an explicit per-edge link count.
    ///
    /// Dies are clones of `template` in template-local coordinates; die
    /// `(r, c)` sits at index `r * cols + c` with its origin offset by
    /// the die footprint plus [`DIE_GAP_MM`]. Facing edges are linked by
    /// pairing the template's boundary qubits (right edge ↔ left edge,
    /// bottom ↔ top), spread evenly along the edge, up to
    /// `links_per_edge` pairs. A [`LinkTopology::Torus`] additionally
    /// wraps any dimension longer than two dies.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::Empty`] for a zero-die array.
    pub fn tile_with(
        template: &Chip,
        rows: usize,
        cols: usize,
        link_topology: LinkTopology,
        links_per_edge: usize,
    ) -> Result<Self, ChipError> {
        if rows == 0 || cols == 0 {
            return Err(ChipError::Empty);
        }
        let bb = template.bounding_box();
        let (w, h) = (bb.width() + DIE_GAP_MM, bb.height() + DIE_GAP_MM);
        let mut dies = Vec::with_capacity(rows * cols);
        let mut origins = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                dies.push(template.clone());
                origins.push(Position::new(c as f64 * w, r as f64 * h));
            }
        }

        let mut links = Vec::new();
        if link_topology != LinkTopology::Isolated {
            let right = edge_qubits(template, Edge::Right);
            let left = edge_qubits(template, Edge::Left);
            let bottom = edge_qubits(template, Edge::Bottom);
            let top = edge_qubits(template, Edge::Top);
            let die = |r: usize, c: usize| DieId::new((r * cols + c) as u32);
            let mut connect = |a: DieId, b: DieId, ea: &[QubitId], eb: &[QubitId]| {
                let n = ea.len().min(eb.len());
                for i in spread_indices(n, links_per_edge) {
                    links.push(InterDieLink::new((a, ea[i]), (b, eb[i])));
                }
            };
            for r in 0..rows {
                for c in 0..cols {
                    if c + 1 < cols {
                        connect(die(r, c), die(r, c + 1), &right, &left);
                    }
                    if r + 1 < rows {
                        connect(die(r, c), die(r + 1, c), &bottom, &top);
                    }
                }
            }
            if link_topology == LinkTopology::Torus {
                if cols > 2 {
                    for r in 0..rows {
                        connect(die(r, cols - 1), die(r, 0), &right, &left);
                    }
                }
                if rows > 2 {
                    for c in 0..cols {
                        connect(die(rows - 1, c), die(0, c), &bottom, &top);
                    }
                }
            }
        }

        let mdc = MultiDieChip {
            name: format!("{}-{rows}x{cols}", template.name()),
            dies,
            origins,
            rows,
            cols,
            links,
            link_topology,
        };
        mdc.validate_links()?;
        Ok(mdc)
    }

    fn validate_links(&self) -> Result<(), ChipError> {
        for link in &self.links {
            for &(die, q) in [&link.a, &link.b] {
                let chip = self
                    .dies
                    .get(die.index())
                    .ok_or(ChipError::UnknownDie(die))?;
                if q.index() >= chip.num_qubits() {
                    return Err(ChipError::UnknownQubit(q));
                }
            }
            if link.a.0 == link.b.0 {
                return Err(ChipError::IntraDieLink(link.a.0));
            }
        }
        Ok(())
    }

    /// Human-readable array name (e.g. `"heavy-hexagon-4x5-2x2"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of dies in the array.
    pub fn num_dies(&self) -> usize {
        self.dies.len()
    }

    /// Array rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The per-die layouts, in [`DieId`] order (template-local
    /// coordinates).
    pub fn dies(&self) -> &[Chip] {
        &self.dies
    }

    /// Looks up one die.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::UnknownDie`] when the id is out of range.
    pub fn die(&self, id: DieId) -> Result<&Chip, ChipError> {
        self.dies.get(id.index()).ok_or(ChipError::UnknownDie(id))
    }

    /// Iterates over all die ids in order.
    pub fn die_ids(&self) -> impl ExactSizeIterator<Item = DieId> {
        (0..self.dies.len() as u32).map(DieId::new)
    }

    /// Cryostat-frame origin of a die (where its local `(0, 0)` sits).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn origin(&self, id: DieId) -> Position {
        self.origins[id.index()]
    }

    /// All inter-chiplet links.
    pub fn links(&self) -> &[InterDieLink] {
        &self.links
    }

    /// Links with at least one endpoint on `die`.
    pub fn links_of_die(&self, die: DieId) -> impl Iterator<Item = &InterDieLink> {
        self.links.iter().filter(move |l| l.touches(die))
    }

    /// The array's link topology.
    pub fn link_topology(&self) -> LinkTopology {
        self.link_topology
    }

    /// Total qubits across all dies.
    pub fn total_qubits(&self) -> usize {
        self.dies.iter().map(Chip::num_qubits).sum()
    }

    /// Total Z-controlled devices across all dies.
    pub fn total_z_devices(&self) -> usize {
        self.dies.iter().map(Chip::num_z_devices).sum()
    }

    /// First qubit index of each die in a flattened global numbering
    /// (die qubits concatenated in die order), plus the total as a final
    /// sentinel entry.
    pub fn qubit_bases(&self) -> Vec<usize> {
        let mut bases = Vec::with_capacity(self.dies.len() + 1);
        let mut base = 0;
        for die in &self.dies {
            bases.push(base);
            base += die.num_qubits();
        }
        bases.push(base);
        bases
    }
}

impl fmt::Display for MultiDieChip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}x{} dies, {} qubits, {} links, {})",
            self.name,
            self.rows,
            self.cols,
            self.total_qubits(),
            self.links.len(),
            self.link_topology
        )
    }
}

enum Edge {
    Left,
    Right,
    Top,
    Bottom,
}

/// Boundary qubits of `chip` along one edge, sorted by the coordinate
/// running along the edge (ties broken by qubit id, which is already
/// the iteration order).
fn edge_qubits(chip: &Chip, edge: Edge) -> Vec<QubitId> {
    let bb = chip.bounding_box();
    let mut qubits: Vec<(f64, QubitId)> = chip
        .qubits()
        .filter_map(|q| {
            let p = q.position();
            let (on_edge, along) = match edge {
                Edge::Left => ((p.x - bb.min.x).abs() < EDGE_EPS_MM, p.y),
                Edge::Right => ((p.x - bb.max.x).abs() < EDGE_EPS_MM, p.y),
                Edge::Top => ((p.y - bb.min.y).abs() < EDGE_EPS_MM, p.x),
                Edge::Bottom => ((p.y - bb.max.y).abs() < EDGE_EPS_MM, p.x),
            };
            on_edge.then_some((along, q.id()))
        })
        .collect();
    qubits.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    qubits.into_iter().map(|(_, q)| q).collect()
}

/// Up to `k` indices spread evenly across `0..n`, deduplicated and
/// ascending (the deterministic link-placement policy).
fn spread_indices(n: usize, k: usize) -> Vec<usize> {
    if n == 0 || k == 0 {
        return Vec::new();
    }
    if k >= n {
        return (0..n).collect();
    }
    if k == 1 {
        return vec![n / 2];
    }
    let mut out = Vec::with_capacity(k);
    for i in 0..k {
        let idx = i * (n - 1) / (k - 1);
        if out.last() != Some(&idx) {
            out.push(idx);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    #[test]
    fn tile_clones_template_per_die() {
        let die = topology::square_grid(3, 3);
        let array = MultiDieChip::tile(&die, 2, 3, LinkTopology::Grid).unwrap();
        assert_eq!(array.num_dies(), 6);
        assert_eq!(array.total_qubits(), 54);
        assert_eq!(array.total_z_devices(), 6 * die.num_z_devices());
        for d in array.dies() {
            // Template-local coordinates: every die is the template.
            assert_eq!(d, &die);
        }
        assert_eq!(array.qubit_bases(), vec![0, 9, 18, 27, 36, 45, 54]);
    }

    #[test]
    fn origins_tile_without_overlap() {
        let die = topology::square_grid(3, 3);
        let array = MultiDieChip::tile(&die, 2, 2, LinkTopology::Grid).unwrap();
        let w = die.bounding_box().width() + DIE_GAP_MM;
        let h = die.bounding_box().height() + DIE_GAP_MM;
        assert_eq!(array.origin(DieId::new(0)), Position::new(0.0, 0.0));
        assert_eq!(array.origin(DieId::new(1)), Position::new(w, 0.0));
        assert_eq!(array.origin(DieId::new(2)), Position::new(0.0, h));
        assert_eq!(array.origin(DieId::new(3)), Position::new(w, h));
    }

    #[test]
    fn grid_links_connect_facing_edges_only() {
        let die = topology::square_grid(3, 3);
        let array = MultiDieChip::tile(&die, 2, 2, LinkTopology::Grid).unwrap();
        // 4 internal edges × DEFAULT_LINKS_PER_EDGE.
        assert_eq!(array.links().len(), 4 * DEFAULT_LINKS_PER_EDGE);
        for link in array.links() {
            assert_ne!(link.a.0, link.b.0);
            assert!((link.xtalk - DEFAULT_LINK_XTALK).abs() < 1e-12);
            assert!((link.latency_ns - DEFAULT_LINK_LATENCY_NS).abs() < 1e-12);
        }
        // Every die touches at least one link.
        for d in array.die_ids() {
            assert!(array.links_of_die(d).count() > 0, "die {d} isolated");
        }
    }

    #[test]
    fn isolated_topology_has_no_links() {
        let die = topology::square_grid(2, 2);
        let array = MultiDieChip::tile(&die, 2, 2, LinkTopology::Isolated).unwrap();
        assert!(array.links().is_empty());
    }

    #[test]
    fn torus_wraps_only_dimensions_longer_than_two() {
        let die = topology::square_grid(3, 3);
        let small = MultiDieChip::tile(&die, 1, 2, LinkTopology::Torus).unwrap();
        let grid = MultiDieChip::tile(&die, 1, 2, LinkTopology::Grid).unwrap();
        assert_eq!(small.links().len(), grid.links().len());
        let ring = MultiDieChip::tile(&die, 1, 3, LinkTopology::Torus).unwrap();
        let open = MultiDieChip::tile(&die, 1, 3, LinkTopology::Grid).unwrap();
        assert_eq!(
            ring.links().len(),
            open.links().len() + DEFAULT_LINKS_PER_EDGE
        );
    }

    #[test]
    fn single_die_array_has_no_links() {
        let die = topology::heavy_hexagon(1, 2);
        let array = MultiDieChip::tile(&die, 1, 1, LinkTopology::Grid).unwrap();
        assert_eq!(array.num_dies(), 1);
        assert!(array.links().is_empty());
        assert_eq!(array.dies()[0], die);
    }

    #[test]
    fn bad_links_rejected() {
        let die = topology::square_grid(2, 2);
        let self_link = MultiDieChip::from_dies(
            "bad",
            vec![die.clone(), die.clone()],
            vec![InterDieLink::new(
                (DieId::new(0), 0u32.into()),
                (DieId::new(0), 1u32.into()),
            )],
        );
        assert!(matches!(self_link, Err(ChipError::IntraDieLink(_))));
        let dangling_die = MultiDieChip::from_dies(
            "bad",
            vec![die.clone()],
            vec![InterDieLink::new(
                (DieId::new(0), 0u32.into()),
                (DieId::new(7), 1u32.into()),
            )],
        );
        assert!(matches!(dangling_die, Err(ChipError::UnknownDie(_))));
        let dangling_qubit = MultiDieChip::from_dies(
            "bad",
            vec![die.clone(), die],
            vec![InterDieLink::new(
                (DieId::new(0), 99u32.into()),
                (DieId::new(1), 0u32.into()),
            )],
        );
        assert!(matches!(dangling_qubit, Err(ChipError::UnknownQubit(_))));
        assert!(matches!(
            MultiDieChip::from_dies("e", vec![], vec![]),
            Err(ChipError::Empty)
        ));
    }

    #[test]
    fn link_topology_names_roundtrip() {
        for t in [
            LinkTopology::Grid,
            LinkTopology::Torus,
            LinkTopology::Isolated,
        ] {
            assert_eq!(LinkTopology::parse(t.name()), Some(t));
        }
        assert_eq!(LinkTopology::parse("mesh"), None);
    }

    #[test]
    fn spread_indices_are_even_and_deduped() {
        assert_eq!(spread_indices(5, 2), vec![0, 4]);
        assert_eq!(spread_indices(5, 3), vec![0, 2, 4]);
        assert_eq!(spread_indices(3, 8), vec![0, 1, 2]);
        assert_eq!(spread_indices(4, 1), vec![2]);
        assert_eq!(spread_indices(1, 3), vec![0]);
        assert!(spread_indices(0, 2).is_empty());
        assert!(spread_indices(4, 0).is_empty());
    }

    #[test]
    fn heavy_hex_edges_are_nonempty() {
        let die = topology::heavy_hexagon(4, 5);
        for edge in [Edge::Left, Edge::Right, Edge::Top, Edge::Bottom] {
            assert!(!edge_qubits(&die, edge).is_empty());
        }
    }
}
