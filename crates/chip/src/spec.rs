//! Serializable chip descriptions.
//!
//! [`ChipSpec`] is a plain-data mirror of [`Chip`] suitable for storing
//! device descriptions on disk (with the `serde` feature, as JSON or any
//! serde format) and for loading *real* chip layouts into the YOUTIAO
//! pipeline in place of the built-in generators.

use crate::chip::{Chip, ChipBuilder, QubitRole};
use crate::error::ChipError;
use crate::geometry::Position;
use crate::topology::TopologyKind;

/// One qubit of a [`ChipSpec`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct QubitSpec {
    /// Placement on the die, millimetres.
    pub x: f64,
    /// Placement on the die, millimetres.
    pub y: f64,
    /// Fabrication base frequency, GHz.
    pub base_frequency_ghz: f64,
    /// Error-correction role (`"generic"`, `"data"`, `"ancilla_x"`,
    /// `"ancilla_z"`).
    pub role: String,
}

/// A plain-data chip description.
///
/// # Example
///
/// ```
/// use youtiao_chip::spec::ChipSpec;
/// use youtiao_chip::topology;
///
/// let chip = topology::square_grid(2, 2);
/// let spec = ChipSpec::from_chip(&chip);
/// let back = spec.to_chip()?;
/// assert_eq!(back.num_qubits(), 4);
/// assert_eq!(back.num_couplers(), 4);
/// # Ok::<(), youtiao_chip::ChipError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChipSpec {
    /// Chip name.
    pub name: String,
    /// Qubits in id order.
    pub qubits: Vec<QubitSpec>,
    /// Couplers as `(qubit, qubit)` index pairs.
    pub couplers: Vec<(u32, u32)>,
}

impl ChipSpec {
    /// Extracts a spec from a built chip.
    pub fn from_chip(chip: &Chip) -> Self {
        ChipSpec {
            name: chip.name().to_string(),
            qubits: chip
                .qubits()
                .map(|q| QubitSpec {
                    x: q.position().x,
                    y: q.position().y,
                    base_frequency_ghz: q.base_frequency_ghz(),
                    role: role_name(q.role()).to_string(),
                })
                .collect(),
            couplers: chip
                .couplers()
                .map(|c| {
                    let (a, b) = c.endpoints();
                    (a.value(), b.value())
                })
                .collect(),
        }
    }

    /// Builds a validated [`Chip`] from the spec.
    ///
    /// Role strings are parsed **strictly**: an unrecognized role is a
    /// [`ChipError::UnknownRole`], so a typo in a hand-written (e.g.
    /// multi-die) spec surfaces instead of silently planning the qubit
    /// as [`QubitRole::Generic`]. The documented lenient fallback lives
    /// behind [`to_chip_lenient`](Self::to_chip_lenient).
    ///
    /// # Errors
    ///
    /// Propagates [`ChipError`] for empty specs, dangling coupler
    /// indices, self-couplings, duplicate couplers or unknown roles.
    pub fn to_chip(&self) -> Result<Chip, ChipError> {
        self.build_chip(false)
    }

    /// [`to_chip`](Self::to_chip) with the legacy lenient role
    /// handling: unrecognized role strings fall back to
    /// [`QubitRole::Generic`] instead of erroring.
    ///
    /// # Errors
    ///
    /// Propagates every [`ChipError`] except `UnknownRole`.
    pub fn to_chip_lenient(&self) -> Result<Chip, ChipError> {
        self.build_chip(true)
    }

    fn build_chip(&self, lenient: bool) -> Result<Chip, ChipError> {
        let mut b = ChipBuilder::new(self.name.clone(), TopologyKind::Custom);
        for q in &self.qubits {
            let role = match parse_role(&q.role) {
                Some(role) => role,
                None if lenient => QubitRole::Generic,
                None => return Err(ChipError::UnknownRole(q.role.clone())),
            };
            b = b.qubit_with_role(Position::new(q.x, q.y), role);
        }
        for &(a, z) in &self.couplers {
            b = b.coupler(a.into(), z.into());
        }
        b.build()
    }
}

fn role_name(role: QubitRole) -> &'static str {
    match role {
        QubitRole::Generic => "generic",
        QubitRole::Data => "data",
        QubitRole::AncillaX => "ancilla_x",
        QubitRole::AncillaZ => "ancilla_z",
    }
}

fn parse_role(s: &str) -> Option<QubitRole> {
    match s {
        "generic" => Some(QubitRole::Generic),
        "data" => Some(QubitRole::Data),
        "ancilla_x" => Some(QubitRole::AncillaX),
        "ancilla_z" => Some(QubitRole::AncillaZ),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    #[test]
    fn roundtrip_preserves_structure() {
        for chip in topology::paper_suite() {
            let spec = ChipSpec::from_chip(&chip);
            let back = spec.to_chip().unwrap();
            assert_eq!(back.num_qubits(), chip.num_qubits());
            assert_eq!(back.num_couplers(), chip.num_couplers());
            for (a, b) in chip.qubits().zip(back.qubits()) {
                assert_eq!(a.position(), b.position());
            }
            for (a, b) in chip.couplers().zip(back.couplers()) {
                assert_eq!(a.endpoints(), b.endpoints());
            }
        }
    }

    #[test]
    fn roundtrip_preserves_roles() {
        let code = crate::surface::SurfaceCode::rotated(3);
        let spec = ChipSpec::from_chip(code.chip());
        let back = spec.to_chip().unwrap();
        for (a, b) in code.chip().qubits().zip(back.qubits()) {
            assert_eq!(a.role(), b.role());
        }
    }

    #[test]
    fn invalid_spec_rejected() {
        let spec = ChipSpec {
            name: "bad".into(),
            qubits: vec![QubitSpec {
                x: 0.0,
                y: 0.0,
                base_frequency_ghz: 5.0,
                role: "generic".into(),
            }],
            couplers: vec![(0, 9)],
        };
        assert!(spec.to_chip().is_err());
        let empty = ChipSpec {
            name: "e".into(),
            qubits: vec![],
            couplers: vec![],
        };
        assert!(matches!(empty.to_chip(), Err(ChipError::Empty)));
    }

    #[test]
    fn unknown_role_falls_back_to_generic() {
        let spec = ChipSpec {
            name: "r".into(),
            qubits: vec![QubitSpec {
                x: 0.0,
                y: 0.0,
                base_frequency_ghz: 5.0,
                role: "mystery".into(),
            }],
            couplers: vec![],
        };
        // Strict mode (the default): a typo'd role is a structured error
        // naming the offending string.
        match spec.to_chip() {
            Err(ChipError::UnknownRole(role)) => assert_eq!(role, "mystery"),
            other => panic!("expected UnknownRole, got {other:?}"),
        }
        // The documented fallback only applies in explicit lenient mode.
        let chip = spec.to_chip_lenient().unwrap();
        assert_eq!(chip.qubit(0u32.into()).unwrap().role(), QubitRole::Generic);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn json_roundtrip() {
        // Grid coordinates are exactly representable, so the roundtrip is
        // bit-exact (serde_json's default float parsing is last-ULP lossy
        // on denormal-ish values without its `float_roundtrip` feature).
        let chip = topology::square_grid(2, 3);
        let spec = ChipSpec::from_chip(&chip);
        let json = serde_json::to_string(&spec).unwrap();
        let parsed: ChipSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.to_chip().unwrap().num_qubits(), chip.num_qubits());
    }
}
