//! Rotated surface-code chip layouts for the fault-tolerant case study
//! (§5.2, Table 1 of the paper).
//!
//! A distance-`d` rotated surface code uses `d²` data qubits and `d² − 1`
//! parity-check (ancilla) qubits, for `2d² − 1` qubits total — exactly the
//! `#XY line` column of Table 1 — and `4(d−1)² + 4(d−1)` data–ancilla
//! couplers, which together with the qubits reproduce the `#Z line` column.

use crate::chip::{Chip, ChipBuilder, QubitRole};
use crate::geometry::Position;
use crate::id::QubitId;
use crate::topology::{TopologyKind, DEFAULT_PITCH_MM};

/// Stabilizer type of a parity check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StabilizerKind {
    /// X-type (detects phase flips).
    X,
    /// Z-type (detects bit flips).
    Z,
}

/// One parity check: an ancilla qubit plus its CZ interaction schedule.
///
/// `schedule[t]` names the data qubit the ancilla interacts with in CZ time
/// step `t ∈ 0..4` of an error-correction cycle (`None` for weight-2
/// boundary checks in the steps they sit idle). The standard zig-zag
/// ordering is used so that within each time step every qubit participates
/// in at most one CZ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stabilizer {
    /// The ancilla (parity-check) qubit.
    pub ancilla: QubitId,
    /// X- or Z-type.
    pub kind: StabilizerKind,
    /// Data-qubit interaction schedule over the 4 CZ steps.
    pub schedule: [Option<QubitId>; 4],
}

impl Stabilizer {
    /// The stabilizer weight (number of data qubits it checks: 2 or 4).
    pub fn weight(&self) -> usize {
        self.schedule.iter().flatten().count()
    }

    /// Iterates over the data qubits this stabilizer checks.
    pub fn data_qubits(&self) -> impl Iterator<Item = QubitId> + '_ {
        self.schedule.iter().flatten().copied()
    }
}

/// A distance-`d` rotated surface-code patch: the chip plus the stabilizer
/// structure needed to generate error-correction cycle circuits.
///
/// # Example
///
/// ```
/// use youtiao_chip::surface::SurfaceCode;
///
/// let code = SurfaceCode::rotated(3);
/// assert_eq!(code.chip().num_qubits(), 17);     // 2d^2 - 1
/// assert_eq!(code.chip().num_couplers(), 24);   // 4(d-1)^2 + 4(d-1)
/// assert_eq!(code.distance(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SurfaceCode {
    chip: Chip,
    distance: usize,
    data: Vec<QubitId>,
    stabilizers: Vec<Stabilizer>,
}

impl SurfaceCode {
    /// Builds the rotated surface-code layout of odd code distance `d ≥ 3`.
    ///
    /// # Panics
    ///
    /// Panics if `d < 3` or `d` is even.
    pub fn rotated(d: usize) -> Self {
        assert!(d >= 3 && d % 2 == 1, "code distance must be odd and >= 3");
        let mut b = ChipBuilder::new(format!("surface-d{d}"), TopologyKind::SurfaceCode);

        // Data qubits at integer grid points (c, r), ids r*d + c.
        let mut data = Vec::with_capacity(d * d);
        for r in 0..d {
            for c in 0..d {
                b = b.qubit_with_role(
                    Position::new(c as f64 * DEFAULT_PITCH_MM, r as f64 * DEFAULT_PITCH_MM),
                    QubitRole::Data,
                );
                data.push(QubitId::from(r * d + c));
            }
        }
        let data_at = |r: i64, c: i64| -> Option<QubitId> {
            if r >= 0 && c >= 0 && (r as usize) < d && (c as usize) < d {
                Some(QubitId::from(r as usize * d + c as usize))
            } else {
                None
            }
        };

        // Plaquette inclusion rules for the rotated layout.
        let included = |pr: i64, pc: i64| -> bool {
            let dd = d as i64;
            let interior = (0..dd - 1).contains(&pr) && (0..dd - 1).contains(&pc);
            if interior {
                return true;
            }
            let in_span = |x: i64| (0..dd - 1).contains(&x);
            (pr == -1 && in_span(pc) && pc % 2 == 1)
                || (pr == dd - 1 && in_span(pc) && pc % 2 == 0)
                || (pc == -1 && in_span(pr) && pr % 2 == 0)
                || (pc == dd - 1 && in_span(pr) && pr % 2 == 1)
        };

        let mut plaquettes = Vec::new();
        for pr in -1..(d as i64) {
            for pc in -1..(d as i64) {
                if included(pr, pc) {
                    plaquettes.push((pr, pc));
                }
            }
        }

        // Ancilla qubits at plaquette centres.
        let mut stabilizers = Vec::with_capacity(plaquettes.len());
        for (next_id, &(pr, pc)) in (d * d..).zip(plaquettes.iter()) {
            let kind = if (pr + pc).rem_euclid(2) == 0 {
                StabilizerKind::X
            } else {
                StabilizerKind::Z
            };
            let role = match kind {
                StabilizerKind::X => QubitRole::AncillaX,
                StabilizerKind::Z => QubitRole::AncillaZ,
            };
            b = b.qubit_with_role(
                Position::new(
                    (pc as f64 + 0.5) * DEFAULT_PITCH_MM,
                    (pr as f64 + 0.5) * DEFAULT_PITCH_MM,
                ),
                role,
            );
            let ancilla = QubitId::from(next_id);

            // Corners: a=(pr,pc) b=(pr,pc+1) c=(pr+1,pc) d=(pr+1,pc+1).
            let ca = data_at(pr, pc);
            let cb = data_at(pr, pc + 1);
            let cc = data_at(pr + 1, pc);
            let cd = data_at(pr + 1, pc + 1);
            // Standard zig-zag schedules keep simultaneous CZs disjoint:
            // Z-type: N-shape (a, b, c, d); X-type: Z-shape (a, c, b, d).
            let schedule = match kind {
                StabilizerKind::Z => [ca, cb, cc, cd],
                StabilizerKind::X => [ca, cc, cb, cd],
            };
            for dq in schedule.iter().flatten() {
                b = b.coupler(ancilla, *dq);
            }
            stabilizers.push(Stabilizer {
                ancilla,
                kind,
                schedule,
            });
        }

        let chip = b.build().expect("surface layout is internally consistent");
        SurfaceCode {
            chip,
            distance: d,
            data,
            stabilizers,
        }
    }

    /// The underlying chip.
    pub fn chip(&self) -> &Chip {
        &self.chip
    }

    /// The code distance.
    pub fn distance(&self) -> usize {
        self.distance
    }

    /// The data qubits, in row-major order.
    pub fn data_qubits(&self) -> &[QubitId] {
        &self.data
    }

    /// The stabilizers (parity checks) of the patch.
    pub fn stabilizers(&self) -> &[Stabilizer] {
        &self.stabilizers
    }

    /// Ancilla qubits of the given stabilizer type.
    pub fn ancillas(&self, kind: StabilizerKind) -> Vec<QubitId> {
        self.stabilizers
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.ancilla)
            .collect()
    }

    /// Consumes the layout, returning the chip.
    pub fn into_chip(self) -> Chip {
        self.chip
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn table1_qubit_counts() {
        for d in [3usize, 5, 7, 9, 11] {
            let code = SurfaceCode::rotated(d);
            assert_eq!(code.chip().num_qubits(), 2 * d * d - 1, "qubits at d={d}");
            assert_eq!(
                code.chip().num_couplers(),
                4 * (d - 1) * (d - 1) + 4 * (d - 1),
                "couplers at d={d}"
            );
        }
    }

    #[test]
    fn table1_z_line_counts() {
        // #Z(Google) = qubits + couplers: 41, 129, 265, 449, 681.
        let expect = [41usize, 129, 265, 449, 681];
        for (d, want) in [3usize, 5, 7, 9, 11].into_iter().zip(expect) {
            let code = SurfaceCode::rotated(d);
            assert_eq!(code.chip().num_z_devices(), want, "z-lines at d={d}");
        }
    }

    #[test]
    fn stabilizer_counts_and_weights() {
        for d in [3usize, 5, 7] {
            let code = SurfaceCode::rotated(d);
            assert_eq!(code.stabilizers().len(), d * d - 1);
            let w4 = code
                .stabilizers()
                .iter()
                .filter(|s| s.weight() == 4)
                .count();
            let w2 = code
                .stabilizers()
                .iter()
                .filter(|s| s.weight() == 2)
                .count();
            assert_eq!(w4, (d - 1) * (d - 1));
            assert_eq!(w2, 2 * (d - 1));
        }
    }

    #[test]
    fn x_and_z_ancilla_split() {
        let code = SurfaceCode::rotated(3);
        let x = code.ancillas(StabilizerKind::X);
        let z = code.ancillas(StabilizerKind::Z);
        assert_eq!(x.len() + z.len(), 8);
        assert_eq!(x.len(), 4);
        assert_eq!(z.len(), 4);
    }

    #[test]
    fn schedule_steps_are_conflict_free() {
        // Within each CZ time step, every qubit (data or ancilla) must
        // participate in at most one interaction.
        for d in [3usize, 5] {
            let code = SurfaceCode::rotated(d);
            for t in 0..4 {
                let mut busy: HashSet<QubitId> = HashSet::new();
                for s in code.stabilizers() {
                    if let Some(dq) = s.schedule[t] {
                        assert!(busy.insert(s.ancilla), "ancilla reused at t={t} d={d}");
                        assert!(busy.insert(dq), "data qubit reused at t={t} d={d}");
                    }
                }
            }
        }
    }

    #[test]
    fn chip_is_connected_and_bipartite_roles() {
        let code = SurfaceCode::rotated(5);
        assert!(code.chip().is_connected());
        // Couplers only join data qubits to ancillas.
        for c in code.chip().couplers() {
            let (a, b) = c.endpoints();
            let ra = code.chip().qubit(a).unwrap().role();
            let rb = code.chip().qubit(b).unwrap().role();
            assert_ne!(ra.is_ancilla(), rb.is_ancilla());
        }
    }

    #[test]
    fn every_data_qubit_checked_by_both_types() {
        let code = SurfaceCode::rotated(5);
        for &dq in code.data_qubits() {
            let kinds: HashSet<_> = code
                .stabilizers()
                .iter()
                .filter(|s| s.data_qubits().any(|q| q == dq))
                .map(|s| s.kind)
                .collect();
            assert!(
                kinds.contains(&StabilizerKind::X),
                "data {dq} missing X check"
            );
            assert!(
                kinds.contains(&StabilizerKind::Z),
                "data {dq} missing Z check"
            );
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_distance_rejected() {
        let _ = SurfaceCode::rotated(4);
    }
}
