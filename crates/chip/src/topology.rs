//! Generators for the qubit arrangements evaluated in the paper.
//!
//! Table 2 of the paper evaluates five topologies. The concrete instances
//! used there are reconstructed here with matching qubit/coupler counts:
//!
//! | topology | qubits | couplers | generator |
//! |---|---|---|---|
//! | square (3×3) | 9 | 12 | [`square_grid`]`(3, 3)` |
//! | hexagon (2×2 cells) | 16 | 19 | [`hexagon_patch`]`(2, 2)` |
//! | heavy square (3×3) | 21 | 24 | [`heavy_square`]`(3, 3)` |
//! | heavy hexagon (1×2 cells) | 21 | 22 | [`heavy_hexagon`]`(1, 2)` |
//! | low density (3×6) | 18 | 18 | [`low_density`]`(3, 6)` |
//!
//! The 6×6 and 8×8 Xmon grids used for crosstalk-model fitting (§5.1) come
//! from [`square_grid`].

use crate::chip::{Chip, ChipBuilder};
use crate::geometry::Position;
use crate::id::QubitId;

/// Default qubit pitch (centre-to-centre spacing) in millimetres.
///
/// Derived from the §2.1 figures: a 0.65 mm transmon plus resonator keep-out
/// yields roughly a 1 mm pitch on published Xmon devices.
pub const DEFAULT_PITCH_MM: f64 = 1.0;

/// The topology family a chip was generated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum TopologyKind {
    /// Rectangular grid with nearest-neighbour couplers.
    Square,
    /// Square grid with an extra qubit on every edge.
    HeavySquare,
    /// Honeycomb (hexagonal) lattice patch.
    Hexagon,
    /// Honeycomb patch with an extra qubit on every edge.
    HeavyHexagon,
    /// Sparse, path-like arrangement with average degree ≈ 2.
    LowDensity,
    /// Rotated surface-code layout (see [`crate::surface`]).
    SurfaceCode,
    /// 1-D chain.
    Linear,
    /// Hand-built chip.
    #[default]
    Custom,
}

/// Builds a `rows × cols` square grid with nearest-neighbour couplers.
///
/// This is the paper's *square* topology and also the 6×6 / 36-qubit and
/// 8×8 / 64-qubit Xmon devices of §5.1.
///
/// # Panics
///
/// Panics if `rows == 0 || cols == 0`.
///
/// # Example
///
/// ```
/// let chip = youtiao_chip::topology::square_grid(3, 3);
/// assert_eq!(chip.num_qubits(), 9);
/// assert_eq!(chip.num_couplers(), 12);
/// ```
pub fn square_grid(rows: usize, cols: usize) -> Chip {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let mut b = ChipBuilder::new(format!("square-{rows}x{cols}"), TopologyKind::Square);
    for r in 0..rows {
        for c in 0..cols {
            b = b.qubit(Position::new(
                c as f64 * DEFAULT_PITCH_MM,
                r as f64 * DEFAULT_PITCH_MM,
            ));
        }
    }
    let at = |r: usize, c: usize| QubitId::from(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b = b.coupler(at(r, c), at(r, c + 1));
            }
            if r + 1 < rows {
                b = b.coupler(at(r, c), at(r + 1, c));
            }
        }
    }
    b.build()
        .expect("square grid generation is internally consistent")
}

/// Builds a 1-D chain of `n` qubits.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn linear(n: usize) -> Chip {
    assert!(n > 0, "chain length must be positive");
    let mut b = ChipBuilder::new(format!("linear-{n}"), TopologyKind::Linear);
    for i in 0..n {
        b = b.qubit(Position::new(i as f64 * DEFAULT_PITCH_MM, 0.0));
    }
    for i in 0..n.saturating_sub(1) {
        b = b.coupler(QubitId::from(i), QubitId::from(i + 1));
    }
    b.build()
        .expect("linear generation is internally consistent")
}

/// Builds a honeycomb patch of `hex_rows × hex_cols` hexagonal cells
/// (rhombus arrangement in axial coordinates).
///
/// Vertex/edge counts follow `V = 2(RC + R + C)`, `E = 3RC + 2R + 2C − 1`;
/// the paper's 16-qubit hexagon instance is `hexagon_patch(2, 2)`.
///
/// # Panics
///
/// Panics if either dimension is zero.
///
/// # Example
///
/// ```
/// let chip = youtiao_chip::topology::hexagon_patch(2, 2);
/// assert_eq!(chip.num_qubits(), 16);
/// assert_eq!(chip.num_couplers(), 19);
/// ```
pub fn hexagon_patch(hex_rows: usize, hex_cols: usize) -> Chip {
    let (positions, edges) = honeycomb_graph(hex_rows, hex_cols);
    let mut b = ChipBuilder::new(
        format!("hexagon-{hex_rows}x{hex_cols}"),
        TopologyKind::Hexagon,
    );
    for p in &positions {
        b = b.qubit(*p);
    }
    for &(u, v) in &edges {
        b = b.coupler(QubitId::from(u), QubitId::from(v));
    }
    b.build()
        .expect("hexagon generation is internally consistent")
}

/// Builds the heavy-square topology: a `rows × cols` grid with one extra
/// qubit inserted on every edge (IBM-style "heavy" lattice).
///
/// The paper's 21-qubit heavy-square instance is `heavy_square(3, 3)`.
///
/// # Panics
///
/// Panics if `rows == 0 || cols == 0`.
///
/// # Example
///
/// ```
/// let chip = youtiao_chip::topology::heavy_square(3, 3);
/// assert_eq!(chip.num_qubits(), 21);
/// assert_eq!(chip.num_couplers(), 24);
/// ```
pub fn heavy_square(rows: usize, cols: usize) -> Chip {
    let base = square_grid(rows, cols);
    heavied(
        &base,
        format!("heavy-square-{rows}x{cols}"),
        TopologyKind::HeavySquare,
    )
}

/// Builds the heavy-hexagon topology: a honeycomb patch with one extra
/// qubit on every edge.
///
/// The paper's 21-qubit heavy-hexagon instance is `heavy_hexagon(1, 2)`
/// (10 vertices + 11 edge qubits).
///
/// # Panics
///
/// Panics if either dimension is zero.
///
/// # Example
///
/// ```
/// let chip = youtiao_chip::topology::heavy_hexagon(1, 2);
/// assert_eq!(chip.num_qubits(), 21);
/// assert_eq!(chip.num_couplers(), 22);
/// ```
pub fn heavy_hexagon(hex_rows: usize, hex_cols: usize) -> Chip {
    let base = hexagon_patch(hex_rows, hex_cols);
    heavied(
        &base,
        format!("heavy-hexagon-{hex_rows}x{hex_cols}"),
        TopologyKind::HeavyHexagon,
    )
}

/// Builds the low-density topology: qubits on a `rows × cols` grid joined
/// by a boustrophedon (snake) path plus one central rung, giving exactly
/// `rows * cols` couplers and average degree ≈ 2.
///
/// The paper's 18-qubit low-density instance is `low_density(3, 6)`.
///
/// # Panics
///
/// Panics if `rows == 0 || cols < 2`.
///
/// # Example
///
/// ```
/// let chip = youtiao_chip::topology::low_density(3, 6);
/// assert_eq!(chip.num_qubits(), 18);
/// assert_eq!(chip.num_couplers(), 18);
/// ```
pub fn low_density(rows: usize, cols: usize) -> Chip {
    assert!(
        rows > 0 && cols >= 2,
        "low-density grid needs rows > 0, cols >= 2"
    );
    let mut b = ChipBuilder::new(
        format!("low-density-{rows}x{cols}"),
        TopologyKind::LowDensity,
    );
    // Spread qubits at 1.5× pitch to reflect the sparse placement the paper
    // depicts for this arrangement.
    let pitch = DEFAULT_PITCH_MM * 1.5;
    for r in 0..rows {
        for c in 0..cols {
            b = b.qubit(Position::new(c as f64 * pitch, r as f64 * pitch));
        }
    }
    let at = |r: usize, c: usize| QubitId::from(r * cols + c);
    // Snake path: row 0 left-to-right, row 1 right-to-left, ...
    for r in 0..rows {
        for c in 0..cols - 1 {
            b = b.coupler(at(r, c), at(r, c + 1));
        }
        if r + 1 < rows {
            let join_col = if r % 2 == 0 { cols - 1 } else { 0 };
            b = b.coupler(at(r, join_col), at(r + 1, join_col));
        }
    }
    // Snake uses rows*(cols-1) + (rows-1) edges; add central rungs until the
    // coupler count equals the qubit count (average degree exactly 2).
    let snake_edges = rows * (cols - 1) + (rows - 1);
    let want = rows * cols;
    let mut added = 0usize;
    'outer: for r in 0..rows.saturating_sub(1) {
        for c in 1..cols - 1 {
            if snake_edges + added >= want {
                break 'outer;
            }
            let join_col = if r % 2 == 0 { cols - 1 } else { 0 };
            if c == join_col {
                continue;
            }
            b = b.coupler(at(r, c), at(r + 1, c));
            added += 1;
        }
    }
    b.build()
        .expect("low-density generation is internally consistent")
}

/// Inserts an extra qubit on every coupler of `base`, replacing each
/// coupler with two series couplers.
fn heavied(base: &Chip, name: String, kind: TopologyKind) -> Chip {
    let mut b = ChipBuilder::new(name, kind);
    for q in base.qubits() {
        b = b.qubit(q.position());
    }
    let n = base.num_qubits();
    for (i, c) in base.couplers().enumerate() {
        let (a, z) = c.endpoints();
        let mid = c.position();
        b = b.qubit(mid);
        let mid_id = QubitId::from(n + i);
        b = b.coupler(a, mid_id).coupler(mid_id, z);
    }
    b.build()
        .expect("heavy generation is internally consistent")
}

/// Generates the honeycomb rhombus-patch graph as positions + edge list.
fn honeycomb_graph(rows: usize, cols: usize) -> (Vec<Position>, Vec<(usize, usize)>) {
    assert!(
        rows > 0 && cols > 0,
        "hexagon patch dimensions must be positive"
    );
    let side = DEFAULT_PITCH_MM / 2.0;
    let sqrt3 = 3f64.sqrt();
    let mut positions: Vec<Position> = Vec::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut index_of = std::collections::HashMap::new();
    let key = |p: Position| {
        (
            ((p.x / side) * 1e4).round() as i64,
            ((p.y / side) * 1e4).round() as i64,
        )
    };

    for r in 0..rows {
        for q in 0..cols {
            // pointy-top hexagon centre in axial coordinates (q, r)
            let cx = side * sqrt3 * (q as f64 + r as f64 / 2.0);
            let cy = side * 1.5 * r as f64;
            let mut corner_ids = [0usize; 6];
            for (k, slot) in corner_ids.iter_mut().enumerate() {
                let angle = std::f64::consts::PI / 180.0 * (60.0 * k as f64 + 30.0);
                let p = Position::new(cx + side * angle.cos(), cy + side * angle.sin());
                let id = *index_of.entry(key(p)).or_insert_with(|| {
                    positions.push(p);
                    positions.len() - 1
                });
                *slot = id;
            }
            for k in 0..6 {
                let (u, v) = (corner_ids[k], corner_ids[(k + 1) % 6]);
                let e = if u < v { (u, v) } else { (v, u) };
                if !edges.contains(&e) {
                    edges.push(e);
                }
            }
        }
    }
    (positions, edges)
}

/// Builds a Sycamore-style diagonal grid: qubits on the black squares of
/// a `rows × cols` checkerboard, each coupled to its four diagonal
/// neighbours (half the checkerboard cells host qubits, so Google's
/// 54-qubit device is `sycamore(12, 9)`).
///
/// # Panics
///
/// Panics if `rows == 0 || cols == 0`.
///
/// # Example
///
/// ```
/// let chip = youtiao_chip::topology::sycamore(12, 9);
/// assert_eq!(chip.num_qubits(), 54);
/// ```
pub fn sycamore(rows: usize, cols: usize) -> Chip {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let mut b = ChipBuilder::new(format!("sycamore-{rows}x{cols}"), TopologyKind::Square);
    // Checkerboard placement: cell (r, c) hosts a qubit when (r + c) is
    // even; index within the chip is dense.
    let mut index: Vec<Vec<Option<usize>>> = vec![vec![None; cols]; rows];
    let mut count = 0usize;
    for (r, row) in index.iter_mut().enumerate() {
        for (c, slot) in row.iter_mut().enumerate() {
            if (r + c) % 2 == 0 {
                b = b.qubit(Position::new(
                    c as f64 * DEFAULT_PITCH_MM,
                    r as f64 * DEFAULT_PITCH_MM,
                ));
                *slot = Some(count);
                count += 1;
            }
        }
    }
    for r in 0..rows {
        for c in 0..cols {
            let Some(q) = index[r][c] else { continue };
            for (dr, dc) in [(1isize, 1isize), (1, -1)] {
                let nr = r as isize + dr;
                let nc = c as isize + dc;
                if nr < 0 || nc < 0 || nr >= rows as isize || nc >= cols as isize {
                    continue;
                }
                if let Some(n) = index[nr as usize][nc as usize] {
                    b = b.coupler(QubitId::from(q), QubitId::from(n));
                }
            }
        }
    }
    b.build()
        .expect("sycamore generation is internally consistent")
}

/// Builds a ring of `n` qubits (each coupled to two neighbours).
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize) -> Chip {
    assert!(n >= 3, "ring needs at least 3 qubits");
    let mut b = ChipBuilder::new(format!("ring-{n}"), TopologyKind::LowDensity);
    let radius = DEFAULT_PITCH_MM * n as f64 / (2.0 * std::f64::consts::PI);
    for i in 0..n {
        let angle = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
        b = b.qubit(Position::new(radius * angle.cos(), radius * angle.sin()));
    }
    for i in 0..n {
        b = b.coupler(QubitId::from(i), QubitId::from((i + 1) % n));
    }
    b.build().expect("ring generation is internally consistent")
}

/// Builds an IBM Heron-class heavy-hexagon device of approximately
/// `target_qubits` qubits (the closest heavy-hexagon patch our generator
/// produces; 133 → a 135-qubit 4×5-cell patch).
///
/// # Panics
///
/// Panics if `target_qubits < 12` (smaller than one heavy hexagon).
pub fn ibm_heavy_hex(target_qubits: usize) -> Chip {
    assert!(
        target_qubits >= 12,
        "need at least one heavy hexagon (12 qubits)"
    );
    // Search small patch shapes for the closest qubit count.
    let mut best: Option<(usize, usize, usize)> = None;
    for r in 1..=12usize {
        for c in 1..=12usize {
            let v = 2 * (r * c + r + c);
            let e = 3 * r * c + 2 * r + 2 * c - 1;
            let q = v + e;
            let gap = q.abs_diff(target_qubits);
            if best.is_none_or(|(bg, _, _)| gap < bg) {
                best = Some((gap, r, c));
            }
        }
    }
    let (_, r, c) = best.expect("search space is non-empty");
    heavy_hexagon(r, c)
}

/// Returns the five Table-2 chip instances in the paper's column order:
/// square, hexagon, heavy square, heavy hexagon, low density.
pub fn paper_suite() -> Vec<Chip> {
    vec![
        square_grid(3, 3),
        hexagon_patch(2, 2),
        heavy_square(3, 3),
        heavy_hexagon(1, 2),
        low_density(3, 6),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_counts() {
        let chip = square_grid(3, 3);
        assert_eq!(chip.num_qubits(), 9);
        assert_eq!(chip.num_couplers(), 12);
        assert!(chip.is_connected());
        let big = square_grid(6, 6);
        assert_eq!(big.num_qubits(), 36);
        assert_eq!(big.num_couplers(), 60);
    }

    #[test]
    fn square_interior_degree_is_four() {
        let chip = square_grid(5, 5);
        // centre qubit of a 5x5 grid is index 12
        assert_eq!(chip.connectivity(QubitId::from(12usize)), 4);
        // corner
        assert_eq!(chip.connectivity(QubitId::from(0usize)), 2);
    }

    #[test]
    fn hexagon_counts_match_formula() {
        for (r, c) in [(1, 1), (1, 2), (2, 2), (2, 3), (3, 3)] {
            let chip = hexagon_patch(r, c);
            assert_eq!(chip.num_qubits(), 2 * (r * c + r + c), "V for {r}x{c}");
            assert_eq!(
                chip.num_couplers(),
                3 * r * c + 2 * r + 2 * c - 1,
                "E for {r}x{c}"
            );
            assert!(chip.is_connected());
        }
    }

    #[test]
    fn hexagon_degree_bounded_by_three() {
        let chip = hexagon_patch(2, 2);
        for q in chip.qubit_ids() {
            assert!(chip.connectivity(q) <= 3);
        }
    }

    #[test]
    fn heavy_square_counts() {
        let chip = heavy_square(3, 3);
        assert_eq!(chip.num_qubits(), 21);
        assert_eq!(chip.num_couplers(), 24);
        assert!(chip.is_connected());
    }

    #[test]
    fn heavy_hexagon_counts() {
        let chip = heavy_hexagon(1, 2);
        assert_eq!(chip.num_qubits(), 21);
        assert_eq!(chip.num_couplers(), 22);
        assert!(chip.is_connected());
    }

    #[test]
    fn heavy_edge_qubits_have_degree_two() {
        let base = square_grid(3, 3);
        let chip = heavy_square(3, 3);
        for q in chip.qubit_ids().skip(base.num_qubits()) {
            assert_eq!(chip.connectivity(q), 2);
        }
    }

    #[test]
    fn low_density_counts() {
        let chip = low_density(3, 6);
        assert_eq!(chip.num_qubits(), 18);
        assert_eq!(chip.num_couplers(), 18);
        assert!(chip.is_connected());
        let avg: f64 = chip
            .qubit_ids()
            .map(|q| chip.connectivity(q) as f64)
            .sum::<f64>()
            / chip.num_qubits() as f64;
        assert!((avg - 2.0).abs() < 1e-12);
    }

    #[test]
    fn linear_counts() {
        let chip = linear(8);
        assert_eq!(chip.num_qubits(), 8);
        assert_eq!(chip.num_couplers(), 7);
        assert!(chip.is_connected());
    }

    #[test]
    fn paper_suite_matches_table2_qubit_counts() {
        let suite = paper_suite();
        let qubits: Vec<_> = suite.iter().map(Chip::num_qubits).collect();
        assert_eq!(qubits, vec![9, 16, 21, 21, 18]);
        // #Z(Google) = qubits + couplers; reproduces the self-consistent
        // Table 2 row (see EXPERIMENTS.md on the square-column typo).
        let z: Vec<_> = suite.iter().map(Chip::num_z_devices).collect();
        assert_eq!(z, vec![21, 35, 45, 43, 36]);
    }

    #[test]
    fn sycamore_counts_and_degrees() {
        let chip = sycamore(12, 9);
        assert_eq!(chip.num_qubits(), 54);
        assert!(chip.is_connected());
        for q in chip.qubit_ids() {
            assert!(chip.connectivity(q) <= 4);
        }
        // Interior qubits of the diagonal grid have degree 4.
        let interior = chip
            .qubit_ids()
            .filter(|&q| chip.connectivity(q) == 4)
            .count();
        assert!(interior > 10);
    }

    #[test]
    fn sycamore_small_cases() {
        let one = sycamore(1, 1);
        assert_eq!(one.num_qubits(), 1);
        assert_eq!(one.num_couplers(), 0);
        let strip = sycamore(2, 2);
        assert_eq!(strip.num_qubits(), 2);
        assert_eq!(strip.num_couplers(), 1);
    }

    #[test]
    fn ring_counts() {
        let chip = ring(18);
        assert_eq!(chip.num_qubits(), 18);
        assert_eq!(chip.num_couplers(), 18);
        assert!(chip.is_connected());
        for q in chip.qubit_ids() {
            assert_eq!(chip.connectivity(q), 2);
        }
    }

    #[test]
    fn ibm_heavy_hex_close_to_target() {
        let chip = ibm_heavy_hex(133);
        assert!(
            chip.num_qubits().abs_diff(133) <= 5,
            "{}",
            chip.num_qubits()
        );
        assert!(chip.is_connected());
        let small = ibm_heavy_hex(12);
        assert_eq!(small.num_qubits(), 12);
    }

    #[test]
    fn generated_positions_are_distinct() {
        for chip in paper_suite() {
            let mut seen = std::collections::HashSet::new();
            for q in chip.qubits() {
                let p = q.position();
                let k = ((p.x * 1e6).round() as i64, (p.y * 1e6).round() as i64);
                assert!(seen.insert(k), "duplicate position in {}", chip.name());
            }
        }
    }
}
