//! Property-based tests over chip construction and distance metrics.

use proptest::prelude::*;
use youtiao_chip::distance::{equivalent_matrix, topological_distance, EquivalentWeights};
use youtiao_chip::surface::SurfaceCode;
use youtiao_chip::topology;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Grid generators produce connected chips with the expected counts
    /// for any dimensions.
    #[test]
    fn grids_are_connected_with_exact_counts(rows in 1usize..7, cols in 1usize..7) {
        let chip = topology::square_grid(rows, cols);
        prop_assert_eq!(chip.num_qubits(), rows * cols);
        prop_assert_eq!(chip.num_couplers(), rows * (cols - 1) + cols * (rows - 1));
        prop_assert!(chip.is_connected());
    }

    /// Topological distance is symmetric and bounded by the qubit count.
    #[test]
    fn topological_distance_symmetric(rows in 2usize..6, cols in 2usize..6, seed in 0u32..100) {
        let chip = topology::square_grid(rows, cols);
        let n = chip.num_qubits() as u32;
        let a = (seed % n).into();
        let b = ((seed / 7) % n).into();
        let dab = topological_distance(&chip, a, b).unwrap();
        let dba = topological_distance(&chip, b, a).unwrap();
        prop_assert_eq!(dab.hops(), dba.hops());
        prop_assert_eq!(dab.path_count(), dba.path_count());
        prop_assert!((dab.hops() as usize) < chip.num_qubits());
    }

    /// The equivalent-distance matrix is symmetric with a zero diagonal
    /// and strictly positive off-diagonal entries on connected chips.
    #[test]
    fn equivalent_matrix_is_well_formed(
        rows in 2usize..6,
        cols in 2usize..6,
        w in 0.01f64..0.99,
    ) {
        let chip = topology::square_grid(rows, cols);
        let weights = EquivalentWeights::new(w, 1.0 - w).unwrap();
        let m = equivalent_matrix(&chip, weights);
        for a in chip.qubit_ids() {
            prop_assert_eq!(m.get(a, a), 0.0);
            for b in chip.qubit_ids() {
                prop_assert_eq!(m.get(a, b), m.get(b, a));
                if a != b {
                    prop_assert!(m.get(a, b) > 0.0);
                }
            }
        }
    }

    /// Hexagon patches obey the closed-form vertex/edge counts.
    #[test]
    fn hexagon_patch_counts(r in 1usize..4, c in 1usize..4) {
        let chip = topology::hexagon_patch(r, c);
        prop_assert_eq!(chip.num_qubits(), 2 * (r * c + r + c));
        prop_assert_eq!(chip.num_couplers(), 3 * r * c + 2 * r + 2 * c - 1);
        for q in chip.qubit_ids() {
            prop_assert!(chip.connectivity(q) <= 3);
        }
    }

    /// Heavy variants add exactly one qubit per base coupler and double
    /// the coupler count.
    #[test]
    fn heavy_square_counts(rows in 2usize..5, cols in 2usize..5) {
        let base = topology::square_grid(rows, cols);
        let heavy = topology::heavy_square(rows, cols);
        prop_assert_eq!(heavy.num_qubits(), base.num_qubits() + base.num_couplers());
        prop_assert_eq!(heavy.num_couplers(), 2 * base.num_couplers());
    }

    /// Rotated surface codes always satisfy the Table-1 closed forms.
    #[test]
    fn surface_code_closed_forms(k in 1usize..6) {
        let d = 2 * k + 1;
        let code = SurfaceCode::rotated(d);
        prop_assert_eq!(code.chip().num_qubits(), 2 * d * d - 1);
        prop_assert_eq!(code.chip().num_couplers(), 4 * (d - 1) * (d - 1) + 4 * (d - 1));
        prop_assert_eq!(code.stabilizers().len(), d * d - 1);
        prop_assert!(code.chip().is_connected());
    }
}
