//! Benchmark circuit generators (§5.1 of the paper).
//!
//! The paper evaluates on five algorithms: Variational Quantum Classifier
//! (VQC), linear Ising model evolution (ISING), Deutsch–Jozsa (DJ),
//! Quantum Fourier Transform (QFT), and Quantum K-Nearest-Neighbours
//! (QKNN). All generators emit logical circuits in the device basis
//! (RX/RY/RZ/CZ plus H/X); multi-qubit primitives (CX, Toffoli, CSWAP,
//! controlled-phase) are decomposed on the spot.

use std::f64::consts::PI;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use youtiao_chip::QubitId;

use crate::circuit::Circuit;
use crate::gate::Gate;

/// The benchmark suite used throughout the paper's §5.4–§5.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Variational quantum classifier ansatz.
    Vqc,
    /// Trotterized linear (chain) Ising evolution.
    Ising,
    /// Deutsch–Jozsa with a balanced oracle.
    Dj,
    /// Quantum Fourier transform.
    Qft,
    /// Quantum k-nearest-neighbours (swap-test core).
    Qknn,
}

impl Benchmark {
    /// All five benchmarks in the paper's order.
    pub const ALL: [Benchmark; 5] = [
        Benchmark::Vqc,
        Benchmark::Ising,
        Benchmark::Dj,
        Benchmark::Qft,
        Benchmark::Qknn,
    ];

    /// The display name used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Vqc => "VQC",
            Benchmark::Ising => "ISING",
            Benchmark::Dj => "DJ",
            Benchmark::Qft => "QFT",
            Benchmark::Qknn => "QKNN",
        }
    }

    /// Generates the benchmark circuit at width `n` with default depth
    /// parameters.
    ///
    /// # Panics
    ///
    /// Panics if `n` is below the benchmark's minimum width (2 for most,
    /// 3 for QKNN).
    pub fn generate(self, n: usize) -> Circuit {
        match self {
            Benchmark::Vqc => vqc(n, 4),
            Benchmark::Ising => ising(n, 3),
            Benchmark::Dj => dj(n),
            Benchmark::Qft => qft(n),
            Benchmark::Qknn => qknn(n),
        }
    }
}

fn q(i: usize) -> QubitId {
    QubitId::from(i)
}

/// Appends `CX(control, target)` decomposed as `H(t) · CZ · H(t)`.
pub fn push_cx(c: &mut Circuit, control: QubitId, target: QubitId) {
    c.push1(Gate::H, target).expect("validated operand");
    c.push2(Gate::Cz, control, target)
        .expect("validated operands");
    c.push1(Gate::H, target).expect("validated operand");
}

/// Appends a controlled-phase `CP(theta)` decomposed into two CX and
/// virtual RZ rotations.
pub fn push_cp(c: &mut Circuit, control: QubitId, target: QubitId, theta: f64) {
    c.push1(Gate::Rz(theta / 2.0), control)
        .expect("validated operand");
    push_cx(c, control, target);
    c.push1(Gate::Rz(-theta / 2.0), target)
        .expect("validated operand");
    push_cx(c, control, target);
    c.push1(Gate::Rz(theta / 2.0), target)
        .expect("validated operand");
}

/// Appends a Toffoli gate in the standard 6-CX decomposition with T
/// rotations expressed as virtual RZ(±π/4).
pub fn push_toffoli(c: &mut Circuit, c0: QubitId, c1: QubitId, target: QubitId) {
    let t = PI / 4.0;
    c.push1(Gate::H, target).expect("validated operand");
    push_cx(c, c1, target);
    c.push1(Gate::Rz(-t), target).expect("validated operand");
    push_cx(c, c0, target);
    c.push1(Gate::Rz(t), target).expect("validated operand");
    push_cx(c, c1, target);
    c.push1(Gate::Rz(-t), target).expect("validated operand");
    push_cx(c, c0, target);
    c.push1(Gate::Rz(t), c1).expect("validated operand");
    c.push1(Gate::Rz(t), target).expect("validated operand");
    c.push1(Gate::H, target).expect("validated operand");
    push_cx(c, c0, c1);
    c.push1(Gate::Rz(t), c0).expect("validated operand");
    c.push1(Gate::Rz(-t), c1).expect("validated operand");
    push_cx(c, c0, c1);
}

/// Appends a controlled-SWAP (Fredkin) gate via CX + Toffoli + CX.
pub fn push_cswap(c: &mut Circuit, control: QubitId, a: QubitId, b: QubitId) {
    push_cx(c, b, a);
    push_toffoli(c, control, a, b);
    push_cx(c, b, a);
}

/// Hardware-efficient VQC ansatz: `layers` repetitions of per-qubit RY
/// rotations followed by a brickwork CZ entangler.
///
/// Highly parallelizable — the benchmark where the paper reports
/// YOUTIAO's largest depth advantage over local-cluster TDM (1.36×).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn vqc(n: usize, layers: usize) -> Circuit {
    assert!(n >= 2, "vqc needs at least 2 qubits");
    let mut c = Circuit::new(n);
    for layer in 0..layers {
        for i in 0..n {
            let theta = 0.37 + 0.61 * layer as f64 + 0.13 * i as f64;
            c.push1(Gate::Ry(theta % (2.0 * PI)), q(i))
                .expect("validated operand");
        }
        for i in (0..n - 1).step_by(2) {
            c.push2(Gate::Cz, q(i), q(i + 1))
                .expect("validated operands");
        }
        for i in (1..n - 1).step_by(2) {
            c.push2(Gate::Cz, q(i), q(i + 1))
                .expect("validated operands");
        }
    }
    for i in 0..n {
        c.push1(Gate::Measure, q(i)).expect("validated operand");
    }
    c
}

/// Trotterized transverse-field Ising chain: `steps` repetitions of ZZ
/// interactions along the chain plus a transverse RX field.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn ising(n: usize, steps: usize) -> Circuit {
    assert!(n >= 2, "ising needs at least 2 qubits");
    let mut c = Circuit::new(n);
    let dt = 0.1;
    for _ in 0..steps {
        // exp(-i J dt Z_i Z_{i+1}) = CX · RZ(2 J dt) · CX on each edge,
        // brickwork order for parallelism.
        for parity in 0..2 {
            for i in (parity..n - 1).step_by(2) {
                push_cx(&mut c, q(i), q(i + 1));
                c.push1(Gate::Rz(2.0 * dt), q(i + 1))
                    .expect("validated operand");
                push_cx(&mut c, q(i), q(i + 1));
            }
        }
        for i in 0..n {
            c.push1(Gate::Rx(2.0 * dt), q(i))
                .expect("validated operand");
        }
    }
    for i in 0..n {
        c.push1(Gate::Measure, q(i)).expect("validated operand");
    }
    c
}

/// Deutsch–Jozsa with a balanced oracle (parity of all inputs): `n − 1`
/// input qubits plus one ancilla.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn dj(n: usize) -> Circuit {
    assert!(n >= 2, "dj needs at least 2 qubits");
    let mut c = Circuit::new(n);
    let ancilla = q(n - 1);
    c.push1(Gate::X, ancilla).expect("validated operand");
    for i in 0..n {
        c.push1(Gate::H, q(i)).expect("validated operand");
    }
    // Balanced oracle: f(x) = x_0 XOR x_1 XOR ...
    for i in 0..n - 1 {
        push_cx(&mut c, q(i), ancilla);
    }
    for i in 0..n - 1 {
        c.push1(Gate::H, q(i)).expect("validated operand");
        c.push1(Gate::Measure, q(i)).expect("validated operand");
    }
    c
}

/// Quantum Fourier transform over `n` qubits (without the final qubit
/// reversal, as is standard for depth studies).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn qft(n: usize) -> Circuit {
    assert!(n >= 2, "qft needs at least 2 qubits");
    let mut c = Circuit::new(n);
    for i in 0..n {
        c.push1(Gate::H, q(i)).expect("validated operand");
        for j in (i + 1)..n {
            let theta = PI / (1 << (j - i)) as f64;
            push_cp(&mut c, q(j), q(i), theta);
        }
    }
    for i in 0..n {
        c.push1(Gate::Measure, q(i)).expect("validated operand");
    }
    c
}

/// Quantum k-nearest-neighbours distance kernel: a swap test between two
/// `(n − 1) / 2`-qubit registers with one ancilla.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn qknn(n: usize) -> Circuit {
    assert!(n >= 3, "qknn needs at least 3 qubits");
    let m = (n - 1) / 2;
    let mut c = Circuit::new(n);
    let ancilla = q(0);
    // Load simple feature states.
    for k in 0..m {
        c.push1(Gate::Ry(0.4 + 0.2 * k as f64), q(1 + k))
            .expect("validated operand");
        c.push1(Gate::Ry(0.9 - 0.1 * k as f64), q(1 + m + k))
            .expect("validated operand");
    }
    c.push1(Gate::H, ancilla).expect("validated operand");
    for k in 0..m {
        push_cswap(&mut c, ancilla, q(1 + k), q(1 + m + k));
    }
    c.push1(Gate::H, ancilla).expect("validated operand");
    c.push1(Gate::Measure, ancilla).expect("validated operand");
    c
}

/// `layers` layers of uniformly random RX/RY gates on every qubit —
/// the workload of the paper's FDM fidelity experiments (Figures 12–13).
pub fn random_xy_layers(n: usize, layers: usize, seed: u64) -> Circuit {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..layers {
        for i in 0..n {
            let theta = rng.gen_range(0.0..2.0 * PI);
            let gate = if rng.gen_bool(0.5) {
                Gate::Rx(theta)
            } else {
                Gate::Ry(theta)
            };
            c.push1(gate, q(i)).expect("validated operand");
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vqc_structure() {
        let c = vqc(6, 4);
        assert_eq!(c.num_qubits(), 6);
        // 5 CZ per layer (3 even + 2 odd) * 4 layers
        assert_eq!(c.two_qubit_count(), 20);
    }

    #[test]
    fn ising_structure() {
        let c = ising(5, 3);
        // 4 edges, each uses 2 CX = 2 CZ, 3 steps -> 24 CZ
        assert_eq!(c.two_qubit_count(), 24);
    }

    #[test]
    fn dj_structure() {
        let c = dj(8);
        // 7 CX to the ancilla
        assert_eq!(c.two_qubit_count(), 7);
        assert_eq!(c.num_qubits(), 8);
    }

    #[test]
    fn qft_structure() {
        let c = qft(5);
        // C(5,2) = 10 controlled-phases, 2 CZ each
        assert_eq!(c.two_qubit_count(), 20);
    }

    #[test]
    fn qknn_structure() {
        let c = qknn(7);
        // m = 3 cswaps, each = 2 CX + toffoli(6 CX) = 8 CX = 8 CZ
        assert_eq!(c.two_qubit_count(), 24);
        assert_eq!(c.num_qubits(), 7);
    }

    #[test]
    fn all_benchmarks_generate_at_standard_widths() {
        for b in Benchmark::ALL {
            let c = b.generate(9);
            assert!(!c.is_empty(), "{} is empty", b.name());
            assert!(c.two_qubit_count() > 0, "{} has no 2q gates", b.name());
        }
    }

    #[test]
    fn benchmark_names() {
        let names: Vec<_> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["VQC", "ISING", "DJ", "QFT", "QKNN"]);
    }

    #[test]
    fn random_layers_deterministic_per_seed() {
        let a = random_xy_layers(4, 10, 3);
        let b = random_xy_layers(4, 10, 3);
        assert_eq!(a, b);
        let c = random_xy_layers(4, 10, 4);
        assert_ne!(a, c);
        assert_eq!(a.len(), 40);
        assert_eq!(a.two_qubit_count(), 0);
    }

    #[test]
    fn decompositions_only_use_basis_gates() {
        for b in Benchmark::ALL {
            let c = b.generate(8);
            for op in c.operations() {
                match op.gate {
                    Gate::Rx(_)
                    | Gate::Ry(_)
                    | Gate::Rz(_)
                    | Gate::H
                    | Gate::X
                    | Gate::Cz
                    | Gate::Measure => {}
                }
            }
        }
    }

    #[test]
    fn cx_is_self_inverse_in_gate_count() {
        let mut c = Circuit::new(2);
        push_cx(&mut c, q(0), q(1));
        assert_eq!(c.two_qubit_count(), 1);
        assert_eq!(c.one_qubit_count(), 2);
    }
}
