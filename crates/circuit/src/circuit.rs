//! Gate-level circuit IR.

use std::fmt;

use youtiao_chip::QubitId;

use crate::error::CircuitError;
use crate::gate::Gate;

/// One gate application with its operands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Operation {
    /// The gate applied.
    pub gate: Gate,
    /// First operand.
    pub q0: QubitId,
    /// Second operand for two-qubit gates.
    pub q1: Option<QubitId>,
}

impl Operation {
    /// Builds a single-qubit operation.
    pub fn one(gate: Gate, q: QubitId) -> Self {
        debug_assert_eq!(gate.arity(), 1);
        Operation {
            gate,
            q0: q,
            q1: None,
        }
    }

    /// Builds a two-qubit operation.
    pub fn two(gate: Gate, a: QubitId, b: QubitId) -> Self {
        debug_assert_eq!(gate.arity(), 2);
        Operation {
            gate,
            q0: a,
            q1: Some(b),
        }
    }

    /// Iterates over the operand qubits.
    pub fn qubits(&self) -> impl Iterator<Item = QubitId> + '_ {
        std::iter::once(self.q0).chain(self.q1)
    }

    /// Returns `true` for two-qubit operations.
    pub fn is_two_qubit(&self) -> bool {
        self.q1.is_some()
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.q1 {
            Some(q1) => write!(f, "{} {} {}", self.gate, self.q0, q1),
            None => write!(f, "{} {}", self.gate, self.q0),
        }
    }
}

/// An ordered list of gate applications over a fixed qubit count.
///
/// Construction validates operand ranges eagerly, so a `Circuit` is always
/// internally consistent.
///
/// # Example
///
/// ```
/// use youtiao_circuit::{Circuit, Gate};
///
/// let mut c = Circuit::new(2);
/// c.push1(Gate::H, 0u32.into())?;
/// c.push2(Gate::Cz, 0u32.into(), 1u32.into())?;
/// assert_eq!(c.len(), 2);
/// assert_eq!(c.two_qubit_count(), 1);
/// # Ok::<(), youtiao_circuit::CircuitError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    ops: Vec<Operation>,
    /// Positions in `ops` before which a global barrier applies: all
    /// operations at index >= the position start after every earlier
    /// operation finishes.
    barriers: Vec<usize>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            ops: Vec::new(),
            barriers: Vec::new(),
        }
    }

    /// Inserts a global synchronization barrier: every later operation
    /// starts only after every earlier operation finishes. Used to align
    /// error-correction cycles the way hardware sequencers do.
    pub fn push_barrier(&mut self) {
        // Coalesce duplicate barriers at the same position.
        if self.barriers.last() != Some(&self.ops.len()) {
            self.barriers.push(self.ops.len());
        }
    }

    /// Barrier positions (indices into [`operations`](Circuit::operations)
    /// before which each barrier applies).
    pub fn barriers(&self) -> &[usize] {
        &self.barriers
    }

    /// The circuit width (number of qubits).
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` when the circuit has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations in program order.
    pub fn operations(&self) -> &[Operation] {
        &self.ops
    }

    /// Appends a single-qubit gate.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] for an out-of-range
    /// operand.
    ///
    /// # Panics
    ///
    /// Debug-panics when called with a two-qubit gate.
    pub fn push1(&mut self, gate: Gate, q: QubitId) -> Result<(), CircuitError> {
        self.check(q)?;
        self.ops.push(Operation::one(gate, q));
        Ok(())
    }

    /// Appends a two-qubit gate.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::QubitOutOfRange`] for out-of-range operands.
    /// * [`CircuitError::DuplicateOperand`] when `a == b`.
    ///
    /// # Panics
    ///
    /// Debug-panics when called with a single-qubit gate.
    pub fn push2(&mut self, gate: Gate, a: QubitId, b: QubitId) -> Result<(), CircuitError> {
        self.check(a)?;
        self.check(b)?;
        if a == b {
            return Err(CircuitError::DuplicateOperand(a));
        }
        self.ops.push(Operation::two(gate, a, b));
        Ok(())
    }

    /// Appends an already-built operation.
    ///
    /// # Errors
    ///
    /// Same as [`push1`](Circuit::push1) / [`push2`](Circuit::push2).
    pub fn push(&mut self, op: Operation) -> Result<(), CircuitError> {
        match op.q1 {
            Some(q1) => self.push2(op.gate, op.q0, q1),
            None => self.push1(op.gate, op.q0),
        }
    }

    /// Appends every operation of `other` (widths must be compatible),
    /// preserving its barriers.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] if `other` is wider.
    pub fn extend_from(&mut self, other: &Circuit) -> Result<(), CircuitError> {
        let offset = self.ops.len();
        for op in other.operations() {
            self.push(*op)?;
        }
        for &b in other.barriers() {
            let pos = offset + b;
            if self.barriers.last() != Some(&pos) {
                self.barriers.push(pos);
            }
        }
        Ok(())
    }

    /// Total two-qubit (CZ) gate count.
    pub fn two_qubit_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_two_qubit()).count()
    }

    /// Total single-qubit, non-virtual gate count.
    pub fn one_qubit_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| !o.is_two_qubit() && !o.gate.is_virtual())
            .count()
    }

    fn check(&self, q: QubitId) -> Result<(), CircuitError> {
        if q.index() >= self.num_qubits {
            return Err(CircuitError::QubitOutOfRange {
                qubit: q,
                width: self.num_qubits,
            });
        }
        Ok(())
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit on {} qubits, {} ops:",
            self.num_qubits,
            self.ops.len()
        )?;
        for op in &self.ops {
            writeln!(f, "  {op}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_counts() {
        let mut c = Circuit::new(3);
        c.push1(Gate::H, 0u32.into()).unwrap();
        c.push1(Gate::Rz(0.3), 1u32.into()).unwrap();
        c.push2(Gate::Cz, 0u32.into(), 1u32.into()).unwrap();
        c.push2(Gate::Cz, 1u32.into(), 2u32.into()).unwrap();
        assert_eq!(c.len(), 4);
        assert_eq!(c.two_qubit_count(), 2);
        assert_eq!(c.one_qubit_count(), 1); // RZ is virtual
        assert!(!c.is_empty());
    }

    #[test]
    fn out_of_range_rejected() {
        let mut c = Circuit::new(2);
        let err = c.push1(Gate::X, 5u32.into()).unwrap_err();
        assert!(matches!(err, CircuitError::QubitOutOfRange { .. }));
        let err = c.push2(Gate::Cz, 0u32.into(), 2u32.into()).unwrap_err();
        assert!(matches!(err, CircuitError::QubitOutOfRange { .. }));
    }

    #[test]
    fn duplicate_operand_rejected() {
        let mut c = Circuit::new(2);
        let err = c.push2(Gate::Cz, 1u32.into(), 1u32.into()).unwrap_err();
        assert_eq!(err, CircuitError::DuplicateOperand(QubitId::new(1)));
    }

    #[test]
    fn extend_from_checks_width() {
        let mut small = Circuit::new(2);
        let mut big = Circuit::new(4);
        big.push2(Gate::Cz, 2u32.into(), 3u32.into()).unwrap();
        assert!(small.extend_from(&big).is_err());
        let mut other = Circuit::new(2);
        other.push1(Gate::H, 1u32.into()).unwrap();
        small.extend_from(&other).unwrap();
        assert_eq!(small.len(), 1);
    }

    #[test]
    fn operation_qubits_iterates_operands() {
        let op = Operation::two(Gate::Cz, 0u32.into(), 1u32.into());
        let qs: Vec<_> = op.qubits().collect();
        assert_eq!(qs, vec![QubitId::new(0), QubitId::new(1)]);
        assert!(op.is_two_qubit());
        let op1 = Operation::one(Gate::X, 2u32.into());
        assert_eq!(op1.qubits().count(), 1);
        assert!(!op1.is_two_qubit());
    }

    #[test]
    fn display_contains_ops() {
        let mut c = Circuit::new(2);
        c.push2(Gate::Cz, 0u32.into(), 1u32.into()).unwrap();
        let s = c.to_string();
        assert!(s.contains("CZ q0 q1"));
    }
}
