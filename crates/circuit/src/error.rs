//! Error type shared by circuit construction, transpilation and
//! scheduling.

use std::error::Error;
use std::fmt;

use youtiao_chip::QubitId;

/// Errors produced by the circuit subsystem.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// An operation referenced a qubit index outside the circuit width.
    QubitOutOfRange {
        /// The offending qubit.
        qubit: QubitId,
        /// The circuit width.
        width: usize,
    },
    /// A two-qubit operation named the same qubit twice.
    DuplicateOperand(QubitId),
    /// The logical circuit is wider than the target chip.
    ChipTooSmall {
        /// Logical circuit width.
        needed: usize,
        /// Physical qubits available.
        available: usize,
    },
    /// No routing path exists between two qubits on the chip.
    NoRoute(QubitId, QubitId),
    /// A CZ gate requires two Z-controlled devices that share the same
    /// cryo-DEMUX, so its pulses can never be applied simultaneously
    /// (the paper's "unrealizable two-qubit gate", §3.2 case 2).
    UnrealizableGate {
        /// The two qubits of the CZ.
        qubits: (QubitId, QubitId),
    },
    /// A CZ gate acts on qubits that share no coupler (transpile first).
    MissingCoupler(QubitId, QubitId),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, width } => {
                write!(
                    f,
                    "qubit {qubit} is out of range for a {width}-qubit circuit"
                )
            }
            CircuitError::DuplicateOperand(q) => {
                write!(f, "two-qubit gate names {q} twice")
            }
            CircuitError::ChipTooSmall { needed, available } => write!(
                f,
                "circuit needs {needed} qubits but the chip provides {available}"
            ),
            CircuitError::NoRoute(a, b) => {
                write!(f, "no routing path between {a} and {b}")
            }
            CircuitError::UnrealizableGate { qubits: (a, b) } => write!(
                f,
                "cz between {a} and {b} is unrealizable: its devices share one demux"
            ),
            CircuitError::MissingCoupler(a, b) => {
                write!(
                    f,
                    "no coupler between {a} and {b}; transpile the circuit first"
                )
            }
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_well_formed() {
        let errs: Vec<CircuitError> = vec![
            CircuitError::QubitOutOfRange {
                qubit: QubitId::new(9),
                width: 4,
            },
            CircuitError::DuplicateOperand(QubitId::new(1)),
            CircuitError::ChipTooSmall {
                needed: 10,
                available: 9,
            },
            CircuitError::NoRoute(QubitId::new(0), QubitId::new(1)),
            CircuitError::UnrealizableGate {
                qubits: (QubitId::new(0), QubitId::new(1)),
            },
            CircuitError::MissingCoupler(QubitId::new(0), QubitId::new(5)),
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}
