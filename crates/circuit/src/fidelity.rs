//! First-order circuit fidelity estimation.
//!
//! Combines three multiplicative terms, mirroring the error model the
//! paper's Qiskit-based evaluation applies:
//!
//! 1. **gate errors** — calibrated per-gate infidelities (99.99% 1q,
//!    99.73% 2q on the paper's chips, §5.1);
//! 2. **decoherence** — every participating qubit relaxes over the
//!    schedule makespan with `T1 = 90 µs`;
//! 3. **crosstalk** — simultaneous gate pairs within a layer incur an
//!    error proportional to the fitted crosstalk between their operands,
//!    which is how noisy-non-parallel grouping affects circuit fidelity
//!    (§5.5).

use std::collections::HashSet;

use youtiao_chip::{Chip, QubitId};
use youtiao_noise::CrosstalkModel;

use crate::gate::Gate;
use crate::schedule::Schedule;

/// Calibrated error parameters for fidelity estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelityEstimator {
    /// Error per single-qubit gate.
    pub gate_error_1q: f64,
    /// Error per two-qubit (CZ) gate.
    pub gate_error_2q: f64,
    /// Error per dispersive readout.
    pub readout_error: f64,
    /// Qubit relaxation time in microseconds.
    pub t1_us: f64,
    /// Scale applied to model-predicted crosstalk when converting it to an
    /// error probability per simultaneous gate pair.
    pub crosstalk_scale: f64,
}

impl FidelityEstimator {
    /// The paper's calibration: 99.99% 1q, 99.73% 2q, T1 = 90 µs (§5.1),
    /// 1% readout error (typical for multiplexed readout at 99% fidelity).
    pub fn paper() -> Self {
        FidelityEstimator {
            gate_error_1q: 1e-4,
            gate_error_2q: 2.7e-3,
            readout_error: 1e-2,
            t1_us: 90.0,
            crosstalk_scale: 1.0,
        }
    }

    /// Estimates fidelity from gate errors and decoherence only.
    pub fn estimate(&self, schedule: &Schedule, chip: &Chip) -> FidelityReport {
        self.run(schedule, chip, None)
    }

    /// Estimates fidelity including crosstalk penalties between
    /// simultaneous gates, using the fitted `model` (an XY-probability
    /// model: predictions are interpreted as error probabilities).
    pub fn estimate_with_crosstalk(
        &self,
        schedule: &Schedule,
        chip: &Chip,
        model: &CrosstalkModel,
    ) -> FidelityReport {
        self.run(schedule, chip, Some(model))
    }

    fn run(
        &self,
        schedule: &Schedule,
        chip: &Chip,
        model: Option<&CrosstalkModel>,
    ) -> FidelityReport {
        let mut gate = 1.0f64;
        let mut crosstalk = 1.0f64;
        let mut touched: HashSet<QubitId> = HashSet::new();

        for layer in schedule.layers() {
            for op in layer.ops() {
                touched.extend(op.qubits());
                let err = match op.gate {
                    Gate::Cz => self.gate_error_2q,
                    Gate::Measure => self.readout_error,
                    Gate::Rz(_) => 0.0,
                    _ => self.gate_error_1q,
                };
                gate *= 1.0 - err;
            }
            if let Some(model) = model {
                let ops = layer.ops();
                for i in 0..ops.len() {
                    for j in (i + 1)..ops.len() {
                        let xt = pair_crosstalk(chip, model, &ops[i], &ops[j]);
                        crosstalk *= (1.0 - self.crosstalk_scale * xt).max(0.0);
                    }
                }
            }
        }

        let t_us = schedule.makespan_ns() / 1000.0;
        let per_qubit = (-t_us / self.t1_us).exp();
        let decoherence = per_qubit.powi(touched.len() as i32);

        FidelityReport {
            gate_fidelity: gate,
            decoherence_fidelity: decoherence,
            crosstalk_fidelity: crosstalk,
        }
    }
}

impl Default for FidelityEstimator {
    fn default() -> Self {
        FidelityEstimator::paper()
    }
}

/// Maximum model crosstalk between the operand qubits of two simultaneous
/// operations.
fn pair_crosstalk(
    chip: &Chip,
    model: &CrosstalkModel,
    a: &crate::circuit::Operation,
    b: &crate::circuit::Operation,
) -> f64 {
    let mut worst = 0.0f64;
    for qa in a.qubits() {
        for qb in b.qubits() {
            if qa != qb {
                worst = worst.max(model.predict_pair(chip, qa, qb));
            }
        }
    }
    worst
}

/// Break-down of an estimated circuit fidelity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelityReport {
    /// Product of per-gate fidelities.
    pub gate_fidelity: f64,
    /// Product of per-qubit T1 survival over the makespan.
    pub decoherence_fidelity: f64,
    /// Product of crosstalk survival between simultaneous gate pairs
    /// (1.0 when no model was supplied).
    pub crosstalk_fidelity: f64,
}

impl FidelityReport {
    /// The combined fidelity estimate.
    pub fn total(&self) -> f64 {
        self.gate_fidelity * self.decoherence_fidelity * self.crosstalk_fidelity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::schedule::schedule_asap;
    use youtiao_chip::topology;
    use youtiao_noise::forest::{RandomForest, RandomForestConfig};
    use youtiao_noise::CrosstalkModel;

    fn xy_model(amplitude: f64) -> CrosstalkModel {
        let xs: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| amplitude * (-x).exp()).collect();
        let forest = RandomForest::fit(&xs, &ys, RandomForestConfig::default());
        CrosstalkModel::from_parts(
            youtiao_chip::distance::EquivalentWeights::balanced(),
            forest,
            0.0,
        )
    }

    fn simple_schedule(chip_len: usize, czs: &[(u32, u32)]) -> (Schedule, youtiao_chip::Chip) {
        let chip = topology::linear(chip_len);
        let mut c = Circuit::new(chip_len);
        for &(a, b) in czs {
            c.push2(Gate::Cz, a.into(), b.into()).unwrap();
        }
        (schedule_asap(&c, &chip).unwrap(), chip)
    }

    #[test]
    fn empty_schedule_is_perfect() {
        let chip = topology::linear(2);
        let s = schedule_asap(&Circuit::new(2), &chip).unwrap();
        let r = FidelityEstimator::paper().estimate(&s, &chip);
        assert_eq!(r.total(), 1.0);
    }

    #[test]
    fn gate_errors_compound() {
        let (s, chip) = simple_schedule(4, &[(0, 1), (2, 3)]);
        let est = FidelityEstimator::paper();
        let r = est.estimate(&s, &chip);
        let expect = (1.0 - est.gate_error_2q).powi(2);
        assert!((r.gate_fidelity - expect).abs() < 1e-12);
        assert!(r.total() < 1.0);
        assert_eq!(r.crosstalk_fidelity, 1.0);
    }

    #[test]
    fn decoherence_scales_with_makespan_and_width() {
        let (short, chip) = simple_schedule(4, &[(0, 1)]);
        let (long, _) = simple_schedule(4, &[(0, 1), (1, 2), (2, 3)]);
        let est = FidelityEstimator::paper();
        let rs = est.estimate(&short, &chip);
        let rl = est.estimate(&long, &chip);
        assert!(rl.decoherence_fidelity < rs.decoherence_fidelity);
    }

    #[test]
    fn crosstalk_penalizes_simultaneous_gates() {
        // Two CZs in one layer on a 4-qubit chain.
        let (s, chip) = simple_schedule(4, &[(0, 1), (2, 3)]);
        assert_eq!(s.depth(), 1);
        let est = FidelityEstimator::paper();
        let strong = xy_model(0.05);
        let with = est.estimate_with_crosstalk(&s, &chip, &strong);
        let without = est.estimate(&s, &chip);
        assert!(with.total() < without.total());
        assert!(with.crosstalk_fidelity < 1.0);
    }

    #[test]
    fn serialized_gates_avoid_crosstalk_penalty() {
        // Same gates, but forced into different layers via shared qubit.
        let (s, chip) = simple_schedule(3, &[(0, 1), (1, 2)]);
        assert_eq!(s.depth(), 2);
        let est = FidelityEstimator::paper();
        let strong = xy_model(0.05);
        let r = est.estimate_with_crosstalk(&s, &chip, &strong);
        assert_eq!(r.crosstalk_fidelity, 1.0);
    }

    #[test]
    fn readout_error_applies_to_measurement() {
        let chip = topology::linear(1);
        let mut c = Circuit::new(1);
        c.push1(Gate::Measure, 0u32.into()).unwrap();
        let s = schedule_asap(&c, &chip).unwrap();
        let est = FidelityEstimator::paper();
        let r = est.estimate(&s, &chip);
        assert!((r.gate_fidelity - (1.0 - est.readout_error)).abs() < 1e-12);
    }

    #[test]
    fn report_total_is_product() {
        let r = FidelityReport {
            gate_fidelity: 0.9,
            decoherence_fidelity: 0.8,
            crosstalk_fidelity: 0.5,
        };
        assert!((r.total() - 0.36).abs() < 1e-12);
    }
}
