//! The device gate set.
//!
//! The paper's chips calibrate RX, RY, RZ and CZ as basis gates (§5.1).
//! H and X are kept as named gates for readability of the benchmark
//! generators; they lower to the same XY-drive hardware as RX/RY and share
//! their duration. RZ is a virtual frame update (zero duration, no pulse).

use std::fmt;

/// Duration of an XY-drive single-qubit gate, in nanoseconds.
pub const ONE_QUBIT_GATE_NS: f64 = 25.0;

/// Duration of a CZ two-qubit gate, in nanoseconds.
///
/// Chosen so that two CZ layers take ≈120 ns, matching the §3.2 example
/// ("five two-qubit gates … in just two layers in around 120 ns").
pub const TWO_QUBIT_GATE_NS: f64 = 60.0;

/// Duration of a dispersive readout, in nanoseconds.
pub const MEASUREMENT_NS: f64 = 600.0;

/// A gate in the device basis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Rotation about X by the given angle (radians). XY drive.
    Rx(f64),
    /// Rotation about Y by the given angle (radians). XY drive.
    Ry(f64),
    /// Virtual rotation about Z (frame update, zero duration).
    Rz(f64),
    /// Hadamard (one XY pulse on hardware).
    H,
    /// Pauli-X (π rotation, one XY pulse).
    X,
    /// Controlled-Z between two coupled qubits. Z pulses on both qubits
    /// and their coupler.
    Cz,
    /// Dispersive readout on one qubit via its readout resonator.
    Measure,
}

impl Gate {
    /// Number of qubits the gate acts on (1 or 2).
    pub fn arity(self) -> usize {
        match self {
            Gate::Cz => 2,
            _ => 1,
        }
    }

    /// Wall-clock duration of the gate in nanoseconds.
    pub fn duration_ns(self) -> f64 {
        match self {
            Gate::Rz(_) => 0.0,
            Gate::Rx(_) | Gate::Ry(_) | Gate::H | Gate::X => ONE_QUBIT_GATE_NS,
            Gate::Cz => TWO_QUBIT_GATE_NS,
            Gate::Measure => MEASUREMENT_NS,
        }
    }

    /// Returns `true` for gates realized by an XY-line microwave pulse.
    pub fn uses_xy_line(self) -> bool {
        matches!(self, Gate::Rx(_) | Gate::Ry(_) | Gate::H | Gate::X)
    }

    /// Returns `true` for gates that require Z (flux) pulses — on the
    /// paper's chips, only the CZ gate (both qubits and the coupler are
    /// flux-tuned to resonance).
    pub fn uses_z_line(self) -> bool {
        matches!(self, Gate::Cz)
    }

    /// Returns `true` for virtual gates that consume no hardware time.
    pub fn is_virtual(self) -> bool {
        matches!(self, Gate::Rz(_))
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::Rx(a) => write!(f, "RX({a:.3})"),
            Gate::Ry(a) => write!(f, "RY({a:.3})"),
            Gate::Rz(a) => write!(f, "RZ({a:.3})"),
            Gate::H => write!(f, "H"),
            Gate::X => write!(f, "X"),
            Gate::Cz => write!(f, "CZ"),
            Gate::Measure => write!(f, "M"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity() {
        assert_eq!(Gate::Cz.arity(), 2);
        assert_eq!(Gate::H.arity(), 1);
        assert_eq!(Gate::Rx(0.1).arity(), 1);
        assert_eq!(Gate::Measure.arity(), 1);
    }

    #[test]
    fn durations() {
        assert_eq!(Gate::Rz(1.0).duration_ns(), 0.0);
        assert_eq!(Gate::H.duration_ns(), ONE_QUBIT_GATE_NS);
        assert_eq!(Gate::Cz.duration_ns(), TWO_QUBIT_GATE_NS);
        assert!(Gate::Measure.duration_ns() > Gate::Cz.duration_ns());
        // Two CZ layers ≈ 120 ns, as in the paper's motivating example.
        assert!((2.0 * TWO_QUBIT_GATE_NS - 120.0).abs() < 1.0);
    }

    #[test]
    fn line_usage() {
        assert!(Gate::Rx(0.5).uses_xy_line());
        assert!(Gate::H.uses_xy_line());
        assert!(!Gate::Cz.uses_xy_line());
        assert!(Gate::Cz.uses_z_line());
        assert!(!Gate::Rz(0.2).uses_z_line());
        assert!(Gate::Rz(0.2).is_virtual());
        assert!(!Gate::X.is_virtual());
    }

    #[test]
    fn display() {
        assert_eq!(Gate::Cz.to_string(), "CZ");
        assert_eq!(Gate::Rx(0.5).to_string(), "RX(0.500)");
        assert_eq!(Gate::Measure.to_string(), "M");
    }
}
