//! Quantum circuit substrate for YOUTIAO.
//!
//! The paper evaluates its TDM grouping on five benchmark circuits (VQC,
//! ISING, DJ, QFT, QKNN — §5.1) and on surface-code error-correction
//! cycles (§5.2). This crate provides everything those experiments need:
//!
//! * [`gate`]/[`circuit`] — a gate-level IR over the device basis the
//!   paper's chips expose (RX, RY, RZ, CZ, plus H/X conveniences).
//! * [`benchmarks`] — generators for the five benchmark algorithms and
//!   random gate layers.
//! * [`transpile`] — greedy swap-insertion mapping of logical circuits
//!   onto a chip's coupling graph.
//! * [`schedule`] — ASAP layer scheduling, both unconstrained
//!   (Google-style dedicated wiring) and under shared-line TDM
//!   constraints (one device per cryo-DEMUX per time window).
//! * [`fidelity`] — first-order fidelity estimation combining calibrated
//!   gate errors, T1 decoherence over the schedule makespan, and
//!   crosstalk penalties between simultaneous two-qubit gates.
//! * [`surface_cycle`] — error-correction cycle circuits for
//!   [`SurfaceCode`](youtiao_chip::surface::SurfaceCode) layouts.
//!
//! # Example
//!
//! ```
//! use youtiao_chip::topology;
//! use youtiao_circuit::benchmarks;
//! use youtiao_circuit::schedule::schedule_asap;
//! use youtiao_circuit::transpile::transpile;
//!
//! let chip = topology::square_grid(3, 3);
//! let logical = benchmarks::qft(6);
//! let physical = transpile(&logical, &chip)?;
//! let schedule = schedule_asap(&physical, &chip)?;
//! assert!(schedule.two_qubit_depth() > 0);
//! # Ok::<(), youtiao_circuit::CircuitError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
pub mod circuit;
pub mod error;
pub mod fidelity;
pub mod gate;
pub mod schedule;
pub mod surface_cycle;
pub mod transpile;

pub use crate::circuit::{Circuit, Operation};
pub use crate::error::CircuitError;
pub use crate::fidelity::{FidelityEstimator, FidelityReport};
pub use crate::gate::Gate;
pub use crate::schedule::{
    schedule_asap, schedule_with_crosstalk_avoidance, schedule_with_tdm, schedule_with_tdm_strict,
    CzPulseModel, Schedule, SharedLineConstraint,
};
