//! ASAP layer scheduling, with and without TDM shared-line constraints.
//!
//! The paper's latency experiments (Figures 14–15, Table 1) compare the
//! circuit depth achieved by three wiring schemes:
//!
//! * **Google-style dedicated wiring** — only qubit exclusivity limits
//!   parallelism ([`schedule_asap`]);
//! * **TDM wiring** — Z-pulsed devices (both qubits and the coupler of
//!   every CZ) that share a cryo-DEMUX cannot be pulsed in the same time
//!   window, so gates serialize ([`schedule_with_tdm`]).
//!
//! A CZ whose *own* devices share a DEMUX can never execute — the paper's
//! "unrealizable two-qubit gate" (§3.2 case 2) — and is reported as
//! [`CircuitError::UnrealizableGate`].

use std::collections::HashSet;

use youtiao_chip::{Chip, DeviceId};

use crate::circuit::{Circuit, Operation};
use crate::error::CircuitError;

/// Maps each Z-controlled device to the cryo-DEMUX (TDM group) that owns
/// its line, or `None` for a dedicated line.
///
/// Implemented by `youtiao_core`'s wiring plans; any grouping source can
/// plug in.
pub trait SharedLineConstraint {
    /// The TDM group id of `device`, or `None` when the device has a
    /// dedicated Z line.
    fn group_of(&self, device: DeviceId) -> Option<usize>;
}

/// Which devices a CZ gate dynamically flux-pulses.
///
/// The paper describes both readings: §4.3 says "the qubits q1, q2, and
/// coupler c1 receive square pulses", while §3.1 observes that *qubit*
/// Z-line traffic "is relatively sparse in temporal" (the qubit lines
/// mostly hold DC bias). Operationally, coupler-activated CZs only need
/// the coupler pulse per gate, with qubit biases static — the default
/// here — while the conservative model pulses all three devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CzPulseModel {
    /// Only the coupler is pulsed per CZ; qubit Z lines hold bias.
    #[default]
    CouplerOnly,
    /// Both qubits and the coupler are pulsed per CZ.
    ThreeDevice,
    /// Every control pulse — XY drives and readout included — shares the
    /// TDM fabric. This is the unoptimized full-TDM baseline of the
    /// paper's motivation (§1, §3.2): a 1:4 DEMUX serializes even
    /// naturally parallel single-qubit layers and measurements.
    AllControl,
}

/// The trivial constraint: every device has a dedicated line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DedicatedLines;

impl SharedLineConstraint for DedicatedLines {
    fn group_of(&self, _device: DeviceId) -> Option<usize> {
        None
    }
}

/// One time window of the schedule: the operations executing in parallel.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Layer {
    ops: Vec<Operation>,
}

impl Layer {
    /// The operations in this layer.
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Wall-clock duration: the longest gate in the layer.
    pub fn duration_ns(&self) -> f64 {
        self.ops
            .iter()
            .map(|o| o.gate.duration_ns())
            .fold(0.0, f64::max)
    }

    /// Returns `true` when the layer contains at least one CZ.
    pub fn has_two_qubit(&self) -> bool {
        self.ops.iter().any(Operation::is_two_qubit)
    }
}

/// A layered execution schedule.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schedule {
    layers: Vec<Layer>,
    virtual_count: usize,
}

impl Schedule {
    /// The layers in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Total depth (number of layers).
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Two-qubit gate depth: the number of layers containing a CZ — the
    /// paper's primary latency metric.
    pub fn two_qubit_depth(&self) -> usize {
        self.layers.iter().filter(|l| l.has_two_qubit()).count()
    }

    /// Total wall-clock makespan in nanoseconds.
    pub fn makespan_ns(&self) -> f64 {
        self.layers.iter().map(Layer::duration_ns).sum()
    }

    /// Number of virtual (zero-duration RZ) operations elided from layers.
    pub fn virtual_count(&self) -> usize {
        self.virtual_count
    }

    /// Total scheduled (non-virtual) operation count.
    pub fn op_count(&self) -> usize {
        self.layers.iter().map(|l| l.ops.len()).sum()
    }
}

/// Schedules `circuit` on `chip` with dedicated control lines (the
/// Google-baseline latency reference).
///
/// # Errors
///
/// * [`CircuitError::QubitOutOfRange`] — an operand exceeds the chip.
/// * [`CircuitError::MissingCoupler`] — a CZ acts on uncoupled qubits.
pub fn schedule_asap(circuit: &Circuit, chip: &Chip) -> Result<Schedule, CircuitError> {
    schedule_with_tdm(circuit, chip, &DedicatedLines)
}

/// Schedules `circuit` on `chip` under TDM shared-line constraints with
/// the default coupler-only pulse model: within one layer, each
/// cryo-DEMUX group contributes at most one pulsed device.
///
/// # Errors
///
/// * [`CircuitError::QubitOutOfRange`] — an operand exceeds the chip.
/// * [`CircuitError::MissingCoupler`] — a CZ acts on uncoupled qubits.
/// * [`CircuitError::UnrealizableGate`] — a CZ's own devices share a
///   group.
pub fn schedule_with_tdm<C: SharedLineConstraint + ?Sized>(
    circuit: &Circuit,
    chip: &Chip,
    constraint: &C,
) -> Result<Schedule, CircuitError> {
    schedule_with_tdm_pulse(circuit, chip, constraint, CzPulseModel::CouplerOnly)
}

/// Like [`schedule_with_tdm`] with the conservative three-device pulse
/// model (both qubits and the coupler pulsed per CZ) — appropriate for
/// workloads such as surface-code cycles where every device is pulsed in
/// every period.
///
/// # Errors
///
/// Same as [`schedule_with_tdm`].
pub fn schedule_with_tdm_strict<C: SharedLineConstraint + ?Sized>(
    circuit: &Circuit,
    chip: &Chip,
    constraint: &C,
) -> Result<Schedule, CircuitError> {
    schedule_with_tdm_pulse(circuit, chip, constraint, CzPulseModel::ThreeDevice)
}

/// Schedules `circuit` under TDM constraints with an explicit CZ pulse
/// model.
///
/// # Errors
///
/// Same as [`schedule_with_tdm`].
pub fn schedule_with_tdm_pulse<C: SharedLineConstraint + ?Sized>(
    circuit: &Circuit,
    chip: &Chip,
    constraint: &C,
    pulse_model: CzPulseModel,
) -> Result<Schedule, CircuitError> {
    schedule_full(circuit, chip, constraint, pulse_model, None)
}

/// Schedules `circuit` under TDM constraints *and* crosstalk avoidance:
/// two CZ gates whose operand qubits crosstalk above `threshold`
/// (according to the symmetric `xtalk` matrix) never share a layer — the
/// schedule-level counterpart of §4.3's noisy non-parallelism.
///
/// # Errors
///
/// Same as [`schedule_with_tdm`].
///
/// # Panics
///
/// Panics if the matrix dimension mismatches the chip.
pub fn schedule_with_crosstalk_avoidance<C: SharedLineConstraint + ?Sized>(
    circuit: &Circuit,
    chip: &Chip,
    constraint: &C,
    pulse_model: CzPulseModel,
    xtalk: &youtiao_chip::distance::DistanceMatrix,
    threshold: f64,
) -> Result<Schedule, CircuitError> {
    assert_eq!(
        xtalk.len(),
        chip.num_qubits(),
        "crosstalk matrix size mismatch"
    );
    schedule_full(
        circuit,
        chip,
        constraint,
        pulse_model,
        Some((xtalk, threshold)),
    )
}

fn schedule_full<C: SharedLineConstraint + ?Sized>(
    circuit: &Circuit,
    chip: &Chip,
    constraint: &C,
    pulse_model: CzPulseModel,
    avoidance: Option<(&youtiao_chip::distance::DistanceMatrix, f64)>,
) -> Result<Schedule, CircuitError> {
    let n = chip.num_qubits();
    let mut qubit_ready = vec![0usize; n];
    let mut layers: Vec<Layer> = Vec::new();
    // Per-layer occupancy: qubits in use, and TDM groups in use.
    let mut layer_qubits: Vec<HashSet<usize>> = Vec::new();
    let mut layer_groups: Vec<HashSet<usize>> = Vec::new();
    // Qubits of CZ gates per layer, for crosstalk avoidance.
    let mut layer_cz_qubits: Vec<Vec<youtiao_chip::QubitId>> = Vec::new();
    let mut virtual_count = 0usize;
    // Global barriers: operations at index >= a barrier position start no
    // earlier than the layer count reached when the barrier is crossed.
    let mut floor = 0usize;
    let mut barrier_iter = circuit.barriers().iter().copied().peekable();

    for (idx, op) in circuit.operations().iter().enumerate() {
        while barrier_iter.peek() == Some(&idx) {
            barrier_iter.next();
            floor = layers.len();
        }
        for q in op.qubits() {
            if q.index() >= n {
                return Err(CircuitError::QubitOutOfRange { qubit: q, width: n });
            }
        }
        if op.gate.is_virtual() {
            virtual_count += 1;
            continue;
        }

        // Z-pulsed devices of this operation, with their TDM groups.
        let mut groups: Vec<usize> = Vec::new();
        if pulse_model == CzPulseModel::AllControl && !op.gate.uses_z_line() {
            if let Some(g) = constraint.group_of(DeviceId::Qubit(op.q0)) {
                groups.push(g);
            }
        }
        if op.gate.uses_z_line() {
            let q1 = op.q1.expect("z-line gates are two-qubit");
            let coupler = chip
                .coupler_between(op.q0, q1)
                .ok_or(CircuitError::MissingCoupler(op.q0, q1))?;
            let all = [
                DeviceId::Qubit(op.q0),
                DeviceId::Qubit(q1),
                DeviceId::Coupler(coupler),
            ];
            let devices = match pulse_model {
                CzPulseModel::CouplerOnly => &all[2..],
                CzPulseModel::ThreeDevice | CzPulseModel::AllControl => &all[..],
            };
            for &d in devices {
                if let Some(g) = constraint.group_of(d) {
                    if groups.contains(&g) {
                        return Err(CircuitError::UnrealizableGate {
                            qubits: (op.q0, q1),
                        });
                    }
                    groups.push(g);
                }
            }
        }

        let earliest = op
            .qubits()
            .map(|q| qubit_ready[q.index()])
            .max()
            .unwrap_or(0)
            .max(floor);

        // Find the first layer >= earliest with no qubit or group clash.
        let mut target = earliest;
        loop {
            if target >= layers.len() {
                layers.push(Layer::default());
                layer_qubits.push(HashSet::new());
                layer_groups.push(HashSet::new());
                layer_cz_qubits.push(Vec::new());
            }
            let qubit_clash = op
                .qubits()
                .any(|q| layer_qubits[target].contains(&q.index()));
            let group_clash = groups.iter().any(|g| layer_groups[target].contains(g));
            let noisy_clash = match (&avoidance, op.gate.uses_z_line()) {
                (Some((xtalk, threshold)), true) => op.qubits().any(|a| {
                    layer_cz_qubits[target]
                        .iter()
                        .any(|&b| a != b && xtalk.get(a, b) >= *threshold)
                }),
                _ => false,
            };
            if !qubit_clash && !group_clash && !noisy_clash {
                break;
            }
            target += 1;
        }

        for q in op.qubits() {
            layer_qubits[target].insert(q.index());
            qubit_ready[q.index()] = target + 1;
        }
        for g in &groups {
            layer_groups[target].insert(*g);
        }
        if op.gate.uses_z_line() {
            layer_cz_qubits[target].extend(op.qubits());
        }
        layers[target].ops.push(*op);
    }

    Ok(Schedule {
        layers,
        virtual_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;
    use crate::gate::Gate;
    use crate::transpile::transpile;
    use youtiao_chip::topology;
    use youtiao_chip::QubitId;

    /// A constraint defined by an explicit device -> group table.
    struct TableConstraint(Vec<(DeviceId, usize)>);

    impl SharedLineConstraint for TableConstraint {
        fn group_of(&self, device: DeviceId) -> Option<usize> {
            self.0.iter().find(|(d, _)| *d == device).map(|(_, g)| *g)
        }
    }

    fn cz_pair_circuit(pairs: &[(u32, u32)], width: usize) -> Circuit {
        let mut c = Circuit::new(width);
        for &(a, b) in pairs {
            c.push2(Gate::Cz, a.into(), b.into()).unwrap();
        }
        c
    }

    #[test]
    fn independent_gates_share_a_layer() {
        let chip = topology::linear(4);
        let c = cz_pair_circuit(&[(0, 1), (2, 3)], 4);
        let s = schedule_asap(&c, &chip).unwrap();
        assert_eq!(s.depth(), 1);
        assert_eq!(s.two_qubit_depth(), 1);
        assert_eq!(s.op_count(), 2);
    }

    #[test]
    fn overlapping_gates_serialize() {
        let chip = topology::linear(3);
        let c = cz_pair_circuit(&[(0, 1), (1, 2)], 3);
        let s = schedule_asap(&c, &chip).unwrap();
        assert_eq!(s.depth(), 2);
    }

    #[test]
    fn virtual_gates_cost_nothing() {
        let chip = topology::linear(2);
        let mut c = Circuit::new(2);
        c.push1(Gate::Rz(0.5), 0u32.into()).unwrap();
        c.push1(Gate::Rz(0.2), 0u32.into()).unwrap();
        c.push2(Gate::Cz, 0u32.into(), 1u32.into()).unwrap();
        let s = schedule_asap(&c, &chip).unwrap();
        assert_eq!(s.depth(), 1);
        assert_eq!(s.virtual_count(), 2);
    }

    #[test]
    fn makespan_accumulates_layer_maxima() {
        let chip = topology::linear(2);
        let mut c = Circuit::new(2);
        c.push1(Gate::H, 0u32.into()).unwrap();
        c.push2(Gate::Cz, 0u32.into(), 1u32.into()).unwrap();
        let s = schedule_asap(&c, &chip).unwrap();
        assert_eq!(s.depth(), 2);
        assert!((s.makespan_ns() - (25.0 + 60.0)).abs() < 1e-9);
    }

    #[test]
    fn tdm_group_serializes_parallel_gates() {
        let chip = topology::linear(4);
        // Two disjoint CZs, but their couplers share a DEMUX.
        let c0 = chip.coupler_between(0u32.into(), 1u32.into()).unwrap();
        let c2 = chip.coupler_between(2u32.into(), 3u32.into()).unwrap();
        let table = TableConstraint(vec![(DeviceId::Coupler(c0), 7), (DeviceId::Coupler(c2), 7)]);
        let c = cz_pair_circuit(&[(0, 1), (2, 3)], 4);
        let s = schedule_with_tdm(&c, &chip, &table).unwrap();
        assert_eq!(s.depth(), 2, "shared DEMUX must serialize");
    }

    #[test]
    fn unrealizable_gate_detected() {
        let chip = topology::linear(2);
        // Both qubits of the CZ on the same DEMUX: can never fire.
        let table = TableConstraint(vec![
            (DeviceId::Qubit(QubitId::new(0)), 1),
            (DeviceId::Qubit(QubitId::new(1)), 1),
        ]);
        let c = cz_pair_circuit(&[(0, 1)], 2);
        let err = schedule_with_tdm_strict(&c, &chip, &table).unwrap_err();
        assert!(matches!(err, CircuitError::UnrealizableGate { .. }));
        // Under the coupler-only pulse model the gate schedules (qubit
        // lines only hold bias).
        assert!(schedule_with_tdm(&c, &chip, &table).is_ok());
    }

    #[test]
    fn one_qubit_gates_ignore_tdm_groups() {
        let chip = topology::linear(2);
        let table = TableConstraint(vec![
            (DeviceId::Qubit(QubitId::new(0)), 1),
            (DeviceId::Qubit(QubitId::new(1)), 1),
        ]);
        let mut c = Circuit::new(2);
        c.push1(Gate::X, 0u32.into()).unwrap();
        c.push1(Gate::X, 1u32.into()).unwrap();
        // XY drives are FDM-controlled; same-DEMUX Z grouping is irrelevant.
        let s = schedule_with_tdm(&c, &chip, &table).unwrap();
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn missing_coupler_reported() {
        let chip = topology::linear(3);
        let c = cz_pair_circuit(&[(0, 2)], 3);
        let err = schedule_asap(&c, &chip).unwrap_err();
        assert!(matches!(err, CircuitError::MissingCoupler(_, _)));
    }

    #[test]
    fn qubit_out_of_range_reported() {
        let chip = topology::linear(2);
        let c = cz_pair_circuit(&[(0, 1)], 8);
        let mut c2 = c.clone();
        c2.push1(Gate::X, 7u32.into()).unwrap();
        let err = schedule_asap(&c2, &chip).unwrap_err();
        assert!(matches!(err, CircuitError::QubitOutOfRange { .. }));
    }

    #[test]
    fn benchmark_depth_ordering_under_tdm() {
        // TDM with all couplers in one group must not reduce depth.
        let chip = topology::square_grid(3, 3);
        let logical = benchmarks::vqc(9, 3);
        let physical = transpile(&logical, &chip).unwrap();
        let baseline = schedule_asap(&physical, &chip).unwrap();
        let table = TableConstraint(
            chip.coupler_ids()
                .map(|c| (DeviceId::Coupler(c), 0))
                .collect(),
        );
        let constrained = schedule_with_tdm(&physical, &chip, &table).unwrap();
        assert!(constrained.two_qubit_depth() >= baseline.two_qubit_depth());
        assert!(constrained.makespan_ns() >= baseline.makespan_ns());
    }

    #[test]
    fn crosstalk_avoidance_serializes_noisy_pairs() {
        use youtiao_chip::distance::DistanceMatrix;
        let chip = topology::linear(4);
        let c = cz_pair_circuit(&[(0, 1), (2, 3)], 4);
        // Without avoidance the two disjoint CZs share a layer.
        assert_eq!(schedule_asap(&c, &chip).unwrap().depth(), 1);
        // Declare q1-q2 as a high-crosstalk pair: the gates must split.
        let mut xtalk = DistanceMatrix::zeros(4);
        xtalk.set(1u32.into(), 2u32.into(), 0.5);
        let s = schedule_with_crosstalk_avoidance(
            &c,
            &chip,
            &DedicatedLines,
            CzPulseModel::CouplerOnly,
            &xtalk,
            0.1,
        )
        .unwrap();
        assert_eq!(s.depth(), 2, "noisy pair must serialize");
        // A higher threshold tolerates the pair.
        let s2 = schedule_with_crosstalk_avoidance(
            &c,
            &chip,
            &DedicatedLines,
            CzPulseModel::CouplerOnly,
            &xtalk,
            0.9,
        )
        .unwrap();
        assert_eq!(s2.depth(), 1);
    }

    #[test]
    fn crosstalk_avoidance_ignores_one_qubit_gates() {
        use youtiao_chip::distance::DistanceMatrix;
        let chip = topology::linear(2);
        let mut c = Circuit::new(2);
        c.push1(Gate::X, 0u32.into()).unwrap();
        c.push1(Gate::X, 1u32.into()).unwrap();
        let mut xtalk = DistanceMatrix::zeros(2);
        xtalk.set(0u32.into(), 1u32.into(), 1.0);
        let s = schedule_with_crosstalk_avoidance(
            &c,
            &chip,
            &DedicatedLines,
            CzPulseModel::CouplerOnly,
            &xtalk,
            0.1,
        )
        .unwrap();
        // XY drives are FDM-isolated; only CZ pairs are constrained.
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn op_counts_preserved() {
        let chip = topology::square_grid(3, 3);
        let logical = benchmarks::qft(9);
        let physical = transpile(&logical, &chip).unwrap();
        let s = schedule_asap(&physical, &chip).unwrap();
        let non_virtual = physical
            .operations()
            .iter()
            .filter(|o| !o.gate.is_virtual())
            .count();
        assert_eq!(s.op_count(), non_virtual);
        assert_eq!(s.virtual_count(), physical.len() - non_virtual);
    }
}
