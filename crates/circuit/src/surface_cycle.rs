//! Error-correction cycle circuits for surface-code layouts (§5.2).
//!
//! One cycle follows the standard hardware sequence (Figure 11 (b) of the
//! paper, after Google's surface-code experiments): Hadamards on all
//! parity-check qubits, four CZ steps following the stabilizer zig-zag
//! schedule, closing Hadamards, and ancilla readout. Under dedicated
//! wiring the cycle's two-qubit depth is exactly 4; TDM wiring may stretch
//! it, which is what Table 1's depth column quantifies.

use youtiao_chip::surface::SurfaceCode;

use crate::circuit::Circuit;
use crate::error::CircuitError;
use crate::gate::Gate;

/// Builds the circuit for `cycles` consecutive error-correction cycles on
/// `code`.
///
/// # Errors
///
/// Propagates [`CircuitError`] if the layout and circuit disagree (cannot
/// happen for layouts produced by [`SurfaceCode::rotated`]).
pub fn cycles_circuit(code: &SurfaceCode, cycles: usize) -> Result<Circuit, CircuitError> {
    let mut c = Circuit::new(code.chip().num_qubits());
    for cycle in 0..cycles {
        if cycle > 0 {
            // Hardware sequencers align cycles globally.
            c.push_barrier();
        }
        append_cycle(code, &mut c)?;
    }
    Ok(c)
}

/// Builds a single error-correction cycle circuit on `code`.
///
/// # Errors
///
/// Propagates [`CircuitError`] if the layout and circuit disagree.
pub fn cycle_circuit(code: &SurfaceCode) -> Result<Circuit, CircuitError> {
    cycles_circuit(code, 1)
}

/// Per-device activity masks over the 4 CZ steps of an error-correction
/// cycle: bit `t` is set when the device is flux-pulsed in step `t`.
///
/// This is the workload profile YOUTIAO's activity-aware TDM grouping
/// consumes for the fault-tolerant case study (§5.2): couplers are busy
/// in exactly one step, data qubits in the steps of their adjacent
/// checks, ancillas in every step of their weight.
pub fn cycle_activity(
    code: &SurfaceCode,
) -> std::collections::HashMap<youtiao_chip::DeviceId, u32> {
    use youtiao_chip::DeviceId;
    let mut masks: std::collections::HashMap<DeviceId, u32> = std::collections::HashMap::new();
    for s in code.stabilizers() {
        for (t, slot) in s.schedule.iter().enumerate() {
            if let Some(dq) = slot {
                let bit = 1u32 << t;
                *masks.entry(DeviceId::Qubit(s.ancilla)).or_insert(0) |= bit;
                *masks.entry(DeviceId::Qubit(*dq)).or_insert(0) |= bit;
                if let Some(c) = code.chip().coupler_between(s.ancilla, *dq) {
                    *masks.entry(DeviceId::Coupler(c)).or_insert(0) |= bit;
                }
            }
        }
    }
    masks
}

fn append_cycle(code: &SurfaceCode, c: &mut Circuit) -> Result<(), CircuitError> {
    for s in code.stabilizers() {
        c.push1(Gate::H, s.ancilla)?;
    }
    for t in 0..4 {
        for s in code.stabilizers() {
            if let Some(dq) = s.schedule[t] {
                c.push2(Gate::Cz, s.ancilla, dq)?;
            }
        }
    }
    for s in code.stabilizers() {
        c.push1(Gate::H, s.ancilla)?;
        c.push1(Gate::Measure, s.ancilla)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::schedule_asap;

    #[test]
    fn cycle_gate_counts() {
        let code = SurfaceCode::rotated(3);
        let c = cycle_circuit(&code).unwrap();
        // CZ count = total stabilizer weight = coupler count = 24 at d=3.
        assert_eq!(c.two_qubit_count(), 24);
        // 2 H per ancilla (8 ancillas) = 16 single-qubit gates + 8 measures.
        assert_eq!(c.one_qubit_count(), 16 + 8);
    }

    #[test]
    fn dedicated_wiring_cycle_has_cz_depth_four() {
        for d in [3usize, 5] {
            let code = SurfaceCode::rotated(d);
            let c = cycle_circuit(&code).unwrap();
            let s = schedule_asap(&c, code.chip()).unwrap();
            assert_eq!(s.two_qubit_depth(), 4, "cz depth at d={d}");
        }
    }

    #[test]
    fn multi_cycle_depth_scales_linearly() {
        let code = SurfaceCode::rotated(3);
        let c = cycles_circuit(&code, 25).unwrap();
        let s = schedule_asap(&c, code.chip()).unwrap();
        assert_eq!(s.two_qubit_depth(), 100);
        assert_eq!(c.two_qubit_count(), 24 * 25);
    }

    #[test]
    fn zero_cycles_is_empty() {
        let code = SurfaceCode::rotated(3);
        let c = cycles_circuit(&code, 0).unwrap();
        assert!(c.is_empty());
    }
}
