//! Greedy swap-insertion transpilation onto a chip's coupling graph.
//!
//! Logical benchmark circuits assume all-to-all connectivity; real chips
//! only support CZ between coupled neighbours. [`transpile`] lowers a
//! logical circuit to a physical one using the identity initial layout and
//! greedy SWAP chains along BFS shortest paths (each SWAP is decomposed
//! into three CX, i.e. three CZ plus Hadamards).

use std::collections::VecDeque;

use youtiao_chip::{Chip, QubitId};

use crate::benchmarks::push_cx;
use crate::circuit::Circuit;
use crate::error::CircuitError;
use crate::gate::Gate;

/// Result of transpilation: the physical circuit plus the final
/// logical→physical layout.
#[derive(Debug, Clone, PartialEq)]
pub struct Transpiled {
    /// The physical circuit (width = chip qubit count, all CZs between
    /// coupled neighbours).
    pub circuit: Circuit,
    /// `layout[logical] = physical` after all inserted SWAPs.
    pub final_layout: Vec<QubitId>,
    /// Number of SWAP gates inserted.
    pub swap_count: usize,
}

/// Transpiles `logical` onto `chip` and returns only the physical circuit.
///
/// Convenience wrapper over [`transpile_with_layout`].
///
/// # Errors
///
/// Same as [`transpile_with_layout`].
pub fn transpile(logical: &Circuit, chip: &Chip) -> Result<Circuit, CircuitError> {
    transpile_with_layout(logical, chip).map(|t| t.circuit)
}

/// A boustrophedon ordering of a chip's qubits: rows sorted by `y`, with
/// every other row reversed, so consecutive positions are physically
/// adjacent on grid-like chips. The preferred initial layout for
/// line-shaped logical circuits (VQC/ISING chains, QFT neighbours).
pub fn snake_order(chip: &Chip) -> Vec<QubitId> {
    let mut qubits: Vec<(QubitId, f64, f64)> = chip
        .qubits()
        .map(|q| (q.id(), q.position().x, q.position().y))
        .collect();
    qubits.sort_by(|a, b| a.2.total_cmp(&b.2).then(a.1.total_cmp(&b.1)));
    // Group into rows by y (1e-6 tolerance), reversing odd rows.
    let mut out = Vec::with_capacity(qubits.len());
    let mut row: Vec<QubitId> = Vec::new();
    let mut row_y = f64::NAN;
    let mut row_index = 0usize;
    for (id, _, y) in qubits {
        if row_y.is_nan() || (y - row_y).abs() < 1e-6 {
            row_y = y;
            row.push(id);
        } else {
            if row_index % 2 == 1 {
                row.reverse();
            }
            out.append(&mut row);
            row_index += 1;
            row_y = y;
            row.push(id);
        }
    }
    if row_index % 2 == 1 {
        row.reverse();
    }
    out.append(&mut row);
    out
}

/// Transpiles `logical` onto `chip` with the snake initial layout
/// (logical qubit `i` starts on the `i`-th qubit of [`snake_order`]),
/// which keeps chain-shaped circuits swap-free on grid chips.
///
/// # Errors
///
/// Same as [`transpile_with_layout`].
pub fn transpile_snake(logical: &Circuit, chip: &Chip) -> Result<Transpiled, CircuitError> {
    let order = snake_order(chip);
    transpile_with_initial_layout(
        logical,
        chip,
        &order[..logical.num_qubits().min(order.len())],
    )
}

/// Transpiles `logical` onto `chip` with the identity initial layout
/// (logical qubit `i` starts on physical qubit `i`).
///
/// # Errors
///
/// * [`CircuitError::ChipTooSmall`] — the circuit is wider than the chip.
/// * [`CircuitError::NoRoute`] — a CZ joins qubits in different connected
///   components of the coupling graph.
pub fn transpile_with_layout(logical: &Circuit, chip: &Chip) -> Result<Transpiled, CircuitError> {
    let layout: Vec<QubitId> = (0..logical.num_qubits()).map(QubitId::from).collect();
    transpile_with_initial_layout(logical, chip, &layout)
}

/// Transpiles `logical` onto `chip` starting from an explicit
/// logical→physical layout.
///
/// # Errors
///
/// Same as [`transpile_with_layout`].
///
/// # Panics
///
/// Panics if `initial_layout` repeats a physical qubit.
pub fn transpile_with_initial_layout(
    logical: &Circuit,
    chip: &Chip,
    initial_layout: &[QubitId],
) -> Result<Transpiled, CircuitError> {
    if logical.num_qubits() > chip.num_qubits() || logical.num_qubits() > initial_layout.len() {
        return Err(CircuitError::ChipTooSmall {
            needed: logical.num_qubits(),
            available: chip.num_qubits().min(initial_layout.len()),
        });
    }
    let mut layout: Vec<QubitId> = initial_layout[..logical.num_qubits()].to_vec();
    let mut inverse: Vec<Option<usize>> = vec![None; chip.num_qubits()];
    for (l, &p) in layout.iter().enumerate() {
        assert!(
            inverse[p.index()].is_none(),
            "initial layout repeats physical qubit {p}"
        );
        inverse[p.index()] = Some(l);
    }

    let mut out = Circuit::new(chip.num_qubits());
    let mut swap_count = 0usize;

    for op in logical.operations() {
        match op.q1 {
            None => {
                out.push1(op.gate, layout[op.q0.index()])
                    .expect("layout in range");
            }
            Some(q1) => {
                let pa = layout[op.q0.index()];
                let pb = layout[q1.index()];
                if !chip.are_adjacent(pa, pb) {
                    let path = shortest_path(chip, pa, pb).ok_or(CircuitError::NoRoute(pa, pb))?;
                    // Walk q0's physical carrier along the path until it
                    // neighbours q1's carrier.
                    for hop in 1..path.len() - 1 {
                        let from = path[hop - 1];
                        let to = path[hop];
                        emit_swap(&mut out, from, to);
                        swap_count += 1;
                        // Update layout/inverse for the swapped carriers.
                        let lf = inverse[from.index()];
                        let lt = inverse[to.index()];
                        if let Some(l) = lf {
                            layout[l] = to;
                        }
                        if let Some(l) = lt {
                            layout[l] = from;
                        }
                        inverse.swap(from.index(), to.index());
                    }
                }
                let pa = layout[op.q0.index()];
                let pb = layout[q1.index()];
                debug_assert!(chip.are_adjacent(pa, pb));
                out.push2(op.gate, pa, pb).expect("layout in range");
            }
        }
    }
    Ok(Transpiled {
        circuit: out,
        final_layout: layout,
        swap_count,
    })
}

/// Emits SWAP(a, b) = CX(a,b)·CX(b,a)·CX(a,b) on adjacent physical qubits.
fn emit_swap(out: &mut Circuit, a: QubitId, b: QubitId) {
    push_cx(out, a, b);
    push_cx(out, b, a);
    push_cx(out, a, b);
}

/// BFS shortest path (inclusive of endpoints) on the coupling graph.
fn shortest_path(chip: &Chip, from: QubitId, to: QubitId) -> Option<Vec<QubitId>> {
    let mut prev: Vec<Option<QubitId>> = vec![None; chip.num_qubits()];
    let mut seen = vec![false; chip.num_qubits()];
    seen[from.index()] = true;
    let mut queue = VecDeque::from([from]);
    while let Some(u) = queue.pop_front() {
        if u == to {
            let mut path = vec![to];
            let mut cur = to;
            while let Some(p) = prev[cur.index()] {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &v in chip.neighbors(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                prev[v.index()] = Some(u);
                queue.push_back(v);
            }
        }
    }
    None
}

/// Verifies that every CZ of `circuit` acts on coupled neighbours of
/// `chip` — the postcondition of [`transpile`].
pub fn is_hardware_compatible(circuit: &Circuit, chip: &Chip) -> bool {
    circuit.operations().iter().all(|op| match op.q1 {
        Some(q1) if op.gate == Gate::Cz => chip.are_adjacent(op.q0, q1),
        _ => op.q0.index() < chip.num_qubits(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;
    use youtiao_chip::topology;

    #[test]
    fn adjacent_gates_need_no_swaps() {
        let chip = topology::linear(4);
        let mut c = Circuit::new(4);
        c.push2(Gate::Cz, 0u32.into(), 1u32.into()).unwrap();
        let t = transpile_with_layout(&c, &chip).unwrap();
        assert_eq!(t.swap_count, 0);
        assert_eq!(t.circuit.two_qubit_count(), 1);
    }

    #[test]
    fn distant_gate_inserts_swaps() {
        let chip = topology::linear(4);
        let mut c = Circuit::new(4);
        c.push2(Gate::Cz, 0u32.into(), 3u32.into()).unwrap();
        let t = transpile_with_layout(&c, &chip).unwrap();
        // distance 3 -> move within 1 hop of target: 2 swaps
        assert_eq!(t.swap_count, 2);
        assert!(is_hardware_compatible(&t.circuit, &chip));
    }

    #[test]
    fn layout_tracks_moves() {
        let chip = topology::linear(3);
        let mut c = Circuit::new(3);
        c.push2(Gate::Cz, 0u32.into(), 2u32.into()).unwrap();
        let t = transpile_with_layout(&c, &chip).unwrap();
        // logical 0 moved to physical 1
        assert_eq!(t.final_layout[0], QubitId::new(1));
        // whoever was at 1 is now at 0
        assert_eq!(t.final_layout[1], QubitId::new(0));
    }

    #[test]
    fn all_benchmarks_become_hardware_compatible() {
        let chip = topology::square_grid(4, 4);
        for b in benchmarks::Benchmark::ALL {
            let logical = b.generate(9);
            let t = transpile_with_layout(&logical, &chip).unwrap();
            assert!(
                is_hardware_compatible(&t.circuit, &chip),
                "{} not compatible",
                b.name()
            );
            assert!(t.circuit.two_qubit_count() >= logical.two_qubit_count());
        }
    }

    #[test]
    fn chip_too_small_rejected() {
        let chip = topology::linear(3);
        let c = Circuit::new(5);
        let err = transpile(&c, &chip).unwrap_err();
        assert!(matches!(
            err,
            CircuitError::ChipTooSmall {
                needed: 5,
                available: 3
            }
        ));
    }

    #[test]
    fn disconnected_chip_reports_no_route() {
        let chip = youtiao_chip::ChipBuilder::new("d", youtiao_chip::TopologyKind::Custom)
            .qubit(youtiao_chip::Position::new(0.0, 0.0))
            .qubit(youtiao_chip::Position::new(5.0, 0.0))
            .build()
            .unwrap();
        let mut c = Circuit::new(2);
        c.push2(Gate::Cz, 0u32.into(), 1u32.into()).unwrap();
        assert!(matches!(
            transpile(&c, &chip),
            Err(CircuitError::NoRoute(_, _))
        ));
    }

    #[test]
    fn one_qubit_gates_follow_layout() {
        let chip = topology::linear(3);
        let mut c = Circuit::new(3);
        c.push2(Gate::Cz, 0u32.into(), 2u32.into()).unwrap();
        c.push1(Gate::X, 0u32.into()).unwrap();
        let t = transpile_with_layout(&c, &chip).unwrap();
        // X on logical 0 must land on physical 1 after the swap.
        let last = t.circuit.operations().last().unwrap();
        assert_eq!(last.gate, Gate::X);
        assert_eq!(last.q0, QubitId::new(1));
    }
}
