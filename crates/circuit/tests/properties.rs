//! Property-based tests for circuit generation, transpilation and
//! scheduling.

use proptest::prelude::*;
use youtiao_chip::topology;
use youtiao_chip::DeviceId;
use youtiao_circuit::benchmarks::{self, Benchmark};
use youtiao_circuit::schedule::{schedule_asap, schedule_with_tdm_strict, SharedLineConstraint};
use youtiao_circuit::transpile::{is_hardware_compatible, snake_order, transpile_snake};
use youtiao_circuit::{Circuit, Gate};

/// Groups every coupler by `id % k` — an arbitrary, legal-ish constraint
/// for stress-testing the scheduler (qubits stay dedicated, so no gate
/// is unrealizable).
struct ModuloGroups(usize);

impl SharedLineConstraint for ModuloGroups {
    fn group_of(&self, device: DeviceId) -> Option<usize> {
        match device {
            DeviceId::Coupler(c) => Some(c.index() % self.0),
            DeviceId::Qubit(_) => None,
        }
    }
}

fn random_circuit(n_qubits: usize, ops: &[(u8, u8, u8)]) -> Circuit {
    let mut c = Circuit::new(n_qubits);
    for &(kind, a, b) in ops {
        let qa = ((a as usize) % n_qubits).into();
        let qb = ((b as usize) % n_qubits).into();
        match kind % 4 {
            0 => c.push1(Gate::H, qa).unwrap(),
            1 => c.push1(Gate::Rx(0.3), qa).unwrap(),
            2 => c.push1(Gate::Rz(0.7), qa).unwrap(),
            _ => {
                if qa != qb {
                    c.push2(Gate::Cz, qa, qb).unwrap();
                }
            }
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Transpilation makes any random circuit hardware-compatible and
    /// preserves non-CZ gate counts.
    #[test]
    fn transpile_makes_compatible(ops in proptest::collection::vec((0u8..4, 0u8..16, 0u8..16), 1..40)) {
        let chip = topology::square_grid(4, 4);
        let logical = random_circuit(16, &ops);
        let t = transpile_snake(&logical, &chip).unwrap();
        prop_assert!(is_hardware_compatible(&t.circuit, &chip));
        // Every logical CZ maps to >= 1 physical CZ; swaps only add CZs.
        prop_assert!(t.circuit.two_qubit_count() >= logical.two_qubit_count());
    }

    /// Scheduling preserves the non-virtual operation count and never
    /// reorders gates on the same qubit (depth >= per-qubit gate count).
    #[test]
    fn schedule_preserves_ops(ops in proptest::collection::vec((0u8..4, 0u8..9, 0u8..9), 1..60)) {
        let chip = topology::square_grid(3, 3);
        let logical = random_circuit(9, &ops);
        let physical = transpile_snake(&logical, &chip).unwrap().circuit;
        let s = schedule_asap(&physical, &chip).unwrap();
        let non_virtual = physical.operations().iter().filter(|o| !o.gate.is_virtual()).count();
        prop_assert_eq!(s.op_count(), non_virtual);
        // Depth is at least the busiest qubit's gate count.
        let mut per_qubit = [0usize; 9];
        for op in physical.operations() {
            if !op.gate.is_virtual() {
                for q in op.qubits() {
                    per_qubit[q.index()] += 1;
                }
            }
        }
        prop_assert!(s.depth() >= per_qubit.iter().copied().max().unwrap_or(0));
    }

    /// TDM constraints can only increase depth, never change op counts,
    /// for arbitrary coupler groupings.
    #[test]
    fn tdm_monotone_in_depth(
        ops in proptest::collection::vec((0u8..4, 0u8..9, 0u8..9), 1..50),
        k in 1usize..5,
    ) {
        let chip = topology::square_grid(3, 3);
        let physical = transpile_snake(&random_circuit(9, &ops), &chip).unwrap().circuit;
        let base = schedule_asap(&physical, &chip).unwrap();
        let constrained =
            schedule_with_tdm_strict(&physical, &chip, &ModuloGroups(k)).unwrap();
        prop_assert!(constrained.depth() >= base.depth());
        prop_assert_eq!(constrained.op_count(), base.op_count());
        // Note: makespan is NOT monotone — delaying a CZ can co-locate it
        // with a long measurement layer and shrink the sum of layer
        // maxima — so only depth and op counts are invariant.
    }

    /// Barriers never decrease depth.
    #[test]
    fn barriers_monotone(ops in proptest::collection::vec((0u8..4, 0u8..9, 0u8..9), 2..40), at in 0usize..40) {
        let chip = topology::square_grid(3, 3);
        let plain = transpile_snake(&random_circuit(9, &ops), &chip).unwrap().circuit;
        // Rebuild with a barrier inserted mid-stream.
        let mut with_barrier = Circuit::new(plain.num_qubits());
        for (i, op) in plain.operations().iter().enumerate() {
            if i == at % plain.operations().len().max(1) {
                with_barrier.push_barrier();
            }
            with_barrier.push(*op).unwrap();
        }
        let d0 = schedule_asap(&plain, &chip).unwrap().depth();
        let d1 = schedule_asap(&with_barrier, &chip).unwrap().depth();
        prop_assert!(d1 >= d0);
    }

    /// Benchmark generators scale: gate counts grow with width and stay
    /// in the declared basis.
    #[test]
    fn benchmarks_scale(n in 3usize..12) {
        for b in Benchmark::ALL {
            let small = b.generate(n);
            let large = b.generate(n + 4);
            prop_assert!(large.len() >= small.len(), "{}", b.name());
        }
        let r = benchmarks::random_xy_layers(n, 5, 1);
        prop_assert_eq!(r.len(), 5 * n);
    }

    /// The snake order is always a permutation of the chip's qubits with
    /// adjacent consecutive entries on grids.
    #[test]
    fn snake_is_adjacent_permutation(rows in 2usize..6, cols in 2usize..6) {
        let chip = topology::square_grid(rows, cols);
        let order = snake_order(&chip);
        prop_assert_eq!(order.len(), chip.num_qubits());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), chip.num_qubits());
        for w in order.windows(2) {
            prop_assert!(chip.are_adjacent(w[0], w[1]), "{} !~ {}", w[0], w[1]);
        }
    }
}
