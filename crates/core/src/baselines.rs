//! The comparison wiring systems of §5.
//!
//! * [`GoogleBaseline`] — Sycamore-style partial multiplexing: dedicated
//!   XY and Z lines per device, multiplexed readout only.
//! * [`GeorgeFdm`] — state-of-the-art FDM practice (George et al.):
//!   chip-local line clustering with optimized *in-line* frequency
//!   spacing, staggered between lines, but no cross-line noise awareness.
//! * [`NaiveFdm`] — unoptimized FDM: chip-local clustering with the same
//!   frequency pattern repeated on every line, so physically adjacent
//!   qubits on neighbouring lines collide spectrally.
//! * [`AcharyaTdm`] — state-of-the-art TDM practice (Acharya et al.):
//!   *legal* local clustering onto 1:4 cryo-DEMUXes, with no
//!   non-parallelism awareness.

use youtiao_chip::{Chip, DeviceId, QubitId};
use youtiao_circuit::schedule::SharedLineConstraint;

use crate::fdm::{group_fdm_local, FdmLine};
use crate::freq::{allocate_in_line_only, FreqConfig, FrequencyPlan};
use crate::tdm::{legal_pair, DemuxLevel, TdmGroup};

/// Google-style dedicated wiring: one XY line and one Z line per device,
/// readout multiplexed at the feedline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoogleBaseline {
    num_qubits: usize,
    num_couplers: usize,
    readout_capacity: usize,
}

impl GoogleBaseline {
    /// Builds the baseline for a chip with the default readout feedline
    /// capacity of 8.
    pub fn for_chip(chip: &Chip) -> Self {
        GoogleBaseline {
            num_qubits: chip.num_qubits(),
            num_couplers: chip.num_couplers(),
            readout_capacity: 8,
        }
    }

    /// Number of coaxial XY lines (one per qubit).
    pub fn num_xy_lines(&self) -> usize {
        self.num_qubits
    }

    /// Number of coaxial Z lines (one per qubit and per coupler).
    pub fn num_z_lines(&self) -> usize {
        self.num_qubits + self.num_couplers
    }

    /// Number of readout feedlines.
    pub fn num_readout_lines(&self) -> usize {
        self.num_qubits.div_ceil(self.readout_capacity)
    }
}

impl SharedLineConstraint for GoogleBaseline {
    fn group_of(&self, _device: DeviceId) -> Option<usize> {
        None // every device has a dedicated line
    }
}

/// George et al. FDM: local clustering plus staggered in-line-optimal
/// frequency allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct GeorgeFdm {
    fdm_lines: Vec<FdmLine>,
    frequency_plan: FrequencyPlan,
}

impl GeorgeFdm {
    /// Builds the baseline for a chip with the given line capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn for_chip(chip: &Chip, capacity: usize, config: &FreqConfig) -> Self {
        let fdm_lines = group_fdm_local(chip, capacity);
        // In-line-optimal spacing, then stagger line k by k cells so
        // exact cross-line collisions are avoided (in-line awareness
        // only — no crosstalk model).
        let base = allocate_in_line_only(chip, &fdm_lines, config);
        let mut freqs = base.frequencies().to_vec();
        let zone_of: Vec<usize> = (0..chip.num_qubits())
            .map(|i| base.zone_of(QubitId::from(i)))
            .collect();
        let stagger = config.cell_mhz / 1000.0;
        for (k, line) in fdm_lines.iter().enumerate() {
            for &q in line.qubits() {
                freqs[q.index()] += (k % 8) as f64 * stagger;
            }
        }
        let frequency_plan = FrequencyPlan::from_frequencies(freqs, base.zones(), zone_of);
        GeorgeFdm {
            fdm_lines,
            frequency_plan,
        }
    }

    /// The FDM lines.
    pub fn fdm_lines(&self) -> &[FdmLine] {
        &self.fdm_lines
    }

    /// The frequency assignment.
    pub fn frequency_plan(&self) -> &FrequencyPlan {
        &self.frequency_plan
    }
}

/// Unoptimized FDM: local clustering with an identical frequency pattern
/// on every line.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveFdm {
    fdm_lines: Vec<FdmLine>,
    frequency_plan: FrequencyPlan,
}

impl NaiveFdm {
    /// Builds the baseline for a chip with the given line capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn for_chip(chip: &Chip, capacity: usize, config: &FreqConfig) -> Self {
        let fdm_lines = group_fdm_local(chip, capacity);
        let frequency_plan = allocate_in_line_only(chip, &fdm_lines, config);
        NaiveFdm {
            fdm_lines,
            frequency_plan,
        }
    }

    /// The FDM lines.
    pub fn fdm_lines(&self) -> &[FdmLine] {
        &self.fdm_lines
    }

    /// The frequency assignment.
    pub fn frequency_plan(&self) -> &FrequencyPlan {
        &self.frequency_plan
    }
}

/// Acharya et al. TDM: legal clustering of Z devices onto 1:4
/// cryo-DEMUXes by physical proximity, without non-parallelism awareness.
#[derive(Debug, Clone, PartialEq)]
pub struct AcharyaTdm {
    groups: Vec<TdmGroup>,
    shared_group_of: Vec<(DeviceId, usize)>,
}

impl AcharyaTdm {
    /// Builds the baseline for a chip.
    pub fn for_chip(chip: &Chip) -> Self {
        let mut unassigned: Vec<DeviceId> = chip.device_ids().collect();
        let mut groups = Vec::new();
        while !unassigned.is_empty() {
            let seed = unassigned.remove(0);
            let seed_pos = chip.device_position(seed);
            let mut members = vec![seed];
            while members.len() < DemuxLevel::OneToFour.channel_capacity() {
                // Nearest legal device by physical distance to the seed.
                let mut best: Option<(usize, f64)> = None;
                for (i, &cand) in unassigned.iter().enumerate() {
                    if !members.iter().all(|&m| legal_pair(chip, m, cand)) {
                        continue;
                    }
                    let d = seed_pos.distance_to(chip.device_position(cand));
                    if best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((i, d));
                    }
                }
                match best {
                    Some((i, _)) => members.push(unassigned.remove(i)),
                    None => break,
                }
            }
            groups.push(TdmGroup::new(DemuxLevel::OneToFour, members));
        }
        let mut shared_group_of = Vec::new();
        for (g, group) in groups.iter().enumerate() {
            if group.len() > 1 {
                for &d in group.devices() {
                    shared_group_of.push((d, g));
                }
            }
        }
        AcharyaTdm {
            groups,
            shared_group_of,
        }
    }

    /// The TDM groups.
    pub fn groups(&self) -> &[TdmGroup] {
        &self.groups
    }

    /// Number of Z lines (one per group).
    pub fn num_z_lines(&self) -> usize {
        self.groups.len()
    }
}

impl SharedLineConstraint for AcharyaTdm {
    fn group_of(&self, device: DeviceId) -> Option<usize> {
        self.shared_group_of
            .iter()
            .find(|(d, _)| *d == device)
            .map(|(_, g)| *g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tdm::TdmConfig;
    use youtiao_chip::topology;
    use youtiao_circuit::benchmarks;
    use youtiao_circuit::schedule::{schedule_asap, schedule_with_tdm};
    use youtiao_circuit::transpile::transpile;

    #[test]
    fn google_counts() {
        let chip = topology::heavy_square(3, 3);
        let g = GoogleBaseline::for_chip(&chip);
        assert_eq!(g.num_xy_lines(), 21);
        assert_eq!(g.num_z_lines(), 45);
        assert_eq!(g.num_readout_lines(), 3);
        assert_eq!(g.group_of(DeviceId::Qubit(0u32.into())), None);
    }

    #[test]
    fn george_lines_are_local_clusters() {
        let chip = topology::square_grid(3, 3);
        let g = GeorgeFdm::for_chip(&chip, 3, &FreqConfig::default());
        assert_eq!(g.fdm_lines().len(), 3);
        // Line 0 holds q0..q2 (id order).
        assert!(g.fdm_lines()[0].contains(0u32.into()));
        assert!(g.fdm_lines()[0].contains(2u32.into()));
    }

    #[test]
    fn george_staggers_lines_but_naive_does_not() {
        let chip = topology::square_grid(3, 3);
        let cfg = FreqConfig::default();
        let george = GeorgeFdm::for_chip(&chip, 3, &cfg);
        let naive = NaiveFdm::for_chip(&chip, 3, &cfg);
        // First member of lines 0 and 1:
        let l0q = george.fdm_lines()[0].qubits()[0];
        let l1q = george.fdm_lines()[1].qubits()[0];
        let df_george = (george.frequency_plan().frequency_ghz(l0q)
            - george.frequency_plan().frequency_ghz(l1q))
        .abs();
        let df_naive = (naive.frequency_plan().frequency_ghz(l0q)
            - naive.frequency_plan().frequency_ghz(l1q))
        .abs();
        assert!(df_george > 1e-6, "george must stagger");
        assert_eq!(df_naive, 0.0, "naive must collide");
    }

    #[test]
    fn acharya_groups_are_legal_and_cover_devices() {
        let chip = topology::square_grid(3, 3);
        let a = AcharyaTdm::for_chip(&chip);
        let total: usize = a.groups().iter().map(TdmGroup::len).sum();
        assert_eq!(total, chip.num_z_devices());
        for g in a.groups() {
            let ds = g.devices();
            for i in 0..ds.len() {
                for j in (i + 1)..ds.len() {
                    assert!(legal_pair(&chip, ds[i], ds[j]));
                }
            }
        }
    }

    #[test]
    fn acharya_schedules_without_unrealizable_gates() {
        let chip = topology::square_grid(3, 3);
        let a = AcharyaTdm::for_chip(&chip);
        for b in benchmarks::Benchmark::ALL {
            let physical = transpile(&b.generate(9), &chip).unwrap();
            assert!(
                schedule_with_tdm(&physical, &chip, &a).is_ok(),
                "{} unrealizable under acharya",
                b.name()
            );
        }
    }

    #[test]
    fn youtiao_depth_beats_acharya_on_parallel_workloads() {
        let chip = topology::square_grid(4, 4);
        let youtiao = crate::plan::YoutiaoPlanner::new(&chip)
            .with_config(crate::plan::PlannerConfig {
                tdm: TdmConfig::default(),
                ..Default::default()
            })
            .plan()
            .unwrap();
        let acharya = AcharyaTdm::for_chip(&chip);
        let physical = transpile(&benchmarks::vqc(16, 4), &chip).unwrap();
        let base = schedule_asap(&physical, &chip).unwrap().two_qubit_depth();
        let yt = schedule_with_tdm(&physical, &chip, &youtiao)
            .unwrap()
            .two_qubit_depth();
        let ac = schedule_with_tdm(&physical, &chip, &acharya)
            .unwrap()
            .two_qubit_depth();
        assert!(yt <= ac, "youtiao {yt} vs acharya {ac} (base {base})");
    }

    #[test]
    fn acharya_z_line_reduction() {
        let chip = topology::heavy_square(3, 3);
        let a = AcharyaTdm::for_chip(&chip);
        assert!(a.num_z_lines() < chip.num_z_devices());
        assert!(a.num_z_lines() >= chip.num_z_devices() / 4);
    }
}
