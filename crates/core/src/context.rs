//! Reusable precomputed planning context.
//!
//! The planner's first stage — the equivalent-distance matrix and the
//! qubit-pair crosstalk matrix — depends only on the chip and the
//! crosstalk model (or the fallback weights), *not* on the knobs a
//! sweep varies (θ, capacities, DEMUX fan-out, partitioning). A
//! [`PlanContext`] captures exactly that chip-level state so a sweep
//! over N planner configurations builds the matrices once and plans N
//! times against the shared, immutable context instead of rebuilding
//! O(n²) state per point.
//!
//! # Example
//!
//! ```
//! use youtiao_chip::distance::EquivalentWeights;
//! use youtiao_chip::topology;
//! use youtiao_core::{PlanContext, PlannerConfig, TdmConfig, YoutiaoPlanner};
//!
//! let chip = topology::square_grid(4, 4);
//! let ctx = PlanContext::build(&chip, None, EquivalentWeights::balanced());
//! for theta in [2.0, 4.0, 8.0] {
//!     let config = PlannerConfig {
//!         tdm: TdmConfig { theta, ..Default::default() },
//!         ..Default::default()
//!     };
//!     let plan = YoutiaoPlanner::new(&chip)
//!         .with_config(config)
//!         .with_context(&ctx)
//!         .plan()?;
//!     assert_eq!(plan.num_xy_lines(), 4);
//! }
//! # Ok::<(), youtiao_core::PlanError>(())
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

use youtiao_chip::distance::{equivalent_matrix, DistanceMatrix, EquivalentWeights};
use youtiao_chip::{Chip, QubitId};
use youtiao_noise::CrosstalkModel;

use crate::error::PlanError;
use crate::freq_kernels::FreqKernels;
use crate::kernels::PairKernels;
use crate::plan::crosstalk_matrix;
use crate::scratch::ScratchPool;

/// Global count of [`PlanContext::build`] calls — a probe for tests
/// asserting that a sweep builds its matrices once per chip axis value
/// instead of once per grid point.
static BUILDS: AtomicU64 = AtomicU64::new(0);

/// Stable fingerprint of a chip's wiring-relevant structure: qubit
/// count, coupler count, and every coupler's endpoint pair (FNV-1a).
/// Two chips with equal fingerprints have identical device id spaces
/// and identical topology-derived kernels.
pub fn chip_fingerprint(chip: &Chip) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    mix(chip.num_qubits() as u64);
    mix(chip.num_couplers() as u64);
    for c in chip.couplers() {
        let (a, b) = c.endpoints();
        mix(a.index() as u64);
        mix(b.index() as u64);
    }
    h
}

/// Immutable chip-level planning state shared across sweep points: the
/// equivalent-distance matrix, the XY crosstalk matrix, (optionally)
/// the ZZ crosstalk matrix, and the grouping [`PairKernels`], together
/// with the weights and the chip fingerprint they were built from so a
/// mismatched or structurally-changed chip is rejected instead of
/// silently planning against stale matrices.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanContext {
    num_qubits: usize,
    fingerprint: u64,
    weights: EquivalentWeights,
    equivalent: DistanceMatrix,
    crosstalk: DistanceMatrix,
    zz_crosstalk: Option<DistanceMatrix>,
    kernels: PairKernels,
    freq_kernels: FreqKernels,
    // Warm buffer capacity, not planning state: compares equal to every
    // other pool and clones to an empty one, so it never perturbs the
    // staleness/equality semantics above.
    scratch: ScratchPool,
}

impl PlanContext {
    /// Precomputes the matrices for `chip`: equivalent distances from
    /// the model's fitted weights (or `fallback` without a model) and
    /// the pairwise XY crosstalk matrix. The result is exactly what
    /// [`crate::YoutiaoPlanner`] would build internally, so planning
    /// with or without the context yields identical plans.
    pub fn build(chip: &Chip, model: Option<&CrosstalkModel>, fallback: EquivalentWeights) -> Self {
        let weights = model.map(|m| m.weights()).unwrap_or(fallback);
        let equivalent = equivalent_matrix(chip, weights);
        let crosstalk = crosstalk_matrix(chip, &equivalent, model);
        let kernels = PairKernels::build(chip, &crosstalk);
        let freq_kernels = FreqKernels::build(&crosstalk);
        BUILDS.fetch_add(1, Ordering::Relaxed);
        PlanContext {
            num_qubits: chip.num_qubits(),
            fingerprint: chip_fingerprint(chip),
            weights,
            equivalent,
            crosstalk,
            zz_crosstalk: None,
            kernels,
            freq_kernels,
            scratch: ScratchPool::new(),
        }
    }

    /// Builds a context from an explicit crosstalk matrix instead of a
    /// model — the repair path's "full replan from a snapshot"
    /// constructor, where the new inputs arrive as a concrete matrix
    /// rather than a fitted model.
    ///
    /// # Panics
    ///
    /// Panics if the matrix dimension mismatches the chip.
    pub fn from_matrix(chip: &Chip, weights: EquivalentWeights, crosstalk: DistanceMatrix) -> Self {
        assert_eq!(
            crosstalk.len(),
            chip.num_qubits(),
            "crosstalk matrix size mismatch"
        );
        let equivalent = equivalent_matrix(chip, weights);
        let kernels = PairKernels::build(chip, &crosstalk);
        let freq_kernels = FreqKernels::build(&crosstalk);
        BUILDS.fetch_add(1, Ordering::Relaxed);
        PlanContext {
            num_qubits: chip.num_qubits(),
            fingerprint: chip_fingerprint(chip),
            weights,
            equivalent,
            crosstalk,
            zz_crosstalk: None,
            kernels,
            freq_kernels,
            scratch: ScratchPool::new(),
        }
    }

    /// Adds the ZZ crosstalk matrix (drives the *noisy non-parallelism*
    /// score of TDM grouping) fitted from `model`.
    ///
    /// # Panics
    ///
    /// Panics when `chip` has a different qubit count than the chip the
    /// context was built for.
    pub fn with_zz_model(mut self, chip: &Chip, model: &CrosstalkModel) -> Self {
        assert_eq!(
            chip.num_qubits(),
            self.num_qubits,
            "zz model chip does not match the context's chip"
        );
        let eq = equivalent_matrix(chip, model.weights());
        let zz = crosstalk_matrix(chip, &eq, Some(model));
        // The kernels' noise table must track the matrix TDM grouping
        // will actually score with — the ZZ matrix from here on. The
        // freq kernels stay on the XY matrix: frequency allocation
        // always scores XY crosstalk regardless of the TDM noise model.
        // The superseded XY-noise tables retire into the context's
        // arena pool so the rebuild reuses their capacity.
        let mut arena = self.scratch.checkout();
        let old = std::mem::replace(
            &mut self.kernels,
            PairKernels::build_in(chip, &zz, &mut arena),
        );
        old.retire_into(&mut arena);
        drop(arena);
        self.zz_crosstalk = Some(zz);
        self
    }

    /// Number of qubits of the chip this context was built for.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The equivalent-distance weights the matrices were built from.
    pub fn weights(&self) -> EquivalentWeights {
        self.weights
    }

    /// The equivalent-distance matrix.
    pub fn equivalent(&self) -> &DistanceMatrix {
        &self.equivalent
    }

    /// The qubit-pair XY crosstalk matrix.
    pub fn crosstalk(&self) -> &DistanceMatrix {
        &self.crosstalk
    }

    /// The ZZ crosstalk matrix, when fitted via [`Self::with_zz_model`].
    pub fn zz_crosstalk(&self) -> Option<&DistanceMatrix> {
        self.zz_crosstalk.as_ref()
    }

    /// The grouping kernels, built on the same crosstalk matrix TDM
    /// grouping scores with (the ZZ matrix after
    /// [`Self::with_zz_model`], the XY matrix otherwise).
    pub fn kernels(&self) -> &PairKernels {
        &self.kernels
    }

    /// The frequency-allocation kernels, always built on the XY
    /// crosstalk matrix (the matrix both the qubit-band and the
    /// readout-band allocations score with).
    pub fn freq_kernels(&self) -> &FreqKernels {
        &self.freq_kernels
    }

    /// The context's scratch-arena pool. Each planning stage checks an
    /// arena out for the duration of its work (concurrent plans — or
    /// concurrent stages within one plan — each get their own), so the
    /// per-call hot-loop buffers PR 4/PR 7 still allocated are served
    /// from warm capacity on every plan after the first.
    pub fn scratch(&self) -> &ScratchPool {
        &self.scratch
    }

    /// Whether the context is stale for `chip`: the chip's structure
    /// (qubit count, couplers) no longer matches what the matrices and
    /// kernels were built from. A stale context must be rebuilt (or,
    /// for crosstalk-value-only changes on the *same* structure, updated
    /// via [`Self::apply_crosstalk_delta`]).
    pub fn is_stale(&self, chip: &Chip) -> bool {
        chip.num_qubits() != self.num_qubits || chip_fingerprint(chip) != self.fingerprint
    }

    /// Applies a crosstalk-value delta in place: replaces the XY
    /// crosstalk matrix and patches the kernels' noise rows for the
    /// `dirty` qubits via [`PairKernels::apply_delta`], advancing the
    /// [`Self::kernels_invalidated`] probe instead of the build count.
    ///
    /// This is the explicit rebuild-vs-delta choice: mutating inputs
    /// and reusing a context used to silently serve stale kernels; now
    /// a structural change is rejected by [`Self::is_stale`]/`check`,
    /// and a value-only drift is applied exactly (the patched context
    /// equals a fresh [`Self::from_matrix`] build bit-for-bit).
    ///
    /// Returns the number of kernel rows recomputed.
    ///
    /// # Errors
    ///
    /// [`PlanError::InvalidConfig`] when the chip changed structurally,
    /// the matrix dimension mismatches, or the context carries a ZZ
    /// matrix (whose kernels would not track an XY-only delta).
    pub fn apply_crosstalk_delta(
        &mut self,
        chip: &Chip,
        crosstalk: DistanceMatrix,
        dirty: &[QubitId],
    ) -> Result<usize, PlanError> {
        if self.is_stale(chip) {
            return Err(PlanError::InvalidConfig(
                "chip changed structurally; rebuild the plan context",
            ));
        }
        if crosstalk.len() != self.num_qubits {
            return Err(PlanError::InvalidConfig(
                "crosstalk delta matrix size mismatch",
            ));
        }
        if self.zz_crosstalk.is_some() {
            return Err(PlanError::InvalidConfig(
                "zz-backed contexts cannot take an xy crosstalk delta; rebuild",
            ));
        }
        let rows = self.kernels.apply_delta(chip, &crosstalk, dirty);
        // Freq kernels are plain sparse rows over the matrix — a
        // rebuild from the new matrix is already row-cheap and is
        // trivially bit-identical to a fresh context's build.
        self.freq_kernels = FreqKernels::build(&crosstalk);
        self.crosstalk = crosstalk;
        Ok(rows)
    }

    /// Verifies the context matches the planner's resolved chip and
    /// weights.
    ///
    /// # Errors
    ///
    /// [`PlanError::InvalidConfig`] on a qubit-count, structure
    /// (fingerprint), or weight mismatch.
    pub(crate) fn check(&self, chip: &Chip, weights: EquivalentWeights) -> Result<(), PlanError> {
        if chip.num_qubits() != self.num_qubits {
            return Err(PlanError::InvalidConfig(
                "plan context was built for a different chip",
            ));
        }
        if chip_fingerprint(chip) != self.fingerprint {
            return Err(PlanError::InvalidConfig(
                "plan context is stale: the chip's couplers changed since it was built",
            ));
        }
        if weights != self.weights {
            return Err(PlanError::InvalidConfig(
                "plan context was built with different equivalent-distance weights",
            ));
        }
        Ok(())
    }

    /// Cumulative number of contexts built in this process (test probe).
    pub fn build_count() -> u64 {
        BUILDS.load(Ordering::Relaxed)
    }

    /// Cumulative number of kernel delta invalidations in this process
    /// — the `kernels_invalidated` probe alongside
    /// [`Self::build_count`] (delegates to
    /// [`PairKernels::invalidation_count`]).
    pub fn kernels_invalidated() -> u64 {
        PairKernels::invalidation_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PlannerConfig, TdmConfig, YoutiaoPlanner};
    use youtiao_chip::topology;

    #[test]
    fn context_plans_identically_to_internal_matrices() {
        let chip = topology::square_grid(5, 5);
        let ctx = PlanContext::build(&chip, None, EquivalentWeights::balanced());
        for theta in [2.0, 4.0, 8.0] {
            let config = PlannerConfig {
                tdm: TdmConfig {
                    theta,
                    ..Default::default()
                },
                ..Default::default()
            };
            let direct = YoutiaoPlanner::new(&chip)
                .with_config(config.clone())
                .plan()
                .unwrap();
            let shared = YoutiaoPlanner::new(&chip)
                .with_config(config)
                .with_context(&ctx)
                .plan()
                .unwrap();
            assert_eq!(direct, shared, "theta={theta}");
        }
    }

    #[test]
    fn context_with_model_matches_model_planning() {
        use youtiao_noise::data::{synthesize, CrosstalkKind, SynthConfig};
        use youtiao_noise::fit::{fit_crosstalk_model, FitConfig};
        let chip = topology::square_grid(4, 4);
        let samples = synthesize(&chip, CrosstalkKind::Xy, &SynthConfig::xy(), 5);
        let model = fit_crosstalk_model(&samples, &FitConfig::fast()).unwrap();
        let ctx = PlanContext::build(&chip, Some(&model), EquivalentWeights::balanced());
        let direct = YoutiaoPlanner::new(&chip)
            .with_crosstalk_model(&model)
            .plan()
            .unwrap();
        let shared = YoutiaoPlanner::new(&chip)
            .with_crosstalk_model(&model)
            .with_context(&ctx)
            .plan()
            .unwrap();
        assert_eq!(direct, shared);
    }

    #[test]
    fn context_skips_the_matrices_stage() {
        let chip = topology::square_grid(4, 4);
        let ctx = PlanContext::build(&chip, None, EquivalentWeights::balanced());
        let mut names = Vec::new();
        YoutiaoPlanner::new(&chip)
            .with_context(&ctx)
            .plan_with_hook(&mut |name, _| names.push(name))
            .unwrap();
        assert!(!names.contains(&"matrices"), "{names:?}");
        // The context's kernels are reused too — no local rebuild.
        assert!(!names.contains(&"kernels"), "{names:?}");
        assert!(!names.contains(&"freq.kernels"), "{names:?}");
        assert!(names.contains(&"fdm_grouping"));
    }

    #[test]
    fn mismatched_context_is_rejected() {
        let chip = topology::square_grid(4, 4);
        let other = topology::square_grid(3, 3);
        let ctx = PlanContext::build(&other, None, EquivalentWeights::balanced());
        assert!(matches!(
            YoutiaoPlanner::new(&chip).with_context(&ctx).plan(),
            Err(PlanError::InvalidConfig(_))
        ));

        let ctx = PlanContext::build(&chip, None, EquivalentWeights::balanced());
        let config = PlannerConfig {
            weights: EquivalentWeights::new(0.9, 0.1).unwrap(),
            ..Default::default()
        };
        assert!(matches!(
            YoutiaoPlanner::new(&chip)
                .with_config(config)
                .with_context(&ctx)
                .plan(),
            Err(PlanError::InvalidConfig(_))
        ));
    }

    #[test]
    fn build_count_probe_advances() {
        let chip = topology::linear(4);
        let before = PlanContext::build_count();
        let _ctx = PlanContext::build(&chip, None, EquivalentWeights::balanced());
        assert!(PlanContext::build_count() > before);
    }

    /// Same qubit count, one coupler removed: the chip the context was
    /// built for no longer exists. Before the fingerprint check this
    /// silently planned against stale kernels (the old `check` only
    /// compared qubit counts and weights).
    #[test]
    fn structurally_mutated_chip_is_rejected_not_served_stale() {
        let chip = topology::square_grid(4, 4);
        let mut spec = youtiao_chip::spec::ChipSpec::from_chip(&chip);
        spec.couplers.pop();
        let mutated = spec.to_chip().unwrap();
        assert_eq!(mutated.num_qubits(), chip.num_qubits());

        let ctx = PlanContext::build(&chip, None, EquivalentWeights::balanced());
        assert!(!ctx.is_stale(&chip));
        assert!(ctx.is_stale(&mutated));
        let err = YoutiaoPlanner::new(&mutated)
            .with_context(&ctx)
            .plan()
            .unwrap_err();
        assert!(
            matches!(err, PlanError::InvalidConfig(msg) if msg.contains("stale")),
            "{err:?}"
        );
    }

    #[test]
    fn crosstalk_delta_matches_a_fresh_context() {
        let chip = topology::square_grid(4, 4);
        let mut ctx = PlanContext::build(&chip, None, EquivalentWeights::balanced());
        let mut drifted = ctx.crosstalk().clone();
        let (a, b) = (QubitId::new(3), QubitId::new(7));
        drifted.set(a, b, drifted.get(a, b) * 2.5 + 1e-3);

        let invalidated = PlanContext::kernels_invalidated();
        let builds = PlanContext::build_count();
        let rows = ctx
            .apply_crosstalk_delta(&chip, drifted.clone(), &[a, b])
            .unwrap();
        assert!(rows >= 2);
        assert_eq!(PlanContext::kernels_invalidated(), invalidated + 1);
        assert_eq!(PlanContext::build_count(), builds, "delta must not rebuild");

        let fresh = PlanContext::from_matrix(&chip, EquivalentWeights::balanced(), drifted);
        assert_eq!(ctx, fresh, "patched context must equal a fresh build");
    }

    #[test]
    fn crosstalk_delta_rejects_structural_and_zz_contexts() {
        use youtiao_noise::data::{synthesize, CrosstalkKind, SynthConfig};
        use youtiao_noise::fit::{fit_crosstalk_model, FitConfig};
        let chip = topology::square_grid(3, 3);
        let mut ctx = PlanContext::build(&chip, None, EquivalentWeights::balanced());
        let other = topology::ring(9);
        let bad = ctx.apply_crosstalk_delta(&other, DistanceMatrix::zeros(9), &[]);
        assert!(matches!(bad, Err(PlanError::InvalidConfig(_))));

        let zz = fit_crosstalk_model(
            &synthesize(&chip, CrosstalkKind::Zz, &SynthConfig::zz(), 5),
            &FitConfig::fast(),
        )
        .unwrap();
        let mut zz_ctx = PlanContext::build(&chip, None, EquivalentWeights::balanced())
            .with_zz_model(&chip, &zz);
        let xtalk = zz_ctx.crosstalk().clone();
        let bad = zz_ctx.apply_crosstalk_delta(&chip, xtalk, &[]);
        assert!(matches!(bad, Err(PlanError::InvalidConfig(_))));
    }

    #[test]
    fn zz_context_matches_zz_planning() {
        use youtiao_noise::data::{synthesize, CrosstalkKind, SynthConfig};
        use youtiao_noise::fit::{fit_crosstalk_model, FitConfig};
        let chip = topology::square_grid(4, 4);
        let xy = fit_crosstalk_model(
            &synthesize(&chip, CrosstalkKind::Xy, &SynthConfig::xy(), 5),
            &FitConfig::fast(),
        )
        .unwrap();
        let zz = fit_crosstalk_model(
            &synthesize(&chip, CrosstalkKind::Zz, &SynthConfig::zz(), 5),
            &FitConfig::fast(),
        )
        .unwrap();
        let ctx = PlanContext::build(&chip, Some(&xy), EquivalentWeights::balanced())
            .with_zz_model(&chip, &zz);
        assert!(ctx.zz_crosstalk().is_some());
        let direct = YoutiaoPlanner::new(&chip)
            .with_crosstalk_model(&xy)
            .with_zz_model(&zz)
            .plan()
            .unwrap();
        let shared = YoutiaoPlanner::new(&chip)
            .with_crosstalk_model(&xy)
            .with_zz_model(&zz)
            .with_context(&ctx)
            .plan()
            .unwrap();
        assert_eq!(direct, shared);
    }
}
