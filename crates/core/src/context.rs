//! Reusable precomputed planning context.
//!
//! The planner's first stage — the equivalent-distance matrix and the
//! qubit-pair crosstalk matrix — depends only on the chip and the
//! crosstalk model (or the fallback weights), *not* on the knobs a
//! sweep varies (θ, capacities, DEMUX fan-out, partitioning). A
//! [`PlanContext`] captures exactly that chip-level state so a sweep
//! over N planner configurations builds the matrices once and plans N
//! times against the shared, immutable context instead of rebuilding
//! O(n²) state per point.
//!
//! # Example
//!
//! ```
//! use youtiao_chip::distance::EquivalentWeights;
//! use youtiao_chip::topology;
//! use youtiao_core::{PlanContext, PlannerConfig, TdmConfig, YoutiaoPlanner};
//!
//! let chip = topology::square_grid(4, 4);
//! let ctx = PlanContext::build(&chip, None, EquivalentWeights::balanced());
//! for theta in [2.0, 4.0, 8.0] {
//!     let config = PlannerConfig {
//!         tdm: TdmConfig { theta, ..Default::default() },
//!         ..Default::default()
//!     };
//!     let plan = YoutiaoPlanner::new(&chip)
//!         .with_config(config)
//!         .with_context(&ctx)
//!         .plan()?;
//!     assert_eq!(plan.num_xy_lines(), 4);
//! }
//! # Ok::<(), youtiao_core::PlanError>(())
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

use youtiao_chip::distance::{equivalent_matrix, DistanceMatrix, EquivalentWeights};
use youtiao_chip::Chip;
use youtiao_noise::CrosstalkModel;

use crate::error::PlanError;
use crate::kernels::PairKernels;
use crate::plan::crosstalk_matrix;

/// Global count of [`PlanContext::build`] calls — a probe for tests
/// asserting that a sweep builds its matrices once per chip axis value
/// instead of once per grid point.
static BUILDS: AtomicU64 = AtomicU64::new(0);

/// Immutable chip-level planning state shared across sweep points: the
/// equivalent-distance matrix, the XY crosstalk matrix, (optionally)
/// the ZZ crosstalk matrix, and the grouping [`PairKernels`], together
/// with the weights they were built from so a mismatched planner is
/// rejected instead of silently using matrices for the wrong chip.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanContext {
    num_qubits: usize,
    weights: EquivalentWeights,
    equivalent: DistanceMatrix,
    crosstalk: DistanceMatrix,
    zz_crosstalk: Option<DistanceMatrix>,
    kernels: PairKernels,
}

impl PlanContext {
    /// Precomputes the matrices for `chip`: equivalent distances from
    /// the model's fitted weights (or `fallback` without a model) and
    /// the pairwise XY crosstalk matrix. The result is exactly what
    /// [`crate::YoutiaoPlanner`] would build internally, so planning
    /// with or without the context yields identical plans.
    pub fn build(chip: &Chip, model: Option<&CrosstalkModel>, fallback: EquivalentWeights) -> Self {
        let weights = model.map(|m| m.weights()).unwrap_or(fallback);
        let equivalent = equivalent_matrix(chip, weights);
        let crosstalk = crosstalk_matrix(chip, &equivalent, model);
        let kernels = PairKernels::build(chip, &crosstalk);
        BUILDS.fetch_add(1, Ordering::Relaxed);
        PlanContext {
            num_qubits: chip.num_qubits(),
            weights,
            equivalent,
            crosstalk,
            zz_crosstalk: None,
            kernels,
        }
    }

    /// Adds the ZZ crosstalk matrix (drives the *noisy non-parallelism*
    /// score of TDM grouping) fitted from `model`.
    ///
    /// # Panics
    ///
    /// Panics when `chip` has a different qubit count than the chip the
    /// context was built for.
    pub fn with_zz_model(mut self, chip: &Chip, model: &CrosstalkModel) -> Self {
        assert_eq!(
            chip.num_qubits(),
            self.num_qubits,
            "zz model chip does not match the context's chip"
        );
        let eq = equivalent_matrix(chip, model.weights());
        let zz = crosstalk_matrix(chip, &eq, Some(model));
        // The kernels' noise table must track the matrix TDM grouping
        // will actually score with — the ZZ matrix from here on.
        self.kernels = PairKernels::build(chip, &zz);
        self.zz_crosstalk = Some(zz);
        self
    }

    /// Number of qubits of the chip this context was built for.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The equivalent-distance weights the matrices were built from.
    pub fn weights(&self) -> EquivalentWeights {
        self.weights
    }

    /// The equivalent-distance matrix.
    pub fn equivalent(&self) -> &DistanceMatrix {
        &self.equivalent
    }

    /// The qubit-pair XY crosstalk matrix.
    pub fn crosstalk(&self) -> &DistanceMatrix {
        &self.crosstalk
    }

    /// The ZZ crosstalk matrix, when fitted via [`Self::with_zz_model`].
    pub fn zz_crosstalk(&self) -> Option<&DistanceMatrix> {
        self.zz_crosstalk.as_ref()
    }

    /// The grouping kernels, built on the same crosstalk matrix TDM
    /// grouping scores with (the ZZ matrix after
    /// [`Self::with_zz_model`], the XY matrix otherwise).
    pub fn kernels(&self) -> &PairKernels {
        &self.kernels
    }

    /// Verifies the context matches the planner's resolved chip and
    /// weights.
    ///
    /// # Errors
    ///
    /// [`PlanError::InvalidConfig`] on a qubit-count or weight mismatch.
    pub(crate) fn check(&self, chip: &Chip, weights: EquivalentWeights) -> Result<(), PlanError> {
        if chip.num_qubits() != self.num_qubits {
            return Err(PlanError::InvalidConfig(
                "plan context was built for a different chip",
            ));
        }
        if weights != self.weights {
            return Err(PlanError::InvalidConfig(
                "plan context was built with different equivalent-distance weights",
            ));
        }
        Ok(())
    }

    /// Cumulative number of contexts built in this process (test probe).
    pub fn build_count() -> u64 {
        BUILDS.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PlannerConfig, TdmConfig, YoutiaoPlanner};
    use youtiao_chip::topology;

    #[test]
    fn context_plans_identically_to_internal_matrices() {
        let chip = topology::square_grid(5, 5);
        let ctx = PlanContext::build(&chip, None, EquivalentWeights::balanced());
        for theta in [2.0, 4.0, 8.0] {
            let config = PlannerConfig {
                tdm: TdmConfig {
                    theta,
                    ..Default::default()
                },
                ..Default::default()
            };
            let direct = YoutiaoPlanner::new(&chip)
                .with_config(config.clone())
                .plan()
                .unwrap();
            let shared = YoutiaoPlanner::new(&chip)
                .with_config(config)
                .with_context(&ctx)
                .plan()
                .unwrap();
            assert_eq!(direct, shared, "theta={theta}");
        }
    }

    #[test]
    fn context_with_model_matches_model_planning() {
        use youtiao_noise::data::{synthesize, CrosstalkKind, SynthConfig};
        use youtiao_noise::fit::{fit_crosstalk_model, FitConfig};
        let chip = topology::square_grid(4, 4);
        let samples = synthesize(&chip, CrosstalkKind::Xy, &SynthConfig::xy(), 5);
        let model = fit_crosstalk_model(&samples, &FitConfig::fast()).unwrap();
        let ctx = PlanContext::build(&chip, Some(&model), EquivalentWeights::balanced());
        let direct = YoutiaoPlanner::new(&chip)
            .with_crosstalk_model(&model)
            .plan()
            .unwrap();
        let shared = YoutiaoPlanner::new(&chip)
            .with_crosstalk_model(&model)
            .with_context(&ctx)
            .plan()
            .unwrap();
        assert_eq!(direct, shared);
    }

    #[test]
    fn context_skips_the_matrices_stage() {
        let chip = topology::square_grid(4, 4);
        let ctx = PlanContext::build(&chip, None, EquivalentWeights::balanced());
        let mut names = Vec::new();
        YoutiaoPlanner::new(&chip)
            .with_context(&ctx)
            .plan_with_hook(&mut |name, _| names.push(name))
            .unwrap();
        assert!(!names.contains(&"matrices"), "{names:?}");
        // The context's kernels are reused too — no local rebuild.
        assert!(!names.contains(&"kernels"), "{names:?}");
        assert!(names.contains(&"fdm_grouping"));
    }

    #[test]
    fn mismatched_context_is_rejected() {
        let chip = topology::square_grid(4, 4);
        let other = topology::square_grid(3, 3);
        let ctx = PlanContext::build(&other, None, EquivalentWeights::balanced());
        assert!(matches!(
            YoutiaoPlanner::new(&chip).with_context(&ctx).plan(),
            Err(PlanError::InvalidConfig(_))
        ));

        let ctx = PlanContext::build(&chip, None, EquivalentWeights::balanced());
        let config = PlannerConfig {
            weights: EquivalentWeights::new(0.9, 0.1).unwrap(),
            ..Default::default()
        };
        assert!(matches!(
            YoutiaoPlanner::new(&chip)
                .with_config(config)
                .with_context(&ctx)
                .plan(),
            Err(PlanError::InvalidConfig(_))
        ));
    }

    #[test]
    fn build_count_probe_advances() {
        let chip = topology::linear(4);
        let before = PlanContext::build_count();
        let _ctx = PlanContext::build(&chip, None, EquivalentWeights::balanced());
        assert!(PlanContext::build_count() > before);
    }

    #[test]
    fn zz_context_matches_zz_planning() {
        use youtiao_noise::data::{synthesize, CrosstalkKind, SynthConfig};
        use youtiao_noise::fit::{fit_crosstalk_model, FitConfig};
        let chip = topology::square_grid(4, 4);
        let xy = fit_crosstalk_model(
            &synthesize(&chip, CrosstalkKind::Xy, &SynthConfig::xy(), 5),
            &FitConfig::fast(),
        )
        .unwrap();
        let zz = fit_crosstalk_model(
            &synthesize(&chip, CrosstalkKind::Zz, &SynthConfig::zz(), 5),
            &FitConfig::fast(),
        )
        .unwrap();
        let ctx = PlanContext::build(&chip, Some(&xy), EquivalentWeights::balanced())
            .with_zz_model(&chip, &zz);
        assert!(ctx.zz_crosstalk().is_some());
        let direct = YoutiaoPlanner::new(&chip)
            .with_crosstalk_model(&xy)
            .with_zz_model(&zz)
            .plan()
            .unwrap();
        let shared = YoutiaoPlanner::new(&chip)
            .with_crosstalk_model(&xy)
            .with_zz_model(&zz)
            .with_context(&ctx)
            .plan()
            .unwrap();
        assert_eq!(direct, shared);
    }
}
