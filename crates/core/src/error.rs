//! Error type for wiring-plan construction.

use std::error::Error;
use std::fmt;

use youtiao_chip::QubitId;

/// Errors produced while building a wiring plan.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlanError {
    /// A configuration knob had an invalid value.
    InvalidConfig(&'static str),
    /// Frequency allocation ran out of cells even after applying the
    /// crowded-reuse rule.
    FrequencyCrowded {
        /// The qubit that could not be placed.
        qubit: QubitId,
    },
    /// The chip has no qubits to plan for.
    EmptyChip,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            PlanError::FrequencyCrowded { qubit } => {
                write!(f, "no frequency cell available for {qubit}")
            }
            PlanError::EmptyChip => write!(f, "chip has no qubits"),
        }
    }
}

impl Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert!(PlanError::InvalidConfig("capacity")
            .to_string()
            .contains("capacity"));
        assert!(PlanError::FrequencyCrowded {
            qubit: QubitId::new(3)
        }
        .to_string()
        .contains("q3"));
        assert!(!PlanError::EmptyChip.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlanError>();
    }
}
