//! Deterministic intra-plan parallel execution.
//!
//! [`ParallelExec`] is the planner's small scoped-thread fan-out
//! primitive, reusing the sweep engine's index-ordered-merge pattern:
//! workers pull item indices from an atomic counter, send `(index,
//! result)` pairs back over a channel, and the caller slots results
//! into an index-ordered vector. Because the merge order is the *item*
//! order — never the completion order — every consumer observes
//! results exactly as a serial loop would produce them, so plans stay
//! **byte-identical across any thread count** (the PR 4 / PR 7
//! determinism contract, extended from "kernelized = naive" to
//! "parallel = serial").
//!
//! Rules the planner's parallel stages follow (DESIGN.md §4j):
//!
//! 1. **Index-ordered merge** — concurrent per-item outputs are always
//!    reassembled in item-index order before anything downstream reads
//!    them; completion order is unobservable.
//! 2. **Fixed-order reduction** — when per-thread partial buffers must
//!    be combined (zone-chunked cell scoring), the reduction walks the
//!    chunks in fixed ascending order, and no floating-point sum is
//!    ever split across threads (IEEE addition is not associative).
//! 3. **Serial fast path** — one thread or one item short-circuits to
//!    a plain loop with zero thread overhead, and that loop is the
//!    semantic definition the parallel path must reproduce.
//!
//! Worker panics propagate to the caller when the scope joins, so a
//! poisoned stage cannot silently return partial results.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// A deterministic scoped-thread executor for the planner's
/// embarrassingly-parallel stages (per-region grouping/refinement,
/// frequency-band allocation, scaling-row fills, kernel table builds).
///
/// Cheap to construct — it owns no threads; each [`Self::run`] spawns
/// short-lived scoped workers. The thread count is resolved once at
/// construction: `0` means one per available core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelExec {
    threads: usize,
}

impl ParallelExec {
    /// Creates an executor with `threads` workers; `0` resolves to one
    /// per available core (as reported by the OS, min 1).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            threads
        };
        ParallelExec { threads }
    }

    /// A serial executor (the planner default).
    pub fn serial() -> Self {
        ParallelExec { threads: 1 }
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether [`Self::run`] would actually fan out for `items` items.
    pub fn is_parallel_for(&self, items: usize) -> bool {
        self.threads > 1 && items > 1
    }

    /// Maps `f` over `0..items`, returning the results in index order.
    ///
    /// With one thread (or fewer than two items) this is a plain serial
    /// loop. Otherwise workers pull indices from an atomic counter and
    /// the results are merged strictly in index order, so the returned
    /// vector is identical to the serial loop's no matter how the
    /// workers raced.
    ///
    /// # Panics
    ///
    /// Re-raises any worker panic when the scope joins.
    pub fn run<R, F>(&self, items: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if !self.is_parallel_for(items) {
            return (0..items).map(f).collect();
        }
        let workers = self.threads.min(items);
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        let mut slots: Vec<Option<R>> = Vec::with_capacity(items);
        slots.resize_with(items, || None);
        std::thread::scope(|s| {
            let next = &next;
            let f = &f;
            for _ in 0..workers {
                let tx = tx.clone();
                s.spawn(move || loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= items {
                        break;
                    }
                    if tx.send((index, f(index))).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (index, result) in rx {
                slots[index] = Some(result);
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("every index produced a result"))
            .collect()
    }

    /// Runs two independent closures, concurrently when this executor
    /// has more than one thread, and returns `(a(), b())`.
    ///
    /// The pair order is fixed regardless of which closure finished
    /// first, so downstream consumers see the same tuple a serial
    /// `(a(), b())` evaluation produces.
    ///
    /// # Panics
    ///
    /// Re-raises any closure panic when the scope joins.
    pub fn join<RA, RB, FA, FB>(&self, a: FA, b: FB) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
        FA: FnOnce() -> RA + Send,
        FB: FnOnce() -> RB + Send,
    {
        if self.threads <= 1 {
            return (a(), b());
        }
        std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            let rb = hb.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
            (ra, rb)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_threads_resolves_to_available_cores() {
        assert!(ParallelExec::new(0).threads() >= 1);
        assert_eq!(ParallelExec::new(3).threads(), 3);
        assert_eq!(ParallelExec::serial().threads(), 1);
    }

    #[test]
    fn run_merges_in_index_order_across_thread_counts() {
        let expected: Vec<usize> = (0..37).map(|i| i * i).collect();
        for threads in [1, 2, 4, 8] {
            let exec = ParallelExec::new(threads);
            assert_eq!(exec.run(37, |i| i * i), expected, "{threads} threads");
        }
    }

    #[test]
    fn run_handles_empty_and_singleton_inputs() {
        let exec = ParallelExec::new(4);
        assert_eq!(exec.run(0, |i| i), Vec::<usize>::new());
        assert_eq!(exec.run(1, |i| i + 10), vec![10]);
        assert!(!exec.is_parallel_for(1));
        assert!(exec.is_parallel_for(2));
    }

    #[test]
    fn join_returns_results_in_closure_order() {
        for threads in [1, 4] {
            let exec = ParallelExec::new(threads);
            let (a, b) = exec.join(|| "first", || 2u32);
            assert_eq!((a, b), ("first", 2));
        }
    }

    #[test]
    fn worker_panics_propagate() {
        let exec = ParallelExec::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec.run(8, |i| {
                assert!(i != 5, "boom");
                i
            })
        }));
        assert!(result.is_err());
    }
}
