//! Noise-aware FDM qubit grouping (§4.2).
//!
//! Qubits that share an FDM XY line must sit far apart in frequency, and
//! qubits that are physically or topologically close are *naturally*
//! separated in frequency during chip design — so the grouping rule is:
//! put nearby qubits (in equivalent distance) on the same line. The
//! paper's 3-step greedy flow grows each line from a seed by repeatedly
//! adding the unassigned qubit with the smallest equivalent distance to
//! any current member (the frontier minimum of steps 2–3).

use youtiao_chip::distance::DistanceMatrix;
use youtiao_chip::{Chip, QubitId};

/// A group of qubits sharing one FDM XY control line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdmLine {
    qubits: Vec<QubitId>,
}

impl FdmLine {
    /// Creates a line from its member qubits.
    pub fn new(qubits: Vec<QubitId>) -> Self {
        FdmLine { qubits }
    }

    /// The qubits on this line, in the order they were grouped.
    pub fn qubits(&self) -> &[QubitId] {
        &self.qubits
    }

    /// Number of qubits multiplexed on the line.
    pub fn len(&self) -> usize {
        self.qubits.len()
    }

    /// Returns `true` for a line with no qubits.
    pub fn is_empty(&self) -> bool {
        self.qubits.is_empty()
    }

    /// Returns `true` when the line carries `q`.
    pub fn contains(&self, q: QubitId) -> bool {
        self.qubits.contains(&q)
    }
}

/// Groups every qubit of `chip` onto FDM lines of at most `capacity`
/// qubits using the paper's greedy nearest-equivalent-distance flow.
///
/// `matrix` is the equivalent-distance matrix (typically from the fitted
/// crosstalk model's weights). Grouping is deterministic: the first line
/// seeds at the lowest unassigned qubit id.
///
/// # Panics
///
/// Panics if `capacity == 0` or `matrix` does not match the chip size.
///
/// # Example
///
/// ```
/// use youtiao_chip::distance::{equivalent_matrix, EquivalentWeights};
/// use youtiao_chip::topology;
/// use youtiao_core::fdm::group_fdm;
///
/// let chip = topology::square_grid(3, 3);
/// let m = equivalent_matrix(&chip, EquivalentWeights::balanced());
/// let lines = group_fdm(&chip, &m, 5);
/// assert_eq!(lines.len(), 2); // ceil(9 / 5)
/// assert_eq!(lines.iter().map(|l| l.len()).sum::<usize>(), 9);
/// ```
pub fn group_fdm(chip: &Chip, matrix: &DistanceMatrix, capacity: usize) -> Vec<FdmLine> {
    group_fdm_subset(
        chip,
        matrix,
        capacity,
        &chip.qubit_ids().collect::<Vec<_>>(),
    )
}

/// Like [`group_fdm`], but restricted to a subset of qubits — used by the
/// generative chip partition to group each region independently.
///
/// # Panics
///
/// Panics if `capacity == 0`, the matrix does not match the chip size, or
/// `subset` contains duplicates.
pub fn group_fdm_subset(
    chip: &Chip,
    matrix: &DistanceMatrix,
    capacity: usize,
    subset: &[QubitId],
) -> Vec<FdmLine> {
    assert!(capacity > 0, "fdm line capacity must be positive");
    assert_eq!(matrix.len(), chip.num_qubits(), "matrix size mismatch");
    let mut unassigned: Vec<QubitId> = subset.to_vec();
    unassigned.sort_unstable();
    let before_dedup = unassigned.len();
    unassigned.dedup();
    assert_eq!(before_dedup, unassigned.len(), "subset contains duplicates");

    let mut lines = Vec::new();
    while let Some(&seed) = unassigned.first() {
        let mut members = vec![seed];
        unassigned.retain(|&q| q != seed);
        while members.len() < capacity && !unassigned.is_empty() {
            // Frontier minimum: the unassigned qubit with the smallest
            // equivalent distance to any current member (§4.2 step 3
            // compares the per-member nearests and takes the shortest).
            let (best_idx, _) = unassigned
                .iter()
                .enumerate()
                .map(|(i, &q)| {
                    let d = members
                        .iter()
                        .map(|&m| matrix.get(m, q))
                        .fold(f64::INFINITY, f64::min);
                    (i, d)
                })
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("unassigned is non-empty");
            members.push(unassigned.remove(best_idx));
        }
        lines.push(FdmLine::new(members));
    }
    lines
}

/// Baseline grouping used for comparison: chip-local clustering that
/// fills lines in raw qubit-id (layout) order, ignoring the equivalent
/// graph entirely.
pub fn group_fdm_local(chip: &Chip, capacity: usize) -> Vec<FdmLine> {
    assert!(capacity > 0, "fdm line capacity must be positive");
    let ids: Vec<QubitId> = chip.qubit_ids().collect();
    ids.chunks(capacity)
        .map(|chunk| FdmLine::new(chunk.to_vec()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtiao_chip::distance::{equivalent_matrix, EquivalentWeights};
    use youtiao_chip::topology;

    fn grid_and_matrix(n: usize) -> (youtiao_chip::Chip, DistanceMatrix) {
        let chip = topology::square_grid(n, n);
        let m = equivalent_matrix(&chip, EquivalentWeights::balanced());
        (chip, m)
    }

    #[test]
    fn covers_all_qubits_exactly_once() {
        let (chip, m) = grid_and_matrix(4);
        let lines = group_fdm(&chip, &m, 5);
        let mut seen: Vec<QubitId> = lines.iter().flat_map(|l| l.qubits().to_vec()).collect();
        seen.sort_unstable();
        let all: Vec<QubitId> = chip.qubit_ids().collect();
        assert_eq!(seen, all);
    }

    #[test]
    fn respects_capacity() {
        let (chip, m) = grid_and_matrix(5);
        for cap in 1..=6 {
            let lines = group_fdm(&chip, &m, cap);
            assert!(lines.iter().all(|l| l.len() <= cap && !l.is_empty()));
            assert_eq!(lines.len(), 25_usize.div_ceil(cap));
        }
    }

    #[test]
    fn line_count_is_ceiling_of_ratio() {
        let (chip, m) = grid_and_matrix(6);
        let lines = group_fdm(&chip, &m, 5);
        assert_eq!(lines.len(), 8); // ceil(36/5)
        let lines4 = group_fdm(&chip, &m, 4);
        assert_eq!(lines4.len(), 9);
    }

    #[test]
    fn groups_are_spatially_coherent() {
        // On a 4x4 grid with capacity 4, the first group should stay in a
        // corner neighbourhood, not span the chip.
        let (chip, m) = grid_and_matrix(4);
        let lines = group_fdm(&chip, &m, 4);
        let first = &lines[0];
        let chip_ref = &chip;
        let max_d = first
            .qubits()
            .iter()
            .flat_map(|&a| {
                first
                    .qubits()
                    .iter()
                    .map(move |&b| chip_ref.physical_distance(a, b))
            })
            .fold(0.0, f64::max);
        // A frontier-greedy group may form an L or a row, but never spans
        // the full chip diagonal (~4.24 on a 4x4 grid).
        assert!(max_d <= 3.2, "first group spread {max_d}");
    }

    #[test]
    fn subset_grouping_only_touches_subset() {
        let (chip, m) = grid_and_matrix(3);
        let subset: Vec<QubitId> = [0u32, 1, 3, 4].iter().map(|&i| i.into()).collect();
        let lines = group_fdm_subset(&chip, &m, 3, &subset);
        let members: Vec<QubitId> = lines.iter().flat_map(|l| l.qubits().to_vec()).collect();
        assert_eq!(members.len(), 4);
        assert!(members.iter().all(|q| subset.contains(q)));
    }

    #[test]
    fn local_baseline_fills_in_id_order() {
        let chip = topology::square_grid(3, 3);
        let lines = group_fdm_local(&chip, 4);
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0].qubits(),
            &[0u32.into(), 1u32.into(), 2u32.into(), 3u32.into()]
        );
        assert_eq!(lines[2].len(), 1);
    }

    #[test]
    fn deterministic() {
        let (chip, m) = grid_and_matrix(4);
        assert_eq!(group_fdm(&chip, &m, 5), group_fdm(&chip, &m, 5));
    }

    #[test]
    #[should_panic(expected = "duplicates")]
    fn duplicate_subset_panics() {
        let (chip, m) = grid_and_matrix(3);
        let _ = group_fdm_subset(&chip, &m, 3, &[0u32.into(), 0u32.into()]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let (chip, m) = grid_and_matrix(3);
        let _ = group_fdm(&chip, &m, 0);
    }
}
