//! Two-level coarse-grained frequency allocation (§4.2).
//!
//! Level 1 (in-line): the effective 4–7 GHz band is split into as many
//! zones as the longest FDM line; the k-th qubit of every line lands in
//! zone k, guaranteeing large in-line spacing for the cryogenic band-pass
//! filters. Level 2 (cross-line): within each zone, qubits pick the
//! 10 MHz cell minimizing model-predicted crosstalk against all already
//! placed qubits; when a zone's cells are exhausted (frequency crowding),
//! a cell is *reused* by the pair with the least mutual crosstalk. A
//! final in-group swap pass lowers the global objective further.
//!
//! The production path is kernelized over [`FreqKernels`]: cell scoring
//! iterates only the placed positive-crosstalk neighbors of the qubit
//! being placed, spectral-proximity factors come from the lazily-filled
//! [`ScalingTable`] over the cell lattice, and each candidate swap is
//! judged by an exact O(deg(a)+deg(b)) objective delta instead of two
//! full O(n²) [`FrequencyPlan::objective`] sweeps. The [`naive`] module
//! retains the direct implementation (same semantics, no tables) and
//! the differential suite below pins the two byte-identical across
//! layouts, configs, and bands.

use std::time::Instant;

use youtiao_chip::distance::DistanceMatrix;
use youtiao_chip::{Chip, QubitId};
use youtiao_noise::model::frequency_scaling;

use crate::error::PlanError;
use crate::exec::ParallelExec;
use crate::fdm::FdmLine;
use crate::freq_kernels::{BandLattice, FreqKernels, ScalingTable};
use crate::scratch::Scratch;

/// Cells per zone-chunk when cell scoring fans out across threads. Zones
/// of the default configs are far smaller (60 XY / 4 readout cells), so
/// the parallel path only engages at chiplet-scale bands where a zone
/// holds thousands of cells; below that the chunked sweep is pure
/// overhead.
const PAR_SCORE_CHUNK: usize = 1024;

/// Configuration of the frequency allocator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreqConfig {
    /// Usable qubit band in GHz (the paper uses 4–7 GHz).
    pub band_ghz: (f64, f64),
    /// Cell granularity within a zone, MHz (the paper uses 10 MHz).
    pub cell_mhz: f64,
    /// Number of greedy in-group swap passes after placement.
    pub swap_passes: usize,
    /// When set, each qubit may only be tuned within ± this range (GHz)
    /// of its fabrication base frequency — §4.2 notes the Z-line tuning
    /// range is "typically within 50 MHz". `None` treats frequencies as
    /// free design variables (a chip-design-time allocation).
    pub tuning_range_ghz: Option<f64>,
}

impl FreqConfig {
    /// A post-fabrication retuning configuration: cells must lie within
    /// ±50 MHz of each qubit's base frequency.
    pub fn retuning() -> Self {
        FreqConfig {
            tuning_range_ghz: Some(0.05),
            ..Default::default()
        }
    }
}

impl Default for FreqConfig {
    fn default() -> Self {
        FreqConfig {
            band_ghz: (4.0, 7.0),
            cell_mhz: 10.0,
            swap_passes: 2,
            tuning_range_ghz: None,
        }
    }
}

/// A per-qubit frequency assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyPlan {
    freqs_ghz: Vec<f64>,
    zones: usize,
    zone_of: Vec<usize>,
    reused_cells: usize,
}

impl FrequencyPlan {
    /// Assembles a plan from explicit per-qubit frequencies. Low-level:
    /// intended for baselines and tests; prefer [`allocate_frequencies`].
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths.
    pub fn from_frequencies(freqs_ghz: Vec<f64>, zones: usize, zone_of: Vec<usize>) -> Self {
        assert_eq!(freqs_ghz.len(), zone_of.len(), "length mismatch");
        FrequencyPlan {
            freqs_ghz,
            zones,
            zone_of,
            reused_cells: 0,
        }
    }

    /// Overrides the reused-cell count — for callers (the repair
    /// patcher) that assemble a plan via [`Self::from_frequencies`] but
    /// recount crowding-driven reuse themselves.
    pub fn with_reused_cells(mut self, reused_cells: usize) -> Self {
        self.reused_cells = reused_cells;
        self
    }

    /// Frequency of qubit `q` in GHz.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn frequency_ghz(&self, q: QubitId) -> f64 {
        self.freqs_ghz[q.index()]
    }

    /// Zone index of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn zone_of(&self, q: QubitId) -> usize {
        self.zone_of[q.index()]
    }

    /// Number of zones the band was split into.
    pub fn zones(&self) -> usize {
        self.zones
    }

    /// How many cells had to be reused due to frequency crowding.
    pub fn reused_cells(&self) -> usize {
        self.reused_cells
    }

    /// All frequencies in qubit-id order, GHz.
    pub fn frequencies(&self) -> &[f64] {
        &self.freqs_ghz
    }

    /// Swaps the complete assignments (frequency **and** zone) of two
    /// qubits.
    ///
    /// Swapping within one FDM line preserves every in-line invariant —
    /// the line's multiset of (frequency, zone) assignments is unchanged
    /// — which is what the multi-die link reconciliation relies on to
    /// fix cross-die collisions without replanning a die.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn swap_assignments(&mut self, a: QubitId, b: QubitId) {
        self.freqs_ghz.swap(a.index(), b.index());
        self.zone_of.swap(a.index(), b.index());
    }

    /// The global crosstalk objective: the sum over qubit pairs of
    /// predicted crosstalk scaled by spectral proximity.
    pub fn objective(&self, xtalk: &DistanceMatrix) -> f64 {
        let mut total = 0.0;
        for (a, b, x) in xtalk.iter_pairs() {
            if x > 0.0 {
                let df = self.freqs_ghz[a.index()] - self.freqs_ghz[b.index()];
                total += x * frequency_scaling(df);
            }
        }
        total
    }
}

/// The number of zones a band is split into for `lines`: the longest
/// line (so every line's members fit in distinct zones), at least one.
fn zones_for(lines: &[FdmLine]) -> usize {
    lines.iter().map(FdmLine::len).max().unwrap_or(0).max(1)
}

/// Zone of the `k`-th member of a line: design-time allocation spreads
/// line members across zones; post-fabrication retuning must stay in
/// the zone the base frequency already sits in.
fn zone_for(config: &FreqConfig, lattice: &BandLattice, base: f64, k: usize) -> usize {
    match config.tuning_range_ghz {
        None => k % lattice.zones(),
        Some(_) => (((base - lattice.lo()) / lattice.zone_width()).floor() as isize)
            .clamp(0, lattice.zones() as isize - 1) as usize,
    }
}

/// The allocator's cell-selection policy: prefer empty cells over
/// reuse, letting a reused cell win only when it is *strictly cheaper*
/// than the best empty cell. Shared by the kernelized allocator, the
/// [`naive`] reference, and `repair::patch_frequencies` so the three
/// cannot drift.
#[inline]
pub fn cell_better(best: &Option<(usize, f64, bool)>, cost: f64, reuse: bool) -> bool {
    match *best {
        None => true,
        Some((_, best_cost, best_reuse)) => match (reuse, best_reuse) {
            // An empty cell displaces a reused incumbent unless the
            // incumbent is strictly cheaper.
            (false, true) => cost <= best_cost,
            // A reused cell displaces an empty incumbent only when
            // strictly cheaper; like-for-like keeps the earlier cell
            // on ties.
            _ => cost < best_cost,
        },
    }
}

/// Allocates frequencies for all qubits of `chip` grouped into `lines`,
/// minimizing crosstalk predicted by the symmetric `xtalk` matrix
/// (`xtalk[a][b]` = model-predicted crosstalk between qubits `a`, `b`).
///
/// Convenience wrapper that builds [`FreqKernels`] locally; sweep and
/// repair paths should pass a context's prebuilt kernels to
/// [`allocate_frequencies_kernels`] instead.
///
/// # Errors
///
/// * [`PlanError::InvalidConfig`] — degenerate band or cell size.
///
/// # Panics
///
/// Panics if `lines` does not cover every chip qubit exactly once or if
/// `xtalk` has the wrong dimension.
pub fn allocate_frequencies(
    chip: &Chip,
    lines: &[FdmLine],
    xtalk: &DistanceMatrix,
    config: &FreqConfig,
) -> Result<FrequencyPlan, PlanError> {
    let kernels = FreqKernels::build(xtalk);
    allocate_frequencies_kernels(chip, lines, &kernels, xtalk, config, &mut |_, _| {})
}

/// Kernelized frequency allocation (the production path).
///
/// `kernels` must be built from `xtalk` (the raw matrix is still needed
/// for the reuse penalty, which scores direct crosstalk with cell
/// occupants regardless of sign). `hook` receives the `"place"` and
/// `"swap"` sub-stage durations.
///
/// # Errors
///
/// * [`PlanError::InvalidConfig`] — degenerate band or cell size.
/// * [`PlanError::FrequencyCrowded`] — a qubit has no feasible cell in
///   its zone (only possible with a tuning-range constraint).
///
/// # Panics
///
/// Panics if `lines` does not cover every chip qubit exactly once or if
/// `xtalk`/`kernels` have the wrong dimension.
pub fn allocate_frequencies_kernels(
    chip: &Chip,
    lines: &[FdmLine],
    kernels: &FreqKernels,
    xtalk: &DistanceMatrix,
    config: &FreqConfig,
    hook: &mut dyn FnMut(&'static str, std::time::Duration),
) -> Result<FrequencyPlan, PlanError> {
    allocate_frequencies_kernels_in(
        chip,
        lines,
        kernels,
        xtalk,
        config,
        hook,
        &mut Scratch::default(),
        &ParallelExec::serial(),
    )
}

/// [`allocate_frequencies_kernels`] with explicit scratch and executor:
/// working buffers (scaling table, slot map, cell scores, placed-
/// neighbor lists) come from the arena and go back when the allocation
/// finishes, and `exec` drives the deterministic parallel levers —
/// up-front scaling-row materialization and fixed-order zone-chunked
/// cell scoring. Output is byte-identical to the serial path for any
/// thread count (per-cell sums keep their placement-order term
/// sequence; chunks partition the zone and merge in ascending order).
///
/// # Errors
///
/// As [`allocate_frequencies_kernels`].
///
/// # Panics
///
/// As [`allocate_frequencies_kernels`].
#[allow(clippy::too_many_arguments)] // the planner's internal entry point
pub fn allocate_frequencies_kernels_in(
    chip: &Chip,
    lines: &[FdmLine],
    kernels: &FreqKernels,
    xtalk: &DistanceMatrix,
    config: &FreqConfig,
    hook: &mut dyn FnMut(&'static str, std::time::Duration),
    scratch: &mut Scratch,
    exec: &ParallelExec,
) -> Result<FrequencyPlan, PlanError> {
    let n = chip.num_qubits();
    assert_eq!(xtalk.len(), n, "crosstalk matrix size mismatch");
    assert_eq!(kernels.num_qubits(), n, "freq kernels size mismatch");
    let covered: usize = lines.iter().map(FdmLine::len).sum();
    assert_eq!(covered, n, "lines must cover every qubit exactly once");

    let lattice = BandLattice::new(config, zones_for(lines))?;
    let zones = lattice.zones();
    let cells_per_zone = lattice.cells_per_zone();

    let started = Instant::now();
    let mut table = ScalingTable::new_in(&lattice, scratch);
    if exec.is_parallel_for(table.slots()) {
        // Pre-materialize every scaling row concurrently (bit-identical
        // to the lazy fills) so the serial placement loop below never
        // stalls on a row fill.
        table.materialize_rows(exec);
    }
    // `freqs` and `zone_of` escape into the returned plan, so they are
    // plain allocations, not arena checkouts.
    let mut freqs = vec![f64::NAN; n];
    let mut zone_of = vec![0usize; n];
    let mut slot_of = scratch.take_usize(n, usize::MAX);
    let mut occupancy: Vec<Vec<Vec<QubitId>>> = vec![vec![Vec::new(); cells_per_zone]; zones];
    // Per-qubit list of already-placed positive-crosstalk neighbors in
    // placement order — the exact term sequence the naive path sums, so
    // costs stay bit-identical.
    let mut placed_neighbors = scratch.take_pair_lists(n);
    let mut assigned = scratch.take_bool(n, false);
    let mut reused_cells = 0usize;

    let mut scores = scratch.take_f64(cells_per_zone, 0.0);
    for line in lines {
        for (k, &q) in line.qubits().iter().enumerate() {
            let base = chip
                .qubit(q)
                .expect("qubit id in range")
                .base_frequency_ghz();
            let zone = zone_for(config, &lattice, base, k);
            zone_of[q.index()] = zone;
            // Score every cell against the placed qubits, transposed:
            // each placed neighbor's scaling row is walked once over the
            // zone's contiguous slot range, accumulating into per-cell
            // scores. Per cell the terms still land in placement order,
            // so every sum stays bit-identical to a per-cell sweep.
            let zone_base = table.slot(zone, 0);
            let neighbors = &placed_neighbors[q.index()];
            let chunk_count = cells_per_zone.div_ceil(PAR_SCORE_CHUNK.max(1));
            if exec.is_parallel_for(chunk_count) && !neighbors.is_empty() {
                // Zone-chunked scoring: each worker owns a disjoint
                // contiguous cell range and sums *all* neighbor terms
                // for its cells, so no floating-point sum is split
                // across threads; partials land back in ascending chunk
                // order (fixed-order reduction, DESIGN.md §4j).
                let (table, slot_of) = (&table, &slot_of);
                let partials = exec.run(chunk_count, |c| {
                    let start = c * PAR_SCORE_CHUNK;
                    let end = cells_per_zone.min(start + PAR_SCORE_CHUNK);
                    let mut part = vec![0.0f64; end - start];
                    for &(p, x) in neighbors {
                        let row =
                            &table.row(slot_of[p as usize])[zone_base + start..zone_base + end];
                        for (s, r) in part.iter_mut().zip(row) {
                            *s += x * r;
                        }
                    }
                    part
                });
                let mut base = 0;
                for part in partials {
                    scores[base..base + part.len()].copy_from_slice(&part);
                    base += part.len();
                }
            } else {
                scores.fill(0.0);
                for &(p, x) in neighbors {
                    let row =
                        &table.row(slot_of[p as usize])[zone_base..zone_base + cells_per_zone];
                    for (s, r) in scores.iter_mut().zip(row) {
                        *s += x * r;
                    }
                }
            }
            // Empty cells score crosstalk vs placed qubits; occupied
            // cells additionally carry a reuse penalty equal to the
            // direct crosstalk with their occupants.
            let mut best: Option<(usize, f64, bool)> = None;
            #[allow(clippy::needless_range_loop)] // occupancy[zone] is borrowed per cell
            for cell in 0..cells_per_zone {
                let slot = table.slot(zone, cell);
                let f = table.freq(slot);
                if let Some(range) = config.tuning_range_ghz {
                    if (f - base).abs() > range {
                        continue;
                    }
                }
                let occupants = &occupancy[zone][cell];
                let reuse = !occupants.is_empty();
                let mut cost = scores[cell];
                // Frequency reuse (same cell) is only tolerable between
                // minimally-interacting pairs; weight it heavily.
                if reuse {
                    for &p in occupants {
                        cost += 100.0 * xtalk.get(q, p);
                    }
                }
                if cell_better(&best, cost, reuse) {
                    best = Some((cell, cost, reuse));
                }
            }
            let (cell, _, reuse) = best.ok_or(PlanError::FrequencyCrowded { qubit: q })?;
            if reuse {
                reused_cells += 1;
            }
            let slot = table.slot(zone, cell);
            freqs[q.index()] = table.freq(slot);
            slot_of[q.index()] = slot;
            table.ensure_row(slot);
            occupancy[zone][cell].push(q);
            assigned[q.index()] = true;
            for &(p, x) in kernels.neighbors(q) {
                if !assigned[p as usize] {
                    placed_neighbors[p as usize].push((q.index() as u32, x));
                }
            }
        }
    }
    hook("place", started.elapsed());

    // In-group swap pass (§4.2 constraint 3): swapping two members of
    // the same line exchanges their zones/cells; keep a swap exactly
    // when its local objective delta is negative (the (a, b) pair term
    // is invariant under the swap, so the delta over the two neighbor
    // lists is the entire objective change).
    let started = Instant::now();
    for _ in 0..config.swap_passes {
        let mut improved = false;
        for line in lines {
            let members = line.qubits();
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    let (a, b) = (members[i], members[j]);
                    if let Some(range) = config.tuning_range_ghz {
                        // A swap must keep both qubits inside their
                        // tuning windows.
                        let base_a = chip.qubit(a).expect("in range").base_frequency_ghz();
                        let base_b = chip.qubit(b).expect("in range").base_frequency_ghz();
                        let fa = freqs[a.index()];
                        let fb = freqs[b.index()];
                        if (fb - base_a).abs() > range || (fa - base_b).abs() > range {
                            continue;
                        }
                    }
                    if table.swap_delta(kernels, &slot_of, a, b) < 0.0 {
                        freqs.swap(a.index(), b.index());
                        zone_of.swap(a.index(), b.index());
                        slot_of.swap(a.index(), b.index());
                        improved = true;
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    hook("swap", started.elapsed());

    table.retire_into(scratch);
    scratch.retire_usize(slot_of);
    scratch.retire_pair_lists(placed_neighbors);
    scratch.retire_bool(assigned);
    scratch.retire_f64(scores);

    Ok(FrequencyPlan {
        freqs_ghz: freqs,
        zones,
        zone_of,
        reused_cells,
    })
}

/// Baseline allocation used for comparison (George et al. and the naive
/// baseline): in-line spacing only. Each line spreads its qubits evenly
/// across the band in member order, every line using the *same* pattern —
/// maximizing in-line separation but ignoring cross-line collisions.
///
/// # Panics
///
/// Panics if `lines` does not cover every chip qubit exactly once —
/// the same coverage contract as [`allocate_frequencies`]; a partial
/// cover would leave `NaN` frequencies that poison
/// [`FrequencyPlan::objective`] comparisons downstream.
pub fn allocate_in_line_only(chip: &Chip, lines: &[FdmLine], config: &FreqConfig) -> FrequencyPlan {
    let n = chip.num_qubits();
    let covered: usize = lines.iter().map(FdmLine::len).sum();
    assert_eq!(covered, n, "lines must cover every qubit exactly once");
    let (lo, hi) = config.band_ghz;
    let zones = zones_for(lines);
    let zone_width = (hi - lo) / zones as f64;
    let mut freqs = vec![f64::NAN; n];
    let mut zone_of = vec![0usize; n];
    for line in lines {
        for (k, &q) in line.qubits().iter().enumerate() {
            let zone = k % zones;
            freqs[q.index()] = lo + zone as f64 * zone_width + zone_width / 2.0;
            zone_of[q.index()] = zone;
        }
    }
    FrequencyPlan {
        freqs_ghz: freqs,
        zones,
        zone_of,
        reused_cells: 0,
    }
}

/// The direct (table-free) reference implementation of the allocator.
///
/// Semantically identical to [`allocate_frequencies_kernels`] — same
/// lattice, same cell-selection policy, same exact swap criterion — but
/// every crosstalk and `frequency_scaling` term is computed on the
/// spot. The differential suite pins the two byte-identical; the bench
/// harness times the gap.
#[cfg(any(test, feature = "naive"))]
pub mod naive {
    use super::*;

    /// Objective change from swapping the frequencies of `a` and `b`,
    /// computed the way the original allocator paid for it: a full
    /// sweep over every qubit pair — the cost of the two
    /// `objective()` recomputes the pre-kernel swap pass ran per
    /// candidate. The sweep accumulates per-pair term *differences*
    /// instead of two global sums, so unchanged pairs contribute an
    /// exact `+0.0` and the comparison needs no `1e-15` noise margin.
    /// The `(a, b)` pair term is invariant (`frequency_scaling` is
    /// even), so it lands on `+0.0` too.
    ///
    /// The kernelized [`ScalingTable::swap_delta`] emits the identical
    /// term sequence (lexicographic pair order) while touching only the
    /// O(deg(a)+deg(b)) pairs that actually move.
    ///
    /// [`ScalingTable::swap_delta`]: crate::freq_kernels::ScalingTable::swap_delta
    pub fn swap_delta(xtalk: &DistanceMatrix, freqs: &[f64], a: QubitId, b: QubitId) -> f64 {
        let (ai, bi) = (a.index(), b.index());
        let after = |i: usize| {
            if i == ai {
                freqs[bi]
            } else if i == bi {
                freqs[ai]
            } else {
                freqs[i]
            }
        };
        let mut delta = 0.0;
        for (p, q, x) in xtalk.iter_pairs() {
            if x > 0.0 {
                let was = frequency_scaling(freqs[p.index()] - freqs[q.index()]);
                let now = frequency_scaling(after(p.index()) - after(q.index()));
                delta += x * (now - was);
            }
        }
        delta
    }

    /// Reference allocator: identical semantics to the kernelized path,
    /// no precomputed tables.
    ///
    /// # Errors
    ///
    /// Same as [`allocate_frequencies_kernels`].
    ///
    /// # Panics
    ///
    /// Same as [`allocate_frequencies_kernels`].
    pub fn allocate_frequencies_naive(
        chip: &Chip,
        lines: &[FdmLine],
        xtalk: &DistanceMatrix,
        config: &FreqConfig,
    ) -> Result<FrequencyPlan, PlanError> {
        allocate_with_policy(chip, lines, xtalk, config, false)
    }

    /// The pre-fix cell-selection predicate — `(reuse == breuse && cost
    /// < bc) || (!reuse && breuse)` — which could flip reuse→empty but
    /// never let a strictly cheaper reused cell win. Kept only so the
    /// quality test can show the corrected policy never worsens the
    /// objective.
    #[cfg(test)]
    pub(crate) fn allocate_frequencies_legacy_reuse(
        chip: &Chip,
        lines: &[FdmLine],
        xtalk: &DistanceMatrix,
        config: &FreqConfig,
    ) -> Result<FrequencyPlan, PlanError> {
        allocate_with_policy(chip, lines, xtalk, config, true)
    }

    fn allocate_with_policy(
        chip: &Chip,
        lines: &[FdmLine],
        xtalk: &DistanceMatrix,
        config: &FreqConfig,
        legacy_reuse: bool,
    ) -> Result<FrequencyPlan, PlanError> {
        let n = chip.num_qubits();
        assert_eq!(xtalk.len(), n, "crosstalk matrix size mismatch");
        let covered: usize = lines.iter().map(FdmLine::len).sum();
        assert_eq!(covered, n, "lines must cover every qubit exactly once");

        let lattice = BandLattice::new(config, zones_for(lines))?;
        let zones = lattice.zones();
        let cells_per_zone = lattice.cells_per_zone();

        let mut freqs = vec![f64::NAN; n];
        let mut zone_of = vec![0usize; n];
        let mut occupancy: Vec<Vec<Vec<QubitId>>> = vec![vec![Vec::new(); cells_per_zone]; zones];
        let mut placed: Vec<QubitId> = Vec::new();
        let mut reused_cells = 0usize;

        for line in lines {
            for (k, &q) in line.qubits().iter().enumerate() {
                let base = chip
                    .qubit(q)
                    .expect("qubit id in range")
                    .base_frequency_ghz();
                let zone = zone_for(config, &lattice, base, k);
                zone_of[q.index()] = zone;
                let mut best: Option<(usize, f64, bool)> = None;
                #[allow(clippy::needless_range_loop)] // occupancy[zone] is borrowed per cell
                for cell in 0..cells_per_zone {
                    let f = lattice.cell_freq(zone, cell);
                    if let Some(range) = config.tuning_range_ghz {
                        if (f - base).abs() > range {
                            continue;
                        }
                    }
                    let occupants = &occupancy[zone][cell];
                    let reuse = !occupants.is_empty();
                    let mut cost = 0.0;
                    for &p in &placed {
                        let x = xtalk.get(q, p);
                        if x > 0.0 {
                            cost += x * frequency_scaling(f - freqs[p.index()]);
                        }
                    }
                    if reuse {
                        for &p in occupants {
                            cost += 100.0 * xtalk.get(q, p);
                        }
                    }
                    let better = if legacy_reuse {
                        match best {
                            None => true,
                            Some((_, bc, breuse)) => {
                                (reuse == breuse && cost < bc) || (!reuse && breuse)
                            }
                        }
                    } else {
                        cell_better(&best, cost, reuse)
                    };
                    if better {
                        best = Some((cell, cost, reuse));
                    }
                }
                let (cell, _, reuse) = best.ok_or(PlanError::FrequencyCrowded { qubit: q })?;
                if reuse {
                    reused_cells += 1;
                }
                freqs[q.index()] = lattice.cell_freq(zone, cell);
                occupancy[zone][cell].push(q);
                placed.push(q);
            }
        }

        for _ in 0..config.swap_passes {
            let mut improved = false;
            for line in lines {
                let members = line.qubits();
                for i in 0..members.len() {
                    for j in (i + 1)..members.len() {
                        let (a, b) = (members[i], members[j]);
                        if let Some(range) = config.tuning_range_ghz {
                            let base_a = chip.qubit(a).expect("in range").base_frequency_ghz();
                            let base_b = chip.qubit(b).expect("in range").base_frequency_ghz();
                            let fa = freqs[a.index()];
                            let fb = freqs[b.index()];
                            if (fb - base_a).abs() > range || (fa - base_b).abs() > range {
                                continue;
                            }
                        }
                        if swap_delta(xtalk, &freqs, a, b) < 0.0 {
                            freqs.swap(a.index(), b.index());
                            zone_of.swap(a.index(), b.index());
                            improved = true;
                        }
                    }
                }
            }
            if !improved {
                break;
            }
        }

        Ok(FrequencyPlan {
            freqs_ghz: freqs,
            zones,
            zone_of,
            reused_cells,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fdm::{group_fdm, group_fdm_local};
    use youtiao_chip::distance::{equivalent_matrix, EquivalentWeights};
    use youtiao_chip::topology;

    /// Synthetic crosstalk matrix: exponential decay of equivalent distance.
    fn xtalk_matrix(chip: &Chip) -> DistanceMatrix {
        let eq = equivalent_matrix(chip, EquivalentWeights::balanced());
        let mut m = DistanceMatrix::zeros(chip.num_qubits());
        for (a, b, d) in eq.iter_pairs() {
            let x = if d.is_finite() {
                0.01 * (-d / 2.0).exp()
            } else {
                0.0
            };
            m.set(a, b, x);
        }
        m
    }

    use youtiao_chip::Chip;

    fn setup(n: usize, cap: usize) -> (Chip, Vec<FdmLine>, DistanceMatrix) {
        let chip = topology::square_grid(n, n);
        let eq = equivalent_matrix(&chip, EquivalentWeights::balanced());
        let lines = group_fdm(&chip, &eq, cap);
        let x = xtalk_matrix(&chip);
        (chip, lines, x)
    }

    #[test]
    fn all_qubits_get_in_band_frequencies() {
        let (chip, lines, x) = setup(4, 5);
        let plan = allocate_frequencies(&chip, &lines, &x, &FreqConfig::default()).unwrap();
        for q in chip.qubit_ids() {
            let f = plan.frequency_ghz(q);
            assert!((4.0..=7.0).contains(&f), "{q} at {f}");
        }
    }

    #[test]
    fn in_line_qubits_land_in_distinct_zones() {
        let (chip, lines, x) = setup(5, 5);
        let plan = allocate_frequencies(&chip, &lines, &x, &FreqConfig::default()).unwrap();
        for line in &lines {
            if line.len() <= plan.zones() {
                let mut zones: Vec<usize> =
                    line.qubits().iter().map(|&q| plan.zone_of(q)).collect();
                zones.sort_unstable();
                zones.dedup();
                assert_eq!(zones.len(), line.len(), "zone collision within a line");
            }
        }
    }

    #[test]
    fn in_line_spacing_is_large() {
        let (chip, lines, x) = setup(5, 5);
        let _ = chip;
        let plan = allocate_frequencies(&chip, &lines, &x, &FreqConfig::default()).unwrap();
        for line in &lines {
            let qs = line.qubits();
            for i in 0..qs.len() {
                for j in (i + 1)..qs.len() {
                    let df = (plan.frequency_ghz(qs[i]) - plan.frequency_ghz(qs[j])).abs();
                    assert!(df > 0.2, "in-line spacing {df} GHz too small");
                }
            }
        }
    }

    #[test]
    fn optimized_beats_in_line_only() {
        let (chip, lines, x) = setup(6, 5);
        let optimized = allocate_frequencies(&chip, &lines, &x, &FreqConfig::default()).unwrap();
        let local_lines = group_fdm_local(&chip, 5);
        let naive = allocate_in_line_only(&chip, &local_lines, &FreqConfig::default());
        assert!(
            optimized.objective(&x) < naive.objective(&x),
            "optimized {} vs naive {}",
            optimized.objective(&x),
            naive.objective(&x)
        );
    }

    #[test]
    fn no_reuse_needed_on_small_chips() {
        let (chip, lines, x) = setup(4, 5);
        let plan = allocate_frequencies(&chip, &lines, &x, &FreqConfig::default()).unwrap();
        assert_eq!(plan.reused_cells(), 0);
    }

    #[test]
    fn crowding_triggers_reuse_not_failure() {
        // Capacity 2 -> 2 zones of 1.5 GHz; 600 MHz cells leave only two
        // cells per zone for ~5 qubits: reuse must kick in.
        let (chip, lines, x) = setup(3, 2);
        let cfg = FreqConfig {
            cell_mhz: 600.0,
            ..Default::default()
        };
        let plan = allocate_frequencies(&chip, &lines, &x, &cfg).unwrap();
        assert!(plan.reused_cells() > 0);
        // Frequencies still in band.
        for q in chip.qubit_ids() {
            assert!((4.0..=7.0).contains(&plan.frequency_ghz(q)));
        }
    }

    #[test]
    fn invalid_config_rejected() {
        let (chip, lines, x) = setup(3, 5);
        let bad = FreqConfig {
            band_ghz: (7.0, 4.0),
            ..Default::default()
        };
        assert!(matches!(
            allocate_frequencies(&chip, &lines, &x, &bad),
            Err(PlanError::InvalidConfig(_))
        ));
        let bad2 = FreqConfig {
            cell_mhz: 0.0,
            ..Default::default()
        };
        assert!(allocate_frequencies(&chip, &lines, &x, &bad2).is_err());
        let bad3 = FreqConfig {
            cell_mhz: 5000.0,
            ..Default::default()
        };
        assert!(allocate_frequencies(&chip, &lines, &x, &bad3).is_err());
    }

    #[test]
    fn in_line_only_reuses_same_pattern_across_lines() {
        let chip = topology::square_grid(3, 3);
        let lines = group_fdm_local(&chip, 3);
        let plan = allocate_in_line_only(&chip, &lines, &FreqConfig::default());
        // First member of each line shares the same frequency — the
        // cross-line collision the paper's baseline suffers from.
        let f0 = plan.frequency_ghz(lines[0].qubits()[0]);
        let f3 = plan.frequency_ghz(lines[1].qubits()[0]);
        assert_eq!(f0, f3);
    }

    /// Satellite regression: a partial cover used to silently produce
    /// `NaN` frequencies that poison `objective()` comparisons — now it
    /// panics like `allocate_frequencies` does.
    #[test]
    #[should_panic(expected = "lines must cover every qubit exactly once")]
    fn in_line_only_rejects_partial_coverage() {
        let chip = topology::square_grid(3, 3);
        let mut lines = group_fdm_local(&chip, 3);
        lines.pop();
        let _ = allocate_in_line_only(&chip, &lines, &FreqConfig::default());
    }

    #[test]
    fn retuning_mode_stays_within_tuning_window() {
        let (chip, lines, x) = setup(5, 5);
        let cfg = FreqConfig::retuning();
        let plan = allocate_frequencies(&chip, &lines, &x, &cfg).unwrap();
        for q in chip.qubit_ids() {
            let base = chip.qubit(q).unwrap().base_frequency_ghz();
            let f = plan.frequency_ghz(q);
            assert!(
                (f - base).abs() <= 0.05 + 1e-12,
                "{q}: tuned {f} from base {base}"
            );
        }
    }

    #[test]
    fn retuning_zones_follow_base_frequencies() {
        let (chip, lines, x) = setup(4, 4);
        let cfg = FreqConfig::retuning();
        let plan = allocate_frequencies(&chip, &lines, &x, &cfg).unwrap();
        let (lo, hi) = cfg.band_ghz;
        let zone_width = (hi - lo) / plan.zones() as f64;
        for q in chip.qubit_ids() {
            let base = chip.qubit(q).unwrap().base_frequency_ghz();
            let expected = (((base - lo) / zone_width).floor() as isize)
                .clamp(0, plan.zones() as isize - 1) as usize;
            assert_eq!(plan.zone_of(q), expected, "{q}");
        }
    }

    #[test]
    fn objective_decreases_or_equal_with_more_swap_passes() {
        let (chip, lines, x) = setup(5, 5);
        let none = allocate_frequencies(
            &chip,
            &lines,
            &x,
            &FreqConfig {
                swap_passes: 0,
                ..Default::default()
            },
        )
        .unwrap();
        let some = allocate_frequencies(
            &chip,
            &lines,
            &x,
            &FreqConfig {
                swap_passes: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(some.objective(&x) <= none.objective(&x) + 1e-12);
    }

    /// Satellite regression: each kept swap now requires an exactly
    /// negative delta, so once a pass finds no improving swap, more
    /// passes change nothing — the plan is a fixed point, not a
    /// tolerance-dependent orbit.
    #[test]
    fn swap_passes_reach_a_deterministic_fixed_point() {
        let (chip, lines, x) = setup(5, 4);
        let at = |passes: usize| {
            allocate_frequencies(
                &chip,
                &lines,
                &x,
                &FreqConfig {
                    swap_passes: passes,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let converged = at(8);
        assert_eq!(converged, at(9));
        assert_eq!(converged, at(32));
        // And the allocator is deterministic run-to-run.
        assert_eq!(converged, at(8));
    }

    /// Satellite quality test: letting a strictly cheaper reused cell
    /// win (the documented policy) never worsens the objective relative
    /// to the legacy predicate that could only flip reuse→empty.
    #[test]
    fn corrected_reuse_policy_never_worsens_the_objective() {
        for (n, cap, cell_mhz) in [(3, 2, 600.0), (4, 3, 400.0), (5, 4, 300.0), (4, 2, 700.0)] {
            let (chip, lines, x) = setup(n, cap);
            let cfg = FreqConfig {
                cell_mhz,
                ..Default::default()
            };
            let corrected = naive::allocate_frequencies_naive(&chip, &lines, &x, &cfg).unwrap();
            let legacy = naive::allocate_frequencies_legacy_reuse(&chip, &lines, &x, &cfg).unwrap();
            assert!(
                corrected.objective(&x) <= legacy.objective(&x) + 1e-12,
                "{n}x{n} cap {cap} cell {cell_mhz}: corrected {} vs legacy {}",
                corrected.objective(&x),
                legacy.objective(&x)
            );
        }
    }

    /// Differential suite: the kernelized allocator must be
    /// byte-identical to the naive reference across layouts (grid,
    /// surface code, heavy hex), configs (design-time and retuning),
    /// and bands (qubit XY and readout) — including error cases.
    mod differential {
        use super::*;
        use youtiao_chip::surface::SurfaceCode;

        fn readout_band() -> FreqConfig {
            // Mirrors PlannerConfig::default().readout_freq.
            FreqConfig {
                band_ghz: (7.0, 8.0),
                cell_mhz: 30.0,
                swap_passes: 1,
                tuning_range_ghz: None,
            }
        }

        fn check(chip: &Chip, lines: &[FdmLine], x: &DistanceMatrix, cfg: &FreqConfig) {
            let kernels = FreqKernels::build(x);
            let fast = allocate_frequencies_kernels(chip, lines, &kernels, x, cfg, &mut |_, _| {});
            let slow = naive::allocate_frequencies_naive(chip, lines, x, cfg);
            match (&fast, &slow) {
                (Ok(f), Ok(s)) => {
                    assert_eq!(f, s, "plans diverged");
                    for (a, b) in f.frequencies().iter().zip(s.frequencies()) {
                        assert_eq!(a.to_bits(), b.to_bits(), "frequency bits diverged");
                    }
                }
                _ => assert_eq!(fast, slow, "error outcomes diverged"),
            }
        }

        fn suite(chip: Chip, cap: usize) {
            let eq = equivalent_matrix(&chip, EquivalentWeights::balanced());
            let lines = group_fdm(&chip, &eq, cap);
            let x = xtalk_matrix(&chip);
            for cfg in [
                FreqConfig::default(),
                FreqConfig::retuning(),
                readout_band(),
                FreqConfig {
                    swap_passes: 4,
                    ..Default::default()
                },
            ] {
                check(&chip, &lines, &x, &cfg);
            }
        }

        #[test]
        fn grid_matches() {
            suite(topology::square_grid(5, 5), 5);
            suite(topology::square_grid(6, 6), 4);
        }

        #[test]
        fn surface_code_matches() {
            suite(SurfaceCode::rotated(3).into_chip(), 5);
            suite(SurfaceCode::rotated(5).into_chip(), 5);
        }

        #[test]
        fn heavy_hex_matches() {
            suite(topology::heavy_hexagon(2, 2), 5);
            suite(topology::heavy_hexagon(3, 2), 4);
        }

        #[test]
        fn crowded_reuse_matches() {
            // Crowded zones exercise the reuse penalty and the
            // corrected reuse-vs-empty policy on both paths.
            for (n, cap, cell_mhz) in [(3, 2, 600.0), (4, 3, 500.0), (5, 3, 400.0)] {
                let (chip, lines, x) = setup(n, cap);
                let cfg = FreqConfig {
                    cell_mhz,
                    ..Default::default()
                };
                let plan = allocate_frequencies(&chip, &lines, &x, &cfg).unwrap();
                assert!(plan.reused_cells() > 0, "{n}x{n} not crowded");
                check(&chip, &lines, &x, &cfg);
            }
        }

        #[test]
        fn infeasible_configs_error_identically() {
            let (chip, lines, x) = setup(3, 5);
            for bad in [
                FreqConfig {
                    band_ghz: (7.0, 4.0),
                    ..Default::default()
                },
                FreqConfig {
                    cell_mhz: 0.0,
                    ..Default::default()
                },
                FreqConfig {
                    cell_mhz: 5000.0,
                    ..Default::default()
                },
            ] {
                check(&chip, &lines, &x, &bad);
            }
        }
    }
}
