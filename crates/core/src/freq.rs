//! Two-level coarse-grained frequency allocation (§4.2).
//!
//! Level 1 (in-line): the effective 4–7 GHz band is split into as many
//! zones as the longest FDM line; the k-th qubit of every line lands in
//! zone k, guaranteeing large in-line spacing for the cryogenic band-pass
//! filters. Level 2 (cross-line): within each zone, qubits pick the
//! 10 MHz cell minimizing model-predicted crosstalk against all already
//! placed qubits; when a zone's cells are exhausted (frequency crowding),
//! a cell is *reused* by the pair with the least mutual crosstalk. A
//! final in-group swap pass lowers the global objective further.

use youtiao_chip::distance::DistanceMatrix;
use youtiao_chip::{Chip, QubitId};
use youtiao_noise::model::frequency_scaling;

use crate::error::PlanError;
use crate::fdm::FdmLine;

/// Configuration of the frequency allocator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreqConfig {
    /// Usable qubit band in GHz (the paper uses 4–7 GHz).
    pub band_ghz: (f64, f64),
    /// Cell granularity within a zone, MHz (the paper uses 10 MHz).
    pub cell_mhz: f64,
    /// Number of greedy in-group swap passes after placement.
    pub swap_passes: usize,
    /// When set, each qubit may only be tuned within ± this range (GHz)
    /// of its fabrication base frequency — §4.2 notes the Z-line tuning
    /// range is "typically within 50 MHz". `None` treats frequencies as
    /// free design variables (a chip-design-time allocation).
    pub tuning_range_ghz: Option<f64>,
}

impl FreqConfig {
    /// A post-fabrication retuning configuration: cells must lie within
    /// ±50 MHz of each qubit's base frequency.
    pub fn retuning() -> Self {
        FreqConfig {
            tuning_range_ghz: Some(0.05),
            ..Default::default()
        }
    }
}

impl Default for FreqConfig {
    fn default() -> Self {
        FreqConfig {
            band_ghz: (4.0, 7.0),
            cell_mhz: 10.0,
            swap_passes: 2,
            tuning_range_ghz: None,
        }
    }
}

/// A per-qubit frequency assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyPlan {
    freqs_ghz: Vec<f64>,
    zones: usize,
    zone_of: Vec<usize>,
    reused_cells: usize,
}

impl FrequencyPlan {
    /// Assembles a plan from explicit per-qubit frequencies. Low-level:
    /// intended for baselines and tests; prefer [`allocate_frequencies`].
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths.
    pub fn from_frequencies(freqs_ghz: Vec<f64>, zones: usize, zone_of: Vec<usize>) -> Self {
        assert_eq!(freqs_ghz.len(), zone_of.len(), "length mismatch");
        FrequencyPlan {
            freqs_ghz,
            zones,
            zone_of,
            reused_cells: 0,
        }
    }

    /// Overrides the reused-cell count — for callers (the repair
    /// patcher) that assemble a plan via [`Self::from_frequencies`] but
    /// recount crowding-driven reuse themselves.
    pub fn with_reused_cells(mut self, reused_cells: usize) -> Self {
        self.reused_cells = reused_cells;
        self
    }

    /// Frequency of qubit `q` in GHz.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn frequency_ghz(&self, q: QubitId) -> f64 {
        self.freqs_ghz[q.index()]
    }

    /// Zone index of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn zone_of(&self, q: QubitId) -> usize {
        self.zone_of[q.index()]
    }

    /// Number of zones the band was split into.
    pub fn zones(&self) -> usize {
        self.zones
    }

    /// How many cells had to be reused due to frequency crowding.
    pub fn reused_cells(&self) -> usize {
        self.reused_cells
    }

    /// All frequencies in qubit-id order, GHz.
    pub fn frequencies(&self) -> &[f64] {
        &self.freqs_ghz
    }

    /// The global crosstalk objective: the sum over qubit pairs of
    /// predicted crosstalk scaled by spectral proximity.
    pub fn objective(&self, xtalk: &DistanceMatrix) -> f64 {
        let mut total = 0.0;
        for (a, b, x) in xtalk.iter_pairs() {
            if x > 0.0 {
                let df = self.freqs_ghz[a.index()] - self.freqs_ghz[b.index()];
                total += x * frequency_scaling(df);
            }
        }
        total
    }
}

/// Allocates frequencies for all qubits of `chip` grouped into `lines`,
/// minimizing crosstalk predicted by the symmetric `xtalk` matrix
/// (`xtalk[a][b]` = model-predicted crosstalk between qubits `a`, `b`).
///
/// # Errors
///
/// * [`PlanError::InvalidConfig`] — degenerate band or cell size.
///
/// # Panics
///
/// Panics if `lines` does not cover every chip qubit exactly once or if
/// `xtalk` has the wrong dimension.
pub fn allocate_frequencies(
    chip: &Chip,
    lines: &[FdmLine],
    xtalk: &DistanceMatrix,
    config: &FreqConfig,
) -> Result<FrequencyPlan, PlanError> {
    let n = chip.num_qubits();
    assert_eq!(xtalk.len(), n, "crosstalk matrix size mismatch");
    let covered: usize = lines.iter().map(FdmLine::len).sum();
    assert_eq!(covered, n, "lines must cover every qubit exactly once");

    let (lo, hi) = config.band_ghz;
    if hi <= lo || config.cell_mhz <= 0.0 {
        return Err(PlanError::InvalidConfig("frequency band or cell size"));
    }
    let zones = lines.iter().map(FdmLine::len).max().unwrap_or(0).max(1);
    let zone_width = (hi - lo) / zones as f64;
    let cells_per_zone = ((zone_width * 1000.0) / config.cell_mhz).floor() as usize;
    if cells_per_zone == 0 {
        return Err(PlanError::InvalidConfig("cell size exceeds zone width"));
    }
    let cell_freq = |zone: usize, cell: usize| -> f64 {
        lo + zone as f64 * zone_width + (cell as f64 + 0.5) * config.cell_mhz / 1000.0
    };

    let mut freqs = vec![f64::NAN; n];
    let mut zone_of = vec![0usize; n];
    let mut occupancy: Vec<Vec<Vec<QubitId>>> = vec![vec![Vec::new(); cells_per_zone]; zones];
    let mut placed: Vec<QubitId> = Vec::new();
    let mut reused_cells = 0usize;

    for line in lines {
        for (k, &q) in line.qubits().iter().enumerate() {
            let base = chip
                .qubit(q)
                .expect("qubit id in range")
                .base_frequency_ghz();
            // Design-time allocation spreads line members across zones;
            // post-fabrication retuning must stay in the zone the base
            // frequency already sits in.
            let zone = match config.tuning_range_ghz {
                None => k % zones,
                Some(_) => (((base - lo) / zone_width).floor() as isize)
                    .clamp(0, zones as isize - 1) as usize,
            };
            zone_of[q.index()] = zone;
            // Score every cell: empty cells score crosstalk vs placed
            // qubits; occupied cells additionally carry a reuse penalty
            // equal to the direct crosstalk with their occupants.
            let mut best: Option<(usize, f64, bool)> = None;
            #[allow(clippy::needless_range_loop)] // occupancy[zone] is borrowed per cell
            for cell in 0..cells_per_zone {
                let f = cell_freq(zone, cell);
                if let Some(range) = config.tuning_range_ghz {
                    if (f - base).abs() > range {
                        continue;
                    }
                }
                let occupants = &occupancy[zone][cell];
                let reuse = !occupants.is_empty();
                let mut cost = 0.0;
                for &p in &placed {
                    let x = xtalk.get(q, p);
                    if x > 0.0 {
                        cost += x * frequency_scaling(f - freqs[p.index()]);
                    }
                }
                // Frequency reuse (same cell) is only tolerable between
                // minimally-interacting pairs; weight it heavily.
                if reuse {
                    for &p in occupants {
                        cost += 100.0 * xtalk.get(q, p);
                    }
                }
                let better = match best {
                    None => true,
                    Some((_, bc, breuse)) => {
                        // Prefer empty cells over reuse unless strictly cheaper.
                        (reuse == breuse && cost < bc) || (!reuse && breuse)
                    }
                };
                if better {
                    best = Some((cell, cost, reuse));
                }
            }
            let (cell, _, reuse) = best.ok_or(PlanError::FrequencyCrowded { qubit: q })?;
            if reuse {
                reused_cells += 1;
            }
            freqs[q.index()] = cell_freq(zone, cell);
            occupancy[zone][cell].push(q);
            placed.push(q);
        }
    }

    let mut plan = FrequencyPlan {
        freqs_ghz: freqs,
        zones,
        zone_of,
        reused_cells,
    };

    // In-group swap pass (§4.2 constraint 3): swapping two members of the
    // same line exchanges their zones/cells; keep a swap when it lowers
    // the global objective.
    for _ in 0..config.swap_passes {
        let mut improved = false;
        for line in lines {
            let members = line.qubits();
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    let (a, b) = (members[i], members[j]);
                    if let Some(range) = config.tuning_range_ghz {
                        // A swap must keep both qubits inside their
                        // tuning windows.
                        let base_a = chip.qubit(a).expect("in range").base_frequency_ghz();
                        let base_b = chip.qubit(b).expect("in range").base_frequency_ghz();
                        let fa = plan.freqs_ghz[a.index()];
                        let fb = plan.freqs_ghz[b.index()];
                        if (fb - base_a).abs() > range || (fa - base_b).abs() > range {
                            continue;
                        }
                    }
                    let before = plan.objective(xtalk);
                    plan.freqs_ghz.swap(a.index(), b.index());
                    plan.zone_of.swap(a.index(), b.index());
                    if plan.objective(xtalk) + 1e-15 < before {
                        improved = true;
                    } else {
                        plan.freqs_ghz.swap(a.index(), b.index());
                        plan.zone_of.swap(a.index(), b.index());
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }

    Ok(plan)
}

/// Baseline allocation used for comparison (George et al. and the naive
/// baseline): in-line spacing only. Each line spreads its qubits evenly
/// across the band in member order, every line using the *same* pattern —
/// maximizing in-line separation but ignoring cross-line collisions.
pub fn allocate_in_line_only(chip: &Chip, lines: &[FdmLine], config: &FreqConfig) -> FrequencyPlan {
    let n = chip.num_qubits();
    let (lo, hi) = config.band_ghz;
    let zones = lines.iter().map(FdmLine::len).max().unwrap_or(0).max(1);
    let zone_width = (hi - lo) / zones as f64;
    let mut freqs = vec![f64::NAN; n];
    let mut zone_of = vec![0usize; n];
    for line in lines {
        for (k, &q) in line.qubits().iter().enumerate() {
            let zone = k % zones;
            freqs[q.index()] = lo + zone as f64 * zone_width + zone_width / 2.0;
            zone_of[q.index()] = zone;
        }
    }
    FrequencyPlan {
        freqs_ghz: freqs,
        zones,
        zone_of,
        reused_cells: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fdm::{group_fdm, group_fdm_local};
    use youtiao_chip::distance::{equivalent_matrix, EquivalentWeights};
    use youtiao_chip::topology;

    /// Synthetic crosstalk matrix: exponential decay of equivalent distance.
    fn xtalk_matrix(chip: &Chip) -> DistanceMatrix {
        let eq = equivalent_matrix(chip, EquivalentWeights::balanced());
        let mut m = DistanceMatrix::zeros(chip.num_qubits());
        for (a, b, d) in eq.iter_pairs() {
            let x = if d.is_finite() {
                0.01 * (-d / 2.0).exp()
            } else {
                0.0
            };
            m.set(a, b, x);
        }
        m
    }

    use youtiao_chip::Chip;

    fn setup(n: usize, cap: usize) -> (Chip, Vec<FdmLine>, DistanceMatrix) {
        let chip = topology::square_grid(n, n);
        let eq = equivalent_matrix(&chip, EquivalentWeights::balanced());
        let lines = group_fdm(&chip, &eq, cap);
        let x = xtalk_matrix(&chip);
        (chip, lines, x)
    }

    #[test]
    fn all_qubits_get_in_band_frequencies() {
        let (chip, lines, x) = setup(4, 5);
        let plan = allocate_frequencies(&chip, &lines, &x, &FreqConfig::default()).unwrap();
        for q in chip.qubit_ids() {
            let f = plan.frequency_ghz(q);
            assert!((4.0..=7.0).contains(&f), "{q} at {f}");
        }
    }

    #[test]
    fn in_line_qubits_land_in_distinct_zones() {
        let (chip, lines, x) = setup(5, 5);
        let plan = allocate_frequencies(&chip, &lines, &x, &FreqConfig::default()).unwrap();
        for line in &lines {
            if line.len() <= plan.zones() {
                let mut zones: Vec<usize> =
                    line.qubits().iter().map(|&q| plan.zone_of(q)).collect();
                zones.sort_unstable();
                zones.dedup();
                assert_eq!(zones.len(), line.len(), "zone collision within a line");
            }
        }
    }

    #[test]
    fn in_line_spacing_is_large() {
        let (chip, lines, x) = setup(5, 5);
        let _ = chip;
        let plan = allocate_frequencies(&chip, &lines, &x, &FreqConfig::default()).unwrap();
        for line in &lines {
            let qs = line.qubits();
            for i in 0..qs.len() {
                for j in (i + 1)..qs.len() {
                    let df = (plan.frequency_ghz(qs[i]) - plan.frequency_ghz(qs[j])).abs();
                    assert!(df > 0.2, "in-line spacing {df} GHz too small");
                }
            }
        }
    }

    #[test]
    fn optimized_beats_in_line_only() {
        let (chip, lines, x) = setup(6, 5);
        let optimized = allocate_frequencies(&chip, &lines, &x, &FreqConfig::default()).unwrap();
        let local_lines = group_fdm_local(&chip, 5);
        let naive = allocate_in_line_only(&chip, &local_lines, &FreqConfig::default());
        assert!(
            optimized.objective(&x) < naive.objective(&x),
            "optimized {} vs naive {}",
            optimized.objective(&x),
            naive.objective(&x)
        );
    }

    #[test]
    fn no_reuse_needed_on_small_chips() {
        let (chip, lines, x) = setup(4, 5);
        let plan = allocate_frequencies(&chip, &lines, &x, &FreqConfig::default()).unwrap();
        assert_eq!(plan.reused_cells(), 0);
    }

    #[test]
    fn crowding_triggers_reuse_not_failure() {
        // Capacity 2 -> 2 zones of 1.5 GHz; 600 MHz cells leave only two
        // cells per zone for ~5 qubits: reuse must kick in.
        let (chip, lines, x) = setup(3, 2);
        let cfg = FreqConfig {
            cell_mhz: 600.0,
            ..Default::default()
        };
        let plan = allocate_frequencies(&chip, &lines, &x, &cfg).unwrap();
        assert!(plan.reused_cells() > 0);
        // Frequencies still in band.
        for q in chip.qubit_ids() {
            assert!((4.0..=7.0).contains(&plan.frequency_ghz(q)));
        }
    }

    #[test]
    fn invalid_config_rejected() {
        let (chip, lines, x) = setup(3, 5);
        let bad = FreqConfig {
            band_ghz: (7.0, 4.0),
            ..Default::default()
        };
        assert!(matches!(
            allocate_frequencies(&chip, &lines, &x, &bad),
            Err(PlanError::InvalidConfig(_))
        ));
        let bad2 = FreqConfig {
            cell_mhz: 0.0,
            ..Default::default()
        };
        assert!(allocate_frequencies(&chip, &lines, &x, &bad2).is_err());
        let bad3 = FreqConfig {
            cell_mhz: 5000.0,
            ..Default::default()
        };
        assert!(allocate_frequencies(&chip, &lines, &x, &bad3).is_err());
    }

    #[test]
    fn in_line_only_reuses_same_pattern_across_lines() {
        let chip = topology::square_grid(3, 3);
        let lines = group_fdm_local(&chip, 3);
        let plan = allocate_in_line_only(&chip, &lines, &FreqConfig::default());
        // First member of each line shares the same frequency — the
        // cross-line collision the paper's baseline suffers from.
        let f0 = plan.frequency_ghz(lines[0].qubits()[0]);
        let f3 = plan.frequency_ghz(lines[1].qubits()[0]);
        assert_eq!(f0, f3);
    }

    #[test]
    fn retuning_mode_stays_within_tuning_window() {
        let (chip, lines, x) = setup(5, 5);
        let cfg = FreqConfig::retuning();
        let plan = allocate_frequencies(&chip, &lines, &x, &cfg).unwrap();
        for q in chip.qubit_ids() {
            let base = chip.qubit(q).unwrap().base_frequency_ghz();
            let f = plan.frequency_ghz(q);
            assert!(
                (f - base).abs() <= 0.05 + 1e-12,
                "{q}: tuned {f} from base {base}"
            );
        }
    }

    #[test]
    fn retuning_zones_follow_base_frequencies() {
        let (chip, lines, x) = setup(4, 4);
        let cfg = FreqConfig::retuning();
        let plan = allocate_frequencies(&chip, &lines, &x, &cfg).unwrap();
        let (lo, hi) = cfg.band_ghz;
        let zone_width = (hi - lo) / plan.zones() as f64;
        for q in chip.qubit_ids() {
            let base = chip.qubit(q).unwrap().base_frequency_ghz();
            let expected = (((base - lo) / zone_width).floor() as isize)
                .clamp(0, plan.zones() as isize - 1) as usize;
            assert_eq!(plan.zone_of(q), expected, "{q}");
        }
    }

    #[test]
    fn objective_decreases_or_equal_with_more_swap_passes() {
        let (chip, lines, x) = setup(5, 5);
        let none = allocate_frequencies(
            &chip,
            &lines,
            &x,
            &FreqConfig {
                swap_passes: 0,
                ..Default::default()
            },
        )
        .unwrap();
        let some = allocate_frequencies(
            &chip,
            &lines,
            &x,
            &FreqConfig {
                swap_passes: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(some.objective(&x) <= none.objective(&x) + 1e-12);
    }
}
