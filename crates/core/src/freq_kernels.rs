//! Precomputed kernels for frequency allocation (§4.2 hot loops).
//!
//! The two-level allocator's inner loops are dominated by two O(n)
//! scans per candidate cell: crosstalk lookups against *every* placed
//! qubit (most of which have zero crosstalk with the candidate) and
//! [`frequency_scaling`] evaluations at spectral offsets that always
//! lie on the `cell_mhz` lattice. Both are tabulable once per
//! (matrix, band) pair:
//!
//! * [`FreqKernels`] — sparse per-qubit neighbor lists over the
//!   crosstalk matrix: only pairs with strictly positive crosstalk
//!   contribute to the objective, and on physical chips that set is
//!   O(deg) per qubit, not O(n).
//! * [`BandLattice`] — the zone/cell grid of a band: every candidate
//!   frequency is `cell_freq(zone, cell)`, so the lattice is the single
//!   source of truth for the cell geometry shared by the allocator, the
//!   `freq::naive` reference, and `repair::patch_frequencies`.
//! * [`ScalingTable`] — `frequency_scaling` evaluated between lattice
//!   slots, filled lazily one row per *occupied* slot (at most
//!   `min(n, slots)` rows) so small problems never pay for the full
//!   slots² table.
//!
//! # Determinism contract
//!
//! Kernelized paths must produce plans *byte-identical* to the naive
//! reference. Table entries are therefore computed by the exact
//! expression the naive path evaluates — `frequency_scaling(f_row -
//! f_col)` on frequencies from the shared [`BandLattice::cell_freq`]
//! formula — and consumers rely on `frequency_scaling` being an even
//! function whose IEEE evaluation is sign-symmetric
//! (`frequency_scaling(-d)` is bit-equal to `frequency_scaling(d)`:
//! the quotient `d / γ` only flips sign and `x * x` discards it). The
//! `scaling_table_matches_frequency_scaling` test and the gated
//! proptests in `tests/properties.rs` pin both facts.

use std::sync::atomic::{AtomicU64, Ordering};

use youtiao_chip::distance::DistanceMatrix;
use youtiao_chip::QubitId;
use youtiao_noise::model::frequency_scaling;

use crate::error::PlanError;
use crate::exec::ParallelExec;
use crate::freq::FreqConfig;
use crate::scratch::Scratch;

/// Global count of [`FreqKernels::build`] calls — a probe for tests
/// asserting that sweeps and repairs reuse a context's kernels instead
/// of rebuilding O(n·deg) state per plan. Deliberately separate from
/// [`crate::kernels::PairKernels::build_count`] so existing probes keep
/// counting only grouping-kernel builds.
static BUILDS: AtomicU64 = AtomicU64::new(0);

/// Sparse crosstalk-neighbor lists: for each qubit, the (neighbor id,
/// crosstalk) pairs with strictly positive crosstalk, sorted ascending
/// by neighbor id. The crosstalk values are read straight from the
/// symmetric [`DistanceMatrix`], so `neighbors(a)` listing `(b, x)`
/// implies `neighbors(b)` lists `(a, x)` with the bit-identical `x`.
#[derive(Debug, Clone, PartialEq)]
pub struct FreqKernels {
    neighbors: Vec<Vec<(u32, f64)>>,
}

impl FreqKernels {
    /// Extracts the sparse neighbor lists from a crosstalk matrix.
    pub fn build(xtalk: &DistanceMatrix) -> Self {
        let n = xtalk.len();
        let mut neighbors = Vec::with_capacity(n);
        for i in 0..n {
            let a = QubitId::new(i as u32);
            let mut row = Vec::new();
            for j in 0..n {
                if j == i {
                    continue;
                }
                let x = xtalk.get(a, QubitId::new(j as u32));
                if x > 0.0 {
                    row.push((j as u32, x));
                }
            }
            neighbors.push(row);
        }
        BUILDS.fetch_add(1, Ordering::Relaxed);
        FreqKernels { neighbors }
    }

    /// Number of qubits the kernels were built for.
    pub fn num_qubits(&self) -> usize {
        self.neighbors.len()
    }

    /// The positive-crosstalk neighbors of `q`, ascending by id.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn neighbors(&self, q: QubitId) -> &[(u32, f64)] {
        &self.neighbors[q.index()]
    }

    /// Cumulative number of kernel builds in this process (test probe).
    pub fn build_count() -> u64 {
        BUILDS.load(Ordering::Relaxed)
    }
}

/// The zone/cell lattice of a frequency band: `zones` equal-width zones
/// over `band_ghz`, each split into `cell_mhz`-wide cells. Candidate
/// frequencies are cell centers; [`Self::cell_freq`] reproduces the
/// allocator's historical formula bit-for-bit so plans cannot move when
/// callers migrate to the shared lattice.
#[derive(Debug, Clone, PartialEq)]
pub struct BandLattice {
    lo: f64,
    zone_width: f64,
    cell_mhz: f64,
    zones: usize,
    cells_per_zone: usize,
}

/// Tolerance on the fractional cell count. `(zone_width * 1000) /
/// cell_mhz` is exact in real arithmetic for exact-division configs
/// (e.g. a 0.6 GHz zone at 600 MHz cells) but can float-round to
/// 0.99999…, losing a cell or spuriously reporting `InvalidConfig`.
/// The tolerance is far below any meaningful fractional cell.
const CELL_COUNT_EPS: f64 = 1e-9;

impl BandLattice {
    /// Builds the lattice for `config` with the given zone count.
    ///
    /// # Errors
    ///
    /// [`PlanError::InvalidConfig`] — degenerate band or cell size, or
    /// a cell wider than a zone.
    pub fn new(config: &FreqConfig, zones: usize) -> Result<Self, PlanError> {
        let (lo, hi) = config.band_ghz;
        if hi <= lo || config.cell_mhz <= 0.0 {
            return Err(PlanError::InvalidConfig("frequency band or cell size"));
        }
        let zones = zones.max(1);
        let zone_width = (hi - lo) / zones as f64;
        let cells_per_zone =
            ((zone_width * 1000.0) / config.cell_mhz + CELL_COUNT_EPS).floor() as usize;
        if cells_per_zone == 0 {
            return Err(PlanError::InvalidConfig("cell size exceeds zone width"));
        }
        Ok(BandLattice {
            lo,
            zone_width,
            cell_mhz: config.cell_mhz,
            zones,
            cells_per_zone,
        })
    }

    /// Low edge of the band, GHz.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Width of one zone, GHz.
    pub fn zone_width(&self) -> f64 {
        self.zone_width
    }

    /// Number of zones.
    pub fn zones(&self) -> usize {
        self.zones
    }

    /// Number of cells per zone.
    pub fn cells_per_zone(&self) -> usize {
        self.cells_per_zone
    }

    /// Total number of lattice slots (`zones * cells_per_zone`).
    pub fn slots(&self) -> usize {
        self.zones * self.cells_per_zone
    }

    /// Flat slot index of `(zone, cell)`.
    pub fn slot(&self, zone: usize, cell: usize) -> usize {
        debug_assert!(zone < self.zones && cell < self.cells_per_zone);
        zone * self.cells_per_zone + cell
    }

    /// Center frequency of `(zone, cell)`, GHz.
    pub fn cell_freq(&self, zone: usize, cell: usize) -> f64 {
        self.lo + zone as f64 * self.zone_width + (cell as f64 + 0.5) * self.cell_mhz / 1000.0
    }

    /// Recovers the cell index of a frequency known to lie in `zone`
    /// (rounding to the nearest cell center, clamped into range).
    pub fn cell_of(&self, zone: usize, f: f64) -> usize {
        let step = self.cell_mhz / 1000.0;
        let raw = ((f - self.lo - zone as f64 * self.zone_width) / step - 0.5).round();
        (raw as isize).clamp(0, self.cells_per_zone as isize - 1) as usize
    }
}

/// Lazily-filled table of `frequency_scaling` between lattice slots.
///
/// `row(s)[t]` is `frequency_scaling(freq(s) - freq(t))`. Rows are
/// computed on demand — the allocator ensures a row only when its slot
/// first becomes occupied — so at most `min(n, slots)` of the `slots`
/// rows are ever materialized.
#[derive(Debug, Clone)]
pub struct ScalingTable {
    freqs: Vec<f64>,
    cells_per_zone: usize,
    rows: Vec<Vec<f64>>,
}

impl ScalingTable {
    /// Prepares an empty table over `lattice` (slot frequencies only;
    /// no scaling rows yet).
    pub fn new(lattice: &BandLattice) -> Self {
        Self::new_in(lattice, &mut Scratch::default())
    }

    /// [`Self::new`] drawing the slot-frequency and row-table storage
    /// from a scratch arena; pair with [`Self::retire_into`] so the next
    /// allocation over the same band reuses the capacity — including the
    /// materialized rows' inner capacity, the table's dominant cost.
    pub fn new_in(lattice: &BandLattice, scratch: &mut Scratch) -> Self {
        let mut freqs = scratch.take_f64(lattice.slots(), 0.0);
        let mut slot = 0;
        for zone in 0..lattice.zones() {
            for cell in 0..lattice.cells_per_zone() {
                freqs[slot] = lattice.cell_freq(zone, cell);
                slot += 1;
            }
        }
        ScalingTable {
            freqs,
            cells_per_zone: lattice.cells_per_zone(),
            // Cleared inner vectors: an empty row is exactly the "not
            // yet materialized" marker `ensure_row` keys on.
            rows: scratch.take_rows(lattice.slots()),
        }
    }

    /// Consumes the table, retiring its storage into a scratch arena
    /// for the next [`Self::new_in`] over a similar band.
    pub fn retire_into(self, scratch: &mut Scratch) {
        scratch.retire_f64(self.freqs);
        scratch.retire_rows(self.rows);
    }

    /// Total number of lattice slots.
    pub fn slots(&self) -> usize {
        self.freqs.len()
    }

    /// Flat slot index of `(zone, cell)`.
    pub fn slot(&self, zone: usize, cell: usize) -> usize {
        zone * self.cells_per_zone + cell
    }

    /// Center frequency of a slot, GHz.
    pub fn freq(&self, slot: usize) -> f64 {
        self.freqs[slot]
    }

    /// Materializes the scaling row of `slot` if not yet computed.
    pub fn ensure_row(&mut self, slot: usize) {
        if self.rows[slot].is_empty() {
            let f = self.freqs[slot];
            // Fill in place (not a fresh collect) so arena-recycled row
            // capacity survives re-materialization.
            let freqs = &self.freqs;
            self.rows[slot].extend(freqs.iter().map(|&g| frequency_scaling(f - g)));
        }
    }

    /// Materializes every scaling row up front, fanning the per-row
    /// `frequency_scaling` fills across `exec`'s workers.
    ///
    /// Each row is an independent function of the slot frequencies and
    /// results merge in slot-index order, so the table is bit-identical
    /// to lazily filling rows via [`Self::ensure_row`] — the parallel
    /// allocator pre-materializes instead of racing lazy fills.
    pub fn materialize_rows(&mut self, exec: &ParallelExec) {
        let freqs = &self.freqs;
        let computed = exec.run(self.rows.len(), |s| {
            let f = freqs[s];
            freqs
                .iter()
                .map(|&g| frequency_scaling(f - g))
                .collect::<Vec<f64>>()
        });
        for (row, new) in self.rows.iter_mut().zip(computed) {
            if row.is_empty() {
                // Copy into the retained buffer so recycled capacity
                // survives parallel materialization.
                row.extend_from_slice(&new);
            }
        }
    }

    /// The scaling row of `slot`: `row(s)[t] = frequency_scaling(freq(s)
    /// - freq(t))`.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) if the row was never materialized via
    /// [`Self::ensure_row`].
    #[inline]
    pub fn row(&self, slot: usize) -> &[f64] {
        debug_assert!(
            !self.rows[slot].is_empty() || self.freqs.is_empty(),
            "scaling row {slot} used before ensure_row"
        );
        &self.rows[slot]
    }

    /// Exact objective change from swapping the slot assignments of `a`
    /// and `b` — the kernelized counterpart of the naive full-pair
    /// sweep in `freq::naive::swap_delta`, touching only the
    /// O(deg(a)+deg(b)) pairs whose terms actually move.
    ///
    /// Bit-identity contract: the naive sweep walks `iter_pairs` in
    /// lexicographic `(p, q)` order, and every pair not involving the
    /// endpoints (plus the invariant `(a, b)` pair itself) contributes
    /// an exact `+0.0` — so this function emits the moving terms in the
    /// same lexicographic order, with identical `x * (after - before)`
    /// arithmetic, and the sums agree bit-for-bit. With `lo < hi` the
    /// endpoint ids, that order is: pairs `(p, lo)` then `(p, hi)` for
    /// each `p < lo`; then `(lo, q)` for `q > lo`; then `(p, hi)` /
    /// `(hi, q)` for partners above `lo`.
    ///
    /// `slot_of[q]` must hold the current slot of every assigned qubit,
    /// and the rows of both `slot_of[a]` and `slot_of[b]` must be
    /// materialized (they are, once occupied).
    pub fn swap_delta(
        &self,
        kernels: &FreqKernels,
        slot_of: &[usize],
        a: QubitId,
        b: QubitId,
    ) -> f64 {
        let (lo, hi) = if a.index() <= b.index() {
            (a, b)
        } else {
            (b, a)
        };
        let (li, hi_i) = (lo.index(), hi.index());
        // `rl[s]` is the scaling between lo's current slot and slot `s`;
        // a term of a pair `(p, lo)` moves from `rl[sp]` to `rh[sp]`
        // when lo takes hi's slot (and vice versa) — `frequency_scaling`
        // is even, so orientation never changes the bits.
        let rl = self.row(slot_of[li]);
        let rh = self.row(slot_of[hi_i]);
        let nl = kernels.neighbors(lo);
        let nh = kernels.neighbors(hi);
        let n = kernels.num_qubits();
        let mut delta = 0.0;
        // Dense fast path: when every other qubit is a positive-cross-
        // talk neighbor of both endpoints (the common case for model-
        // derived matrices, which decay but never reach zero), the
        // sorted lists are the full id range minus self and the phases
        // reduce to direct indexed sweeps.
        if nl.len() == n - 1 && nh.len() == n - 1 {
            for (p, &sp) in slot_of.iter().enumerate().take(li) {
                delta += nl[p].1 * (rh[sp] - rl[sp]);
                delta += nh[p].1 * (rl[sp] - rh[sp]);
            }
            for (q, &sq) in slot_of.iter().enumerate().take(n).skip(li + 1) {
                if q != hi_i {
                    delta += nl[q - 1].1 * (rh[sq] - rl[sq]);
                }
            }
            for (p, &sp) in slot_of.iter().enumerate().take(n).skip(li + 1) {
                if p != hi_i {
                    delta += nh[p - usize::from(p > hi_i)].1 * (rl[sp] - rh[sp]);
                }
            }
            return delta;
        }
        // Phase 1 — pairs with both ids below lo, merged so `(p, lo)`
        // precedes `(p, hi)` for each p.
        let below = |list: &[(u32, f64)], k: usize| {
            list.get(k).map_or(
                u32::MAX,
                |e| if (e.0 as usize) < li { e.0 } else { u32::MAX },
            )
        };
        let (mut i, mut j) = (0, 0);
        loop {
            let pl = below(nl, i);
            let ph = below(nh, j);
            if pl == u32::MAX && ph == u32::MAX {
                break;
            }
            if pl <= ph {
                let sp = slot_of[pl as usize];
                delta += nl[i].1 * (rh[sp] - rl[sp]);
                i += 1;
                if pl == ph {
                    delta += nh[j].1 * (rl[sp] - rh[sp]);
                    j += 1;
                }
            } else {
                let sp = slot_of[ph as usize];
                delta += nh[j].1 * (rl[sp] - rh[sp]);
                j += 1;
            }
        }
        // Phase 2 — lo's remaining pairs `(lo, q)`, q ascending; the
        // invariant `(lo, hi)` pair is skipped.
        for &(q, x) in &nl[i..] {
            if q as usize != hi_i {
                let sq = slot_of[q as usize];
                delta += x * (rh[sq] - rl[sq]);
            }
        }
        // Phase 3 — hi's remaining pairs, partner ascending; `(lo, hi)`
        // appears here from hi's side and is skipped.
        for &(p, x) in &nh[j..] {
            if p as usize != li {
                let sp = slot_of[p as usize];
                delta += x * (rl[sp] - rh[sp]);
            }
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtiao_chip::distance::{equivalent_matrix, EquivalentWeights};
    use youtiao_chip::topology;

    fn xtalk(n: usize) -> DistanceMatrix {
        let chip = topology::square_grid(n, n);
        let eq = equivalent_matrix(&chip, EquivalentWeights::balanced());
        crate::plan::crosstalk_matrix(&chip, &eq, None)
    }

    #[test]
    fn neighbor_lists_are_sorted_sparse_and_symmetric() {
        let x = xtalk(4);
        let k = FreqKernels::build(&x);
        assert_eq!(k.num_qubits(), 16);
        for i in 0..16 {
            let a = QubitId::new(i as u32);
            let row = k.neighbors(a);
            assert!(row.windows(2).all(|w| w[0].0 < w[1].0), "unsorted row {i}");
            for &(j, v) in row {
                assert!(v > 0.0);
                assert_eq!(v.to_bits(), x.get(a, QubitId::new(j)).to_bits());
                let back = k.neighbors(QubitId::new(j));
                let mirrored = back.iter().find(|e| e.0 == i as u32).expect("symmetric");
                assert_eq!(mirrored.1.to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn build_count_probe_advances() {
        let x = xtalk(2);
        let before = FreqKernels::build_count();
        let _k = FreqKernels::build(&x);
        assert!(FreqKernels::build_count() > before);
    }

    #[test]
    fn lattice_matches_the_allocator_formula() {
        let cfg = FreqConfig::default();
        let lat = BandLattice::new(&cfg, 5).unwrap();
        assert_eq!(lat.zones(), 5);
        let (lo, hi) = cfg.band_ghz;
        let zone_width = (hi - lo) / 5.0;
        assert_eq!(lat.cells_per_zone(), 60);
        for zone in 0..5 {
            for cell in 0..lat.cells_per_zone() {
                let expected =
                    lo + zone as f64 * zone_width + (cell as f64 + 0.5) * cfg.cell_mhz / 1000.0;
                assert_eq!(lat.cell_freq(zone, cell).to_bits(), expected.to_bits());
                assert_eq!(lat.cell_of(zone, lat.cell_freq(zone, cell)), cell);
            }
        }
    }

    /// Satellite regression: exact-division configs must not lose a cell
    /// (or spuriously report `InvalidConfig`) to a float-rounded-down
    /// quotient. A 0.6 GHz zone at 600 MHz cells is exactly one cell;
    /// the raw-floor code computed zero for band widths where
    /// `(hi - lo) / zones * 1000 / cell_mhz` rounds below the integer.
    #[test]
    fn exact_division_boundaries_keep_all_cells_in_the_qubit_band() {
        // 3 GHz band over 5 zones = 0.6 GHz zones at 600 MHz cells.
        let cfg = FreqConfig {
            cell_mhz: 600.0,
            ..Default::default()
        };
        let lat = BandLattice::new(&cfg, 5).unwrap();
        assert_eq!(lat.cells_per_zone(), 1);
        // 4.0–6.1 GHz over 3 zones = 0.7 GHz zones at 700 MHz cells:
        // the raw quotient floats below 1.0 and the unfixed floor
        // rejected the config outright.
        let raw = ((6.1 - 4.0) / 3.0 * 1000.0) / 700.0;
        assert!(raw < 1.0, "regression input no longer exercises the bug");
        let cfg = FreqConfig {
            band_ghz: (4.0, 6.1),
            cell_mhz: 700.0,
            ..Default::default()
        };
        let lat = BandLattice::new(&cfg, 3).unwrap();
        assert_eq!(lat.cells_per_zone(), 1);
    }

    /// Same boundary regression for the readout band.
    #[test]
    fn exact_division_boundaries_keep_all_cells_in_the_readout_band() {
        // 7.0–8.2 GHz over 8 zones = 0.15 GHz zones; at 30 MHz cells the
        // quotient floats just below 5.0 and the raw floor dropped the
        // fifth cell.
        let raw = ((8.2 - 7.0) / 8.0 * 1000.0) / 30.0;
        assert!(raw < 5.0, "regression input no longer exercises the bug");
        let cfg = FreqConfig {
            band_ghz: (7.0, 8.2),
            cell_mhz: 30.0,
            ..Default::default()
        };
        let lat = BandLattice::new(&cfg, 8).unwrap();
        assert_eq!(lat.cells_per_zone(), 5);
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let bad = FreqConfig {
            band_ghz: (7.0, 4.0),
            ..Default::default()
        };
        assert!(BandLattice::new(&bad, 3).is_err());
        let bad = FreqConfig {
            cell_mhz: 0.0,
            ..Default::default()
        };
        assert!(BandLattice::new(&bad, 3).is_err());
        let bad = FreqConfig {
            cell_mhz: 5000.0,
            ..Default::default()
        };
        assert!(BandLattice::new(&bad, 3).is_err());
    }

    /// The table must reproduce `frequency_scaling` bit-for-bit at every
    /// slot pair — including the transposed orientation, which relies on
    /// the scaling being an even function with sign-symmetric IEEE
    /// evaluation.
    #[test]
    fn scaling_table_matches_frequency_scaling() {
        let cfg = FreqConfig {
            cell_mhz: 250.0,
            ..Default::default()
        };
        let lat = BandLattice::new(&cfg, 3).unwrap();
        let mut table = ScalingTable::new(&lat);
        for s in 0..table.slots() {
            table.ensure_row(s);
        }
        for s in 0..table.slots() {
            for t in 0..table.slots() {
                let direct = frequency_scaling(table.freq(s) - table.freq(t));
                assert_eq!(table.row(s)[t].to_bits(), direct.to_bits(), "({s},{t})");
                let transposed = frequency_scaling(table.freq(t) - table.freq(s));
                assert_eq!(direct.to_bits(), transposed.to_bits(), "evenness ({s},{t})");
            }
        }
    }

    #[test]
    fn materialized_rows_match_lazy_fills_bit_for_bit() {
        let lat = BandLattice::new(&FreqConfig::default(), 5).unwrap();
        let mut lazy = ScalingTable::new(&lat);
        for s in 0..lazy.slots() {
            lazy.ensure_row(s);
        }
        for threads in [1, 4] {
            let mut par = ScalingTable::new(&lat);
            par.materialize_rows(&ParallelExec::new(threads));
            for s in 0..par.slots() {
                assert_eq!(par.row(s).len(), lazy.row(s).len(), "slot {s}");
                for t in 0..par.slots() {
                    assert_eq!(par.row(s)[t].to_bits(), lazy.row(s)[t].to_bits());
                }
            }
        }
    }

    #[test]
    fn retired_tables_recycle_row_capacity() {
        let lat = BandLattice::new(&FreqConfig::default(), 5).unwrap();
        let mut scratch = Scratch::default();
        let mut table = ScalingTable::new_in(&lat, &mut scratch);
        table.ensure_row(3);
        table.retire_into(&mut scratch);
        let before = crate::scratch::reuse_count();
        let again = ScalingTable::new_in(&lat, &mut scratch);
        assert!(crate::scratch::reuse_count() >= before + 2, "freqs + rows");
        assert!(again.rows.iter().all(Vec::is_empty), "rows come back lazy");
    }

    #[test]
    fn rows_are_lazy() {
        let lat = BandLattice::new(&FreqConfig::default(), 5).unwrap();
        let mut table = ScalingTable::new(&lat);
        assert!(table.rows.iter().all(Vec::is_empty));
        table.ensure_row(7);
        assert_eq!(table.rows.iter().filter(|r| !r.is_empty()).count(), 1);
        table.ensure_row(7);
        assert_eq!(table.rows.iter().filter(|r| !r.is_empty()).count(), 1);
    }
}
