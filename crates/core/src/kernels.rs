//! Precomputed pairwise kernels for the grouping hot loops.
//!
//! The §4.2–§4.3 grouping passes are the planner's hot path: the greedy
//! graph-coloring of [`crate::tdm`] and the hill-climbing of
//! [`crate::refine`] both evaluate O(n²) candidate pairs, and the naive
//! implementations re-derive every pairwise term — legality, topological
//! non-parallelism, worst-case crosstalk, per-coupler gate adjacency —
//! per candidate per iteration, allocating as they go. A [`PairKernels`]
//! precomputes all of it **once per chip** into dense tables indexed by
//! a flat [`DeviceIndex`] densification, so the rewritten inner loops
//! are pure table lookups (see `group_tdm_kernels` /
//! `refine_tdm_groups_kernels`).
//!
//! # Determinism contract
//!
//! The kernels are a *representation* change, not an algorithm change:
//! every table entry is computed by exactly the functions the naive path
//! calls ([`crate::tdm::legal_pair`], the topo-fraction and noisy-score
//! helpers), so a kernelized pass produces **byte-identical** output to
//! the retained naive implementations (`naive` feature / test builds).
//! Differential tests in `crate::tdm` and `crate::refine` enforce this
//! across random chips, θ values, activity profiles and budgets.

use std::sync::atomic::{AtomicU64, Ordering};

use youtiao_chip::distance::DistanceMatrix;
use youtiao_chip::{Chip, CouplerId, DeviceId, QubitId};

use crate::scratch::Scratch;
use crate::tdm::ActivityProfile;

/// Global count of [`PairKernels::build`] calls — a probe for tests and
/// the bench harness asserting kernels are built once per chip, not per
/// plan or per grid point.
static BUILDS: AtomicU64 = AtomicU64::new(0);

/// Global count of [`PairKernels::apply_delta`] calls — the
/// `kernels_invalidated` probe: tests and the repair bench assert that
/// a repair invalidates rows instead of rebuilding whole tables.
static INVALIDATIONS: AtomicU64 = AtomicU64::new(0);

/// Dense `DeviceId → usize` densification: qubits map to `0..nq`,
/// couplers to `nq..nq + nc`. Both id spaces are already dense, so the
/// mapping is a pure offset and needs no lookup table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceIndex {
    num_qubits: usize,
    num_couplers: usize,
}

impl DeviceIndex {
    /// Builds the densification for a chip.
    pub fn new(chip: &Chip) -> Self {
        DeviceIndex {
            num_qubits: chip.num_qubits(),
            num_couplers: chip.num_couplers(),
        }
    }

    /// Total number of Z-controlled devices (qubits + couplers).
    pub fn len(&self) -> usize {
        self.num_qubits + self.num_couplers
    }

    /// Returns `true` when the chip has no devices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The flat index of a device.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the device id is out of range.
    #[inline]
    pub fn dense(&self, d: DeviceId) -> usize {
        match d {
            DeviceId::Qubit(q) => {
                debug_assert!(q.index() < self.num_qubits);
                q.index()
            }
            DeviceId::Coupler(c) => {
                debug_assert!(c.index() < self.num_couplers);
                self.num_qubits + c.index()
            }
        }
    }

    /// The device at a flat index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn device(&self, i: usize) -> DeviceId {
        assert!(i < self.len(), "dense device index out of range");
        if i < self.num_qubits {
            DeviceId::Qubit((i as u32).into())
        } else {
            DeviceId::Coupler(((i - self.num_qubits) as u32).into())
        }
    }
}

/// Precomputed pairwise interaction kernels for one (chip, crosstalk
/// matrix) pair: everything the grouping and refinement inner loops
/// would otherwise recompute per candidate.
///
/// Owned by [`crate::PlanContext`] (built once per chip and shared
/// across sweep points) and buildable standalone via
/// [`PairKernels::build`].
#[derive(Debug, Clone, PartialEq)]
pub struct PairKernels {
    index: DeviceIndex,
    /// Bitset words per legality row.
    words: usize,
    /// Per-device parallelism index (§4.3), dense order.
    parallelism: Vec<f64>,
    /// Row-major legality bitset: bit `j` of row `i` set when devices
    /// `i` and `j` may share a DEMUX.
    legal: Vec<u64>,
    /// Dense n×n `topo_nonparallel_fraction` lookup table.
    topo: Vec<f64>,
    /// Dense n×n `noisy_score` lookup table.
    noise: Vec<f64>,
    /// Per-coupler adjacent gates (couplers sharing a qubit endpoint),
    /// sorted and deduplicated — what `adjacent_gates` used to allocate
    /// and sort on every call.
    adjacency: Vec<Vec<CouplerId>>,
}

impl PairKernels {
    /// Precomputes every pairwise kernel for `chip` against the
    /// crosstalk matrix that will drive the noisy non-parallelism score
    /// (the ZZ matrix when fitted, the XY matrix otherwise — the same
    /// matrix the naive grouping would receive).
    ///
    /// # Panics
    ///
    /// Panics if the matrix dimension mismatches the chip.
    pub fn build(chip: &Chip, xtalk: &DistanceMatrix) -> Self {
        Self::build_in(chip, xtalk, &mut Scratch::default())
    }

    /// [`Self::build`] drawing the dense table storage from a scratch
    /// arena instead of allocating — pair with [`Self::retire_into`] to
    /// recycle a superseded table's buffers (e.g. when a context's ZZ
    /// model refit replaces its kernels).
    ///
    /// # Panics
    ///
    /// Panics if the matrix dimension mismatches the chip.
    pub fn build_in(chip: &Chip, xtalk: &DistanceMatrix, scratch: &mut Scratch) -> Self {
        assert_eq!(
            xtalk.len(),
            chip.num_qubits(),
            "crosstalk matrix size mismatch"
        );
        let index = DeviceIndex::new(chip);
        let n = index.len();
        let words = n.div_ceil(64).max(1);

        // Per-coupler adjacency, once: the union of the couplers
        // incident to either endpoint, minus the gate itself.
        let adjacency: Vec<Vec<CouplerId>> = chip
            .coupler_ids()
            .map(|c| {
                let (a, b) = chip.coupler(c).expect("coupler id in range").endpoints();
                let mut out: Vec<CouplerId> = chip
                    .couplers_of(a)
                    .iter()
                    .chain(chip.couplers_of(b))
                    .copied()
                    .filter(|&x| x != c)
                    .collect();
                out.sort_unstable();
                out.dedup();
                out
            })
            .collect();

        // Parallelism indices from the cached adjacency.
        let mut parallelism = scratch.take_f64(n, 0.0);
        for (i, slot) in parallelism.iter_mut().enumerate() {
            *slot = match index.device(i) {
                DeviceId::Coupler(c) => adjacency[c.index()].len() as f64,
                DeviceId::Qubit(q) => {
                    let gates = chip.couplers_of(q);
                    if gates.is_empty() {
                        0.0
                    } else {
                        let total: usize = gates.iter().map(|&g| adjacency[g.index()].len()).sum();
                        total as f64 / chip.connectivity(q).max(1) as f64
                    }
                }
            };
        }

        // Dense pairwise tables. Every entry is produced by the exact
        // function the naive path calls, so lookups are bit-identical.
        let mut legal = scratch.take_u64(n * words, 0);
        let mut topo = scratch.take_f64(n * n, 0.0);
        let mut noise = scratch.take_f64(n * n, 0.0);
        for i in 0..n {
            let a = index.device(i);
            for j in 0..n {
                let b = index.device(j);
                if crate::tdm::legal_pair(chip, a, b) {
                    legal[i * words + j / 64] |= 1u64 << (j % 64);
                }
                topo[i * n + j] = crate::tdm::topo_nonparallel_fraction(chip, a, b);
                noise[i * n + j] = crate::tdm::noisy_score(chip, xtalk, a, b);
            }
        }

        BUILDS.fetch_add(1, Ordering::Relaxed);
        PairKernels {
            index,
            words,
            parallelism,
            legal,
            topo,
            noise,
            adjacency,
        }
    }

    /// The device densification the tables are indexed by.
    pub fn index(&self) -> &DeviceIndex {
        &self.index
    }

    /// Number of Z-controlled devices covered.
    pub fn num_devices(&self) -> usize {
        self.index.len()
    }

    /// Flat index of a device (delegates to [`DeviceIndex::dense`]).
    #[inline]
    pub fn dense(&self, d: DeviceId) -> usize {
        self.index.dense(d)
    }

    /// Whether two devices may legally share a DEMUX
    /// ([`crate::tdm::legal_pair`] as a bitset lookup).
    #[inline]
    pub fn legal(&self, a: DeviceId, b: DeviceId) -> bool {
        self.legal_dense(self.index.dense(a), self.index.dense(b))
    }

    /// [`Self::legal`] over flat indices.
    #[inline]
    pub fn legal_dense(&self, i: usize, j: usize) -> bool {
        self.legal[i * self.words + j / 64] & (1u64 << (j % 64)) != 0
    }

    /// Fraction of gate pairs between two devices that topologically
    /// conflict (table lookup).
    #[inline]
    pub fn topo(&self, a: DeviceId, b: DeviceId) -> f64 {
        self.topo_dense(self.index.dense(a), self.index.dense(b))
    }

    /// [`Self::topo`] over flat indices.
    #[inline]
    pub fn topo_dense(&self, i: usize, j: usize) -> f64 {
        self.topo[i * self.index.len() + j]
    }

    /// Worst-case crosstalk between the qubits of two devices (table
    /// lookup).
    #[inline]
    pub fn noise(&self, a: DeviceId, b: DeviceId) -> f64 {
        self.noise_dense(self.index.dense(a), self.index.dense(b))
    }

    /// [`Self::noise`] over flat indices.
    #[inline]
    pub fn noise_dense(&self, i: usize, j: usize) -> f64 {
        self.noise[i * self.index.len() + j]
    }

    /// The parallelism index of a device (table lookup; equals
    /// [`crate::tdm::parallelism_index`]).
    #[inline]
    pub fn parallelism(&self, d: DeviceId) -> f64 {
        self.parallelism[self.index.dense(d)]
    }

    /// Gates sharing a qubit endpoint with `gate` (excluding `gate`),
    /// sorted — the cached form of the old `adjacent_gates` allocation.
    #[inline]
    pub fn adjacent_gates(&self, gate: CouplerId) -> &[CouplerId] {
        &self.adjacency[gate.index()]
    }

    /// Densifies an [`ActivityProfile`] into a flat per-device mask
    /// vector indexed by [`DeviceIndex::dense`] (devices absent from the
    /// profile get mask 0, i.e. never busy).
    pub fn densify_activity(&self, activity: &ActivityProfile) -> Vec<u32> {
        self.densify_activity_in(activity, &mut Scratch::default())
    }

    /// [`Self::densify_activity`] drawing the mask vector from a
    /// scratch arena; the caller retires it with `Scratch::retire_u32`
    /// once the grouping or refinement pass is done with it.
    pub fn densify_activity_in(
        &self,
        activity: &ActivityProfile,
        scratch: &mut Scratch,
    ) -> Vec<u32> {
        let mut masks = scratch.take_u32(self.index.len(), 0);
        for (&d, &mask) in activity {
            // Profiles for a different chip may mention out-of-range
            // devices; the naive path treats lookups by map `get`, so
            // only in-range devices can matter here.
            let i = match d {
                DeviceId::Qubit(q) if q.index() < self.index.num_qubits => q.index(),
                DeviceId::Coupler(c) if c.index() < self.index.num_couplers => {
                    self.index.num_qubits + c.index()
                }
                _ => continue,
            };
            masks[i] = mask;
        }
        masks
    }

    /// Applies a crosstalk-value delta in place: recomputes the noisy
    /// non-parallelism rows (and columns) of every device whose qubit
    /// set touches a `dirty` qubit, against the updated matrix.
    ///
    /// Only the `noise` table depends on crosstalk *values*; legality,
    /// topological fractions, parallelism indices and gate adjacency are
    /// functions of the chip topology alone, so a value-only drift
    /// leaves them exact. Structural changes (couplers added or
    /// removed, qubit count changes) invalidate the densification
    /// itself and require a fresh [`PairKernels::build`].
    ///
    /// Every recomputed entry is produced by the same
    /// [`crate::tdm::noisy_score`] call as a fresh build, so the
    /// updated kernels are bit-identical to rebuilding from scratch
    /// (the differential test below enforces it).
    ///
    /// Returns the number of device rows recomputed and advances the
    /// [`Self::invalidation_count`] probe.
    ///
    /// # Panics
    ///
    /// Panics if the matrix dimension or the chip's device counts
    /// mismatch the tables (i.e. the chip changed structurally).
    pub fn apply_delta(&mut self, chip: &Chip, xtalk: &DistanceMatrix, dirty: &[QubitId]) -> usize {
        assert_eq!(
            xtalk.len(),
            chip.num_qubits(),
            "crosstalk matrix size mismatch"
        );
        assert_eq!(
            self.index,
            DeviceIndex::new(chip),
            "chip changed structurally; rebuild the kernels instead"
        );
        let n = self.index.len();

        // Dirty devices: each dirty qubit's own Z device plus every
        // coupler incident to it (noisy_score reads the crosstalk rows
        // of a device's qubit endpoints).
        let mut rows: Vec<usize> = Vec::new();
        for &q in dirty {
            assert!(q.index() < chip.num_qubits(), "dirty qubit out of range");
            rows.push(self.index.dense(DeviceId::Qubit(q)));
            for &c in chip.couplers_of(q) {
                rows.push(self.index.dense(DeviceId::Coupler(c)));
            }
        }
        rows.sort_unstable();
        rows.dedup();

        for &i in &rows {
            let a = self.index.device(i);
            for j in 0..n {
                let b = self.index.device(j);
                self.noise[i * n + j] = crate::tdm::noisy_score(chip, xtalk, a, b);
                self.noise[j * n + i] = crate::tdm::noisy_score(chip, xtalk, b, a);
            }
        }

        INVALIDATIONS.fetch_add(1, Ordering::Relaxed);
        rows.len()
    }

    /// Consumes the kernels, retiring their dense table storage into a
    /// scratch arena so the next [`Self::build_in`] on a similar chip
    /// reuses the capacity instead of reallocating. The adjacency lists
    /// are nested per-coupler allocations built once per chip and are
    /// simply dropped.
    pub fn retire_into(self, scratch: &mut Scratch) {
        scratch.retire_f64(self.parallelism);
        scratch.retire_u64(self.legal);
        scratch.retire_f64(self.topo);
        scratch.retire_f64(self.noise);
    }

    /// Cumulative number of kernel tables built in this process (probe
    /// for the bench harness and the `verify.sh` bench-smoke step).
    pub fn build_count() -> u64 {
        BUILDS.load(Ordering::Relaxed)
    }

    /// Cumulative number of [`Self::apply_delta`] invalidations in this
    /// process — the `kernels_invalidated` probe next to
    /// [`Self::build_count`].
    pub fn invalidation_count() -> u64 {
        INVALIDATIONS.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::crosstalk_matrix;
    use youtiao_chip::distance::{equivalent_matrix, EquivalentWeights};
    use youtiao_chip::topology;

    fn setup(n: usize) -> (Chip, DistanceMatrix) {
        let chip = topology::square_grid(n, n);
        let eq = equivalent_matrix(&chip, EquivalentWeights::balanced());
        let xtalk = crosstalk_matrix(&chip, &eq, None);
        (chip, xtalk)
    }

    #[test]
    fn dense_index_round_trips() {
        let (chip, _) = setup(3);
        let index = DeviceIndex::new(&chip);
        assert_eq!(index.len(), chip.num_z_devices());
        for (i, d) in chip.device_ids().enumerate() {
            assert_eq!(
                index.dense(d),
                i,
                "device_ids order is qubits then couplers"
            );
            assert_eq!(index.device(i), d);
        }
    }

    #[test]
    fn tables_match_the_scalar_functions() {
        let (chip, xtalk) = setup(3);
        let k = PairKernels::build(&chip, &xtalk);
        for a in chip.device_ids() {
            assert_eq!(k.parallelism(a), crate::tdm::parallelism_index(&chip, a));
            for b in chip.device_ids() {
                assert_eq!(k.legal(a, b), crate::tdm::legal_pair(&chip, a, b));
                assert_eq!(
                    k.topo(a, b).to_bits(),
                    crate::tdm::topo_nonparallel_fraction(&chip, a, b).to_bits(),
                    "{a} {b}"
                );
                assert_eq!(
                    k.noise(a, b).to_bits(),
                    crate::tdm::noisy_score(&chip, &xtalk, a, b).to_bits(),
                    "{a} {b}"
                );
            }
        }
    }

    #[test]
    fn adjacency_is_sorted_and_excludes_self() {
        let (chip, xtalk) = setup(4);
        let k = PairKernels::build(&chip, &xtalk);
        for c in chip.coupler_ids() {
            let adj = k.adjacent_gates(c);
            assert!(adj.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
            assert!(!adj.contains(&c));
        }
    }

    #[test]
    fn activity_densification_matches_map_lookups() {
        let (chip, xtalk) = setup(3);
        let k = PairKernels::build(&chip, &xtalk);
        let profile = crate::tdm::brickwork_activity(&chip);
        let masks = k.densify_activity(&profile);
        for d in chip.device_ids() {
            assert_eq!(masks[k.dense(d)], profile.get(&d).copied().unwrap_or(0));
        }
        // Unknown devices (different chip) are ignored.
        let mut foreign = ActivityProfile::new();
        foreign.insert(DeviceId::Qubit(999u32.into()), 0b1);
        assert!(k.densify_activity(&foreign).iter().all(|&m| m == 0));
    }

    #[test]
    fn build_count_probe_advances() {
        let (chip, xtalk) = setup(2);
        let before = PairKernels::build_count();
        let _k = PairKernels::build(&chip, &xtalk);
        assert!(PairKernels::build_count() > before);
    }

    #[test]
    #[should_panic(expected = "crosstalk matrix size mismatch")]
    fn mismatched_matrix_rejected() {
        let (chip, _) = setup(3);
        let wrong = DistanceMatrix::zeros(4);
        let _ = PairKernels::build(&chip, &wrong);
    }

    #[test]
    fn apply_delta_matches_a_fresh_build() {
        let (chip, xtalk) = setup(4);
        let mut patched = PairKernels::build(&chip, &xtalk);

        // Drift a few entries: one coupler edge, one distant pair, one
        // entry zeroed out.
        let mut drifted = xtalk.clone();
        let (a, b) = chip.coupler(0u32.into()).unwrap().endpoints();
        drifted.set(a, b, xtalk.get(a, b) * 3.0 + 1e-3);
        let (p, q) = (QubitId::new(2), QubitId::new(13));
        drifted.set(p, q, 0.0421);
        drifted.set(QubitId::new(5), QubitId::new(6), 0.0);

        let before = PairKernels::invalidation_count();
        let dirty = vec![a, b, p, q, QubitId::new(5), QubitId::new(6)];
        let rows = patched.apply_delta(&chip, &drifted, &dirty);
        assert!(rows >= dirty.len(), "each dirty qubit dirties >= 1 row");
        assert_eq!(PairKernels::invalidation_count(), before + 1);

        let fresh = PairKernels::build(&chip, &drifted);
        assert_eq!(patched, fresh, "delta-patched kernels must be exact");
    }

    #[test]
    fn apply_delta_with_no_dirty_qubits_is_a_noop() {
        let (chip, xtalk) = setup(3);
        let mut k = PairKernels::build(&chip, &xtalk);
        let copy = k.clone();
        assert_eq!(k.apply_delta(&chip, &xtalk, &[]), 0);
        assert_eq!(k, copy);
    }

    #[test]
    #[should_panic(expected = "rebuild the kernels")]
    fn apply_delta_rejects_structural_change() {
        let (chip, xtalk) = setup(3);
        let mut k = PairKernels::build(&chip, &xtalk);
        let bigger = topology::square_grid(4, 4);
        let eq = equivalent_matrix(&bigger, EquivalentWeights::balanced());
        let wider = crosstalk_matrix(&bigger, &eq, None);
        let _ = k.apply_delta(&bigger, &wider, &[QubitId::new(0)]);
    }
}
