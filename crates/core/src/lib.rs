//! YOUTIAO's core contribution: multiplexing-aware wiring co-optimization.
//!
//! This crate implements §4 of the paper end to end:
//!
//! * [`fdm`] — noise-aware qubit grouping for shared FDM XY lines (§4.2,
//!   the 3-step greedy flow over the equivalent-distance graph);
//! * [`freq`] — two-level coarse-grained frequency allocation (§4.2:
//!   zones, 10 MHz cells, in-group swaps, crowded-cell reuse);
//! * [`tdm`] — the parallelism index, two-level cryo-DEMUX selection via
//!   the threshold θ, and the 3-step greedy graph-coloring TDM grouping
//!   that exploits topological and noisy non-parallelism (§4.3);
//! * [`partition`] — the 4-stage generative chip partition that bounds
//!   the grouping search space on large chips (§4.4);
//! * [`plan`] — [`YoutiaoPlanner`], which runs the full pipeline and
//!   emits a [`WiringPlan`] consumable by the scheduler, router and cost
//!   model;
//! * [`baselines`] — the three comparison systems of §5: Google-style
//!   dedicated wiring (readout-only multiplexing), George et al.'s
//!   in-line-only FDM, and Acharya et al.'s locally-clustered TDM.
//!
//! # Example
//!
//! ```
//! use youtiao_chip::topology;
//! use youtiao_core::YoutiaoPlanner;
//!
//! let chip = topology::square_grid(6, 6);
//! let plan = YoutiaoPlanner::new(&chip).plan()?;
//! assert_eq!(plan.fdm_lines().len(), 8); // ceil(36 / 5)
//! assert!(plan.tdm_groups().len() < chip.num_z_devices());
//! # Ok::<(), youtiao_core::PlanError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod context;
pub mod error;
pub mod exec;
pub mod fdm;
pub mod freq;
pub mod freq_kernels;
pub mod kernels;
pub mod multi;
pub mod partition;
pub mod plan;
pub mod refine;
pub mod scratch;
pub mod summary;
pub mod tdm;
pub mod viz;

pub use crate::baselines::{AcharyaTdm, GeorgeFdm, GoogleBaseline};
pub use crate::context::{chip_fingerprint, PlanContext};
pub use crate::error::PlanError;
pub use crate::exec::ParallelExec;
pub use crate::fdm::{group_fdm, FdmLine};
pub use crate::freq::{
    allocate_frequencies, allocate_frequencies_kernels, FreqConfig, FrequencyPlan,
};
pub use crate::freq_kernels::{BandLattice, FreqKernels, ScalingTable};
pub use crate::kernels::{DeviceIndex, PairKernels};
pub use crate::multi::{
    die_seed, plan_multi, BudgetPartition, CryostatBudget, DiePlan, MultiPlanConfig,
    MultiPlanOutcome, ReconcileStats,
};
pub use crate::partition::{partition_chip, Partition, PartitionConfig};
pub use crate::plan::{PlannerConfig, WiringPlan, YoutiaoPlanner};
pub use crate::refine::{refine_tdm_groups, RefineConfig};
pub use crate::scratch::{Scratch, ScratchPool};
pub use crate::summary::PlanSummary;
pub use crate::tdm::{
    group_tdm, group_tdm_kernels, parallelism_index, DemuxLevel, TdmConfig, TdmGroup,
};
