//! Multi-die wiring: per-die planning, cryostat budget partitioning and
//! inter-chiplet link reconciliation.
//!
//! A [`MultiDieChip`] is planned die by die — each die is an independent
//! [`YoutiaoPlanner`] run over the die's template-local layout — then two
//! cross-die stages stitch the results into one cryostat-level plan:
//!
//! 1. **Budget partitioning** ([`BudgetPartition`]): a shared coax /
//!    DEMUX line budget for the whole cryostat is apportioned across
//!    dies proportionally to their qubit counts (largest-remainder
//!    method, so allowances always sum to the budget and the split is
//!    deterministic).
//! 2. **Link reconciliation** ([`ReconcileStats`]): inter-chiplet links
//!    couple qubits on different dies, so link endpoints must respect
//!    the same frequency-zone and cell-spacing rules as same-line
//!    neighbours. Collisions are repaired by swapping the complete
//!    (frequency, zone) assignment of an endpoint with another member of
//!    its own FDM line — a move that provably preserves every in-die
//!    invariant because the line's multiset of assignments is unchanged.
//!
//! Per-die planning fans out over [`ParallelExec`] and merges in die
//! order, so multi-die plans are **byte-identical at any thread count**
//! (DESIGN.md §4j). Die 0 keeps the caller's seed untouched, which makes
//! a 1×1 array plan byte-identical to the monolithic plan of the same
//! template — the differential contract pinned by `tests/multi_die.rs`.

use youtiao_chip::multi::MultiDieChip;
use youtiao_chip::{Chip, QubitId};
use youtiao_noise::data::{synthesize, CrosstalkKind, SynthConfig};
use youtiao_noise::fit::{fit_crosstalk_model, FitConfig};
use youtiao_noise::CrosstalkModel;

use crate::context::PlanContext;
use crate::error::PlanError;
use crate::exec::ParallelExec;
use crate::freq::FreqConfig;
use crate::plan::{PlannerConfig, WiringPlan, YoutiaoPlanner};

/// Spacing tolerance, GHz — matches the validator's epsilon so a plan
/// that reconciles clean also validates clean.
const EPS_GHZ: f64 = 1e-9;

/// Derives the characterization seed for one die.
///
/// Die 0 keeps the cryostat seed untouched (the 1×1 ≡ monolithic
/// contract); later dies decorrelate through a splitmix-style odd
/// multiplier so per-die synthetic fabrication noise is independent.
pub fn die_seed(seed: u64, die: usize) -> u64 {
    seed ^ (die as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A shared cryostat I/O budget to split across dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CryostatBudget {
    /// Total coaxial lines (XY + Z + readout) available to the array.
    pub coax_lines: usize,
}

/// Configuration for [`plan_multi`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MultiPlanConfig {
    /// Per-die planner configuration (applied identically to every die).
    pub planner: PlannerConfig,
    /// Characterize each die (synthesize + fit a crosstalk model) before
    /// planning; `false` plans structure-only from equivalent distances.
    pub use_model: bool,
    /// Cryostat-level seed; per-die seeds derive via [`die_seed`].
    pub seed: u64,
    /// Optional shared coax budget to partition across dies.
    pub budget: Option<CryostatBudget>,
}

/// One die's planning result.
#[derive(Debug, Clone, PartialEq)]
pub struct DiePlan {
    /// The die's wiring plan (template-local qubit ids).
    pub plan: WiringPlan,
    /// The fitted crosstalk model, when `use_model` was set.
    pub model: Option<CrosstalkModel>,
}

/// A largest-remainder apportionment of a [`CryostatBudget`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetPartition {
    /// Per-die coax allowance; sums to the budget.
    pub allowances: Vec<usize>,
    /// Per-die coax actually required by the plan
    /// (XY + Z + readout lines).
    pub required: Vec<usize>,
    /// The total budget that was split.
    pub total: usize,
}

impl BudgetPartition {
    /// Splits `budget` across dies proportionally to qubit count using
    /// the largest-remainder method (deterministic: remainder ties break
    /// toward the lower die index).
    pub fn split(mdc: &MultiDieChip, plans: &[WiringPlan], budget: CryostatBudget) -> Self {
        let weights: Vec<usize> = mdc.dies().iter().map(Chip::num_qubits).collect();
        let total_weight: usize = weights.iter().sum();
        let n = weights.len();
        let mut allowances = vec![0usize; n];
        let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(n);
        if total_weight > 0 {
            for (i, &w) in weights.iter().enumerate() {
                let quota = budget.coax_lines as f64 * w as f64 / total_weight as f64;
                allowances[i] = quota.floor() as usize;
                remainders.push((i, quota - quota.floor()));
            }
            let assigned: usize = allowances.iter().sum();
            // Largest fractional remainder first; ties to the lower die.
            remainders.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            for &(i, _) in remainders.iter().take(budget.coax_lines - assigned) {
                allowances[i] += 1;
            }
        }
        let required = plans
            .iter()
            .map(|p| p.num_xy_lines() + p.num_z_lines() + p.num_readout_lines())
            .collect();
        BudgetPartition {
            allowances,
            required,
            total: budget.coax_lines,
        }
    }

    /// `true` when every die's requirement fits its allowance.
    pub fn is_feasible(&self) -> bool {
        self.required
            .iter()
            .zip(&self.allowances)
            .all(|(r, a)| r <= a)
    }
}

/// Counters from the link-reconciliation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReconcileStats {
    /// Link-band pairs examined.
    pub checked: usize,
    /// In-line assignment swaps applied to clear collisions.
    pub swapped: usize,
    /// Collisions no in-line swap could clear (surface as validation
    /// violations).
    pub unresolved: usize,
}

/// The complete multi-die planning outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiPlanOutcome {
    /// Per-die results, in [`youtiao_chip::DieId`] order.
    pub dies: Vec<DiePlan>,
    /// The budget split, when a budget was configured.
    pub partition: Option<BudgetPartition>,
    /// Link-reconciliation counters.
    pub reconcile: ReconcileStats,
}

impl MultiPlanOutcome {
    /// Borrowed per-die wiring plans, in die order.
    pub fn plans(&self) -> Vec<&WiringPlan> {
        self.dies.iter().map(|d| &d.plan).collect()
    }
}

/// Plans every die of a chiplet array and stitches the results.
///
/// Stages: per-die characterize (optional) + plan, fanned out over
/// `exec` and merged in die order; budget partitioning; link-frequency
/// reconciliation. The output is byte-identical at any `exec` thread
/// count.
///
/// # Errors
///
/// Propagates the first per-die [`PlanError`], in die order.
pub fn plan_multi(
    mdc: &MultiDieChip,
    config: &MultiPlanConfig,
    exec: &ParallelExec,
) -> Result<MultiPlanOutcome, PlanError> {
    let results = exec.run(mdc.num_dies(), |i| {
        plan_die(mdc.dies().get(i).unwrap(), config, i)
    });
    let mut dies = Vec::with_capacity(results.len());
    for r in results {
        dies.push(r?);
    }

    let partition = config.budget.map(|b| {
        let plans: Vec<WiringPlan> = dies.iter().map(|d| d.plan.clone()).collect();
        BudgetPartition::split(mdc, &plans, b)
    });

    let reconcile = reconcile_links(mdc, &mut dies, &config.planner);

    Ok(MultiPlanOutcome {
        dies,
        partition,
        reconcile,
    })
}

fn plan_die(chip: &Chip, config: &MultiPlanConfig, die: usize) -> Result<DiePlan, PlanError> {
    let model = config.use_model.then(|| {
        let samples = synthesize(
            chip,
            CrosstalkKind::Xy,
            &SynthConfig::xy(),
            die_seed(config.seed, die),
        );
        fit_crosstalk_model(&samples, &FitConfig::paper()).expect("synthesized data always fits")
    });
    let ctx = PlanContext::build(chip, model.as_ref(), config.planner.weights);
    let mut planner = YoutiaoPlanner::new(chip)
        .with_config(config.planner.clone())
        .with_context(&ctx);
    if let Some(m) = &model {
        planner = planner.with_crosstalk_model(m);
    }
    let plan = planner.plan()?;
    Ok(DiePlan { plan, model })
}

/// One multiplexing band's view of a die plan, for reconciliation.
#[derive(Clone, Copy)]
enum Band {
    Xy,
    Readout,
}

impl Band {
    fn config(self, planner: &PlannerConfig) -> &FreqConfig {
        match self {
            Band::Xy => &planner.freq,
            Band::Readout => &planner.readout_freq,
        }
    }

    /// The FDM line (as a qubit slice) carrying `q` in `plan`.
    fn line_of(self, plan: &WiringPlan, q: QubitId) -> Option<&[QubitId]> {
        match self {
            Band::Xy => plan
                .fdm_lines()
                .iter()
                .find(|l| l.contains(q))
                .map(|l| l.qubits()),
            Band::Readout => plan
                .readout_lines()
                .iter()
                .find(|l| l.contains(&q))
                .map(|l| l.as_slice()),
        }
    }

    fn freq(self, plan: &WiringPlan, q: QubitId) -> f64 {
        match self {
            Band::Xy => plan.frequency_plan().frequency_ghz(q),
            Band::Readout => plan.readout_frequency_plan().frequency_ghz(q),
        }
    }

    fn zone(self, plan: &WiringPlan, q: QubitId) -> usize {
        match self {
            Band::Xy => plan.frequency_plan().zone_of(q),
            Band::Readout => plan.readout_frequency_plan().zone_of(q),
        }
    }

    fn zones(self, plan: &WiringPlan) -> usize {
        match self {
            Band::Xy => plan.frequency_plan().zones(),
            Band::Readout => plan.readout_frequency_plan().zones(),
        }
    }

    fn swap(self, plan: &mut WiringPlan, a: QubitId, b: QubitId) {
        match self {
            Band::Xy => plan.frequency_plan_mut().swap_assignments(a, b),
            Band::Readout => plan.readout_frequency_plan_mut().swap_assignments(a, b),
        }
    }
}

/// Do two link-endpoint assignments collide under `band` rules?
///
/// A collision is a cell-spacing violation, or identical zones when both
/// dies use the same zone count (differing zone counts make zone indices
/// incomparable, so only spacing applies).
fn link_collides(
    band: Band,
    planner: &PlannerConfig,
    plan_a: &WiringPlan,
    qa: QubitId,
    plan_b: &WiringPlan,
    qb: QubitId,
) -> bool {
    let cfg = band.config(planner);
    let min_spacing = cfg.cell_mhz / 1000.0 - EPS_GHZ;
    if (band.freq(plan_a, qa) - band.freq(plan_b, qb)).abs() < min_spacing {
        return true;
    }
    band.zones(plan_a) == band.zones(plan_b) && band.zone(plan_a, qa) == band.zone(plan_b, qb)
}

/// Repairs inter-chiplet link collisions by in-line assignment swaps.
///
/// Links are visited in declaration order, each under both bands. A
/// collision is cleared by swapping the `b`-side endpoint's (frequency,
/// zone) assignment with the first same-line partner that leaves every
/// link incident to either qubit collision-free; failing that, the
/// `a`-side is tried. Swaps apply immediately, so later links see
/// repaired state — the whole pass is deterministic. Bands with a
/// tuning-range constraint are skipped: a swap could move a qubit
/// outside its fabrication tuning window, and the in-die validator does
/// not enforce zone/spacing rules for such bands either.
fn reconcile_links(
    mdc: &MultiDieChip,
    dies: &mut [DiePlan],
    planner: &PlannerConfig,
) -> ReconcileStats {
    let mut stats = ReconcileStats::default();
    for band in [Band::Xy, Band::Readout] {
        if band.config(planner).tuning_range_ghz.is_some() {
            continue;
        }
        for link in mdc.links() {
            let (da, qa) = (link.a.0.index(), link.a.1);
            let (db, qb) = (link.b.0.index(), link.b.1);
            stats.checked += 1;
            if !link_collides(band, planner, &dies[da].plan, qa, &dies[db].plan, qb) {
                continue;
            }
            if try_swap_side(mdc, dies, planner, band, db, qb)
                || try_swap_side(mdc, dies, planner, band, da, qa)
            {
                stats.swapped += 1;
            } else {
                stats.unresolved += 1;
            }
        }
    }
    stats
}

/// Attempts to clear every link collision at `(die, q)` by swapping `q`
/// with a same-line partner. Returns `true` and applies the swap when a
/// partner works.
fn try_swap_side(
    mdc: &MultiDieChip,
    dies: &mut [DiePlan],
    planner: &PlannerConfig,
    band: Band,
    die: usize,
    q: QubitId,
) -> bool {
    let Some(line) = band.line_of(&dies[die].plan, q) else {
        return false;
    };
    let candidates: Vec<QubitId> = line.iter().copied().filter(|&c| c != q).collect();
    for c in candidates {
        if swap_clears(mdc, dies, planner, band, die, q, c) {
            band.swap(&mut dies[die].plan, q, c);
            return true;
        }
    }
    false
}

/// Would swapping `q` ↔ `c` on `die` leave every link incident to either
/// qubit collision-free? (Pure check — no mutation.)
fn swap_clears(
    mdc: &MultiDieChip,
    dies: &[DiePlan],
    planner: &PlannerConfig,
    band: Band,
    die: usize,
    q: QubitId,
    c: QubitId,
) -> bool {
    let plan = &dies[die].plan;
    // Post-swap view of the die's assignments.
    let local = |x: QubitId| {
        let x = if x == q {
            c
        } else if x == c {
            q
        } else {
            x
        };
        (band.freq(plan, x), band.zone(plan, x))
    };
    let cfg = band.config(planner);
    let min_spacing = cfg.cell_mhz / 1000.0 - EPS_GHZ;
    for link in mdc.links() {
        let (near, far) = if link.a.0.index() == die {
            (link.a.1, link.b)
        } else if link.b.0.index() == die {
            (link.b.1, link.a)
        } else {
            continue;
        };
        if near != q && near != c {
            continue;
        }
        let far_plan = &dies[far.0.index()].plan;
        let (nf, nz) = local(near);
        if (nf - band.freq(far_plan, far.1)).abs() < min_spacing {
            return false;
        }
        if band.zones(plan) == band.zones(far_plan) && nz == band.zone(far_plan, far.1) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtiao_chip::multi::LinkTopology;
    use youtiao_chip::topology;

    fn grid_array(rows: usize, cols: usize) -> MultiDieChip {
        let die = topology::square_grid(4, 4);
        MultiDieChip::tile(&die, rows, cols, LinkTopology::Grid).unwrap()
    }

    #[test]
    fn die_seed_keeps_die_zero_unchanged() {
        assert_eq!(die_seed(42, 0), 42);
        assert_ne!(die_seed(42, 1), 42);
        assert_ne!(die_seed(42, 1), die_seed(42, 2));
    }

    #[test]
    fn single_die_plan_matches_monolithic() {
        let die = topology::square_grid(4, 4);
        let array = MultiDieChip::tile(&die, 1, 1, LinkTopology::Grid).unwrap();
        let config = MultiPlanConfig::default();
        let outcome = plan_multi(&array, &config, &ParallelExec::serial()).unwrap();
        let ctx = PlanContext::build(&die, None, config.planner.weights);
        let mono = YoutiaoPlanner::new(&die)
            .with_config(config.planner.clone())
            .with_context(&ctx)
            .plan()
            .unwrap();
        assert_eq!(outcome.dies.len(), 1);
        assert_eq!(outcome.dies[0].plan, mono);
        assert_eq!(outcome.reconcile.checked, 0);
    }

    #[test]
    fn plan_is_thread_count_invariant() {
        let array = grid_array(2, 2);
        let config = MultiPlanConfig {
            use_model: true,
            seed: 7,
            ..MultiPlanConfig::default()
        };
        let serial = plan_multi(&array, &config, &ParallelExec::serial()).unwrap();
        let parallel = plan_multi(&array, &config, &ParallelExec::new(4)).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn links_are_reconciled() {
        let array = grid_array(2, 2);
        let config = MultiPlanConfig::default();
        let outcome = plan_multi(&array, &config, &ParallelExec::serial()).unwrap();
        // Identical dies get identical plans, so every link starts in
        // collision (same frequency on both endpoints) — reconciliation
        // must have worked through all of them.
        assert!(outcome.reconcile.checked > 0);
        assert_eq!(outcome.reconcile.unresolved, 0);
        let planner = &config.planner;
        for band in [Band::Xy, Band::Readout] {
            for link in array.links() {
                let pa = &outcome.dies[link.a.0.index()].plan;
                let pb = &outcome.dies[link.b.0.index()].plan;
                assert!(
                    !link_collides(band, planner, pa, link.a.1, pb, link.b.1),
                    "unreconciled link {:?} -> {:?}",
                    link.a,
                    link.b
                );
            }
        }
    }

    #[test]
    fn budget_partition_sums_and_orders() {
        let array = grid_array(2, 2);
        let config = MultiPlanConfig {
            budget: Some(CryostatBudget { coax_lines: 50 }),
            ..MultiPlanConfig::default()
        };
        let outcome = plan_multi(&array, &config, &ParallelExec::serial()).unwrap();
        let part = outcome.partition.unwrap();
        assert_eq!(part.allowances.iter().sum::<usize>(), 50);
        assert_eq!(part.total, 50);
        assert_eq!(part.required.len(), 4);
        // Equal dies split an even budget evenly but a largest-remainder
        // split of 50 over 4 equal dies gives 13/13/12/12.
        assert_eq!(part.allowances, vec![13, 13, 12, 12]);
    }

    #[test]
    fn infeasible_budget_reported_not_fatal() {
        let array = grid_array(1, 2);
        let config = MultiPlanConfig {
            budget: Some(CryostatBudget { coax_lines: 3 }),
            ..MultiPlanConfig::default()
        };
        let outcome = plan_multi(&array, &config, &ParallelExec::serial()).unwrap();
        let part = outcome.partition.unwrap();
        assert!(!part.is_feasible());
    }

    #[test]
    fn swaps_preserve_in_line_assignment_multiset() {
        let array = grid_array(2, 2);
        let config = MultiPlanConfig::default();
        let outcome = plan_multi(&array, &config, &ParallelExec::serial()).unwrap();
        let die0 = topology::square_grid(4, 4);
        let ctx = PlanContext::build(&die0, None, config.planner.weights);
        let mono = YoutiaoPlanner::new(&die0)
            .with_config(config.planner.clone())
            .with_context(&ctx)
            .plan()
            .unwrap();
        for die in &outcome.dies {
            // Line structure untouched by reconciliation.
            assert_eq!(die.plan.fdm_lines(), mono.fdm_lines());
            for line in die.plan.fdm_lines() {
                let mut got: Vec<u64> = line
                    .qubits()
                    .iter()
                    .map(|&q| die.plan.frequency_plan().frequency_ghz(q).to_bits())
                    .collect();
                let mut want: Vec<u64> = line
                    .qubits()
                    .iter()
                    .map(|&q| mono.frequency_plan().frequency_ghz(q).to_bits())
                    .collect();
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "swap changed a line's frequency multiset");
            }
        }
    }
}
