//! Generative chip partition (§4.4).
//!
//! Whole-chip grouping search scales as `O(n^k)`, so large chips are
//! first split into routing regions, each grouped independently. The
//! 4-stage scheme:
//!
//! 1. **initialize and expand** — random seed qubits grow regions by
//!    claiming the unassigned qubit with the smallest equivalent distance
//!    to the region (smallest regions expand first, keeping sizes even);
//! 2. **swap at borders** — a border qubit closer (in equivalent
//!    distance) to another region's seed defects to that region;
//! 3. **route while expanding** — FDM/TDM grouping per region is greedy,
//!    so callers can pipeline grouping with expansion (regions are final
//!    as soon as stage 2 stabilizes them);
//! 4. **terminate** — when no swaps fire and every qubit is assigned.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use youtiao_chip::distance::DistanceMatrix;
use youtiao_chip::{Chip, QubitId};

/// Configuration of the generative partitioner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionConfig {
    /// Number of regions (seed points).
    pub num_regions: usize,
    /// RNG seed for the random seed-qubit draw.
    pub seed: u64,
    /// Cap on border-swap sweeps (stage 2/4 safeguard).
    pub max_sweeps: usize,
}

impl PartitionConfig {
    /// Picks a region count targeting roughly `target_size` qubits per
    /// region.
    pub fn for_target_size(chip: &Chip, target_size: usize) -> Self {
        let n = chip.num_qubits();
        let regions = n.div_ceil(target_size.max(1));
        PartitionConfig {
            num_regions: regions.max(1),
            seed: 0x59_4F55,
            max_sweeps: 16,
        }
    }
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            num_regions: 4,
            seed: 0x59_4F55,
            max_sweeps: 16,
        }
    }
}

/// A partition of a chip's qubits into routing regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    region_of: Vec<usize>,
    regions: Vec<Vec<QubitId>>,
    sweeps_used: usize,
}

impl Partition {
    /// Region index of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn region_of(&self, q: QubitId) -> usize {
        self.region_of[q.index()]
    }

    /// The regions, each a sorted list of member qubits.
    pub fn regions(&self) -> &[Vec<QubitId>] {
        &self.regions
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Returns `true` when there are no regions.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Border-swap sweeps performed before convergence.
    pub fn sweeps_used(&self) -> usize {
        self.sweeps_used
    }
}

/// Partitions `chip` into regions using the 4-stage generative scheme.
///
/// `matrix` is the equivalent-distance matrix guiding both expansion and
/// border swaps. Requesting more regions than qubits clamps to one qubit
/// per region.
///
/// # Panics
///
/// Panics if `config.num_regions == 0` or the matrix dimension
/// mismatches the chip.
///
/// # Example
///
/// ```
/// use youtiao_chip::distance::{equivalent_matrix, EquivalentWeights};
/// use youtiao_chip::topology;
/// use youtiao_core::partition::{partition_chip, PartitionConfig};
///
/// let chip = topology::square_grid(6, 6);
/// let m = equivalent_matrix(&chip, EquivalentWeights::balanced());
/// let p = partition_chip(&chip, &m, &PartitionConfig::default());
/// assert_eq!(p.len(), 4);
/// assert_eq!(p.regions().iter().map(Vec::len).sum::<usize>(), 36);
/// ```
pub fn partition_chip(chip: &Chip, matrix: &DistanceMatrix, config: &PartitionConfig) -> Partition {
    assert!(config.num_regions > 0, "need at least one region");
    assert_eq!(matrix.len(), chip.num_qubits(), "matrix size mismatch");
    let n = chip.num_qubits();
    let k = config.num_regions.min(n);

    // Stage 1: random seeds, then balanced nearest-distance expansion.
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut ids: Vec<QubitId> = chip.qubit_ids().collect();
    ids.shuffle(&mut rng);
    let seeds: Vec<QubitId> = ids[..k].to_vec();

    const UNASSIGNED: usize = usize::MAX;
    let mut region_of = vec![UNASSIGNED; n];
    let mut members: Vec<Vec<QubitId>> = vec![Vec::new(); k];
    for (r, &s) in seeds.iter().enumerate() {
        region_of[s.index()] = r;
        members[r].push(s);
    }
    let mut remaining: Vec<QubitId> = chip
        .qubit_ids()
        .filter(|q| region_of[q.index()] == UNASSIGNED)
        .collect();
    while !remaining.is_empty() {
        // The smallest region expands next, keeping sizes even.
        let r = (0..k).min_by_key(|&r| members[r].len()).expect("k >= 1");
        // Claim the unassigned qubit nearest to any member of r.
        let (idx, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, &q)| {
                let d = members[r]
                    .iter()
                    .map(|&m| matrix.get(m, q))
                    .fold(f64::INFINITY, f64::min);
                (i, d)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("remaining is non-empty");
        let q = remaining.remove(idx);
        region_of[q.index()] = r;
        members[r].push(q);
    }

    // Stage 2/4: swap border qubits toward nearer seeds until stable.
    let mut sweeps_used = 0usize;
    for _ in 0..config.max_sweeps {
        sweeps_used += 1;
        let mut swapped = false;
        for q in chip.qubit_ids() {
            let current = region_of[q.index()];
            if seeds[current] == q || members[current].len() <= 1 {
                continue;
            }
            // Only border qubits (with a neighbour in another region) move.
            let is_border = chip
                .neighbors(q)
                .iter()
                .any(|&nb| region_of[nb.index()] != current);
            if !is_border {
                continue;
            }
            let (best_r, best_d) = (0..k)
                .map(|r| (r, matrix.get(seeds[r], q)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("k >= 1");
            // A defection must be distance-motivated AND not unbalance
            // the partition (the receiving region may not already be
            // larger than the donor).
            if best_r != current
                && best_d < matrix.get(seeds[current], q)
                && members[best_r].len() < members[current].len()
            {
                members[current].retain(|&m| m != q);
                members[best_r].push(q);
                region_of[q.index()] = best_r;
                swapped = true;
            }
        }
        if !swapped {
            break;
        }
    }

    for m in &mut members {
        m.sort_unstable();
    }
    Partition {
        region_of,
        regions: members,
        sweeps_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtiao_chip::distance::{equivalent_matrix, EquivalentWeights};
    use youtiao_chip::topology;

    fn setup(n: usize) -> (youtiao_chip::Chip, DistanceMatrix) {
        let chip = topology::square_grid(n, n);
        let m = equivalent_matrix(&chip, EquivalentWeights::balanced());
        (chip, m)
    }

    #[test]
    fn covers_all_qubits() {
        let (chip, m) = setup(6);
        let p = partition_chip(&chip, &m, &PartitionConfig::default());
        let total: usize = p.regions().iter().map(Vec::len).sum();
        assert_eq!(total, 36);
        for q in chip.qubit_ids() {
            let r = p.region_of(q);
            assert!(p.regions()[r].contains(&q));
        }
    }

    #[test]
    fn regions_are_reasonably_balanced() {
        let (chip, m) = setup(6);
        let p = partition_chip(&chip, &m, &PartitionConfig::default());
        let sizes: Vec<usize> = p.regions().iter().map(Vec::len).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max <= 2 * min + 2, "imbalanced regions: {sizes:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let (chip, m) = setup(5);
        let a = partition_chip(&chip, &m, &PartitionConfig::default());
        let b = partition_chip(&chip, &m, &PartitionConfig::default());
        assert_eq!(a, b);
        let c = partition_chip(
            &chip,
            &m,
            &PartitionConfig {
                seed: 99,
                ..Default::default()
            },
        );
        // Different seeds may coincide but typically differ.
        let _ = c;
    }

    #[test]
    fn single_region_is_whole_chip() {
        let (chip, m) = setup(4);
        let p = partition_chip(
            &chip,
            &m,
            &PartitionConfig {
                num_regions: 1,
                ..Default::default()
            },
        );
        assert_eq!(p.len(), 1);
        assert_eq!(p.regions()[0].len(), 16);
    }

    #[test]
    fn more_regions_than_qubits_clamps() {
        let (chip, m) = setup(2);
        let p = partition_chip(
            &chip,
            &m,
            &PartitionConfig {
                num_regions: 10,
                ..Default::default()
            },
        );
        assert_eq!(p.len(), 4);
        assert!(p.regions().iter().all(|r| r.len() == 1));
    }

    #[test]
    fn target_size_config() {
        let chip = topology::square_grid(6, 6);
        let cfg = PartitionConfig::for_target_size(&chip, 9);
        assert_eq!(cfg.num_regions, 4);
        let cfg1 = PartitionConfig::for_target_size(&chip, 100);
        assert_eq!(cfg1.num_regions, 1);
    }

    #[test]
    fn converges_before_sweep_cap() {
        let (chip, m) = setup(6);
        let p = partition_chip(&chip, &m, &PartitionConfig::default());
        assert!(p.sweeps_used() <= 16);
    }

    #[test]
    fn regions_are_spatially_coherent() {
        // Every region's average internal distance should be far below
        // the chip's diameter.
        let (chip, m) = setup(6);
        let p = partition_chip(&chip, &m, &PartitionConfig::default());
        for region in p.regions() {
            if region.len() < 2 {
                continue;
            }
            let mut total = 0.0;
            let mut count = 0usize;
            for i in 0..region.len() {
                for j in (i + 1)..region.len() {
                    total += chip.physical_distance(region[i], region[j]);
                    count += 1;
                }
            }
            let avg = total / count as f64;
            assert!(avg < 4.0, "region too spread: avg {avg}");
        }
    }
}
