//! The end-to-end YOUTIAO planner and its output wiring plan.

use std::collections::HashMap;

use youtiao_chip::distance::{equivalent_matrix, DistanceMatrix, EquivalentWeights};
use youtiao_chip::{Chip, DeviceId, QubitId};
use youtiao_circuit::schedule::SharedLineConstraint;
use youtiao_noise::CrosstalkModel;

use crate::context::PlanContext;
use crate::error::PlanError;
use crate::exec::ParallelExec;
use crate::fdm::{group_fdm_subset, FdmLine};
use crate::freq::{allocate_frequencies_kernels_in, FreqConfig, FrequencyPlan};
use crate::freq_kernels::FreqKernels;
use crate::kernels::PairKernels;
use crate::partition::{partition_chip, Partition, PartitionConfig};
use crate::scratch::ScratchPool;
use crate::tdm::{TdmConfig, TdmGroup};

/// Default FDM XY-line capacity (§5.3 evaluates with 5 qubits per line).
pub const DEFAULT_FDM_CAPACITY: usize = 5;

/// Default readout feedline capacity (George et al. demonstrate 8 qubits
/// per multiplexed readout line).
pub const DEFAULT_READOUT_CAPACITY: usize = 8;

/// Configuration of [`YoutiaoPlanner`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerConfig {
    /// Qubits per shared FDM XY line.
    pub fdm_capacity: usize,
    /// Qubits per multiplexed readout feedline.
    pub readout_capacity: usize,
    /// TDM grouping parameters (threshold θ).
    pub tdm: TdmConfig,
    /// Frequency-allocation parameters for the qubit XY band.
    pub freq: FreqConfig,
    /// Frequency-allocation parameters for the readout-resonator band
    /// (default 7.0-8.0 GHz at 30 MHz cells, the spacing George et al.
    /// use to keep inter-channel crosstalk below -30 dB).
    pub readout_freq: FreqConfig,
    /// Equivalent-distance weights used when no fitted crosstalk model is
    /// supplied.
    pub weights: EquivalentWeights,
    /// Optional generative partition; `None` plans the whole chip as one
    /// region (fine below ~100 qubits).
    pub partition: Option<PartitionConfig>,
    /// Optional local-search refinement of the TDM grouping
    /// ([`crate::refine`]); `None` keeps the pure greedy result. With a
    /// partition configured, refinement runs within each region — a
    /// DEMUX group never spans partition regions, matching the per-die
    /// containment the chiplet roadmap requires.
    pub refine: Option<crate::refine::RefineConfig>,
    /// Worker threads for the intra-plan parallel stages (per-region
    /// grouping/refinement, concurrent band allocation, scaling-row
    /// fills): `1` (the default) plans serially, `0` resolves to one
    /// thread per available core. Plans are **byte-identical across
    /// every value** — parallel stages merge in fixed index order
    /// (DESIGN.md §4j) — so the knob is pure wall-clock policy and is
    /// deliberately excluded from plan cache keys.
    pub plan_threads: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            fdm_capacity: DEFAULT_FDM_CAPACITY,
            readout_capacity: DEFAULT_READOUT_CAPACITY,
            tdm: TdmConfig::default(),
            freq: FreqConfig::default(),
            readout_freq: FreqConfig {
                band_ghz: (7.0, 8.0),
                cell_mhz: 30.0,
                swap_passes: 1,
                tuning_range_ghz: None,
            },
            weights: EquivalentWeights::balanced(),
            partition: None,
            refine: None,
            plan_threads: 1,
        }
    }
}

/// A complete YOUTIAO wiring plan: FDM XY lines with frequency
/// assignments, TDM Z groups with DEMUX levels, and multiplexed readout
/// feedlines.
///
/// Implements [`SharedLineConstraint`] so the TDM-aware scheduler can
/// consume it directly.
#[derive(Debug, Clone, PartialEq)]
pub struct WiringPlan {
    fdm_lines: Vec<FdmLine>,
    frequency_plan: FrequencyPlan,
    tdm_groups: Vec<TdmGroup>,
    readout_lines: Vec<Vec<QubitId>>,
    readout_frequency_plan: FrequencyPlan,
    partition: Option<Partition>,
    shared_group_of: HashMap<DeviceId, usize>,
}

impl WiringPlan {
    /// Assembles a plan from its parts, indexing multi-device TDM groups
    /// for the scheduler. Prefer [`YoutiaoPlanner::plan`].
    pub fn from_parts(
        fdm_lines: Vec<FdmLine>,
        frequency_plan: FrequencyPlan,
        tdm_groups: Vec<TdmGroup>,
        readout_lines: Vec<Vec<QubitId>>,
        readout_frequency_plan: FrequencyPlan,
        partition: Option<Partition>,
    ) -> Self {
        let mut shared_group_of = HashMap::new();
        for (g, group) in tdm_groups.iter().enumerate() {
            if group.len() > 1 {
                for &d in group.devices() {
                    shared_group_of.insert(d, g);
                }
            }
        }
        WiringPlan {
            fdm_lines,
            frequency_plan,
            tdm_groups,
            readout_lines,
            readout_frequency_plan,
            partition,
            shared_group_of,
        }
    }

    /// The FDM XY lines.
    pub fn fdm_lines(&self) -> &[FdmLine] {
        &self.fdm_lines
    }

    /// The per-qubit frequency assignment.
    pub fn frequency_plan(&self) -> &FrequencyPlan {
        &self.frequency_plan
    }

    /// The TDM Z-line groups.
    pub fn tdm_groups(&self) -> &[TdmGroup] {
        &self.tdm_groups
    }

    /// The multiplexed readout feedlines.
    pub fn readout_lines(&self) -> &[Vec<QubitId>] {
        &self.readout_lines
    }

    /// The per-qubit readout-resonator frequency assignment.
    pub fn readout_frequency_plan(&self) -> &FrequencyPlan {
        &self.readout_frequency_plan
    }

    /// Mutable access to the XY frequency assignment, for post-plan
    /// adjustments that preserve the per-line invariants (the multi-die
    /// link reconciliation swaps assignments within one FDM line).
    pub fn frequency_plan_mut(&mut self) -> &mut FrequencyPlan {
        &mut self.frequency_plan
    }

    /// Mutable access to the readout frequency assignment; see
    /// [`frequency_plan_mut`](Self::frequency_plan_mut).
    pub fn readout_frequency_plan_mut(&mut self) -> &mut FrequencyPlan {
        &mut self.readout_frequency_plan
    }

    /// The chip partition used, if any.
    pub fn partition(&self) -> Option<&Partition> {
        self.partition.as_ref()
    }

    /// Number of coaxial XY lines into the cryostat.
    pub fn num_xy_lines(&self) -> usize {
        self.fdm_lines.len()
    }

    /// Number of coaxial Z lines (one per TDM group, shared or direct).
    pub fn num_z_lines(&self) -> usize {
        self.tdm_groups.len()
    }

    /// Number of readout feedlines.
    pub fn num_readout_lines(&self) -> usize {
        self.readout_lines.len()
    }

    /// Total DEMUX digital select lines (cheap twisted pairs).
    pub fn demux_select_lines(&self) -> usize {
        self.tdm_groups
            .iter()
            .map(|g| g.level().select_lines())
            .sum()
    }

    /// The FDM line index carrying qubit `q`, if any.
    pub fn fdm_line_of(&self, q: QubitId) -> Option<usize> {
        self.fdm_lines.iter().position(|l| l.contains(q))
    }
}

impl SharedLineConstraint for WiringPlan {
    fn group_of(&self, device: DeviceId) -> Option<usize> {
        self.shared_group_of.get(&device).copied()
    }
}

/// Plans YOUTIAO wiring for a chip.
///
/// # Example
///
/// ```
/// use youtiao_chip::topology;
/// use youtiao_core::YoutiaoPlanner;
///
/// let chip = topology::heavy_square(3, 3);
/// let plan = YoutiaoPlanner::new(&chip).plan()?;
/// assert_eq!(plan.num_xy_lines(), 5); // ceil(21 / 5)
/// assert!(plan.num_z_lines() <= 14);
/// # Ok::<(), youtiao_core::PlanError>(())
/// ```
#[derive(Debug)]
pub struct YoutiaoPlanner<'a> {
    chip: &'a Chip,
    config: PlannerConfig,
    model: Option<&'a CrosstalkModel>,
    zz_model: Option<&'a CrosstalkModel>,
    activity: Option<&'a crate::tdm::ActivityProfile>,
    context: Option<&'a PlanContext>,
}

impl<'a> YoutiaoPlanner<'a> {
    /// Creates a planner with the default configuration.
    pub fn new(chip: &'a Chip) -> Self {
        YoutiaoPlanner {
            chip,
            config: PlannerConfig::default(),
            model: None,
            zz_model: None,
            activity: None,
            context: None,
        }
    }

    /// Supplies a workload activity profile; TDM grouping then exploits
    /// the workload's natural non-parallelism (§4.3, §5.2).
    pub fn with_activity(mut self, activity: &'a crate::tdm::ActivityProfile) -> Self {
        self.activity = Some(activity);
        self
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: PlannerConfig) -> Self {
        self.config = config;
        self
    }

    /// Supplies a fitted XY crosstalk model; its weights drive the
    /// equivalent-distance matrix and its predictions drive the
    /// noise-aware grouping and allocation stages.
    pub fn with_crosstalk_model(mut self, model: &'a CrosstalkModel) -> Self {
        self.model = model.into();
        self
    }

    /// Supplies a precomputed [`PlanContext`] so the matrices stage is
    /// skipped (and not reported to the plan hook): the context's
    /// equivalent-distance and crosstalk matrices are used directly.
    /// Sweeps build the context once per chip and share it — immutable,
    /// `Sync` — across every point that plans the same chip.
    ///
    /// The context must have been built for this planner's chip and
    /// resolved weights (the model's fitted weights, or the config's
    /// fallback); [`plan`](Self::plan) rejects a mismatch with
    /// [`PlanError::InvalidConfig`].
    pub fn with_context(mut self, context: &'a PlanContext) -> Self {
        self.context = Some(context);
        self
    }

    /// Supplies a fitted ZZ crosstalk model. When present it drives the
    /// *noisy non-parallelism* score of TDM grouping (simultaneous CZ
    /// gates interact through ZZ coupling, §4.1/§4.3), while the XY model
    /// keeps driving FDM grouping and frequency allocation.
    pub fn with_zz_model(mut self, model: &'a CrosstalkModel) -> Self {
        self.zz_model = model.into();
        self
    }

    /// Runs the full pipeline: (optional) partition → FDM grouping →
    /// TDM grouping → frequency allocation → readout assignment.
    ///
    /// # Errors
    ///
    /// * [`PlanError::EmptyChip`] — the chip has no qubits.
    /// * [`PlanError::InvalidConfig`] — zero FDM/readout capacity or a
    ///   degenerate frequency configuration.
    pub fn plan(&self) -> Result<WiringPlan, PlanError> {
        self.plan_with_hook(&mut |_, _| {})
    }

    /// Runs [`plan`](Self::plan) while reporting each sub-stage's wall
    /// time to `hook` (stage name, elapsed). Stages that are not
    /// configured (partition, refine) are not reported. A final
    /// `"total"` event carries the whole call's wall time, after every
    /// sub-stage. The flow layer uses this to attach tracer child spans
    /// without this crate depending on the observability machinery.
    ///
    /// With `plan_threads > 1` stages overlap in wall time, so
    /// sub-stage durations may sum past `"total"`; at the default
    /// serial setting the disjoint top-level stages always sum to at
    /// most `"total"`.
    ///
    /// # Errors
    ///
    /// Same as [`plan`](Self::plan).
    pub fn plan_with_hook(
        &self,
        hook: &mut dyn FnMut(&'static str, std::time::Duration),
    ) -> Result<WiringPlan, PlanError> {
        use std::time::Instant;

        let total_started = Instant::now();
        let chip = self.chip;
        if chip.num_qubits() == 0 {
            return Err(PlanError::EmptyChip);
        }
        if self.config.fdm_capacity == 0 {
            return Err(PlanError::InvalidConfig("fdm capacity must be positive"));
        }
        if self.config.readout_capacity == 0 {
            return Err(PlanError::InvalidConfig(
                "readout capacity must be positive",
            ));
        }

        let weights = self
            .model
            .map(|m| m.weights())
            .unwrap_or(self.config.weights);
        // ZZ crosstalk (if fitted) scores TDM noisy non-parallelism; it
        // falls back to the XY matrix otherwise.
        let owned: (DistanceMatrix, DistanceMatrix);
        let mut zz_local: Option<DistanceMatrix> = None;
        let (eq, xtalk): (&DistanceMatrix, &DistanceMatrix) = match self.context {
            Some(ctx) => {
                ctx.check(chip, weights)?;
                if ctx.zz_crosstalk().is_none() {
                    zz_local = self.zz_model.map(|m| {
                        crosstalk_matrix(chip, &equivalent_matrix(chip, m.weights()), Some(m))
                    });
                }
                (ctx.equivalent(), ctx.crosstalk())
            }
            None => {
                let started = Instant::now();
                let eq = equivalent_matrix(chip, weights);
                let xtalk = crosstalk_matrix(chip, &eq, self.model);
                zz_local = self.zz_model.map(|m| {
                    crosstalk_matrix(chip, &equivalent_matrix(chip, m.weights()), Some(m))
                });
                hook("matrices", started.elapsed());
                owned = (eq, xtalk);
                (&owned.0, &owned.1)
            }
        };
        let tdm_xtalk = zz_local
            .as_ref()
            .or_else(|| self.context.and_then(PlanContext::zz_crosstalk))
            .unwrap_or(xtalk);

        // Grouping kernels must be built on the exact matrix TDM
        // grouping scores with. A context carries kernels for its own
        // tdm matrix (ZZ when fitted into the context, XY otherwise),
        // so they are reusable unless a planner-local ZZ model
        // overrides that choice.
        let kernels_local;
        let kernels: &PairKernels = match self.context {
            Some(ctx) if zz_local.is_none() => ctx.kernels(),
            _ => {
                let started = Instant::now();
                kernels_local = PairKernels::build(chip, tdm_xtalk);
                hook("kernels", started.elapsed());
                &kernels_local
            }
        };

        // With no workload profile supplied, approximate natural
        // non-parallelism by the topology's brickwork pattern (shared
        // by every region and the refinement pass).
        let derived_activity;
        let activity = match self.activity {
            Some(activity) => activity,
            None => {
                derived_activity = crate::tdm::brickwork_activity(chip);
                &derived_activity
            }
        };

        // Partition (stage 1/2), then group each region independently
        // (stage 3); without a partition the whole chip is one region.
        let (partition, regions): (Option<Partition>, Vec<Vec<QubitId>>) =
            match &self.config.partition {
                Some(pc) => {
                    let started = Instant::now();
                    let p = partition_chip(chip, eq, pc);
                    let regions = p.regions().to_vec();
                    hook("partition", started.elapsed());
                    (Some(p), regions)
                }
                None => (None, vec![chip.qubit_ids().collect()]),
            };

        // The parallel executor and the scratch-arena pool serving
        // every stage below. A context's pool persists across plans so
        // buffer capacity warms up; a context-free plan gets a local
        // (cold) pool with identical semantics.
        let exec = ParallelExec::new(self.config.plan_threads);
        let local_pool;
        let pool: &ScratchPool = match self.context {
            Some(ctx) => ctx.scratch(),
            None => {
                local_pool = ScratchPool::new();
                &local_pool
            }
        };

        // Regions are planned concurrently — each worker checks out its
        // own arena — and results merge in region-index order, so the
        // concatenated lines/groups are exactly the serial loop's.
        // Refinement runs inside the region task: a group never spans
        // regions, so refining per region keeps the parallel stage
        // self-contained (and with no partition the single region makes
        // it the global refinement).
        let tdm_config = &self.config.tdm;
        let fdm_capacity = self.config.fdm_capacity;
        let refine_config = self.config.refine;
        let region_results = exec.run(regions.len(), |r| {
            let region = &regions[r];
            let mut arena = pool.checkout();
            let started = Instant::now();
            let lines = group_fdm_subset(chip, eq, fdm_capacity, region);
            let fdm_elapsed = started.elapsed();
            // A coupler belongs to the region of its lower endpoint.
            let started = Instant::now();
            let devices: Vec<DeviceId> = region
                .iter()
                .map(|&q| DeviceId::Qubit(q))
                .chain(chip.couplers().filter_map(|c| {
                    let (a, _) = c.endpoints();
                    region.contains(&a).then_some(DeviceId::Coupler(c.id()))
                }))
                .collect();
            let mut groups = crate::tdm::group_tdm_kernels_in(
                kernels, tdm_config, &devices, activity, &mut arena,
            );
            let tdm_elapsed = started.elapsed();
            let mut refine_elapsed = std::time::Duration::ZERO;
            if let Some(refine) = &refine_config {
                let started = Instant::now();
                let (refined, _removed) = crate::refine::refine_tdm_groups_kernels_in(
                    kernels, activity, tdm_config, groups, refine, &mut arena,
                );
                groups = refined;
                refine_elapsed = started.elapsed();
            }
            (lines, groups, fdm_elapsed, tdm_elapsed, refine_elapsed)
        });

        let mut fdm_elapsed = std::time::Duration::ZERO;
        let mut tdm_elapsed = std::time::Duration::ZERO;
        let mut refine_elapsed = std::time::Duration::ZERO;
        let mut fdm_lines = Vec::new();
        let mut tdm_groups = Vec::new();
        for (lines, groups, fdm_e, tdm_e, refine_e) in region_results {
            fdm_lines.extend(lines);
            tdm_groups.extend(groups);
            fdm_elapsed += fdm_e;
            tdm_elapsed += tdm_e;
            refine_elapsed += refine_e;
        }
        hook("fdm_grouping", fdm_elapsed);
        hook("tdm_grouping", tdm_elapsed);
        if refine_config.is_some() {
            hook("refine", refine_elapsed);
        }

        // Freq kernels always follow the XY matrix (both bands score XY
        // crosstalk), so a context's kernels are reusable even when a
        // planner-local ZZ model overrides the grouping kernels.
        let freq_kernels_local;
        let freq_kernels: &FreqKernels = match self.context {
            Some(ctx) => ctx.freq_kernels(),
            None => {
                let started = Instant::now();
                freq_kernels_local = FreqKernels::build(xtalk);
                hook("freq.kernels", started.elapsed());
                &freq_kernels_local
            }
        };

        // The two bands are independent allocations, so they run
        // concurrently. Hook events are buffered per band and replayed
        // in the fixed serial order (freq.* then readout.*) after the
        // join — the hook stream is indistinguishable from a serial
        // run, and so are the plans (each band's allocation is already
        // deterministic for any executor).
        let freq_config = &self.config.freq;
        let readout_config = &self.config.readout_freq;
        let readout_capacity = self.config.readout_capacity;
        let fdm_lines_ref = &fdm_lines;
        let (freq_out, readout_out) = exec.join(
            || {
                let mut events: Vec<(&'static str, std::time::Duration)> = Vec::new();
                let started = Instant::now();
                let mut arena = pool.checkout();
                let result = allocate_frequencies_kernels_in(
                    chip,
                    fdm_lines_ref,
                    freq_kernels,
                    xtalk,
                    freq_config,
                    &mut |stage, elapsed| {
                        events.push((
                            match stage {
                                "place" => "freq.place",
                                _ => "freq.swap",
                            },
                            elapsed,
                        ))
                    },
                    &mut arena,
                    &exec,
                );
                (result, events, started.elapsed())
            },
            || {
                let mut events: Vec<(&'static str, std::time::Duration)> = Vec::new();
                let started = Instant::now();
                let mut arena = pool.checkout();
                let qubits: Vec<QubitId> = chip.qubit_ids().collect();
                let readout_lines: Vec<Vec<QubitId>> = qubits
                    .chunks(readout_capacity)
                    .map(<[QubitId]>::to_vec)
                    .collect();
                // Resonator frequencies share the allocator: a feedline
                // is an FDM line in the readout band.
                let readout_as_fdm: Vec<FdmLine> =
                    readout_lines.iter().cloned().map(FdmLine::new).collect();
                let result = allocate_frequencies_kernels_in(
                    chip,
                    &readout_as_fdm,
                    freq_kernels,
                    xtalk,
                    readout_config,
                    &mut |stage, elapsed| {
                        events.push((
                            match stage {
                                "place" => "readout.place",
                                _ => "readout.swap",
                            },
                            elapsed,
                        ))
                    },
                    &mut arena,
                    &exec,
                );
                (result, readout_lines, events, started.elapsed())
            },
        );

        let (freq_result, freq_events, freq_wall) = freq_out;
        for (name, elapsed) in freq_events {
            hook(name, elapsed);
        }
        let frequency_plan = freq_result?;
        hook("freq_alloc", freq_wall);

        let (readout_result, readout_lines, readout_events, readout_wall) = readout_out;
        for (name, elapsed) in readout_events {
            hook(name, elapsed);
        }
        let readout_frequency_plan = readout_result?;
        hook("readout", readout_wall);

        let plan = WiringPlan::from_parts(
            fdm_lines,
            frequency_plan,
            tdm_groups,
            readout_lines,
            readout_frequency_plan,
            partition,
        );
        hook("total", total_started.elapsed());
        Ok(plan)
    }
}

/// Builds the qubit-pair crosstalk matrix: fitted-model predictions when
/// a model is available, otherwise an exponential proxy over the
/// equivalent distance (amplitude 10⁻², decay length 2).
pub fn crosstalk_matrix(
    chip: &Chip,
    equivalent: &DistanceMatrix,
    model: Option<&CrosstalkModel>,
) -> DistanceMatrix {
    let mut m = DistanceMatrix::zeros(chip.num_qubits());
    for (a, b, d) in equivalent.iter_pairs() {
        let x = match model {
            Some(model) => {
                if d.is_finite() {
                    model.predict_equivalent(d)
                } else {
                    0.0
                }
            }
            None => {
                if d.is_finite() {
                    1e-2 * (-d / 2.0).exp()
                } else {
                    0.0
                }
            }
        };
        m.set(a, b, x);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtiao_chip::topology;
    use youtiao_circuit::benchmarks;
    use youtiao_circuit::schedule::{schedule_asap, schedule_with_tdm};
    use youtiao_circuit::transpile::transpile;

    #[test]
    fn plan_covers_every_qubit_and_device() {
        let chip = topology::square_grid(6, 6);
        let plan = YoutiaoPlanner::new(&chip).plan().unwrap();
        let fdm_total: usize = plan.fdm_lines().iter().map(FdmLine::len).sum();
        assert_eq!(fdm_total, 36);
        let tdm_total: usize = plan.tdm_groups().iter().map(TdmGroup::len).sum();
        assert_eq!(tdm_total, chip.num_z_devices());
        let ro_total: usize = plan.readout_lines().iter().map(Vec::len).sum();
        assert_eq!(ro_total, 36);
    }

    #[test]
    fn line_counts_match_paper_formulas() {
        let chip = topology::square_grid(6, 6);
        let plan = YoutiaoPlanner::new(&chip).plan().unwrap();
        assert_eq!(plan.num_xy_lines(), 8); // ceil(36/5)
        assert_eq!(plan.num_readout_lines(), 5); // ceil(36/8)
        assert!(plan.num_z_lines() < chip.num_z_devices() / 2);
    }

    #[test]
    fn scheduler_accepts_plans_without_unrealizable_gates() {
        let chip = topology::square_grid(3, 3);
        let plan = YoutiaoPlanner::new(&chip).plan().unwrap();
        for b in benchmarks::Benchmark::ALL {
            let physical = transpile(&b.generate(9), &chip).unwrap();
            let s = schedule_with_tdm(&physical, &chip, &plan);
            assert!(s.is_ok(), "{} failed: {:?}", b.name(), s.err());
        }
    }

    #[test]
    fn tdm_depth_overhead_is_modest() {
        let chip = topology::square_grid(4, 4);
        let plan = YoutiaoPlanner::new(&chip).plan().unwrap();
        let physical = transpile(&benchmarks::vqc(16, 4), &chip).unwrap();
        let base = schedule_asap(&physical, &chip).unwrap();
        let tdm = schedule_with_tdm(&physical, &chip, &plan).unwrap();
        let ratio = tdm.two_qubit_depth() as f64 / base.two_qubit_depth() as f64;
        assert!(ratio >= 1.0);
        assert!(ratio < 3.0, "tdm depth blew up: {ratio}");
    }

    #[test]
    fn partitioned_plan_still_covers_everything() {
        let chip = topology::square_grid(6, 6);
        let cfg = PlannerConfig {
            partition: Some(PartitionConfig::default()),
            ..Default::default()
        };
        let plan = YoutiaoPlanner::new(&chip).with_config(cfg).plan().unwrap();
        assert!(plan.partition().is_some());
        let fdm_total: usize = plan.fdm_lines().iter().map(FdmLine::len).sum();
        assert_eq!(fdm_total, 36);
        let tdm_total: usize = plan.tdm_groups().iter().map(TdmGroup::len).sum();
        assert_eq!(tdm_total, chip.num_z_devices());
    }

    #[test]
    fn fitted_model_plans_successfully() {
        use youtiao_noise::data::{synthesize, CrosstalkKind, SynthConfig};
        use youtiao_noise::fit::{fit_crosstalk_model, FitConfig};
        let chip = topology::square_grid(4, 4);
        let samples = synthesize(&chip, CrosstalkKind::Xy, &SynthConfig::xy(), 5);
        let model = fit_crosstalk_model(&samples, &FitConfig::fast()).unwrap();
        let plan = YoutiaoPlanner::new(&chip)
            .with_crosstalk_model(&model)
            .plan()
            .unwrap();
        assert_eq!(plan.num_xy_lines(), 4); // ceil(16/5)
    }

    #[test]
    fn constraint_maps_only_shared_groups() {
        let chip = topology::square_grid(3, 3);
        let plan = YoutiaoPlanner::new(&chip).plan().unwrap();
        for (g, group) in plan.tdm_groups().iter().enumerate() {
            for &d in group.devices() {
                if group.len() > 1 {
                    assert_eq!(plan.group_of(d), Some(g));
                } else {
                    assert_eq!(plan.group_of(d), None);
                }
            }
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let chip = topology::linear(4);
        let bad = PlannerConfig {
            fdm_capacity: 0,
            ..Default::default()
        };
        assert!(matches!(
            YoutiaoPlanner::new(&chip).with_config(bad).plan(),
            Err(PlanError::InvalidConfig(_))
        ));
        let bad2 = PlannerConfig {
            readout_capacity: 0,
            ..Default::default()
        };
        assert!(YoutiaoPlanner::new(&chip).with_config(bad2).plan().is_err());
    }

    #[test]
    fn fdm_line_of_lookup() {
        let chip = topology::linear(7);
        let plan = YoutiaoPlanner::new(&chip).plan().unwrap();
        for q in chip.qubit_ids() {
            let line = plan.fdm_line_of(q).unwrap();
            assert!(plan.fdm_lines()[line].contains(q));
        }
    }

    #[test]
    fn refinement_reduces_or_keeps_z_lines() {
        let chip = topology::square_grid(5, 5);
        let greedy = YoutiaoPlanner::new(&chip).plan().unwrap();
        let refined = YoutiaoPlanner::new(&chip)
            .with_config(PlannerConfig {
                refine: Some(crate::refine::RefineConfig::default()),
                ..Default::default()
            })
            .plan()
            .unwrap();
        assert!(refined.num_z_lines() <= greedy.num_z_lines());
        let total: usize = refined.tdm_groups().iter().map(TdmGroup::len).sum();
        assert_eq!(total, chip.num_z_devices());
    }

    #[test]
    fn zz_model_is_accepted_and_plans_cleanly() {
        use youtiao_noise::data::{synthesize, CrosstalkKind, SynthConfig};
        use youtiao_noise::fit::{fit_crosstalk_model, FitConfig};
        let chip = topology::square_grid(4, 4);
        let xy = fit_crosstalk_model(
            &synthesize(&chip, CrosstalkKind::Xy, &SynthConfig::xy(), 5),
            &FitConfig::fast(),
        )
        .unwrap();
        let zz = fit_crosstalk_model(
            &synthesize(&chip, CrosstalkKind::Zz, &SynthConfig::zz(), 5),
            &FitConfig::fast(),
        )
        .unwrap();
        let plan = YoutiaoPlanner::new(&chip)
            .with_crosstalk_model(&xy)
            .with_zz_model(&zz)
            .plan()
            .unwrap();
        let tdm_total: usize = plan.tdm_groups().iter().map(TdmGroup::len).sum();
        assert_eq!(tdm_total, chip.num_z_devices());
    }

    #[test]
    fn readout_frequencies_in_band_and_separated() {
        let chip = topology::square_grid(4, 4);
        let plan = YoutiaoPlanner::new(&chip).plan().unwrap();
        let rp = plan.readout_frequency_plan();
        for q in chip.qubit_ids() {
            let f = rp.frequency_ghz(q);
            assert!((7.0..=8.0).contains(&f), "{q} at {f}");
        }
        for line in plan.readout_lines() {
            for i in 0..line.len() {
                for j in (i + 1)..line.len() {
                    let df = (rp.frequency_ghz(line[i]) - rp.frequency_ghz(line[j])).abs();
                    assert!(df >= 0.02, "feedline spacing {df} GHz");
                }
            }
        }
    }

    #[test]
    fn one_to_eight_demuxes_reduce_z_lines_further() {
        let chip = topology::square_grid(6, 6);
        let base = YoutiaoPlanner::new(&chip).plan().unwrap();
        let deep_cfg = PlannerConfig {
            tdm: crate::tdm::TdmConfig {
                theta: f64::INFINITY,
                allow_one_to_eight: true,
                ..Default::default()
            },
            ..Default::default()
        };
        let deep = YoutiaoPlanner::new(&chip)
            .with_config(deep_cfg)
            .plan()
            .unwrap();
        assert!(deep.num_z_lines() <= base.num_z_lines());
        assert!(deep
            .tdm_groups()
            .iter()
            .any(|g| g.level() == crate::tdm::DemuxLevel::OneToEight));
    }

    #[test]
    fn plan_hook_reports_sub_stages_in_order() {
        let chip = topology::square_grid(5, 5);
        let cfg = PlannerConfig {
            partition: Some(PartitionConfig::default()),
            refine: Some(crate::refine::RefineConfig::default()),
            ..Default::default()
        };
        let mut stages = Vec::new();
        let plan = YoutiaoPlanner::new(&chip)
            .with_config(cfg)
            .plan_with_hook(&mut |name, elapsed| stages.push((name, elapsed)))
            .unwrap();
        let names: Vec<&str> = stages.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            [
                "matrices",
                "kernels",
                "partition",
                "fdm_grouping",
                "tdm_grouping",
                "refine",
                "freq.kernels",
                "freq.place",
                "freq.swap",
                "freq_alloc",
                "readout.place",
                "readout.swap",
                "readout",
                "total"
            ]
        );
        // The hook must observe the same plan the caller gets.
        assert!(plan.num_z_lines() > 0);

        // At the default serial thread count the disjoint top-level
        // stages partition a subset of the total wall time, so their
        // durations must sum to at most "total" (freq.place/swap nest
        // inside freq_alloc and readout.place/swap inside readout, so
        // they are excluded from the sum).
        let total = stages
            .iter()
            .find(|(n, _)| *n == "total")
            .map(|(_, e)| *e)
            .unwrap();
        let top_level: std::time::Duration = stages
            .iter()
            .filter(|(n, _)| !n.contains('.') && *n != "total")
            .map(|(_, e)| *e)
            .sum();
        assert!(
            top_level <= total,
            "stage sum {top_level:?} exceeds total {total:?}"
        );

        // Unconfigured stages are not reported.
        let mut names = Vec::new();
        YoutiaoPlanner::new(&chip)
            .plan_with_hook(&mut |name, _| names.push(name))
            .unwrap();
        assert!(!names.contains(&"partition"));
        assert!(!names.contains(&"refine"));
        assert_eq!(names.last(), Some(&"total"));
    }

    #[test]
    fn plan_tdm_stages_match_naive_pipeline() {
        // End-to-end differential: the planner's kernelized TDM
        // grouping + refinement must be byte-identical to running the
        // retained naive implementations over the same region
        // decomposition (grouping and refinement both per region — a
        // group never spans partition regions).
        let chip = topology::square_grid(5, 5);
        let cfg = PlannerConfig {
            partition: Some(PartitionConfig::default()),
            refine: Some(crate::refine::RefineConfig::default()),
            ..Default::default()
        };
        let plan = YoutiaoPlanner::new(&chip)
            .with_config(cfg.clone())
            .plan()
            .unwrap();

        let eq = equivalent_matrix(&chip, cfg.weights);
        let xtalk = crosstalk_matrix(&chip, &eq, None);
        let activity = crate::tdm::brickwork_activity(&chip);
        let partition = partition_chip(&chip, &eq, cfg.partition.as_ref().unwrap());
        let mut naive_refined = Vec::new();
        for region in partition.regions() {
            let devices: Vec<DeviceId> = region
                .iter()
                .map(|&q| DeviceId::Qubit(q))
                .chain(chip.couplers().filter_map(|c| {
                    let (a, _) = c.endpoints();
                    region.contains(&a).then_some(DeviceId::Coupler(c.id()))
                }))
                .collect();
            let grouped = crate::tdm::naive::group_tdm_with_activity_naive(
                &chip, &xtalk, &cfg.tdm, &devices, &activity,
            );
            let (refined, _) = crate::refine::naive::refine_tdm_groups_naive(
                &chip,
                &xtalk,
                &activity,
                &cfg.tdm,
                grouped,
                cfg.refine.as_ref().unwrap(),
            );
            naive_refined.extend(refined);
        }
        assert_eq!(plan.tdm_groups(), naive_refined.as_slice());
    }

    #[test]
    fn plans_are_byte_identical_across_thread_counts() {
        // The PR 4 / PR 7 byte-identity story extended to parallelism:
        // for every layout family × partitioning choice, plans at
        // plan_threads ∈ {2, 4, 8} must equal the serial reference —
        // including the XY and readout frequency bands bit-for-bit.
        use youtiao_chip::surface::SurfaceCode;
        let chips = [
            topology::square_grid(5, 5),
            SurfaceCode::rotated(3).into_chip(),
            topology::heavy_hexagon(2, 3),
        ];
        for chip in &chips {
            for partition in [None, Some(PartitionConfig::default())] {
                let base = PlannerConfig {
                    partition,
                    refine: Some(crate::refine::RefineConfig::default()),
                    ..Default::default()
                };
                let reference = YoutiaoPlanner::new(chip)
                    .with_config(base.clone())
                    .plan()
                    .unwrap();
                for threads in [2usize, 4, 8] {
                    let cfg = PlannerConfig {
                        plan_threads: threads,
                        ..base.clone()
                    };
                    let plan = YoutiaoPlanner::new(chip).with_config(cfg).plan().unwrap();
                    assert_eq!(
                        plan,
                        reference,
                        "{} qubits, partitioned={}, {threads} threads",
                        chip.num_qubits(),
                        partition.is_some()
                    );
                    for q in chip.qubit_ids() {
                        assert_eq!(
                            plan.frequency_plan().frequency_ghz(q).to_bits(),
                            reference.frequency_plan().frequency_ghz(q).to_bits(),
                            "XY band {q} moved at {threads} threads"
                        );
                        assert_eq!(
                            plan.readout_frequency_plan().frequency_ghz(q).to_bits(),
                            reference
                                .readout_frequency_plan()
                                .frequency_ghz(q)
                                .to_bits(),
                            "readout band {q} moved at {threads} threads"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn context_plans_are_thread_count_invariant_too() {
        // Same byte-identity through the shared-context path: the
        // context's scratch pool serves concurrent checkouts and a warm
        // pool must not change any plan.
        let chip = topology::square_grid(5, 5);
        let ctx = PlanContext::build(&chip, None, EquivalentWeights::balanced());
        let cfg = PlannerConfig {
            partition: Some(PartitionConfig::default()),
            refine: Some(crate::refine::RefineConfig::default()),
            ..Default::default()
        };
        let reference = YoutiaoPlanner::new(&chip)
            .with_config(cfg.clone())
            .with_context(&ctx)
            .plan()
            .unwrap();
        for threads in [1usize, 2, 8] {
            for _warm in 0..2 {
                let plan = YoutiaoPlanner::new(&chip)
                    .with_config(PlannerConfig {
                        plan_threads: threads,
                        ..cfg.clone()
                    })
                    .with_context(&ctx)
                    .plan()
                    .unwrap();
                assert_eq!(plan, reference, "{threads} threads");
            }
        }
    }

    #[test]
    fn demux_select_lines_counted() {
        let chip = topology::heavy_square(3, 3);
        let plan = YoutiaoPlanner::new(&chip).plan().unwrap();
        let manual: usize = plan
            .tdm_groups()
            .iter()
            .map(|g| g.level().select_lines())
            .sum();
        assert_eq!(plan.demux_select_lines(), manual);
        assert!(plan.demux_select_lines() > 0);
    }
}
