//! Local-search refinement of TDM groupings.
//!
//! The §4.3 grouping is greedy; this optional pass hill-climbs the
//! result:
//!
//! 1. **absorb** — a device on a dedicated (singleton) line moves into
//!    any group with spare capacity whose legality and activity budget it
//!    satisfies, deleting a Z line outright;
//! 2. **swap** — two devices in different groups exchange places when
//!    that strictly reduces the total expected serialization (the sum of
//!    per-group extra windows).
//!
//! Every accepted move keeps the grouping a legal partition, so the
//! refined plan remains schedulable.
//!
//! Like the grouping pass, the swap inner loop runs against
//! [`PairKernels`](crate::kernels::PairKernels): legality and noise are
//! O(1) table lookups, and per-group slot-count states turn the
//! extra-windows evaluation of a candidate swap into an O(affected
//! slots) delta instead of two full recounts. The original
//! implementation is retained in [`naive`] for differential testing;
//! both paths produce byte-identical refinements.

use youtiao_chip::distance::DistanceMatrix;
use youtiao_chip::{Chip, DeviceId};

use crate::kernels::PairKernels;
use crate::scratch::Scratch;
use crate::tdm::{ActivityProfile, TdmConfig, TdmGroup};

/// Configuration of [`refine_tdm_groups`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefineConfig {
    /// Hill-climbing sweeps over all groups (2 usually converges).
    pub passes: usize,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig { passes: 2 }
    }
}

/// Refines a TDM grouping in place, returning the improved grouping and
/// the number of Z lines removed.
///
/// Builds a throwaway [`PairKernels`] and delegates to
/// [`refine_tdm_groups_kernels`]; callers refining the same chip
/// repeatedly should build the kernels once and call the kernel variant
/// directly.
///
/// # Panics
///
/// Panics if `xtalk` does not match the chip dimension.
pub fn refine_tdm_groups(
    chip: &Chip,
    xtalk: &DistanceMatrix,
    activity: &ActivityProfile,
    config: &TdmConfig,
    groups: Vec<TdmGroup>,
    refine: &RefineConfig,
) -> (Vec<TdmGroup>, usize) {
    assert_eq!(
        xtalk.len(),
        chip.num_qubits(),
        "crosstalk matrix size mismatch"
    );
    let kernels = PairKernels::build(chip, xtalk);
    refine_tdm_groups_kernels(&kernels, activity, config, groups, refine)
}

/// [`refine_tdm_groups`] against precomputed [`PairKernels`]: the
/// refinement hot path. Produces byte-identical refinements to the
/// naive recomputation (differential tests enforce it).
pub fn refine_tdm_groups_kernels(
    kernels: &PairKernels,
    activity: &ActivityProfile,
    config: &TdmConfig,
    groups: Vec<TdmGroup>,
    refine: &RefineConfig,
) -> (Vec<TdmGroup>, usize) {
    refine_tdm_groups_kernels_in(
        kernels,
        activity,
        config,
        groups,
        refine,
        &mut Scratch::default(),
    )
}

/// [`refine_tdm_groups_kernels`] drawing its densified activity masks
/// from a scratch arena so repeated plans reuse capacity instead of
/// reallocating. Output is identical — the arena only changes where the
/// buffer lives.
pub fn refine_tdm_groups_kernels_in(
    kernels: &PairKernels,
    activity: &ActivityProfile,
    config: &TdmConfig,
    mut groups: Vec<TdmGroup>,
    refine: &RefineConfig,
    scratch: &mut Scratch,
) -> (Vec<TdmGroup>, usize) {
    let masks = kernels.densify_activity_in(activity, scratch);
    let mask_of = |d: DeviceId| masks[kernels.dense(d)];
    let mut states: Vec<GroupState> = groups
        .iter()
        .map(|g| GroupState::build(g.devices(), &mask_of))
        .collect();
    let mut removed = 0usize;

    for _ in 0..refine.passes {
        let mut improved = false;

        // Absorb singletons.
        let mut i = 0;
        while i < groups.len() {
            if groups[i].len() != 1 {
                i += 1;
                continue;
            }
            let lone = groups[i].devices()[0];
            let lone_mask = mask_of(lone);
            let mut target = None;
            for (j, g) in groups.iter().enumerate() {
                if j == i || g.len() >= g.level().channel_capacity() || g.len() < 2 {
                    continue;
                }
                if !g.devices().iter().all(|&m| kernels.legal(m, lone)) {
                    continue;
                }
                if states[j].extra_after_add(lone_mask) > config.max_shared_slots {
                    continue;
                }
                target = Some(j);
                break;
            }
            if let Some(j) = target {
                let level = groups[j].level();
                let mut devices = groups[j].devices().to_vec();
                devices.push(lone);
                groups[j] = TdmGroup::new(level, devices);
                states[j].add(lone_mask);
                groups.remove(i);
                states.remove(i);
                removed += 1;
                improved = true;
                // Do not advance: the next group shifted into slot i.
            } else {
                i += 1;
            }
        }

        // Pairwise swaps reducing total expected serialization, breaking
        // ties toward higher intra-group crosstalk (noisy non-parallel
        // devices belong together).
        for a in 0..groups.len() {
            for b in (a + 1)..groups.len() {
                let (best, gain) = best_swap_kernels(
                    kernels,
                    &mask_of,
                    config,
                    (&groups[a], &states[a]),
                    (&groups[b], &states[b]),
                );
                if gain > 0 {
                    if let Some((ia, ib)) = best {
                        let mut da = groups[a].devices().to_vec();
                        let mut db = groups[b].devices().to_vec();
                        std::mem::swap(&mut da[ia], &mut db[ib]);
                        states[a] = GroupState::build(&da, &mask_of);
                        states[b] = GroupState::build(&db, &mask_of);
                        groups[a] = TdmGroup::new(groups[a].level(), da);
                        groups[b] = TdmGroup::new(groups[b].level(), db);
                        improved = true;
                    }
                }
            }
        }

        if !improved {
            break;
        }
    }
    scratch.retire_u32(masks);
    (groups, removed)
}

/// Per-group activity bookkeeping: how many members are busy in each
/// time slot, which slots are occupied at all, and the resulting extra
/// serialized windows (`Σ_t max(0, count_t − 1)`).
///
/// Counts are bounded by the DEMUX channel capacity (≤ 8), so `u16`
/// arithmetic is exact and matches the saturating accessor the naive
/// path sums with.
struct GroupState {
    counts: [u16; 32],
    occupied: u32,
    extra: u32,
}

impl GroupState {
    fn build<F: Fn(DeviceId) -> u32>(devices: &[DeviceId], mask_of: &F) -> Self {
        let mut s = GroupState {
            counts: [0; 32],
            occupied: 0,
            extra: 0,
        };
        for &d in devices {
            s.add(mask_of(d));
        }
        s
    }

    /// Registers one more member with activity `mask`. Every busy slot
    /// that is already occupied serializes exactly one more window.
    fn add(&mut self, mask: u32) {
        self.extra += (mask & self.occupied).count_ones();
        self.occupied |= mask;
        let mut bits = mask;
        while bits != 0 {
            let t = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            self.counts[t] += 1;
        }
    }

    /// Extra windows if a member with activity `mask` were added.
    fn extra_after_add(&self, mask: u32) -> u32 {
        self.extra + (mask & self.occupied).count_ones()
    }

    /// Extra windows if a member with activity `out` were replaced by
    /// one with activity `fill` — an O(affected slots) delta over the
    /// current state, no recount.
    fn extra_after_swap(&self, out: u32, fill: u32) -> u32 {
        let mut extra = i64::from(self.extra);
        let mut bits = out | fill;
        while bits != 0 {
            let t = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let c = i64::from(self.counts[t]);
            let o = i64::from((out >> t) & 1);
            let f = i64::from((fill >> t) & 1);
            extra += (c - o + f - 1).max(0) - (c - 1).max(0);
        }
        u32::try_from(extra).expect("extra windows cannot go negative")
    }
}

/// Finds the single-pair swap between two groups with the largest
/// reduction in total extra windows (if any), respecting legality and
/// the per-group activity budget (`config.max_shared_slots`). Ties on
/// equal reduction break toward higher post-swap intra-group crosstalk
/// (noisy non-parallel devices belong together), then toward the
/// earliest candidate in scan order, keeping the result deterministic.
///
/// All pairwise terms are kernel lookups; the swapped groups are never
/// materialized. The full pairwise legality check is retained (rather
/// than only pairs involving the swapped devices) because callers may
/// hand in groups that were never internally legal, and the naive
/// reference rejects those swaps too.
fn best_swap_kernels<F: Fn(DeviceId) -> u32>(
    kernels: &PairKernels,
    mask_of: &F,
    config: &TdmConfig,
    (ga, sa): (&TdmGroup, &GroupState),
    (gb, sb): (&TdmGroup, &GroupState),
) -> (Option<(usize, usize)>, u32) {
    let da = ga.devices();
    let db = gb.devices();
    let before = sa.extra + sb.extra;
    let mut best: Option<(usize, usize)> = None;
    let mut best_after = before;
    let mut best_xtalk = f64::NEG_INFINITY;
    for ia in 0..da.len() {
        let out_a = mask_of(da[ia]);
        for ib in 0..db.len() {
            // Evaluate the swapped groups without building them: index
            // `replace_at` reads the incoming device, everything else
            // the original, preserving the naive pair iteration order
            // (and therefore f64 summation order) exactly.
            let na = |i: usize| if i == ia { db[ib] } else { da[i] };
            let nb = |i: usize| if i == ib { da[ia] } else { db[i] };
            let legal = |g: &dyn Fn(usize) -> DeviceId, len: usize| {
                (0..len).all(|i| ((i + 1)..len).all(|j| kernels.legal(g(i), g(j))))
            };
            if !legal(&na, da.len()) || !legal(&nb, db.len()) {
                continue;
            }
            let out_b = mask_of(db[ib]);
            let ea = sa.extra_after_swap(out_a, out_b);
            let eb = sb.extra_after_swap(out_b, out_a);
            // A swap may lower the *total* while pushing one group past
            // its activity budget; such groups would serialize more than
            // max_shared_slots windows, so reject the move outright.
            if ea > config.max_shared_slots || eb > config.max_shared_slots {
                continue;
            }
            let after = ea + eb;
            if after > best_after || (after == best_after && best.is_none()) {
                continue;
            }
            let intra = |g: &dyn Fn(usize) -> DeviceId, len: usize| {
                let mut total = 0.0;
                for i in 0..len {
                    for j in (i + 1)..len {
                        total += kernels.noise(g(i), g(j));
                    }
                }
                total
            };
            let x = intra(&na, da.len()) + intra(&nb, db.len());
            if after < best_after || x > best_xtalk {
                best_after = after;
                best_xtalk = x;
                best = Some((ia, ib));
            }
        }
    }
    (best, before - best_after)
}

/// The original per-candidate refinement implementation, retained as the
/// differential-testing reference and the bench harness's "before"
/// measurement. Semantically identical to
/// [`refine_tdm_groups_kernels`]; the kernelized path must produce
/// byte-identical output.
#[cfg(any(test, feature = "naive"))]
pub mod naive {
    use super::*;
    use crate::tdm::legal_pair;

    /// [`refine_tdm_groups`](super::refine_tdm_groups) without kernels:
    /// every pairwise term is re-derived per candidate per iteration.
    ///
    /// # Panics
    ///
    /// Panics if `xtalk` does not match the chip dimension.
    pub fn refine_tdm_groups_naive(
        chip: &Chip,
        xtalk: &DistanceMatrix,
        activity: &ActivityProfile,
        config: &TdmConfig,
        mut groups: Vec<TdmGroup>,
        refine: &RefineConfig,
    ) -> (Vec<TdmGroup>, usize) {
        assert_eq!(
            xtalk.len(),
            chip.num_qubits(),
            "crosstalk matrix size mismatch"
        );
        let mask_of = |d: DeviceId| activity.get(&d).copied().unwrap_or(0);
        let mut removed = 0usize;

        for _ in 0..refine.passes {
            let mut improved = false;

            // Absorb singletons.
            let mut i = 0;
            while i < groups.len() {
                if groups[i].len() != 1 {
                    i += 1;
                    continue;
                }
                let lone = groups[i].devices()[0];
                let mut target = None;
                for (j, g) in groups.iter().enumerate() {
                    if j == i || g.len() >= g.level().channel_capacity() || g.len() < 2 {
                        continue;
                    }
                    if !g.devices().iter().all(|&m| legal_pair(chip, m, lone)) {
                        continue;
                    }
                    if extra_windows(g.devices(), Some(lone), &mask_of) > config.max_shared_slots {
                        continue;
                    }
                    target = Some(j);
                    break;
                }
                if let Some(j) = target {
                    let level = groups[j].level();
                    let mut devices = groups[j].devices().to_vec();
                    devices.push(lone);
                    groups[j] = TdmGroup::new(level, devices);
                    groups.remove(i);
                    removed += 1;
                    improved = true;
                    // Do not advance: the next group shifted into slot i.
                } else {
                    i += 1;
                }
            }

            // Pairwise swaps reducing total expected serialization,
            // breaking ties toward higher intra-group crosstalk (noisy
            // non-parallel devices belong together).
            for a in 0..groups.len() {
                for b in (a + 1)..groups.len() {
                    let (best, gain) =
                        best_swap(chip, xtalk, &mask_of, config, &groups[a], &groups[b]);
                    if gain > 0 {
                        if let Some((ia, ib)) = best {
                            let mut da = groups[a].devices().to_vec();
                            let mut db = groups[b].devices().to_vec();
                            std::mem::swap(&mut da[ia], &mut db[ib]);
                            groups[a] = TdmGroup::new(groups[a].level(), da);
                            groups[b] = TdmGroup::new(groups[b].level(), db);
                            improved = true;
                        }
                    }
                }
            }

            if !improved {
                break;
            }
        }
        (groups, removed)
    }

    /// Extra serialized windows of `devices` (+ an optional extra
    /// member).
    fn extra_windows<F: Fn(DeviceId) -> u32>(
        devices: &[DeviceId],
        plus: Option<DeviceId>,
        mask_of: &F,
    ) -> u32 {
        crate::tdm::extra_windows_masked(devices.iter().copied().chain(plus), mask_of)
    }

    /// Summed pairwise worst-case crosstalk between group members — the
    /// "noisy non-parallelism" captured by keeping mutually noisy
    /// devices on one DEMUX.
    fn intra_xtalk(chip: &Chip, xtalk: &DistanceMatrix, devices: &[DeviceId]) -> f64 {
        let mut total = 0.0;
        for (i, &a) in devices.iter().enumerate() {
            for &b in &devices[i + 1..] {
                total += crate::tdm::noisy_score(chip, xtalk, a, b);
            }
        }
        total
    }

    /// The naive form of
    /// [`best_swap_kernels`](super::best_swap_kernels): materializes
    /// both swapped groups and recounts every term per candidate.
    fn best_swap<F: Fn(DeviceId) -> u32>(
        chip: &Chip,
        xtalk: &DistanceMatrix,
        mask_of: &F,
        config: &TdmConfig,
        ga: &TdmGroup,
        gb: &TdmGroup,
    ) -> (Option<(usize, usize)>, u32) {
        let da = ga.devices();
        let db = gb.devices();
        let before = extra_windows(da, None, mask_of) + extra_windows(db, None, mask_of);
        let mut best: Option<(usize, usize)> = None;
        let mut best_after = before;
        let mut best_xtalk = f64::NEG_INFINITY;
        for ia in 0..da.len() {
            for ib in 0..db.len() {
                let mut na = da.to_vec();
                let mut nb = db.to_vec();
                std::mem::swap(&mut na[ia], &mut nb[ib]);
                let legal = |g: &[DeviceId]| {
                    g.iter()
                        .enumerate()
                        .all(|(i, &x)| g[i + 1..].iter().all(|&y| legal_pair(chip, x, y)))
                };
                if !legal(&na) || !legal(&nb) {
                    continue;
                }
                let ea = extra_windows(&na, None, mask_of);
                let eb = extra_windows(&nb, None, mask_of);
                // A swap may lower the *total* while pushing one group
                // past its activity budget; such groups would serialize
                // more than max_shared_slots windows, so reject the move
                // outright.
                if ea > config.max_shared_slots || eb > config.max_shared_slots {
                    continue;
                }
                let after = ea + eb;
                if after > best_after || (after == best_after && best.is_none()) {
                    continue;
                }
                let x = intra_xtalk(chip, xtalk, &na) + intra_xtalk(chip, xtalk, &nb);
                if after < best_after || x > best_xtalk {
                    best_after = after;
                    best_xtalk = x;
                    best = Some((ia, ib));
                }
            }
        }
        (best, before - best_after)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::crosstalk_matrix;
    use crate::tdm::{brickwork_activity, group_extra_windows, group_tdm_with_activity};
    use youtiao_chip::distance::{equivalent_matrix, EquivalentWeights};
    use youtiao_chip::topology;

    fn setup(n: usize) -> (youtiao_chip::Chip, DistanceMatrix, ActivityProfile) {
        let chip = topology::square_grid(n, n);
        let eq = equivalent_matrix(&chip, EquivalentWeights::balanced());
        let xtalk = crosstalk_matrix(&chip, &eq, None);
        let activity = brickwork_activity(&chip);
        (chip, xtalk, activity)
    }

    #[test]
    fn refinement_never_increases_lines() {
        let (chip, xtalk, activity) = setup(5);
        let config = TdmConfig::default();
        let devices: Vec<DeviceId> = chip.device_ids().collect();
        let groups = group_tdm_with_activity(&chip, &xtalk, &config, &devices, &activity);
        let before = groups.len();
        let (refined, removed) = refine_tdm_groups(
            &chip,
            &xtalk,
            &activity,
            &config,
            groups,
            &RefineConfig::default(),
        );
        assert_eq!(refined.len() + removed, before);
        assert!(refined.len() <= before);
    }

    #[test]
    fn refinement_preserves_partition_and_legality() {
        let (chip, xtalk, activity) = setup(4);
        let config = TdmConfig::default();
        let devices: Vec<DeviceId> = chip.device_ids().collect();
        let groups = group_tdm_with_activity(&chip, &xtalk, &config, &devices, &activity);
        let (refined, _) = refine_tdm_groups(
            &chip,
            &xtalk,
            &activity,
            &config,
            groups,
            &RefineConfig { passes: 4 },
        );
        let mut all: Vec<DeviceId> = refined.iter().flat_map(|g| g.devices().to_vec()).collect();
        all.sort_unstable();
        let mut expect: Vec<DeviceId> = chip.device_ids().collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
        for g in &refined {
            let ds = g.devices();
            for i in 0..ds.len() {
                for j in (i + 1)..ds.len() {
                    assert!(crate::tdm::legal_pair(&chip, ds[i], ds[j]));
                }
            }
        }
    }

    #[test]
    fn refinement_respects_activity_budget() {
        let (chip, xtalk, activity) = setup(4);
        let config = TdmConfig {
            max_shared_slots: 0,
            ..Default::default()
        };
        let devices: Vec<DeviceId> = chip.device_ids().collect();
        let groups = group_tdm_with_activity(&chip, &xtalk, &config, &devices, &activity);
        let (refined, _) = refine_tdm_groups(
            &chip,
            &xtalk,
            &activity,
            &config,
            groups,
            &RefineConfig::default(),
        );
        for g in &refined {
            assert_eq!(group_extra_windows(g.devices(), &activity), 0);
        }
    }

    #[test]
    fn swap_respects_activity_budget() {
        // Regression: a swap can lower the *total* extra windows while
        // pushing one group past max_shared_slots; best_swap used to
        // accept it. The construction below leaves exactly one legal
        // swap (q0 <-> q4) — every other exchange is blocked by
        // adjacency — and that swap drops the total from 4 to 3 while
        // concentrating 3 extra windows (> budget 2) in the first group.
        use youtiao_chip::{ChipBuilder, Position, TopologyKind};
        let mut b = ChipBuilder::new("budget", TopologyKind::Custom);
        for (x, y) in [
            (0.0, 0.0),
            (1.0, 0.0),
            (2.0, 0.0),
            (3.0, 0.0),
            (4.0, 0.0),
            (1.0, 1.0),
            (2.0, 1.0),
        ] {
            b = b.qubit(Position::new(x, y));
        }
        // q1..q3 adjacent to both q5 and q6, so none of them may ever
        // move into the second group (and vice versa).
        for lo in [1u32, 2, 3] {
            for hi in [5u32, 6] {
                b = b.coupler(lo.into(), hi.into());
            }
        }
        let chip = b.build().unwrap();
        let q = |i: u32| DeviceId::Qubit(i.into());
        let mut activity = ActivityProfile::new();
        for (i, mask) in [(0, 0b0011), (1, 0b0001), (2, 0b0010), (3, 0b0100)] {
            activity.insert(q(i), mask);
        }
        for (i, mask) in [(4, 0b1111), (5, 0b0100), (6, 0b1000)] {
            activity.insert(q(i), mask);
        }
        let groups = vec![
            TdmGroup::new(
                crate::tdm::DemuxLevel::OneToFour,
                vec![q(0), q(1), q(2), q(3)],
            ),
            TdmGroup::new(crate::tdm::DemuxLevel::OneToFour, vec![q(4), q(5), q(6)]),
        ];
        let config = TdmConfig {
            max_shared_slots: 2,
            ..Default::default()
        };
        for g in &groups {
            assert!(group_extra_windows(g.devices(), &activity) <= 2);
        }
        let xtalk = DistanceMatrix::zeros(chip.num_qubits());
        let (refined, removed) = refine_tdm_groups(
            &chip,
            &xtalk,
            &activity,
            &config,
            groups.clone(),
            &RefineConfig { passes: 4 },
        );
        assert_eq!(removed, 0);
        for g in &refined {
            assert!(
                group_extra_windows(g.devices(), &activity) <= config.max_shared_slots,
                "group {:?} exceeds the activity budget",
                g.devices()
            );
        }
        // The only candidate swap violates the budget, so refinement
        // must leave the grouping untouched.
        assert_eq!(refined, groups);
    }

    #[test]
    fn equal_swaps_tie_break_toward_higher_intra_group_crosstalk() {
        // Four isolated qubits, two groups of two. Every cross-group
        // swap is legal and removes both groups' single shared window,
        // so all four candidates tie on the serialization score. The
        // crosstalk matrix makes pairs (q0,q2) and (q1,q3) noisy, so the
        // tie must resolve to the grouping that co-locates them.
        use youtiao_chip::{ChipBuilder, Position, TopologyKind};
        let mut b = ChipBuilder::new("tie", TopologyKind::Custom);
        for x in 0..4 {
            b = b.qubit(Position::new(f64::from(x), 0.0));
        }
        let chip = b.build().unwrap();
        let q = |i: u32| DeviceId::Qubit(i.into());
        let mut xtalk = DistanceMatrix::zeros(4);
        xtalk.set(0u32.into(), 2u32.into(), 0.9);
        xtalk.set(1u32.into(), 3u32.into(), 0.9);
        xtalk.set(0u32.into(), 3u32.into(), 0.1);
        xtalk.set(1u32.into(), 2u32.into(), 0.1);
        let mut activity = ActivityProfile::new();
        activity.insert(q(0), 0b01);
        activity.insert(q(1), 0b01);
        activity.insert(q(2), 0b10);
        activity.insert(q(3), 0b10);
        let groups = vec![
            TdmGroup::new(crate::tdm::DemuxLevel::OneToTwo, vec![q(0), q(1)]),
            TdmGroup::new(crate::tdm::DemuxLevel::OneToTwo, vec![q(2), q(3)]),
        ];
        let config = TdmConfig {
            max_shared_slots: 1,
            ..Default::default()
        };
        let (refined, _) = refine_tdm_groups(
            &chip,
            &xtalk,
            &activity,
            &config,
            groups,
            &RefineConfig::default(),
        );
        assert_eq!(refined[0].devices(), [q(3), q(1)]);
        assert_eq!(refined[1].devices(), [q(2), q(0)]);
    }

    #[test]
    fn zero_passes_is_identity() {
        let (chip, xtalk, activity) = setup(3);
        let config = TdmConfig::default();
        let devices: Vec<DeviceId> = chip.device_ids().collect();
        let groups = group_tdm_with_activity(&chip, &xtalk, &config, &devices, &activity);
        let before = groups.clone();
        let (refined, removed) = refine_tdm_groups(
            &chip,
            &xtalk,
            &activity,
            &config,
            groups,
            &RefineConfig { passes: 0 },
        );
        assert_eq!(refined, before);
        assert_eq!(removed, 0);
    }

    mod differential {
        use super::*;
        use crate::tdm::DemuxLevel;
        use rand::{Rng, SeedableRng};
        use rand_chacha::ChaCha8Rng;
        use youtiao_chip::Chip;

        fn random_chip(rng: &mut ChaCha8Rng) -> Chip {
            match rng.gen_range(0u32..5) {
                0 => topology::square_grid(rng.gen_range(2usize..5), rng.gen_range(2usize..5)),
                1 => topology::heavy_square(rng.gen_range(2usize..4), rng.gen_range(2usize..4)),
                2 => topology::hexagon_patch(rng.gen_range(1usize..3), rng.gen_range(1usize..3)),
                3 => topology::linear(rng.gen_range(2usize..12)),
                _ => topology::ring(rng.gen_range(3usize..12)),
            }
        }

        fn random_activity(rng: &mut ChaCha8Rng, chip: &Chip) -> ActivityProfile {
            let mut profile = ActivityProfile::new();
            for d in chip.device_ids() {
                if rng.gen_range(0u32..4) == 0 {
                    continue;
                }
                let bits = rng.gen_range(0u32..4);
                let mut mask = 0u32;
                for _ in 0..bits {
                    mask |= 1 << rng.gen_range(0u32..8);
                }
                profile.insert(d, mask);
            }
            profile
        }

        fn random_xtalk(rng: &mut ChaCha8Rng, chip: &Chip) -> DistanceMatrix {
            let mut m = DistanceMatrix::zeros(chip.num_qubits());
            for a in chip.qubit_ids() {
                for b in chip.qubit_ids() {
                    if a < b {
                        m.set(a, b, rng.gen_range(0.0f64..1.0));
                    }
                }
            }
            m
        }

        /// An arbitrary (not necessarily legal!) partition of the
        /// devices into capacity-respecting groups, exercising the full
        /// pairwise legality re-check in `best_swap`.
        fn random_groups(rng: &mut ChaCha8Rng, chip: &Chip) -> Vec<TdmGroup> {
            let mut devices: Vec<DeviceId> = chip.device_ids().collect();
            // Deterministic shuffle via random index pops.
            let mut shuffled = Vec::with_capacity(devices.len());
            while !devices.is_empty() {
                shuffled.push(devices.remove(rng.gen_range(0usize..devices.len())));
            }
            let mut groups = Vec::new();
            let mut rest = shuffled.as_slice();
            while !rest.is_empty() {
                let level = match rng.gen_range(0u32..3) {
                    0 => DemuxLevel::OneToFour,
                    1 => DemuxLevel::OneToTwo,
                    _ => DemuxLevel::Direct,
                };
                let take = rng
                    .gen_range(1usize..=level.channel_capacity())
                    .min(rest.len());
                groups.push(TdmGroup::new(level, rest[..take].to_vec()));
                rest = &rest[take..];
            }
            groups
        }

        /// The acceptance criterion's differential gate: the kernelized
        /// refinement is byte-identical to the naive reference across
        /// random chips, groupings (legal and illegal), activity
        /// profiles, budgets and pass counts.
        #[test]
        fn kernelized_refine_matches_naive() {
            let mut rng = ChaCha8Rng::seed_from_u64(0x05ee_d2f1);
            for case in 0..40 {
                let chip = random_chip(&mut rng);
                let xtalk = random_xtalk(&mut rng, &chip);
                let activity = random_activity(&mut rng, &chip);
                let config = TdmConfig {
                    max_shared_slots: [0u32, 1, 2, 5][rng.gen_range(0usize..4)],
                    ..Default::default()
                };
                let refine = RefineConfig {
                    passes: rng.gen_range(0usize..4),
                };
                let groups = if rng.gen_range(0u32..2) == 0 {
                    let devices: Vec<DeviceId> = chip.device_ids().collect();
                    group_tdm_with_activity(&chip, &xtalk, &config, &devices, &activity)
                } else {
                    random_groups(&mut rng, &chip)
                };
                let fast =
                    refine_tdm_groups(&chip, &xtalk, &activity, &config, groups.clone(), &refine);
                let slow = naive::refine_tdm_groups_naive(
                    &chip, &xtalk, &activity, &config, groups, &refine,
                );
                assert_eq!(fast, slow, "case {case}: chip {}", chip.name());
            }
        }
    }
}
