//! Local-search refinement of TDM groupings.
//!
//! The §4.3 grouping is greedy; this optional pass hill-climbs the
//! result:
//!
//! 1. **absorb** — a device on a dedicated (singleton) line moves into
//!    any group with spare capacity whose legality and activity budget it
//!    satisfies, deleting a Z line outright;
//! 2. **swap** — two devices in different groups exchange places when
//!    that strictly reduces the total expected serialization (the sum of
//!    per-group extra windows).
//!
//! Every accepted move keeps the grouping a legal partition, so the
//! refined plan remains schedulable.

use youtiao_chip::distance::DistanceMatrix;
use youtiao_chip::{Chip, DeviceId};

use crate::tdm::{legal_pair, ActivityProfile, TdmConfig, TdmGroup};

/// Configuration of [`refine_tdm_groups`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefineConfig {
    /// Hill-climbing sweeps over all groups (2 usually converges).
    pub passes: usize,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig { passes: 2 }
    }
}

/// Refines a TDM grouping in place, returning the improved grouping and
/// the number of Z lines removed.
///
/// # Panics
///
/// Panics if `xtalk` does not match the chip dimension.
pub fn refine_tdm_groups(
    chip: &Chip,
    xtalk: &DistanceMatrix,
    activity: &ActivityProfile,
    config: &TdmConfig,
    mut groups: Vec<TdmGroup>,
    refine: &RefineConfig,
) -> (Vec<TdmGroup>, usize) {
    assert_eq!(
        xtalk.len(),
        chip.num_qubits(),
        "crosstalk matrix size mismatch"
    );
    let mask_of = |d: DeviceId| activity.get(&d).copied().unwrap_or(0);
    let mut removed = 0usize;

    for _ in 0..refine.passes {
        let mut improved = false;

        // Absorb singletons.
        let mut i = 0;
        while i < groups.len() {
            if groups[i].len() != 1 {
                i += 1;
                continue;
            }
            let lone = groups[i].devices()[0];
            let mut target = None;
            for (j, g) in groups.iter().enumerate() {
                if j == i || g.len() >= g.level().channel_capacity() || g.len() < 2 {
                    continue;
                }
                if !g.devices().iter().all(|&m| legal_pair(chip, m, lone)) {
                    continue;
                }
                if extra_windows(g.devices(), Some(lone), &mask_of) > config.max_shared_slots {
                    continue;
                }
                target = Some(j);
                break;
            }
            if let Some(j) = target {
                let level = groups[j].level();
                let mut devices = groups[j].devices().to_vec();
                devices.push(lone);
                groups[j] = TdmGroup::new(level, devices);
                groups.remove(i);
                removed += 1;
                improved = true;
                // Do not advance: the next group shifted into slot i.
            } else {
                i += 1;
            }
        }

        // Pairwise swaps reducing total expected serialization, breaking
        // ties toward higher intra-group crosstalk (noisy non-parallel
        // devices belong together).
        for a in 0..groups.len() {
            for b in (a + 1)..groups.len() {
                let (best, gain) = best_swap(chip, xtalk, &mask_of, &groups[a], &groups[b]);
                if gain > 0 {
                    if let Some((ia, ib)) = best {
                        let mut da = groups[a].devices().to_vec();
                        let mut db = groups[b].devices().to_vec();
                        std::mem::swap(&mut da[ia], &mut db[ib]);
                        groups[a] = TdmGroup::new(groups[a].level(), da);
                        groups[b] = TdmGroup::new(groups[b].level(), db);
                        improved = true;
                    }
                }
            }
        }

        if !improved {
            break;
        }
    }
    (groups, removed)
}

/// Extra serialized windows of `devices` (+ an optional extra member).
fn extra_windows<F: Fn(DeviceId) -> u32>(
    devices: &[DeviceId],
    plus: Option<DeviceId>,
    mask_of: &F,
) -> u32 {
    let mut counts = [0u8; 32];
    for &d in devices.iter().chain(plus.as_ref()) {
        let m = mask_of(d);
        for (t, count) in counts.iter_mut().enumerate() {
            if m & (1 << t) != 0 {
                *count += 1;
            }
        }
    }
    counts.iter().map(|&c| c.saturating_sub(1) as u32).sum()
}

/// Finds the single-pair swap between two groups with the largest
/// reduction in total extra windows (if any), respecting legality.
fn best_swap<F: Fn(DeviceId) -> u32>(
    chip: &Chip,
    _xtalk: &DistanceMatrix,
    mask_of: &F,
    ga: &TdmGroup,
    gb: &TdmGroup,
) -> (Option<(usize, usize)>, u32) {
    let da = ga.devices();
    let db = gb.devices();
    let before = extra_windows(da, None, mask_of) + extra_windows(db, None, mask_of);
    let mut best: Option<(usize, usize)> = None;
    let mut best_after = before;
    for ia in 0..da.len() {
        for ib in 0..db.len() {
            let mut na = da.to_vec();
            let mut nb = db.to_vec();
            std::mem::swap(&mut na[ia], &mut nb[ib]);
            let legal = |g: &[DeviceId]| {
                g.iter()
                    .enumerate()
                    .all(|(i, &x)| g[i + 1..].iter().all(|&y| legal_pair(chip, x, y)))
            };
            if !legal(&na) || !legal(&nb) {
                continue;
            }
            let after = extra_windows(&na, None, mask_of) + extra_windows(&nb, None, mask_of);
            if after < best_after {
                best_after = after;
                best = Some((ia, ib));
            }
        }
    }
    (best, before - best_after)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::crosstalk_matrix;
    use crate::tdm::{brickwork_activity, group_tdm_with_activity};
    use youtiao_chip::distance::{equivalent_matrix, EquivalentWeights};
    use youtiao_chip::topology;

    fn setup(n: usize) -> (youtiao_chip::Chip, DistanceMatrix, ActivityProfile) {
        let chip = topology::square_grid(n, n);
        let eq = equivalent_matrix(&chip, EquivalentWeights::balanced());
        let xtalk = crosstalk_matrix(&chip, &eq, None);
        let activity = brickwork_activity(&chip);
        (chip, xtalk, activity)
    }

    #[test]
    fn refinement_never_increases_lines() {
        let (chip, xtalk, activity) = setup(5);
        let config = TdmConfig::default();
        let devices: Vec<DeviceId> = chip.device_ids().collect();
        let groups = group_tdm_with_activity(&chip, &xtalk, &config, &devices, &activity);
        let before = groups.len();
        let (refined, removed) = refine_tdm_groups(
            &chip,
            &xtalk,
            &activity,
            &config,
            groups,
            &RefineConfig::default(),
        );
        assert_eq!(refined.len() + removed, before);
        assert!(refined.len() <= before);
    }

    #[test]
    fn refinement_preserves_partition_and_legality() {
        let (chip, xtalk, activity) = setup(4);
        let config = TdmConfig::default();
        let devices: Vec<DeviceId> = chip.device_ids().collect();
        let groups = group_tdm_with_activity(&chip, &xtalk, &config, &devices, &activity);
        let (refined, _) = refine_tdm_groups(
            &chip,
            &xtalk,
            &activity,
            &config,
            groups,
            &RefineConfig { passes: 4 },
        );
        let mut all: Vec<DeviceId> = refined.iter().flat_map(|g| g.devices().to_vec()).collect();
        all.sort_unstable();
        let mut expect: Vec<DeviceId> = chip.device_ids().collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
        for g in &refined {
            let ds = g.devices();
            for i in 0..ds.len() {
                for j in (i + 1)..ds.len() {
                    assert!(legal_pair(&chip, ds[i], ds[j]));
                }
            }
        }
    }

    #[test]
    fn refinement_respects_activity_budget() {
        let (chip, xtalk, activity) = setup(4);
        let config = TdmConfig {
            max_shared_slots: 0,
            ..Default::default()
        };
        let devices: Vec<DeviceId> = chip.device_ids().collect();
        let groups = group_tdm_with_activity(&chip, &xtalk, &config, &devices, &activity);
        let mask_of = |d: DeviceId| activity.get(&d).copied().unwrap_or(0);
        let (refined, _) = refine_tdm_groups(
            &chip,
            &xtalk,
            &activity,
            &config,
            groups,
            &RefineConfig::default(),
        );
        for g in &refined {
            assert_eq!(extra_windows(g.devices(), None, &mask_of), 0);
        }
    }

    #[test]
    fn zero_passes_is_identity() {
        let (chip, xtalk, activity) = setup(3);
        let config = TdmConfig::default();
        let devices: Vec<DeviceId> = chip.device_ids().collect();
        let groups = group_tdm_with_activity(&chip, &xtalk, &config, &devices, &activity);
        let before = groups.clone();
        let (refined, removed) = refine_tdm_groups(
            &chip,
            &xtalk,
            &activity,
            &config,
            groups,
            &RefineConfig { passes: 0 },
        );
        assert_eq!(refined, before);
        assert_eq!(removed, 0);
    }
}
