//! Local-search refinement of TDM groupings.
//!
//! The §4.3 grouping is greedy; this optional pass hill-climbs the
//! result:
//!
//! 1. **absorb** — a device on a dedicated (singleton) line moves into
//!    any group with spare capacity whose legality and activity budget it
//!    satisfies, deleting a Z line outright;
//! 2. **swap** — two devices in different groups exchange places when
//!    that strictly reduces the total expected serialization (the sum of
//!    per-group extra windows).
//!
//! Every accepted move keeps the grouping a legal partition, so the
//! refined plan remains schedulable.

use youtiao_chip::distance::DistanceMatrix;
use youtiao_chip::{Chip, DeviceId};

use crate::tdm::{legal_pair, ActivityProfile, TdmConfig, TdmGroup};

/// Configuration of [`refine_tdm_groups`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefineConfig {
    /// Hill-climbing sweeps over all groups (2 usually converges).
    pub passes: usize,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig { passes: 2 }
    }
}

/// Refines a TDM grouping in place, returning the improved grouping and
/// the number of Z lines removed.
///
/// # Panics
///
/// Panics if `xtalk` does not match the chip dimension.
pub fn refine_tdm_groups(
    chip: &Chip,
    xtalk: &DistanceMatrix,
    activity: &ActivityProfile,
    config: &TdmConfig,
    mut groups: Vec<TdmGroup>,
    refine: &RefineConfig,
) -> (Vec<TdmGroup>, usize) {
    assert_eq!(
        xtalk.len(),
        chip.num_qubits(),
        "crosstalk matrix size mismatch"
    );
    let mask_of = |d: DeviceId| activity.get(&d).copied().unwrap_or(0);
    let mut removed = 0usize;

    for _ in 0..refine.passes {
        let mut improved = false;

        // Absorb singletons.
        let mut i = 0;
        while i < groups.len() {
            if groups[i].len() != 1 {
                i += 1;
                continue;
            }
            let lone = groups[i].devices()[0];
            let mut target = None;
            for (j, g) in groups.iter().enumerate() {
                if j == i || g.len() >= g.level().channel_capacity() || g.len() < 2 {
                    continue;
                }
                if !g.devices().iter().all(|&m| legal_pair(chip, m, lone)) {
                    continue;
                }
                if extra_windows(g.devices(), Some(lone), &mask_of) > config.max_shared_slots {
                    continue;
                }
                target = Some(j);
                break;
            }
            if let Some(j) = target {
                let level = groups[j].level();
                let mut devices = groups[j].devices().to_vec();
                devices.push(lone);
                groups[j] = TdmGroup::new(level, devices);
                groups.remove(i);
                removed += 1;
                improved = true;
                // Do not advance: the next group shifted into slot i.
            } else {
                i += 1;
            }
        }

        // Pairwise swaps reducing total expected serialization, breaking
        // ties toward higher intra-group crosstalk (noisy non-parallel
        // devices belong together).
        for a in 0..groups.len() {
            for b in (a + 1)..groups.len() {
                let (best, gain) = best_swap(chip, xtalk, &mask_of, config, &groups[a], &groups[b]);
                if gain > 0 {
                    if let Some((ia, ib)) = best {
                        let mut da = groups[a].devices().to_vec();
                        let mut db = groups[b].devices().to_vec();
                        std::mem::swap(&mut da[ia], &mut db[ib]);
                        groups[a] = TdmGroup::new(groups[a].level(), da);
                        groups[b] = TdmGroup::new(groups[b].level(), db);
                        improved = true;
                    }
                }
            }
        }

        if !improved {
            break;
        }
    }
    (groups, removed)
}

/// Extra serialized windows of `devices` (+ an optional extra member).
fn extra_windows<F: Fn(DeviceId) -> u32>(
    devices: &[DeviceId],
    plus: Option<DeviceId>,
    mask_of: &F,
) -> u32 {
    crate::tdm::extra_windows_masked(devices.iter().copied().chain(plus), mask_of)
}

/// Summed pairwise worst-case crosstalk between group members — the
/// "noisy non-parallelism" captured by keeping mutually noisy devices on
/// one DEMUX.
fn intra_xtalk(chip: &Chip, xtalk: &DistanceMatrix, devices: &[DeviceId]) -> f64 {
    let mut total = 0.0;
    for (i, &a) in devices.iter().enumerate() {
        for &b in &devices[i + 1..] {
            total += crate::tdm::noisy_score(chip, xtalk, a, b);
        }
    }
    total
}

/// Finds the single-pair swap between two groups with the largest
/// reduction in total extra windows (if any), respecting legality and
/// the per-group activity budget (`config.max_shared_slots`). Ties on
/// equal reduction break toward higher post-swap intra-group crosstalk
/// (noisy non-parallel devices belong together), then toward the
/// earliest candidate in scan order, keeping the result deterministic.
fn best_swap<F: Fn(DeviceId) -> u32>(
    chip: &Chip,
    xtalk: &DistanceMatrix,
    mask_of: &F,
    config: &TdmConfig,
    ga: &TdmGroup,
    gb: &TdmGroup,
) -> (Option<(usize, usize)>, u32) {
    let da = ga.devices();
    let db = gb.devices();
    let before = extra_windows(da, None, mask_of) + extra_windows(db, None, mask_of);
    let mut best: Option<(usize, usize)> = None;
    let mut best_after = before;
    let mut best_xtalk = f64::NEG_INFINITY;
    for ia in 0..da.len() {
        for ib in 0..db.len() {
            let mut na = da.to_vec();
            let mut nb = db.to_vec();
            std::mem::swap(&mut na[ia], &mut nb[ib]);
            let legal = |g: &[DeviceId]| {
                g.iter()
                    .enumerate()
                    .all(|(i, &x)| g[i + 1..].iter().all(|&y| legal_pair(chip, x, y)))
            };
            if !legal(&na) || !legal(&nb) {
                continue;
            }
            let ea = extra_windows(&na, None, mask_of);
            let eb = extra_windows(&nb, None, mask_of);
            // A swap may lower the *total* while pushing one group past
            // its activity budget; such groups would serialize more than
            // max_shared_slots windows, so reject the move outright.
            if ea > config.max_shared_slots || eb > config.max_shared_slots {
                continue;
            }
            let after = ea + eb;
            if after > best_after || (after == best_after && best.is_none()) {
                continue;
            }
            let x = intra_xtalk(chip, xtalk, &na) + intra_xtalk(chip, xtalk, &nb);
            if after < best_after || x > best_xtalk {
                best_after = after;
                best_xtalk = x;
                best = Some((ia, ib));
            }
        }
    }
    (best, before - best_after)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::crosstalk_matrix;
    use crate::tdm::{brickwork_activity, group_tdm_with_activity};
    use youtiao_chip::distance::{equivalent_matrix, EquivalentWeights};
    use youtiao_chip::topology;

    fn setup(n: usize) -> (youtiao_chip::Chip, DistanceMatrix, ActivityProfile) {
        let chip = topology::square_grid(n, n);
        let eq = equivalent_matrix(&chip, EquivalentWeights::balanced());
        let xtalk = crosstalk_matrix(&chip, &eq, None);
        let activity = brickwork_activity(&chip);
        (chip, xtalk, activity)
    }

    #[test]
    fn refinement_never_increases_lines() {
        let (chip, xtalk, activity) = setup(5);
        let config = TdmConfig::default();
        let devices: Vec<DeviceId> = chip.device_ids().collect();
        let groups = group_tdm_with_activity(&chip, &xtalk, &config, &devices, &activity);
        let before = groups.len();
        let (refined, removed) = refine_tdm_groups(
            &chip,
            &xtalk,
            &activity,
            &config,
            groups,
            &RefineConfig::default(),
        );
        assert_eq!(refined.len() + removed, before);
        assert!(refined.len() <= before);
    }

    #[test]
    fn refinement_preserves_partition_and_legality() {
        let (chip, xtalk, activity) = setup(4);
        let config = TdmConfig::default();
        let devices: Vec<DeviceId> = chip.device_ids().collect();
        let groups = group_tdm_with_activity(&chip, &xtalk, &config, &devices, &activity);
        let (refined, _) = refine_tdm_groups(
            &chip,
            &xtalk,
            &activity,
            &config,
            groups,
            &RefineConfig { passes: 4 },
        );
        let mut all: Vec<DeviceId> = refined.iter().flat_map(|g| g.devices().to_vec()).collect();
        all.sort_unstable();
        let mut expect: Vec<DeviceId> = chip.device_ids().collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
        for g in &refined {
            let ds = g.devices();
            for i in 0..ds.len() {
                for j in (i + 1)..ds.len() {
                    assert!(legal_pair(&chip, ds[i], ds[j]));
                }
            }
        }
    }

    #[test]
    fn refinement_respects_activity_budget() {
        let (chip, xtalk, activity) = setup(4);
        let config = TdmConfig {
            max_shared_slots: 0,
            ..Default::default()
        };
        let devices: Vec<DeviceId> = chip.device_ids().collect();
        let groups = group_tdm_with_activity(&chip, &xtalk, &config, &devices, &activity);
        let mask_of = |d: DeviceId| activity.get(&d).copied().unwrap_or(0);
        let (refined, _) = refine_tdm_groups(
            &chip,
            &xtalk,
            &activity,
            &config,
            groups,
            &RefineConfig::default(),
        );
        for g in &refined {
            assert_eq!(extra_windows(g.devices(), None, &mask_of), 0);
        }
    }

    #[test]
    fn swap_respects_activity_budget() {
        // Regression: a swap can lower the *total* extra windows while
        // pushing one group past max_shared_slots; best_swap used to
        // accept it. The construction below leaves exactly one legal
        // swap (q0 <-> q4) — every other exchange is blocked by
        // adjacency — and that swap drops the total from 4 to 3 while
        // concentrating 3 extra windows (> budget 2) in the first group.
        use youtiao_chip::{ChipBuilder, Position, TopologyKind};
        let mut b = ChipBuilder::new("budget", TopologyKind::Custom);
        for (x, y) in [
            (0.0, 0.0),
            (1.0, 0.0),
            (2.0, 0.0),
            (3.0, 0.0),
            (4.0, 0.0),
            (1.0, 1.0),
            (2.0, 1.0),
        ] {
            b = b.qubit(Position::new(x, y));
        }
        // q1..q3 adjacent to both q5 and q6, so none of them may ever
        // move into the second group (and vice versa).
        for lo in [1u32, 2, 3] {
            for hi in [5u32, 6] {
                b = b.coupler(lo.into(), hi.into());
            }
        }
        let chip = b.build().unwrap();
        let q = |i: u32| DeviceId::Qubit(i.into());
        let mut activity = ActivityProfile::new();
        for (i, mask) in [(0, 0b0011), (1, 0b0001), (2, 0b0010), (3, 0b0100)] {
            activity.insert(q(i), mask);
        }
        for (i, mask) in [(4, 0b1111), (5, 0b0100), (6, 0b1000)] {
            activity.insert(q(i), mask);
        }
        let groups = vec![
            TdmGroup::new(
                crate::tdm::DemuxLevel::OneToFour,
                vec![q(0), q(1), q(2), q(3)],
            ),
            TdmGroup::new(crate::tdm::DemuxLevel::OneToFour, vec![q(4), q(5), q(6)]),
        ];
        let config = TdmConfig {
            max_shared_slots: 2,
            ..Default::default()
        };
        for g in &groups {
            assert!(crate::tdm::group_extra_windows(g.devices(), &activity) <= 2);
        }
        let xtalk = DistanceMatrix::zeros(chip.num_qubits());
        let (refined, removed) = refine_tdm_groups(
            &chip,
            &xtalk,
            &activity,
            &config,
            groups.clone(),
            &RefineConfig { passes: 4 },
        );
        assert_eq!(removed, 0);
        for g in &refined {
            assert!(
                crate::tdm::group_extra_windows(g.devices(), &activity) <= config.max_shared_slots,
                "group {:?} exceeds the activity budget",
                g.devices()
            );
        }
        // The only candidate swap violates the budget, so refinement
        // must leave the grouping untouched.
        assert_eq!(refined, groups);
    }

    #[test]
    fn equal_swaps_tie_break_toward_higher_intra_group_crosstalk() {
        // Four isolated qubits, two groups of two. Every cross-group
        // swap is legal and removes both groups' single shared window,
        // so all four candidates tie on the serialization score. The
        // crosstalk matrix makes pairs (q0,q2) and (q1,q3) noisy, so the
        // tie must resolve to the grouping that co-locates them.
        use youtiao_chip::{ChipBuilder, Position, TopologyKind};
        let mut b = ChipBuilder::new("tie", TopologyKind::Custom);
        for x in 0..4 {
            b = b.qubit(Position::new(f64::from(x), 0.0));
        }
        let chip = b.build().unwrap();
        let q = |i: u32| DeviceId::Qubit(i.into());
        let mut xtalk = DistanceMatrix::zeros(4);
        xtalk.set(0u32.into(), 2u32.into(), 0.9);
        xtalk.set(1u32.into(), 3u32.into(), 0.9);
        xtalk.set(0u32.into(), 3u32.into(), 0.1);
        xtalk.set(1u32.into(), 2u32.into(), 0.1);
        let mut activity = ActivityProfile::new();
        activity.insert(q(0), 0b01);
        activity.insert(q(1), 0b01);
        activity.insert(q(2), 0b10);
        activity.insert(q(3), 0b10);
        let groups = vec![
            TdmGroup::new(crate::tdm::DemuxLevel::OneToTwo, vec![q(0), q(1)]),
            TdmGroup::new(crate::tdm::DemuxLevel::OneToTwo, vec![q(2), q(3)]),
        ];
        let config = TdmConfig {
            max_shared_slots: 1,
            ..Default::default()
        };
        let (refined, _) = refine_tdm_groups(
            &chip,
            &xtalk,
            &activity,
            &config,
            groups,
            &RefineConfig::default(),
        );
        assert_eq!(refined[0].devices(), [q(3), q(1)]);
        assert_eq!(refined[1].devices(), [q(2), q(0)]);
    }

    #[test]
    fn zero_passes_is_identity() {
        let (chip, xtalk, activity) = setup(3);
        let config = TdmConfig::default();
        let devices: Vec<DeviceId> = chip.device_ids().collect();
        let groups = group_tdm_with_activity(&chip, &xtalk, &config, &devices, &activity);
        let before = groups.clone();
        let (refined, removed) = refine_tdm_groups(
            &chip,
            &xtalk,
            &activity,
            &config,
            groups,
            &RefineConfig { passes: 0 },
        );
        assert_eq!(refined, before);
        assert_eq!(removed, 0);
    }
}
