//! Reusable scratch arenas for the planner's hot loops.
//!
//! PR 4 and PR 7 kernelized the grouping and allocation inner loops,
//! but every plan still paid a fixed tax of per-call buffer
//! allocations: densified activity masks, per-cell score vectors,
//! frequency/zone/slot arrays, lazily-filled scaling-row tables. A
//! [`Scratch`] arena retires those buffers instead of dropping them and
//! hands the capacity back on the next checkout, so steady-state
//! planning (sweeps, the serve pool, the bench harness's timed loops)
//! performs **zero hot-loop buffer allocations** after warm-up.
//!
//! # Checkout discipline (DESIGN.md §4j)
//!
//! Arenas are owned by [`crate::PlanContext`] behind a [`ScratchPool`]:
//! each planning stage *checks out* a whole [`Scratch`] for the
//! duration of its work and returns it when dropped. Two rules keep
//! this safe under the deterministic parallel layer:
//!
//! 1. a checked-out [`Scratch`] is exclusively owned (`&mut`) by one
//!    stage on one thread — never shared, never aliased;
//! 2. concurrent stages (parallel regions, the two frequency bands)
//!    each check out their *own* arena, so plans sharing a
//!    [`crate::PlanContext`] across threads stay safe, and the pool
//!    simply grows to the peak concurrency ever observed.
//!
//! Buffer *contents* never survive a checkout observably: every `take`
//! clears and re-fills the buffer before returning it, so arena reuse
//! cannot change plan bytes (the cross-thread differential suite pins
//! this).
//!
//! # Probes
//!
//! Like the kernel-build counters, two process-wide probes make reuse
//! assertable: [`fresh_count`] counts takes that had to allocate (no
//! retired buffer, or retired capacity too small) and [`reuse_count`]
//! counts takes served entirely from retired capacity. The bench
//! harness asserts a zero `fresh` delta across its timed plan loops.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Global count of arena takes that had to allocate. The bench harness
/// asserts this does not advance across warmed-up plan loops.
static FRESH: AtomicU64 = AtomicU64::new(0);

/// Global count of arena takes served from retired capacity.
static REUSED: AtomicU64 = AtomicU64::new(0);

/// Cumulative arena takes that allocated fresh capacity (probe).
pub fn fresh_count() -> u64 {
    FRESH.load(Ordering::Relaxed)
}

/// Cumulative arena takes served from retired capacity (probe).
pub fn reuse_count() -> u64 {
    REUSED.load(Ordering::Relaxed)
}

/// Takes a retired buffer, resized to `len` filled with `fill`,
/// counting the take against the fresh/reuse probes. Best-fit: the
/// smallest retired buffer whose capacity avoids a realloc is chosen,
/// so interleaved takes of different sizes (a score buffer between two
/// full-width tables, the XY band after the readout band) keep their
/// capacities matched regardless of retire order.
fn take_buf<T: Clone>(retired: &mut Vec<Vec<T>>, len: usize, fill: T) -> Vec<T> {
    let fit = retired
        .iter()
        .enumerate()
        .filter(|(_, b)| b.capacity() >= len)
        .min_by_key(|(_, b)| b.capacity())
        .map(|(i, _)| i);
    match fit {
        Some(i) => {
            REUSED.fetch_add(1, Ordering::Relaxed);
            let mut buf = retired.swap_remove(i);
            buf.clear();
            buf.resize(len, fill);
            buf
        }
        // No retired capacity is large enough: grow the biggest one (a
        // realloc, counted fresh) so the arena converges on the peak
        // sizes instead of hoarding too-small buffers.
        None => match retired.pop() {
            Some(mut buf) => {
                FRESH.fetch_add(1, Ordering::Relaxed);
                buf.clear();
                buf.resize(len, fill);
                buf
            }
            None => {
                FRESH.fetch_add(1, Ordering::Relaxed);
                vec![fill; len]
            }
        },
    }
}

/// Takes a retired nested buffer shaped to `len` *cleared* inner
/// vectors (inner capacity retained — the whole point), counting the
/// take. Unlike [`take_buf`], reuse demands an **exact** outer-length
/// match: shrinking a retired table would drop its tail of warm inner
/// vectors, so a plan that alternates two table shapes (the XY band's
/// wide scaling table, then the readout band's narrow one) would
/// cannibalize the wide table every cycle and re-allocate its rows
/// forever. Exact matching lets the distinct shapes coexist in the
/// store, one warm table per shape.
fn take_nested<T>(retired: &mut Vec<Vec<Vec<T>>>, len: usize) -> Vec<Vec<T>> {
    match retired.iter().position(|o| o.len() == len) {
        Some(i) => {
            REUSED.fetch_add(1, Ordering::Relaxed);
            let mut outer = retired.swap_remove(i);
            for inner in &mut outer {
                inner.clear();
            }
            outer
        }
        // No table of this shape retired yet: allocate one, leaving any
        // differently-shaped tables in the store for their own takers.
        None => {
            FRESH.fetch_add(1, Ordering::Relaxed);
            let mut outer = Vec::with_capacity(len);
            outer.resize_with(len, Vec::new);
            outer
        }
    }
}

/// One stage's worth of reusable buffers. Checked out of a
/// [`ScratchPool`] (or built standalone via `Scratch::default()` for
/// context-free planning), used exclusively by one stage on one
/// thread, and returned on drop.
#[derive(Debug, Default)]
pub struct Scratch {
    f64_bufs: Vec<Vec<f64>>,
    u64_bufs: Vec<Vec<u64>>,
    u32_bufs: Vec<Vec<u32>>,
    usize_bufs: Vec<Vec<usize>>,
    bool_bufs: Vec<Vec<bool>>,
    row_tables: Vec<Vec<Vec<f64>>>,
    pair_lists: Vec<Vec<Vec<(u32, f64)>>>,
}

impl Scratch {
    /// Takes an `f64` buffer of `len` entries, every entry `fill`.
    pub fn take_f64(&mut self, len: usize, fill: f64) -> Vec<f64> {
        take_buf(&mut self.f64_bufs, len, fill)
    }

    /// Retires an `f64` buffer, keeping its capacity for the next take.
    pub fn retire_f64(&mut self, buf: Vec<f64>) {
        self.f64_bufs.push(buf);
    }

    /// Takes a `u64` buffer of `len` zeroed-to-`fill` entries.
    pub fn take_u64(&mut self, len: usize, fill: u64) -> Vec<u64> {
        take_buf(&mut self.u64_bufs, len, fill)
    }

    /// Retires a `u64` buffer.
    pub fn retire_u64(&mut self, buf: Vec<u64>) {
        self.u64_bufs.push(buf);
    }

    /// Takes a `u32` buffer of `len` entries, every entry `fill`.
    pub fn take_u32(&mut self, len: usize, fill: u32) -> Vec<u32> {
        take_buf(&mut self.u32_bufs, len, fill)
    }

    /// Retires a `u32` buffer.
    pub fn retire_u32(&mut self, buf: Vec<u32>) {
        self.u32_bufs.push(buf);
    }

    /// Takes a `usize` buffer of `len` entries, every entry `fill`.
    pub fn take_usize(&mut self, len: usize, fill: usize) -> Vec<usize> {
        take_buf(&mut self.usize_bufs, len, fill)
    }

    /// Retires a `usize` buffer.
    pub fn retire_usize(&mut self, buf: Vec<usize>) {
        self.usize_bufs.push(buf);
    }

    /// Takes a `bool` buffer of `len` entries, every entry `fill`.
    pub fn take_bool(&mut self, len: usize, fill: bool) -> Vec<bool> {
        take_buf(&mut self.bool_bufs, len, fill)
    }

    /// Retires a `bool` buffer.
    pub fn retire_bool(&mut self, buf: Vec<bool>) {
        self.bool_bufs.push(buf);
    }

    /// Takes a row table of `len` *empty* rows (inner capacity
    /// retained): the lazily-filled [`crate::ScalingTable`] shape,
    /// where an empty row means "not materialized yet".
    pub fn take_rows(&mut self, len: usize) -> Vec<Vec<f64>> {
        take_nested(&mut self.row_tables, len)
    }

    /// Retires a row table.
    pub fn retire_rows(&mut self, rows: Vec<Vec<f64>>) {
        self.row_tables.push(rows);
    }

    /// Takes `len` empty `(id, value)` adjacency lists (inner capacity
    /// retained) — the placement loop's per-qubit placed-neighbor
    /// lists.
    pub fn take_pair_lists(&mut self, len: usize) -> Vec<Vec<(u32, f64)>> {
        take_nested(&mut self.pair_lists, len)
    }

    /// Retires a set of adjacency lists.
    pub fn retire_pair_lists(&mut self, lists: Vec<Vec<(u32, f64)>>) {
        self.pair_lists.push(lists);
    }
}

/// A checkout pool of [`Scratch`] arenas, owned by
/// [`crate::PlanContext`].
///
/// Checkout pops an arena (or creates one when the pool is empty — the
/// only time after warm-up being a *new* level of concurrency), and the
/// guard returns it on drop. The pool therefore holds as many arenas as
/// the peak number of concurrent stages ever observed.
///
/// The pool is deliberately **identity-free**: cloning a context gives
/// the clone a fresh empty pool, and every pool compares equal, so
/// arenas can never make two contexts with equal planning inputs look
/// different (`PlanContext` derives `PartialEq` for exactly that
/// staleness check).
#[derive(Default)]
pub struct ScratchPool {
    pool: Mutex<Vec<Scratch>>,
}

impl ScratchPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        ScratchPool::default()
    }

    /// Checks an arena out of the pool (creating one if none is
    /// retired). The guard returns it on drop.
    pub fn checkout(&self) -> ScratchGuard<'_> {
        let scratch = self
            .pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop()
            .unwrap_or_default();
        ScratchGuard {
            pool: self,
            scratch: Some(scratch),
        }
    }

    /// Number of arenas currently resting in the pool (test probe).
    pub fn idle(&self) -> usize {
        self.pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }
}

impl std::fmt::Debug for ScratchPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScratchPool").finish_non_exhaustive()
    }
}

impl Clone for ScratchPool {
    /// A cloned pool starts empty: arenas are warm capacity, not state.
    fn clone(&self) -> Self {
        ScratchPool::new()
    }
}

impl PartialEq for ScratchPool {
    /// Pools never differentiate their owners: arena capacity is not
    /// observable planning state.
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

/// Exclusive access to one checked-out [`Scratch`]; returns the arena
/// to its pool on drop.
pub struct ScratchGuard<'a> {
    pool: &'a ScratchPool,
    scratch: Option<Scratch>,
}

impl std::ops::Deref for ScratchGuard<'_> {
    type Target = Scratch;

    fn deref(&self) -> &Scratch {
        self.scratch.as_ref().expect("present until drop")
    }
}

impl std::ops::DerefMut for ScratchGuard<'_> {
    fn deref_mut(&mut self) -> &mut Scratch {
        self.scratch.as_mut().expect("present until drop")
    }
}

impl Drop for ScratchGuard<'_> {
    fn drop(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            self.pool.lock_pool().push(scratch);
        }
    }
}

impl ScratchPool {
    fn lock_pool(&self) -> std::sync::MutexGuard<'_, Vec<Scratch>> {
        self.pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn takes_are_filled_and_reuse_retired_capacity() {
        let mut s = Scratch::default();
        let before = (fresh_count(), reuse_count());
        let buf = s.take_f64(64, f64::NAN);
        assert_eq!(buf.len(), 64);
        assert!(buf.iter().all(|v| v.is_nan()));
        assert_eq!(fresh_count(), before.0 + 1);
        s.retire_f64(buf);
        let buf = s.take_f64(32, 0.5);
        assert_eq!(buf.len(), 32);
        assert!(buf.iter().all(|&v| v == 0.5));
        assert_eq!(reuse_count(), before.1 + 1, "shrinking take reuses");
        s.retire_f64(buf);
        // A grower may have to reallocate: counted as fresh.
        let fresh_before = fresh_count();
        let buf = s.take_f64(1024, 0.0);
        assert_eq!(buf.len(), 1024);
        assert_eq!(fresh_count(), fresh_before + 1);
    }

    #[test]
    fn nested_takes_clear_inners_but_keep_capacity() {
        let mut s = Scratch::default();
        let mut rows = s.take_rows(4);
        rows[2].extend([1.0, 2.0, 3.0]);
        let kept = rows[2].capacity();
        s.retire_rows(rows);
        let before = reuse_count();
        let rows = s.take_rows(4);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(Vec::is_empty), "inners come back cleared");
        assert!(rows[2].capacity() >= kept);
        assert_eq!(reuse_count(), before + 1);
        s.retire_rows(rows);
    }

    #[test]
    fn nested_shapes_coexist_instead_of_cannibalizing() {
        // The XY/readout alternation: a wide table and a narrow table
        // cycling through one arena must each stay warm — a shrinking
        // reuse would drop the wide table's row capacities every plan.
        let mut s = Scratch::default();
        let wide = s.take_rows(60);
        s.retire_rows(wide);
        let narrow = s.take_rows(5); // fresh: must not shrink the wide one
        s.retire_rows(narrow);
        let before = (fresh_count(), reuse_count());
        for _ in 0..3 {
            let wide = s.take_rows(60);
            s.retire_rows(wide);
            let narrow = s.take_rows(5);
            s.retire_rows(narrow);
        }
        assert_eq!(fresh_count(), before.0, "steady-state takes stay warm");
        assert_eq!(reuse_count(), before.1 + 6);
    }

    #[test]
    fn pool_checkout_returns_arenas_on_drop() {
        let pool = ScratchPool::new();
        assert_eq!(pool.idle(), 0);
        {
            let g1 = pool.checkout();
            let g2 = pool.checkout();
            assert_eq!(pool.idle(), 0);
            drop(g1);
            assert_eq!(pool.idle(), 1);
            drop(g2);
        }
        assert_eq!(pool.idle(), 2, "pool grew to peak concurrency");
        {
            let mut g = pool.checkout();
            let buf = g.take_u32(8, 7);
            g.retire_u32(buf);
        }
        assert_eq!(pool.idle(), 2, "checkout reuses resting arenas");
    }

    #[test]
    fn pools_are_identity_free() {
        let a = ScratchPool::new();
        {
            let mut g = a.checkout();
            let buf = g.take_u64(16, 0);
            g.retire_u64(buf);
        }
        let b = a.clone();
        assert_eq!(b.idle(), 0, "clones start empty");
        assert_eq!(a, b, "pools always compare equal");
    }
}
