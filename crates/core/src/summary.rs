//! Serializable wiring-plan summaries.
//!
//! [`PlanSummary`] is the export format of a [`WiringPlan`]: everything
//! a control-electronics team needs to hook up a fridge — line
//! memberships, per-qubit frequencies, DEMUX levels — as plain data
//! (JSON-ready with the `serde` feature).

use youtiao_chip::DeviceId;

use crate::plan::WiringPlan;
use crate::tdm::DemuxLevel;

/// One FDM XY line of a [`PlanSummary`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FdmLineSummary {
    /// Qubit indices multiplexed on the line.
    pub qubits: Vec<u32>,
    /// Drive frequency per qubit, GHz (index-aligned with `qubits`).
    pub frequencies_ghz: Vec<f64>,
}

/// One TDM Z line (cryo-DEMUX) of a [`PlanSummary`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TdmGroupSummary {
    /// DEMUX fan-out: `"1:8"`, `"1:4"`, `"1:2"` or `"direct"`.
    pub demux: String,
    /// Devices behind the DEMUX: `"q<i>"` for qubits, `"c<i>"` for
    /// couplers.
    pub devices: Vec<String>,
    /// Digital select lines required.
    pub select_lines: usize,
}

/// A serializable summary of a full wiring plan.
///
/// # Example
///
/// ```
/// use youtiao_chip::topology;
/// use youtiao_core::summary::PlanSummary;
/// use youtiao_core::YoutiaoPlanner;
///
/// let chip = topology::square_grid(3, 3);
/// let plan = YoutiaoPlanner::new(&chip).plan()?;
/// let summary = PlanSummary::from_plan(&plan);
/// assert_eq!(summary.xy_lines.len(), 2);
/// assert_eq!(summary.total_qubits, 9);
/// # Ok::<(), youtiao_core::PlanError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PlanSummary {
    /// Number of qubits planned.
    pub total_qubits: usize,
    /// FDM XY lines with frequency assignments.
    pub xy_lines: Vec<FdmLineSummary>,
    /// TDM Z lines with DEMUX levels.
    pub z_lines: Vec<TdmGroupSummary>,
    /// Readout feedlines (qubit indices) with resonator frequencies.
    pub readout_lines: Vec<FdmLineSummary>,
    /// Total DEMUX select lines.
    pub demux_select_lines: usize,
}

impl PlanSummary {
    /// Extracts a summary from a wiring plan.
    pub fn from_plan(plan: &WiringPlan) -> Self {
        let fp = plan.frequency_plan();
        let xy_lines = plan
            .fdm_lines()
            .iter()
            .map(|line| FdmLineSummary {
                qubits: line.qubits().iter().map(|q| q.value()).collect(),
                frequencies_ghz: line.qubits().iter().map(|&q| fp.frequency_ghz(q)).collect(),
            })
            .collect();
        let rp = plan.readout_frequency_plan();
        let readout_lines = plan
            .readout_lines()
            .iter()
            .map(|line| FdmLineSummary {
                qubits: line.iter().map(|q| q.value()).collect(),
                frequencies_ghz: line.iter().map(|&q| rp.frequency_ghz(q)).collect(),
            })
            .collect();
        let z_lines = plan
            .tdm_groups()
            .iter()
            .map(|g| TdmGroupSummary {
                demux: demux_name(g.level()).to_string(),
                devices: g.devices().iter().map(|d| device_name(*d)).collect(),
                select_lines: g.level().select_lines(),
            })
            .collect();
        PlanSummary {
            total_qubits: plan.readout_lines().iter().map(Vec::len).sum(),
            xy_lines,
            z_lines,
            readout_lines,
            demux_select_lines: plan.demux_select_lines(),
        }
    }
}

fn demux_name(level: DemuxLevel) -> &'static str {
    match level {
        DemuxLevel::OneToEight => "1:8",
        DemuxLevel::OneToFour => "1:4",
        DemuxLevel::OneToTwo => "1:2",
        _ => "direct",
    }
}

fn device_name(d: DeviceId) -> String {
    d.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::YoutiaoPlanner;
    use youtiao_chip::topology;

    fn summary_for(chip: &youtiao_chip::Chip) -> PlanSummary {
        let plan = YoutiaoPlanner::new(chip).plan().unwrap();
        PlanSummary::from_plan(&plan)
    }

    #[test]
    fn summary_covers_all_qubits() {
        let chip = topology::heavy_square(3, 3);
        let s = summary_for(&chip);
        assert_eq!(s.total_qubits, 21);
        let xy_total: usize = s.xy_lines.iter().map(|l| l.qubits.len()).sum();
        assert_eq!(xy_total, 21);
        let z_total: usize = s.z_lines.iter().map(|l| l.devices.len()).sum();
        assert_eq!(z_total, chip.num_z_devices());
    }

    #[test]
    fn frequencies_are_aligned_and_in_band() {
        let chip = topology::square_grid(3, 3);
        let s = summary_for(&chip);
        for line in &s.xy_lines {
            assert_eq!(line.qubits.len(), line.frequencies_ghz.len());
            assert!(line.frequencies_ghz.iter().all(|f| (4.0..=7.0).contains(f)));
        }
        for line in &s.readout_lines {
            assert!(line.frequencies_ghz.iter().all(|f| (7.0..=8.0).contains(f)));
        }
    }

    #[test]
    fn demux_names_are_human_readable() {
        let chip = topology::square_grid(3, 3);
        let s = summary_for(&chip);
        for g in &s.z_lines {
            assert!(["1:8", "1:4", "1:2", "direct"].contains(&g.demux.as_str()));
            assert!(g
                .devices
                .iter()
                .all(|d| d.starts_with('q') || d.starts_with('c')));
        }
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serializes_to_json() {
        let chip = topology::square_grid(3, 3);
        let s = summary_for(&chip);
        let json = serde_json::to_string_pretty(&s).unwrap();
        assert!(json.contains("xy_lines"));
        let parsed: PlanSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.total_qubits, s.total_qubits);
    }
}
