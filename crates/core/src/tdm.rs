//! Noise-aware TDM grouping of Z-controlled devices (§4.3).
//!
//! Every CZ gate `q_a − c − q_b` flux-pulses three devices at once, so
//! devices sharing a cryo-DEMUX serialize the gates that need them. The
//! grouping goal is to share DEMUXes between devices whose gates could
//! never run in parallel anyway:
//!
//! * **legality** — two devices needed by the *same* gate must never share
//!   a DEMUX (the gate would become unrealizable);
//! * **topological non-parallelism** — devices whose gate sets pairwise
//!   conflict (share a qubit) cost zero extra depth when grouped;
//! * **noisy non-parallelism** — devices whose gates would crosstalk
//!   heavily if run simultaneously should not run in parallel, so
//!   grouping them is free in practice.
//!
//! The *parallelism index* ranks how much gate freedom a device has; a
//! threshold `θ` splits devices between dense 1:4 DEMUXes (low
//! parallelism) and shallow 1:2 DEMUXes (high parallelism).

use youtiao_chip::distance::DistanceMatrix;
use youtiao_chip::{Chip, CouplerId, DeviceId, QubitId};

/// Cryo-DEMUX fan-out level for one TDM group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DemuxLevel {
    /// 1:8 multiplexer — eight channels, three digital select lines
    /// (the paper's multi-level-switch extension; opt-in via
    /// [`TdmConfig::allow_one_to_eight`]).
    OneToEight,
    /// 1:4 multiplexer — four channels, two digital select lines.
    OneToFour,
    /// 1:2 multiplexer — two channels, one digital select line.
    OneToTwo,
    /// Dedicated line (no DEMUX) for devices that could not be grouped.
    Direct,
}

impl DemuxLevel {
    /// Number of device channels the DEMUX can own.
    pub fn channel_capacity(self) -> usize {
        match self {
            DemuxLevel::OneToEight => 8,
            DemuxLevel::OneToFour => 4,
            DemuxLevel::OneToTwo => 2,
            DemuxLevel::Direct => 1,
        }
    }

    /// Number of room-temperature digital select lines required.
    pub fn select_lines(self) -> usize {
        match self {
            DemuxLevel::OneToEight => 3,
            DemuxLevel::OneToFour => 2,
            DemuxLevel::OneToTwo => 1,
            DemuxLevel::Direct => 0,
        }
    }
}

/// One shared Z line: a cryo-DEMUX plus the devices behind it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TdmGroup {
    level: DemuxLevel,
    devices: Vec<DeviceId>,
}

impl TdmGroup {
    /// Creates a group; the level is downgraded to
    /// [`DemuxLevel::Direct`] for singletons.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is empty or exceeds the level's capacity.
    pub fn new(level: DemuxLevel, devices: Vec<DeviceId>) -> Self {
        assert!(!devices.is_empty(), "tdm group cannot be empty");
        assert!(
            devices.len() <= level.channel_capacity(),
            "tdm group exceeds demux capacity"
        );
        let level = if devices.len() == 1 {
            DemuxLevel::Direct
        } else {
            level
        };
        TdmGroup { level, devices }
    }

    /// The DEMUX fan-out level.
    pub fn level(&self) -> DemuxLevel {
        self.level
    }

    /// The devices sharing this Z line.
    pub fn devices(&self) -> &[DeviceId] {
        &self.devices
    }

    /// Number of devices in the group.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Returns `true` when the group has no devices (never constructed).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }
}

/// Configuration of the TDM grouping pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TdmConfig {
    /// Parallelism-index threshold θ: devices strictly below it use 1:4
    /// DEMUXes, others 1:2 (§4.3 uses θ = 4 in its example).
    pub theta: f64,
    /// When an activity profile is supplied, the maximum number of extra
    /// serialized time windows a group may introduce per workload period
    /// (`Σ_t max(0, busy_devices(t) − 1)`). 0 demands perfectly disjoint
    /// activity (zero depth cost); small values trade a little
    /// serialization for fewer lines.
    pub max_shared_slots: u32,
    /// Use 1:8 cryo-DEMUXes for the low-parallelism level instead of
    /// 1:4 — the deeper multi-level switches the paper's related work
    /// points to. Off by default (matching the evaluation).
    pub allow_one_to_eight: bool,
}

impl Default for TdmConfig {
    fn default() -> Self {
        TdmConfig {
            theta: 4.0,
            max_shared_slots: 0,
            allow_one_to_eight: false,
        }
    }
}

/// Per-device activity profile: bit `t` set means the device is busy in
/// time slot `t` of the (periodic) workload. Devices absent from the map
/// are treated as always-compatible (mask 0).
///
/// This is the *natural non-parallelism* of §4.3 made explicit: devices
/// that are never busy in the same slot can share a cryo-DEMUX at zero
/// depth cost.
pub type ActivityProfile = std::collections::HashMap<DeviceId, u32>;

/// Extra serialized time windows a device set introduces per workload
/// period under `activity`: `Σ_t max(0, busy_devices(t) − 1)`. This is
/// the quantity [`TdmConfig::max_shared_slots`] budgets and the
/// serialization estimate the paper's depth-overhead claim rests on.
///
/// Devices absent from the profile count as never busy (mask 0).
pub fn group_extra_windows(devices: &[DeviceId], activity: &ActivityProfile) -> u32 {
    extra_windows_masked(devices.iter().copied(), |d| {
        activity.get(&d).copied().unwrap_or(0)
    })
}

/// [`group_extra_windows`] over an arbitrary device iterator and mask
/// lookup. Counts are `u16` with saturating arithmetic so oversized
/// synthetic device sets (>255 devices busy in one slot) cannot
/// overflow in release builds.
pub(crate) fn extra_windows_masked<I, F>(devices: I, mask_of: F) -> u32
where
    I: IntoIterator<Item = DeviceId>,
    F: Fn(DeviceId) -> u32,
{
    let mut counts = [0u16; 32];
    for d in devices {
        let m = mask_of(d);
        for (t, count) in counts.iter_mut().enumerate() {
            if m & (1 << t) != 0 {
                *count = count.saturating_add(1);
            }
        }
    }
    counts.iter().map(|&c| u32::from(c.saturating_sub(1))).sum()
}

/// Derives a generic workload activity profile from the chip topology:
/// a greedy edge coloring assigns every coupler the time slot of its
/// colour class (the brickwork pattern in which dense circuits execute
/// their two-qubit gates), and every qubit is busy in the slots of its
/// incident couplers.
///
/// This is the topology-only approximation of natural non-parallelism
/// used when no concrete workload profile is available: two couplers
/// with the same colour *can* fire simultaneously, so they should not
/// share a DEMUX; couplers of different colours never do.
pub fn brickwork_activity(chip: &Chip) -> ActivityProfile {
    let mut colors: Vec<Option<u32>> = vec![None; chip.num_couplers()];
    for c in chip.coupler_ids() {
        let (a, b) = chip.coupler(c).expect("coupler id in range").endpoints();
        let mut used = 0u32;
        for &nc in chip.couplers_of(a).iter().chain(chip.couplers_of(b)) {
            if let Some(col) = colors[nc.index()] {
                used |= 1 << col.min(31);
            }
        }
        let color = (0..32).find(|&k| used & (1 << k) == 0).unwrap_or(31);
        colors[c.index()] = Some(color);
    }
    let mut profile = ActivityProfile::new();
    for c in chip.coupler_ids() {
        let mask = 1u32 << colors[c.index()].expect("all couplers colored");
        profile.insert(DeviceId::Coupler(c), mask);
    }
    // Qubit Z lines carry bias and sparse retunes (§3.1), not per-gate
    // pulses, so they are unconstrained in time (mask 0).
    for q in chip.qubit_ids() {
        profile.insert(DeviceId::Qubit(q), 0);
    }
    profile
}

/// The paper's parallelism index of a qubit or coupler: the average,
/// over the two-qubit gates that occupy the device, of the number of
/// topologically non-coexistent neighbouring gates, normalized by the
/// device's connectivity (couplers count as connectivity 1).
///
/// # Panics
///
/// Panics if the device id is out of range.
///
/// # Example
///
/// ```
/// use youtiao_chip::{topology, DeviceId};
///
/// // Chain q0-c0-q1-c1-q2: coupler c0's only gate conflicts with one
/// // neighbouring gate, so its index is 1.
/// let chip = topology::linear(3);
/// let c0 = chip.coupler_between(0u32.into(), 1u32.into()).unwrap();
/// let idx = youtiao_core::tdm::parallelism_index(&chip, DeviceId::Coupler(c0));
/// assert_eq!(idx, 1.0);
/// ```
pub fn parallelism_index(chip: &Chip, device: DeviceId) -> f64 {
    let gates = device_gates(chip, device);
    if gates.is_empty() {
        return 0.0;
    }
    let connectivity = match device {
        DeviceId::Coupler(_) => 1usize,
        DeviceId::Qubit(q) => chip.connectivity(q).max(1),
    };
    let total: usize = gates.iter().map(|&g| adjacent_gates(chip, g).len()).sum();
    total as f64 / connectivity as f64
}

/// The two-qubit gates (couplers) that occupy a device when active.
fn device_gates(chip: &Chip, device: DeviceId) -> Vec<CouplerId> {
    match device {
        DeviceId::Coupler(c) => vec![c],
        DeviceId::Qubit(q) => chip.couplers_of(q).to_vec(),
    }
}

/// Gates sharing a qubit endpoint with `gate` (excluding `gate` itself).
fn adjacent_gates(chip: &Chip, gate: CouplerId) -> Vec<CouplerId> {
    let (a, b) = chip.coupler(gate).expect("gate id in range").endpoints();
    let mut out: Vec<CouplerId> = chip
        .couplers_of(a)
        .iter()
        .chain(chip.couplers_of(b))
        .copied()
        .filter(|&c| c != gate)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Returns `true` when two devices may legally share a DEMUX: no single
/// CZ gate ever needs both simultaneously.
pub fn legal_pair(chip: &Chip, a: DeviceId, b: DeviceId) -> bool {
    match (a, b) {
        (DeviceId::Qubit(qa), DeviceId::Qubit(qb)) => qa != qb && !chip.are_adjacent(qa, qb),
        (DeviceId::Qubit(q), DeviceId::Coupler(c)) | (DeviceId::Coupler(c), DeviceId::Qubit(q)) => {
            !chip.couplers_of(q).contains(&c)
        }
        (DeviceId::Coupler(ca), DeviceId::Coupler(cb)) => ca != cb,
    }
}

/// Returns `true` when two gates cannot coexist in one layer (they share
/// a qubit endpoint).
fn gates_conflict(chip: &Chip, a: CouplerId, b: CouplerId) -> bool {
    if a == b {
        return true;
    }
    let (a0, a1) = chip.coupler(a).expect("gate id in range").endpoints();
    let (b0, b1) = chip.coupler(b).expect("gate id in range").endpoints();
    a0 == b0 || a0 == b1 || a1 == b0 || a1 == b1
}

/// Fraction of gate pairs between two devices that topologically
/// conflict: 1.0 means grouping them can never cost depth.
fn topo_nonparallel_fraction(chip: &Chip, a: DeviceId, b: DeviceId) -> f64 {
    let ga = device_gates(chip, a);
    let gb = device_gates(chip, b);
    if ga.is_empty() || gb.is_empty() {
        return 1.0;
    }
    let mut conflicts = 0usize;
    for &x in &ga {
        for &y in &gb {
            if gates_conflict(chip, x, y) {
                conflicts += 1;
            }
        }
    }
    conflicts as f64 / (ga.len() * gb.len()) as f64
}

/// Representative qubits of a device (itself, or a coupler's endpoints).
fn device_qubits(chip: &Chip, d: DeviceId) -> Vec<QubitId> {
    match d {
        DeviceId::Qubit(q) => vec![q],
        DeviceId::Coupler(c) => {
            let (a, b) = chip.coupler(c).expect("device id in range").endpoints();
            vec![a, b]
        }
    }
}

/// Worst-case crosstalk between the qubits of two devices.
pub(crate) fn noisy_score(chip: &Chip, xtalk: &DistanceMatrix, a: DeviceId, b: DeviceId) -> f64 {
    let mut worst = 0.0f64;
    for qa in device_qubits(chip, a) {
        for qb in device_qubits(chip, b) {
            if qa != qb {
                worst = worst.max(xtalk.get(qa, qb));
            }
        }
    }
    worst
}

/// Groups every Z-controlled device of `chip` onto shared TDM lines.
///
/// `xtalk` is the qubit-pair crosstalk matrix driving the noisy
/// non-parallelism heuristic.
///
/// # Panics
///
/// Panics if the matrix dimension mismatches the chip.
pub fn group_tdm(chip: &Chip, xtalk: &DistanceMatrix, config: &TdmConfig) -> Vec<TdmGroup> {
    let devices: Vec<DeviceId> = chip.device_ids().collect();
    group_tdm_subset(chip, xtalk, config, &devices)
}

/// Like [`group_tdm`], but restricted to a device subset (used per
/// partition region).
///
/// # Panics
///
/// Panics if the matrix dimension mismatches the chip.
pub fn group_tdm_subset(
    chip: &Chip,
    xtalk: &DistanceMatrix,
    config: &TdmConfig,
    devices: &[DeviceId],
) -> Vec<TdmGroup> {
    group_tdm_with_activity(chip, xtalk, config, devices, &ActivityProfile::new())
}

/// Like [`group_tdm_subset`], but additionally constrained by a workload
/// [`ActivityProfile`]: grouped devices may share at most
/// `config.max_shared_slots` busy time slots, so the grouping exploits
/// the workload's natural non-parallelism (e.g. the 4-step CZ schedule
/// of a surface-code cycle).
///
/// # Panics
///
/// Panics if the matrix dimension mismatches the chip.
pub fn group_tdm_with_activity(
    chip: &Chip,
    xtalk: &DistanceMatrix,
    config: &TdmConfig,
    devices: &[DeviceId],
    activity: &ActivityProfile,
) -> Vec<TdmGroup> {
    assert_eq!(
        xtalk.len(),
        chip.num_qubits(),
        "crosstalk matrix size mismatch"
    );

    // Rank devices by parallelism index and split at θ.
    let mut indexed: Vec<(DeviceId, f64)> = devices
        .iter()
        .map(|&d| (d, parallelism_index(chip, d)))
        .collect();
    indexed.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    let low: Vec<(DeviceId, f64)> = indexed
        .iter()
        .copied()
        .filter(|&(_, i)| i < config.theta)
        .collect();
    let high: Vec<(DeviceId, f64)> = indexed
        .iter()
        .copied()
        .filter(|&(_, i)| i >= config.theta)
        .collect();

    let low_level = if config.allow_one_to_eight {
        DemuxLevel::OneToEight
    } else {
        DemuxLevel::OneToFour
    };
    let mut groups = Vec::new();
    for (level, pool) in [(low_level, low), (DemuxLevel::OneToTwo, high)] {
        groups.extend(group_level(chip, xtalk, level, pool, activity, config));
    }
    groups
}

/// Greedy graph-coloring of one parallelism level (§4.3 steps 1–3).
fn group_level(
    chip: &Chip,
    xtalk: &DistanceMatrix,
    level: DemuxLevel,
    mut pool: Vec<(DeviceId, f64)>,
    activity: &ActivityProfile,
    config: &TdmConfig,
) -> Vec<TdmGroup> {
    let capacity = level.channel_capacity();
    let mask_of = |d: DeviceId| activity.get(&d).copied().unwrap_or(0);
    let mut groups = Vec::new();
    while !pool.is_empty() {
        // Step 1: seed with the lowest parallelism index.
        let (seed, seed_idx) = pool.remove(0);
        let mut members = vec![seed];
        let mut member_idx = vec![seed_idx];
        // Per-slot busy-device counts; the group's depth cost is
        // Σ_t max(0, count_t − 1) extra serialized windows per period.
        let mut slot_counts = [0u8; 32];
        for (t, count) in slot_counts.iter_mut().enumerate() {
            if mask_of(seed) & (1 << t) != 0 {
                *count += 1;
            }
        }
        let group_extra =
            |counts: &[u8; 32]| -> u32 { counts.iter().map(|&c| c.saturating_sub(1) as u32).sum() };
        while members.len() < capacity {
            // Steps 2–3: among legal candidates sharing the fewest busy
            // slots, prefer fully topologically non-parallel ones, then
            // the noisiest, then the closest parallelism index
            // (balancing).
            let mut best: Option<(usize, (f64, f64, f64, f64))> = None;
            for (i, &(cand, cand_idx)) in pool.iter().enumerate() {
                if !members.iter().all(|&m| legal_pair(chip, m, cand)) {
                    continue;
                }
                let mut with_cand = slot_counts;
                for (t, count) in with_cand.iter_mut().enumerate() {
                    if mask_of(cand) & (1 << t) != 0 {
                        *count += 1;
                    }
                }
                let shared = group_extra(&with_cand);
                if shared > config.max_shared_slots {
                    continue;
                }
                let topo = members
                    .iter()
                    .map(|&m| topo_nonparallel_fraction(chip, m, cand))
                    .fold(f64::INFINITY, f64::min);
                let noise = members
                    .iter()
                    .map(|&m| noisy_score(chip, xtalk, m, cand))
                    .fold(0.0, f64::max);
                let balance = member_idx
                    .iter()
                    .map(|&mi: &f64| (mi - cand_idx).abs())
                    .fold(0.0, f64::max);
                // Fewer shared slots, higher topo, higher noise, lower
                // imbalance is better.
                let key = (-(shared as f64), topo, noise, -balance);
                if best.is_none_or(|(_, bk)| key > bk) {
                    best = Some((i, key));
                }
            }
            match best {
                Some((i, _)) => {
                    let (d, di) = pool.remove(i);
                    for (t, count) in slot_counts.iter_mut().enumerate() {
                        if mask_of(d) & (1 << t) != 0 {
                            *count += 1;
                        }
                    }
                    members.push(d);
                    member_idx.push(di);
                }
                None => break,
            }
        }
        groups.push(TdmGroup::new(level, members));
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtiao_chip::topology;

    fn flat_xtalk(chip: &Chip) -> DistanceMatrix {
        let mut m = DistanceMatrix::zeros(chip.num_qubits());
        for a in chip.qubit_ids() {
            for b in chip.qubit_ids() {
                if a < b {
                    let d = chip.physical_distance(a, b);
                    m.set(a, b, 0.01 * (-d).exp());
                }
            }
        }
        m
    }

    #[test]
    fn parallelism_index_matches_paper_chain_example() {
        // Figure 8 (b): chain q1-c1-q2-c2-q3 with q3 branching to c3, c4.
        // Reconstruct: star-ish graph.
        let chip = youtiao_chip::ChipBuilder::new("fig8", youtiao_chip::TopologyKind::Custom)
            .qubit(youtiao_chip::Position::new(0.0, 0.0)) // q1
            .qubit(youtiao_chip::Position::new(1.0, 0.0)) // q2
            .qubit(youtiao_chip::Position::new(2.0, 0.0)) // q3
            .qubit(youtiao_chip::Position::new(3.0, 0.0)) // q4
            .qubit(youtiao_chip::Position::new(2.0, 1.0)) // q7
            .coupler(0u32.into(), 1u32.into()) // c1: q1-q2
            .coupler(1u32.into(), 2u32.into()) // c2: q2-q3
            .coupler(2u32.into(), 3u32.into()) // c3: q3-q4
            .coupler(2u32.into(), 4u32.into()) // c4: q3-q7
            .build()
            .unwrap();
        // c1's gate q1-q2 conflicts only with q2-q3 -> index 1.
        let c1 = chip.coupler_between(0u32.into(), 1u32.into()).unwrap();
        assert_eq!(parallelism_index(&chip, DeviceId::Coupler(c1)), 1.0);
        // q3 participates in gates c2 (3 adjacent: c1, c3, c4), c3 (2:
        // c2, c4) and c4 (2: c2, c3); connectivity 3 -> (3+2+2)/3.
        let idx = parallelism_index(&chip, DeviceId::Qubit(2u32.into()));
        assert!((idx - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_qubit_has_zero_index() {
        let chip = youtiao_chip::ChipBuilder::new("iso", youtiao_chip::TopologyKind::Custom)
            .qubit(youtiao_chip::Position::new(0.0, 0.0))
            .build()
            .unwrap();
        assert_eq!(parallelism_index(&chip, DeviceId::Qubit(0u32.into())), 0.0);
    }

    #[test]
    fn legality_rules() {
        let chip = topology::linear(3);
        let q0 = DeviceId::Qubit(0u32.into());
        let q1 = DeviceId::Qubit(1u32.into());
        let q2 = DeviceId::Qubit(2u32.into());
        let c0 = DeviceId::Coupler(chip.coupler_between(0u32.into(), 1u32.into()).unwrap());
        let c1 = DeviceId::Coupler(chip.coupler_between(1u32.into(), 2u32.into()).unwrap());
        assert!(!legal_pair(&chip, q0, q1), "adjacent qubits share a gate");
        assert!(legal_pair(&chip, q0, q2), "distant qubits are legal");
        assert!(!legal_pair(&chip, q0, c0), "qubit with its coupler");
        assert!(legal_pair(&chip, q2, c0), "qubit with a far coupler");
        assert!(legal_pair(&chip, c0, c1), "couplers never share a gate");
        assert!(!legal_pair(&chip, q0, q0), "a device with itself");
    }

    #[test]
    fn groups_cover_all_devices_exactly_once() {
        let chip = topology::square_grid(3, 3);
        let x = flat_xtalk(&chip);
        let groups = group_tdm(&chip, &x, &TdmConfig::default());
        let mut all: Vec<DeviceId> = groups.iter().flat_map(|g| g.devices().to_vec()).collect();
        all.sort_unstable();
        let mut expect: Vec<DeviceId> = chip.device_ids().collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }

    #[test]
    fn groups_are_legal() {
        let chip = topology::square_grid(3, 3);
        let x = flat_xtalk(&chip);
        for g in group_tdm(&chip, &x, &TdmConfig::default()) {
            let ds = g.devices();
            for i in 0..ds.len() {
                for j in (i + 1)..ds.len() {
                    assert!(legal_pair(&chip, ds[i], ds[j]), "illegal pair in group");
                }
            }
        }
    }

    #[test]
    fn grouping_reduces_line_count() {
        let chip = topology::heavy_square(3, 3);
        let x = flat_xtalk(&chip);
        let groups = group_tdm(&chip, &x, &TdmConfig::default());
        assert!(
            groups.len() * 2 <= chip.num_z_devices(),
            "expected ≥2× reduction"
        );
    }

    #[test]
    fn theta_extremes_select_demux_levels() {
        let chip = topology::square_grid(3, 3);
        let x = flat_xtalk(&chip);
        // θ = ∞: everything is "low parallelism" -> all 1:4 (or direct).
        let all_low = group_tdm(
            &chip,
            &x,
            &TdmConfig {
                theta: f64::INFINITY,
                ..Default::default()
            },
        );
        assert!(all_low
            .iter()
            .all(|g| matches!(g.level(), DemuxLevel::OneToFour | DemuxLevel::Direct)));
        // θ = 0: everything "high" -> 1:2 / direct.
        let all_high = group_tdm(
            &chip,
            &x,
            &TdmConfig {
                theta: 0.0,
                ..Default::default()
            },
        );
        assert!(all_high
            .iter()
            .all(|g| matches!(g.level(), DemuxLevel::OneToTwo | DemuxLevel::Direct)));
        assert!(all_high.len() >= all_low.len());
    }

    #[test]
    fn singleton_groups_become_direct_lines() {
        let g = TdmGroup::new(DemuxLevel::OneToFour, vec![DeviceId::Qubit(0u32.into())]);
        assert_eq!(g.level(), DemuxLevel::Direct);
        assert_eq!(g.level().select_lines(), 0);
    }

    #[test]
    fn demux_level_properties() {
        assert_eq!(DemuxLevel::OneToFour.channel_capacity(), 4);
        assert_eq!(DemuxLevel::OneToFour.select_lines(), 2);
        assert_eq!(DemuxLevel::OneToTwo.channel_capacity(), 2);
        assert_eq!(DemuxLevel::OneToTwo.select_lines(), 1);
        assert_eq!(DemuxLevel::Direct.channel_capacity(), 1);
    }

    #[test]
    fn deterministic() {
        let chip = topology::hexagon_patch(2, 2);
        let x = flat_xtalk(&chip);
        assert_eq!(
            group_tdm(&chip, &x, &TdmConfig::default()),
            group_tdm(&chip, &x, &TdmConfig::default())
        );
    }

    #[test]
    fn extra_windows_counts_shared_slots() {
        let d = |i: u32| DeviceId::Qubit(i.into());
        let mut profile = ActivityProfile::new();
        profile.insert(d(0), 0b011);
        profile.insert(d(1), 0b001);
        profile.insert(d(2), 0b100);
        // Slot 0 busy twice -> 1 extra window; slots 1, 2 busy once.
        assert_eq!(group_extra_windows(&[d(0), d(1), d(2)], &profile), 1);
        assert_eq!(group_extra_windows(&[], &profile), 0);
        // Unknown devices are never busy.
        assert_eq!(group_extra_windows(&[d(0), d(9)], &profile), 0);
    }

    #[test]
    fn extra_windows_survives_oversized_device_sets() {
        // >255 devices sharing one slot used to overflow the u8 slot
        // counters (panic in debug, silent wraparound in release). No
        // DEMUX holds that many devices, but the accessor takes an
        // arbitrary slice, so it must stay exact.
        let devices: Vec<DeviceId> = (0..300u32).map(|i| DeviceId::Qubit(i.into())).collect();
        let mut profile = ActivityProfile::new();
        for &d in &devices {
            profile.insert(d, 0b1);
        }
        assert_eq!(group_extra_windows(&devices, &profile), 299);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn oversized_group_panics() {
        let _ = TdmGroup::new(
            DemuxLevel::OneToTwo,
            vec![
                DeviceId::Qubit(0u32.into()),
                DeviceId::Qubit(1u32.into()),
                DeviceId::Qubit(2u32.into()),
            ],
        );
    }
}
