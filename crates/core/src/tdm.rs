//! Noise-aware TDM grouping of Z-controlled devices (§4.3).
//!
//! Every CZ gate `q_a − c − q_b` flux-pulses three devices at once, so
//! devices sharing a cryo-DEMUX serialize the gates that need them. The
//! grouping goal is to share DEMUXes between devices whose gates could
//! never run in parallel anyway:
//!
//! * **legality** — two devices needed by the *same* gate must never share
//!   a DEMUX (the gate would become unrealizable);
//! * **topological non-parallelism** — devices whose gate sets pairwise
//!   conflict (share a qubit) cost zero extra depth when grouped;
//! * **noisy non-parallelism** — devices whose gates would crosstalk
//!   heavily if run simultaneously should not run in parallel, so
//!   grouping them is free in practice.
//!
//! The *parallelism index* ranks how much gate freedom a device has; a
//! threshold `θ` splits devices between dense 1:4 DEMUXes (low
//! parallelism) and shallow 1:2 DEMUXes (high parallelism).
//!
//! The grouping inner loop runs against precomputed
//! [`PairKernels`](crate::kernels::PairKernels) tables with incremental
//! per-group aggregates — O(1) lookups per candidate instead of
//! re-deriving every pairwise term. The original per-candidate
//! implementation is retained in [`naive`] (test builds and the `naive`
//! feature) as the differential-testing reference; both paths produce
//! byte-identical groupings.

use youtiao_chip::distance::DistanceMatrix;
use youtiao_chip::{Chip, CouplerId, DeviceId, QubitId};

use crate::kernels::PairKernels;
use crate::scratch::Scratch;

/// Cryo-DEMUX fan-out level for one TDM group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DemuxLevel {
    /// 1:8 multiplexer — eight channels, three digital select lines
    /// (the paper's multi-level-switch extension; opt-in via
    /// [`TdmConfig::allow_one_to_eight`]).
    OneToEight,
    /// 1:4 multiplexer — four channels, two digital select lines.
    OneToFour,
    /// 1:2 multiplexer — two channels, one digital select line.
    OneToTwo,
    /// Dedicated line (no DEMUX) for devices that could not be grouped.
    Direct,
}

impl DemuxLevel {
    /// Number of device channels the DEMUX can own.
    pub fn channel_capacity(self) -> usize {
        match self {
            DemuxLevel::OneToEight => 8,
            DemuxLevel::OneToFour => 4,
            DemuxLevel::OneToTwo => 2,
            DemuxLevel::Direct => 1,
        }
    }

    /// Number of room-temperature digital select lines required.
    pub fn select_lines(self) -> usize {
        match self {
            DemuxLevel::OneToEight => 3,
            DemuxLevel::OneToFour => 2,
            DemuxLevel::OneToTwo => 1,
            DemuxLevel::Direct => 0,
        }
    }
}

/// One shared Z line: a cryo-DEMUX plus the devices behind it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TdmGroup {
    level: DemuxLevel,
    devices: Vec<DeviceId>,
}

impl TdmGroup {
    /// Creates a group; the level is downgraded to
    /// [`DemuxLevel::Direct`] for singletons.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is empty or exceeds the level's capacity.
    pub fn new(level: DemuxLevel, devices: Vec<DeviceId>) -> Self {
        assert!(!devices.is_empty(), "tdm group cannot be empty");
        assert!(
            devices.len() <= level.channel_capacity(),
            "tdm group exceeds demux capacity"
        );
        let level = if devices.len() == 1 {
            DemuxLevel::Direct
        } else {
            level
        };
        TdmGroup { level, devices }
    }

    /// The DEMUX fan-out level.
    pub fn level(&self) -> DemuxLevel {
        self.level
    }

    /// The devices sharing this Z line.
    pub fn devices(&self) -> &[DeviceId] {
        &self.devices
    }

    /// Number of devices in the group.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Returns `true` when the group has no devices (never constructed).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }
}

/// Configuration of the TDM grouping pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TdmConfig {
    /// Parallelism-index threshold θ: devices strictly below it use 1:4
    /// DEMUXes, others 1:2 (§4.3 uses θ = 4 in its example).
    pub theta: f64,
    /// When an activity profile is supplied, the maximum number of extra
    /// serialized time windows a group may introduce per workload period
    /// (`Σ_t max(0, busy_devices(t) − 1)`). 0 demands perfectly disjoint
    /// activity (zero depth cost); small values trade a little
    /// serialization for fewer lines.
    pub max_shared_slots: u32,
    /// Use 1:8 cryo-DEMUXes for the low-parallelism level instead of
    /// 1:4 — the deeper multi-level switches the paper's related work
    /// points to. Off by default (matching the evaluation).
    pub allow_one_to_eight: bool,
}

impl Default for TdmConfig {
    fn default() -> Self {
        TdmConfig {
            theta: 4.0,
            max_shared_slots: 0,
            allow_one_to_eight: false,
        }
    }
}

/// Per-device activity profile: bit `t` set means the device is busy in
/// time slot `t` of the (periodic) workload. Devices absent from the map
/// are treated as always-compatible (mask 0).
///
/// This is the *natural non-parallelism* of §4.3 made explicit: devices
/// that are never busy in the same slot can share a cryo-DEMUX at zero
/// depth cost.
pub type ActivityProfile = std::collections::HashMap<DeviceId, u32>;

/// Extra serialized time windows a device set introduces per workload
/// period under `activity`: `Σ_t max(0, busy_devices(t) − 1)`. This is
/// the quantity [`TdmConfig::max_shared_slots`] budgets and the
/// serialization estimate the paper's depth-overhead claim rests on.
///
/// Devices absent from the profile count as never busy (mask 0).
pub fn group_extra_windows(devices: &[DeviceId], activity: &ActivityProfile) -> u32 {
    extra_windows_masked(devices.iter().copied(), |d| {
        activity.get(&d).copied().unwrap_or(0)
    })
}

/// [`group_extra_windows`] over an arbitrary device iterator and mask
/// lookup. Counts are `u16` with saturating arithmetic so oversized
/// synthetic device sets (>255 devices busy in one slot) cannot
/// overflow in release builds.
pub(crate) fn extra_windows_masked<I, F>(devices: I, mask_of: F) -> u32
where
    I: IntoIterator<Item = DeviceId>,
    F: Fn(DeviceId) -> u32,
{
    let mut counts = [0u16; 32];
    for d in devices {
        let m = mask_of(d);
        for (t, count) in counts.iter_mut().enumerate() {
            if m & (1 << t) != 0 {
                *count = count.saturating_add(1);
            }
        }
    }
    counts.iter().map(|&c| u32::from(c.saturating_sub(1))).sum()
}

/// Derives a generic workload activity profile from the chip topology:
/// a greedy edge coloring assigns every coupler the time slot of its
/// colour class (the brickwork pattern in which dense circuits execute
/// their two-qubit gates), and every qubit is busy in the slots of its
/// incident couplers.
///
/// This is the topology-only approximation of natural non-parallelism
/// used when no concrete workload profile is available: two couplers
/// with the same colour *can* fire simultaneously, so they should not
/// share a DEMUX; couplers of different colours never do.
pub fn brickwork_activity(chip: &Chip) -> ActivityProfile {
    let mut colors: Vec<Option<u32>> = vec![None; chip.num_couplers()];
    for c in chip.coupler_ids() {
        let (a, b) = chip.coupler(c).expect("coupler id in range").endpoints();
        let mut used = 0u32;
        for &nc in chip.couplers_of(a).iter().chain(chip.couplers_of(b)) {
            if let Some(col) = colors[nc.index()] {
                used |= 1 << col.min(31);
            }
        }
        let color = (0..32).find(|&k| used & (1 << k) == 0).unwrap_or(31);
        colors[c.index()] = Some(color);
    }
    let mut profile = ActivityProfile::new();
    for c in chip.coupler_ids() {
        let mask = 1u32 << colors[c.index()].expect("all couplers colored");
        profile.insert(DeviceId::Coupler(c), mask);
    }
    // Qubit Z lines carry bias and sparse retunes (§3.1), not per-gate
    // pulses, so they are unconstrained in time (mask 0).
    for q in chip.qubit_ids() {
        profile.insert(DeviceId::Qubit(q), 0);
    }
    profile
}

/// The paper's parallelism index of a qubit or coupler: the average,
/// over the two-qubit gates that occupy the device, of the number of
/// topologically non-coexistent neighbouring gates, normalized by the
/// device's connectivity (couplers count as connectivity 1).
///
/// Allocation-free: gate sets are borrowed from the chip's adjacency
/// slices and neighbouring gates are counted in place. Bulk callers
/// should prefer the table in [`PairKernels`], which computes every
/// device's index once from the cached per-coupler adjacency.
///
/// # Panics
///
/// Panics if the device id is out of range.
///
/// # Example
///
/// ```
/// use youtiao_chip::{topology, DeviceId};
///
/// // Chain q0-c0-q1-c1-q2: coupler c0's only gate conflicts with one
/// // neighbouring gate, so its index is 1.
/// let chip = topology::linear(3);
/// let c0 = chip.coupler_between(0u32.into(), 1u32.into()).unwrap();
/// let idx = youtiao_core::tdm::parallelism_index(&chip, DeviceId::Coupler(c0));
/// assert_eq!(idx, 1.0);
/// ```
pub fn parallelism_index(chip: &Chip, device: DeviceId) -> f64 {
    let gates = device_gates(chip, device);
    let gates = gates.as_slice();
    if gates.is_empty() {
        return 0.0;
    }
    let connectivity = match device {
        DeviceId::Coupler(_) => 1usize,
        DeviceId::Qubit(q) => chip.connectivity(q).max(1),
    };
    let total: usize = gates.iter().map(|&g| adjacent_gate_count(chip, g)).sum();
    total as f64 / connectivity as f64
}

/// The two-qubit gates (couplers) that occupy a device when active,
/// without heap allocation: a coupler's single gate lives inline, a
/// qubit borrows the chip's adjacency slice.
pub(crate) enum DeviceGates<'a> {
    /// A coupler occupies exactly its own gate.
    One([CouplerId; 1]),
    /// A qubit occupies every incident coupler's gate.
    Many(&'a [CouplerId]),
}

impl DeviceGates<'_> {
    /// The gates as a slice.
    pub(crate) fn as_slice(&self) -> &[CouplerId] {
        match self {
            DeviceGates::One(one) => one,
            DeviceGates::Many(many) => many,
        }
    }
}

/// See [`DeviceGates`].
pub(crate) fn device_gates(chip: &Chip, device: DeviceId) -> DeviceGates<'_> {
    match device {
        DeviceId::Coupler(c) => DeviceGates::One([c]),
        DeviceId::Qubit(q) => DeviceGates::Many(chip.couplers_of(q)),
    }
}

/// Number of distinct gates sharing a qubit endpoint with `gate`
/// (excluding `gate` itself) — the counting form of the per-coupler
/// adjacency lists cached in [`PairKernels`], allocation-free.
fn adjacent_gate_count(chip: &Chip, gate: CouplerId) -> usize {
    let (a, b) = chip.coupler(gate).expect("gate id in range").endpoints();
    let ca = chip.couplers_of(a);
    let cb = chip.couplers_of(b);
    ca.iter().filter(|&&c| c != gate).count()
        + cb.iter()
            .filter(|&&c| c != gate && !ca.contains(&c))
            .count()
}

/// Returns `true` when two devices may legally share a DEMUX: no single
/// CZ gate ever needs both simultaneously.
pub fn legal_pair(chip: &Chip, a: DeviceId, b: DeviceId) -> bool {
    match (a, b) {
        (DeviceId::Qubit(qa), DeviceId::Qubit(qb)) => qa != qb && !chip.are_adjacent(qa, qb),
        (DeviceId::Qubit(q), DeviceId::Coupler(c)) | (DeviceId::Coupler(c), DeviceId::Qubit(q)) => {
            !chip.couplers_of(q).contains(&c)
        }
        (DeviceId::Coupler(ca), DeviceId::Coupler(cb)) => ca != cb,
    }
}

/// Returns `true` when two gates cannot coexist in one layer (they share
/// a qubit endpoint).
fn gates_conflict(chip: &Chip, a: CouplerId, b: CouplerId) -> bool {
    if a == b {
        return true;
    }
    let (a0, a1) = chip.coupler(a).expect("gate id in range").endpoints();
    let (b0, b1) = chip.coupler(b).expect("gate id in range").endpoints();
    a0 == b0 || a0 == b1 || a1 == b0 || a1 == b1
}

/// Fraction of gate pairs between two devices that topologically
/// conflict: 1.0 means grouping them can never cost depth.
pub(crate) fn topo_nonparallel_fraction(chip: &Chip, a: DeviceId, b: DeviceId) -> f64 {
    let ga = device_gates(chip, a);
    let gb = device_gates(chip, b);
    let (ga, gb) = (ga.as_slice(), gb.as_slice());
    if ga.is_empty() || gb.is_empty() {
        return 1.0;
    }
    let mut conflicts = 0usize;
    for &x in ga {
        for &y in gb {
            if gates_conflict(chip, x, y) {
                conflicts += 1;
            }
        }
    }
    conflicts as f64 / (ga.len() * gb.len()) as f64
}

/// Representative qubits of a device (itself, or a coupler's
/// endpoints), inline — returns the qubit array and its filled length.
fn device_qubits(chip: &Chip, d: DeviceId) -> ([QubitId; 2], usize) {
    match d {
        DeviceId::Qubit(q) => ([q, q], 1),
        DeviceId::Coupler(c) => {
            let (a, b) = chip.coupler(c).expect("device id in range").endpoints();
            ([a, b], 2)
        }
    }
}

/// Worst-case crosstalk between the qubits of two devices.
pub(crate) fn noisy_score(chip: &Chip, xtalk: &DistanceMatrix, a: DeviceId, b: DeviceId) -> f64 {
    let (qa, na) = device_qubits(chip, a);
    let (qb, nb) = device_qubits(chip, b);
    let mut worst = 0.0f64;
    for &qa in &qa[..na] {
        for &qb in &qb[..nb] {
            if qa != qb {
                worst = worst.max(xtalk.get(qa, qb));
            }
        }
    }
    worst
}

/// Groups every Z-controlled device of `chip` onto shared TDM lines.
///
/// `xtalk` is the qubit-pair crosstalk matrix driving the noisy
/// non-parallelism heuristic.
///
/// # Panics
///
/// Panics if the matrix dimension mismatches the chip.
pub fn group_tdm(chip: &Chip, xtalk: &DistanceMatrix, config: &TdmConfig) -> Vec<TdmGroup> {
    let devices: Vec<DeviceId> = chip.device_ids().collect();
    group_tdm_subset(chip, xtalk, config, &devices)
}

/// Like [`group_tdm`], but restricted to a device subset (used per
/// partition region).
///
/// # Panics
///
/// Panics if the matrix dimension mismatches the chip.
pub fn group_tdm_subset(
    chip: &Chip,
    xtalk: &DistanceMatrix,
    config: &TdmConfig,
    devices: &[DeviceId],
) -> Vec<TdmGroup> {
    group_tdm_with_activity(chip, xtalk, config, devices, &ActivityProfile::new())
}

/// Like [`group_tdm_subset`], but additionally constrained by a workload
/// [`ActivityProfile`]: grouped devices may share at most
/// `config.max_shared_slots` busy time slots, so the grouping exploits
/// the workload's natural non-parallelism (e.g. the 4-step CZ schedule
/// of a surface-code cycle).
///
/// Builds a throwaway [`PairKernels`] and delegates to
/// [`group_tdm_kernels`]; callers planning the same chip repeatedly
/// (sweeps, the planner's per-region loop) should build the kernels once
/// and call [`group_tdm_kernels`] directly.
///
/// # Panics
///
/// Panics if the matrix dimension mismatches the chip.
pub fn group_tdm_with_activity(
    chip: &Chip,
    xtalk: &DistanceMatrix,
    config: &TdmConfig,
    devices: &[DeviceId],
    activity: &ActivityProfile,
) -> Vec<TdmGroup> {
    assert_eq!(
        xtalk.len(),
        chip.num_qubits(),
        "crosstalk matrix size mismatch"
    );
    let kernels = PairKernels::build(chip, xtalk);
    group_tdm_kernels(&kernels, config, devices, activity)
}

/// [`group_tdm_with_activity`] against precomputed [`PairKernels`]:
/// the grouping hot path. Produces byte-identical groupings to the
/// naive per-candidate recomputation (differential tests enforce it).
pub fn group_tdm_kernels(
    kernels: &PairKernels,
    config: &TdmConfig,
    devices: &[DeviceId],
    activity: &ActivityProfile,
) -> Vec<TdmGroup> {
    group_tdm_kernels_in(kernels, config, devices, activity, &mut Scratch::default())
}

/// [`group_tdm_kernels`] drawing its per-call working buffers (activity
/// masks, alive bitmap, per-candidate aggregates) from a scratch arena
/// so repeated plans reuse capacity instead of reallocating. Output is
/// identical to [`group_tdm_kernels`] — the arena only changes where
/// the buffers live.
pub fn group_tdm_kernels_in(
    kernels: &PairKernels,
    config: &TdmConfig,
    devices: &[DeviceId],
    activity: &ActivityProfile,
    scratch: &mut Scratch,
) -> Vec<TdmGroup> {
    let masks = kernels.densify_activity_in(activity, scratch);

    // Rank devices by parallelism index and split at θ.
    let mut indexed: Vec<(DeviceId, f64)> = devices
        .iter()
        .map(|&d| (d, kernels.parallelism(d)))
        .collect();
    indexed.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    let low: Vec<(DeviceId, f64)> = indexed
        .iter()
        .copied()
        .filter(|&(_, i)| i < config.theta)
        .collect();
    let high: Vec<(DeviceId, f64)> = indexed
        .iter()
        .copied()
        .filter(|&(_, i)| i >= config.theta)
        .collect();

    let low_level = if config.allow_one_to_eight {
        DemuxLevel::OneToEight
    } else {
        DemuxLevel::OneToFour
    };
    let mut groups = Vec::new();
    for (level, pool) in [(low_level, low), (DemuxLevel::OneToTwo, high)] {
        groups.extend(group_level_kernels(
            kernels, level, &pool, &masks, config, scratch,
        ));
    }
    scratch.retire_u32(masks);
    groups
}

/// Greedy graph-coloring of one parallelism level (§4.3 steps 1–3),
/// kernelized.
///
/// Replaces the naive per-candidate recomputation with:
///
/// * an **index pool** — an `alive` bitmap over the rank-sorted pool
///   instead of `Vec::remove` shifts, preserving the deterministic
///   scan (and therefore tie-break) order at O(1) removal;
/// * **incremental aggregates** — per-candidate running legality /
///   topo-min / noise-max / balance-max values, updated once per
///   accepted member instead of recomputed over all members per scan;
/// * an **occupied-slot mask** — adding a device to the group adds one
///   extra serialized window per busy slot that is already occupied,
///   so the activity cost of a candidate is `popcount(mask ∩ occupied)`
///   rather than a 32-slot counter walk (this also removes the `u8`
///   counters the naive path once overflowed on).
fn group_level_kernels(
    kernels: &PairKernels,
    level: DemuxLevel,
    pool: &[(DeviceId, f64)],
    masks: &[u32],
    config: &TdmConfig,
    scratch: &mut Scratch,
) -> Vec<TdmGroup> {
    let capacity = level.channel_capacity();
    let n = pool.len();
    let mut pmask = scratch.take_u32(n, 0);
    for (slot, &(d, _)) in pmask.iter_mut().zip(pool) {
        *slot = masks[kernels.dense(d)];
    }
    let mut alive = scratch.take_bool(n, true);
    // Per-candidate running aggregates for the group currently being
    // filled; re-seeded at each new group, updated per accepted member.
    let mut agg_legal = scratch.take_bool(n, false);
    let mut agg_topo = scratch.take_f64(n, 0.0);
    let mut agg_noise = scratch.take_f64(n, 0.0);
    let mut agg_balance = scratch.take_f64(n, 0.0);

    let mut groups = Vec::new();
    let mut first = 0usize;
    while first < n {
        if !alive[first] {
            first += 1;
            continue;
        }
        // Step 1: seed with the lowest parallelism index (first alive in
        // rank order).
        let s = first;
        alive[s] = false;
        first += 1;
        let (seed, seed_idx) = pool[s];
        let mut members = vec![seed];
        // Slots already occupied by a member; adding a device busy in an
        // occupied slot costs exactly one extra serialized window.
        let mut occupied = pmask[s];
        let mut cur_extra = 0u32;
        for i in first..n {
            if !alive[i] {
                continue;
            }
            let (cand, cand_idx) = pool[i];
            agg_legal[i] = kernels.legal(seed, cand);
            agg_topo[i] = kernels.topo(seed, cand);
            agg_noise[i] = kernels.noise(seed, cand);
            agg_balance[i] = (seed_idx - cand_idx).abs();
        }
        while members.len() < capacity {
            // Steps 2–3: among legal candidates sharing the fewest busy
            // slots, prefer fully topologically non-parallel ones, then
            // the noisiest, then the closest parallelism index
            // (balancing).
            let mut best: Option<(usize, (f64, f64, f64, f64))> = None;
            for i in first..n {
                if !alive[i] || !agg_legal[i] {
                    continue;
                }
                let shared = cur_extra + (pmask[i] & occupied).count_ones();
                if shared > config.max_shared_slots {
                    continue;
                }
                // Fewer shared slots, higher topo, higher noise, lower
                // imbalance is better.
                let key = (-(shared as f64), agg_topo[i], agg_noise[i], -agg_balance[i]);
                if best.is_none_or(|(_, bk)| key > bk) {
                    best = Some((i, key));
                }
            }
            match best {
                Some((i, _)) => {
                    alive[i] = false;
                    let (d, di) = pool[i];
                    cur_extra += (pmask[i] & occupied).count_ones();
                    occupied |= pmask[i];
                    members.push(d);
                    for j in first..n {
                        if !alive[j] || !agg_legal[j] {
                            continue;
                        }
                        let (cand, cand_idx) = pool[j];
                        agg_legal[j] = kernels.legal(d, cand);
                        agg_topo[j] = agg_topo[j].min(kernels.topo(d, cand));
                        agg_noise[j] = agg_noise[j].max(kernels.noise(d, cand));
                        agg_balance[j] = agg_balance[j].max((di - cand_idx).abs());
                    }
                }
                None => break,
            }
        }
        groups.push(TdmGroup::new(level, members));
    }
    scratch.retire_u32(pmask);
    scratch.retire_bool(alive);
    scratch.retire_bool(agg_legal);
    scratch.retire_f64(agg_topo);
    scratch.retire_f64(agg_noise);
    scratch.retire_f64(agg_balance);
    groups
}

/// The original per-candidate grouping implementation, retained as the
/// differential-testing reference and the bench harness's "before"
/// measurement. Semantically identical to [`group_tdm_kernels`]; the
/// kernelized path must produce byte-identical output.
#[cfg(any(test, feature = "naive"))]
pub mod naive {
    use super::*;

    /// [`group_tdm_with_activity`](super::group_tdm_with_activity)
    /// without kernels: every pairwise term is re-derived per candidate
    /// per iteration.
    ///
    /// # Panics
    ///
    /// Panics if the matrix dimension mismatches the chip.
    pub fn group_tdm_with_activity_naive(
        chip: &Chip,
        xtalk: &DistanceMatrix,
        config: &TdmConfig,
        devices: &[DeviceId],
        activity: &ActivityProfile,
    ) -> Vec<TdmGroup> {
        assert_eq!(
            xtalk.len(),
            chip.num_qubits(),
            "crosstalk matrix size mismatch"
        );
        let mut indexed: Vec<(DeviceId, f64)> = devices
            .iter()
            .map(|&d| (d, parallelism_index(chip, d)))
            .collect();
        indexed.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        let low: Vec<(DeviceId, f64)> = indexed
            .iter()
            .copied()
            .filter(|&(_, i)| i < config.theta)
            .collect();
        let high: Vec<(DeviceId, f64)> = indexed
            .iter()
            .copied()
            .filter(|&(_, i)| i >= config.theta)
            .collect();

        let low_level = if config.allow_one_to_eight {
            DemuxLevel::OneToEight
        } else {
            DemuxLevel::OneToFour
        };
        let mut groups = Vec::new();
        for (level, pool) in [(low_level, low), (DemuxLevel::OneToTwo, high)] {
            groups.extend(group_level(chip, xtalk, level, pool, activity, config));
        }
        groups
    }

    /// Greedy graph-coloring of one parallelism level (§4.3 steps 1–3),
    /// naive form. Activity costs go through the shared saturating-`u16`
    /// [`extra_windows_masked`](super::extra_windows_masked) accessor —
    /// the local `[u8; 32]` slot counters this loop once carried could
    /// overflow on oversized synthetic device sets (the bug class fixed
    /// in `extra_windows` earlier).
    fn group_level(
        chip: &Chip,
        xtalk: &DistanceMatrix,
        level: DemuxLevel,
        mut pool: Vec<(DeviceId, f64)>,
        activity: &ActivityProfile,
        config: &TdmConfig,
    ) -> Vec<TdmGroup> {
        let capacity = level.channel_capacity();
        let mask_of = |d: DeviceId| activity.get(&d).copied().unwrap_or(0);
        let mut groups = Vec::new();
        while !pool.is_empty() {
            // Step 1: seed with the lowest parallelism index.
            let (seed, seed_idx) = pool.remove(0);
            let mut members = vec![seed];
            let mut member_idx = vec![seed_idx];
            while members.len() < capacity {
                // Steps 2–3: among legal candidates sharing the fewest
                // busy slots, prefer fully topologically non-parallel
                // ones, then the noisiest, then the closest parallelism
                // index (balancing).
                let mut best: Option<(usize, (f64, f64, f64, f64))> = None;
                for (i, &(cand, cand_idx)) in pool.iter().enumerate() {
                    if !members.iter().all(|&m| legal_pair(chip, m, cand)) {
                        continue;
                    }
                    let shared = extra_windows_masked(
                        members.iter().copied().chain(std::iter::once(cand)),
                        mask_of,
                    );
                    if shared > config.max_shared_slots {
                        continue;
                    }
                    let topo = members
                        .iter()
                        .map(|&m| topo_nonparallel_fraction(chip, m, cand))
                        .fold(f64::INFINITY, f64::min);
                    let noise = members
                        .iter()
                        .map(|&m| noisy_score(chip, xtalk, m, cand))
                        .fold(0.0, f64::max);
                    let balance = member_idx
                        .iter()
                        .map(|&mi: &f64| (mi - cand_idx).abs())
                        .fold(0.0, f64::max);
                    // Fewer shared slots, higher topo, higher noise,
                    // lower imbalance is better.
                    let key = (-(shared as f64), topo, noise, -balance);
                    if best.is_none_or(|(_, bk)| key > bk) {
                        best = Some((i, key));
                    }
                }
                match best {
                    Some((i, _)) => {
                        let (d, di) = pool.remove(i);
                        members.push(d);
                        member_idx.push(di);
                    }
                    None => break,
                }
            }
            groups.push(TdmGroup::new(level, members));
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtiao_chip::topology;

    fn flat_xtalk(chip: &Chip) -> DistanceMatrix {
        let mut m = DistanceMatrix::zeros(chip.num_qubits());
        for a in chip.qubit_ids() {
            for b in chip.qubit_ids() {
                if a < b {
                    let d = chip.physical_distance(a, b);
                    m.set(a, b, 0.01 * (-d).exp());
                }
            }
        }
        m
    }

    #[test]
    fn parallelism_index_matches_paper_chain_example() {
        // Figure 8 (b): chain q1-c1-q2-c2-q3 with q3 branching to c3, c4.
        // Reconstruct: star-ish graph.
        let chip = youtiao_chip::ChipBuilder::new("fig8", youtiao_chip::TopologyKind::Custom)
            .qubit(youtiao_chip::Position::new(0.0, 0.0)) // q1
            .qubit(youtiao_chip::Position::new(1.0, 0.0)) // q2
            .qubit(youtiao_chip::Position::new(2.0, 0.0)) // q3
            .qubit(youtiao_chip::Position::new(3.0, 0.0)) // q4
            .qubit(youtiao_chip::Position::new(2.0, 1.0)) // q7
            .coupler(0u32.into(), 1u32.into()) // c1: q1-q2
            .coupler(1u32.into(), 2u32.into()) // c2: q2-q3
            .coupler(2u32.into(), 3u32.into()) // c3: q3-q4
            .coupler(2u32.into(), 4u32.into()) // c4: q3-q7
            .build()
            .unwrap();
        // c1's gate q1-q2 conflicts only with q2-q3 -> index 1.
        let c1 = chip.coupler_between(0u32.into(), 1u32.into()).unwrap();
        assert_eq!(parallelism_index(&chip, DeviceId::Coupler(c1)), 1.0);
        // q3 participates in gates c2 (3 adjacent: c1, c3, c4), c3 (2:
        // c2, c4) and c4 (2: c2, c3); connectivity 3 -> (3+2+2)/3.
        let idx = parallelism_index(&chip, DeviceId::Qubit(2u32.into()));
        assert!((idx - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_qubit_has_zero_index() {
        let chip = youtiao_chip::ChipBuilder::new("iso", youtiao_chip::TopologyKind::Custom)
            .qubit(youtiao_chip::Position::new(0.0, 0.0))
            .build()
            .unwrap();
        assert_eq!(parallelism_index(&chip, DeviceId::Qubit(0u32.into())), 0.0);
    }

    #[test]
    fn legality_rules() {
        let chip = topology::linear(3);
        let q0 = DeviceId::Qubit(0u32.into());
        let q1 = DeviceId::Qubit(1u32.into());
        let q2 = DeviceId::Qubit(2u32.into());
        let c0 = DeviceId::Coupler(chip.coupler_between(0u32.into(), 1u32.into()).unwrap());
        let c1 = DeviceId::Coupler(chip.coupler_between(1u32.into(), 2u32.into()).unwrap());
        assert!(!legal_pair(&chip, q0, q1), "adjacent qubits share a gate");
        assert!(legal_pair(&chip, q0, q2), "distant qubits are legal");
        assert!(!legal_pair(&chip, q0, c0), "qubit with its coupler");
        assert!(legal_pair(&chip, q2, c0), "qubit with a far coupler");
        assert!(legal_pair(&chip, c0, c1), "couplers never share a gate");
        assert!(!legal_pair(&chip, q0, q0), "a device with itself");
    }

    #[test]
    fn groups_cover_all_devices_exactly_once() {
        let chip = topology::square_grid(3, 3);
        let x = flat_xtalk(&chip);
        let groups = group_tdm(&chip, &x, &TdmConfig::default());
        let mut all: Vec<DeviceId> = groups.iter().flat_map(|g| g.devices().to_vec()).collect();
        all.sort_unstable();
        let mut expect: Vec<DeviceId> = chip.device_ids().collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }

    #[test]
    fn groups_are_legal() {
        let chip = topology::square_grid(3, 3);
        let x = flat_xtalk(&chip);
        for g in group_tdm(&chip, &x, &TdmConfig::default()) {
            let ds = g.devices();
            for i in 0..ds.len() {
                for j in (i + 1)..ds.len() {
                    assert!(legal_pair(&chip, ds[i], ds[j]), "illegal pair in group");
                }
            }
        }
    }

    #[test]
    fn grouping_reduces_line_count() {
        let chip = topology::heavy_square(3, 3);
        let x = flat_xtalk(&chip);
        let groups = group_tdm(&chip, &x, &TdmConfig::default());
        assert!(
            groups.len() * 2 <= chip.num_z_devices(),
            "expected ≥2× reduction"
        );
    }

    #[test]
    fn theta_extremes_select_demux_levels() {
        let chip = topology::square_grid(3, 3);
        let x = flat_xtalk(&chip);
        // θ = ∞: everything is "low parallelism" -> all 1:4 (or direct).
        let all_low = group_tdm(
            &chip,
            &x,
            &TdmConfig {
                theta: f64::INFINITY,
                ..Default::default()
            },
        );
        assert!(all_low
            .iter()
            .all(|g| matches!(g.level(), DemuxLevel::OneToFour | DemuxLevel::Direct)));
        // θ = 0: everything "high" -> 1:2 / direct.
        let all_high = group_tdm(
            &chip,
            &x,
            &TdmConfig {
                theta: 0.0,
                ..Default::default()
            },
        );
        assert!(all_high
            .iter()
            .all(|g| matches!(g.level(), DemuxLevel::OneToTwo | DemuxLevel::Direct)));
        assert!(all_high.len() >= all_low.len());
    }

    #[test]
    fn singleton_groups_become_direct_lines() {
        let g = TdmGroup::new(DemuxLevel::OneToFour, vec![DeviceId::Qubit(0u32.into())]);
        assert_eq!(g.level(), DemuxLevel::Direct);
        assert_eq!(g.level().select_lines(), 0);
    }

    #[test]
    fn demux_level_properties() {
        assert_eq!(DemuxLevel::OneToFour.channel_capacity(), 4);
        assert_eq!(DemuxLevel::OneToFour.select_lines(), 2);
        assert_eq!(DemuxLevel::OneToTwo.channel_capacity(), 2);
        assert_eq!(DemuxLevel::OneToTwo.select_lines(), 1);
        assert_eq!(DemuxLevel::Direct.channel_capacity(), 1);
    }

    #[test]
    fn deterministic() {
        let chip = topology::hexagon_patch(2, 2);
        let x = flat_xtalk(&chip);
        assert_eq!(
            group_tdm(&chip, &x, &TdmConfig::default()),
            group_tdm(&chip, &x, &TdmConfig::default())
        );
    }

    #[test]
    fn extra_windows_counts_shared_slots() {
        let d = |i: u32| DeviceId::Qubit(i.into());
        let mut profile = ActivityProfile::new();
        profile.insert(d(0), 0b011);
        profile.insert(d(1), 0b001);
        profile.insert(d(2), 0b100);
        // Slot 0 busy twice -> 1 extra window; slots 1, 2 busy once.
        assert_eq!(group_extra_windows(&[d(0), d(1), d(2)], &profile), 1);
        assert_eq!(group_extra_windows(&[], &profile), 0);
        // Unknown devices are never busy.
        assert_eq!(group_extra_windows(&[d(0), d(9)], &profile), 0);
    }

    #[test]
    fn extra_windows_survives_oversized_device_sets() {
        // >255 devices sharing one slot used to overflow the u8 slot
        // counters (panic in debug, silent wraparound in release). No
        // DEMUX holds that many devices, but the accessor takes an
        // arbitrary slice, so it must stay exact.
        let devices: Vec<DeviceId> = (0..300u32).map(|i| DeviceId::Qubit(i.into())).collect();
        let mut profile = ActivityProfile::new();
        for &d in &devices {
            profile.insert(d, 0b1);
        }
        assert_eq!(group_extra_windows(&devices, &profile), 299);
    }

    #[test]
    fn grouping_survives_oversized_synthetic_device_sets() {
        // Regression for the `[u8; 32]` slot counters `group_level`
        // carried: on a synthetic chip with >255 disconnected qubits all
        // busy in the same slot, a permissive budget admits many of them
        // into the candidate loop, where the old per-group `*count += 1`
        // bookkeeping belonged to the overflow bug class fixed in
        // `extra_windows_masked`. Both paths must group cleanly (and
        // identically) — the budget caps what one group may absorb.
        use youtiao_chip::{ChipBuilder, Position, TopologyKind};
        let mut b = ChipBuilder::new("oversized", TopologyKind::Custom);
        for i in 0..300 {
            b = b.qubit(Position::new(f64::from(i), 0.0));
        }
        let chip = b.build().unwrap();
        let x = DistanceMatrix::zeros(chip.num_qubits());
        let mut activity = ActivityProfile::new();
        for q in chip.qubit_ids() {
            activity.insert(DeviceId::Qubit(q), 0b1);
        }
        let devices: Vec<DeviceId> = chip.device_ids().collect();
        let config = TdmConfig {
            max_shared_slots: 1000,
            ..Default::default()
        };
        let fast = group_tdm_with_activity(&chip, &x, &config, &devices, &activity);
        let slow = naive::group_tdm_with_activity_naive(&chip, &x, &config, &devices, &activity);
        assert_eq!(fast, slow);
        let total: usize = fast.iter().map(TdmGroup::len).sum();
        assert_eq!(total, 300);
        for g in &fast {
            assert!(group_extra_windows(g.devices(), &activity) <= config.max_shared_slots);
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn oversized_group_panics() {
        let _ = TdmGroup::new(
            DemuxLevel::OneToTwo,
            vec![
                DeviceId::Qubit(0u32.into()),
                DeviceId::Qubit(1u32.into()),
                DeviceId::Qubit(2u32.into()),
            ],
        );
    }

    mod differential {
        use super::*;
        use rand::{Rng, SeedableRng};
        use rand_chacha::ChaCha8Rng;

        /// A deterministic pseudo-random chip drawn from the topology
        /// generators the planner actually sees.
        pub(crate) fn random_chip(rng: &mut ChaCha8Rng) -> Chip {
            match rng.gen_range(0u32..6) {
                0 => topology::square_grid(rng.gen_range(2usize..5), rng.gen_range(2usize..5)),
                1 => topology::heavy_square(rng.gen_range(2usize..4), rng.gen_range(2usize..4)),
                2 => topology::hexagon_patch(rng.gen_range(1usize..3), rng.gen_range(1usize..3)),
                3 => topology::linear(rng.gen_range(2usize..12)),
                4 => topology::ring(rng.gen_range(3usize..12)),
                _ => topology::low_density(rng.gen_range(2usize..4), rng.gen_range(2usize..5)),
            }
        }

        /// A random activity profile over a random subset of devices.
        pub(crate) fn random_activity(rng: &mut ChaCha8Rng, chip: &Chip) -> ActivityProfile {
            let mut profile = ActivityProfile::new();
            for d in chip.device_ids() {
                if rng.gen_range(0u32..4) == 0 {
                    continue; // leave some devices unconstrained
                }
                let bits = rng.gen_range(0u32..4);
                let mut mask = 0u32;
                for _ in 0..bits {
                    mask |= 1 << rng.gen_range(0u32..8);
                }
                profile.insert(d, mask);
            }
            profile
        }

        pub(crate) fn random_config(rng: &mut ChaCha8Rng) -> TdmConfig {
            let theta = match rng.gen_range(0u32..5) {
                0 => 0.0,
                1 => 2.0,
                2 => 4.0,
                3 => 6.0,
                _ => f64::INFINITY,
            };
            TdmConfig {
                theta,
                max_shared_slots: [0u32, 1, 2, 5][rng.gen_range(0usize..4)],
                allow_one_to_eight: rng.gen_range(0u32..4) == 0,
            }
        }

        /// The acceptance criterion's differential gate: the kernelized
        /// grouping is byte-identical to the naive reference across
        /// random chips, θ values, activity profiles and budgets.
        #[test]
        fn kernelized_grouping_matches_naive() {
            let mut rng = ChaCha8Rng::seed_from_u64(0x7d7_1a0);
            for case in 0..60 {
                let chip = random_chip(&mut rng);
                let xtalk = flat_xtalk(&chip);
                let config = random_config(&mut rng);
                let activity = random_activity(&mut rng, &chip);
                let devices: Vec<DeviceId> = chip.device_ids().collect();
                let fast = group_tdm_with_activity(&chip, &xtalk, &config, &devices, &activity);
                let slow = naive::group_tdm_with_activity_naive(
                    &chip, &xtalk, &config, &devices, &activity,
                );
                assert_eq!(
                    fast,
                    slow,
                    "case {case}: chip {} config {config:?}",
                    chip.name()
                );
            }
        }

        /// Subsets (the per-region path) and the empty activity profile
        /// agree too.
        #[test]
        fn kernelized_subset_grouping_matches_naive() {
            let mut rng = ChaCha8Rng::seed_from_u64(0xca11);
            for _ in 0..30 {
                let chip = random_chip(&mut rng);
                let xtalk = flat_xtalk(&chip);
                let config = random_config(&mut rng);
                let devices: Vec<DeviceId> = chip
                    .device_ids()
                    .filter(|_| rng.gen_range(0u32..3) != 0)
                    .collect();
                let empty = ActivityProfile::new();
                let fast = group_tdm_with_activity(&chip, &xtalk, &config, &devices, &empty);
                let slow =
                    naive::group_tdm_with_activity_naive(&chip, &xtalk, &config, &devices, &empty);
                assert_eq!(fast, slow);
            }
        }
    }
}
