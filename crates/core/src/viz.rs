//! Plain-text visualization of chips and wiring plans.
//!
//! Renders the die as a character raster: qubits appear as the label of
//! the FDM line / TDM group they belong to, so grouping locality is
//! visible at a glance in a terminal (or a bug report).

use youtiao_chip::{Chip, DeviceId};

use crate::plan::WiringPlan;

/// How many character cells per millimetre of die (x-axis; y uses half).
const CELLS_PER_MM_X: f64 = 4.0;
const CELLS_PER_MM_Y: f64 = 2.0;

/// Renders the chip layout: `o` for qubits, `.` for couplers.
///
/// # Example
///
/// ```
/// use youtiao_chip::topology;
/// use youtiao_core::viz::render_chip;
///
/// let art = render_chip(&topology::square_grid(2, 2));
/// assert_eq!(art.matches('o').count(), 4);
/// assert_eq!(art.matches('.').count(), 4);
/// ```
pub fn render_chip(chip: &Chip) -> String {
    render(chip, |d| match d {
        DeviceId::Qubit(_) => Some('o'),
        DeviceId::Coupler(_) => Some('.'),
    })
}

/// Renders FDM grouping: each qubit shows its line's label
/// (`A`, `B`, …, wrapping after 26); couplers are `.`.
pub fn render_fdm(chip: &Chip, plan: &WiringPlan) -> String {
    render(chip, |d| match d {
        DeviceId::Qubit(q) => {
            let line = plan.fdm_line_of(q)?;
            Some(label(line))
        }
        DeviceId::Coupler(_) => Some('.'),
    })
}

/// Renders TDM grouping: every device (qubit or coupler) shows its
/// Z-line group label; dedicated-line devices show `-`.
pub fn render_tdm(chip: &Chip, plan: &WiringPlan) -> String {
    render(chip, |d| {
        let group = plan
            .tdm_groups()
            .iter()
            .position(|g| g.devices().contains(&d));
        Some(group.map_or('-', label))
    })
}

/// Renders the generative partition: each qubit shows its region's
/// label; couplers are `.`. Chips planned without a partition render
/// all qubits as region `A`.
pub fn render_partition(chip: &Chip, plan: &WiringPlan) -> String {
    render(chip, |d| match d {
        DeviceId::Qubit(q) => {
            let region = plan.partition().map_or(0, |p| p.region_of(q));
            Some(label(region))
        }
        DeviceId::Coupler(_) => Some('.'),
    })
}

fn label(index: usize) -> char {
    (b'A' + (index % 26) as u8) as char
}

fn render<F>(chip: &Chip, glyph: F) -> String
where
    F: Fn(DeviceId) -> Option<char>,
{
    let bb = chip.bounding_box();
    let cols = ((bb.width() * CELLS_PER_MM_X).round() as usize) + 1;
    let rows = ((bb.height() * CELLS_PER_MM_Y).round() as usize) + 1;
    let mut grid = vec![vec![' '; cols]; rows];
    for d in chip.device_ids() {
        let p = chip.device_position(d);
        let x = (((p.x - bb.min.x) * CELLS_PER_MM_X).round() as usize).min(cols - 1);
        // Flip y so larger y renders higher up, as on a schematic.
        let y = (((bb.max.y - p.y) * CELLS_PER_MM_Y).round() as usize).min(rows - 1);
        if let Some(ch) = glyph(d) {
            grid[y][x] = ch;
        }
    }
    let mut out = String::with_capacity(rows * (cols + 1));
    for row in grid {
        let line: String = row.into_iter().collect();
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::YoutiaoPlanner;
    use youtiao_chip::topology;

    #[test]
    fn chip_render_marks_all_devices() {
        let chip = topology::square_grid(3, 3);
        let art = render_chip(&chip);
        assert_eq!(art.matches('o').count(), 9);
        assert_eq!(art.matches('.').count(), 12);
    }

    #[test]
    fn fdm_render_uses_line_labels() {
        let chip = topology::square_grid(3, 3);
        let plan = YoutiaoPlanner::new(&chip).plan().unwrap();
        let art = render_fdm(&chip, &plan);
        // 2 lines -> labels A and B cover all 9 qubits.
        let a = art.matches('A').count();
        let b = art.matches('B').count();
        assert_eq!(a + b, 9);
        assert!(a > 0 && b > 0);
    }

    #[test]
    fn tdm_render_covers_every_device() {
        let chip = topology::square_grid(3, 3);
        let plan = YoutiaoPlanner::new(&chip).plan().unwrap();
        let art = render_tdm(&chip, &plan);
        let labelled = art
            .chars()
            .filter(|c| c.is_ascii_uppercase() || *c == '-')
            .count();
        assert_eq!(labelled, chip.num_z_devices());
    }

    #[test]
    fn partition_render_shows_regions() {
        use crate::partition::PartitionConfig;
        use crate::PlannerConfig;
        let chip = topology::square_grid(6, 6);
        let plan = YoutiaoPlanner::new(&chip)
            .with_config(PlannerConfig {
                partition: Some(PartitionConfig::default()),
                ..Default::default()
            })
            .plan()
            .unwrap();
        let art = render_partition(&chip, &plan);
        // Four regions -> labels A..D cover all 36 qubits.
        let covered: usize = ['A', 'B', 'C', 'D']
            .iter()
            .map(|&c| art.matches(c).count())
            .sum();
        assert_eq!(covered, 36);
    }

    #[test]
    fn unpartitioned_chip_renders_one_region() {
        let chip = topology::square_grid(2, 2);
        let plan = YoutiaoPlanner::new(&chip).plan().unwrap();
        let art = render_partition(&chip, &plan);
        assert_eq!(art.matches('A').count(), 4);
    }

    #[test]
    fn labels_wrap_after_z() {
        assert_eq!(label(0), 'A');
        assert_eq!(label(25), 'Z');
        assert_eq!(label(26), 'A');
    }
}
