//! Property-based tests over the grouping, allocation and partitioning
//! invariants of the YOUTIAO core.

use proptest::prelude::*;
use youtiao_chip::distance::{equivalent_matrix, EquivalentWeights};
use youtiao_chip::topology;
use youtiao_chip::{DeviceId, QubitId};
use youtiao_core::fdm::group_fdm;
use youtiao_core::freq::{allocate_frequencies, FreqConfig};
use youtiao_core::partition::{partition_chip, PartitionConfig};
use youtiao_core::plan::crosstalk_matrix;
use youtiao_core::refine::{naive::refine_tdm_groups_naive, refine_tdm_groups, RefineConfig};
use youtiao_core::tdm::{
    group_tdm, group_tdm_with_activity, legal_pair, naive::group_tdm_with_activity_naive,
    ActivityProfile, TdmConfig,
};
use youtiao_core::YoutiaoPlanner;
use youtiao_core::{BandLattice, FreqKernels, ScalingTable};
use youtiao_noise::model::frequency_scaling;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FDM grouping partitions the qubit set for any capacity, with
    /// exactly ceil(n / capacity) lines.
    #[test]
    fn fdm_grouping_partitions(rows in 2usize..6, cols in 2usize..6, cap in 1usize..8) {
        let chip = topology::square_grid(rows, cols);
        let eq = equivalent_matrix(&chip, EquivalentWeights::balanced());
        let lines = group_fdm(&chip, &eq, cap);
        let n = chip.num_qubits();
        prop_assert_eq!(lines.len(), n.div_ceil(cap));
        let mut seen: Vec<QubitId> = lines.iter().flat_map(|l| l.qubits().to_vec()).collect();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), n);
        prop_assert!(lines.iter().all(|l| l.len() <= cap));
    }

    /// TDM grouping covers every device exactly once with only legal
    /// pairs, for any threshold.
    #[test]
    fn tdm_grouping_is_legal_partition(rows in 2usize..5, cols in 2usize..5, theta in 0.0f64..10.0) {
        let chip = topology::square_grid(rows, cols);
        let eq = equivalent_matrix(&chip, EquivalentWeights::balanced());
        let xtalk = crosstalk_matrix(&chip, &eq, None);
        let groups = group_tdm(&chip, &xtalk, &TdmConfig { theta, ..Default::default() });
        let total: usize = groups.iter().map(|g| g.len()).sum();
        prop_assert_eq!(total, chip.num_z_devices());
        for g in &groups {
            let ds = g.devices();
            prop_assert!(ds.len() <= g.level().channel_capacity());
            for i in 0..ds.len() {
                for j in (i + 1)..ds.len() {
                    prop_assert!(legal_pair(&chip, ds[i], ds[j]));
                }
            }
        }
    }

    /// Frequency allocation keeps every qubit inside the configured band
    /// and never collides within a line, for any zone geometry that fits.
    #[test]
    fn frequency_allocation_in_band(rows in 2usize..5, cols in 2usize..5, cap in 2usize..6) {
        let chip = topology::square_grid(rows, cols);
        let eq = equivalent_matrix(&chip, EquivalentWeights::balanced());
        let xtalk = crosstalk_matrix(&chip, &eq, None);
        let lines = group_fdm(&chip, &eq, cap);
        let cfg = FreqConfig::default();
        let plan = allocate_frequencies(&chip, &lines, &xtalk, &cfg).unwrap();
        for q in chip.qubit_ids() {
            let f = plan.frequency_ghz(q);
            prop_assert!(f >= cfg.band_ghz.0 && f <= cfg.band_ghz.1);
        }
        for line in &lines {
            let qs = line.qubits();
            for i in 0..qs.len() {
                for j in (i + 1)..qs.len() {
                    prop_assert!(
                        (plan.frequency_ghz(qs[i]) - plan.frequency_ghz(qs[j])).abs() > 1e-9
                    );
                }
            }
        }
    }

    /// Partitioning covers every qubit exactly once for any region count
    /// and seed.
    #[test]
    fn partition_covers(rows in 2usize..6, cols in 2usize..6, k in 1usize..6, seed in 0u64..1000) {
        let chip = topology::square_grid(rows, cols);
        let eq = equivalent_matrix(&chip, EquivalentWeights::balanced());
        let cfg = PartitionConfig { num_regions: k, seed, max_sweeps: 8 };
        let p = partition_chip(&chip, &eq, &cfg);
        let total: usize = p.regions().iter().map(Vec::len).sum();
        prop_assert_eq!(total, chip.num_qubits());
        for q in chip.qubit_ids() {
            prop_assert!(p.regions()[p.region_of(q)].contains(&q));
        }
    }

    /// The kernelized TDM grouping is byte-identical to the retained
    /// naive reference for any grid, threshold, activity profile and
    /// shared-slot budget.
    #[test]
    fn kernelized_grouping_equals_naive(
        rows in 2usize..5,
        cols in 2usize..5,
        theta in 0.0f64..10.0,
        budget in 0u32..6,
        slots in proptest::collection::vec(0u32..256, 0..64),
    ) {
        let chip = topology::square_grid(rows, cols);
        let eq = equivalent_matrix(&chip, EquivalentWeights::balanced());
        let xtalk = crosstalk_matrix(&chip, &eq, None);
        let config = TdmConfig { theta, max_shared_slots: budget, ..Default::default() };
        let mut activity = ActivityProfile::new();
        for (d, mask) in chip.device_ids().zip(slots.iter().copied()) {
            activity.insert(d, mask);
        }
        let devices: Vec<DeviceId> = chip.device_ids().collect();
        let fast = group_tdm_with_activity(&chip, &xtalk, &config, &devices, &activity);
        let slow = group_tdm_with_activity_naive(&chip, &xtalk, &config, &devices, &activity);
        prop_assert_eq!(fast, slow);
    }

    /// The kernelized refinement is byte-identical to the retained
    /// naive reference for any grid, budget, activity profile and pass
    /// count, starting from the (shared) greedy grouping.
    #[test]
    fn kernelized_refine_equals_naive(
        rows in 2usize..5,
        cols in 2usize..5,
        budget in 0u32..6,
        passes in 0usize..4,
        slots in proptest::collection::vec(0u32..256, 0..64),
    ) {
        let chip = topology::square_grid(rows, cols);
        let eq = equivalent_matrix(&chip, EquivalentWeights::balanced());
        let xtalk = crosstalk_matrix(&chip, &eq, None);
        let config = TdmConfig { max_shared_slots: budget, ..Default::default() };
        let mut activity = ActivityProfile::new();
        for (d, mask) in chip.device_ids().zip(slots.iter().copied()) {
            activity.insert(d, mask);
        }
        let devices: Vec<DeviceId> = chip.device_ids().collect();
        let groups = group_tdm_with_activity(&chip, &xtalk, &config, &devices, &activity);
        let refine = RefineConfig { passes };
        let fast = refine_tdm_groups(&chip, &xtalk, &activity, &config, groups.clone(), &refine);
        let slow = refine_tdm_groups_naive(&chip, &xtalk, &activity, &config, groups, &refine);
        prop_assert_eq!(fast, slow);
    }

    /// The full planner succeeds on any grid and always reduces coax
    /// lines relative to dedicated wiring.
    #[test]
    fn planner_always_reduces_lines(rows in 2usize..6, cols in 2usize..6) {
        let chip = topology::square_grid(rows, cols);
        let plan = YoutiaoPlanner::new(&chip).plan().unwrap();
        prop_assert_eq!(plan.num_xy_lines(), chip.num_qubits().div_ceil(5));
        prop_assert!(plan.num_z_lines() < chip.num_z_devices());
        let fdm_total: usize = plan.fdm_lines().iter().map(|l| l.len()).sum();
        prop_assert_eq!(fdm_total, chip.num_qubits());
        let tdm_total: usize = plan.tdm_groups().iter().map(|g| g.len()).sum();
        prop_assert_eq!(tdm_total, chip.num_z_devices());
    }

    /// The lazily-tabulated scaling lookup is bit-equal to a direct
    /// `frequency_scaling` evaluation at every lattice offset, in both
    /// orientations (evenness carries the transposed reads).
    #[test]
    fn scaling_table_matches_model_at_every_offset(
        lo in 4.0f64..8.0,
        width in 0.5f64..3.0,
        zones in 1usize..6,
        cell_mhz in 20.0f64..90.0,
    ) {
        let cfg = FreqConfig {
            band_ghz: (lo, lo + width),
            cell_mhz,
            ..Default::default()
        };
        let lattice = BandLattice::new(&cfg, zones).unwrap();
        let mut table = ScalingTable::new(&lattice);
        for s in 0..lattice.slots() {
            table.ensure_row(s);
        }
        for s in 0..lattice.slots() {
            for t in 0..lattice.slots() {
                let expected = frequency_scaling(table.freq(s) - table.freq(t));
                prop_assert_eq!(table.row(s)[t].to_bits(), expected.to_bits());
                prop_assert_eq!(table.row(t)[s].to_bits(), expected.to_bits());
            }
        }
    }

    /// The kernelized swap delta is the exact objective change: for any
    /// placement and any in-line pair, swapping the two assignments
    /// moves a from-scratch objective recompute by precisely the
    /// reported delta.
    #[test]
    fn swap_delta_matches_full_objective_recompute(
        rows in 2usize..5,
        cols in 2usize..5,
        cap in 2usize..6,
        pick in any::<prop::sample::Index>(),
    ) {
        let chip = topology::square_grid(rows, cols);
        let eq = equivalent_matrix(&chip, EquivalentWeights::balanced());
        let xtalk = crosstalk_matrix(&chip, &eq, None);
        let lines = group_fdm(&chip, &eq, cap);
        let cfg = FreqConfig { swap_passes: 0, ..Default::default() };
        let plan = allocate_frequencies(&chip, &lines, &xtalk, &cfg).unwrap();

        let mut pairs = Vec::new();
        for line in &lines {
            let qs = line.qubits();
            for i in 0..qs.len() {
                for j in (i + 1)..qs.len() {
                    pairs.push((qs[i], qs[j]));
                }
            }
        }
        prop_assume!(!pairs.is_empty());
        let (a, b) = pairs[pick.index(pairs.len())];

        // Recover every qubit's lattice slot from its assigned
        // frequency, exactly as the repair patcher does.
        let lattice = BandLattice::new(&cfg, plan.zones()).unwrap();
        let mut table = ScalingTable::new(&lattice);
        let n = chip.num_qubits();
        let slot_of: Vec<usize> = (0..n)
            .map(|i| {
                let q = QubitId::new(i as u32);
                let zone = plan.zone_of(q);
                lattice.slot(zone, lattice.cell_of(zone, plan.frequency_ghz(q)))
            })
            .collect();
        for &s in &slot_of {
            table.ensure_row(s);
        }
        let kernels = FreqKernels::build(&xtalk);
        let delta = table.swap_delta(&kernels, &slot_of, a, b);

        // A from-scratch objective over an arbitrary assignment,
        // pinned to FrequencyPlan::objective on the unswapped freqs.
        let full = |freqs: &[f64]| {
            let mut total = 0.0;
            for (p, q, x) in xtalk.iter_pairs() {
                if x > 0.0 {
                    total += x * frequency_scaling(freqs[p.index()] - freqs[q.index()]);
                }
            }
            total
        };
        let before = full(plan.frequencies());
        prop_assert_eq!(before.to_bits(), plan.objective(&xtalk).to_bits());
        let mut swapped = plan.frequencies().to_vec();
        swapped.swap(a.index(), b.index());
        let after = full(&swapped);

        let scale = before.abs().max(after.abs()).max(1.0);
        prop_assert!(
            (delta - (after - before)).abs() <= 1e-9 * scale,
            "delta {} vs recompute {}",
            delta,
            after - before
        );
    }
}
