//! Calibrated cost and capacity constants.
//!
//! Derived by solving the paper's own Tables 1–2 (every cost cell is
//! reproduced within rounding by these values — see DESIGN.md §4 and the
//! `table1`/`table2` binaries).

/// Cost of one cryostat coaxial line, in thousands of USD.
pub const COAX_COST_KUSD: f64 = 1.6;

/// Cost of one RF DAC channel, in thousands of USD.
pub const RF_DAC_COST_KUSD: f64 = 5.0;

/// Cost of one twisted-pair + digital-IO channel (DEMUX select), in
/// thousands of USD.
pub const TWISTED_PAIR_COST_KUSD: f64 = 0.125;

/// Qubits per multiplexed readout feedline at the chip (George et al.
/// demonstrate 8).
pub const READOUT_FEEDLINE_CAPACITY: usize = 8;

/// Qubits per readout DAC channel.
pub const READOUT_DAC_CAPACITY: usize = 4;

/// FDM XY line capacity used throughout the paper's evaluation.
pub const FDM_CAPACITY: usize = 5;

/// Maximum coaxial lines in a Bluefors KIDE cryostat (§1).
pub const KIDE_MAX_COAX: usize = 4000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_reproduce_google_heavy_square_cost() {
        // Table 2, heavy square: 21q, 24 couplers ->
        // coax = 21 + 45 + ceil(21/8) = 69; dacs = 21 + 45 + ceil(21/4) = 72.
        let coax = 21 + 45 + 3;
        let dacs = 21 + 45 + 6;
        let cost = coax as f64 * COAX_COST_KUSD + dacs as f64 * RF_DAC_COST_KUSD;
        assert!((cost - 470.4).abs() < 1.0, "got {cost}, paper says $470K");
    }

    #[test]
    fn constants_reproduce_youtiao_heavy_square_cost() {
        // Table 2, heavy square YOUTIAO: XY 5, Z 12, feedlines 3,
        // readout DACs 6, select 24.
        let coax = 5 + 12 + 3;
        let rf_dacs = 5 + 12 + 6;
        let cost = coax as f64 * COAX_COST_KUSD
            + rf_dacs as f64 * RF_DAC_COST_KUSD
            + 24.0 * TWISTED_PAIR_COST_KUSD;
        assert!((cost - 151.0).abs() < 2.0, "got {cost}, paper says $151K");
    }

    #[test]
    fn constants_reproduce_table1_d3_costs() {
        // Table 1, d=3 Google: XY 17, Z 41 -> coax 61, dacs 63 -> $413K.
        let g = 61.0 * COAX_COST_KUSD + 63.0 * RF_DAC_COST_KUSD;
        assert!((g - 413.0).abs() < 1.0, "google {g}");
        // YOUTIAO d=3: XY 4, Z 16 -> coax 23, rf dacs 25, ~16 selects.
        let y = 23.0 * COAX_COST_KUSD + 25.0 * RF_DAC_COST_KUSD + 16.0 * TWISTED_PAIR_COST_KUSD;
        assert!((y - 164.0).abs() < 3.0, "youtiao {y}");
    }
}
