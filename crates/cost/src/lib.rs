//! Wiring resource counting and cost modelling for YOUTIAO.
//!
//! The paper's Tables 1–2 report, per wiring scheme: `#XY line`,
//! `#Z line`, `DEMUX control`, `#DAC`, `wiring cost`, `#interface`. Those
//! tables are linearly consistent with a simple resource model (see
//! DESIGN.md §4), reverse-engineered here as [`constants`]:
//!
//! * a coaxial cryostat line costs **$1.6K**;
//! * an RF DAC channel costs **$5K**;
//! * a twisted-pair + digital-IO channel for DEMUX select costs **$125**;
//! * readout is multiplexed 8× at the chip feedline and 4× at the DAC.
//!
//! [`tally::WiringTally`] counts all of these for the Google baseline and
//! for a YOUTIAO [`WiringPlan`](youtiao_core::WiringPlan); [`scale`]
//! extrapolates to the 10–100 000-qubit systems of Figure 17, including
//! the IBM-chiplet comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constants;
pub mod scale;
pub mod tally;

pub use crate::constants::*;
pub use crate::scale::{ibm_chiplet, square_system, ScalingModel};
pub use crate::tally::WiringTally;
