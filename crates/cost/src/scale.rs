//! Large-scale wiring estimation (Figure 17).
//!
//! Figure 17 extrapolates cable counts from 10 to 100 000 qubits on a
//! square topology, and compares against IBM's chiplet scale-out (25 ×
//! 133-qubit chips). Running the full planner at 10⁵ qubits is
//! unnecessary: YOUTIAO's per-line occupancies converge quickly with
//! chip size, so [`ScalingModel::calibrate`] measures them on moderate
//! grids and extrapolates linearly in the device counts.

use youtiao_chip::{topology, Chip};
use youtiao_core::{PlannerConfig, YoutiaoPlanner};

use crate::constants::{FDM_CAPACITY, READOUT_DAC_CAPACITY};
use crate::tally::WiringTally;

/// A square-topology quantum system of approximately `n` qubits.
///
/// Returns the concrete `(rows, cols)` grid closest to `n` and its
/// qubit/coupler counts without materializing huge chips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SquareSystem {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
}

impl SquareSystem {
    /// Number of qubits.
    pub fn qubits(&self) -> usize {
        self.rows * self.cols
    }

    /// Number of nearest-neighbour couplers.
    pub fn couplers(&self) -> usize {
        2 * self.rows * self.cols - self.rows - self.cols
    }

    /// Google-baseline coax count with readout coax multiplexed at
    /// `readout_capacity` qubits per line (Figure 17 counts readout coax
    /// at the DAC capacity of 4; Tables 1–2 use the feedline capacity 8).
    pub fn google_coax(&self, readout_capacity: usize) -> usize {
        let q = self.qubits();
        q + (q + self.couplers()) + q.div_ceil(readout_capacity)
    }
}

/// The square system holding at least `n` qubits with the most even
/// aspect ratio.
pub fn square_system(n: usize) -> SquareSystem {
    assert!(n > 0, "system needs at least one qubit");
    let rows = (n as f64).sqrt().floor() as usize;
    let rows = rows.max(1);
    let cols = n.div_ceil(rows);
    SquareSystem { rows, cols }
}

/// Per-line occupancies of YOUTIAO plans, measured on real planner runs
/// and reused for extrapolation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingModel {
    /// Average Z devices per TDM line.
    pub z_devices_per_line: f64,
    /// Average DEMUX select lines per TDM line.
    pub select_per_line: f64,
}

impl ScalingModel {
    /// Calibrates occupancies by running the full planner on `k × k`
    /// grids for each `k` in `grid_sizes`.
    ///
    /// Uses the wiring-minimizing DEMUX threshold (θ = 8, favouring 1:4
    /// multiplexers): on large uniform grids every device's parallelism
    /// index exceeds the default θ = 4, and the scaling study's goal is
    /// minimum cable count (Figure 16 shows θ is the tuning knob).
    ///
    /// # Panics
    ///
    /// Panics if `grid_sizes` is empty or a plan fails.
    pub fn calibrate(grid_sizes: &[usize]) -> Self {
        assert!(!grid_sizes.is_empty(), "need at least one calibration size");
        let mut devices_ratio = 0.0;
        let mut select_ratio = 0.0;
        for &k in grid_sizes {
            let chip = topology::square_grid(k, k);
            let mut config = PlannerConfig::default();
            config.tdm.theta = 8.0;
            let plan = YoutiaoPlanner::new(&chip)
                .with_config(config)
                .plan()
                .expect("planner succeeds on square grids");
            let lines = plan.num_z_lines() as f64;
            devices_ratio += chip.num_z_devices() as f64 / lines;
            select_ratio += plan.demux_select_lines() as f64 / lines;
        }
        ScalingModel {
            z_devices_per_line: devices_ratio / grid_sizes.len() as f64,
            select_per_line: select_ratio / grid_sizes.len() as f64,
        }
    }

    /// Estimated YOUTIAO tally for a square system of ~`n` qubits.
    pub fn youtiao_tally(&self, n: usize) -> WiringTally {
        let sys = square_system(n);
        let q = sys.qubits();
        let z_devices = q + sys.couplers();
        let z_lines = ((z_devices as f64 / self.z_devices_per_line).ceil() as usize).max(1);
        WiringTally {
            xy_lines: q.div_ceil(FDM_CAPACITY),
            z_lines,
            readout_feedlines: q.div_ceil(READOUT_DAC_CAPACITY),
            readout_dacs: q.div_ceil(READOUT_DAC_CAPACITY),
            demux_select_lines: (z_lines as f64 * self.select_per_line).round() as usize,
        }
    }

    /// Estimated Google tally for a square system of ~`n` qubits,
    /// counting readout coax at the Figure-17 convention (4 per line).
    pub fn google_tally(&self, n: usize) -> WiringTally {
        let sys = square_system(n);
        let q = sys.qubits();
        WiringTally {
            xy_lines: q,
            z_lines: q + sys.couplers(),
            readout_feedlines: q.div_ceil(READOUT_DAC_CAPACITY),
            readout_dacs: q.div_ceil(READOUT_DAC_CAPACITY),
            demux_select_lines: 0,
        }
    }
}

/// IBM chiplet scale-out model: `copies` interconnected 133-qubit
/// heavy-hexagon chips, each wired Google-style (dedicated lines,
/// readout multiplexed 4×) — the paper's Figure 17 (c) comparator.
///
/// Returns `(total_qubits, total_coax)`.
pub fn ibm_chiplet(copies: usize) -> (usize, usize) {
    // A 4×5-cell heavy-hexagon patch has 135 qubits — the closest match
    // to IBM's 133-qubit Heron-class chips our generator produces.
    let chip = ibm_chiplet_chip();
    let q = chip.num_qubits();
    let coax = q + chip.num_z_devices() + q.div_ceil(READOUT_DAC_CAPACITY);
    (q * copies, coax * copies)
}

/// The single-chip layout used by [`ibm_chiplet`].
pub fn ibm_chiplet_chip() -> Chip {
    topology::heavy_hexagon(4, 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_system_shapes() {
        let s = square_system(150);
        assert_eq!((s.rows, s.cols), (12, 13));
        assert_eq!(s.qubits(), 156);
        assert_eq!(s.couplers(), 2 * 156 - 25);
        let s9 = square_system(9);
        assert_eq!((s9.rows, s9.cols), (3, 3));
        assert_eq!(s9.couplers(), 12);
    }

    #[test]
    fn google_coax_near_paper_613_at_150_qubits() {
        // Figure 17 (b): 613 coax for a 150-qubit square system.
        // Exact decomposition at 10×15: 150 + 425 + 38 = 613.
        let s = SquareSystem { rows: 10, cols: 15 };
        assert_eq!(s.google_coax(READOUT_DAC_CAPACITY), 613);
    }

    #[test]
    fn calibration_gives_sensible_occupancies() {
        let m = ScalingModel::calibrate(&[6]);
        assert!(m.z_devices_per_line > 1.5, "{:?}", m);
        assert!(m.z_devices_per_line <= 4.0, "{:?}", m);
        assert!(m.select_per_line <= 2.0);
    }

    #[test]
    fn youtiao_beats_google_at_scale() {
        let m = ScalingModel::calibrate(&[6]);
        for n in [100usize, 1000, 10_000] {
            let y = m.youtiao_tally(n).coax_lines();
            let g = m.google_tally(n).coax_lines();
            let ratio = g as f64 / y as f64;
            assert!(ratio > 2.0, "at n={n}: ratio {ratio}");
        }
    }

    #[test]
    fn ibm_chiplet_counts() {
        let (q, coax) = ibm_chiplet(25);
        assert_eq!(q % 25, 0);
        let per_chip_q = q / 25;
        assert!(
            (120..=145).contains(&per_chip_q),
            "per-chip qubits {per_chip_q}"
        );
        assert!(coax > q * 2, "chiplet wiring is dedicated per device");
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn zero_system_panics() {
        let _ = square_system(0);
    }
}
