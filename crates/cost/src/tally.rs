//! The wiring resource tally behind every cost row of Tables 1–2.

use youtiao_chip::Chip;
use youtiao_core::WiringPlan;

use crate::constants::{
    COAX_COST_KUSD, READOUT_DAC_CAPACITY, READOUT_FEEDLINE_CAPACITY, RF_DAC_COST_KUSD,
    TWISTED_PAIR_COST_KUSD,
};

/// Line, DAC and interface counts for one wiring scheme on one chip.
///
/// # Example
///
/// ```
/// use youtiao_chip::topology;
/// use youtiao_cost::WiringTally;
///
/// // Table 2, heavy-square column (Google baseline).
/// let chip = topology::heavy_square(3, 3);
/// let t = WiringTally::google(&chip);
/// assert_eq!(t.xy_lines, 21);
/// assert_eq!(t.z_lines, 45);
/// assert_eq!(t.dac_channels(), 72);
/// assert_eq!(t.interfaces(), 69);
/// assert!((t.cost_kusd() - 470.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WiringTally {
    /// Coaxial XY control lines.
    pub xy_lines: usize,
    /// Coaxial Z control lines.
    pub z_lines: usize,
    /// Multiplexed readout feedlines (coax).
    pub readout_feedlines: usize,
    /// Readout DAC channels.
    pub readout_dacs: usize,
    /// DEMUX digital select channels (twisted pair).
    pub demux_select_lines: usize,
}

impl WiringTally {
    /// Tally for the Google-style baseline: dedicated XY/Z per device,
    /// readout multiplexed only.
    pub fn google(chip: &Chip) -> Self {
        let q = chip.num_qubits();
        WiringTally {
            xy_lines: q,
            z_lines: chip.num_z_devices(),
            readout_feedlines: q.div_ceil(READOUT_FEEDLINE_CAPACITY),
            readout_dacs: q.div_ceil(READOUT_DAC_CAPACITY),
            demux_select_lines: 0,
        }
    }

    /// Tally for a YOUTIAO wiring plan.
    pub fn youtiao(plan: &WiringPlan) -> Self {
        let q: usize = plan.readout_lines().iter().map(Vec::len).sum();
        WiringTally {
            xy_lines: plan.num_xy_lines(),
            z_lines: plan.num_z_lines(),
            readout_feedlines: plan.num_readout_lines(),
            readout_dacs: q.div_ceil(READOUT_DAC_CAPACITY),
            demux_select_lines: plan.demux_select_lines(),
        }
    }

    /// Field-wise sum over tallies — wiring resources are additive
    /// across the dies of one cryostat, so a chiplet array's tally is
    /// the sum of its per-die tallies.
    pub fn sum(tallies: impl IntoIterator<Item = WiringTally>) -> Self {
        tallies.into_iter().fold(
            WiringTally {
                xy_lines: 0,
                z_lines: 0,
                readout_feedlines: 0,
                readout_dacs: 0,
                demux_select_lines: 0,
            },
            |a, t| WiringTally {
                xy_lines: a.xy_lines + t.xy_lines,
                z_lines: a.z_lines + t.z_lines,
                readout_feedlines: a.readout_feedlines + t.readout_feedlines,
                readout_dacs: a.readout_dacs + t.readout_dacs,
                demux_select_lines: a.demux_select_lines + t.demux_select_lines,
            },
        )
    }

    /// Total coaxial cryostat lines (XY + Z + readout feedlines) — the
    /// paper's "coaxial wiring" figure.
    pub fn coax_lines(&self) -> usize {
        self.xy_lines + self.z_lines + self.readout_feedlines
    }

    /// RF DAC channels (XY + Z + readout).
    pub fn rf_dacs(&self) -> usize {
        self.xy_lines + self.z_lines + self.readout_dacs
    }

    /// The paper's `#DAC` column: RF DAC channels plus DEMUX digital
    /// select channels.
    pub fn dac_channels(&self) -> usize {
        self.rf_dacs() + self.demux_select_lines
    }

    /// The paper's `#interface` column: every coax line plus every
    /// select line needs a chip interface pad.
    pub fn interfaces(&self) -> usize {
        self.coax_lines() + self.demux_select_lines
    }

    /// Wiring cost in thousands of USD under the calibrated model.
    pub fn cost_kusd(&self) -> f64 {
        self.coax_lines() as f64 * COAX_COST_KUSD
            + self.rf_dacs() as f64 * RF_DAC_COST_KUSD
            + self.demux_select_lines as f64 * TWISTED_PAIR_COST_KUSD
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtiao_chip::topology;
    use youtiao_core::YoutiaoPlanner;

    #[test]
    fn google_tallies_match_table2() {
        // (chip, xy, z, dac, interface, cost $K)
        let cases: Vec<(youtiao_chip::Chip, usize, usize, usize, usize, f64)> = vec![
            (topology::square_grid(3, 3), 9, 21, 33, 32, 216.2),
            (topology::hexagon_patch(2, 2), 16, 35, 55, 53, 359.8),
            (topology::heavy_square(3, 3), 21, 45, 72, 69, 470.4),
            (topology::heavy_hexagon(1, 2), 21, 43, 70, 67, 457.2),
            (topology::low_density(3, 6), 18, 36, 59, 57, 386.2),
        ];
        for (chip, xy, z, dac, iface, cost) in cases {
            let t = WiringTally::google(&chip);
            assert_eq!(t.xy_lines, xy, "{}", chip.name());
            assert_eq!(t.z_lines, z, "{}", chip.name());
            assert_eq!(t.dac_channels(), dac, "{}", chip.name());
            assert_eq!(t.interfaces(), iface, "{}", chip.name());
            assert!(
                (t.cost_kusd() - cost).abs() < 1.0,
                "{}: {}",
                chip.name(),
                t.cost_kusd()
            );
        }
    }

    #[test]
    fn youtiao_tally_reduces_everything() {
        let chip = topology::heavy_square(3, 3);
        let plan = YoutiaoPlanner::new(&chip).plan().unwrap();
        let y = WiringTally::youtiao(&plan);
        let g = WiringTally::google(&chip);
        assert!(y.xy_lines < g.xy_lines);
        assert!(y.z_lines < g.z_lines);
        assert!(y.coax_lines() < g.coax_lines());
        assert!(y.cost_kusd() < g.cost_kusd());
        assert!(y.interfaces() < g.interfaces());
        assert_eq!(y.xy_lines, 5); // ceil(21/5), paper's YOUTIAO value
    }

    #[test]
    fn youtiao_xy_reduction_matches_paper_ratios() {
        // Paper: 4.2x XY reduction on average with capacity 5.
        let mut ratios = Vec::new();
        for chip in topology::paper_suite() {
            let plan = YoutiaoPlanner::new(&chip).plan().unwrap();
            let y = WiringTally::youtiao(&plan);
            let g = WiringTally::google(&chip);
            ratios.push(g.xy_lines as f64 / y.xy_lines as f64);
        }
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!((avg - 4.2).abs() < 0.4, "avg XY reduction {avg}");
    }

    #[test]
    fn cost_is_monotone_in_lines() {
        let small = WiringTally {
            xy_lines: 2,
            z_lines: 7,
            readout_feedlines: 2,
            readout_dacs: 3,
            demux_select_lines: 11,
        };
        let big = WiringTally {
            xy_lines: 9,
            ..small
        };
        assert!(big.cost_kusd() > small.cost_kusd());
        // Paper's square-topology YOUTIAO row: $79K.
        assert!(
            (small.cost_kusd() - 79.0).abs() < 1.0,
            "{}",
            small.cost_kusd()
        );
    }

    #[cfg(feature = "serde")]
    #[test]
    fn json_roundtrip() {
        let chip = topology::heavy_square(3, 3);
        let t = WiringTally::google(&chip);
        let json = serde_json::to_string(&t).unwrap();
        let back: WiringTally = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
        assert!(json.contains("\"xy_lines\":21"), "{json}");
    }
}
