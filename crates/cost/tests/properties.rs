//! Property-based tests for the cost model.

use proptest::prelude::*;
use youtiao_chip::topology;
use youtiao_core::YoutiaoPlanner;
use youtiao_cost::scale::{square_system, ScalingModel};
use youtiao_cost::WiringTally;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Google tallies follow the closed forms on any grid.
    #[test]
    fn google_tally_closed_forms(rows in 1usize..7, cols in 1usize..7) {
        let chip = topology::square_grid(rows, cols);
        let t = WiringTally::google(&chip);
        let q = rows * cols;
        prop_assert_eq!(t.xy_lines, q);
        prop_assert_eq!(t.z_lines, q + chip.num_couplers());
        prop_assert_eq!(t.readout_feedlines, q.div_ceil(8));
        prop_assert_eq!(t.readout_dacs, q.div_ceil(4));
        prop_assert_eq!(t.demux_select_lines, 0);
        prop_assert_eq!(t.dac_channels(), t.rf_dacs());
        prop_assert_eq!(t.interfaces(), t.coax_lines());
        prop_assert!(t.cost_kusd() > 0.0);
    }

    /// YOUTIAO never uses more resources than dedicated wiring, on any
    /// grid large enough to multiplex.
    #[test]
    fn youtiao_dominates_google(rows in 2usize..6, cols in 2usize..6) {
        let chip = topology::square_grid(rows, cols);
        let plan = YoutiaoPlanner::new(&chip).plan().unwrap();
        let y = WiringTally::youtiao(&plan);
        let g = WiringTally::google(&chip);
        prop_assert!(y.xy_lines <= g.xy_lines);
        prop_assert!(y.z_lines <= g.z_lines);
        prop_assert!(y.coax_lines() <= g.coax_lines());
        prop_assert!(y.cost_kusd() <= g.cost_kusd());
    }

    /// Cost is monotone in every resource dimension.
    #[test]
    fn cost_is_monotone(
        xy in 0usize..100,
        z in 0usize..300,
        ro in 0usize..20,
        dacs in 0usize..40,
        sel in 0usize..80,
        bump in 1usize..10,
    ) {
        let base = WiringTally {
            xy_lines: xy,
            z_lines: z,
            readout_feedlines: ro,
            readout_dacs: dacs,
            demux_select_lines: sel,
        };
        for grown in [
            WiringTally { xy_lines: xy + bump, ..base },
            WiringTally { z_lines: z + bump, ..base },
            WiringTally { demux_select_lines: sel + bump, ..base },
        ] {
            prop_assert!(grown.cost_kusd() > base.cost_kusd());
            prop_assert!(grown.coax_lines() >= base.coax_lines());
        }
    }

    /// Square systems always hold at least the requested qubits with a
    /// near-square aspect ratio.
    #[test]
    fn square_system_holds_request(n in 1usize..100_000) {
        let s = square_system(n);
        prop_assert!(s.qubits() >= n);
        prop_assert!(s.cols >= s.rows);
        prop_assert!(s.cols - s.rows <= s.rows + 1, "aspect {}x{}", s.rows, s.cols);
        // Coupler closed form for grids.
        prop_assert_eq!(s.couplers(), 2 * s.rows * s.cols - s.rows - s.cols);
    }

    /// The scaling model's estimates grow monotonically with system size.
    #[test]
    fn scaling_is_monotone(n in 50usize..5_000, factor in 2usize..5) {
        let model = ScalingModel {
            z_devices_per_line: 3.5,
            select_per_line: 1.8,
        };
        let small = model.youtiao_tally(n);
        let large = model.youtiao_tally(n * factor);
        prop_assert!(large.coax_lines() > small.coax_lines());
        prop_assert!(large.cost_kusd() > small.cost_kusd());
        let g_small = model.google_tally(n);
        let g_large = model.google_tally(n * factor);
        prop_assert!(g_large.coax_lines() > g_small.coax_lines());
        // The reduction factor stays roughly stable at scale.
        let r_small = g_small.coax_lines() as f64 / small.coax_lines() as f64;
        let r_large = g_large.coax_lines() as f64 / large.coax_lines() as f64;
        prop_assert!((r_small - r_large).abs() < 1.0);
    }
}
