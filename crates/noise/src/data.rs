//! Synthetic crosstalk measurements.
//!
//! Substitutes for the paper's proprietary Xmon chip data (see DESIGN.md).
//! The generator reproduces the structure the fitting pipeline depends on:
//! crosstalk decays exponentially with a hidden blend of physical and
//! topological distance, carries multiplicative measurement noise, and
//! saturates at a detection floor.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use youtiao_chip::distance::topological_distance;
use youtiao_chip::{Chip, QubitId};

/// Which crosstalk mechanism a sample measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrosstalkKind {
    /// Spurious excitation probability of a spectator qubit while an XY
    /// drive is applied to the target (dimensionless probability).
    Xy,
    /// Frequency shift of a spectator qubit from always-on ZZ coupling,
    /// in MHz.
    Zz,
}

/// One crosstalk measurement between a qubit pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrosstalkSample {
    /// The driven (target) qubit.
    pub target: QubitId,
    /// The spectator qubit whose disturbance is measured.
    pub spectator: QubitId,
    /// Physical (Euclidean) distance between the pair, in millimetres.
    pub d_phy: f64,
    /// Multi-shortest-path topological distance (`n · l`, §4.1).
    pub d_top: f64,
    /// Measured crosstalk magnitude (probability for XY, MHz for ZZ).
    pub value: f64,
}

/// Parameters of the synthetic crosstalk generator.
///
/// The ground-truth law is
/// `value = amplitude · exp(−d_true / lambda) · (1 + noise·η) + floor`,
/// with `d_true = true_w_phy·d_phy + true_w_top·d_top` and `η` a standard
/// uniform deviate in `[−1, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Crosstalk magnitude at zero distance.
    pub amplitude: f64,
    /// Exponential decay length in equivalent-distance units.
    pub lambda: f64,
    /// Relative multiplicative measurement noise (0.15 = ±15%).
    pub noise: f64,
    /// Detection floor added to every sample.
    pub floor: f64,
    /// Hidden ground-truth physical-distance weight.
    pub true_w_phy: f64,
    /// Hidden ground-truth topological-distance weight.
    pub true_w_top: f64,
    /// Cap on the topological metric so the exponential does not underflow
    /// on far multi-path pairs.
    pub d_top_cap: f64,
    /// Chip-to-chip fabrication variation: each synthesized chip draws
    /// its own amplitude (±jitter) and decay length (±jitter/2) factors,
    /// so models trained on different "similar" chips differ the way the
    /// paper's 6×6/8×8 devices do (Figure 12).
    pub chip_jitter: f64,
}

impl SynthConfig {
    /// Parameters calibrated for XY crosstalk: the amplitude is set so
    /// that unoptimized (frequency-colliding) FDM grouping lands at the
    /// paper's ≈4.5×10⁻⁴ per-gate error while noise-aware grouping keeps
    /// the 2×10⁻⁴ / 99.98% figure (Figure 13).
    pub fn xy() -> Self {
        SynthConfig {
            amplitude: 4.5e-4,
            lambda: 1.6,
            noise: 0.15,
            floor: 1e-8,
            true_w_phy: 0.6,
            true_w_top: 0.4,
            d_top_cap: 12.0,
            chip_jitter: 0.06,
        }
    }

    /// Parameters calibrated for ZZ crosstalk: sub-MHz shifts on adjacent
    /// pairs decaying fast with distance.
    pub fn zz() -> Self {
        SynthConfig {
            amplitude: 0.45,
            lambda: 1.1,
            noise: 0.2,
            floor: 1e-4,
            true_w_phy: 0.5,
            true_w_top: 0.5,
            d_top_cap: 12.0,
            chip_jitter: 0.06,
        }
    }
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig::xy()
    }
}

/// Generates one crosstalk sample per ordered qubit pair of `chip`.
///
/// The generator is deterministic for a given `(chip, kind, config, seed)`
/// so experiments are reproducible. The `kind` only selects the default
/// interpretation recorded by callers; the law itself is fully controlled
/// by `config`.
///
/// # Example
///
/// ```
/// use youtiao_chip::topology;
/// use youtiao_noise::data::{synthesize, CrosstalkKind, SynthConfig};
///
/// let chip = topology::square_grid(3, 3);
/// let samples = synthesize(&chip, CrosstalkKind::Xy, &SynthConfig::xy(), 42);
/// assert_eq!(samples.len(), 9 * 8); // ordered pairs
/// assert!(samples.iter().all(|s| s.value > 0.0));
/// ```
pub fn synthesize(
    chip: &Chip,
    kind: CrosstalkKind,
    config: &SynthConfig,
    seed: u64,
) -> Vec<CrosstalkSample> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ kind_tag(kind));
    // Chip-level fabrication variation, fixed for the whole chip.
    let amp_factor = 1.0 + config.chip_jitter * rng.gen_range(-1.0..=1.0);
    let lambda_factor = 1.0 + config.chip_jitter / 2.0 * rng.gen_range(-1.0..=1.0);
    // The physical/topological balance also drifts between chips, so a
    // transferred model groups slightly sub-optimally (Figure 12 (b)).
    let w_shift = config.chip_jitter * rng.gen_range(-1.0..=1.0);
    let chip_config = SynthConfig {
        amplitude: config.amplitude * amp_factor,
        lambda: config.lambda * lambda_factor,
        true_w_phy: (config.true_w_phy + w_shift).clamp(0.05, 0.95),
        true_w_top: (config.true_w_top - w_shift).clamp(0.05, 0.95),
        ..config.clone()
    };
    let config = &chip_config;
    let mut out = Vec::with_capacity(chip.num_qubits() * (chip.num_qubits() - 1));
    for target in chip.qubit_ids() {
        for spectator in chip.qubit_ids() {
            if target == spectator {
                continue;
            }
            let d_phy = chip.physical_distance(target, spectator);
            let d_top = topological_distance(chip, target, spectator)
                .map(|d| d.value())
                .unwrap_or(f64::INFINITY);
            let value = sample_value(config, d_phy, d_top, &mut rng);
            out.push(CrosstalkSample {
                target,
                spectator,
                d_phy,
                d_top,
                value,
            });
        }
    }
    out
}

/// Evaluates the noisy ground-truth law for a single pair.
fn sample_value(config: &SynthConfig, d_phy: f64, d_top: f64, rng: &mut impl Rng) -> f64 {
    let d_top = d_top.min(config.d_top_cap);
    let d_true = config.true_w_phy * d_phy + config.true_w_top * d_top;
    let eta: f64 = rng.gen_range(-1.0..=1.0);
    let clean = config.amplitude * (-d_true / config.lambda).exp();
    (clean * (1.0 + config.noise * eta) + config.floor).max(config.floor)
}

/// Returns the noiseless expected crosstalk for a pair under `config`.
///
/// Useful for tests and for constructing reference distributions.
pub fn expected_value(config: &SynthConfig, d_phy: f64, d_top: f64) -> f64 {
    let d_top = d_top.min(config.d_top_cap);
    let d_true = config.true_w_phy * d_phy + config.true_w_top * d_top;
    config.amplitude * (-d_true / config.lambda).exp() + config.floor
}

fn kind_tag(kind: CrosstalkKind) -> u64 {
    match kind {
        CrosstalkKind::Xy => 0x5941_0000,
        CrosstalkKind::Zz => 0x5A5A_0000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtiao_chip::topology;

    #[test]
    fn sample_count_is_ordered_pairs() {
        let chip = topology::square_grid(3, 3);
        let s = synthesize(&chip, CrosstalkKind::Xy, &SynthConfig::xy(), 1);
        assert_eq!(s.len(), 72);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let chip = topology::square_grid(3, 3);
        let a = synthesize(&chip, CrosstalkKind::Xy, &SynthConfig::xy(), 5);
        let b = synthesize(&chip, CrosstalkKind::Xy, &SynthConfig::xy(), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let chip = topology::square_grid(3, 3);
        let a = synthesize(&chip, CrosstalkKind::Xy, &SynthConfig::xy(), 5);
        let b = synthesize(&chip, CrosstalkKind::Xy, &SynthConfig::xy(), 6);
        assert_ne!(a, b);
    }

    #[test]
    fn kinds_use_distinct_streams() {
        let chip = topology::square_grid(3, 3);
        let a = synthesize(&chip, CrosstalkKind::Xy, &SynthConfig::xy(), 5);
        let b = synthesize(&chip, CrosstalkKind::Zz, &SynthConfig::xy(), 5);
        assert_ne!(a, b);
    }

    #[test]
    fn crosstalk_decays_with_distance_on_average() {
        let chip = topology::square_grid(4, 4);
        let s = synthesize(&chip, CrosstalkKind::Xy, &SynthConfig::xy(), 9);
        let near: Vec<f64> = s
            .iter()
            .filter(|x| x.d_top <= 1.0)
            .map(|x| x.value)
            .collect();
        let far: Vec<f64> = s
            .iter()
            .filter(|x| x.d_top >= 8.0)
            .map(|x| x.value)
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&near) > 5.0 * mean(&far));
    }

    #[test]
    fn values_respect_floor() {
        let chip = topology::square_grid(4, 4);
        let cfg = SynthConfig::xy();
        let s = synthesize(&chip, CrosstalkKind::Xy, &cfg, 3);
        assert!(s.iter().all(|x| x.value >= cfg.floor));
    }

    #[test]
    fn expected_value_matches_decay() {
        let cfg = SynthConfig::xy();
        let near = expected_value(&cfg, 1.0, 1.0);
        let far = expected_value(&cfg, 3.0, 9.0);
        assert!(near > far);
        assert!((expected_value(&cfg, 0.0, 0.0) - cfg.amplitude - cfg.floor).abs() < 1e-12);
    }

    #[test]
    fn zz_config_has_mhz_scale() {
        let cfg = SynthConfig::zz();
        assert!(cfg.amplitude > 0.1 && cfg.amplitude < 1.0);
    }

    #[test]
    fn d_top_is_capped_in_law() {
        let cfg = SynthConfig::xy();
        assert_eq!(
            expected_value(&cfg, 1.0, cfg.d_top_cap),
            expected_value(&cfg, 1.0, cfg.d_top_cap * 50.0)
        );
    }
}
