//! Cross-validated fitting of the crosstalk model (§4.1).
//!
//! The paper searches for the best `(w_phy, w_top)` blend by training a
//! random forest on `d_equiv = w_phy·d_phy + w_top·d_top` and scoring MSE
//! under 5-fold cross-validation. [`fit_crosstalk_model`] implements that
//! procedure over a simplex grid `w_phy ∈ {0, 1/s, …, 1}`, `w_top = 1 −
//! w_phy` (scaling both weights by a common factor leaves tree splits
//! unchanged, so the simplex is the full effective search space).

use std::error::Error;
use std::fmt;

use youtiao_chip::distance::EquivalentWeights;

use crate::data::CrosstalkSample;
use crate::forest::{RandomForest, RandomForestConfig};
use crate::model::CrosstalkModel;
use crate::stats::mse;

/// Configuration for [`fit_crosstalk_model`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitConfig {
    /// Number of grid steps for `w_phy` (the grid has `steps + 1` points).
    pub weight_steps: usize,
    /// Number of cross-validation folds (the paper uses 5).
    pub folds: usize,
    /// Forest hyper-parameters used both during CV and for the final fit.
    pub forest: RandomForestConfig,
}

impl FitConfig {
    /// The paper's setting: 5-fold CV over a 10-step weight grid.
    pub fn paper() -> Self {
        FitConfig {
            weight_steps: 10,
            folds: 5,
            forest: RandomForestConfig::default(),
        }
    }

    /// A cheaper setting for tests and doc examples.
    pub fn fast() -> Self {
        FitConfig {
            weight_steps: 4,
            folds: 3,
            forest: RandomForestConfig {
                num_trees: 8,
                ..Default::default()
            },
        }
    }
}

impl Default for FitConfig {
    fn default() -> Self {
        FitConfig::paper()
    }
}

/// Errors from [`fit_crosstalk_model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FitError {
    /// Fewer usable samples than cross-validation folds.
    NotEnoughSamples {
        /// Usable (finite) sample count.
        available: usize,
        /// Required minimum (the fold count).
        required: usize,
    },
    /// The configuration requested zero folds or zero weight steps.
    InvalidConfig,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::NotEnoughSamples {
                available,
                required,
            } => write!(
                f,
                "need at least {required} finite samples for cross-validation, got {available}"
            ),
            FitError::InvalidConfig => {
                write!(
                    f,
                    "fit configuration needs folds >= 2 and weight_steps >= 1"
                )
            }
        }
    }
}

impl Error for FitError {}

/// Fits a [`CrosstalkModel`] to measurement samples by grid-searching the
/// equivalent-distance weights under k-fold cross-validation and
/// retraining the winning configuration on all data.
///
/// Samples with non-finite distance components (disconnected pairs) are
/// ignored.
///
/// # Errors
///
/// * [`FitError::InvalidConfig`] — `folds < 2` or `weight_steps < 1`.
/// * [`FitError::NotEnoughSamples`] — fewer finite samples than folds.
pub fn fit_crosstalk_model(
    samples: &[CrosstalkSample],
    config: &FitConfig,
) -> Result<CrosstalkModel, FitError> {
    if config.folds < 2 || config.weight_steps < 1 {
        return Err(FitError::InvalidConfig);
    }
    let usable: Vec<&CrosstalkSample> = samples
        .iter()
        .filter(|s| s.d_phy.is_finite() && s.d_top.is_finite() && s.value.is_finite())
        .collect();
    if usable.len() < config.folds {
        return Err(FitError::NotEnoughSamples {
            available: usable.len(),
            required: config.folds,
        });
    }

    let mut best: Option<(EquivalentWeights, f64)> = None;
    for i in 0..=config.weight_steps {
        let w_phy = i as f64 / config.weight_steps as f64;
        let w_top = 1.0 - w_phy;
        let Ok(weights) = EquivalentWeights::new(w_phy, w_top) else {
            continue; // both-zero corner cannot occur on the simplex
        };
        let score = cv_mse(&usable, weights, config);
        if best.is_none_or(|(_, b)| score < b) {
            best = Some((weights, score));
        }
    }
    let (weights, score) = best.expect("weight grid is non-empty");

    let xs: Vec<f64> = usable
        .iter()
        .map(|s| weights.combine(s.d_phy, s.d_top))
        .collect();
    let ys: Vec<f64> = usable.iter().map(|s| s.value).collect();
    let forest = RandomForest::fit(&xs, &ys, config.forest);
    Ok(CrosstalkModel::from_parts(weights, forest, score))
}

/// k-fold cross-validated MSE for a candidate weight blend.
fn cv_mse(samples: &[&CrosstalkSample], weights: EquivalentWeights, config: &FitConfig) -> f64 {
    let n = samples.len();
    let mut total = 0.0;
    let mut folds_used = 0usize;
    for fold in 0..config.folds {
        let mut train_x = Vec::new();
        let mut train_y = Vec::new();
        let mut test_x = Vec::new();
        let mut test_y = Vec::new();
        for (i, s) in samples.iter().enumerate() {
            let x = weights.combine(s.d_phy, s.d_top);
            if i % config.folds == fold {
                test_x.push(x);
                test_y.push(s.value);
            } else {
                train_x.push(x);
                train_y.push(s.value);
            }
        }
        if train_x.is_empty() || test_x.is_empty() {
            continue;
        }
        let forest = RandomForest::fit(&train_x, &train_y, config.forest);
        let preds: Vec<f64> = test_x.iter().map(|&x| forest.predict(x)).collect();
        total += mse(&preds, &test_y);
        folds_used += 1;
    }
    if folds_used == 0 {
        f64::INFINITY
    } else {
        total / folds_used as f64
    }
    .max(if n == 0 { f64::INFINITY } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{synthesize, CrosstalkKind, SynthConfig};
    use youtiao_chip::topology;

    fn samples_6x6(seed: u64) -> Vec<CrosstalkSample> {
        let chip = topology::square_grid(6, 6);
        synthesize(&chip, CrosstalkKind::Xy, &SynthConfig::xy(), seed)
    }

    #[test]
    fn fit_recovers_decaying_relationship() {
        let model = fit_crosstalk_model(&samples_6x6(1), &FitConfig::fast()).unwrap();
        assert!(model.predict(1.0, 1.0) > model.predict(4.0, 10.0));
        assert!(model.cv_mse() >= 0.0);
    }

    #[test]
    fn fitted_weights_are_on_simplex() {
        let model = fit_crosstalk_model(&samples_6x6(2), &FitConfig::fast()).unwrap();
        let w = model.weights();
        assert!((w.w_phy() + w.w_top() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fit_prefers_informative_blend() {
        // With ground truth 0.6/0.4, the fitted w_phy should not collapse
        // to an extreme of the simplex.
        let model = fit_crosstalk_model(&samples_6x6(3), &FitConfig::paper()).unwrap();
        let w = model.weights().w_phy();
        assert!((0.0..=1.0).contains(&w));
    }

    #[test]
    fn prediction_error_is_small_in_band() {
        let chip = topology::square_grid(6, 6);
        let cfg = SynthConfig::xy();
        let samples = synthesize(&chip, CrosstalkKind::Xy, &cfg, 4);
        let model = fit_crosstalk_model(&samples, &FitConfig::fast()).unwrap();
        // Compare against the noiseless law on adjacent pairs.
        let truth = crate::data::expected_value(&cfg, 1.0, 1.0);
        let pred = model.predict(1.0, 1.0);
        assert!(
            (pred - truth).abs() / truth < 0.5,
            "pred {pred} vs truth {truth}"
        );
    }

    #[test]
    fn too_few_samples_is_error() {
        let samples = samples_6x6(1)[..2].to_vec();
        let err = fit_crosstalk_model(&samples, &FitConfig::paper()).unwrap_err();
        assert!(matches!(
            err,
            FitError::NotEnoughSamples {
                available: 2,
                required: 5
            }
        ));
    }

    #[test]
    fn invalid_config_is_error() {
        let samples = samples_6x6(1);
        let bad = FitConfig {
            folds: 1,
            ..FitConfig::fast()
        };
        assert_eq!(
            fit_crosstalk_model(&samples, &bad).unwrap_err(),
            FitError::InvalidConfig
        );
        let bad2 = FitConfig {
            weight_steps: 0,
            ..FitConfig::fast()
        };
        assert_eq!(
            fit_crosstalk_model(&samples, &bad2).unwrap_err(),
            FitError::InvalidConfig
        );
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let mut samples = samples_6x6(5);
        samples.push(CrosstalkSample {
            target: 0u32.into(),
            spectator: 1u32.into(),
            d_phy: f64::INFINITY,
            d_top: 1.0,
            value: 0.5,
        });
        let model = fit_crosstalk_model(&samples, &FitConfig::fast()).unwrap();
        assert!(model.predict(1.0, 1.0).is_finite());
    }

    #[test]
    fn error_display_is_informative() {
        let e = FitError::NotEnoughSamples {
            available: 1,
            required: 5,
        };
        assert!(e.to_string().contains("5"));
        assert!(FitError::InvalidConfig.to_string().contains("folds"));
    }
}
