//! Bootstrap-aggregated regression forests.
//!
//! Bagging many [`RegressionTree`]s smooths the step-wise predictions of a
//! single tree and is the regressor the paper uses for crosstalk fitting.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::tree::{RegressionTree, TreeConfig};

/// Hyper-parameters of a [`RandomForest`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomForestConfig {
    /// Number of bagged trees.
    pub num_trees: usize,
    /// Per-tree configuration.
    pub tree: TreeConfig,
    /// Seed for bootstrap resampling.
    pub seed: u64,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        RandomForestConfig {
            num_trees: 30,
            tree: TreeConfig::default(),
            seed: 0x464F_5245,
        }
    }
}

/// A fitted bootstrap-aggregated regression forest over one feature.
///
/// # Example
///
/// ```
/// use youtiao_noise::forest::{RandomForest, RandomForestConfig};
///
/// let xs: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
/// let forest = RandomForest::fit(&xs, &ys, RandomForestConfig::default());
/// assert!((forest.predict(5.0) - 11.0).abs() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
}

impl RandomForest {
    /// Fits the forest on `(x, y)` pairs with bootstrap resampling.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty, have mismatched lengths, or
    /// `config.num_trees == 0`.
    pub fn fit(xs: &[f64], ys: &[f64], config: RandomForestConfig) -> Self {
        assert_eq!(xs.len(), ys.len(), "feature/target length mismatch");
        assert!(!xs.is_empty(), "cannot fit a forest to zero samples");
        assert!(config.num_trees > 0, "forest needs at least one tree");
        let n = xs.len();
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut trees = Vec::with_capacity(config.num_trees);
        let mut bx = vec![0.0; n];
        let mut by = vec![0.0; n];
        for _ in 0..config.num_trees {
            for i in 0..n {
                let j = rng.gen_range(0..n);
                bx[i] = xs[j];
                by[i] = ys[j];
            }
            trees.push(RegressionTree::fit(&bx, &by, config.tree));
        }
        RandomForest { trees }
    }

    /// Predicts the mean of all trees' predictions for feature `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.trees.iter().map(|t| t.predict(x)).sum::<f64>() / self.trees.len() as f64
    }

    /// Number of trees in the ensemble.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_exp_data(n: usize) -> (Vec<f64>, Vec<f64>) {
        // Deterministic pseudo-noise so the test is stable.
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 8.0 / n as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| (-x).exp() * (1.0 + 0.1 * ((i * 37 % 17) as f64 / 17.0 - 0.5)))
            .collect();
        (xs, ys)
    }

    #[test]
    fn forest_is_deterministic_for_seed() {
        let (xs, ys) = noisy_exp_data(100);
        let a = RandomForest::fit(&xs, &ys, RandomForestConfig::default());
        let b = RandomForest::fit(&xs, &ys, RandomForestConfig::default());
        assert_eq!(a.predict(3.0), b.predict(3.0));
    }

    #[test]
    fn forest_fits_decaying_curve() {
        let (xs, ys) = noisy_exp_data(200);
        let forest = RandomForest::fit(&xs, &ys, RandomForestConfig::default());
        for &x in &[0.5, 1.5, 3.0, 6.0] {
            assert!((forest.predict(x) - (-x).exp()).abs() < 0.08, "at x={x}");
        }
    }

    #[test]
    fn more_trees_smooths_prediction() {
        let (xs, ys) = noisy_exp_data(150);
        let small = RandomForest::fit(
            &xs,
            &ys,
            RandomForestConfig {
                num_trees: 1,
                ..Default::default()
            },
        );
        let large = RandomForest::fit(
            &xs,
            &ys,
            RandomForestConfig {
                num_trees: 50,
                ..Default::default()
            },
        );
        assert_eq!(small.num_trees(), 1);
        assert_eq!(large.num_trees(), 50);
        // The large forest should be at least as accurate on a grid.
        let err = |f: &RandomForest| -> f64 {
            (0..40)
                .map(|i| {
                    let x = i as f64 * 0.2;
                    (f.predict(x) - (-x).exp()).powi(2)
                })
                .sum()
        };
        assert!(err(&large) <= err(&small) * 1.5);
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_panics() {
        let _ = RandomForest::fit(
            &[1.0],
            &[1.0],
            RandomForestConfig {
                num_trees: 0,
                ..Default::default()
            },
        );
    }
}
