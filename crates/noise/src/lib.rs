//! Crosstalk characterization for YOUTIAO (§4.1 of the paper).
//!
//! The paper fits a crosstalk model from measurements on self-developed
//! Xmon chips: for every qubit pair it records XY crosstalk (spurious
//! excitation probability of a spectator while driving a target) and ZZ
//! crosstalk (frequency shift of a spectator), then fits crosstalk as a
//! function of the *equivalent distance* `d_equiv = w_phy·d_phy +
//! w_top·d_top` using a random-forest regressor and 5-fold cross-validation
//! over `(w_phy, w_top)`.
//!
//! We do not have the proprietary chip data, so [`data`] synthesizes
//! measurements with the same structure (exponential decay over a hidden
//! ground-truth distance blend, multiplicative measurement noise, and a
//! detection floor), and the rest of the pipeline is implemented exactly as
//! described: a from-scratch CART random forest ([`forest`]), k-fold
//! cross-validated weight search ([`fit`]), and the Jensen–Shannon
//! divergence used by Figure 12 to argue model generality ([`stats`]).
//!
//! # Example
//!
//! ```
//! use youtiao_chip::topology;
//! use youtiao_noise::data::{synthesize, CrosstalkKind, SynthConfig};
//! use youtiao_noise::fit::{fit_crosstalk_model, FitConfig};
//!
//! let chip = topology::square_grid(4, 4);
//! let samples = synthesize(&chip, CrosstalkKind::Xy, &SynthConfig::default(), 7);
//! let model = fit_crosstalk_model(&samples, &FitConfig::fast())?;
//! // Nearby pairs predict more crosstalk than distant ones.
//! assert!(model.predict(1.0, 1.0) > model.predict(4.0, 24.0));
//! # Ok::<(), youtiao_noise::fit::FitError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod fit;
pub mod forest;
pub mod model;
pub mod stats;
pub mod tree;

pub use crate::data::{synthesize, CrosstalkKind, CrosstalkSample, SynthConfig};
pub use crate::fit::{fit_crosstalk_model, FitConfig, FitError};
pub use crate::forest::{RandomForest, RandomForestConfig};
pub use crate::model::CrosstalkModel;
