//! The fitted crosstalk characterization model.

use youtiao_chip::distance::{topological_distance, EquivalentWeights};
use youtiao_chip::{Chip, QubitId};

use crate::forest::RandomForest;

/// Linewidth (GHz) of the Lorentzian frequency-proximity factor used when
/// scaling distance-based crosstalk by spectral separation (10 MHz —
/// the scale of drive-line selectivity on transmon chips).
pub const FREQUENCY_LINEWIDTH_GHZ: f64 = 0.01;

/// A fitted crosstalk model: equivalent-distance weights plus a
/// random-forest regressor from distance to crosstalk magnitude.
///
/// Produced by [`fit_crosstalk_model`](crate::fit::fit_crosstalk_model).
///
/// # Example
///
/// ```
/// use youtiao_chip::topology;
/// use youtiao_noise::data::{synthesize, CrosstalkKind, SynthConfig};
/// use youtiao_noise::fit::{fit_crosstalk_model, FitConfig};
///
/// let chip = topology::square_grid(4, 4);
/// let samples = synthesize(&chip, CrosstalkKind::Xy, &SynthConfig::xy(), 11);
/// let model = fit_crosstalk_model(&samples, &FitConfig::fast())?;
/// let near = model.predict_pair(&chip, 0u32.into(), 1u32.into());
/// let far = model.predict_pair(&chip, 0u32.into(), 15u32.into());
/// assert!(near > far);
/// # Ok::<(), youtiao_noise::fit::FitError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CrosstalkModel {
    weights: EquivalentWeights,
    forest: RandomForest,
    cv_mse: f64,
}

impl CrosstalkModel {
    /// Assembles a model from fitted parts. Prefer
    /// [`fit_crosstalk_model`](crate::fit::fit_crosstalk_model).
    pub fn from_parts(weights: EquivalentWeights, forest: RandomForest, cv_mse: f64) -> Self {
        CrosstalkModel {
            weights,
            forest,
            cv_mse,
        }
    }

    /// The fitted `(w_phy, w_top)` blend.
    pub fn weights(&self) -> EquivalentWeights {
        self.weights
    }

    /// The cross-validated mean squared error achieved by the fit.
    pub fn cv_mse(&self) -> f64 {
        self.cv_mse
    }

    /// Predicts crosstalk for raw distance components.
    pub fn predict(&self, d_phy: f64, d_top: f64) -> f64 {
        self.forest
            .predict(self.weights.combine(d_phy, d_top))
            .max(0.0)
    }

    /// Predicts crosstalk from a pre-blended equivalent distance.
    pub fn predict_equivalent(&self, d_equiv: f64) -> f64 {
        self.forest.predict(d_equiv).max(0.0)
    }

    /// Predicts crosstalk between two qubits of a chip, recomputing both
    /// distance components. Unreachable pairs predict zero crosstalk.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range for the chip.
    pub fn predict_pair(&self, chip: &Chip, a: QubitId, b: QubitId) -> f64 {
        let d_phy = chip.physical_distance(a, b);
        match topological_distance(chip, a, b) {
            Some(d) => self.predict(d_phy, d.value()),
            None => 0.0,
        }
    }

    /// Predicts crosstalk between two qubits additionally scaled by their
    /// spectral separation via [`frequency_scaling`].
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range for the chip.
    pub fn predict_pair_at_frequencies(
        &self,
        chip: &Chip,
        a: QubitId,
        b: QubitId,
        freq_a_ghz: f64,
        freq_b_ghz: f64,
    ) -> f64 {
        self.predict_pair(chip, a, b) * frequency_scaling(freq_a_ghz - freq_b_ghz)
    }
}

/// Lorentzian frequency-proximity factor in `(0, 1]`.
///
/// Crosstalk between two qubits is maximal when their frequencies collide
/// and falls off as `1 / (1 + (Δf/γ)²)` with detuning — the standard
/// dispersive suppression shape. `γ` is [`FREQUENCY_LINEWIDTH_GHZ`].
///
/// # Example
///
/// ```
/// use youtiao_noise::model::frequency_scaling;
/// assert_eq!(frequency_scaling(0.0), 1.0);
/// assert!(frequency_scaling(0.5) < 0.02);
/// ```
pub fn frequency_scaling(delta_ghz: f64) -> f64 {
    let x = delta_ghz / FREQUENCY_LINEWIDTH_GHZ;
    1.0 / (1.0 + x * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::{RandomForest, RandomForestConfig};

    fn toy_model() -> CrosstalkModel {
        // Train the forest on an exact decaying curve.
        let xs: Vec<f64> = (0..200).map(|i| i as f64 / 20.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.01 * (-x).exp()).collect();
        let forest = RandomForest::fit(&xs, &ys, RandomForestConfig::default());
        CrosstalkModel::from_parts(EquivalentWeights::balanced(), forest, 1e-9)
    }

    #[test]
    fn predict_decays() {
        let m = toy_model();
        assert!(m.predict(0.5, 0.5) > m.predict(3.0, 3.0));
        assert!(m.predict_equivalent(1.0) > m.predict_equivalent(5.0));
    }

    #[test]
    fn predictions_are_non_negative() {
        let m = toy_model();
        for i in 0..50 {
            assert!(m.predict(i as f64 * 0.3, i as f64 * 0.4) >= 0.0);
        }
    }

    #[test]
    fn pair_prediction_uses_chip_distances() {
        let chip = youtiao_chip::topology::square_grid(3, 3);
        let m = toy_model();
        let near = m.predict_pair(&chip, 0u32.into(), 1u32.into());
        let far = m.predict_pair(&chip, 0u32.into(), 8u32.into());
        assert!(near > far);
    }

    #[test]
    fn disconnected_pair_predicts_zero() {
        let chip = youtiao_chip::ChipBuilder::new("d", youtiao_chip::TopologyKind::Custom)
            .qubit(youtiao_chip::Position::new(0.0, 0.0))
            .qubit(youtiao_chip::Position::new(9.0, 0.0))
            .build()
            .unwrap();
        let m = toy_model();
        assert_eq!(m.predict_pair(&chip, 0u32.into(), 1u32.into()), 0.0);
    }

    #[test]
    fn frequency_scaling_shape() {
        assert_eq!(frequency_scaling(0.0), 1.0);
        assert_eq!(frequency_scaling(0.1), frequency_scaling(-0.1));
        assert!(frequency_scaling(0.01) > frequency_scaling(0.1));
        assert!(frequency_scaling(1.0) > 0.0);
    }

    #[test]
    fn frequency_separation_reduces_pair_crosstalk() {
        let chip = youtiao_chip::topology::square_grid(3, 3);
        let m = toy_model();
        let same = m.predict_pair_at_frequencies(&chip, 0u32.into(), 1u32.into(), 5.0, 5.0);
        let apart = m.predict_pair_at_frequencies(&chip, 0u32.into(), 1u32.into(), 5.0, 6.0);
        assert!(same > apart * 10.0);
    }
}
