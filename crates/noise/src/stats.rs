//! Statistics helpers: MSE, histograms, and Jensen–Shannon divergence.
//!
//! The JS divergence is the metric Figure 12 of the paper uses to compare
//! the predicted noise distributions of crosstalk models trained on
//! different chips (a minimum of 0.06 indicates high similarity).

/// Mean of a slice.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of zero samples");
    values.iter().sum::<f64>() / values.len() as f64
}

/// Mean squared error between predictions and ground truth (§4.1's
/// `E(a, b)` objective).
///
/// # Panics
///
/// Panics if lengths differ or are zero.
pub fn mse(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    assert!(!predicted.is_empty(), "mse of zero samples");
    predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a) * (p - a))
        .sum::<f64>()
        / predicted.len() as f64
}

/// A normalized histogram (discrete probability distribution) over a fixed
/// range.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    probabilities: Vec<f64>,
}

impl Histogram {
    /// Builds a `bins`-bucket normalized histogram of `values` over
    /// `[lo, hi]`. Values outside the range clamp to the end bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, `lo >= hi`, or `values` is empty.
    pub fn build(values: &[f64], lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(!values.is_empty(), "histogram of zero samples");
        let mut counts = vec![0usize; bins];
        for &v in values {
            let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
            let idx = ((t * bins as f64) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        let total = values.len() as f64;
        Histogram {
            lo,
            hi,
            probabilities: counts.into_iter().map(|c| c as f64 / total).collect(),
        }
    }

    /// The per-bin probabilities (sum to 1).
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Lower bound of the histogram range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the histogram range.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

/// Kullback–Leibler divergence `D(p ‖ q)` in bits, skipping zero-mass bins
/// of `p` (conventional 0·log 0 = 0).
///
/// Bins where `p > 0` but `q = 0` contribute infinity; use
/// [`js_divergence`] for a bounded symmetric metric.
///
/// # Panics
///
/// Panics if the distributions have different lengths.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "length mismatch");
    p.iter()
        .zip(q)
        .map(|(&pi, &qi)| {
            if pi <= 0.0 {
                0.0
            } else if qi <= 0.0 {
                f64::INFINITY
            } else {
                pi * (pi / qi).log2()
            }
        })
        .sum()
}

/// Jensen–Shannon divergence between two discrete distributions, in bits.
///
/// Symmetric, finite, and bounded in `[0, 1]`.
///
/// # Panics
///
/// Panics if the distributions have different lengths.
///
/// # Example
///
/// ```
/// use youtiao_noise::stats::js_divergence;
/// let p = [0.5, 0.5];
/// assert_eq!(js_divergence(&p, &p), 0.0);
/// assert!((js_divergence(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
/// ```
pub fn js_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "length mismatch");
    let m: Vec<f64> = p.iter().zip(q).map(|(a, b)| (a + b) / 2.0).collect();
    (kl_divergence(p, &m) + kl_divergence(q, &m)) / 2.0
}

/// Jensen–Shannon divergence between two empirical samples, histogrammed
/// over their joint range with `bins` buckets.
///
/// # Panics
///
/// Panics if either sample is empty or `bins == 0`.
pub fn js_divergence_of_samples(a: &[f64], b: &[f64], bins: usize) -> f64 {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "js divergence of zero samples"
    );
    let lo = a.iter().chain(b).copied().fold(f64::INFINITY, f64::min);
    let hi = a.iter().chain(b).copied().fold(f64::NEG_INFINITY, f64::max);
    // Degenerate case: all samples identical -> identical distributions.
    if lo == hi {
        return 0.0;
    }
    let ha = Histogram::build(a, lo, hi, bins);
    let hb = Histogram::build(b, lo, hi, bins);
    js_divergence(ha.probabilities(), hb.probabilities())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_mse_basics() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(mse(&[0.0, 0.0], &[1.0, -1.0]), 1.0);
    }

    #[test]
    fn histogram_normalizes() {
        let h = Histogram::build(&[0.0, 0.5, 1.0, 1.0], 0.0, 1.0, 2);
        let sum: f64 = h.probabilities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(h.probabilities().len(), 2);
        assert_eq!(h.lo(), 0.0);
        assert_eq!(h.hi(), 1.0);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let h = Histogram::build(&[-5.0, 10.0], 0.0, 1.0, 4);
        assert_eq!(h.probabilities()[0], 0.5);
        assert_eq!(h.probabilities()[3], 0.5);
    }

    #[test]
    fn kl_zero_for_identical() {
        let p = [0.25, 0.25, 0.5];
        assert_eq!(kl_divergence(&p, &p), 0.0);
    }

    #[test]
    fn kl_infinite_on_missing_support() {
        assert!(kl_divergence(&[1.0, 0.0], &[0.0, 1.0]).is_infinite());
    }

    #[test]
    fn js_symmetric_and_bounded() {
        let p = [0.7, 0.2, 0.1];
        let q = [0.1, 0.3, 0.6];
        let d1 = js_divergence(&p, &q);
        let d2 = js_divergence(&q, &p);
        assert!((d1 - d2).abs() < 1e-12);
        assert!(d1 > 0.0 && d1 < 1.0);
    }

    #[test]
    fn js_of_samples_near_zero_for_same_distribution() {
        let a: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        let b = a.clone();
        assert!(js_divergence_of_samples(&a, &b, 10) < 1e-12);
    }

    #[test]
    fn js_of_samples_large_for_disjoint() {
        let a = vec![0.0; 100];
        let b = vec![1.0; 100];
        assert!((js_divergence_of_samples(&a, &b, 4) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn js_of_identical_constants_is_zero() {
        assert_eq!(js_divergence_of_samples(&[2.0, 2.0], &[2.0], 8), 0.0);
    }
}
