//! CART regression trees over a single scalar feature.
//!
//! The paper regresses crosstalk against the scalar equivalent distance,
//! so the trees here are one-dimensional: each internal node splits on a
//! threshold of the feature, each leaf predicts the mean of its training
//! targets. Splits greedily minimize the summed squared error of the two
//! children (equivalently, maximize variance reduction).

/// Hyper-parameters of a regression tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeConfig {
    /// Maximum tree depth (root has depth 0).
    pub max_depth: usize,
    /// Minimum number of samples required to split a node.
    pub min_samples_split: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 8,
            min_samples_split: 4,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        prediction: f64,
    },
    Split {
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A fitted one-dimensional regression tree.
///
/// # Example
///
/// ```
/// use youtiao_noise::tree::{RegressionTree, TreeConfig};
///
/// // A step function is learned exactly.
/// let xs = [0.0, 1.0, 2.0, 10.0, 11.0, 12.0];
/// let ys = [5.0, 5.0, 5.0, 1.0, 1.0, 1.0];
/// let tree = RegressionTree::fit(&xs, &ys, TreeConfig::default());
/// assert_eq!(tree.predict(1.5), 5.0);
/// assert_eq!(tree.predict(11.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTree {
    root: Node,
}

impl RegressionTree {
    /// Fits a tree to `(x, y)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` have different lengths or are empty.
    pub fn fit(xs: &[f64], ys: &[f64], config: TreeConfig) -> Self {
        assert_eq!(xs.len(), ys.len(), "feature/target length mismatch");
        assert!(!xs.is_empty(), "cannot fit a tree to zero samples");
        // Sort once by feature; recursion then works on contiguous slices.
        let mut order: Vec<usize> = (0..xs.len()).collect();
        order.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
        let sx: Vec<f64> = order.iter().map(|&i| xs[i]).collect();
        let sy: Vec<f64> = order.iter().map(|&i| ys[i]).collect();
        RegressionTree {
            root: build(&sx, &sy, 0, config),
        }
    }

    /// Predicts the target value for feature `x`.
    pub fn predict(&self, x: f64) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { prediction } => return *prediction,
                Node::Split {
                    threshold,
                    left,
                    right,
                } => {
                    node = if x <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Number of leaves in the tree.
    pub fn num_leaves(&self) -> usize {
        fn count(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// Depth of the tree (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn depth(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + depth(left).max(depth(right)),
            }
        }
        depth(&self.root)
    }
}

/// Recursively builds a node over the sorted slice `(xs, ys)`.
fn build(xs: &[f64], ys: &[f64], depth: usize, config: TreeConfig) -> Node {
    let mean = ys.iter().sum::<f64>() / ys.len() as f64;
    if depth >= config.max_depth || ys.len() < config.min_samples_split {
        return Node::Leaf { prediction: mean };
    }
    match best_split(xs, ys) {
        None => Node::Leaf { prediction: mean },
        Some(split_idx) => {
            let threshold = (xs[split_idx - 1] + xs[split_idx]) / 2.0;
            let left = build(&xs[..split_idx], &ys[..split_idx], depth + 1, config);
            let right = build(&xs[split_idx..], &ys[split_idx..], depth + 1, config);
            Node::Split {
                threshold,
                left: Box::new(left),
                right: Box::new(right),
            }
        }
    }
}

/// Finds the split index minimizing the children's summed squared error.
///
/// Returns `None` when no split separates distinct feature values or no
/// split improves on the parent. Uses prefix sums for an O(n) scan.
fn best_split(xs: &[f64], ys: &[f64]) -> Option<usize> {
    let n = ys.len();
    let total_sum: f64 = ys.iter().sum();
    let total_sq: f64 = ys.iter().map(|y| y * y).sum();
    let parent_sse = total_sq - total_sum * total_sum / n as f64;

    let mut best: Option<(usize, f64)> = None;
    let mut left_sum = 0.0;
    let mut left_sq = 0.0;
    for i in 1..n {
        left_sum += ys[i - 1];
        left_sq += ys[i - 1] * ys[i - 1];
        // A split between equal feature values is not realizable.
        if xs[i - 1] == xs[i] {
            continue;
        }
        let right_sum = total_sum - left_sum;
        let right_sq = total_sq - left_sq;
        let sse = (left_sq - left_sum * left_sum / i as f64)
            + (right_sq - right_sum * right_sum / (n - i) as f64);
        if best.map_or(sse < parent_sse - 1e-15, |(_, b)| sse < b) {
            best = Some((i, sse));
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sample_is_constant() {
        let tree = RegressionTree::fit(&[1.0], &[3.5], TreeConfig::default());
        assert_eq!(tree.predict(0.0), 3.5);
        assert_eq!(tree.predict(100.0), 3.5);
        assert_eq!(tree.num_leaves(), 1);
        assert_eq!(tree.depth(), 0);
    }

    #[test]
    fn constant_targets_never_split() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys = vec![2.0; 50];
        let tree = RegressionTree::fit(&xs, &ys, TreeConfig::default());
        assert_eq!(tree.num_leaves(), 1);
        assert_eq!(tree.predict(25.0), 2.0);
    }

    #[test]
    fn learns_step_function() {
        let xs = [0.0, 1.0, 2.0, 3.0, 10.0, 11.0, 12.0, 13.0];
        let ys = [4.0, 4.0, 4.0, 4.0, -1.0, -1.0, -1.0, -1.0];
        let tree = RegressionTree::fit(&xs, &ys, TreeConfig::default());
        assert_eq!(tree.predict(2.0), 4.0);
        assert_eq!(tree.predict(12.0), -1.0);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let xs = [12.0, 0.0, 11.0, 1.0, 13.0, 2.0, 10.0, 3.0];
        let ys = [-1.0, 4.0, -1.0, 4.0, -1.0, 4.0, -1.0, 4.0];
        let tree = RegressionTree::fit(&xs, &ys, TreeConfig::default());
        assert_eq!(tree.predict(2.0), 4.0);
        assert_eq!(tree.predict(12.0), -1.0);
    }

    #[test]
    fn depth_limit_respected() {
        let xs: Vec<f64> = (0..128).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..128).map(|i| (i as f64).sin()).collect();
        let cfg = TreeConfig {
            max_depth: 3,
            min_samples_split: 2,
        };
        let tree = RegressionTree::fit(&xs, &ys, cfg);
        assert!(tree.depth() <= 3);
        assert!(tree.num_leaves() <= 8);
    }

    #[test]
    fn min_samples_split_respected() {
        let xs: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..8).map(|i| i as f64 * 2.0).collect();
        let cfg = TreeConfig {
            max_depth: 20,
            min_samples_split: 9,
        };
        let tree = RegressionTree::fit(&xs, &ys, cfg);
        assert_eq!(tree.num_leaves(), 1);
    }

    #[test]
    fn duplicate_features_do_not_split_between_equal_values() {
        let xs = [1.0, 1.0, 1.0, 1.0];
        let ys = [0.0, 10.0, 0.0, 10.0];
        let tree = RegressionTree::fit(&xs, &ys, TreeConfig::default());
        assert_eq!(tree.num_leaves(), 1);
        assert_eq!(tree.predict(1.0), 5.0);
    }

    #[test]
    fn approximates_monotone_function() {
        let xs: Vec<f64> = (0..200).map(|i| i as f64 / 20.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (-x).exp()).collect();
        let tree = RegressionTree::fit(&xs, &ys, TreeConfig::default());
        // Predictions should preserve ordering at well-separated points.
        assert!(tree.predict(0.5) > tree.predict(5.0));
        assert!(tree.predict(2.0) > tree.predict(8.0));
        // And be close in absolute terms.
        for &x in &[0.5, 2.0, 5.0, 8.0] {
            assert!((tree.predict(x) - (-x).exp()).abs() < 0.05);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = RegressionTree::fit(&[1.0, 2.0], &[1.0], TreeConfig::default());
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_input_panics() {
        let _ = RegressionTree::fit(&[], &[], TreeConfig::default());
    }
}
