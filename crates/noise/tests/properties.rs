//! Property-based tests for the regression stack and statistics.

use proptest::prelude::*;
use youtiao_noise::forest::{RandomForest, RandomForestConfig};
use youtiao_noise::stats::{js_divergence, js_divergence_of_samples, mse, Histogram};
use youtiao_noise::tree::{RegressionTree, TreeConfig};

fn finite_xy(n: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (
        proptest::collection::vec(-100.0f64..100.0, n..=n),
        proptest::collection::vec(-100.0f64..100.0, n..=n),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tree predictions never leave the convex hull of the training
    /// targets (each leaf predicts a mean).
    #[test]
    fn tree_predictions_bounded((xs, ys) in finite_xy(24), probe in -200.0f64..200.0) {
        let tree = RegressionTree::fit(&xs, &ys, TreeConfig::default());
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let p = tree.predict(probe);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
    }

    /// Forest predictions are likewise bounded (means of tree means).
    #[test]
    fn forest_predictions_bounded((xs, ys) in finite_xy(16), probe in -200.0f64..200.0) {
        let config = RandomForestConfig { num_trees: 5, ..Default::default() };
        let forest = RandomForest::fit(&xs, &ys, config);
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let p = forest.predict(probe);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
    }

    /// A tree with unlimited depth interpolates distinct training points
    /// exactly.
    #[test]
    fn deep_tree_interpolates(ys in proptest::collection::vec(-10.0f64..10.0, 8)) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let cfg = TreeConfig { max_depth: 32, min_samples_split: 2 };
        let tree = RegressionTree::fit(&xs, &ys, cfg);
        for (x, y) in xs.iter().zip(&ys) {
            prop_assert!((tree.predict(*x) - y).abs() < 1e-9);
        }
    }

    /// MSE is non-negative and zero only for identical vectors.
    #[test]
    fn mse_properties((a, b) in finite_xy(12)) {
        prop_assert!(mse(&a, &b) >= 0.0);
        prop_assert_eq!(mse(&a, &a), 0.0);
    }

    /// Histograms are normalized probability vectors.
    #[test]
    fn histogram_normalizes(values in proptest::collection::vec(-5.0f64..5.0, 1..60), bins in 1usize..20) {
        let h = Histogram::build(&values, -5.0, 5.0, bins);
        let sum: f64 = h.probabilities().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(h.probabilities().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    /// JS divergence is symmetric and bounded in [0, 1] bits.
    #[test]
    fn js_divergence_bounds(raw_p in proptest::collection::vec(0.01f64..1.0, 6), raw_q in proptest::collection::vec(0.01f64..1.0, 6)) {
        let norm = |v: &[f64]| -> Vec<f64> {
            let s: f64 = v.iter().sum();
            v.iter().map(|x| x / s).collect()
        };
        let p = norm(&raw_p);
        let q = norm(&raw_q);
        let d = js_divergence(&p, &q);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&d));
        prop_assert!((d - js_divergence(&q, &p)).abs() < 1e-12);
        prop_assert!(js_divergence(&p, &p).abs() < 1e-12);
    }

    /// Sample-level JS of a distribution with itself is zero.
    #[test]
    fn js_samples_self_zero(values in proptest::collection::vec(-3.0f64..3.0, 2..40)) {
        prop_assert!(js_divergence_of_samples(&values, &values, 8) < 1e-12);
    }
}
