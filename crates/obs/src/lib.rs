//! Observability for the YOUTIAO design flow.
//!
//! Two complementary tools for answering "what did the pipeline do, and
//! was the result sound?":
//!
//! * [`trace`] — a thread-safe span tracer. Each pipeline stage opens a
//!   [`Tracer::span`] guard that records wall time, counters, and
//!   key/value annotations into a per-job trace tree, serializable to
//!   JSON for offline analysis (`youtiao batch --trace-json`).
//! * [`validate`] — a wiring-plan invariant checker.
//!   [`validate::check_plan`] asserts that groups form a legal
//!   partition of the chip's devices, every group respects its channel
//!   capacity and activity budget, frequency assignments respect zone
//!   bounds and collision spacing, and routed nets pass DRC.
//!
//! The crate sits above `youtiao-core` and `youtiao-route` and below
//! the flow/serve layers, so every stage boundary can be instrumented
//! without the planner depending on observability machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod trace;
pub mod validate;

pub use trace::{Span, Trace, TraceSpan, Tracer};
pub use validate::{
    check_frequencies, check_multi_plan, check_plan, check_plan_with_activity, check_routing,
    check_tdm_groups, ValidationReport, Violation,
};
