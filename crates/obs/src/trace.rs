//! Thread-safe per-job span tracing.
//!
//! A [`Tracer`] records a tree of named spans for one job. Opening a
//! span returns a [`Span`] guard; the span's wall time runs until the
//! guard drops, and spans opened while a guard is alive become its
//! children. Guards also accept key/value annotations and additive
//! counters, so a stage can report *what* it did ("removed 3 Z lines")
//! next to *how long* it took.
//!
//! Tracers are cheap to clone (the clones share state behind an
//! `Arc<Mutex<_>>`) and a [`Tracer::disabled`] tracer makes every
//! operation a no-op, so instrumented code pays nothing when tracing is
//! off. [`Tracer::finish`] freezes the recording into a serializable
//! [`Trace`] tree — the JSON the `youtiao batch --trace-json` file is
//! made of.
//!
//! The span *stack* is shared, not thread-local: a tracer is meant to
//! follow one job through its pipeline (possibly across the pool's
//! retry attempts), not to interleave spans from concurrently running
//! jobs — each job gets its own tracer.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Map, Serialize as _, Value};

/// One finished span: name, wall time, annotations, children.
///
/// The `spans` field nests recursively, mirroring the guard nesting at
/// record time.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TraceSpan {
    /// Span name (a pipeline stage, e.g. `"tdm_grouping"`).
    pub name: String,
    /// Wall time between the guard's creation and drop, milliseconds.
    pub ms: f64,
    /// Key/value annotations recorded while the span was open.
    pub annotations: Value,
    /// Spans opened while this one was open.
    pub spans: Vec<TraceSpan>,
}

impl TraceSpan {
    /// Depth-first search for the first span with `name` in this
    /// subtree (self included).
    pub fn find(&self, name: &str) -> Option<&TraceSpan> {
        if self.name == name {
            return Some(self);
        }
        self.spans.iter().find_map(|s| s.find(name))
    }
}

/// A finished per-job trace: the serializable output of a [`Tracer`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Trace {
    /// The job this trace belongs to.
    pub job: String,
    /// Wall time from tracer creation to [`Tracer::finish`], milliseconds.
    pub total_ms: f64,
    /// Root-level annotations (e.g. queue wait, attempt count).
    pub annotations: Value,
    /// Top-level spans in open order.
    pub spans: Vec<TraceSpan>,
}

impl Trace {
    /// Depth-first search for the first span named `name`.
    pub fn find(&self, name: &str) -> Option<&TraceSpan> {
        self.spans.iter().find_map(|s| s.find(name))
    }

    /// Every `(name, ms)` pair in the tree, depth-first — the flat view
    /// metrics aggregation consumes.
    pub fn flatten(&self) -> Vec<(&str, f64)> {
        fn walk<'t>(spans: &'t [TraceSpan], out: &mut Vec<(&'t str, f64)>) {
            for s in spans {
                out.push((s.name.as_str(), s.ms));
                walk(&s.spans, out);
            }
        }
        let mut out = Vec::new();
        walk(&self.spans, &mut out);
        out
    }
}

/// In-progress span state, addressed by index into the node arena.
struct Node {
    name: &'static str,
    started: Instant,
    ms: Option<f64>,
    annotations: Map,
    children: Vec<usize>,
}

struct Inner {
    job: String,
    started: Instant,
    nodes: Vec<Node>,
    /// Top-level node indices.
    roots: Vec<usize>,
    /// Indices of currently open spans, innermost last.
    stack: Vec<usize>,
    annotations: Map,
}

/// Records a span tree for one job. See the module docs.
///
/// # Example
///
/// ```
/// use youtiao_obs::trace::Tracer;
///
/// let tracer = Tracer::new("job-0");
/// {
///     let span = tracer.span("plan");
///     span.annotate("z_lines", 12u64);
///     let _inner = tracer.span("tdm_grouping");
/// } // both spans close here
/// let trace = tracer.finish();
/// assert_eq!(trace.spans.len(), 1);
/// assert_eq!(trace.spans[0].spans[0].name, "tdm_grouping");
/// ```
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => {
                let inner = inner.lock().expect("tracer lock");
                write!(f, "Tracer({:?}, {} spans)", inner.job, inner.nodes.len())
            }
            None => f.write_str("Tracer(disabled)"),
        }
    }
}

impl Tracer {
    /// A live tracer for `job`.
    pub fn new(job: impl Into<String>) -> Self {
        Tracer {
            inner: Some(Arc::new(Mutex::new(Inner {
                job: job.into(),
                started: Instant::now(),
                nodes: Vec::new(),
                roots: Vec::new(),
                stack: Vec::new(),
                annotations: Map::new(),
            }))),
        }
    }

    /// A tracer whose every operation is a no-op; [`finish`](Self::finish)
    /// returns `None` through [`try_finish`](Self::try_finish).
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span; it closes (recording its wall time) when the
    /// returned guard drops. Spans opened before the guard drops become
    /// its children.
    pub fn span(&self, name: &'static str) -> Span {
        let index = self.inner.as_ref().map(|inner| {
            let mut inner = inner.lock().expect("tracer lock");
            let index = inner.nodes.len();
            inner.nodes.push(Node {
                name,
                started: Instant::now(),
                ms: None,
                annotations: Map::new(),
                children: Vec::new(),
            });
            match inner.stack.last().copied() {
                Some(parent) => inner.nodes[parent].children.push(index),
                None => inner.roots.push(index),
            }
            inner.stack.push(index);
            index
        });
        Span {
            tracer: self.clone(),
            index,
        }
    }

    /// Records an already-measured child span (name + wall time) under
    /// the currently open span, without opening a guard. This grafts
    /// externally timed sub-stages — e.g. the planner's timing hook —
    /// into the tree at the right nesting level.
    pub fn record(&self, name: &'static str, elapsed: std::time::Duration) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.lock().expect("tracer lock");
            let index = inner.nodes.len();
            inner.nodes.push(Node {
                name,
                started: Instant::now(),
                ms: Some(elapsed.as_secs_f64() * 1e3),
                annotations: Map::new(),
                children: Vec::new(),
            });
            match inner.stack.last().copied() {
                Some(parent) => inner.nodes[parent].children.push(index),
                None => inner.roots.push(index),
            }
        }
    }

    /// Records an instantaneous zero-width event span with a `detail`
    /// annotation under the currently open span — point-in-time markers
    /// such as injected faults, which have no duration of their own but
    /// belong at a precise place in the span tree.
    pub fn event(&self, name: &'static str, detail: impl Into<String>) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.lock().expect("tracer lock");
            let index = inner.nodes.len();
            let mut annotations = Map::new();
            annotations.insert("detail".into(), detail.into().to_value());
            inner.nodes.push(Node {
                name,
                started: Instant::now(),
                ms: Some(0.0),
                annotations,
                children: Vec::new(),
            });
            match inner.stack.last().copied() {
                Some(parent) => inner.nodes[parent].children.push(index),
                None => inner.roots.push(index),
            }
        }
    }

    /// Records a root-level key/value annotation.
    pub fn annotate(&self, key: impl Into<String>, value: impl serde::Serialize) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.lock().expect("tracer lock");
            inner.annotations.insert(key.into(), value.to_value());
        }
    }

    /// Adds `n` to a root-level counter annotation.
    pub fn count(&self, key: &str, n: u64) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.lock().expect("tracer lock");
            let prev = inner
                .annotations
                .get(key)
                .and_then(Value::as_u64)
                .unwrap_or(0);
            inner
                .annotations
                .insert(key.to_string(), (prev + n).to_value());
        }
    }

    /// Freezes the recording into a [`Trace`], or `None` for a disabled
    /// tracer. Still-open spans are closed as of now.
    pub fn try_finish(&self) -> Option<Trace> {
        let inner = self.inner.as_ref()?;
        let mut inner = inner.lock().expect("tracer lock");
        let now = Instant::now();
        while let Some(open) = inner.stack.pop() {
            let elapsed = now.duration_since(inner.nodes[open].started);
            inner.nodes[open].ms = Some(elapsed.as_secs_f64() * 1e3);
        }
        fn build(nodes: &[Node], index: usize) -> TraceSpan {
            let node = &nodes[index];
            TraceSpan {
                name: node.name.to_string(),
                ms: node.ms.unwrap_or(0.0),
                annotations: Value::Object(node.annotations.clone()),
                spans: node.children.iter().map(|&c| build(nodes, c)).collect(),
            }
        }
        Some(Trace {
            job: inner.job.clone(),
            total_ms: now.duration_since(inner.started).as_secs_f64() * 1e3,
            annotations: Value::Object(inner.annotations.clone()),
            spans: inner
                .roots
                .iter()
                .map(|&r| build(&inner.nodes, r))
                .collect(),
        })
    }

    /// [`try_finish`](Self::try_finish), panicking on a disabled tracer.
    ///
    /// # Panics
    ///
    /// Panics if the tracer is disabled.
    pub fn finish(&self) -> Trace {
        self.try_finish().expect("finish() on a disabled tracer")
    }
}

/// An open span; dropping it records the span's wall time.
#[must_use = "a span measures until dropped; binding it to `_` closes it immediately"]
pub struct Span {
    tracer: Tracer,
    index: Option<usize>,
}

impl Span {
    /// Records a key/value annotation on this span.
    pub fn annotate(&self, key: impl Into<String>, value: impl serde::Serialize) {
        if let (Some(inner), Some(index)) = (&self.tracer.inner, self.index) {
            let mut inner = inner.lock().expect("tracer lock");
            inner.nodes[index]
                .annotations
                .insert(key.into(), value.to_value());
        }
    }

    /// Adds `n` to a counter annotation on this span.
    pub fn count(&self, key: &str, n: u64) {
        if let (Some(inner), Some(index)) = (&self.tracer.inner, self.index) {
            let mut inner = inner.lock().expect("tracer lock");
            let prev = inner.nodes[index]
                .annotations
                .get(key)
                .and_then(Value::as_u64)
                .unwrap_or(0);
            inner.nodes[index]
                .annotations
                .insert(key.to_string(), (prev + n).to_value());
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let (Some(inner), Some(index)) = (&self.tracer.inner, self.index) {
            let mut inner = inner.lock().expect("tracer lock");
            if inner.nodes[index].ms.is_none() {
                let elapsed = inner.nodes[index].started.elapsed();
                inner.nodes[index].ms = Some(elapsed.as_secs_f64() * 1e3);
            }
            // Close this span and everything opened inside it that is
            // still open (a guard leaked past its children).
            if let Some(at) = inner.stack.iter().rposition(|&i| i == index) {
                inner.stack.truncate(at);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_time() {
        let tracer = Tracer::new("j");
        {
            let outer = tracer.span("outer");
            outer.annotate("k", "v");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let inner = tracer.span("inner");
                inner.count("widgets", 2);
                inner.count("widgets", 3);
            }
        }
        let _top = tracer.span("second");
        drop(_top);
        let trace = tracer.finish();
        assert_eq!(trace.job, "j");
        assert_eq!(trace.spans.len(), 2);
        let outer = &trace.spans[0];
        assert_eq!(outer.name, "outer");
        assert!(outer.ms >= 2.0, "outer took {} ms", outer.ms);
        assert_eq!(outer.annotations["k"], "v");
        assert_eq!(outer.spans.len(), 1);
        assert_eq!(outer.spans[0].annotations["widgets"], 5u64);
        assert!(outer.ms >= outer.spans[0].ms);
        assert!(trace.total_ms >= outer.ms);
    }

    #[test]
    fn disabled_tracer_is_a_noop() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        let span = tracer.span("x");
        span.annotate("a", 1u64);
        drop(span);
        tracer.annotate("b", 2u64);
        assert!(tracer.try_finish().is_none());
    }

    #[test]
    fn finish_closes_open_spans() {
        let tracer = Tracer::new("open");
        let _span = tracer.span("never-dropped");
        let trace = tracer.finish();
        assert_eq!(trace.spans.len(), 1);
        assert!(trace.spans[0].ms >= 0.0);
    }

    #[test]
    fn clones_share_the_tree() {
        let tracer = Tracer::new("shared");
        let clone = tracer.clone();
        drop(clone.span("from-clone"));
        let trace = tracer.finish();
        assert_eq!(trace.spans[0].name, "from-clone");
    }

    #[test]
    fn trace_roundtrips_through_json() {
        let tracer = Tracer::new("rt");
        {
            let s = tracer.span("a");
            s.annotate("n", 3u64);
            drop(tracer.span("b"));
        }
        tracer.annotate("root", true);
        let trace = tracer.finish();
        let json = serde_json::to_string(&trace).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.find("b").unwrap().name, "b");
        let flat = back.flatten();
        assert_eq!(
            flat.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
    }

    #[test]
    fn record_grafts_a_finished_child_span() {
        let tracer = Tracer::new("rec");
        {
            let _plan = tracer.span("plan");
            tracer.record("tdm_grouping", std::time::Duration::from_millis(7));
        }
        tracer.record("at-root", std::time::Duration::from_micros(250));
        let trace = tracer.finish();
        let child = &trace.spans[0].spans[0];
        assert_eq!(child.name, "tdm_grouping");
        assert!((child.ms - 7.0).abs() < 1e-9);
        assert_eq!(trace.spans[1].name, "at-root");
        assert!((trace.spans[1].ms - 0.25).abs() < 1e-9);

        // A disabled tracer ignores record() too.
        Tracer::disabled().record("x", std::time::Duration::ZERO);
    }

    #[test]
    fn event_records_a_zero_width_annotated_marker() {
        let tracer = Tracer::new("ev");
        {
            let _attempt = tracer.span("attempt");
            tracer.event("fault", "injected transient error (attempt 0)");
        }
        let trace = tracer.finish();
        let fault = trace.find("fault").unwrap();
        assert_eq!(fault.ms, 0.0);
        assert_eq!(
            fault.annotations["detail"],
            "injected transient error (attempt 0)"
        );
        // Nested under the open span, not at the root.
        assert_eq!(trace.spans[0].spans[0].name, "fault");

        // A disabled tracer ignores events.
        Tracer::disabled().event("fault", "x");
    }

    #[test]
    fn concurrent_annotation_is_safe() {
        let tracer = Tracer::new("mt");
        let span = tracer.span("work");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = tracer.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        t.count("ticks", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(span);
        let trace = tracer.finish();
        assert_eq!(trace.annotations["ticks"], 400u64);
    }
}
