//! Wiring-plan invariant validation.
//!
//! Every pipeline stage must hand the next stage a plan that still
//! satisfies the structural invariants the paper's cost and latency
//! claims rest on. [`check_plan`] asserts them all:
//!
//! * **grouping** — FDM lines, TDM groups, and readout feedlines each
//!   form a legal partition of their device population (every device on
//!   exactly one line), no group exceeds its channel capacity
//!   ([`DemuxLevel::channel_capacity`](youtiao_core::DemuxLevel::channel_capacity),
//!   the FDM/readout capacities), TDM members are pairwise legal (no CZ
//!   gate ever needs two of them at once), and no group serializes more
//!   than [`TdmConfig::max_shared_slots`] extra windows under the
//!   workload activity profile;
//! * **frequencies** — every assignment lies inside the configured band
//!   and inside its zone, and (in design-time allocation) line members
//!   occupy distinct zones with at least one cell of spacing;
//! * **routing** — [`check_routing`] confirms the routed netlist covers
//!   every line, respects channel track capacities, and passes DRC.
//!
//! Checks report [`Violation`]s instead of panicking, so a validator
//! failure surfaces as a structured job error rather than a crash.

use std::collections::HashMap;
use std::fmt::Write as _;

use youtiao_chip::multi::MultiDieChip;
use youtiao_chip::{Chip, DeviceId, QubitId};
use youtiao_core::fdm::FdmLine;
use youtiao_core::freq::{FreqConfig, FrequencyPlan};
use youtiao_core::plan::{PlannerConfig, WiringPlan};
use youtiao_core::tdm::{
    brickwork_activity, group_extra_windows, legal_pair, ActivityProfile, TdmConfig, TdmGroup,
};
use youtiao_route::channel::ChannelResult;

/// Frequency comparisons tolerate accumulated float error of this size
/// (GHz); real violations are at least one 10 MHz cell.
const EPS_GHZ: f64 = 1e-9;

/// One violated invariant.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Violation {
    /// Stable kebab-case rule id, e.g. `"tdm-budget"`.
    pub rule: String,
    /// Human-readable description of the specific failure.
    pub message: String,
}

/// The outcome of a validation run: the list of violated invariants
/// (empty when the plan is sound).
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct ValidationReport {
    /// Every violation found, in check order.
    pub violations: Vec<Violation>,
}

impl ValidationReport {
    /// `true` when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of violations found.
    pub fn len(&self) -> usize {
        self.violations.len()
    }

    /// `true` when no violations were recorded (alias of
    /// [`is_clean`](Self::is_clean) for collection-style callers).
    pub fn is_empty(&self) -> bool {
        self.violations.is_empty()
    }

    /// Appends all violations of `other`.
    pub fn merge(&mut self, other: ValidationReport) {
        self.violations.extend(other.violations);
    }

    /// Records one violation.
    pub fn push(&mut self, rule: &str, message: String) {
        self.violations.push(Violation {
            rule: rule.to_string(),
            message,
        });
    }

    /// Multi-line human-readable summary.
    pub fn render(&self) -> String {
        if self.violations.is_empty() {
            return "plan OK: all invariants hold".to_string();
        }
        let mut out = format!("{} invariant violation(s):", self.violations.len());
        for v in &self.violations {
            let _ = write!(out, "\n  [{}] {}", v.rule, v.message);
        }
        out
    }
}

/// Validates every invariant of `plan` against `chip` and the
/// configuration that produced it, using the topology-derived brickwork
/// activity profile (what the planner defaults to when no workload
/// profile is supplied).
pub fn check_plan(chip: &Chip, plan: &WiringPlan, config: &PlannerConfig) -> ValidationReport {
    check_plan_with_activity(chip, plan, config, &brickwork_activity(chip))
}

/// [`check_plan`] under an explicit workload [`ActivityProfile`] (use
/// this when the plan was built with
/// [`YoutiaoPlanner::with_activity`](youtiao_core::YoutiaoPlanner::with_activity)).
pub fn check_plan_with_activity(
    chip: &Chip,
    plan: &WiringPlan,
    config: &PlannerConfig,
    activity: &ActivityProfile,
) -> ValidationReport {
    let mut report = ValidationReport::default();
    report.merge(check_fdm_lines(chip, plan.fdm_lines(), config.fdm_capacity));
    report.merge(check_tdm_groups(
        chip,
        plan.tdm_groups(),
        &config.tdm,
        activity,
    ));
    report.merge(check_readout_lines(
        chip,
        plan.readout_lines(),
        config.readout_capacity,
    ));
    report.merge(check_frequencies(
        chip,
        plan.frequency_plan(),
        plan.fdm_lines(),
        &config.freq,
        "xy",
    ));
    let readout_as_lines: Vec<FdmLine> = plan
        .readout_lines()
        .iter()
        .cloned()
        .map(FdmLine::new)
        .collect();
    report.merge(check_frequencies(
        chip,
        plan.readout_frequency_plan(),
        &readout_as_lines,
        &config.readout_freq,
        "readout",
    ));
    report
}

/// Validates a multi-die chiplet plan: every per-die plan passes
/// [`check_plan`] (violations prefixed `die {i}:`), plus the cross-die
/// invariants the stitched cryostat plan adds:
///
/// * **link-zone** — inter-chiplet link endpoints must not share a
///   frequency zone (the zoned band-pass filtering that suppresses
///   same-line crosstalk also governs linked qubits on facing dies);
/// * **link-spacing** — link endpoints keep at least one cell of
///   spectral spacing, like same-line neighbours;
/// * **die-budget** — when a [`BudgetPartition`] allowance split is
///   supplied, each die's coax requirement fits its allowance.
///
/// Link checks mirror [`check_frequencies`] semantics per band: a band
/// under a tuning-range constraint (post-fabrication retune) skips
/// them, and zones are only comparable when both dies use the same zone
/// count.
///
/// [`BudgetPartition`]: youtiao_core::BudgetPartition
pub fn check_multi_plan(
    mdc: &MultiDieChip,
    plans: &[&WiringPlan],
    config: &PlannerConfig,
    allowances: Option<&[usize]>,
) -> ValidationReport {
    let mut report = ValidationReport::default();
    if plans.len() != mdc.num_dies() {
        report.push(
            "die-coverage",
            format!(
                "{} die plan(s) supplied for a {}-die array",
                plans.len(),
                mdc.num_dies()
            ),
        );
        return report;
    }

    for (i, (chip, plan)) in mdc.dies().iter().zip(plans).enumerate() {
        let die_report = check_plan(chip, plan, config);
        for v in die_report.violations {
            report.push(&v.rule, format!("die {i}: {}", v.message));
        }
    }

    for (label, freq, get) in [
        (
            "xy",
            &config.freq,
            (|p: &WiringPlan| p.frequency_plan()) as fn(&WiringPlan) -> &FrequencyPlan,
        ),
        (
            "readout",
            &config.readout_freq,
            (|p: &WiringPlan| p.readout_frequency_plan()) as fn(&WiringPlan) -> &FrequencyPlan,
        ),
    ] {
        if freq.tuning_range_ghz.is_some() {
            continue;
        }
        let min_spacing = freq.cell_mhz / 1000.0 - EPS_GHZ;
        for link in mdc.links() {
            let (pa, pb) = (get(plans[link.a.0.index()]), get(plans[link.b.0.index()]));
            let (qa, qb) = (link.a.1, link.b.1);
            if pa.zones() == pb.zones() && pa.zone_of(qa) == pb.zone_of(qb) {
                report.push(
                    "link-zone",
                    format!(
                        "{label}: link {}:{qa} -> {}:{qb} endpoints share zone {}",
                        link.a.0,
                        link.b.0,
                        pa.zone_of(qa)
                    ),
                );
            }
            let df = (pa.frequency_ghz(qa) - pb.frequency_ghz(qb)).abs();
            if df < min_spacing {
                report.push(
                    "link-spacing",
                    format!(
                        "{label}: link {}:{qa} -> {}:{qb} endpoints are {:.1} MHz apart (< {} MHz cell)",
                        link.a.0,
                        link.b.0,
                        df * 1000.0,
                        freq.cell_mhz
                    ),
                );
            }
        }
    }

    if let Some(allowances) = allowances {
        if allowances.len() != plans.len() {
            report.push(
                "die-budget",
                format!(
                    "{} allowance(s) supplied for {} die(s)",
                    allowances.len(),
                    plans.len()
                ),
            );
        }
        for (i, (plan, &allowance)) in plans.iter().zip(allowances).enumerate() {
            let required = plan.num_xy_lines() + plan.num_z_lines() + plan.num_readout_lines();
            if required > allowance {
                report.push(
                    "die-budget",
                    format!(
                        "die {i} requires {required} coax lines but its cryostat allowance is {allowance}"
                    ),
                );
            }
        }
    }

    report
}

/// TDM grouping invariants: groups partition the chip's Z-controlled
/// devices exactly, respect DEMUX channel capacity, contain only
/// pairwise-legal members, and stay within the activity budget.
pub fn check_tdm_groups(
    chip: &Chip,
    groups: &[TdmGroup],
    tdm: &TdmConfig,
    activity: &ActivityProfile,
) -> ValidationReport {
    let mut report = ValidationReport::default();

    let mut seen: HashMap<DeviceId, usize> = HashMap::new();
    for g in groups {
        for &d in g.devices() {
            *seen.entry(d).or_insert(0) += 1;
        }
    }
    let mut missing = 0usize;
    for d in chip.device_ids() {
        match seen.remove(&d) {
            None => missing += 1,
            Some(1) => {}
            Some(n) => report.push(
                "tdm-coverage",
                format!("device {d:?} appears on {n} Z lines (expected exactly 1)"),
            ),
        }
    }
    if missing > 0 {
        report.push(
            "tdm-coverage",
            format!("{missing} Z-controlled device(s) are on no Z line"),
        );
    }
    for (d, _) in seen {
        report.push(
            "tdm-coverage",
            format!("grouped device {d:?} does not exist on the chip"),
        );
    }

    for (i, g) in groups.iter().enumerate() {
        let capacity = g.level().channel_capacity();
        if g.len() > capacity {
            report.push(
                "tdm-capacity",
                format!(
                    "group {i} holds {} devices but its {:?} DEMUX has {capacity} channels",
                    g.len(),
                    g.level()
                ),
            );
        }
        let ds = g.devices();
        for (a, &x) in ds.iter().enumerate() {
            for &y in &ds[a + 1..] {
                if !legal_pair(chip, x, y) {
                    report.push(
                        "tdm-legality",
                        format!(
                            "group {i} shares a DEMUX between co-gated devices {x:?} and {y:?}"
                        ),
                    );
                }
            }
        }
        let extra = group_extra_windows(ds, activity);
        if extra > tdm.max_shared_slots {
            report.push(
                "tdm-budget",
                format!(
                    "group {i} serializes {extra} extra window(s), budget is {}",
                    tdm.max_shared_slots
                ),
            );
        }
    }
    report
}

/// FDM invariants: XY lines partition the chip's qubits exactly and no
/// line exceeds the FDM capacity.
pub fn check_fdm_lines(chip: &Chip, lines: &[FdmLine], capacity: usize) -> ValidationReport {
    let mut report = ValidationReport::default();
    check_qubit_partition(
        chip,
        lines.iter().map(FdmLine::qubits),
        "fdm-coverage",
        "XY line",
        &mut report,
    );
    for (i, line) in lines.iter().enumerate() {
        if line.len() > capacity {
            report.push(
                "fdm-capacity",
                format!(
                    "XY line {i} carries {} qubits, capacity is {capacity}",
                    line.len()
                ),
            );
        }
    }
    report
}

/// Readout invariants: feedlines partition the chip's qubits exactly
/// and no feedline exceeds the readout capacity.
pub fn check_readout_lines(
    chip: &Chip,
    lines: &[Vec<QubitId>],
    capacity: usize,
) -> ValidationReport {
    let mut report = ValidationReport::default();
    check_qubit_partition(
        chip,
        lines.iter().map(Vec::as_slice),
        "readout-coverage",
        "readout feedline",
        &mut report,
    );
    for (i, line) in lines.iter().enumerate() {
        if line.len() > capacity {
            report.push(
                "readout-capacity",
                format!(
                    "readout feedline {i} carries {} qubits, capacity is {capacity}",
                    line.len()
                ),
            );
        }
    }
    report
}

fn check_qubit_partition<'l>(
    chip: &Chip,
    lines: impl Iterator<Item = &'l [QubitId]>,
    rule: &str,
    what: &str,
    report: &mut ValidationReport,
) {
    let mut seen: HashMap<QubitId, usize> = HashMap::new();
    for line in lines {
        for &q in line {
            *seen.entry(q).or_insert(0) += 1;
        }
    }
    let mut missing = 0usize;
    for q in chip.qubit_ids() {
        match seen.remove(&q) {
            None => missing += 1,
            Some(1) => {}
            Some(n) => report.push(rule, format!("qubit {q} appears on {n} {what}s")),
        }
    }
    if missing > 0 {
        report.push(rule, format!("{missing} qubit(s) are on no {what}"));
    }
    for (q, _) in seen {
        report.push(
            rule,
            format!("{what} member {q} does not exist on the chip"),
        );
    }
}

/// Frequency invariants for one band (`label` is `"xy"` or
/// `"readout"`): every assignment lies inside the band and inside its
/// zone; in design-time allocation (no tuning-range constraint), line
/// members additionally occupy pairwise-distinct zones and keep at
/// least one cell of spectral spacing — the §4.2 level-1 guarantee the
/// cryogenic band-pass filters rely on.
pub fn check_frequencies(
    chip: &Chip,
    plan: &FrequencyPlan,
    lines: &[FdmLine],
    freq: &FreqConfig,
    label: &str,
) -> ValidationReport {
    let mut report = ValidationReport::default();
    let (lo, hi) = freq.band_ghz;
    let zones = plan.zones().max(1);
    let zone_width = (hi - lo) / zones as f64;

    for q in chip.qubit_ids() {
        let f = plan.frequency_ghz(q);
        if !(f >= lo - EPS_GHZ && f <= hi + EPS_GHZ) {
            report.push(
                "freq-band",
                format!("{label}: qubit {q} at {f} GHz is outside the {lo}-{hi} GHz band"),
            );
            continue;
        }
        let z = plan.zone_of(q);
        if z >= zones {
            report.push(
                "freq-zone",
                format!("{label}: qubit {q} assigned zone {z} of {zones}"),
            );
            continue;
        }
        let z_lo = lo + z as f64 * zone_width;
        let z_hi = z_lo + zone_width;
        if f < z_lo - EPS_GHZ || f > z_hi + EPS_GHZ {
            report.push(
                "freq-zone",
                format!("{label}: qubit {q} at {f} GHz lies outside its zone {z} ({z_lo:.3}-{z_hi:.3} GHz)"),
            );
        }
    }

    // Level-1 separation only holds for design-time allocation; a
    // post-fabrication retune is pinned near each base frequency and
    // may legitimately collide in-line.
    if freq.tuning_range_ghz.is_none() {
        let min_spacing = freq.cell_mhz / 1000.0 - EPS_GHZ;
        for (i, line) in lines.iter().enumerate() {
            let qs = line.qubits();
            for (a, &qa) in qs.iter().enumerate() {
                for &qb in &qs[a + 1..] {
                    if line.len() <= zones && plan.zone_of(qa) == plan.zone_of(qb) {
                        report.push(
                            "freq-zone",
                            format!(
                                "{label}: line {i} members {qa} and {qb} share zone {}",
                                plan.zone_of(qa)
                            ),
                        );
                    }
                    let df = (plan.frequency_ghz(qa) - plan.frequency_ghz(qb)).abs();
                    if df < min_spacing {
                        report.push(
                            "freq-spacing",
                            format!(
                                "{label}: line {i} members {qa} and {qb} are {:.1} MHz apart (< {} MHz cell)",
                                df * 1000.0,
                                freq.cell_mhz
                            ),
                        );
                    }
                }
            }
        }
    }
    report
}

/// Routing invariants: the routed netlist covers every planned line,
/// no channel exceeds its track capacity, and the layout is DRC-clean.
pub fn check_routing(plan: &WiringPlan, result: &ChannelResult) -> ValidationReport {
    let mut report = ValidationReport::default();
    let expected = plan.num_xy_lines() + plan.num_z_lines() + plan.num_readout_lines();
    let routed = result.routing.nets.len();
    if routed != expected {
        report.push(
            "route-nets",
            format!("routed {routed} nets but the plan has {expected} lines"),
        );
    }
    for ch in &result.channels {
        if ch.used > ch.capacity {
            report.push(
                "route-channel",
                format!(
                    "channel at y={:.2} mm assigned {} runs over a {}-track capacity",
                    ch.y_mm, ch.used, ch.capacity
                ),
            );
        }
    }
    if !result.routing.drc.is_clean() {
        let v = result.routing.drc.violations();
        report.push(
            "route-drc",
            format!(
                "{} DRC violation(s), first between nets {} and {}",
                v.len(),
                v[0].net_a,
                v[0].net_b
            ),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtiao_chip::topology;
    use youtiao_core::tdm::DemuxLevel;
    use youtiao_core::YoutiaoPlanner;

    #[test]
    fn default_plan_is_clean() {
        let chip = topology::square_grid(4, 4);
        let plan = YoutiaoPlanner::new(&chip).plan().unwrap();
        let report = check_plan(&chip, &plan, &PlannerConfig::default());
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn refined_plan_is_clean() {
        let chip = topology::square_grid(5, 5);
        let config = PlannerConfig {
            refine: Some(youtiao_core::RefineConfig::default()),
            ..Default::default()
        };
        let plan = YoutiaoPlanner::new(&chip)
            .with_config(config.clone())
            .plan()
            .unwrap();
        let report = check_plan(&chip, &plan, &config);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn partitioned_plan_is_clean() {
        let chip = topology::square_grid(6, 6);
        let config = PlannerConfig {
            partition: Some(youtiao_core::PartitionConfig::default()),
            ..Default::default()
        };
        let plan = YoutiaoPlanner::new(&chip)
            .with_config(config.clone())
            .plan()
            .unwrap();
        let report = check_plan(&chip, &plan, &config);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn missing_and_illegal_groups_flagged() {
        let chip = topology::linear(3);
        // q0 and q1 are adjacent (share a gate) and everything else is
        // ungrouped.
        let groups = vec![TdmGroup::new(
            DemuxLevel::OneToTwo,
            vec![DeviceId::Qubit(0u32.into()), DeviceId::Qubit(1u32.into())],
        )];
        let report = check_tdm_groups(
            &chip,
            &groups,
            &TdmConfig::default(),
            &ActivityProfile::new(),
        );
        let rules: Vec<&str> = report.violations.iter().map(|v| v.rule.as_str()).collect();
        assert!(rules.contains(&"tdm-coverage"), "{}", report.render());
        assert!(rules.contains(&"tdm-legality"), "{}", report.render());
    }

    #[test]
    fn budget_overrun_flagged() {
        let chip = topology::linear(5);
        let d = |i: u32| DeviceId::Qubit(i.into());
        // q0 and q2 are non-adjacent (legal) but busy in the same slot.
        let mut activity = ActivityProfile::new();
        activity.insert(d(0), 0b1);
        activity.insert(d(2), 0b1);
        let groups = vec![TdmGroup::new(DemuxLevel::OneToTwo, vec![d(0), d(2)])];
        let report = check_tdm_groups(
            &chip,
            &groups,
            &TdmConfig {
                max_shared_slots: 0,
                ..Default::default()
            },
            &activity,
        );
        assert!(
            report.violations.iter().any(|v| v.rule == "tdm-budget"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn out_of_band_frequency_flagged() {
        let chip = topology::linear(2);
        let lines = vec![FdmLine::new(vec![0u32.into(), 1u32.into()])];
        let plan = FrequencyPlan::from_frequencies(vec![4.5, 9.0], 2, vec![0, 1]);
        let report = check_frequencies(&chip, &plan, &lines, &FreqConfig::default(), "xy");
        assert!(
            report.violations.iter().any(|v| v.rule == "freq-band"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn in_line_zone_collision_flagged() {
        let chip = topology::linear(2);
        let lines = vec![FdmLine::new(vec![0u32.into(), 1u32.into()])];
        // Both qubits in zone 0 of 2, one cell apart: zone collision but
        // not a spacing violation.
        let plan = FrequencyPlan::from_frequencies(vec![4.105, 4.115], 2, vec![0, 0]);
        let report = check_frequencies(&chip, &plan, &lines, &FreqConfig::default(), "xy");
        let rules: Vec<&str> = report.violations.iter().map(|v| v.rule.as_str()).collect();
        assert!(rules.contains(&"freq-zone"), "{}", report.render());
        assert!(!rules.contains(&"freq-spacing"), "{}", report.render());
    }

    #[test]
    fn spacing_violation_flagged() {
        let chip = topology::linear(2);
        let lines = vec![FdmLine::new(vec![0u32.into(), 1u32.into()])];
        let plan = FrequencyPlan::from_frequencies(vec![4.105, 4.106], 2, vec![0, 0]);
        let report = check_frequencies(&chip, &plan, &lines, &FreqConfig::default(), "xy");
        assert!(
            report.violations.iter().any(|v| v.rule == "freq-spacing"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn retuning_mode_skips_level1_checks() {
        let chip = topology::linear(2);
        let lines = vec![FdmLine::new(vec![0u32.into(), 1u32.into()])];
        let plan = FrequencyPlan::from_frequencies(vec![4.105, 4.106], 2, vec![0, 0]);
        let report = check_frequencies(&chip, &plan, &lines, &FreqConfig::retuning(), "xy");
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn reconciled_multi_plan_is_clean() {
        use youtiao_chip::multi::LinkTopology;
        use youtiao_core::{plan_multi, MultiPlanConfig, ParallelExec};

        let die = topology::square_grid(4, 4);
        let mdc = MultiDieChip::tile(&die, 2, 2, LinkTopology::Grid).unwrap();
        let config = MultiPlanConfig::default();
        let outcome = plan_multi(&mdc, &config, &ParallelExec::serial()).unwrap();
        let report = check_multi_plan(&mdc, &outcome.plans(), &config.planner, None);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn unreconciled_identical_dies_flag_link_collisions() {
        use youtiao_chip::multi::DieId;
        use youtiao_chip::multi::InterDieLink;

        let die = topology::square_grid(4, 4);
        // A link between the *same* qubit id on two identical dies: with
        // identical plans both endpoints carry identical assignments, so
        // the link violates both zone and spacing rules.
        let mdc = MultiDieChip::from_dies(
            "collide",
            vec![die.clone(), die.clone()],
            vec![InterDieLink::new(
                (DieId::new(0), 0u32.into()),
                (DieId::new(1), 0u32.into()),
            )],
        )
        .unwrap();
        let config = PlannerConfig::default();
        let plan = YoutiaoPlanner::new(&die)
            .with_config(config.clone())
            .plan()
            .unwrap();
        let report = check_multi_plan(&mdc, &[&plan, &plan], &config, None);
        let rules: Vec<&str> = report.violations.iter().map(|v| v.rule.as_str()).collect();
        assert!(rules.contains(&"link-zone"), "{}", report.render());
        assert!(rules.contains(&"link-spacing"), "{}", report.render());
    }

    #[test]
    fn die_budget_overrun_flagged() {
        use youtiao_chip::multi::LinkTopology;
        use youtiao_core::{plan_multi, MultiPlanConfig, ParallelExec};

        let die = topology::square_grid(3, 3);
        let mdc = MultiDieChip::tile(&die, 1, 2, LinkTopology::Isolated).unwrap();
        let config = MultiPlanConfig::default();
        let outcome = plan_multi(&mdc, &config, &ParallelExec::serial()).unwrap();
        let plans = outcome.plans();
        // A 1-line allowance per die cannot cover XY + Z + readout.
        let report = check_multi_plan(&mdc, &plans, &config.planner, Some(&[1, 1]));
        assert!(
            report.violations.iter().all(|v| v.rule == "die-budget"),
            "{}",
            report.render()
        );
        assert_eq!(report.len(), 2, "{}", report.render());
        // A generous allowance is clean.
        let report = check_multi_plan(&mdc, &plans, &config.planner, Some(&[100, 100]));
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn die_count_mismatch_flagged() {
        use youtiao_chip::multi::LinkTopology;

        let die = topology::square_grid(3, 3);
        let mdc = MultiDieChip::tile(&die, 1, 2, LinkTopology::Grid).unwrap();
        let plan = YoutiaoPlanner::new(&die).plan().unwrap();
        let report = check_multi_plan(&mdc, &[&plan], &PlannerConfig::default(), None);
        assert_eq!(report.violations[0].rule, "die-coverage");
    }

    #[test]
    fn per_die_violations_are_prefixed() {
        use youtiao_chip::multi::LinkTopology;

        let die = topology::square_grid(3, 3);
        let mdc = MultiDieChip::tile(&die, 1, 2, LinkTopology::Isolated).unwrap();
        // Die 1's plan was built with a looser FDM capacity, so under
        // the default config only its violations appear — and they must
        // name die 1.
        let good = YoutiaoPlanner::new(&die).plan().unwrap();
        let bad = YoutiaoPlanner::new(&die)
            .with_config(PlannerConfig {
                fdm_capacity: 9,
                ..Default::default()
            })
            .plan()
            .unwrap();
        let report = check_multi_plan(&mdc, &[&good, &bad], &PlannerConfig::default(), None);
        assert!(!report.is_clean());
        assert!(
            report
                .violations
                .iter()
                .all(|v| v.message.starts_with("die 1:")),
            "{}",
            report.render()
        );
    }

    #[test]
    fn report_renders_and_roundtrips() {
        let mut report = ValidationReport::default();
        assert!(report.render().contains("OK"));
        report.push("tdm-budget", "group 3 over budget".to_string());
        assert!(!report.is_clean());
        assert_eq!(report.len(), 1);
        let text = report.render();
        assert!(text.contains("tdm-budget"));
        assert!(text.contains("group 3"));
        let json = serde_json::to_string(&report).unwrap();
        let back: ValidationReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
