//! Property tests: `refine_tdm_groups` must preserve every grouping
//! invariant `validate::check_tdm_groups` asserts, for arbitrary
//! square-grid chips and workload activity profiles.
//!
//! Gated behind the `proptest-tests` feature because the vendored
//! proptest is a resolution-only stub; run with a real proptest via
//! `cargo test -p youtiao-obs --features proptest-tests`.

use proptest::prelude::*;

use youtiao_chip::{topology, DistanceMatrix};
use youtiao_core::tdm::{group_tdm_with_activity, ActivityProfile};
use youtiao_core::{refine_tdm_groups, RefineConfig, TdmConfig};
use youtiao_obs::validate::check_tdm_groups;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn refined_groups_keep_invariants(
        rows in 2usize..6,
        cols in 2usize..6,
        budget in 0u32..4,
        passes in 1usize..4,
        masks in proptest::collection::vec(0u32..16, 0..128),
    ) {
        let chip = topology::square_grid(rows, cols);
        let mut activity = ActivityProfile::new();
        for (d, m) in chip.device_ids().zip(masks) {
            activity.insert(d, m);
        }
        let config = TdmConfig { max_shared_slots: budget, ..Default::default() };
        let xtalk = DistanceMatrix::zeros(chip.num_qubits());
        let devices: Vec<_> = chip.device_ids().collect();
        let groups = group_tdm_with_activity(&chip, &xtalk, &config, &devices, &activity);

        // The initial grouping must already be sound...
        let before = check_tdm_groups(&chip, &groups, &config, &activity);
        prop_assert!(before.is_clean(), "{}", before.render());

        // ...and refinement must not break anything while it optimizes.
        let refine = RefineConfig { passes };
        let (refined, _removed) =
            refine_tdm_groups(&chip, &xtalk, &activity, &config, groups, &refine);
        let after = check_tdm_groups(&chip, &refined, &config, &activity);
        prop_assert!(after.is_clean(), "{}", after.render());
    }
}
