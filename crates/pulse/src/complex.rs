//! Minimal complex arithmetic for the two-level integrator.
//!
//! Implemented in-crate (rather than pulling a numerics dependency) since
//! the integrator only needs +, ×, conjugation, modulus and `e^{iθ}`.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number in Cartesian form.
///
/// # Example
///
/// ```
/// use youtiao_pulse::Complex;
/// let i = Complex::I;
/// assert_eq!(i * i, -Complex::ONE);
/// assert!((Complex::from_polar(1.0, std::f64::consts::PI).re + 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates `r · e^{iθ}`.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared modulus `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplication by a real scalar.
    pub fn scale(self, s: f64) -> Self {
        Complex::new(self.re * s, self.im * s)
    }
}

impl Add for Complex {
    type Output = Complex;

    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;

    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;

    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;

    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn basic_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex::I * Complex::I, -Complex::ONE);
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert!((z.norm() - 5.0).abs() < EPS);
        assert!((z.norm_sqr() - 25.0).abs() < EPS);
        assert!(((z * z.conj()).re - 25.0).abs() < EPS);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
        assert!(z.re.abs() < EPS);
        assert!((z.im - 2.0).abs() < EPS);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut z = Complex::new(1.0, 1.0);
        z += Complex::new(0.5, -0.5);
        assert_eq!(z, Complex::new(1.5, 0.5));
        assert_eq!(z.scale(2.0), Complex::new(3.0, 1.0));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Complex::new(1.0, 1.0).to_string(), "1.000000+1.000000i");
        assert_eq!(Complex::new(0.0, -1.0).to_string(), "0.000000-1.000000i");
    }

    #[test]
    fn from_real() {
        let z: Complex = 2.5f64.into();
        assert_eq!(z, Complex::new(2.5, 0.0));
    }
}
