//! CZ gate fidelity under spectator ZZ crosstalk.
//!
//! During a coupler-activated CZ, an always-on ZZ coupling `ζ` between a
//! gate qubit and a spectator shifts the gate qubit's frequency
//! conditionally on the spectator's state, so the conditional phase
//! acquires an error `φ = 2π ζ t_gate`. The error is diagonal, so the
//! average gate fidelity has a closed form — no integration needed:
//!
//! ```text
//! F(φ) = (|3 + e^{iφ}|² + 4) / 20
//! ```
//!
//! which is `1` at `φ = 0` and `0.6` at `φ = π`. This is the pulse-level
//! justification for the ZZ-driven *noisy non-parallelism* rule: gates
//! whose qubits see large mutual ζ should not run simultaneously.

/// Average CZ gate fidelity for a conditional-phase error of `phi`
/// radians on the `|11⟩` amplitude.
///
/// # Example
///
/// ```
/// use youtiao_pulse::cz::cz_fidelity_with_phase_error;
/// assert!((cz_fidelity_with_phase_error(0.0) - 1.0).abs() < 1e-12);
/// assert!(cz_fidelity_with_phase_error(0.3) < 1.0);
/// ```
pub fn cz_fidelity_with_phase_error(phi: f64) -> f64 {
    // |3 + e^{iφ}|² = 9 + 6 cos φ + 1
    let tr2 = 10.0 + 6.0 * phi.cos();
    (tr2 + 4.0) / 20.0
}

/// Average CZ fidelity when a spectator with ZZ coupling `zeta_mhz`
/// (MHz) sits in its worst-case state for the whole `gate_ns` gate.
///
/// # Example
///
/// ```
/// use youtiao_pulse::cz::cz_fidelity_under_zz;
/// // A typical parked ZZ of 50 kHz over a 60 ns CZ barely matters...
/// assert!(cz_fidelity_under_zz(0.05, 60.0) > 0.9999);
/// // ...but an unsuppressed 1 MHz ZZ costs real fidelity.
/// assert!(cz_fidelity_under_zz(1.0, 60.0) < 0.999);
/// ```
pub fn cz_fidelity_under_zz(zeta_mhz: f64, gate_ns: f64) -> f64 {
    let phi = 2.0 * std::f64::consts::PI * zeta_mhz * gate_ns * 1e-3;
    cz_fidelity_with_phase_error(phi)
}

/// The largest spectator ZZ coupling (MHz) tolerable for a `gate_ns` CZ
/// at a target infidelity budget.
///
/// Inverts [`cz_fidelity_under_zz`] on its monotone branch (`φ < π`).
///
/// # Panics
///
/// Panics if the budget is not in `(0, 0.4)` (the closed form's range).
pub fn max_tolerable_zz_mhz(gate_ns: f64, infidelity_budget: f64) -> f64 {
    assert!(
        infidelity_budget > 0.0 && infidelity_budget < 0.4,
        "budget must be within the fidelity formula's range"
    );
    // F = (14 + 6 cos φ)/20  =>  cos φ = (20(1 - budget) - 14)/6
    let cos_phi = (20.0 * (1.0 - infidelity_budget) - 14.0) / 6.0;
    let phi = cos_phi.clamp(-1.0, 1.0).acos();
    phi / (2.0 * std::f64::consts::PI * gate_ns * 1e-3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_at_zero_phase() {
        assert!((cz_fidelity_with_phase_error(0.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn worst_case_at_pi() {
        let f = cz_fidelity_with_phase_error(std::f64::consts::PI);
        assert!((f - 0.4).abs() < 1e-12);
    }

    #[test]
    fn monotone_decreasing_up_to_pi() {
        let mut prev = 1.0;
        for k in 1..=20 {
            let phi = std::f64::consts::PI * k as f64 / 20.0;
            let f = cz_fidelity_with_phase_error(phi);
            assert!(f < prev);
            prev = f;
        }
    }

    #[test]
    fn small_phase_expansion() {
        // F = 1 − (6/20)(1 − cos φ) ≈ 1 − 0.15 φ² for small φ.
        let phi = 0.01;
        let f = cz_fidelity_with_phase_error(phi);
        assert!((f - (1.0 - 0.15 * phi * phi)).abs() < 1e-8);
    }

    #[test]
    fn zz_scaling() {
        let weak = cz_fidelity_under_zz(0.1, 60.0);
        let strong = cz_fidelity_under_zz(2.0, 60.0);
        assert!(weak > strong);
        let short = cz_fidelity_under_zz(1.0, 30.0);
        let long = cz_fidelity_under_zz(1.0, 120.0);
        assert!(short > long);
    }

    #[test]
    fn tolerable_zz_inverts_the_fidelity() {
        let gate_ns = 60.0;
        for budget in [1e-4, 1e-3, 1e-2] {
            let zeta = max_tolerable_zz_mhz(gate_ns, budget);
            let f = cz_fidelity_under_zz(zeta, gate_ns);
            assert!(
                ((1.0 - f) - budget).abs() < budget * 0.01,
                "budget {budget}: infidelity {}",
                1.0 - f
            );
        }
    }

    #[test]
    fn paper_scale_sanity() {
        // The paper's 2q gates are calibrated to 99.73%; an unsuppressed
        // ~2.3 MHz spectator ZZ alone would eat that entire budget in
        // one 60 ns gate.
        let zeta = max_tolerable_zz_mhz(60.0, 2.7e-3);
        assert!(zeta > 0.1 && zeta < 5.0, "zeta {zeta}");
    }

    #[test]
    #[should_panic(expected = "range")]
    fn absurd_budget_panics() {
        let _ = max_tolerable_zz_mhz(60.0, 0.9);
    }
}
