//! Rotating-frame two-level Schrödinger integration.
//!
//! In the frame rotating at the drive frequency (RWA), a driven transmon
//! truncated to two levels evolves under
//!
//! ```text
//! H / h = -Δ/2 σz + Ω/2 (cos φ σx + sin φ σy)
//! ```
//!
//! with detuning `Δ = f_drive − f_qubit` and Rabi rate `Ω`, both in linear
//! frequency units (MHz here). [`evolve_two_level`] integrates `i ψ′ =
//! 2π H ψ` with classic RK4 and returns the propagator, from which
//! [`average_gate_fidelity`] scores gates against their ideal unitaries.

use crate::complex::Complex;

/// A 2×2 complex matrix in row-major order (a qubit propagator).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Unitary2 {
    /// Entries `[[m00, m01], [m10, m11]]` flattened row-major.
    pub m: [Complex; 4],
}

impl Unitary2 {
    /// The identity.
    pub fn identity() -> Self {
        Unitary2 {
            m: [Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::ONE],
        }
    }

    /// The ideal Pauli-X gate.
    pub fn pauli_x() -> Self {
        Unitary2 {
            m: [Complex::ZERO, Complex::ONE, Complex::ONE, Complex::ZERO],
        }
    }

    /// The ideal `RX(θ)` rotation.
    pub fn rx(theta: f64) -> Self {
        let c = Complex::from((theta / 2.0).cos());
        let s = Complex::new(0.0, -(theta / 2.0).sin());
        Unitary2 { m: [c, s, s, c] }
    }

    /// Matrix product `self · rhs`.
    pub fn matmul(&self, rhs: &Unitary2) -> Unitary2 {
        let a = &self.m;
        let b = &rhs.m;
        Unitary2 {
            m: [
                a[0] * b[0] + a[1] * b[2],
                a[0] * b[1] + a[1] * b[3],
                a[2] * b[0] + a[3] * b[2],
                a[2] * b[1] + a[3] * b[3],
            ],
        }
    }

    /// Conjugate transpose.
    pub fn dagger(&self) -> Unitary2 {
        Unitary2 {
            m: [
                self.m[0].conj(),
                self.m[2].conj(),
                self.m[1].conj(),
                self.m[3].conj(),
            ],
        }
    }

    /// Trace.
    pub fn trace(&self) -> Complex {
        self.m[0] + self.m[3]
    }

    /// Applies the matrix to a state vector.
    pub fn apply(&self, psi: [Complex; 2]) -> [Complex; 2] {
        [
            self.m[0] * psi[0] + self.m[1] * psi[1],
            self.m[2] * psi[0] + self.m[3] * psi[1],
        ]
    }
}

/// Integrates the rotating-frame two-level equation and returns the
/// propagator.
///
/// * `detuning_mhz` — drive-minus-qubit frequency, MHz.
/// * `rabi_mhz` — resonant Rabi rate, MHz (a resonant π-pulse takes
///   `1/(2Ω)` µs·10³ = `500/Ω` ns).
/// * `phase` — drive phase in radians (0 = X axis, π/2 = Y axis).
/// * `duration_ns` — pulse length, ns.
/// * `steps` — minimum RK4 step count (≥ 1). The integrator refines this
///   automatically to at least 256 steps per generalized-Rabi period so
///   unitarity holds to ~10⁻⁶ regardless of how fast the dynamics are.
///
/// # Panics
///
/// Panics if `steps == 0` or `duration_ns < 0`.
pub fn evolve_two_level(
    detuning_mhz: f64,
    rabi_mhz: f64,
    phase: f64,
    duration_ns: f64,
    steps: usize,
) -> Unitary2 {
    assert!(steps > 0, "integration needs at least one step");
    assert!(duration_ns >= 0.0, "duration must be non-negative");
    // Resolve each generalized-Rabi period with >= 256 RK4 steps.
    let periods = detuning_mhz.hypot(rabi_mhz) * duration_ns * 1e-3;
    let steps = steps.max((256.0 * periods).ceil() as usize).max(1);
    // H in angular units. MHz·ns → 2π·1e-3 scaling makes ωt dimensionless.
    let unit = 2.0 * std::f64::consts::PI * 1e-3;
    let hz_z = -0.5 * detuning_mhz * unit;
    let hx = 0.5 * rabi_mhz * unit * phase.cos();
    let hy = 0.5 * rabi_mhz * unit * phase.sin();

    // H = [[hz, hx - i hy], [hx + i hy, -hz]]
    let h = [
        Complex::new(hz_z, 0.0),
        Complex::new(hx, -hy),
        Complex::new(hx, hy),
        Complex::new(-hz_z, 0.0),
    ];
    let deriv = |psi: [Complex; 2]| -> [Complex; 2] {
        // ψ' = -i H ψ
        let hpsi = [h[0] * psi[0] + h[1] * psi[1], h[2] * psi[0] + h[3] * psi[1]];
        [-(Complex::I * hpsi[0]), -(Complex::I * hpsi[1])]
    };

    let dt = duration_ns / steps as f64;
    let mut columns = [[Complex::ONE, Complex::ZERO], [Complex::ZERO, Complex::ONE]];
    for col in &mut columns {
        let mut psi = *col;
        for _ in 0..steps {
            let k1 = deriv(psi);
            let k2 = deriv(step(psi, k1, dt / 2.0));
            let k3 = deriv(step(psi, k2, dt / 2.0));
            let k4 = deriv(step(psi, k3, dt));
            for i in 0..2 {
                psi[i] += (k1[i] + k2[i].scale(2.0) + k3[i].scale(2.0) + k4[i]).scale(dt / 6.0);
            }
        }
        *col = psi;
    }
    // Columns of the propagator.
    Unitary2 {
        m: [columns[0][0], columns[1][0], columns[0][1], columns[1][1]],
    }
}

fn step(psi: [Complex; 2], k: [Complex; 2], h: f64) -> [Complex; 2] {
    [psi[0] + k[0].scale(h), psi[1] + k[1].scale(h)]
}

/// Average gate fidelity between an implemented and an ideal qubit gate:
/// `F = (|Tr(U† V)|² + d) / (d(d + 1))` with `d = 2`.
///
/// # Example
///
/// ```
/// use youtiao_pulse::evolve::{average_gate_fidelity, Unitary2};
/// let x = Unitary2::pauli_x();
/// assert!((average_gate_fidelity(&x, &x) - 1.0).abs() < 1e-12);
/// ```
pub fn average_gate_fidelity(actual: &Unitary2, ideal: &Unitary2) -> f64 {
    let overlap = ideal.dagger().matmul(actual).trace().norm_sqr();
    (overlap + 2.0) / 6.0
}

/// Analytic off-resonant excitation probability of a spectator two-level
/// system, time-averaged over the pulse: `P = Ω² / (2(Ω² + Δ²))`.
///
/// This is the Rabi formula's `sin²` averaged to ½, appropriate when the
/// spectator sees many generalized-Rabi periods per gate.
pub fn mean_offresonant_excitation(rabi_mhz: f64, detuning_mhz: f64) -> f64 {
    let o2 = rabi_mhz * rabi_mhz;
    let d2 = detuning_mhz * detuning_mhz;
    if o2 == 0.0 {
        0.0
    } else {
        0.5 * o2 / (o2 + d2)
    }
}

/// Resonant π-pulse duration in nanoseconds for a Rabi rate in MHz.
pub fn pi_pulse_duration_ns(rabi_mhz: f64) -> f64 {
    assert!(rabi_mhz > 0.0, "rabi rate must be positive");
    500.0 / rabi_mhz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resonant_pi_pulse_is_x_gate() {
        let omega = 10.0; // MHz
        let t = pi_pulse_duration_ns(omega);
        assert!((t - 50.0).abs() < 1e-12);
        let u = evolve_two_level(0.0, omega, 0.0, t, 400);
        let f = average_gate_fidelity(&u, &Unitary2::pauli_x());
        assert!(f > 0.999_999, "fidelity {f}");
    }

    #[test]
    fn half_pi_pulse_is_rx_half_pi() {
        let omega = 10.0;
        let t = pi_pulse_duration_ns(omega) / 2.0;
        let u = evolve_two_level(0.0, omega, 0.0, t, 400);
        let ideal = Unitary2::rx(std::f64::consts::FRAC_PI_2);
        assert!(average_gate_fidelity(&u, &ideal) > 0.999_999);
    }

    #[test]
    fn propagator_is_unitary() {
        let u = evolve_two_level(3.7, 8.2, 0.9, 120.0, 500);
        let id = u.dagger().matmul(&u);
        let eye = Unitary2::identity();
        for i in 0..4 {
            assert!((id.m[i] - eye.m[i]).norm() < 1e-9, "entry {i}");
        }
    }

    #[test]
    fn rk4_matches_analytic_offresonant_peak() {
        // Far off-resonant drive: peak excitation = Ω²/(Ω²+Δ²).
        let omega: f64 = 5.0;
        let delta: f64 = 50.0;
        let gen_rabi = (omega * omega + delta * delta).sqrt();
        // Evolve to the first maximum of sin²: t = 1/(2·Ω_gen)
        let t = 500.0 / gen_rabi;
        let u = evolve_two_level(delta, omega, 0.0, t, 2000);
        let p = u.apply([Complex::ONE, Complex::ZERO])[1].norm_sqr();
        let expect = omega * omega / (omega * omega + delta * delta);
        assert!((p - expect).abs() < 1e-3, "p={p} expect={expect}");
    }

    #[test]
    fn mean_excitation_limits() {
        assert_eq!(mean_offresonant_excitation(0.0, 10.0), 0.0);
        assert!((mean_offresonant_excitation(10.0, 0.0) - 0.5).abs() < 1e-12);
        assert!(mean_offresonant_excitation(1.0, 100.0) < 1e-4);
        // Monotone decreasing in detuning.
        assert!(mean_offresonant_excitation(5.0, 10.0) > mean_offresonant_excitation(5.0, 100.0));
    }

    #[test]
    fn drive_phase_rotates_axis() {
        let omega = 10.0;
        let t = pi_pulse_duration_ns(omega);
        // π pulse about Y: |0> -> |1> still, but with different phase
        // structure than X. Check it is NOT the X gate but is a π flip.
        let uy = evolve_two_level(0.0, omega, std::f64::consts::FRAC_PI_2, t, 400);
        let fx = average_gate_fidelity(&uy, &Unitary2::pauli_x());
        assert!(fx < 0.9);
        let p = uy.apply([Complex::ONE, Complex::ZERO])[1].norm_sqr();
        assert!((p - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_duration_is_identity() {
        let u = evolve_two_level(1.0, 1.0, 0.0, 0.0, 1);
        let f = average_gate_fidelity(&u, &Unitary2::identity());
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_panics() {
        let _ = evolve_two_level(0.0, 1.0, 0.0, 10.0, 0);
    }
}
