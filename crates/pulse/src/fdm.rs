//! Gate-fidelity simulation for qubits sharing an FDM XY line.
//!
//! On a frequency-multiplexed XY line, every channel's pulse reaches every
//! qubit on the line, attenuated by the per-channel band-pass filter and
//! detuned by the channel separation. The driven qubit acquires its gate
//! (integrated with RK4 including a residual calibration detuning); each
//! spectator accumulates off-resonant excitation. Adjacent FDM lines add
//! further leakage scaled by a coupling amplitude that the caller derives
//! from the fitted crosstalk model.

use crate::evolve::{
    average_gate_fidelity, evolve_two_level, mean_offresonant_excitation, pi_pulse_duration_ns,
    Unitary2,
};
use crate::filter::BandpassFilter;

/// Configuration of the FDM line simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineSimConfig {
    /// Resonant Rabi rate of calibrated pulses, MHz.
    pub rabi_mhz: f64,
    /// Band-pass filter full bandwidth per channel, GHz.
    pub filter_bandwidth_ghz: f64,
    /// Band-pass Butterworth order.
    pub filter_order: u32,
    /// Residual calibration detuning of the driven qubit, MHz. Sets the
    /// intrinsic gate-error floor (≈1.5×10⁻⁴ at the default, matching the
    /// paper's 99.98% best case).
    pub calibration_detuning_mhz: f64,
    /// RK4 step count for target-gate integration.
    pub rk4_steps: usize,
}

impl Default for LineSimConfig {
    fn default() -> Self {
        LineSimConfig {
            rabi_mhz: 10.0,
            filter_bandwidth_ghz: 0.1,
            filter_order: 2,
            calibration_detuning_mhz: 0.17,
            rk4_steps: 300,
        }
    }
}

/// Result of driving one gate on a shared FDM line.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOnLineReport {
    /// Average gate fidelity of the driven qubit.
    pub target_fidelity: f64,
    /// Mean excitation probability leaked into each other qubit of the
    /// line (index-aligned with the input frequency slice, with the
    /// target's own slot set to zero).
    pub spectator_excitation: Vec<f64>,
}

impl GateOnLineReport {
    /// Error of the driven gate (`1 − fidelity`).
    pub fn target_error(&self) -> f64 {
        1.0 - self.target_fidelity
    }

    /// Total leaked excitation across all spectators.
    pub fn total_leakage(&self) -> f64 {
        self.spectator_excitation.iter().sum()
    }
}

/// Pulse-level simulator for gates on shared FDM lines.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FdmLineSimulator {
    config: LineSimConfig,
}

impl FdmLineSimulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: LineSimConfig) -> Self {
        FdmLineSimulator { config }
    }

    /// The simulator's configuration.
    pub fn config(&self) -> &LineSimConfig {
        &self.config
    }

    /// Simulates a calibrated π (X) pulse on `line_freqs_ghz[target]`
    /// while the other qubits of the line sit idle.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range or the line is empty.
    pub fn x_gate_on_line(&self, line_freqs_ghz: &[f64], target: usize) -> GateOnLineReport {
        assert!(target < line_freqs_ghz.len(), "target index out of range");
        let c = &self.config;
        let duration = pi_pulse_duration_ns(c.rabi_mhz);
        let u = evolve_two_level(
            c.calibration_detuning_mhz,
            c.rabi_mhz,
            0.0,
            duration,
            c.rk4_steps,
        );
        let target_fidelity = average_gate_fidelity(&u, &Unitary2::pauli_x());

        let drive_freq = line_freqs_ghz[target];
        let spectator_excitation = line_freqs_ghz
            .iter()
            .enumerate()
            .map(|(j, &fj)| {
                if j == target {
                    0.0
                } else {
                    self.spectator_excitation(fj, drive_freq, 1.0)
                }
            })
            .collect();

        GateOnLineReport {
            target_fidelity,
            spectator_excitation,
        }
    }

    /// Per-qubit gate error when *every* qubit of the line is driven
    /// simultaneously (one dense XY layer): each qubit's error is its own
    /// calibration error plus the leakage from every other channel.
    ///
    /// # Panics
    ///
    /// Panics if the line is empty.
    pub fn simultaneous_layer_errors(&self, line_freqs_ghz: &[f64]) -> Vec<f64> {
        assert!(!line_freqs_ghz.is_empty(), "line has no qubits");
        let base = self.x_gate_on_line(line_freqs_ghz, 0).target_error();
        line_freqs_ghz
            .iter()
            .enumerate()
            .map(|(i, &fi)| {
                let leak: f64 = line_freqs_ghz
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &fj)| self.spectator_excitation(fi, fj, 1.0))
                    .sum();
                base + leak
            })
            .collect()
    }

    /// Mean excitation a spectator at `spectator_ghz` picks up from a
    /// drive at `drive_ghz`, with an extra amplitude coupling factor
    /// (1.0 for in-line leakage; for adjacent-line leakage pass the
    /// crosstalk-derived coupling amplitude).
    pub fn spectator_excitation(
        &self,
        spectator_ghz: f64,
        drive_ghz: f64,
        coupling_amplitude: f64,
    ) -> f64 {
        let c = &self.config;
        let filter = BandpassFilter::new(spectator_ghz, c.filter_bandwidth_ghz, c.filter_order);
        let eff_rabi = c.rabi_mhz * filter.amplitude(drive_ghz) * coupling_amplitude;
        let detuning_mhz = (drive_ghz - spectator_ghz) * 1000.0;
        mean_offresonant_excitation(eff_rabi, detuning_mhz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> FdmLineSimulator {
        FdmLineSimulator::new(LineSimConfig::default())
    }

    #[test]
    fn calibrated_gate_error_matches_paper_floor() {
        let report = sim().x_gate_on_line(&[5.0], 0);
        let err = report.target_error();
        // 99.97% .. 99.99% band around the paper's 99.98%.
        assert!(err > 0.5e-4 && err < 3e-4, "error {err}");
        assert!(report.spectator_excitation.is_empty() || report.total_leakage() == 0.0);
    }

    #[test]
    fn well_separated_line_has_tiny_leakage() {
        let report = sim().x_gate_on_line(&[4.2, 5.2, 6.2], 1);
        assert_eq!(report.spectator_excitation.len(), 3);
        assert_eq!(report.spectator_excitation[1], 0.0);
        assert!(
            report.total_leakage() < 1e-5,
            "leak {}",
            report.total_leakage()
        );
    }

    #[test]
    fn close_frequencies_leak_heavily() {
        let tight = sim().x_gate_on_line(&[5.0, 5.02], 0);
        let loose = sim().x_gate_on_line(&[5.0, 6.0], 0);
        assert!(tight.spectator_excitation[1] > 100.0 * loose.spectator_excitation[1]);
    }

    #[test]
    fn leakage_is_symmetric_in_frequency_offset() {
        let s = sim();
        let up = s.spectator_excitation(5.0, 5.3, 1.0);
        let down = s.spectator_excitation(5.0, 4.7, 1.0);
        assert!((up - down).abs() < 1e-15);
    }

    #[test]
    fn coupling_amplitude_scales_leakage_quadratically() {
        let s = sim();
        let full = s.spectator_excitation(5.0, 5.5, 1.0);
        let tenth = s.spectator_excitation(5.0, 5.5, 0.1);
        // Far off resonance P ∝ Ω², so 0.1 amplitude → ~0.01 probability.
        let ratio = tenth / full;
        assert!((ratio - 0.01).abs() < 0.002, "ratio {ratio}");
    }

    #[test]
    fn simultaneous_layer_errors_exceed_single_gate() {
        let s = sim();
        let freqs = [4.5, 5.0, 5.5, 6.0];
        let errs = s.simultaneous_layer_errors(&freqs);
        assert_eq!(errs.len(), 4);
        let single = s.x_gate_on_line(&freqs, 0).target_error();
        for e in errs {
            assert!(e >= single);
            assert!(e < 1e-2);
        }
    }

    #[test]
    fn report_accessors() {
        let r = GateOnLineReport {
            target_fidelity: 0.9998,
            spectator_excitation: vec![1e-5, 0.0, 2e-5],
        };
        assert!((r.target_error() - 2e-4).abs() < 1e-12);
        assert!((r.total_leakage() - 3e-5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_target_panics() {
        let _ = sim().x_gate_on_line(&[5.0], 3);
    }
}
