//! Cryogenic band-pass filter model for shared FDM lines.
//!
//! FDM XY control relies on per-qubit band-pass filters for signal
//! isolation (§2.2, Figure 2 of the paper). We model the amplitude
//! response as an order-`n` Butterworth band-pass centred on the qubit's
//! channel: `|H(f)| = 1 / sqrt(1 + ((f − f₀) / (BW/2))^{2n})`.

/// Amplitude response of a cryogenic band-pass filter.
///
/// # Example
///
/// ```
/// use youtiao_pulse::BandpassFilter;
/// let filt = BandpassFilter::new(5.0, 0.2, 2);
/// assert!((filt.amplitude(5.0) - 1.0).abs() < 1e-12);
/// assert!(filt.amplitude(6.0) < 0.01); // 1 GHz away: heavily attenuated
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandpassFilter {
    center_ghz: f64,
    bandwidth_ghz: f64,
    order: u32,
}

impl BandpassFilter {
    /// Creates a filter centred at `center_ghz` with full `bandwidth_ghz`
    /// passband and Butterworth `order`.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_ghz <= 0` or `order == 0`.
    pub fn new(center_ghz: f64, bandwidth_ghz: f64, order: u32) -> Self {
        assert!(bandwidth_ghz > 0.0, "bandwidth must be positive");
        assert!(order > 0, "filter order must be positive");
        BandpassFilter {
            center_ghz,
            bandwidth_ghz,
            order,
        }
    }

    /// The default filter of the FDM line model: 100 MHz passband,
    /// second-order, matching the −30 dB inter-channel isolation target
    /// the paper quotes at typical channel spacings.
    pub fn default_for_channel(center_ghz: f64) -> Self {
        BandpassFilter::new(center_ghz, 0.1, 2)
    }

    /// Passband centre in GHz.
    pub fn center_ghz(&self) -> f64 {
        self.center_ghz
    }

    /// Full passband width in GHz.
    pub fn bandwidth_ghz(&self) -> f64 {
        self.bandwidth_ghz
    }

    /// Amplitude transmission at `freq_ghz`, in `(0, 1]`.
    pub fn amplitude(&self, freq_ghz: f64) -> f64 {
        let x = (freq_ghz - self.center_ghz) / (self.bandwidth_ghz / 2.0);
        1.0 / (1.0 + x.powi(2 * self.order as i32)).sqrt()
    }

    /// Power attenuation at `freq_ghz`, in decibels (0 at centre,
    /// negative elsewhere).
    pub fn attenuation_db(&self, freq_ghz: f64) -> f64 {
        20.0 * self.amplitude(freq_ghz).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unity_at_center() {
        let f = BandpassFilter::new(5.5, 0.1, 2);
        assert!((f.amplitude(5.5) - 1.0).abs() < 1e-12);
        assert!((f.attenuation_db(5.5)).abs() < 1e-9);
    }

    #[test]
    fn half_power_at_band_edge() {
        let f = BandpassFilter::new(5.0, 0.2, 3);
        let edge = f.amplitude(5.1);
        assert!((edge - 1.0 / 2f64.sqrt()).abs() < 1e-12);
        assert!((f.attenuation_db(5.1) + 3.0103).abs() < 0.01);
    }

    #[test]
    fn symmetric_response() {
        let f = BandpassFilter::new(5.0, 0.1, 2);
        assert!((f.amplitude(5.3) - f.amplitude(4.7)).abs() < 1e-12);
    }

    #[test]
    fn higher_order_is_steeper() {
        let f2 = BandpassFilter::new(5.0, 0.1, 2);
        let f4 = BandpassFilter::new(5.0, 0.1, 4);
        assert!(f4.amplitude(5.2) < f2.amplitude(5.2));
    }

    #[test]
    fn default_channel_isolation_meets_minus_30_db() {
        // At the paper's in-line channel separations (≥ 1 GHz between
        // zones), isolation must beat −30 dB.
        let f = BandpassFilter::default_for_channel(5.0);
        assert!(f.attenuation_db(6.0) < -30.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_panics() {
        let _ = BandpassFilter::new(5.0, 0.0, 2);
    }
}
