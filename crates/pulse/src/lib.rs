//! Pulse-level single-qubit gate simulation for YOUTIAO.
//!
//! Substitutes for the paper's Qutip-based pulse simulations (§5.4): it
//! integrates the rotating-frame two-level Schrödinger equation for driven
//! transmons ([`evolve`]), models the spectral selectivity of the
//! cryogenic band-pass filters on shared FDM lines ([`filter`]), and
//! combines both into per-gate fidelity estimates for qubits sharing an
//! FDM line ([`fdm`]): the driven qubit acquires its calibrated gate while
//! every spectator on the same line (and on spectrally adjacent lines)
//! sees an attenuated off-resonant drive that leaks population.
//!
//! # Example
//!
//! ```
//! use youtiao_pulse::fdm::{FdmLineSimulator, LineSimConfig};
//!
//! // Four qubits on one FDM line, 1 GHz apart: leakage is tiny and the
//! // X-gate fidelity stays near the paper's 99.98%.
//! let sim = FdmLineSimulator::new(LineSimConfig::default());
//! let report = sim.x_gate_on_line(&[4.0, 5.0, 6.0, 7.0], 0);
//! assert!(report.target_fidelity > 0.999);
//! assert!(report.spectator_excitation.iter().all(|&p| p < 1e-3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod cz;
pub mod evolve;
pub mod fdm;
pub mod filter;
pub mod transmon;

pub use crate::complex::Complex;
pub use crate::cz::{cz_fidelity_under_zz, max_tolerable_zz_mhz};
pub use crate::evolve::{average_gate_fidelity, evolve_two_level, Unitary2};
pub use crate::fdm::{FdmLineSimulator, GateOnLineReport, LineSimConfig};
pub use crate::filter::BandpassFilter;
pub use crate::transmon::{evolve_three_level, pi_pulse_leakage, Unitary3};
