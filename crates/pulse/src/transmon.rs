//! Three-level transmon dynamics: leakage out of the computational
//! subspace.
//!
//! Real transmons are weakly anharmonic oscillators; a square drive of
//! Rabi rate `Ω` leaks population into `|2⟩` at order `(Ω/α)²` for
//! anharmonicity `α` (typically −200 MHz). This caps how fast gates can
//! be driven — the reason the FDM line model's 10 MHz default Rabi rate
//! (50 ns π pulses) is realistic.
//!
//! The rotating-frame Hamiltonian at drive detuning `Δ`:
//!
//! ```text
//! H / h = diag(0, −Δ, −2Δ + α)
//!       + Ω/2 (|0⟩⟨1| + h.c.) + Ω√2/2 (|1⟩⟨2| + h.c.)
//! ```

use crate::complex::Complex;

/// A 3×3 complex matrix in row-major order (a qutrit propagator).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Unitary3 {
    /// Entries flattened row-major.
    pub m: [Complex; 9],
}

impl Unitary3 {
    /// The identity.
    pub fn identity() -> Self {
        let mut m = [Complex::ZERO; 9];
        m[0] = Complex::ONE;
        m[4] = Complex::ONE;
        m[8] = Complex::ONE;
        Unitary3 { m }
    }

    /// Conjugate transpose.
    pub fn dagger(&self) -> Unitary3 {
        let mut out = [Complex::ZERO; 9];
        for r in 0..3 {
            for c in 0..3 {
                out[r * 3 + c] = self.m[c * 3 + r].conj();
            }
        }
        Unitary3 { m: out }
    }

    /// Matrix product `self · rhs`.
    pub fn matmul(&self, rhs: &Unitary3) -> Unitary3 {
        let mut out = [Complex::ZERO; 9];
        for r in 0..3 {
            for c in 0..3 {
                let mut acc = Complex::ZERO;
                for k in 0..3 {
                    acc += self.m[r * 3 + k] * rhs.m[k * 3 + c];
                }
                out[r * 3 + c] = acc;
            }
        }
        Unitary3 { m: out }
    }

    /// Applies the matrix to a qutrit state vector.
    pub fn apply(&self, psi: [Complex; 3]) -> [Complex; 3] {
        let mut out = [Complex::ZERO; 3];
        for (r, slot) in out.iter_mut().enumerate() {
            for (c, amp) in psi.iter().enumerate() {
                *slot += self.m[r * 3 + c] * *amp;
            }
        }
        out
    }
}

/// Integrates the driven three-level transmon and returns the
/// propagator.
///
/// * `detuning_mhz` — drive minus qubit 0→1 frequency, MHz.
/// * `rabi_mhz` — 0→1 Rabi rate, MHz (1→2 coupling is √2 stronger).
/// * `anharmonicity_mhz` — `f12 − f01`, MHz (negative for transmons).
/// * `duration_ns` — pulse length.
/// * `steps` — minimum RK4 step count (auto-refined like the two-level
///   integrator).
///
/// # Panics
///
/// Panics if `steps == 0` or `duration_ns < 0`.
pub fn evolve_three_level(
    detuning_mhz: f64,
    rabi_mhz: f64,
    anharmonicity_mhz: f64,
    duration_ns: f64,
    steps: usize,
) -> Unitary3 {
    assert!(steps > 0, "integration needs at least one step");
    assert!(duration_ns >= 0.0, "duration must be non-negative");
    let span = detuning_mhz
        .abs()
        .max(rabi_mhz.abs())
        .max(anharmonicity_mhz.abs());
    let periods = span * duration_ns * 1e-3;
    let steps = steps.max((256.0 * periods).ceil() as usize).max(1);

    let unit = 2.0 * std::f64::consts::PI * 1e-3;
    let d = detuning_mhz * unit;
    let a = anharmonicity_mhz * unit;
    let o01 = 0.5 * rabi_mhz * unit;
    let o12 = o01 * 2f64.sqrt();

    // H row-major.
    let h = [
        Complex::ZERO,
        Complex::from(o01),
        Complex::ZERO,
        Complex::from(o01),
        Complex::from(-d),
        Complex::from(o12),
        Complex::ZERO,
        Complex::from(o12),
        Complex::from(-2.0 * d + a),
    ];
    let deriv = |psi: [Complex; 3]| -> [Complex; 3] {
        let mut hpsi = [Complex::ZERO; 3];
        for (r, slot) in hpsi.iter_mut().enumerate() {
            for (c, amp) in psi.iter().enumerate() {
                *slot += h[r * 3 + c] * *amp;
            }
        }
        [
            -(Complex::I * hpsi[0]),
            -(Complex::I * hpsi[1]),
            -(Complex::I * hpsi[2]),
        ]
    };

    let dt = duration_ns / steps as f64;
    let mut columns = [
        [Complex::ONE, Complex::ZERO, Complex::ZERO],
        [Complex::ZERO, Complex::ONE, Complex::ZERO],
        [Complex::ZERO, Complex::ZERO, Complex::ONE],
    ];
    for col in &mut columns {
        let mut psi = *col;
        for _ in 0..steps {
            let add = |p: [Complex; 3], k: [Complex; 3], s: f64| -> [Complex; 3] {
                [
                    p[0] + k[0].scale(s),
                    p[1] + k[1].scale(s),
                    p[2] + k[2].scale(s),
                ]
            };
            let k1 = deriv(psi);
            let k2 = deriv(add(psi, k1, dt / 2.0));
            let k3 = deriv(add(psi, k2, dt / 2.0));
            let k4 = deriv(add(psi, k3, dt));
            for i in 0..3 {
                psi[i] += (k1[i] + k2[i].scale(2.0) + k3[i].scale(2.0) + k4[i]).scale(dt / 6.0);
            }
        }
        *col = psi;
    }
    let mut m = [Complex::ZERO; 9];
    for (c, col) in columns.iter().enumerate() {
        for r in 0..3 {
            m[r * 3 + c] = col[r];
        }
    }
    Unitary3 { m }
}

/// Leakage into `|2⟩` after a resonant π pulse from `|0⟩`, for a given
/// Rabi rate and anharmonicity.
///
/// # Example
///
/// ```
/// use youtiao_pulse::transmon::pi_pulse_leakage;
/// // 10 MHz drive on a -200 MHz-anharmonic transmon leaks ~1e-3.
/// let p = pi_pulse_leakage(10.0, -200.0);
/// assert!(p > 1e-5 && p < 1e-2);
/// ```
pub fn pi_pulse_leakage(rabi_mhz: f64, anharmonicity_mhz: f64) -> f64 {
    let duration = crate::evolve::pi_pulse_duration_ns(rabi_mhz);
    let u = evolve_three_level(0.0, rabi_mhz, anharmonicity_mhz, duration, 256);
    let end = u.apply([Complex::ONE, Complex::ZERO, Complex::ZERO]);
    end[2].norm_sqr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propagator_is_unitary() {
        let u = evolve_three_level(2.0, 12.0, -200.0, 80.0, 256);
        let id = u.dagger().matmul(&u);
        let eye = Unitary3::identity();
        for i in 0..9 {
            assert!((id.m[i] - eye.m[i]).norm() < 1e-6, "entry {i}");
        }
    }

    #[test]
    fn large_anharmonicity_recovers_two_level_pi_pulse() {
        let rabi = 10.0;
        let duration = crate::evolve::pi_pulse_duration_ns(rabi);
        let u = evolve_three_level(0.0, rabi, -5000.0, duration, 256);
        let end = u.apply([Complex::ONE, Complex::ZERO, Complex::ZERO]);
        assert!(
            end[1].norm_sqr() > 0.999,
            "population {}",
            end[1].norm_sqr()
        );
        assert!(end[2].norm_sqr() < 1e-4);
    }

    #[test]
    fn leakage_grows_with_drive_strength() {
        let slow = pi_pulse_leakage(5.0, -200.0);
        let fast = pi_pulse_leakage(40.0, -200.0);
        assert!(fast > slow * 5.0, "slow {slow} fast {fast}");
    }

    #[test]
    fn leakage_shrinks_with_anharmonicity() {
        let soft = pi_pulse_leakage(10.0, -100.0);
        let stiff = pi_pulse_leakage(10.0, -400.0);
        assert!(stiff < soft, "soft {soft} stiff {stiff}");
    }

    #[test]
    fn default_drive_leakage_is_negligible_vs_gate_error() {
        // The FDM line simulator's 10 MHz default drive on a typical
        // -200 MHz transmon: leakage well below the 2e-4 calibration
        // floor would start to matter at ~1e-4.
        let p = pi_pulse_leakage(10.0, -200.0);
        assert!(p < 5e-3, "leakage {p}");
    }

    #[test]
    fn zero_duration_is_identity() {
        let u = evolve_three_level(1.0, 1.0, -200.0, 0.0, 1);
        let eye = Unitary3::identity();
        for i in 0..9 {
            assert!((u.m[i] - eye.m[i]).norm() < 1e-12);
        }
    }
}
