//! Property-based tests for the pulse-level simulator.

use proptest::prelude::*;
use youtiao_pulse::evolve::{
    average_gate_fidelity, evolve_two_level, mean_offresonant_excitation, Unitary2,
};
use youtiao_pulse::fdm::{FdmLineSimulator, LineSimConfig};
use youtiao_pulse::filter::BandpassFilter;
use youtiao_pulse::Complex;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The RK4 propagator stays unitary for arbitrary drive parameters.
    #[test]
    fn propagator_is_unitary(
        detuning in -50.0f64..50.0,
        rabi in 0.0f64..25.0,
        phase in 0.0f64..6.2,
        duration in 0.0f64..300.0,
    ) {
        let u = evolve_two_level(detuning, rabi, phase, duration, 300);
        let id = u.dagger().matmul(&u);
        let eye = Unitary2::identity();
        for i in 0..4 {
            prop_assert!((id.m[i] - eye.m[i]).norm() < 1e-6);
        }
    }

    /// Average gate fidelity lies in [1/3, 1] for unitaries (the d=2
    /// formula floor) and equals 1 against itself.
    #[test]
    fn fidelity_bounds(
        detuning in -20.0f64..20.0,
        rabi in 0.1f64..20.0,
        duration in 1.0f64..200.0,
    ) {
        let u = evolve_two_level(detuning, rabi, 0.0, duration, 200);
        let f_self = average_gate_fidelity(&u, &u);
        prop_assert!((f_self - 1.0).abs() < 1e-9);
        let f_x = average_gate_fidelity(&u, &Unitary2::pauli_x());
        prop_assert!((0.0..=1.0 + 1e-9).contains(&f_x));
    }

    /// Off-resonant excitation is in [0, 1/2] and decreases with
    /// detuning.
    #[test]
    fn excitation_bounds(rabi in 0.0f64..50.0, detuning in 0.0f64..500.0) {
        let p = mean_offresonant_excitation(rabi, detuning);
        prop_assert!((0.0..=0.5).contains(&p));
        let further = mean_offresonant_excitation(rabi, detuning + 100.0);
        prop_assert!(further <= p + 1e-12);
    }

    /// Band-pass amplitude is in (0, 1], peaks at the centre, and decays
    /// monotonically outward.
    #[test]
    fn filter_shape(center in 4.0f64..7.0, bw in 0.01f64..0.5, order in 1u32..5, off in 0.0f64..2.0) {
        let f = BandpassFilter::new(center, bw, order);
        let at_center = f.amplitude(center);
        prop_assert!((at_center - 1.0).abs() < 1e-12);
        let near = f.amplitude(center + off);
        let far = f.amplitude(center + off + 0.5);
        prop_assert!(near > 0.0 && near <= 1.0);
        prop_assert!(far <= near + 1e-12);
    }

    /// Complex arithmetic: |ab| = |a||b| and conjugation is an involution.
    #[test]
    fn complex_algebra(ar in -5.0f64..5.0, ai in -5.0f64..5.0, br in -5.0f64..5.0, bi in -5.0f64..5.0) {
        let a = Complex::new(ar, ai);
        let b = Complex::new(br, bi);
        prop_assert!(((a * b).norm() - a.norm() * b.norm()).abs() < 1e-9);
        prop_assert_eq!(a.conj().conj(), a);
        prop_assert!(((a + b) - b - a).norm() < 1e-12);
    }

    /// On a shared line, spectator leakage decreases as the channel
    /// separation grows.
    #[test]
    fn line_leakage_monotone(gap in 0.05f64..1.0) {
        let sim = FdmLineSimulator::new(LineSimConfig::default());
        let near = sim.spectator_excitation(5.0, 5.0 + gap, 1.0);
        let far = sim.spectator_excitation(5.0, 5.0 + gap + 0.3, 1.0);
        prop_assert!(far <= near + 1e-15);
    }
}
