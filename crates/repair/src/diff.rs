//! Structured diffing of planner input snapshots.
//!
//! A repair starts from *what changed*: two `(chip, crosstalk,
//! activity)` snapshots are compared into a typed [`ChangeSet`] whose
//! entries classify each difference as structural (device add/remove,
//! dead coupler — the chip the base plan was computed for no longer
//! exists) or value-only (crosstalk drift, coupler degradation,
//! activity deltas — the same chip with different numbers). The repair
//! pass dispatches on that classification; everything downstream
//! (kernel invalidation, group dissolution, frequency patching) is
//! driven by the dirty qubit/device sets the change set exposes.

use std::collections::BTreeSet;

use youtiao_chip::distance::DistanceMatrix;
use youtiao_chip::{Chip, DeviceId, QubitId};
use youtiao_core::tdm::ActivityProfile;

/// One planner input snapshot: the chip, its qubit-pair crosstalk
/// matrix, and the workload activity profile.
#[derive(Debug, Clone, Copy)]
pub struct PlanInputs<'a> {
    /// The chip topology.
    pub chip: &'a Chip,
    /// The qubit-pair crosstalk matrix (what a [`youtiao_core::PlanContext`]
    /// carries as `crosstalk()`).
    pub xtalk: &'a DistanceMatrix,
    /// The workload activity profile.
    pub activity: &'a ActivityProfile,
}

/// One classified difference between two input snapshots.
#[derive(Debug, Clone, PartialEq)]
pub enum Change {
    /// A crosstalk matrix entry between two non-adjacent qubits moved.
    CrosstalkDrift {
        /// First qubit of the pair.
        a: QubitId,
        /// Second qubit of the pair.
        b: QubitId,
        /// Entry value in the old snapshot.
        old: f64,
        /// Entry value in the new snapshot.
        new: f64,
    },
    /// A crosstalk entry on a coupler edge moved: the coupler still
    /// exists but its coupling degraded (or recovered).
    CouplerDegraded {
        /// First endpoint.
        a: QubitId,
        /// Second endpoint.
        b: QubitId,
        /// Entry value in the old snapshot.
        old: f64,
        /// Entry value in the new snapshot.
        new: f64,
    },
    /// A coupler present in the old chip is gone from the new one —
    /// structural: the device id space shifted.
    CouplerDead {
        /// First endpoint (old chip ids).
        a: QubitId,
        /// Second endpoint (old chip ids).
        b: QubitId,
    },
    /// A coupler absent from the old chip appeared in the new one —
    /// structural.
    CouplerAdded {
        /// First endpoint (new chip ids).
        a: QubitId,
        /// Second endpoint (new chip ids).
        b: QubitId,
    },
    /// Qubits were added to the chip — structural.
    QubitsAdded {
        /// How many qubits were added.
        count: usize,
    },
    /// Qubits were removed from the chip — structural.
    QubitsRemoved {
        /// How many qubits were removed.
        count: usize,
    },
    /// A device's activity mask changed.
    ActivityDelta {
        /// The device whose activity changed.
        device: DeviceId,
        /// Activity mask in the old snapshot (0 when absent).
        old: u32,
        /// Activity mask in the new snapshot (0 when absent).
        new: u32,
    },
}

impl Change {
    /// Whether this change alters the chip's structure (and therefore
    /// its device id space and topology-derived kernels). Structural
    /// changes cannot be repaired locally; they force a full replan.
    pub fn is_structural(&self) -> bool {
        matches!(
            self,
            Change::CouplerDead { .. }
                | Change::CouplerAdded { .. }
                | Change::QubitsAdded { .. }
                | Change::QubitsRemoved { .. }
        )
    }
}

/// The typed result of diffing two input snapshots: an ordered list of
/// [`Change`]s (structural first, then matrix drifts in pair order,
/// then activity deltas in device order — deterministic for equal
/// inputs).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChangeSet {
    changes: Vec<Change>,
}

impl ChangeSet {
    /// No differences at all?
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Number of recorded changes.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// The changes, in deterministic order.
    pub fn changes(&self) -> &[Change] {
        &self.changes
    }

    /// Whether any change is structural (see [`Change::is_structural`]).
    pub fn structural(&self) -> bool {
        self.changes.iter().any(Change::is_structural)
    }

    /// Qubits touched by value-only crosstalk changes (drift and
    /// degradation endpoints), sorted and deduplicated — the set whose
    /// kernel rows and frequency assignments must be recomputed.
    pub fn dirty_qubits(&self) -> Vec<QubitId> {
        let mut dirty: Vec<QubitId> = self
            .changes
            .iter()
            .flat_map(|c| match *c {
                Change::CrosstalkDrift { a, b, .. } | Change::CouplerDegraded { a, b, .. } => {
                    vec![a, b]
                }
                _ => Vec::new(),
            })
            .collect();
        dirty.sort_unstable();
        dirty.dedup();
        dirty
    }

    /// Devices whose activity mask changed, sorted and deduplicated.
    pub fn activity_devices(&self) -> Vec<DeviceId> {
        let mut devices: Vec<DeviceId> = self
            .changes
            .iter()
            .filter_map(|c| match *c {
                Change::ActivityDelta { device, .. } => Some(device),
                _ => None,
            })
            .collect();
        devices.sort_unstable();
        devices.dedup();
        devices
    }

    /// One line per change, for logs and the CLI.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.changes {
            let line = match *c {
                Change::CrosstalkDrift { a, b, old, new } => {
                    format!("drift      {a}~{b}: {old:.3e} -> {new:.3e}")
                }
                Change::CouplerDegraded { a, b, old, new } => {
                    format!("degraded   {a}~{b}: {old:.3e} -> {new:.3e}")
                }
                Change::CouplerDead { a, b } => format!("dead       coupler {a}~{b}"),
                Change::CouplerAdded { a, b } => format!("added      coupler {a}~{b}"),
                Change::QubitsAdded { count } => format!("added      {count} qubit(s)"),
                Change::QubitsRemoved { count } => format!("removed    {count} qubit(s)"),
                Change::ActivityDelta { device, old, new } => {
                    format!("activity   {device:?}: {old:#06x} -> {new:#06x}")
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

/// Normalized coupler edge set of a chip: `(min, max)` endpoint index
/// pairs.
fn coupler_edges(chip: &Chip) -> BTreeSet<(usize, usize)> {
    chip.couplers()
        .map(|c| {
            let (a, b) = c.endpoints();
            let (a, b) = (a.index(), b.index());
            (a.min(b), a.max(b))
        })
        .collect()
}

/// Compares two input snapshots into a typed [`ChangeSet`].
///
/// Matrix entries are compared exactly (any bitwise difference is a
/// drift); matrix diffing is skipped entirely when the qubit count
/// changed, since the id spaces are no longer comparable. Activity
/// masks absent from a profile count as `0`.
///
/// # Panics
///
/// Panics if either snapshot's matrix dimension mismatches its chip.
pub fn diff_inputs(old: &PlanInputs<'_>, new: &PlanInputs<'_>) -> ChangeSet {
    assert_eq!(
        old.xtalk.len(),
        old.chip.num_qubits(),
        "old crosstalk matrix size mismatch"
    );
    assert_eq!(
        new.xtalk.len(),
        new.chip.num_qubits(),
        "new crosstalk matrix size mismatch"
    );

    let mut changes = Vec::new();

    let (n_old, n_new) = (old.chip.num_qubits(), new.chip.num_qubits());
    if n_new > n_old {
        changes.push(Change::QubitsAdded {
            count: n_new - n_old,
        });
    } else if n_old > n_new {
        changes.push(Change::QubitsRemoved {
            count: n_old - n_new,
        });
    }

    let old_edges = coupler_edges(old.chip);
    let new_edges = coupler_edges(new.chip);
    for &(a, b) in old_edges.difference(&new_edges) {
        changes.push(Change::CouplerDead {
            a: QubitId::new(a as u32),
            b: QubitId::new(b as u32),
        });
    }
    for &(a, b) in new_edges.difference(&old_edges) {
        changes.push(Change::CouplerAdded {
            a: QubitId::new(a as u32),
            b: QubitId::new(b as u32),
        });
    }

    // Matrix drift is only meaningful over an unchanged id space.
    if n_old == n_new {
        for (a, b, x_old) in old.xtalk.iter_pairs() {
            let x_new = new.xtalk.get(a, b);
            if x_old != x_new {
                let edge = (a.index().min(b.index()), a.index().max(b.index()));
                if old_edges.contains(&edge) || new_edges.contains(&edge) {
                    changes.push(Change::CouplerDegraded {
                        a,
                        b,
                        old: x_old,
                        new: x_new,
                    });
                } else {
                    changes.push(Change::CrosstalkDrift {
                        a,
                        b,
                        old: x_old,
                        new: x_new,
                    });
                }
            }
        }
    }

    let mut devices: Vec<DeviceId> = old
        .activity
        .keys()
        .chain(new.activity.keys())
        .copied()
        .collect();
    devices.sort_unstable();
    devices.dedup();
    for device in devices {
        let mask_old = old.activity.get(&device).copied().unwrap_or(0);
        let mask_new = new.activity.get(&device).copied().unwrap_or(0);
        if mask_old != mask_new {
            changes.push(Change::ActivityDelta {
                device,
                old: mask_old,
                new: mask_new,
            });
        }
    }

    ChangeSet { changes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtiao_chip::spec::ChipSpec;
    use youtiao_chip::topology;
    use youtiao_core::tdm::brickwork_activity;

    fn xtalk(chip: &Chip) -> DistanceMatrix {
        use youtiao_chip::distance::{equivalent_matrix, EquivalentWeights};
        let eq = equivalent_matrix(chip, EquivalentWeights::balanced());
        youtiao_core::plan::crosstalk_matrix(chip, &eq, None)
    }

    #[test]
    fn identical_snapshots_diff_empty() {
        let chip = topology::square_grid(3, 3);
        let x = xtalk(&chip);
        let act = brickwork_activity(&chip);
        let inputs = PlanInputs {
            chip: &chip,
            xtalk: &x,
            activity: &act,
        };
        let set = diff_inputs(&inputs, &inputs);
        assert!(set.is_empty());
        assert!(!set.structural());
        assert!(set.dirty_qubits().is_empty());
    }

    #[test]
    fn single_entry_drift_is_value_only() {
        let chip = topology::square_grid(3, 3);
        let x = xtalk(&chip);
        let act = brickwork_activity(&chip);
        let mut drifted = x.clone();
        // (0, 4) are diagonal neighbors on the grid: no coupler.
        let (a, b) = (QubitId::new(0), QubitId::new(4));
        assert!(!chip.are_adjacent(a, b));
        drifted.set(a, b, x.get(a, b) * 2.0 + 1e-4);
        let old = PlanInputs {
            chip: &chip,
            xtalk: &x,
            activity: &act,
        };
        let new = PlanInputs {
            chip: &chip,
            xtalk: &drifted,
            activity: &act,
        };
        let set = diff_inputs(&old, &new);
        assert_eq!(set.len(), 1);
        assert!(!set.structural());
        assert!(matches!(set.changes()[0], Change::CrosstalkDrift { .. }));
        assert_eq!(set.dirty_qubits(), vec![a, b]);
    }

    #[test]
    fn coupler_edge_drift_is_degradation() {
        let chip = topology::square_grid(3, 3);
        let x = xtalk(&chip);
        let act = brickwork_activity(&chip);
        let c = chip.couplers().next().unwrap();
        let (a, b) = c.endpoints();
        let mut drifted = x.clone();
        drifted.set(a, b, x.get(a, b) * 0.5);
        let old = PlanInputs {
            chip: &chip,
            xtalk: &x,
            activity: &act,
        };
        let new = PlanInputs {
            chip: &chip,
            xtalk: &drifted,
            activity: &act,
        };
        let set = diff_inputs(&old, &new);
        assert_eq!(set.len(), 1);
        assert!(!set.structural());
        assert!(matches!(set.changes()[0], Change::CouplerDegraded { .. }));
    }

    #[test]
    fn removed_coupler_is_structural() {
        let chip = topology::square_grid(3, 3);
        let mut spec = ChipSpec::from_chip(&chip);
        spec.couplers.pop();
        let mutated = spec.to_chip().unwrap();
        let (x_old, x_new) = (xtalk(&chip), xtalk(&mutated));
        let act = brickwork_activity(&chip);
        let old = PlanInputs {
            chip: &chip,
            xtalk: &x_old,
            activity: &act,
        };
        let new = PlanInputs {
            chip: &mutated,
            xtalk: &x_new,
            activity: &act,
        };
        let set = diff_inputs(&old, &new);
        assert!(set.structural());
        assert!(set
            .changes()
            .iter()
            .any(|c| matches!(c, Change::CouplerDead { .. })));
    }

    #[test]
    fn qubit_count_change_is_structural_and_skips_matrix_diff() {
        let small = topology::square_grid(3, 3);
        let big = topology::square_grid(4, 4);
        let (x_small, x_big) = (xtalk(&small), xtalk(&big));
        let act = brickwork_activity(&small);
        let old = PlanInputs {
            chip: &small,
            xtalk: &x_small,
            activity: &act,
        };
        let new = PlanInputs {
            chip: &big,
            xtalk: &x_big,
            activity: &act,
        };
        let set = diff_inputs(&old, &new);
        assert!(set.structural());
        assert!(set
            .changes()
            .iter()
            .any(|c| matches!(c, Change::QubitsAdded { count: 7 })));
        assert!(set.dirty_qubits().is_empty(), "no value-only drift entries");
    }

    #[test]
    fn activity_delta_detected_with_absent_as_zero() {
        let chip = topology::square_grid(3, 3);
        let x = xtalk(&chip);
        let act_old = brickwork_activity(&chip);
        let mut act_new = act_old.clone();
        let d = DeviceId::Qubit(QubitId::new(0));
        let prev = act_new.get(&d).copied().unwrap_or(0);
        act_new.insert(d, prev ^ 0b1);
        let old = PlanInputs {
            chip: &chip,
            xtalk: &x,
            activity: &act_old,
        };
        let new = PlanInputs {
            chip: &chip,
            xtalk: &x,
            activity: &act_new,
        };
        let set = diff_inputs(&old, &new);
        assert_eq!(set.len(), 1);
        assert_eq!(set.activity_devices(), vec![d]);
        assert!(!set.structural());
    }

    #[test]
    fn diff_is_deterministic_and_renders() {
        let chip = topology::square_grid(3, 3);
        let x = xtalk(&chip);
        let act = brickwork_activity(&chip);
        let mut drifted = x.clone();
        drifted.set(QubitId::new(1), QubitId::new(5), 0.0123);
        drifted.set(QubitId::new(0), QubitId::new(8), 0.0007);
        let old = PlanInputs {
            chip: &chip,
            xtalk: &x,
            activity: &act,
        };
        let new = PlanInputs {
            chip: &chip,
            xtalk: &drifted,
            activity: &act,
        };
        let a = diff_inputs(&old, &new);
        let b = diff_inputs(&old, &new);
        assert_eq!(a, b);
        assert_eq!(a.render().lines().count(), a.len());
    }
}
