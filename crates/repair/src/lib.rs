//! Incremental wiring-plan repair for drift, faults, and activity deltas.
//!
//! Calibration drift, coupler degradation, and workload changes arrive
//! as small deltas against a previously planned snapshot; replanning
//! from scratch discards everything the previous plan got right and
//! pays the full pipeline cost again. This crate repairs instead:
//!
//! * [`diff`] — a structured input differ comparing two
//!   `(chip, crosstalk, activity)` snapshots into a typed [`ChangeSet`]
//!   (crosstalk-entry drift, dead/degraded coupler, device add/remove,
//!   activity delta);
//! * [`patch`] — local frequency re-placement for the dirty qubits,
//!   against the fixed assignments of everything else;
//! * [`repair`] — the repair pass itself: kernel-level invalidation via
//!   [`youtiao_core::PlanContext::apply_crosstalk_delta`], dissolving
//!   and regrouping only the TDM groups touching invalidated devices,
//!   stitching the result onto the untouched remainder, and validating
//!   the stitched plan with `youtiao_obs::check_plan_with_activity`.
//!
//! Structural changes (dead couplers, device add/remove) and change
//! sets past the fallback threshold take the full-replan path, which is
//! byte-identical to planning the new snapshot from scratch by
//! construction. Non-structural repairs keep the FDM lines, readout
//! membership, zones, and partition byte-identical to the base plan and
//! are *quality-equal* to a full replan under the documented tie-break
//! contract (equal line counts, spectral objectives within tolerance,
//! validation-clean) — see `DESIGN.md` §4g.
//!
//! # Example
//!
//! ```
//! use youtiao_chip::{topology, QubitId};
//! use youtiao_core::{PlanContext, PlannerConfig, YoutiaoPlanner};
//! use youtiao_repair::{diff_inputs, repair_plan, PlanInputs, RepairConfig, RepairOutcome};
//!
//! let chip = topology::square_grid(4, 4);
//! let config = PlannerConfig::default();
//! let ctx = PlanContext::build(&chip, None, config.weights);
//! let activity = youtiao_core::tdm::brickwork_activity(&chip);
//! let base = YoutiaoPlanner::new(&chip)
//!     .with_activity(&activity)
//!     .with_config(config.clone())
//!     .with_context(&ctx)
//!     .plan()?;
//!
//! // A single crosstalk entry drifts.
//! let mut drifted = ctx.crosstalk().clone();
//! let (a, b) = (QubitId::new(2), QubitId::new(6));
//! drifted.set(a, b, drifted.get(a, b) * 3.0 + 1e-3);
//!
//! let old = PlanInputs { chip: &chip, xtalk: ctx.crosstalk(), activity: &activity };
//! let new = PlanInputs { chip: &chip, xtalk: &drifted, activity: &activity };
//! let changes = diff_inputs(&old, &new);
//! assert_eq!(changes.len(), 1);
//!
//! let report = repair_plan(&base, &ctx, &new, &changes, &config, &RepairConfig::default())?;
//! assert_eq!(report.outcome, RepairOutcome::Repaired);
//! assert_eq!(report.plan.fdm_lines(), base.fdm_lines());
//! # Ok::<(), youtiao_core::PlanError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod patch;
pub mod repair;

pub use crate::diff::{diff_inputs, Change, ChangeSet, PlanInputs};
pub use crate::patch::patch_frequencies;
pub use crate::repair::{
    repair_plan, replan_from_snapshot, QualityReport, RepairConfig, RepairOutcome, RepairReport,
};
