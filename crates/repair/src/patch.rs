//! Local frequency re-placement for dirty qubits.
//!
//! A full [`youtiao_core::allocate_frequencies`] run is globally
//! sequential — every qubit's cell choice depends on all earlier
//! placements — and dominates plan time on large chips. When only a
//! few crosstalk entries drifted, the patcher instead keeps every
//! clean qubit's assignment fixed and re-places only the dirty qubits,
//! cell-scored against *all* other qubits (not just earlier ones) with
//! the allocator's exact kernelized cost model: sparse
//! positive-crosstalk neighbor lists ([`FreqKernels`]), spectral
//! proximity from the shared [`ScalingTable`] over the cell lattice, a
//! `100 × xtalk` penalty for cell reuse, and the allocator's
//! [`cell_better`] empty-vs-reuse policy. A final swap pass over the
//! lines containing dirty qubits mirrors the allocator's in-group swap
//! stage via the same exact O(deg(a)+deg(b)) objective delta — repair
//! and replan share one cost model and cannot drift.
//!
//! The patched plan keeps each line's zone multiset (and hence the
//! in-line spacing guarantee) identical to the base plan; only dirty
//! qubits' frequencies move, plus any assignments exchanged within a
//! line by an improving swap.

use youtiao_chip::distance::DistanceMatrix;
use youtiao_chip::{Chip, QubitId};
use youtiao_core::freq::cell_better;
use youtiao_core::{BandLattice, FreqConfig, FreqKernels, FrequencyPlan, PlanError, ScalingTable};

/// Re-places the `dirty` qubits of a base frequency plan against the
/// new `xtalk` matrix, holding every other qubit's assignment fixed.
///
/// `lines` are the frequency-sharing groups the base plan was
/// allocated for (FDM lines for the qubit band, feedlines for the
/// readout band), as plain qubit slices; they must cover every chip
/// qubit exactly once. Zones are inherited from the base plan, so the
/// in-line zone-distinctness invariant is preserved by construction.
/// `kernels` must be built from `xtalk` — a context that took the
/// matching [`youtiao_core::PlanContext::apply_crosstalk_delta`]
/// provides exactly that via `freq_kernels()`.
///
/// Returns a plan whose reused-cell count is recounted from the final
/// cell occupancy.
///
/// # Errors
///
/// * [`PlanError::InvalidConfig`] — degenerate band or cell size.
/// * [`PlanError::FrequencyCrowded`] — a dirty qubit has no feasible
///   cell in its zone (only possible with a tuning-range constraint).
///
/// # Panics
///
/// Panics if the base plan, matrix, kernels, or lines disagree with
/// the chip's qubit count.
pub fn patch_frequencies(
    chip: &Chip,
    lines: &[&[QubitId]],
    base: &FrequencyPlan,
    kernels: &FreqKernels,
    xtalk: &DistanceMatrix,
    config: &FreqConfig,
    dirty: &[QubitId],
) -> Result<FrequencyPlan, PlanError> {
    let n = chip.num_qubits();
    assert_eq!(base.frequencies().len(), n, "base plan size mismatch");
    assert_eq!(xtalk.len(), n, "crosstalk matrix size mismatch");
    assert_eq!(kernels.num_qubits(), n, "freq kernels size mismatch");
    let covered: usize = lines.iter().map(|l| l.len()).sum();
    assert_eq!(covered, n, "lines must cover every qubit exactly once");

    let lattice = BandLattice::new(config, base.zones())?;
    let zones = lattice.zones();
    let cells_per_zone = lattice.cells_per_zone();
    let mut table = ScalingTable::new(&lattice);

    let mut freqs: Vec<f64> = base.frequencies().to_vec();
    let mut zone_of: Vec<usize> = (0..n)
        .map(|i| base.zone_of(QubitId::new(i as u32)))
        .collect();

    let mut dirty_mask = vec![false; n];
    for &q in dirty {
        assert!(q.index() < n, "dirty qubit out of range");
        dirty_mask[q.index()] = true;
    }

    // Cell occupancy of the clean qubits, filled in line order to
    // mirror the allocator; dirty qubits join as they are re-placed.
    // Every assigned qubit's lattice slot backs the table lookups.
    let mut occupancy: Vec<Vec<Vec<QubitId>>> = vec![vec![Vec::new(); cells_per_zone]; zones];
    let mut assigned = vec![false; n];
    let mut slot_of = vec![usize::MAX; n];
    for line in lines {
        for &q in *line {
            if !dirty_mask[q.index()] {
                let zone = zone_of[q.index()];
                let cell = lattice.cell_of(zone, freqs[q.index()]);
                let slot = table.slot(zone, cell);
                occupancy[zone][cell].push(q);
                slot_of[q.index()] = slot;
                table.ensure_row(slot);
                assigned[q.index()] = true;
            }
        }
    }

    // Re-place dirty qubits in line order, scored against every
    // already-assigned qubit with the allocator's exact cost model.
    let mut scores = vec![0.0f64; cells_per_zone];
    for line in lines {
        for &q in *line {
            if !dirty_mask[q.index()] {
                continue;
            }
            let zone = zone_of[q.index()];
            let qbase = chip
                .qubit(q)
                .expect("qubit id in range")
                .base_frequency_ghz();
            // Transposed scoring, as in the allocator: walk each
            // assigned neighbor's scaling row once over the zone's
            // contiguous slot range. Per cell the terms accumulate in
            // the same ascending-id order as a per-cell sweep.
            let zone_base = table.slot(zone, 0);
            scores.fill(0.0);
            for &(p, x) in kernels.neighbors(q) {
                if assigned[p as usize] {
                    let row =
                        &table.row(slot_of[p as usize])[zone_base..zone_base + cells_per_zone];
                    for (s, r) in scores.iter_mut().zip(row) {
                        *s += x * r;
                    }
                }
            }
            let mut best: Option<(usize, f64, bool)> = None;
            #[allow(clippy::needless_range_loop)] // occupancy[zone] is borrowed per cell
            for cell in 0..cells_per_zone {
                let slot = table.slot(zone, cell);
                let f = table.freq(slot);
                if let Some(range) = config.tuning_range_ghz {
                    if (f - qbase).abs() > range {
                        continue;
                    }
                }
                let occupants = &occupancy[zone][cell];
                let reuse = !occupants.is_empty();
                let mut cost = scores[cell];
                if reuse {
                    for &p in occupants {
                        cost += 100.0 * xtalk.get(q, p);
                    }
                }
                if cell_better(&best, cost, reuse) {
                    best = Some((cell, cost, reuse));
                }
            }
            let (cell, _, _) = best.ok_or(PlanError::FrequencyCrowded { qubit: q })?;
            let slot = table.slot(zone, cell);
            freqs[q.index()] = table.freq(slot);
            slot_of[q.index()] = slot;
            table.ensure_row(slot);
            occupancy[zone][cell].push(q);
            assigned[q.index()] = true;
        }
    }

    // Recount reuse from the final occupancy: every arrival after a
    // cell's first occupant was a reuse event. Swaps below exchange
    // frequencies within lines, permuting qubits among the same cells —
    // the occupancy multiset (and hence the count) is invariant.
    let reused_cells: usize = occupancy
        .iter()
        .flatten()
        .map(|occ| occ.len().saturating_sub(1))
        .sum();

    // In-group swap pass over the lines that contain a dirty qubit,
    // mirroring the allocator's swap stage: keep a swap exactly when
    // its kernelized objective delta is negative.
    let dirty_lines: Vec<&[QubitId]> = lines
        .iter()
        .copied()
        .filter(|line| line.iter().any(|q| dirty_mask[q.index()]))
        .collect();
    for _ in 0..config.swap_passes {
        let mut improved = false;
        for line in &dirty_lines {
            for i in 0..line.len() {
                for j in (i + 1)..line.len() {
                    let (a, b) = (line[i], line[j]);
                    if let Some(range) = config.tuning_range_ghz {
                        let base_a = chip.qubit(a).expect("in range").base_frequency_ghz();
                        let base_b = chip.qubit(b).expect("in range").base_frequency_ghz();
                        let (fa, fb) = (freqs[a.index()], freqs[b.index()]);
                        if (fb - base_a).abs() > range || (fa - base_b).abs() > range {
                            continue;
                        }
                    }
                    if table.swap_delta(kernels, &slot_of, a, b) < 0.0 {
                        freqs.swap(a.index(), b.index());
                        zone_of.swap(a.index(), b.index());
                        slot_of.swap(a.index(), b.index());
                        improved = true;
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }

    Ok(FrequencyPlan::from_frequencies(freqs, zones, zone_of).with_reused_cells(reused_cells))
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtiao_chip::distance::{equivalent_matrix, EquivalentWeights};
    use youtiao_chip::topology;
    use youtiao_core::plan::crosstalk_matrix;
    use youtiao_core::{allocate_frequencies, group_fdm};

    fn setup(n: usize) -> (Chip, Vec<youtiao_core::FdmLine>, DistanceMatrix) {
        let chip = topology::square_grid(n, n);
        let eq = equivalent_matrix(&chip, EquivalentWeights::balanced());
        let lines = group_fdm(&chip, &eq, 5);
        let x = crosstalk_matrix(&chip, &eq, None);
        (chip, lines, x)
    }

    fn slices(lines: &[youtiao_core::FdmLine]) -> Vec<&[QubitId]> {
        lines.iter().map(|l| l.qubits()).collect()
    }

    fn patch(
        chip: &Chip,
        lines: &[&[QubitId]],
        base: &FrequencyPlan,
        xtalk: &DistanceMatrix,
        cfg: &FreqConfig,
        dirty: &[QubitId],
    ) -> Result<FrequencyPlan, PlanError> {
        let kernels = FreqKernels::build(xtalk);
        patch_frequencies(chip, lines, base, &kernels, xtalk, cfg, dirty)
    }

    use youtiao_chip::Chip;

    #[test]
    fn empty_dirty_set_reproduces_the_base_plan() {
        let (chip, lines, x) = setup(4);
        let cfg = FreqConfig::default();
        let base = allocate_frequencies(&chip, &lines, &x, &cfg).unwrap();
        let patched = patch(&chip, &slices(&lines), &base, &x, &cfg, &[]).unwrap();
        assert_eq!(patched, base);
    }

    #[test]
    fn patched_qubits_stay_in_zone_and_band() {
        let (chip, lines, x) = setup(5);
        let cfg = FreqConfig::default();
        let base = allocate_frequencies(&chip, &lines, &x, &cfg).unwrap();
        let (a, b) = (QubitId::new(2), QubitId::new(17));
        let mut drifted = x.clone();
        drifted.set(a, b, drifted.get(a, b) * 4.0 + 2e-3);
        let patched = patch(&chip, &slices(&lines), &base, &drifted, &cfg, &[a, b]).unwrap();
        for q in chip.qubit_ids() {
            let f = patched.frequency_ghz(q);
            assert!((4.0..=7.0).contains(&f), "{q} at {f}");
        }
        // Swaps may exchange zones between members of the same line,
        // but each line's zone multiset is preserved.
        for line in &lines {
            let zone_set = |p: &FrequencyPlan| {
                let mut z: Vec<usize> = line.qubits().iter().map(|&q| p.zone_of(q)).collect();
                z.sort_unstable();
                z
            };
            assert_eq!(zone_set(&patched), zone_set(&base));
        }
        // Clean qubits keep their frequencies up to in-line swaps; at
        // minimum the plan is deterministic.
        let again = patch(&chip, &slices(&lines), &base, &drifted, &cfg, &[a, b]).unwrap();
        assert_eq!(patched, again);
    }

    #[test]
    fn patch_lowers_or_holds_the_objective_on_the_new_matrix() {
        let (chip, lines, x) = setup(5);
        let cfg = FreqConfig::default();
        let base = allocate_frequencies(&chip, &lines, &x, &cfg).unwrap();
        let (a, b) = (QubitId::new(3), QubitId::new(11));
        let mut drifted = x.clone();
        drifted.set(a, b, drifted.get(a, b) * 10.0 + 5e-3);
        let patched = patch(&chip, &slices(&lines), &base, &drifted, &cfg, &[a, b]).unwrap();
        assert!(
            patched.objective(&drifted) <= base.objective(&drifted) + 1e-12,
            "patched {} vs stale {}",
            patched.objective(&drifted),
            base.objective(&drifted)
        );
    }

    #[test]
    fn reuse_recount_matches_allocator_on_crowded_zones() {
        let chip = topology::square_grid(3, 3);
        let eq = equivalent_matrix(&chip, EquivalentWeights::balanced());
        let lines = group_fdm(&chip, &eq, 2);
        let x = crosstalk_matrix(&chip, &eq, None);
        let cfg = FreqConfig {
            cell_mhz: 600.0,
            ..Default::default()
        };
        let base = allocate_frequencies(&chip, &lines, &x, &cfg).unwrap();
        assert!(base.reused_cells() > 0);
        let patched = patch(&chip, &slices(&lines), &base, &x, &cfg, &[]).unwrap();
        assert_eq!(patched.reused_cells(), base.reused_cells());
    }

    #[test]
    fn tuning_range_is_respected_for_patched_qubits() {
        let (chip, lines, x) = setup(4);
        let cfg = FreqConfig::retuning();
        let base = allocate_frequencies(&chip, &lines, &x, &cfg).unwrap();
        let (a, b) = (QubitId::new(1), QubitId::new(9));
        let mut drifted = x.clone();
        drifted.set(a, b, drifted.get(a, b) * 3.0 + 1e-3);
        let patched = patch(&chip, &slices(&lines), &base, &drifted, &cfg, &[a, b]).unwrap();
        for q in chip.qubit_ids() {
            let qbase = chip.qubit(q).unwrap().base_frequency_ghz();
            assert!(
                (patched.frequency_ghz(q) - qbase).abs() <= 0.05 + 1e-12,
                "{q} outside tuning window"
            );
        }
    }

    /// The patcher and the allocator share one cost model: patching
    /// with an *empty* dirty set after a drift must leave the plan
    /// alone, and patching all qubits of a line must stay inside the
    /// allocator's lattice.
    #[test]
    fn patched_frequencies_lie_on_the_allocator_lattice() {
        let (chip, lines, x) = setup(4);
        let cfg = FreqConfig::default();
        let base = allocate_frequencies(&chip, &lines, &x, &cfg).unwrap();
        let dirty: Vec<QubitId> = lines[0].qubits().to_vec();
        let mut drifted = x.clone();
        drifted.set(dirty[0], dirty[1], 5e-3);
        let patched = patch(&chip, &slices(&lines), &base, &drifted, &cfg, &dirty).unwrap();
        let lattice = BandLattice::new(&cfg, base.zones()).unwrap();
        for q in chip.qubit_ids() {
            let zone = patched.zone_of(q);
            let cell = lattice.cell_of(zone, patched.frequency_ghz(q));
            assert_eq!(
                lattice.cell_freq(zone, cell).to_bits(),
                patched.frequency_ghz(q).to_bits(),
                "{q} off-lattice"
            );
        }
    }
}
