//! Local frequency re-placement for dirty qubits.
//!
//! A full [`youtiao_core::allocate_frequencies`] run is globally
//! sequential — every qubit's cell choice depends on all earlier
//! placements — and dominates plan time on large chips. When only a
//! few crosstalk entries drifted, the patcher instead keeps every
//! clean qubit's assignment fixed and re-places only the dirty qubits,
//! cell-scored against *all* other qubits (not just earlier ones) with
//! the allocator's exact cost model: crosstalk scaled by spectral
//! proximity, a `100 × xtalk` penalty for cell reuse, and
//! prefer-empty-over-reuse tie-breaking. A final swap pass over the
//! lines containing dirty qubits mirrors the allocator's in-group swap
//! stage with an O(n) incremental objective delta.
//!
//! The patched plan keeps each line's zone multiset (and hence the
//! in-line spacing guarantee) identical to the base plan; only dirty
//! qubits' frequencies move, plus any assignments exchanged within a
//! line by an improving swap.

use youtiao_chip::distance::DistanceMatrix;
use youtiao_chip::{Chip, QubitId};
use youtiao_core::{FreqConfig, FrequencyPlan, PlanError};
use youtiao_noise::model::frequency_scaling;

/// Objective change from swapping the frequencies of `a` and `b`
/// (in-line swap): only terms involving `a` or `b` move, and the
/// `(a, b)` pair term is invariant (`|f_a' - f_b'| = |f_b - f_a|`).
fn swap_delta(xtalk: &DistanceMatrix, freqs: &[f64], a: QubitId, b: QubitId) -> f64 {
    let (fa, fb) = (freqs[a.index()], freqs[b.index()]);
    let mut delta = 0.0;
    for (p, &fp) in freqs.iter().enumerate() {
        if p == a.index() || p == b.index() {
            continue;
        }
        let q = QubitId::new(p as u32);
        let xa = xtalk.get(a, q);
        if xa > 0.0 {
            delta += xa * (frequency_scaling(fb - fp) - frequency_scaling(fa - fp));
        }
        let xb = xtalk.get(b, q);
        if xb > 0.0 {
            delta += xb * (frequency_scaling(fa - fp) - frequency_scaling(fb - fp));
        }
    }
    delta
}

/// Re-places the `dirty` qubits of a base frequency plan against the
/// new `xtalk` matrix, holding every other qubit's assignment fixed.
///
/// `lines` are the frequency-sharing groups the base plan was
/// allocated for (FDM lines for the qubit band, feedlines for the
/// readout band), as plain qubit slices; they must cover every chip
/// qubit exactly once. Zones are inherited from the base plan, so the
/// in-line zone-distinctness invariant is preserved by construction.
///
/// Returns a plan whose reused-cell count is recounted from the final
/// cell occupancy.
///
/// # Errors
///
/// * [`PlanError::InvalidConfig`] — degenerate band or cell size.
/// * [`PlanError::FrequencyCrowded`] — a dirty qubit has no feasible
///   cell in its zone (only possible with a tuning-range constraint).
///
/// # Panics
///
/// Panics if the base plan, matrix, or lines disagree with the chip's
/// qubit count.
pub fn patch_frequencies(
    chip: &Chip,
    lines: &[&[QubitId]],
    base: &FrequencyPlan,
    xtalk: &DistanceMatrix,
    config: &FreqConfig,
    dirty: &[QubitId],
) -> Result<FrequencyPlan, PlanError> {
    let n = chip.num_qubits();
    assert_eq!(base.frequencies().len(), n, "base plan size mismatch");
    assert_eq!(xtalk.len(), n, "crosstalk matrix size mismatch");
    let covered: usize = lines.iter().map(|l| l.len()).sum();
    assert_eq!(covered, n, "lines must cover every qubit exactly once");

    let (lo, hi) = config.band_ghz;
    if hi <= lo || config.cell_mhz <= 0.0 {
        return Err(PlanError::InvalidConfig("frequency band or cell size"));
    }
    let zones = base.zones();
    let zone_width = (hi - lo) / zones as f64;
    let cells_per_zone = ((zone_width * 1000.0) / config.cell_mhz).floor() as usize;
    if cells_per_zone == 0 {
        return Err(PlanError::InvalidConfig("cell size exceeds zone width"));
    }
    let cell_step = config.cell_mhz / 1000.0;
    let cell_freq = |zone: usize, cell: usize| -> f64 {
        lo + zone as f64 * zone_width + (cell as f64 + 0.5) * cell_step
    };
    let cell_of = |zone: usize, f: f64| -> usize {
        let raw = ((f - lo - zone as f64 * zone_width) / cell_step - 0.5).round();
        (raw as isize).clamp(0, cells_per_zone as isize - 1) as usize
    };

    let mut freqs: Vec<f64> = base.frequencies().to_vec();
    let mut zone_of: Vec<usize> = (0..n)
        .map(|i| base.zone_of(QubitId::new(i as u32)))
        .collect();

    let mut dirty_mask = vec![false; n];
    for &q in dirty {
        assert!(q.index() < n, "dirty qubit out of range");
        dirty_mask[q.index()] = true;
    }

    // Cell occupancy of the clean qubits, filled in line order to
    // mirror the allocator; dirty qubits join as they are re-placed.
    let mut occupancy: Vec<Vec<Vec<QubitId>>> = vec![vec![Vec::new(); cells_per_zone]; zones];
    let mut assigned = vec![false; n];
    for line in lines {
        for &q in *line {
            if !dirty_mask[q.index()] {
                let zone = zone_of[q.index()];
                occupancy[zone][cell_of(zone, freqs[q.index()])].push(q);
                assigned[q.index()] = true;
            }
        }
    }

    // Re-place dirty qubits in line order, scored against every
    // already-assigned qubit with the allocator's exact cost model.
    for line in lines {
        for &q in *line {
            if !dirty_mask[q.index()] {
                continue;
            }
            let zone = zone_of[q.index()];
            let qbase = chip
                .qubit(q)
                .expect("qubit id in range")
                .base_frequency_ghz();
            let mut best: Option<(usize, f64, bool)> = None;
            #[allow(clippy::needless_range_loop)] // occupancy[zone] is borrowed per cell
            for cell in 0..cells_per_zone {
                let f = cell_freq(zone, cell);
                if let Some(range) = config.tuning_range_ghz {
                    if (f - qbase).abs() > range {
                        continue;
                    }
                }
                let occupants = &occupancy[zone][cell];
                let reuse = !occupants.is_empty();
                let mut cost = 0.0;
                for p in 0..n {
                    if !assigned[p] || p == q.index() {
                        continue;
                    }
                    let x = xtalk.get(q, QubitId::new(p as u32));
                    if x > 0.0 {
                        cost += x * frequency_scaling(f - freqs[p]);
                    }
                }
                if reuse {
                    for &p in occupants {
                        cost += 100.0 * xtalk.get(q, p);
                    }
                }
                let better = match best {
                    None => true,
                    Some((_, bc, breuse)) => (reuse == breuse && cost < bc) || (!reuse && breuse),
                };
                if better {
                    best = Some((cell, cost, reuse));
                }
            }
            let (cell, _, _) = best.ok_or(PlanError::FrequencyCrowded { qubit: q })?;
            freqs[q.index()] = cell_freq(zone, cell);
            occupancy[zone][cell].push(q);
            assigned[q.index()] = true;
        }
    }

    // Recount reuse from the final occupancy: every arrival after a
    // cell's first occupant was a reuse event. Swaps below exchange
    // frequencies within lines, permuting qubits among the same cells —
    // the occupancy multiset (and hence the count) is invariant.
    let reused_cells: usize = occupancy
        .iter()
        .flatten()
        .map(|occ| occ.len().saturating_sub(1))
        .sum();

    // In-group swap pass over the lines that contain a dirty qubit,
    // mirroring the allocator's swap stage via the O(n) delta.
    let dirty_lines: Vec<&[QubitId]> = lines
        .iter()
        .copied()
        .filter(|line| line.iter().any(|q| dirty_mask[q.index()]))
        .collect();
    for _ in 0..config.swap_passes {
        let mut improved = false;
        for line in &dirty_lines {
            for i in 0..line.len() {
                for j in (i + 1)..line.len() {
                    let (a, b) = (line[i], line[j]);
                    if let Some(range) = config.tuning_range_ghz {
                        let base_a = chip.qubit(a).expect("in range").base_frequency_ghz();
                        let base_b = chip.qubit(b).expect("in range").base_frequency_ghz();
                        let (fa, fb) = (freqs[a.index()], freqs[b.index()]);
                        if (fb - base_a).abs() > range || (fa - base_b).abs() > range {
                            continue;
                        }
                    }
                    if swap_delta(xtalk, &freqs, a, b) < -1e-15 {
                        freqs.swap(a.index(), b.index());
                        zone_of.swap(a.index(), b.index());
                        improved = true;
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }

    Ok(FrequencyPlan::from_frequencies(freqs, zones, zone_of).with_reused_cells(reused_cells))
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtiao_chip::distance::{equivalent_matrix, EquivalentWeights};
    use youtiao_chip::topology;
    use youtiao_core::plan::crosstalk_matrix;
    use youtiao_core::{allocate_frequencies, group_fdm};

    fn setup(n: usize) -> (Chip, Vec<youtiao_core::FdmLine>, DistanceMatrix) {
        let chip = topology::square_grid(n, n);
        let eq = equivalent_matrix(&chip, EquivalentWeights::balanced());
        let lines = group_fdm(&chip, &eq, 5);
        let x = crosstalk_matrix(&chip, &eq, None);
        (chip, lines, x)
    }

    fn slices(lines: &[youtiao_core::FdmLine]) -> Vec<&[QubitId]> {
        lines.iter().map(|l| l.qubits()).collect()
    }

    use youtiao_chip::Chip;

    #[test]
    fn empty_dirty_set_reproduces_the_base_plan() {
        let (chip, lines, x) = setup(4);
        let cfg = FreqConfig::default();
        let base = allocate_frequencies(&chip, &lines, &x, &cfg).unwrap();
        let patched = patch_frequencies(&chip, &slices(&lines), &base, &x, &cfg, &[]).unwrap();
        assert_eq!(patched, base);
    }

    #[test]
    fn patched_qubits_stay_in_zone_and_band() {
        let (chip, lines, x) = setup(5);
        let cfg = FreqConfig::default();
        let base = allocate_frequencies(&chip, &lines, &x, &cfg).unwrap();
        let (a, b) = (QubitId::new(2), QubitId::new(17));
        let mut drifted = x.clone();
        drifted.set(a, b, drifted.get(a, b) * 4.0 + 2e-3);
        let patched =
            patch_frequencies(&chip, &slices(&lines), &base, &drifted, &cfg, &[a, b]).unwrap();
        for q in chip.qubit_ids() {
            let f = patched.frequency_ghz(q);
            assert!((4.0..=7.0).contains(&f), "{q} at {f}");
        }
        // Swaps may exchange zones between members of the same line,
        // but each line's zone multiset is preserved.
        for line in &lines {
            let zone_set = |p: &FrequencyPlan| {
                let mut z: Vec<usize> = line.qubits().iter().map(|&q| p.zone_of(q)).collect();
                z.sort_unstable();
                z
            };
            assert_eq!(zone_set(&patched), zone_set(&base));
        }
        // Clean qubits keep their frequencies up to in-line swaps; at
        // minimum the plan is deterministic.
        let again =
            patch_frequencies(&chip, &slices(&lines), &base, &drifted, &cfg, &[a, b]).unwrap();
        assert_eq!(patched, again);
    }

    #[test]
    fn patch_lowers_or_holds_the_objective_on_the_new_matrix() {
        let (chip, lines, x) = setup(5);
        let cfg = FreqConfig::default();
        let base = allocate_frequencies(&chip, &lines, &x, &cfg).unwrap();
        let (a, b) = (QubitId::new(3), QubitId::new(11));
        let mut drifted = x.clone();
        drifted.set(a, b, drifted.get(a, b) * 10.0 + 5e-3);
        let patched =
            patch_frequencies(&chip, &slices(&lines), &base, &drifted, &cfg, &[a, b]).unwrap();
        assert!(
            patched.objective(&drifted) <= base.objective(&drifted) + 1e-12,
            "patched {} vs stale {}",
            patched.objective(&drifted),
            base.objective(&drifted)
        );
    }

    #[test]
    fn reuse_recount_matches_allocator_on_crowded_zones() {
        let chip = topology::square_grid(3, 3);
        let eq = equivalent_matrix(&chip, EquivalentWeights::balanced());
        let lines = group_fdm(&chip, &eq, 2);
        let x = crosstalk_matrix(&chip, &eq, None);
        let cfg = FreqConfig {
            cell_mhz: 600.0,
            ..Default::default()
        };
        let base = allocate_frequencies(&chip, &lines, &x, &cfg).unwrap();
        assert!(base.reused_cells() > 0);
        let patched = patch_frequencies(&chip, &slices(&lines), &base, &x, &cfg, &[]).unwrap();
        assert_eq!(patched.reused_cells(), base.reused_cells());
    }

    #[test]
    fn tuning_range_is_respected_for_patched_qubits() {
        let (chip, lines, x) = setup(4);
        let cfg = FreqConfig::retuning();
        let base = allocate_frequencies(&chip, &lines, &x, &cfg).unwrap();
        let (a, b) = (QubitId::new(1), QubitId::new(9));
        let mut drifted = x.clone();
        drifted.set(a, b, drifted.get(a, b) * 3.0 + 1e-3);
        let patched =
            patch_frequencies(&chip, &slices(&lines), &base, &drifted, &cfg, &[a, b]).unwrap();
        for q in chip.qubit_ids() {
            let qbase = chip.qubit(q).unwrap().base_frequency_ghz();
            assert!(
                (patched.frequency_ghz(q) - qbase).abs() <= 0.05 + 1e-12,
                "{q} outside tuning window"
            );
        }
    }
}
