//! The incremental repair pass.
//!
//! Given a base plan, the [`youtiao_core::PlanContext`] it was planned
//! against, the new input snapshot, and the [`ChangeSet`] separating
//! them, [`repair_plan`] either:
//!
//! 1. returns the base plan unchanged (empty change set);
//! 2. repairs locally — patch the context's kernel rows for the dirty
//!    qubits, dissolve only the TDM groups touching a dirty device,
//!    regroup and refine that pool, stitch it onto the untouched
//!    groups, patch frequencies for the dirty qubits, and validate the
//!    stitched plan; or
//! 3. falls back to a full replan — for structural changes, change
//!    sets past the fallback threshold, or a stitched plan that fails
//!    validation. The fallback is byte-identical to planning the new
//!    snapshot from scratch ([`replan_from_snapshot`]) by construction.

use std::collections::HashSet;

use youtiao_chip::distance::DistanceMatrix;
use youtiao_chip::{DeviceId, QubitId};
use youtiao_core::tdm::{group_extra_windows, group_tdm_kernels, ActivityProfile};
use youtiao_core::{
    FdmLine, PlanContext, PlanError, PlannerConfig, TdmGroup, WiringPlan, YoutiaoPlanner,
};
use youtiao_obs::validate::{check_plan_with_activity, ValidationReport};

use crate::diff::{ChangeSet, PlanInputs};
use crate::patch::patch_frequencies;

/// Configuration of the repair pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairConfig {
    /// Fall back to a full replan when the dirty devices exceed this
    /// fraction of all chip devices; `0.0` always replans, `1.0` never
    /// gives up on a local repair.
    pub fallback_fraction: f64,
    /// Validate the repaired plan with
    /// [`check_plan_with_activity`] and fall back on any violation.
    pub validate: bool,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            fallback_fraction: 0.25,
            validate: true,
        }
    }
}

/// How the repair pass resolved a change set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairOutcome {
    /// The change set was empty; the base plan is returned as is.
    Unchanged,
    /// The plan was repaired locally.
    Repaired,
    /// The pass fell back to a full replan.
    FullReplan {
        /// Why the local repair was not attempted (or was rejected).
        reason: &'static str,
    },
}

impl RepairOutcome {
    /// Short machine-readable label (`unchanged` / `repaired` /
    /// `full_replan`).
    pub fn as_str(&self) -> &'static str {
        match self {
            RepairOutcome::Unchanged => "unchanged",
            RepairOutcome::Repaired => "repaired",
            RepairOutcome::FullReplan { .. } => "full_replan",
        }
    }
}

/// The result of a repair pass.
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// The repaired (or replanned, or unchanged) plan.
    pub plan: WiringPlan,
    /// A context consistent with `plan` and the new snapshot — the
    /// delta-patched base context on the repair path, a fresh build on
    /// the fallback path. Callers serving further deltas store this as
    /// the new base.
    pub context: PlanContext,
    /// How the change set was resolved.
    pub outcome: RepairOutcome,
    /// Kernel rows recomputed by the delta (0 on fallback paths).
    pub invalidated_rows: usize,
    /// Qubits touched by value-only crosstalk changes.
    pub dirty_qubits: usize,
    /// TDM groups dissolved and regrouped.
    pub dirty_groups: usize,
    /// Devices pooled into the regrouping.
    pub regrouped_devices: usize,
    /// Validation of the returned plan, when requested.
    pub validation: Option<ValidationReport>,
}

/// Plans the new snapshot from scratch: a context built from the
/// explicit matrix via [`PlanContext::from_matrix`] and a full
/// planner run against it. This is the *definition* of the fallback
/// path — the differential suite pins `repair_plan`'s fallback output
/// byte-identical to this function.
///
/// # Errors
///
/// Any [`PlanError`] the planner raises.
pub fn replan_from_snapshot(
    new: &PlanInputs<'_>,
    planner: &PlannerConfig,
) -> Result<(WiringPlan, PlanContext), PlanError> {
    let context = PlanContext::from_matrix(new.chip, planner.weights, new.xtalk.clone());
    let plan = YoutiaoPlanner::new(new.chip)
        .with_activity(new.activity)
        .with_config(planner.clone())
        .with_context(&context)
        .plan()?;
    Ok((plan, context))
}

fn full_replan(
    new: &PlanInputs<'_>,
    planner: &PlannerConfig,
    config: &RepairConfig,
    reason: &'static str,
    dirty_qubits: usize,
) -> Result<RepairReport, PlanError> {
    let (plan, context) = replan_from_snapshot(new, planner)?;
    let validation = config
        .validate
        .then(|| check_plan_with_activity(new.chip, &plan, planner, new.activity));
    Ok(RepairReport {
        plan,
        context,
        outcome: RepairOutcome::FullReplan { reason },
        invalidated_rows: 0,
        dirty_qubits,
        dirty_groups: 0,
        regrouped_devices: 0,
        validation,
    })
}

/// Repairs `base` (planned against `context`) toward the new input
/// snapshot, given the `changes` separating the snapshots (from
/// [`crate::diff_inputs`]). See the module docs for the three
/// resolution paths.
///
/// On the repair path, FDM lines, readout-line membership, and the
/// partition are byte-identical to `base`; TDM groups
/// not touching a dirty device are byte-identical and keep their
/// relative order, with regrouped ones appended.
///
/// # Errors
///
/// Any [`PlanError`] from the frequency patcher that a full replan
/// also cannot absorb, or from the fallback planner run.
pub fn repair_plan(
    base: &WiringPlan,
    context: &PlanContext,
    new: &PlanInputs<'_>,
    changes: &ChangeSet,
    planner: &PlannerConfig,
    config: &RepairConfig,
) -> Result<RepairReport, PlanError> {
    if changes.is_empty() {
        return Ok(RepairReport {
            plan: base.clone(),
            context: context.clone(),
            outcome: RepairOutcome::Unchanged,
            invalidated_rows: 0,
            dirty_qubits: 0,
            dirty_groups: 0,
            regrouped_devices: 0,
            validation: None,
        });
    }
    if changes.structural() {
        return full_replan(new, planner, config, "structural change", 0);
    }
    if context.is_stale(new.chip) {
        // Non-structural change set but a context for a different
        // chip: the caller paired mismatched snapshots. Replan.
        return full_replan(new, planner, config, "stale plan context", 0);
    }

    let dirty_qubits = changes.dirty_qubits();

    // The dirty device set: dirty qubits, their incident couplers, and
    // devices whose activity mask changed.
    let mut dirty_devices: HashSet<DeviceId> = HashSet::new();
    for &q in &dirty_qubits {
        dirty_devices.insert(DeviceId::Qubit(q));
        for &c in new.chip.couplers_of(q) {
            dirty_devices.insert(DeviceId::Coupler(c));
        }
    }
    for d in changes.activity_devices() {
        dirty_devices.insert(d);
    }

    let num_devices = new.chip.num_qubits() + new.chip.num_couplers();
    let fraction = dirty_devices.len() as f64 / num_devices as f64;
    if fraction > config.fallback_fraction {
        return full_replan(
            new,
            planner,
            config,
            "change set exceeds the fallback threshold",
            dirty_qubits.len(),
        );
    }

    // Kernel-level invalidation: patch only the dirty rows.
    let mut ctx = context.clone();
    let invalidated_rows = if dirty_qubits.is_empty() {
        0
    } else {
        match ctx.apply_crosstalk_delta(new.chip, new.xtalk.clone(), &dirty_qubits) {
            Ok(rows) => rows,
            Err(_) => {
                return full_replan(
                    new,
                    planner,
                    config,
                    "kernel delta rejected",
                    dirty_qubits.len(),
                )
            }
        }
    };

    // Dissolve only the TDM groups touching a dirty device; keep the
    // rest byte-identical and in order.
    let mut kept: Vec<TdmGroup> = Vec::new();
    let mut pool: Vec<DeviceId> = Vec::new();
    let mut dirty_groups = 0usize;
    for group in base.tdm_groups() {
        if group.devices().iter().any(|d| dirty_devices.contains(d)) {
            dirty_groups += 1;
            pool.extend_from_slice(group.devices());
        } else {
            kept.push(group.clone());
        }
    }
    pool.sort_unstable();
    let regrouped_devices = pool.len();

    let mut regrouped = group_tdm_kernels(ctx.kernels(), &planner.tdm, &pool, new.activity);
    if let Some(refine) = &planner.refine {
        let (refined, _removed) = youtiao_core::refine::refine_tdm_groups_kernels(
            ctx.kernels(),
            new.activity,
            &planner.tdm,
            regrouped,
            refine,
        );
        regrouped = refined;
    }
    let mut tdm_groups = kept;
    tdm_groups.extend(regrouped);

    // Frequencies: untouched for activity-only deltas; locally patched
    // for the dirty qubits otherwise (both bands share the patcher,
    // exactly as the planner shares the allocator).
    let (frequency_plan, readout_frequency_plan) = if dirty_qubits.is_empty() {
        (
            base.frequency_plan().clone(),
            base.readout_frequency_plan().clone(),
        )
    } else {
        let xy_lines: Vec<&[QubitId]> = base.fdm_lines().iter().map(FdmLine::qubits).collect();
        let ro_lines: Vec<&[QubitId]> = base.readout_lines().iter().map(Vec::as_slice).collect();
        // The context took the crosstalk delta above, so its freq
        // kernels match `new.xtalk` — both bands patch with the
        // allocator's exact kernelized cost model.
        let xy = patch_frequencies(
            new.chip,
            &xy_lines,
            base.frequency_plan(),
            ctx.freq_kernels(),
            new.xtalk,
            &planner.freq,
            &dirty_qubits,
        );
        let ro = patch_frequencies(
            new.chip,
            &ro_lines,
            base.readout_frequency_plan(),
            ctx.freq_kernels(),
            new.xtalk,
            &planner.readout_freq,
            &dirty_qubits,
        );
        match (xy, ro) {
            (Ok(xy), Ok(ro)) => (xy, ro),
            _ => {
                return full_replan(
                    new,
                    planner,
                    config,
                    "frequency patch failed",
                    dirty_qubits.len(),
                )
            }
        }
    };

    let plan = WiringPlan::from_parts(
        base.fdm_lines().to_vec(),
        frequency_plan,
        tdm_groups,
        base.readout_lines().to_vec(),
        readout_frequency_plan,
        base.partition().cloned(),
    );

    let validation = config
        .validate
        .then(|| check_plan_with_activity(new.chip, &plan, planner, new.activity));
    if let Some(report) = &validation {
        if !report.is_clean() {
            return full_replan(
                new,
                planner,
                config,
                "repaired plan failed validation",
                dirty_qubits.len(),
            );
        }
    }

    Ok(RepairReport {
        plan,
        context: ctx,
        outcome: RepairOutcome::Repaired,
        invalidated_rows,
        dirty_qubits: dirty_qubits.len(),
        dirty_groups,
        regrouped_devices,
        validation,
    })
}

/// Side-by-side quality comparison of two plans over the same snapshot
/// — the measurable half of the repair-vs-replan tie-break contract.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// XY coax line counts (left, right).
    pub xy_lines: (usize, usize),
    /// Z coax line counts.
    pub z_lines: (usize, usize),
    /// Readout feedline counts.
    pub readout_lines: (usize, usize),
    /// Total TDM extra scheduling windows under the activity profile.
    pub extra_windows: (u32, u32),
    /// Qubit-band spectral crosstalk objectives.
    pub freq_objective: (f64, f64),
    /// Readout-band spectral crosstalk objectives.
    pub readout_objective: (f64, f64),
}

impl QualityReport {
    /// Compares plan `a` against plan `b` over the snapshot's crosstalk
    /// matrix and activity profile.
    pub fn compare(
        a: &WiringPlan,
        b: &WiringPlan,
        xtalk: &DistanceMatrix,
        activity: &ActivityProfile,
    ) -> Self {
        let windows = |p: &WiringPlan| -> u32 {
            p.tdm_groups()
                .iter()
                .map(|g| group_extra_windows(g.devices(), activity))
                .sum()
        };
        QualityReport {
            xy_lines: (a.num_xy_lines(), b.num_xy_lines()),
            z_lines: (a.num_z_lines(), b.num_z_lines()),
            readout_lines: (a.num_readout_lines(), b.num_readout_lines()),
            extra_windows: (windows(a), windows(b)),
            freq_objective: (
                a.frequency_plan().objective(xtalk),
                b.frequency_plan().objective(xtalk),
            ),
            readout_objective: (
                a.readout_frequency_plan().objective(xtalk),
                b.readout_frequency_plan().objective(xtalk),
            ),
        }
    }

    /// The tie-break contract (`DESIGN.md` §4g): the left plan uses no
    /// more XY, Z, or readout lines than the right, and its spectral
    /// objectives are not worse than the right's by more than the
    /// relative tolerance. Every check is one-sided: the local
    /// regrouper and patcher re-optimize against fixed global
    /// assignments and routinely match — and occasionally beat — the
    /// from-scratch pipeline's greedy order on the drifted snapshot.
    pub fn quality_equal(&self, tolerance: f64) -> bool {
        let not_worse = |(x, y): (f64, f64)| -> bool {
            let scale = x.abs().max(y.abs()).max(f64::MIN_POSITIVE);
            x - y <= tolerance * scale
        };
        self.xy_lines.0 <= self.xy_lines.1
            && self.z_lines.0 <= self.z_lines.1
            && self.readout_lines.0 <= self.readout_lines.1
            && not_worse(self.freq_objective)
            && not_worse(self.readout_objective)
    }

    /// Multi-line textual rendering for logs and the CLI.
    pub fn render(&self) -> String {
        format!(
            "xy lines        {:>8} | {:<8}\n\
             z lines         {:>8} | {:<8}\n\
             readout lines   {:>8} | {:<8}\n\
             extra windows   {:>8} | {:<8}\n\
             freq objective  {:>12.6e} | {:<12.6e}\n\
             ro objective    {:>12.6e} | {:<12.6e}\n",
            self.xy_lines.0,
            self.xy_lines.1,
            self.z_lines.0,
            self.z_lines.1,
            self.readout_lines.0,
            self.readout_lines.1,
            self.extra_windows.0,
            self.extra_windows.1,
            self.freq_objective.0,
            self.freq_objective.1,
            self.readout_objective.0,
            self.readout_objective.1,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff_inputs;
    use youtiao_chip::spec::ChipSpec;
    use youtiao_chip::topology;
    use youtiao_core::tdm::brickwork_activity;

    fn snapshot(
        n: usize,
    ) -> (
        youtiao_chip::Chip,
        PlanContext,
        ActivityProfile,
        PlannerConfig,
    ) {
        let chip = topology::square_grid(n, n);
        let config = PlannerConfig {
            refine: Some(youtiao_core::RefineConfig::default()),
            ..Default::default()
        };
        let ctx = PlanContext::build(&chip, None, config.weights);
        let activity = brickwork_activity(&chip);
        (chip, ctx, activity, config)
    }

    fn base_plan(
        chip: &youtiao_chip::Chip,
        ctx: &PlanContext,
        activity: &ActivityProfile,
        config: &PlannerConfig,
    ) -> WiringPlan {
        YoutiaoPlanner::new(chip)
            .with_activity(activity)
            .with_config(config.clone())
            .with_context(ctx)
            .plan()
            .unwrap()
    }

    #[test]
    fn empty_change_set_returns_the_base_plan() {
        let (chip, ctx, activity, config) = snapshot(4);
        let base = base_plan(&chip, &ctx, &activity, &config);
        let inputs = PlanInputs {
            chip: &chip,
            xtalk: ctx.crosstalk(),
            activity: &activity,
        };
        let report = repair_plan(
            &base,
            &ctx,
            &inputs,
            &ChangeSet::default(),
            &config,
            &RepairConfig::default(),
        )
        .unwrap();
        assert_eq!(report.outcome, RepairOutcome::Unchanged);
        assert_eq!(report.plan, base);
        assert_eq!(report.context, ctx);
    }

    #[test]
    fn single_drift_repairs_locally_and_validates() {
        let (chip, ctx, activity, config) = snapshot(5);
        let base = base_plan(&chip, &ctx, &activity, &config);
        let mut drifted = ctx.crosstalk().clone();
        let (a, b) = (
            youtiao_chip::QubitId::new(6),
            youtiao_chip::QubitId::new(18),
        );
        drifted.set(a, b, drifted.get(a, b) * 5.0 + 2e-3);
        let old = PlanInputs {
            chip: &chip,
            xtalk: ctx.crosstalk(),
            activity: &activity,
        };
        let new = PlanInputs {
            chip: &chip,
            xtalk: &drifted,
            activity: &activity,
        };
        let changes = diff_inputs(&old, &new);
        let report = repair_plan(
            &base,
            &ctx,
            &new,
            &changes,
            &config,
            &RepairConfig::default(),
        )
        .unwrap();
        assert_eq!(report.outcome, RepairOutcome::Repaired);
        assert!(report.invalidated_rows >= 2);
        assert!(report.dirty_groups >= 1);
        assert!(report.validation.as_ref().unwrap().is_clean());
        // Structure untouched by a value-only repair.
        assert_eq!(report.plan.fdm_lines(), base.fdm_lines());
        assert_eq!(report.plan.readout_lines(), base.readout_lines());
        // The returned context equals a fresh build for the new snapshot.
        let fresh = PlanContext::from_matrix(&chip, config.weights, drifted.clone());
        assert_eq!(report.context, fresh);
        // Quality-equal to a full replan under the tie-break contract.
        let (replanned, _) = replan_from_snapshot(&new, &config).unwrap();
        let quality = QualityReport::compare(&report.plan, &replanned, &drifted, &activity);
        assert!(quality.quality_equal(0.05), "{}", quality.render());
    }

    #[test]
    fn structural_change_falls_back_byte_identically() {
        let (chip, ctx, activity, config) = snapshot(4);
        let base = base_plan(&chip, &ctx, &activity, &config);
        let mut spec = ChipSpec::from_chip(&chip);
        spec.couplers.pop();
        let mutated = spec.to_chip().unwrap();
        let mut_ctx = PlanContext::build(&mutated, None, config.weights);
        let old = PlanInputs {
            chip: &chip,
            xtalk: ctx.crosstalk(),
            activity: &activity,
        };
        let new = PlanInputs {
            chip: &mutated,
            xtalk: mut_ctx.crosstalk(),
            activity: &activity,
        };
        let changes = diff_inputs(&old, &new);
        assert!(changes.structural());
        let report = repair_plan(
            &base,
            &ctx,
            &new,
            &changes,
            &config,
            &RepairConfig::default(),
        )
        .unwrap();
        assert!(matches!(report.outcome, RepairOutcome::FullReplan { .. }));
        let (replanned, _) = replan_from_snapshot(&new, &config).unwrap();
        assert_eq!(report.plan, replanned);
    }

    #[test]
    fn zero_fallback_fraction_always_replans() {
        let (chip, ctx, activity, config) = snapshot(4);
        let base = base_plan(&chip, &ctx, &activity, &config);
        let mut drifted = ctx.crosstalk().clone();
        let (a, b) = (youtiao_chip::QubitId::new(1), youtiao_chip::QubitId::new(9));
        drifted.set(a, b, 0.03);
        let old = PlanInputs {
            chip: &chip,
            xtalk: ctx.crosstalk(),
            activity: &activity,
        };
        let new = PlanInputs {
            chip: &chip,
            xtalk: &drifted,
            activity: &activity,
        };
        let changes = diff_inputs(&old, &new);
        let cfg = RepairConfig {
            fallback_fraction: 0.0,
            ..Default::default()
        };
        let report = repair_plan(&base, &ctx, &new, &changes, &config, &cfg).unwrap();
        assert_eq!(
            report.outcome,
            RepairOutcome::FullReplan {
                reason: "change set exceeds the fallback threshold"
            }
        );
        let (replanned, _) = replan_from_snapshot(&new, &config).unwrap();
        assert_eq!(report.plan, replanned);
    }

    #[test]
    fn activity_only_delta_keeps_frequencies_byte_identical() {
        let (chip, ctx, activity, config) = snapshot(4);
        let base = base_plan(&chip, &ctx, &activity, &config);
        let mut shifted = activity.clone();
        let d = DeviceId::Qubit(youtiao_chip::QubitId::new(5));
        let prev = shifted.get(&d).copied().unwrap_or(0);
        shifted.insert(d, prev ^ 0b10);
        let old = PlanInputs {
            chip: &chip,
            xtalk: ctx.crosstalk(),
            activity: &activity,
        };
        let new = PlanInputs {
            chip: &chip,
            xtalk: ctx.crosstalk(),
            activity: &shifted,
        };
        let changes = diff_inputs(&old, &new);
        assert_eq!(changes.len(), 1);
        let report = repair_plan(
            &base,
            &ctx,
            &new,
            &changes,
            &config,
            &RepairConfig::default(),
        )
        .unwrap();
        assert_eq!(report.outcome, RepairOutcome::Repaired);
        assert_eq!(report.invalidated_rows, 0, "no kernel rows for activity");
        assert_eq!(report.plan.frequency_plan(), base.frequency_plan());
        assert_eq!(
            report.plan.readout_frequency_plan(),
            base.readout_frequency_plan()
        );
        assert!(report.validation.as_ref().unwrap().is_clean());
    }

    #[test]
    fn repair_is_deterministic() {
        let (chip, ctx, activity, config) = snapshot(5);
        let base = base_plan(&chip, &ctx, &activity, &config);
        let mut drifted = ctx.crosstalk().clone();
        drifted.set(
            youtiao_chip::QubitId::new(7),
            youtiao_chip::QubitId::new(13),
            0.0123,
        );
        let old = PlanInputs {
            chip: &chip,
            xtalk: ctx.crosstalk(),
            activity: &activity,
        };
        let new = PlanInputs {
            chip: &chip,
            xtalk: &drifted,
            activity: &activity,
        };
        let changes = diff_inputs(&old, &new);
        let cfg = RepairConfig::default();
        let a = repair_plan(&base, &ctx, &new, &changes, &config, &cfg).unwrap();
        let b = repair_plan(&base, &ctx, &new, &changes, &config, &cfg).unwrap();
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.outcome, b.outcome);
    }
}
