//! 4-connected A* shortest paths on the routing grid.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::grid::{Cell, RoutingGrid};

/// Finds the shortest passable path from `start` to `goal` for `net`.
///
/// Cells within Manhattan distance `terminal_clearance` of either
/// endpoint ignore device-footprint obstacles (control lines terminate
/// *on* device pads) but still respect other nets' metal and halos.
/// Every other cell must be fully passable. Returns the path inclusive
/// of both endpoints, or `None` when no route exists.
pub fn find_path(
    grid: &RoutingGrid,
    start: Cell,
    goal: Cell,
    net: u32,
    terminal_clearance: usize,
) -> Option<Vec<Cell>> {
    let passable = |c: Cell| -> bool {
        if c.manhattan(goal) <= terminal_clearance || c.manhattan(start) <= terminal_clearance {
            grid.passable_terminal(c, net)
        } else {
            grid.passable(c, net)
        }
    };
    if !passable(start) || !passable(goal) {
        return None;
    }
    if start == goal {
        return Some(vec![start]);
    }

    let mut open: BinaryHeap<(Reverse<usize>, Cell)> = BinaryHeap::new();
    let mut g_score: HashMap<Cell, usize> = HashMap::new();
    let mut came_from: HashMap<Cell, Cell> = HashMap::new();

    g_score.insert(start, 0);
    open.push((Reverse(start.manhattan(goal)), start));

    while let Some((_, current)) = open.pop() {
        if current == goal {
            let mut path = vec![goal];
            let mut cur = goal;
            while let Some(&prev) = came_from.get(&cur) {
                path.push(prev);
                cur = prev;
            }
            path.reverse();
            return Some(path);
        }
        let g_cur = g_score[&current];
        for next in grid.neighbors(current) {
            if !passable(next) {
                continue;
            }
            // Congested cells (near pads and existing metal) cost more,
            // steering wires through open corridor centres so they do
            // not wall in later nets' pads. Manhattan stays admissible
            // because every step still costs at least 1.
            let congestion = grid.congestion_of(next).min(8) as usize;
            let tentative = g_cur + 1 + 2 * congestion;
            if g_score.get(&next).is_none_or(|&g| tentative < g) {
                g_score.insert(next, tentative);
                came_from.insert(next, current);
                open.push((Reverse(tentative + next.manhattan(goal)), next));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtiao_chip::geometry::BoundingBox;
    use youtiao_chip::Position;

    fn grid() -> RoutingGrid {
        let bb = BoundingBox::of([Position::new(0.0, 0.0), Position::new(1.0, 1.0)]).unwrap();
        RoutingGrid::new(bb, 0.1)
    }

    #[test]
    fn straight_line_is_shortest() {
        let g = grid();
        let path = find_path(&g, Cell::new(0, 0), Cell::new(5, 0), 0, 0).unwrap();
        assert_eq!(path.len(), 6);
        assert_eq!(path[0], Cell::new(0, 0));
        assert_eq!(path[5], Cell::new(5, 0));
    }

    #[test]
    fn path_length_is_manhattan_on_empty_grid() {
        let g = grid();
        let path = find_path(&g, Cell::new(1, 1), Cell::new(7, 9), 0, 0).unwrap();
        assert_eq!(path.len(), 1 + Cell::new(1, 1).manhattan(Cell::new(7, 9)));
    }

    #[test]
    fn detours_around_obstacles() {
        let mut g = grid();
        // Vertical wall at x=5, y=0..9 (leaving y=10 open).
        for y in 0..10 {
            g.block_disk(g.position_of(Cell::new(5, y)), 0.04);
        }
        let path = find_path(&g, Cell::new(0, 0), Cell::new(10, 0), 0, 0).unwrap();
        assert!(path.len() > 11, "must detour, got {}", path.len());
    }

    #[test]
    fn blocked_goal_region_returns_none() {
        let mut g = grid();
        // Full wall at x=5.
        for y in 0..11 {
            g.block_disk(g.position_of(Cell::new(5, y)), 0.04);
        }
        assert!(find_path(&g, Cell::new(0, 0), Cell::new(10, 10), 0, 0).is_none());
    }

    #[test]
    fn avoids_other_nets_wires() {
        let mut g = grid();
        let wall: Vec<Cell> = (0..11).map(|y| Cell::new(5, y)).collect();
        g.commit_path(&wall, 1, 0);
        assert!(find_path(&g, Cell::new(0, 5), Cell::new(10, 5), 2, 0).is_none());
        // The owning net itself may cross its own wire.
        assert!(find_path(&g, Cell::new(0, 5), Cell::new(10, 5), 1, 0).is_some());
    }

    #[test]
    fn start_equals_goal() {
        let g = grid();
        let p = find_path(&g, Cell::new(3, 3), Cell::new(3, 3), 0, 0).unwrap();
        assert_eq!(p, vec![Cell::new(3, 3)]);
    }

    #[test]
    fn terminals_on_footprints_are_reachable_with_clearance() {
        let mut g = grid();
        g.block_disk(Position::new(0.5, 0.5), 0.1);
        let goal = g.cell_at(Position::new(0.5, 0.5));
        assert!(g.is_obstacle(goal));
        // Without clearance the pad is walled off...
        assert!(find_path(&g, Cell::new(0, 0), goal, 0, 0).is_none());
        // ...with clearance covering the footprint it is reachable.
        let path = find_path(&g, Cell::new(0, 0), goal, 0, 2);
        assert!(path.is_some());
    }

    #[test]
    fn halo_blocks_even_near_terminals() {
        let mut g = grid();
        // Another net's wire wall through the goal's neighbourhood.
        let wall: Vec<Cell> = (0..11).map(|y| Cell::new(9, y)).collect();
        g.commit_path(&wall, 1, 1);
        let goal = Cell::new(10, 5);
        assert!(
            find_path(&g, Cell::new(0, 5), goal, 2, 3).is_none(),
            "clearance must not override other nets' metal"
        );
    }
}
