//! Deterministic Manhattan channel routing.
//!
//! Sequential A* maze routing ([`route_chip`](crate::router::route_chip))
//! is faithful to the paper but, like any rip-up-free maze router, can
//! deadlock on dense dedicated-wiring netlists where every device needs
//! its own escape. Real planar quantum chips avoid the problem by
//! construction: control lines escape each device row vertically into
//! the *channel* between rows, run horizontally in assigned tracks to
//! the die edge, and follow the perimeter ring to their interface pad
//! (the parallel-lane layout of the paper's Figure 1 (b)).
//!
//! This module implements that scheme analytically: wire lengths are
//! exact Manhattan path lengths through the channels, tracks are counted
//! against per-channel capacity (`gap between footprints / line pitch`),
//! and crossings are impossible by construction, so the result is
//! DRC-clean. Use it for dense full-chip netlists; use the A* router
//! when path shapes matter.

use youtiao_chip::chip::QUBIT_DIAMETER_MM;
use youtiao_chip::{Chip, Position};

use crate::drc::DrcReport;
use crate::router::{NetSpec, RouteError, RoutedNet, RoutingResult};

/// Configuration of the channel router.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelConfig {
    /// Line pitch (width + gap) in millimetres (paper: 30 µm).
    pub pitch_mm: f64,
    /// Margin from the device array to the interface ring, millimetres.
    pub margin_mm: f64,
    /// Perimeter interface pad pitch, millimetres.
    pub interface_pitch_mm: f64,
    /// Device footprint diameter, millimetres.
    pub footprint_mm: f64,
    /// Longest inter-terminal hop routed directly inside the row band
    /// instead of through a channel, millimetres.
    pub direct_jog_mm: f64,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            pitch_mm: 0.03,
            margin_mm: 1.0,
            interface_pitch_mm: 0.5,
            footprint_mm: QUBIT_DIAMETER_MM,
            direct_jog_mm: 2.5,
        }
    }
}

/// Per-channel occupancy, reported alongside the routing result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelUsage {
    /// The channel's centreline y coordinate, millimetres.
    pub y_mm: f64,
    /// Horizontal runs assigned to the channel.
    pub used: usize,
    /// Track capacity of the channel.
    pub capacity: usize,
}

/// Result of channel routing: the standard [`RoutingResult`] plus the
/// per-channel utilization.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelResult {
    /// The routing result (lengths, area, interfaces; DRC clean by
    /// construction).
    pub routing: RoutingResult,
    /// Channel occupancy.
    pub channels: Vec<ChannelUsage>,
}

/// Routes `nets` through the horizontal channels of `chip`.
///
/// Each net escapes its first terminal vertically into the nearest
/// channel, visits its remaining terminals with Manhattan jogs through
/// the channels, exits horizontally to the nearer die edge, and follows
/// the perimeter to the closest free interface pad.
///
/// # Errors
///
/// * [`RouteError::EmptyNet`] — a net had no terminals.
/// * [`RouteError::Unroutable`] — a channel exceeded its track capacity.
/// * [`RouteError::OutOfInterfaces`] — more nets than perimeter pads.
pub fn channel_route(
    chip: &Chip,
    nets: &[NetSpec],
    config: &ChannelConfig,
) -> Result<ChannelResult, RouteError> {
    let bounds = chip.bounding_box().expanded(config.margin_mm);

    // Device rows -> channel centrelines between them, plus the two
    // boundary channels inside the margin.
    let mut rows: Vec<f64> = chip.qubits().map(|q| q.position().y).collect();
    rows.sort_by(f64::total_cmp);
    rows.dedup_by(|a, b| (*a - *b).abs() < 1e-6);
    let mut channels: Vec<(f64, usize)> = Vec::new(); // (y, capacity)
    let boundary_capacity = ((config.margin_mm - 0.1) / config.pitch_mm)
        .floor()
        .max(1.0) as usize;
    channels.push((rows[0] - config.margin_mm / 2.0, boundary_capacity));
    for w in rows.windows(2) {
        let gap = (w[1] - w[0]) - config.footprint_mm;
        let capacity = (gap / config.pitch_mm).floor().max(0.0) as usize;
        // Staggered lattices (honeycomb) have row spacings below one
        // footprint; no usable channel exists there and escapes run to
        // the next viable channel instead.
        if capacity >= 1 {
            channels.push(((w[0] + w[1]) / 2.0, capacity));
        }
    }
    channels.push((
        rows[rows.len() - 1] + config.margin_mm / 2.0,
        boundary_capacity,
    ));

    // Perimeter pads, consumed nearest-first like the maze router.
    let mut pads = perimeter_pads(&bounds, config.interface_pitch_mm);
    let mut usage = vec![0usize; channels.len()];
    // Nearest channel with a free track; falls back to the absolute
    // nearest when everything is full (the capacity check then reports
    // genuine congestion).
    let pick_channel = |y: f64, usage: &[usize], channels: &[(f64, usize)]| -> usize {
        channels
            .iter()
            .enumerate()
            .filter(|&(i, &(_, cap))| usage[i] < cap)
            .min_by(|(_, a), (_, b)| (a.0 - y).abs().total_cmp(&(b.0 - y).abs()))
            .map(|(i, _)| i)
            .unwrap_or_else(|| {
                channels
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| (a.0 - y).abs().total_cmp(&(b.0 - y).abs()))
                    .map(|(i, _)| i)
                    .expect("channels are non-empty")
            })
    };
    let mut routed = Vec::with_capacity(nets.len());

    for net in nets {
        let first = *net.terminals.first().ok_or_else(|| RouteError::EmptyNet {
            net: net.name.clone(),
        })?;
        let mut length = 0.0f64;

        // Inter-terminal jogs. Neighbouring terminals connect directly
        // (Manhattan plus a footprint-clearance detour) inside the row
        // band; distant ones go through a channel.
        for w in net.terminals.windows(2) {
            let (a, b) = (w[0], w[1]);
            let direct = (a.x - b.x).abs() + (a.y - b.y).abs();
            if direct <= config.direct_jog_mm {
                length += direct + config.footprint_mm;
                continue;
            }
            let ch = pick_channel(a.y, &usage, &channels);
            let y_ch = channels[ch].0;
            length += (a.y - y_ch).abs() + (a.x - b.x).abs() + (y_ch - b.y).abs();
            if (a.x - b.x).abs() > 1e-9 {
                usage[ch] += 1;
            }
        }

        // Exit: first terminal escapes to its channel and runs to the
        // nearer vertical edge.
        let ch = pick_channel(first.y, &usage, &channels);
        let y_ch = channels[ch].0;
        let to_left = first.x - bounds.min.x;
        let to_right = bounds.max.x - first.x;
        let (exit_x, run) = if to_left <= to_right {
            (bounds.min.x, to_left)
        } else {
            (bounds.max.x, to_right)
        };
        length += (first.y - y_ch).abs() + run;
        usage[ch] += 1;
        let exit_point = Position::new(exit_x, y_ch);

        // Nearest free pad; add the perimeter run.
        let pad_idx = pads
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_some())
            .min_by(|(_, a), (_, b)| {
                let da = perimeter_distance(&bounds, exit_point, a.expect("Some"));
                let db = perimeter_distance(&bounds, exit_point, b.expect("Some"));
                da.total_cmp(&db)
            })
            .map(|(i, _)| i)
            .ok_or(RouteError::OutOfInterfaces)?;
        let pad = pads[pad_idx].take().expect("selected pad is free");
        length += perimeter_distance(&bounds, exit_point, pad);

        routed.push(RoutedNet {
            name: net.name.clone(),
            interface: pad,
            length_mm: length,
            cells: (length / 0.01).round() as usize,
        });
    }

    for (i, &(y, capacity)) in channels.iter().enumerate() {
        if usage[i] > capacity {
            return Err(RouteError::Unroutable {
                net: format!(
                    "channel at y={y:.2} over capacity ({} > {capacity})",
                    usage[i]
                ),
            });
        }
    }

    let total_length_mm: f64 = routed.iter().map(|n| n.length_mm).sum();
    Ok(ChannelResult {
        routing: RoutingResult {
            num_interfaces: routed.len(),
            routing_area_mm2: total_length_mm * config.pitch_mm,
            total_length_mm,
            nets: routed,
            drc: DrcReport::default(),
        },
        channels: channels
            .iter()
            .zip(&usage)
            .map(|(&(y_mm, capacity), &used)| ChannelUsage {
                y_mm,
                used,
                capacity,
            })
            .collect(),
    })
}

/// Distance along the perimeter rectangle between two boundary points
/// (shorter of the two ring directions, walking the rectangle edges).
fn perimeter_distance(
    bounds: &youtiao_chip::geometry::BoundingBox,
    a: Position,
    b: Position,
) -> f64 {
    let w = bounds.width();
    let h = bounds.height();
    let ring = 2.0 * (w + h);
    let s = |p: Position| -> f64 {
        // Arc-length parameterization of the rectangle, clockwise from
        // the lower-left corner; off-boundary points snap to the nearest
        // edge.
        let dx = (p.x - bounds.min.x).clamp(0.0, w);
        let dy = (p.y - bounds.min.y).clamp(0.0, h);
        let d_left = dx;
        let d_right = w - dx;
        let d_bottom = dy;
        let d_top = h - dy;
        let min = d_left.min(d_right).min(d_bottom).min(d_top);
        if min == d_bottom {
            dx
        } else if min == d_right {
            w + dy
        } else if min == d_top {
            w + h + (w - dx)
        } else {
            2.0 * w + h + (h - dy)
        }
    };
    let d = (s(a) - s(b)).abs();
    d.min(ring - d)
}

fn perimeter_pads(
    bounds: &youtiao_chip::geometry::BoundingBox,
    pitch: f64,
) -> Vec<Option<Position>> {
    let mut pads = Vec::new();
    let nx = (bounds.width() / pitch).floor() as usize;
    let ny = (bounds.height() / pitch).floor() as usize;
    for i in 0..=nx {
        let x = bounds.min.x + i as f64 * pitch;
        pads.push(Some(Position::new(x, bounds.min.y)));
        pads.push(Some(Position::new(x, bounds.max.y)));
    }
    for j in 1..ny {
        let y = bounds.min.y + j as f64 * pitch;
        pads.push(Some(Position::new(bounds.min.x, y)));
        pads.push(Some(Position::new(bounds.max.x, y)));
    }
    pads
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtiao_chip::topology;

    fn pos(chip: &Chip, i: u32) -> Position {
        chip.qubit(i.into()).unwrap().position()
    }

    #[test]
    fn routes_single_net() {
        let chip = topology::square_grid(3, 3);
        let nets = vec![NetSpec::chain("a", vec![pos(&chip, 4)])];
        let r = channel_route(&chip, &nets, &ChannelConfig::default()).unwrap();
        assert_eq!(r.routing.nets.len(), 1);
        assert!(r.routing.total_length_mm > 1.0);
        assert!(r.routing.drc.is_clean());
    }

    #[test]
    fn dense_google_netlist_routes() {
        // The case that deadlocks a rip-up-free maze router: a dedicated
        // net per device.
        let chip = topology::square_grid(3, 3);
        let mut nets = Vec::new();
        for q in chip.qubit_ids() {
            nets.push(NetSpec::chain(
                format!("xy-{q}"),
                vec![pos(&chip, q.value())],
            ));
            nets.push(NetSpec::chain(
                format!("z-{q}"),
                vec![pos(&chip, q.value())],
            ));
        }
        for c in chip.couplers() {
            nets.push(NetSpec::chain(format!("z-{}", c.id()), vec![c.position()]));
        }
        let r = channel_route(&chip, &nets, &ChannelConfig::default()).unwrap();
        assert_eq!(r.routing.nets.len(), nets.len());
        for ch in &r.channels {
            assert!(
                ch.used <= ch.capacity,
                "channel at {} over capacity",
                ch.y_mm
            );
        }
    }

    #[test]
    fn chained_net_is_longer_than_single() {
        let chip = topology::square_grid(3, 3);
        let single = vec![NetSpec::chain("s", vec![pos(&chip, 0)])];
        let chain = vec![NetSpec::chain(
            "c",
            vec![pos(&chip, 0), pos(&chip, 1), pos(&chip, 2)],
        )];
        let cfg = ChannelConfig::default();
        let rs = channel_route(&chip, &single, &cfg).unwrap();
        let rc = channel_route(&chip, &chain, &cfg).unwrap();
        assert!(rc.routing.total_length_mm > rs.routing.total_length_mm);
    }

    #[test]
    fn fewer_nets_less_area() {
        let chip = topology::square_grid(4, 4);
        let many: Vec<NetSpec> = chip
            .qubit_ids()
            .map(|q| NetSpec::chain(format!("n{q}"), vec![pos(&chip, q.value())]))
            .collect();
        // Four row-chains of four qubits each (how FDM lines group).
        let few: Vec<NetSpec> = (0..4)
            .map(|r| {
                NetSpec::chain(
                    format!("row{r}"),
                    (0..4).map(|c| pos(&chip, (r * 4 + c) as u32)).collect(),
                )
            })
            .collect();
        let cfg = ChannelConfig::default();
        let rm = channel_route(&chip, &many, &cfg).unwrap();
        let rf = channel_route(&chip, &few, &cfg).unwrap();
        assert!(rf.routing.routing_area_mm2 < rm.routing.routing_area_mm2);
        assert_eq!(rm.routing.num_interfaces, 16);
        assert_eq!(rf.routing.num_interfaces, 4);
    }

    #[test]
    fn capacity_violation_reported() {
        // Squeeze the pitch so a channel overflows.
        let chip = topology::square_grid(2, 6);
        let mut nets = Vec::new();
        for q in chip.qubit_ids() {
            for k in 0..6 {
                nets.push(NetSpec::chain(
                    format!("n{q}-{k}"),
                    vec![pos(&chip, q.value())],
                ));
            }
        }
        let cfg = ChannelConfig {
            pitch_mm: 0.3,
            margin_mm: 0.5,
            ..Default::default()
        };
        let err = channel_route(&chip, &nets, &cfg);
        assert!(
            matches!(
                err,
                Err(RouteError::Unroutable { .. }) | Err(RouteError::OutOfInterfaces)
            ),
            "expected capacity failure, got {err:?}"
        );
    }

    #[test]
    fn empty_net_rejected() {
        let chip = topology::square_grid(2, 2);
        let nets = vec![NetSpec::chain("e", vec![])];
        assert!(matches!(
            channel_route(&chip, &nets, &ChannelConfig::default()),
            Err(RouteError::EmptyNet { .. })
        ));
    }

    #[test]
    fn perimeter_distance_is_a_ring_metric() {
        let bounds = youtiao_chip::geometry::BoundingBox::of([
            Position::new(0.0, 0.0),
            Position::new(4.0, 2.0),
        ])
        .unwrap();
        let a = Position::new(0.0, 0.0);
        let b = Position::new(4.0, 0.0);
        assert!((perimeter_distance(&bounds, a, b) - 4.0).abs() < 1e-9);
        // Symmetric and zero on identity.
        assert_eq!(perimeter_distance(&bounds, a, a), 0.0);
        assert_eq!(
            perimeter_distance(&bounds, a, b),
            perimeter_distance(&bounds, b, a)
        );
    }
}
