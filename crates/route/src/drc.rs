//! Design-rule check: no crossings, adequate spacing.

use crate::grid::{Cell, RoutingGrid};

/// One spacing/crossing violation between two nets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrcViolation {
    /// First net involved.
    pub net_a: u32,
    /// Second net involved.
    pub net_b: u32,
    /// A representative cell of the violation.
    pub at: Cell,
}

/// Result of a design-rule check over a routed grid.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DrcReport {
    violations: Vec<DrcViolation>,
}

impl DrcReport {
    /// Returns `true` when no violations were found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violations found.
    pub fn violations(&self) -> &[DrcViolation] {
        &self.violations
    }
}

/// Scans the grid for pairs of distinct nets whose metal lies within
/// `min_spacing_cells` (Chebyshev) of each other, which covers both
/// crossings (distance 0) and spacing violations.
pub fn check(grid: &RoutingGrid, min_spacing_cells: usize) -> DrcReport {
    let mut violations = Vec::new();
    let owned: Vec<(Cell, u32)> = grid.owned_cells().collect();
    // Index metal by row band for a local neighbourhood scan.
    use std::collections::HashMap;
    let mut by_cell: HashMap<Cell, u32> = HashMap::new();
    for &(c, n) in &owned {
        by_cell.insert(c, n);
    }
    let s = min_spacing_cells as isize;
    for &(c, n) in &owned {
        for dy in -s..=s {
            for dx in -s..=s {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let x = c.x as isize + dx;
                let y = c.y as isize + dy;
                if x < 0 || y < 0 {
                    continue;
                }
                let other = Cell::new(x as usize, y as usize);
                if let Some(&m) = by_cell.get(&other) {
                    if m != n && n < m {
                        violations.push(DrcViolation {
                            net_a: n,
                            net_b: m,
                            at: c,
                        });
                    }
                }
            }
        }
    }
    violations.sort_by_key(|v| (v.net_a, v.net_b, v.at));
    violations.dedup_by_key(|v| (v.net_a, v.net_b));
    DrcReport { violations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtiao_chip::geometry::BoundingBox;
    use youtiao_chip::Position;

    fn grid() -> RoutingGrid {
        let bb = BoundingBox::of([Position::new(0.0, 0.0), Position::new(1.0, 1.0)]).unwrap();
        RoutingGrid::new(bb, 0.1)
    }

    #[test]
    fn empty_grid_is_clean() {
        assert!(check(&grid(), 3).is_clean());
    }

    #[test]
    fn well_separated_nets_are_clean() {
        let mut g = grid();
        g.commit_path(&[Cell::new(0, 0), Cell::new(1, 0)], 1, 0);
        g.commit_path(&[Cell::new(0, 10), Cell::new(1, 10)], 2, 0);
        assert!(check(&g, 3).is_clean());
    }

    #[test]
    fn close_nets_violate_spacing() {
        let mut g = grid();
        g.commit_path(&[Cell::new(5, 5)], 1, 0);
        g.commit_path(&[Cell::new(5, 6)], 2, 0);
        let report = check(&g, 2);
        assert!(!report.is_clean());
        assert_eq!(report.violations().len(), 1);
        let v = report.violations()[0];
        assert_eq!((v.net_a, v.net_b), (1, 2));
    }

    #[test]
    fn same_net_proximity_is_fine() {
        let mut g = grid();
        g.commit_path(&[Cell::new(5, 5), Cell::new(5, 6), Cell::new(6, 6)], 1, 0);
        assert!(check(&g, 3).is_clean());
    }

    #[test]
    fn spacing_threshold_matters() {
        let mut g = grid();
        g.commit_path(&[Cell::new(2, 2)], 1, 0);
        g.commit_path(&[Cell::new(2, 5)], 2, 0);
        assert!(check(&g, 2).is_clean());
        assert!(!check(&g, 3).is_clean());
    }
}
